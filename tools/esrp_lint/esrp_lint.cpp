// esrp_lint — the project-specific determinism & concurrency checker.
//
// Generic tools prove lock discipline (clang -Wthread-safety) and catch bug
// patterns (clang-tidy); this tool enforces the contracts only this codebase
// knows about — the bitwise-determinism rules of docs/parallelism.md and the
// annotated-primitive discipline of common/thread_annotations.hpp:
//
//   fp-accumulate       no raw floating-point accumulation loops and no
//                       std::accumulate/std::reduce outside the blessed
//                       kernel layers (common/, parallel/, sparse/,
//                       precond/). Global FP reductions must flow through
//                       parallel_reduce's fixed-grain chunking or they stop
//                       being bitwise reproducible across thread counts.
//   unordered-container no std::unordered_{map,set,...} anywhere: iteration
//                       order is implementation-defined, which is ordering
//                       nondeterminism waiting to be summed over.
//   raw-rng             no rand()/srand()/std::random_device/time()/clock()
//                       outside common/rng.hpp — every random draw must be
//                       a seeded, platform-invariant esrp::Rng.
//   raw-thread          no naked std::thread/std::jthread/.detach() outside
//                       src/parallel — concurrency goes through the
//                       ThreadPool (or a blessed session worker).
//   atomic-fp           no std::atomic<double/float/real_t>: concurrent FP
//                       accumulation into an atomic is both slow and
//                       ordering-nondeterministic.
//   raw-mutex           no std::mutex/std::condition_variable/lock_guard/...
//                       outside common/thread_annotations.hpp — only the
//                       annotated esrp::Mutex/MutexLock/CondVar wrappers are
//                       visible to clang's thread safety analysis.
//
// Blessing an exception: append `// esrp-lint: allow(<rule>)` to the line
// (or the line directly above) with a comment saying why. Every finding
// prints as `path:line: [rule] message`; exit status is non-zero iff an
// unblessed finding exists.
//
// Usage:
//   esrp_lint [--root DIR] [--expect RULE]... PATH...
//
// PATHs are files or directories (recursed for .hpp/.h/.cpp/.cc), resolved
// against --root (default: cwd). With --expect, the tool instead *requires*
// at least one finding of each named rule and exits zero when all tripped —
// this is how the must-fail fixtures under tests/analysis/fixtures/ pin
// that each rule actually bites (registered as CTest tests).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Line {
  std::string code;    // source text with comments and literals blanked
  std::string comment; // comment text of this line (for allow markers)
};

struct Finding {
  std::string file; // path relative to the scan root
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Strip comments, string literals, and char literals, keeping line
/// structure. Literal/comment bodies are replaced by spaces so column-free
/// regexes cannot match inside them; comment text is preserved separately
/// per line so blessing markers stay visible. Raw strings are handled as
/// plain strings, which is exact as long as the body contains no '"' — true
/// for every raw string in this repo (they are all regex patterns).
std::vector<Line> lex(const std::string& text) {
  std::vector<Line> lines(1);
  enum class State { code, line_comment, block_comment, string_lit, char_lit };
  State st = State::code;
  bool escaped = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == State::line_comment) st = State::code;
      // Unterminated string/char literals do not survive a newline either.
      if (st == State::string_lit || st == State::char_lit) st = State::code;
      escaped = false;
      lines.emplace_back();
      continue;
    }
    switch (st) {
      case State::code:
        if (c == '/' && next == '/') {
          st = State::line_comment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::block_comment;
          ++i;
        } else if (c == '"') {
          st = State::string_lit;
          lines.back().code += ' ';
        } else if (c == '\'') {
          st = State::char_lit;
          lines.back().code += ' ';
        } else {
          lines.back().code += c;
        }
        break;
      case State::line_comment:
        lines.back().comment += c;
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          st = State::code;
          ++i;
        } else {
          lines.back().comment += c;
        }
        break;
      case State::string_lit:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          st = State::code;
        }
        lines.back().code += ' ';
        break;
      case State::char_lit:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '\'') {
          st = State::code;
        }
        lines.back().code += ' ';
        break;
    }
  }
  return lines;
}

/// Rules blessed for line N by a marker on line N or N-1 (1-based index
/// into `allows`, which holds the parsed marker of each line).
bool is_allowed(const std::vector<std::set<std::string>>& allows,
                std::size_t line, const std::string& rule) {
  const auto check = [&](std::size_t l) {
    return l >= 1 && l <= allows.size() &&
           (allows[l - 1].count(rule) != 0 || allows[l - 1].count("*") != 0);
  };
  return check(line) || check(line - 1);
}

bool path_starts_with(const std::string& rel, const char* prefix) {
  return rel.rfind(prefix, 0) == 0;
}

/// The simple regex-per-line rules. The fp-accumulate loop detector is
/// stateful and lives in scan_file below.
struct TokenRule {
  const char* id;
  std::regex pattern;
  const char* message;
  /// Returns true when `rel` (root-relative path, '/'-separated) is exempt.
  bool (*exempt)(const std::string& rel);
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"fp-accumulate",
                 std::regex(R"(std::(accumulate|reduce|transform_reduce)\b)"),
                 "accumulate/reduce bypasses the fixed-grain parallel_reduce "
                 "determinism contract (use common/fused or "
                 "parallel/parallel_reduce)",
                 [](const std::string& rel) {
                   return path_starts_with(rel, "src/common/") ||
                          path_starts_with(rel, "src/parallel/");
                 }});
    r.push_back({"unordered-container",
                 std::regex(R"((std::unordered_(map|set|multimap|multiset)\b|#\s*include\s*<unordered_(map|set)>))"),
                 "unordered containers have implementation-defined iteration "
                 "order (ordering nondeterminism); use std::map/std::set or "
                 "a sorted vector",
                 [](const std::string&) { return false; }});
    r.push_back({"raw-rng",
                 std::regex(R"(\b(rand|srand)\s*\(|std::random_device\b|\btime\s*\(|\bclock\s*\()"),
                 "unseeded / platform-dependent randomness; draw from a "
                 "seeded esrp::Rng (common/rng.hpp) instead",
                 [](const std::string& rel) {
                   return rel == "src/common/rng.hpp";
                 }});
    r.push_back({"raw-thread",
                 std::regex(R"(std::thread\b|std::jthread\b|\.detach\s*\()"),
                 "naked threads outside src/parallel; run work on the "
                 "ThreadPool (parallel/thread_pool.hpp)",
                 [](const std::string& rel) {
                   return path_starts_with(rel, "src/parallel/");
                 }});
    r.push_back({"atomic-fp",
                 std::regex(R"(std::atomic\s*<\s*(float|double|long\s+double|real_t)\b)"),
                 "atomic floating-point accumulators are "
                 "ordering-nondeterministic; reduce through parallel_reduce "
                 "and fixed chunking",
                 [](const std::string&) { return false; }});
    r.push_back({"raw-mutex",
                 std::regex(R"(std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b)"),
                 "raw standard-library synchronization is invisible to "
                 "clang's thread safety analysis; use esrp::Mutex/MutexLock/"
                 "CondVar (common/thread_annotations.hpp)",
                 [](const std::string& rel) {
                   return rel == "src/common/thread_annotations.hpp";
                 }});
    return r;
  }();
  return rules;
}

/// Dirs whose local serial loops are the blessed kernel layer for the
/// fp-accumulate *loop* detector (per-row / per-element sums that feed
/// per-index outputs, plus the reduction kernels themselves). This covers
/// the SIMD lane kernels (src/common/simd.hpp — Vec4 accumulators combined
/// in the fixed (l0+l1)+(l2+l3) lane order) and the SELL-C-σ chunk kernels
/// (src/sparse/sell.cpp — per-lane row sums scattered back per index).
bool fp_loop_exempt_dir(const std::string& rel) {
  return path_starts_with(rel, "src/common/") ||
         path_starts_with(rel, "src/parallel/") ||
         path_starts_with(rel, "src/sparse/") ||
         path_starts_with(rel, "src/precond/");
}

void scan_file(const fs::path& root, const fs::path& file,
               std::vector<Finding>& findings) {
  std::ifstream in(file, std::ios::binary);
  if (!in.is_open()) {
    findings.push_back({file.generic_string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<Line> lines = lex(buf.str());

  std::string rel = fs::relative(file, root).generic_string();
  // Paths outside the root (e.g. absolute fixtures) keep their own name.
  if (rel.rfind("..", 0) == 0) rel = file.generic_string();

  // Blessing markers per line.
  static const std::regex allow_re(R"(esrp-lint:\s*allow\(([^)]*)\))");
  std::vector<std::set<std::string>> allows(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i].comment, m, allow_re)) {
      std::istringstream is(m[1].str());
      std::string rule;
      while (std::getline(is, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty()) allows[i].insert(rule);
      }
    }
  }

  const auto report = [&](std::size_t line_no, const char* rule,
                          const std::string& message) {
    if (!is_allowed(allows, line_no, rule)) {
      findings.push_back({rel, line_no, rule, message});
    }
  };

  // Token rules.
  for (const TokenRule& rule : token_rules()) {
    if (rule.exempt(rel)) continue;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i].code, rule.pattern)) {
        report(i + 1, rule.id, rule.message);
      }
    }
  }

  // fp-accumulate loop detector: a scalar double/real_t declared `= 0`
  // followed (within a window) by a loop that `+=`/`-=`s into it is the
  // canonical raw reduction. Chunk bodies of parallel_reduce are the
  // sanctioned home of exactly this shape, so a `parallel_reduce` token
  // shortly before the declaration exempts the site.
  if (!fp_loop_exempt_dir(rel)) {
    static const std::regex decl_head_re(
        R"(^\s*(const\s+)?(double|float|real_t)\s)");
    static const std::regex decl_ident_re(
        R"((\w+)\s*(=\s*0(\.0*)?f?|\{\s*0(\.0*)?f?\s*\})\s*[;,)])");
    static const std::regex loop_re(R"(\b(for|while)\s*\()");
    static const std::regex reduce_re(R"(\bparallel_reduce\s*\()");
    constexpr std::size_t kWindow = 40;   // decl ... += distance, in lines
    constexpr std::size_t kContext = 10;  // parallel_reduce lookbehind

    struct Decl {
      std::size_t line;
      std::regex accum_re;
    };
    std::map<std::string, Decl> decls; // ident -> declaration site
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      if (std::regex_search(code, decl_head_re)) {
        // Blessing the declaration blesses the whole accumulation, so a
        // single marker covers every += the variable gathers later.
        if (!is_allowed(allows, i + 1, "fp-accumulate")) {
          auto begin = std::sregex_iterator(code.begin(), code.end(),
                                            decl_ident_re);
          for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            decls.insert_or_assign(
                ident,
                Decl{i, std::regex("(^|[^\\w.>])" + ident + R"(\s*[+-]=)")});
          }
        }
        continue; // the declaration line itself never accumulates
      }
      for (auto it = decls.begin(); it != decls.end();) {
        const Decl& d = it->second;
        if (i - d.line > kWindow) {
          it = decls.erase(it);
          continue;
        }
        bool matched = false;
        if (std::regex_search(code, d.accum_re)) {
          // Require a loop header strictly between decl and accumulation.
          bool loop_between = false;
          for (std::size_t l = d.line + 1; l <= i && !loop_between; ++l) {
            loop_between = std::regex_search(lines[l].code, loop_re);
          }
          bool reduce_context = false;
          const std::size_t lo = d.line >= kContext ? d.line - kContext : 0;
          for (std::size_t l = lo; l <= d.line && !reduce_context; ++l) {
            reduce_context = std::regex_search(lines[l].code, reduce_re);
          }
          if (loop_between && !reduce_context) {
            report(i + 1, "fp-accumulate",
                   "raw floating-point accumulation loop over '" + it->first +
                       "'; route the reduction through "
                       "parallel/parallel_reduce (fixed-grain, bitwise "
                       "reproducible) or a common/fused kernel");
            matched = true;
          }
        }
        it = matched ? decls.erase(it) : std::next(it);
      }
    }
  }
}

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

void usage() {
  std::cerr << "usage: esrp_lint [--root DIR] [--expect RULE]... PATH...\n"
               "       esrp_lint --list-rules\n";
}

} // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> expects;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      expects.emplace_back(argv[++i]);
    } else if (arg == "--list-rules") {
      for (const TokenRule& r : token_rules()) std::cout << r.id << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "esrp_lint: unknown option " << arg << '\n';
      usage();
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    usage();
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    const fs::path p = input.is_absolute() ? input : root / input;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && has_source_extension(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "esrp_lint: no such file or directory: " << p << '\n';
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const fs::path& f : files) scan_file(root, f, findings);

  for (const Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }

  if (!expects.empty()) {
    // Fixture mode: every expected rule must have tripped at least once.
    bool ok = true;
    for (const std::string& rule : expects) {
      const bool hit =
          std::any_of(findings.begin(), findings.end(),
                      [&](const Finding& f) { return f.rule == rule; });
      if (!hit) {
        std::cerr << "esrp_lint: expected a [" << rule
                  << "] finding but none tripped\n";
        ok = false;
      }
    }
    std::cout << (ok ? "esrp_lint: all expected rules tripped\n"
                     : "esrp_lint: FIXTURE FAILURE\n");
    return ok ? 0 : 1;
  }

  if (!findings.empty()) {
    std::cout << "esrp_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "esrp_lint: clean (" << files.size() << " files)\n";
  return 0;
}
