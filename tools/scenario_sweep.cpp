// scenario_sweep — grid sweeps over strategy x storage interval x failure
// process x cluster shape, through the esrp::solve facade
// (src/scenario/sweep.hpp).
//
// Examples:
//   scenario_sweep                              # the default 2x2x2x2 grid
//   scenario_sweep --strategy esrp --strategy imcr --interval 10
//       --process exponential:mean=40 --process rack:2/exponential:mean=40
//       --cluster homogeneous --cluster straggler:factor=4
//       --matrix poisson2d:16,16 --nodes 8 --phi 2 --reps 10 --seed 7
//     (one command line; wrapped here for width)
//   scenario_sweep --csv sweep.csv              # also write the CSV artifact
//
// Every run is reproducible from its --seed: per-cell seeds are derived by
// FNV-1a over the cell key, so adding or removing grid cells never changes
// another cell's draws, and the table is bitwise identical at any thread
// count (docs/parallelism.md).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "parallel/parallel.hpp"
#include "scenario/sweep.hpp"

namespace {

using namespace esrp;

struct OptionSpec {
  const char* flag;
  const char* arg;  ///< argument placeholder, or nullptr for booleans
  bool repeatable;  ///< axis flags may appear once per grid value
  const char* help;
};

constexpr OptionSpec kOptions[] = {
    {"--strategy", "S", true,
     "axis: none | esrp | imcr (repeatable;\n"
     "                    default: esrp, imcr)"},
    {"--interval", "T", true,
     "axis: storage interval (repeatable; default: 10, 25)"},
    {"--process", "SPEC", true,
     "axis: failure-process spec, e.g.\n"
     "                    exponential:mean=40 | weibull:k=2,scale=40 |\n"
     "                    rack:2/exponential:mean=40 (repeatable;\n"
     "                    default: exponential:mean=40 and its rack:2 form)"},
    {"--cluster", "SPEC", true,
     "axis: cluster-shape spec, e.g. homogeneous |\n"
     "                    straggler:factor=4 (repeatable; default:\n"
     "                    homogeneous, straggler:count=1,factor=4)"},
    {"--matrix", "M", false, "problem (default poisson2d:12,12)"},
    {"--solver", "S", false, "distributed solver (default resilient-pcg)"},
    {"--precond", "P", false, "preconditioner (default block-jacobi)"},
    {"--nodes", "N", false, "simulated cluster size (default 8)"},
    {"--phi", "P", false, "redundant copies (default 2)"},
    {"--reps", "R", false, "repetitions per grid cell (default 5)"},
    {"--seed", "N", false, "base seed (default 0x5CE9A210)"},
    {"--rtol", "X", false, "convergence tolerance (default 1e-8)"},
    {"--block-size", "B", false, "block Jacobi block size (default 10)"},
    {"--threads", "N", false,
     "kernel threads (default $ESRP_NUM_THREADS or 1;\n"
     "                    0 = all hardware threads)"},
    {"--csv", "FILE", false, "also write the machine-readable table"},
    {"--quiet", nullptr, false, "suppress the console table (CSV to stdout)"},
};

[[noreturn]] void usage(const char* msg = nullptr, int code = 2) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out, "usage: scenario_sweep [options]\n");
  for (const OptionSpec& o : kOptions) {
    char label[32];
    std::snprintf(label, sizeof label, "%s %s", o.flag, o.arg ? o.arg : "");
    std::fprintf(out, "  %-17s %s\n", label, o.help);
  }
  std::exit(code);
}

const OptionSpec* find_option(const std::string& key) {
  for (const OptionSpec& o : kOptions)
    if (key == o.flag) return &o;
  return nullptr;
}

std::int64_t parse_int(const std::string& text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0')
    usage((std::string(flag) + " needs an integer, got \"" + text + "\"")
              .c_str());
  return v;
}

double parse_double(const std::string& text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0')
    usage((std::string(flag) + " needs a number, got \"" + text + "\"")
              .c_str());
  return v;
}

} // namespace

int main(int argc, char** argv) {
  // Axis flags are repeatable; scalar flags are last-wins like esrp_cli.
  std::map<std::string, std::vector<std::string>> axis;
  std::map<std::string, std::string> scalar;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--quiet") {
      quiet = true;
      continue;
    }
    if (key == "--help" || key == "-h") usage(nullptr, 0);
    const OptionSpec* opt = find_option(key);
    if (opt == nullptr) {
      usage(((key.rfind("--", 0) == 0 ? "unknown option: "
                                      : "unexpected argument: ") +
             key)
                .c_str());
    }
    if (i + 1 >= argc) usage((key + " requires a value").c_str());
    const std::string value = argv[++i];
    if (opt->repeatable)
      axis[key].push_back(value);
    else
      scalar[key] = value;
  }

  auto get = [&](const char* key, const char* fallback) {
    const auto it = scalar.find(key);
    return it == scalar.end() ? std::string(fallback) : it->second;
  };

  SweepOptions opts;
  opts.matrix = get("--matrix", "poisson2d:12,12");
  opts.solver = get("--solver", "resilient-pcg");
  opts.precond = get("--precond", "block-jacobi");
  opts.nodes =
      static_cast<rank_t>(parse_int(get("--nodes", "8"), "--nodes"));
  opts.phi = static_cast<int>(parse_int(get("--phi", "2"), "--phi"));
  opts.repetitions =
      static_cast<int>(parse_int(get("--reps", "5"), "--reps"));
  opts.rtol = parse_double(get("--rtol", "1e-8"), "--rtol");
  opts.block_size = static_cast<index_t>(
      parse_int(get("--block-size", "10"), "--block-size"));
  if (scalar.count("--seed")) {
    const std::string& text = scalar.at("--seed");
    char* end = nullptr;
    opts.seed = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end == nullptr || *end != '\0')
      usage("--seed must be a non-negative integer");
  }
  if (scalar.count("--threads")) {
    const auto n = parse_int(scalar.at("--threads"), "--threads");
    if (n < 0) usage("--threads must be a non-negative integer");
    opts.threads = static_cast<int>(n);
    set_num_threads(static_cast<int>(n)); // the references run here too
  }

  // Default grid: the smallest sweep that exercises every subsystem —
  // both recovery strategies, two intervals, an uncorrelated and a
  // rack-correlated process, a homogeneous and a straggler cluster.
  ParamGrid grid;
  auto axis_values = [&](const char* key,
                         std::vector<std::string> fallback) {
    const auto it = axis.find(key);
    return it == axis.end() ? fallback : it->second;
  };
  for (const std::string& s : axis_values("--strategy", {"esrp", "imcr"}))
    grid["strategy"].push_back(s);
  for (const std::string& t : axis_values("--interval", {"10", "25"}))
    grid["interval"].push_back(parse_int(t, "--interval"));
  for (const std::string& p : axis_values(
           "--process",
           {"exponential:mean=40", "rack:2/exponential:mean=40"}))
    grid["process"].push_back(p);
  for (const std::string& c : axis_values(
           "--cluster", {"homogeneous", "straggler:count=1,factor=4"}))
    grid["cluster"].push_back(c);

  try {
    const SweepResult result = run_sweep(grid, opts);
    if (!quiet) {
      print_sweep_table(result, std::cout);
    } else {
      std::cout << sweep_csv(result);
    }
    if (scalar.count("--csv")) {
      const std::string& path = scalar.at("--csv");
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "scenario_sweep: cannot write %s\n",
                     path.c_str());
        return 1;
      }
      out << sweep_csv(result);
      if (!quiet) std::printf("csv written to %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_sweep: %s\n", e.what());
    return 1;
  }
}
