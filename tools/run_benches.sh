#!/usr/bin/env bash
# Build and run the paper-reproduction benches, one log per bench.
#
#   tools/run_benches.sh                     # configure+build+run everything
#   tools/run_benches.sh --list              # print available benches
#   tools/run_benches.sh --only bench_table2_emilia bench_fig2_emilia
#   tools/run_benches.sh --build-dir build-debug
#   tools/run_benches.sh --threads 4         # kernel threads per bench
#                                            # (0 = all hardware threads)
#   tools/run_benches.sh --baseline BENCH_<stamp>.json
#                                            # compare against a previous
#                                            # snapshot: prints per-bench
#                                            # real-time deltas; a >15%
#                                            # regression on a fused-kernel
#                                            # measurement (name matching
#                                            # /Fused/) is a SUMMARY FAIL
#   tools/run_benches.sh --baseline auto     # same, but resolve the baseline
#                                            # to the newest committed
#                                            # BENCH_*.json (git ls-files);
#                                            # errors if none is committed
#
# Results go to bench_results/<UTC timestamp>/<bench>.log, and a summary of
# exit codes to bench_results/<UTC timestamp>/SUMMARY. A machine-readable
# snapshot of the run — per-bench status plus every google-benchmark row —
# is written to BENCH_<UTC timestamp>.json in the repo root so successive
# runs accumulate a perf trajectory. The script exits nonzero iff any bench
# failed. Table/figure benches of the same matrix share runs through the
# xp::ResultCache, so running them together is cheaper than separately.
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
build_dir="$repo_root/build"
list_only=0
baseline=""
only=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --list) list_only=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --baseline)
      baseline="$2"
      if [[ "$baseline" == auto ]]; then
        # Newest committed snapshot: the stamps are UTC ISO-8601-ish, so the
        # lexicographically last path is the most recent run.
        baseline=$(cd "$repo_root" && git ls-files 'BENCH_*.json' | sort | tail -1)
        if [[ -z "$baseline" ]]; then
          echo "--baseline auto: no committed BENCH_*.json snapshot found" >&2
          exit 2
        fi
        baseline="$repo_root/$baseline"
        echo "baseline auto -> $(basename "$baseline")"
      fi
      if [[ ! -f "$baseline" ]]; then
        echo "--baseline: no such snapshot: $baseline" >&2
        exit 2
      fi
      shift 2 ;;
    --threads)
      # The kernels read ESRP_NUM_THREADS at startup (src/parallel), so a
      # plain env export configures every bench binary uniformly.
      export ESRP_NUM_THREADS="$2"; shift 2 ;;
    --only)
      shift
      while [[ $# -gt 0 && "$1" != --* ]]; do only+=("$1"); shift; done
      if [[ ${#only[@]} -eq 0 ]]; then
        echo "--only needs at least one bench name (see --list)" >&2
        exit 2
      fi
      ;;
    -h|--help) sed -n '2,26p' "$0"; exit 0 ;;
    *) echo "unknown option: $1 (try --help)" >&2; exit 2 ;;
  esac
done

benches=()
for src in "$repo_root"/bench/bench_*.cpp; do
  benches+=("$(basename "${src%.cpp}")")
done

if [[ $list_only -eq 1 ]]; then
  printf '%s\n' "${benches[@]}"
  exit 0
fi

if [[ ${#only[@]} -gt 0 ]]; then
  for b in "${only[@]}"; do
    if [[ ! " ${benches[*]} " == *" $b "* ]]; then
      echo "no such bench: $b (see --list)" >&2
      exit 2
    fi
  done
  benches=("${only[@]}")
fi

stamp=$(date -u +%Y%m%dT%H%M%SZ)
out_dir="$repo_root/bench_results/$stamp"
mkdir -p "$out_dir"

# Configure, and drop benches the configure step reported as skipped
# (bench_micro_kernels without google-benchmark) so the targeted build only
# asks for targets that exist — and never runs a stale binary of a bench the
# current configure no longer builds.
cfg_log=$(cmake -B "$build_dir" -S "$repo_root" -DESRP_BUILD_BENCHES=ON 2>&1) \
  || { printf '%s\n' "$cfg_log" >&2; exit 1; }
targets=()
for b in "${benches[@]}"; do
  if [[ "$cfg_log" == *"skipping $b"* ]]; then
    echo "SKIP $b (not configured — google-benchmark missing?)" | tee -a "$out_dir/SUMMARY"
  else
    targets+=("$b")
  fi
done
if [[ ${#targets[@]} -eq 0 ]]; then
  echo "nothing to build: every requested bench was skipped" >&2
  exit 1
fi
cmake --build "$build_dir" -j "$(nproc)" --target "${targets[@]}"

echo "writing results to $out_dir"

status=0
for b in "${targets[@]}"; do
  echo "=== $b"
  if (cd "$build_dir" && "./$b") >"$out_dir/$b.log" 2>&1; then
    # google-benchmark exits 0 even when a benchmark calls SkipWithError
    # (e.g. BM_FacadeOverheadAssert's <1% facade-dispatch bound), so also
    # treat its "ERROR OCCURRED" marker as a failure.
    if grep -q "ERROR OCCURRED" "$out_dir/$b.log"; then
      echo "FAIL $b (benchmark-internal assertion — see log)" | tee -a "$out_dir/SUMMARY"
      status=1
    else
      echo "PASS $b" >> "$out_dir/SUMMARY"
    fi
  else
    rc=$?
    echo "FAIL $b (exit $rc)" | tee -a "$out_dir/SUMMARY"
    status=1
  fi
done

echo "---"
cat "$out_dir/SUMMARY"

# Dated JSON snapshot for the perf trajectory: one object per bench with
# its SUMMARY status, plus every google-benchmark measurement row found in
# the logs (BM_* name, real/cpu time with unit, iteration count). Written
# last so a crashed run leaves no half-snapshot behind.
bench_json="$repo_root/BENCH_$stamp.json"
{
  echo '{'
  echo "  \"stamp\": \"$stamp\","
  echo "  \"threads\": \"${ESRP_NUM_THREADS:-1}\","
  echo '  "benches": ['
  awk '{
    status = $1; name = $2;
    printf "%s    {\"name\": \"%s\", \"status\": \"%s\"}", sep, name, status;
    sep = ",\n";
  } END { print "" }' "$out_dir/SUMMARY"
  echo '  ],'
  echo '  "measurements": ['
  cat "$out_dir"/*.log 2>/dev/null | awk '
    # Numeric guard on the time fields: a SkipWithError row reads
    # "BM_Foo ERROR OCCURRED: ..." and must not corrupt the JSON.
    $1 ~ /^BM_/ && NF >= 6 && $2 ~ /^[0-9.e+-]+$/ && $4 ~ /^[0-9.e+-]+$/ {
      printf "%s    {\"name\": \"%s\", \"real_time\": %s, \"time_unit\": \"%s\", \"cpu_time\": %s, \"iterations\": %s}",
             sep, $1, $2, $3, $4, $6;
      sep = ",\n";
    } END { print "" }'
  echo '  ]'
  echo '}'
} > "$bench_json"
echo "perf snapshot: $bench_json"

# Baseline compare: per-measurement real-time deltas against a previous
# BENCH_<stamp>.json. Only the fused-kernel measurements (BM_*Fused*) gate
# the run — they guard the PR 4 fusion wins — and only regressions beyond
# 15% fail; everything else is informational (timings on shared runners are
# noisy, which is also why the CI hook runs this step as non-blocking).
if [[ -n "$baseline" ]]; then
  echo "--- baseline compare: $(basename "$baseline") -> $(basename "$bench_json")"
  regress_tmp=$(mktemp)
  awk -v regress_file="$regress_tmp" '
    FNR == 1 { file_idx++ }
    /"name": ".*"real_time":/ {
      line = $0
      split(line, q, "\"")
      name = q[4]
      sub(/.*"real_time": /, "", line)
      sub(/,.*/, "", line)
      t = line + 0
      if (file_idx == 1) {
        base[name] = t
      } else if (!(name in cur)) {
        cur[name] = t
        order[++n] = name
      }
    }
    END {
      printf "%-52s %14s %14s %9s\n", "benchmark", "baseline", "current", "delta"
      for (k = 1; k <= n; ++k) {
        name = order[k]
        if (!(name in base) || base[name] == 0) {
          printf "%-52s %14s %14.2f %9s\n", name, "-", cur[name], "new"
          continue
        }
        delta = 100 * (cur[name] - base[name]) / base[name]
        printf "%-52s %14.2f %14.2f %+8.1f%%\n", name, base[name], cur[name], delta
        if (name ~ /Fused/ && delta > 15)
          printf "%s %+0.1f%%\n", name, delta >> regress_file
      }
    }' "$baseline" "$bench_json"
  if [[ -s "$regress_tmp" ]]; then
    while read -r name delta; do
      echo "FAIL bench-compare ($name regressed $delta vs baseline, limit +15%)" | tee -a "$out_dir/SUMMARY"
    done < "$regress_tmp"
    status=1
  else
    echo "PASS bench-compare" >> "$out_dir/SUMMARY"
  fi
  rm -f "$regress_tmp"
fi

# Belt and braces: derive the exit code from the SUMMARY itself in addition
# to the loop's status flag, so any FAIL line guarantees a nonzero exit even
# if a future refactor moves the loop into a subshell or pipe.
if grep -q '^FAIL ' "$out_dir/SUMMARY"; then
  exit 1
fi
exit $status
