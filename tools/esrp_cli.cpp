// esrp_cli — run one resilient PCG experiment from the command line.
//
// Examples:
//   esrp_cli --matrix emilia --nodes 128 --strategy esrp --interval 20 --phi 3 --fail-at auto --fail-ranks 64:3
//   esrp_cli --matrix poisson3d:24,24,24 --strategy imcr --interval 50 --phi 1 --fail-at 100 --fail-ranks 0:1
//   esrp_cli --matrix mm:/path/to/matrix.mtx --strategy none
//
// Matrices: emilia | audikw | poisson2d:NX,NY | poisson3d:NX,NY,NZ |
//           mm:<path to Matrix Market file>
// `--fail-at auto` places the failure with the paper's worst-case rule
// (two iterations before the end of the interval containing C/2, which
// requires one extra reference solve).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "parallel/parallel.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

// One table drives both the help text and the allowlist of value-taking
// options, so a new flag cannot be documented but rejected (or vice versa).
struct OptionSpec {
  const char* flag;     ///< bare option name, e.g. "--matrix"
  const char* arg;      ///< argument placeholder, or nullptr for booleans
  const char* help;     ///< may contain embedded newlines with indentation
};

constexpr OptionSpec kOptions[] = {
    {"--matrix", "M",
     "emilia | audikw | poisson2d:NX,NY |\n"
     "                    poisson3d:NX,NY,NZ | mm:<file.mtx>"},
    {"--nodes", "N", "simulated cluster size (default 128)"},
    {"--strategy", "S", "none | esrp | imcr  (default esrp)"},
    {"--interval", "T", "checkpoint interval (default 20; 1=ESR)"},
    {"--phi", "P", "redundant copies (default 1)"},
    {"--rtol", "X", "convergence tolerance (default 1e-8)"},
    {"--block-size", "B", "block Jacobi block size (default 10)"},
    {"--fail-at", "J|auto", "inject a failure (default: none)"},
    {"--fail-ranks", "S:C", "contiguous ranks, start:count (default 0:phi)"},
    {"--formulation", "F", "inverse | matrix (default inverse)"},
    {"--threads", "N",
     "kernel threads (default $ESRP_NUM_THREADS or 1;\n"
     "                    0 = all hardware threads)"},
    {"--no-spares", nullptr, "recover onto survivors (ESRP only)"},
    {"--quiet", nullptr, "machine-readable one-line output"},
};

[[noreturn]] void usage(const char* msg = nullptr, int code = 2) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out, "usage: esrp_cli [options]\n");
  for (const OptionSpec& o : kOptions) {
    char label[32];
    std::snprintf(label, sizeof label, "%s %s", o.flag,
                  o.arg ? o.arg : "");
    std::fprintf(out, "  %-17s %s\n", label, o.help);
  }
  std::exit(code);
}

bool takes_value(const std::string& key) {
  for (const OptionSpec& o : kOptions)
    if (o.arg != nullptr && key == o.flag) return true;
  return false;
}

std::vector<index_t> parse_dims(const std::string& spec, std::size_t count) {
  std::vector<index_t> dims;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (tok.empty()) usage("bad dimension list");
    dims.push_back(std::atol(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (dims.size() != count) usage("wrong number of dimensions");
  return dims;
}

TestProblem load_matrix(const std::string& spec) {
  if (spec == "emilia") return emilia_like_default();
  if (spec == "audikw") return audikw_like_default();
  if (spec.rfind("poisson2d:", 0) == 0) {
    const auto d = parse_dims(spec.substr(10), 2);
    return TestProblem{"poisson2d", "2D Poisson 5-pt",
                       poisson2d(d[0], d[1])};
  }
  if (spec.rfind("poisson3d:", 0) == 0) {
    const auto d = parse_dims(spec.substr(10), 3);
    return TestProblem{"poisson3d", "3D Poisson 7-pt",
                       poisson3d(d[0], d[1], d[2])};
  }
  if (spec.rfind("mm:", 0) == 0) {
    return TestProblem{spec.substr(3), "Matrix Market",
                       read_matrix_market_file(spec.substr(3))};
  }
  usage("unknown matrix spec");
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool no_spares = false, quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--no-spares") {
      no_spares = true;
    } else if (key == "--quiet") {
      quiet = true;
    } else if (key == "--help" || key == "-h") {
      usage(nullptr, 0);
    } else if (takes_value(key) && i + 1 < argc) {
      args[key] = argv[++i];
    } else if (takes_value(key)) {
      usage((key + " requires a value").c_str());
    } else if (key.rfind("--", 0) == 0) {
      usage(("unknown option: " + key).c_str());
    } else {
      usage(("unexpected argument: " + key).c_str());
    }
  }

  auto get = [&](const char* key, const char* fallback) {
    const auto it = args.find(key);
    return it == args.end() ? std::string(fallback) : it->second;
  };

  // Validated outside the try block: a bad --threads is a usage error
  // (exit 2), not a runtime failure. atoi would fold typos to 0, which is
  // the meaningful "all hardware threads" value here.
  if (args.count("--threads")) {
    const std::string& v = args.at("--threads");
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || end == nullptr || *end != '\0' || n < 0)
      usage("--threads must be a non-negative integer (0 = hardware)");
    set_num_threads(static_cast<int>(n));
  }

  try {
    const TestProblem prob = load_matrix(get("--matrix", "emilia"));
    const CsrMatrix& a = prob.matrix;
    const Vector b = xp::make_rhs(a);
    const auto nodes = static_cast<rank_t>(std::atoi(get("--nodes", "128").c_str()));
    const std::string strategy = get("--strategy", "esrp");
    const index_t interval = std::atol(get("--interval", "20").c_str());
    const int phi = std::atoi(get("--phi", "1").c_str());

    const BlockRowPartition part(a.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(a, nodes));
    const BlockJacobiPreconditioner precond(
        a, part, std::atol(get("--block-size", "10").c_str()));

    ResilienceOptions opts;
    if (strategy == "none") opts.strategy = Strategy::none;
    else if (strategy == "esrp") opts.strategy = Strategy::esrp;
    else if (strategy == "imcr") opts.strategy = Strategy::imcr;
    else usage("unknown strategy");
    opts.interval = interval;
    opts.phi = phi;
    opts.rtol = std::atof(get("--rtol", "1e-8").c_str());
    opts.spare_nodes = !no_spares;
    const std::string form = get("--formulation", "inverse");
    if (form == "matrix") opts.precond_formulation = PrecondFormulation::matrix;
    else if (form != "inverse") usage("unknown formulation");

    double t0 = -1;
    const std::string fail_at = get("--fail-at", "");
    if (fail_at.empty() && args.count("--fail-ranks"))
      usage("--fail-ranks requires --fail-at");
    if (!fail_at.empty()) {
      index_t iteration;
      if (fail_at == "auto") {
        const xp::Reference ref = xp::run_reference(a, b, nodes, opts.rtol);
        iteration = xp::worst_case_failure_iteration(ref.iterations, interval);
        t0 = ref.t0_modeled;
        if (!quiet)
          std::printf("reference: C = %lld, t0 = %.3f s; failing at %lld\n",
                      static_cast<long long>(ref.iterations), t0,
                      static_cast<long long>(iteration));
      } else {
        iteration = std::atol(fail_at.c_str());
      }
      const std::string ranks = get("--fail-ranks",
                                    ("0:" + std::to_string(phi)).c_str());
      const std::size_t colon = ranks.find(':');
      if (colon == std::string::npos) usage("--fail-ranks needs start:count");
      opts.failure.iteration = iteration;
      opts.failure.ranks = contiguous_ranks(
          static_cast<rank_t>(std::atoi(ranks.substr(0, colon).c_str())),
          static_cast<rank_t>(std::atoi(ranks.substr(colon + 1).c_str())),
          nodes);
    }

    ResilientPcg solver(a, precond, cluster, opts);
    const ResilientSolveResult res = solver.solve(b);
    const real_t drift = residual_drift(a, b, res.x, res.r);

    if (quiet) {
      std::printf("converged=%d iterations=%lld executed=%lld "
                  "modeled_time=%.6f recoveries=%zu drift=%.3e\n",
                  res.converged ? 1 : 0,
                  static_cast<long long>(res.trajectory_iterations),
                  static_cast<long long>(res.executed_iterations),
                  res.modeled_time, res.recoveries.size(), drift);
      return res.converged ? 0 : 1;
    }

    std::printf("matrix:        %s (%lld rows, %lld nnz)\n",
                prob.name.c_str(), static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()));
    std::printf("strategy:      %s, T = %lld, phi = %d%s\n",
                to_string(opts.strategy).c_str(),
                static_cast<long long>(interval), phi,
                no_spares ? ", no spares" : "");
    if (num_threads() > 1)
      std::printf("threads:       %d\n", num_threads());
    std::printf("converged:     %s after %lld iterations (%lld executed)\n",
                res.converged ? "yes" : "no",
                static_cast<long long>(res.trajectory_iterations),
                static_cast<long long>(res.executed_iterations));
    std::printf("modeled time:  %.3f s on %d nodes\n", res.modeled_time,
                static_cast<int>(nodes));
    if (t0 > 0)
      std::printf("overhead:      %.1f%% over the reference\n",
                  100 * (res.modeled_time - t0) / t0);
    for (const RecoveryRecord& rec : res.recoveries) {
      std::printf("recovery:      failed at %lld, resumed from %lld "
                  "(%lld redone)%s, %.4f s modeled\n",
                  static_cast<long long>(rec.failed_at),
                  static_cast<long long>(rec.restored_to),
                  static_cast<long long>(rec.wasted_iterations),
                  rec.restarted_from_scratch ? " [scratch restart]" : "",
                  rec.modeled_time);
    }
    std::printf("residual drift: %+.3e\n", drift);
    return res.converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esrp_cli: %s\n", e.what());
    return 1;
  }
}
