// esrp_cli — run one solve through the esrp::solve(SolveSpec) facade.
//
// Examples:
//   esrp_cli --matrix emilia --nodes 128 --strategy esrp --interval 20 --phi 3 --fail-at auto --fail-ranks 64:3
//   esrp_cli --matrix poisson3d:24,24,24 --strategy imcr --interval 50 --phi 1 --fail-at 100 --fail-ranks 0:1
//   esrp_cli --matrix mm:/path/to/matrix.mtx --strategy none
//   esrp_cli --solver pipelined --precond ssor --matrix poisson2d:64,64
//   esrp_cli --list
//
// Solvers, preconditioners and matrix generators come from the string-keyed
// registries behind the facade (src/api/registry.hpp) — `--list` prints
// them, and an unknown key answers with a "did you mean" hint. `--fail-at
// auto` places the failure with the paper's worst-case rule (two iterations
// before the end of the interval containing C/2, which requires one extra
// reference solve).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "parallel/parallel.hpp"
#include "scenario/cluster_shape.hpp"
#include "scenario/failure_process.hpp"
#include "scenario/kv_params.hpp"
#include "service/solve_service.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

// One table drives both the help text and the allowlist of value-taking
// options, so a new flag cannot be documented but rejected (or vice versa).
struct OptionSpec {
  const char* flag;     ///< bare option name, e.g. "--matrix"
  const char* arg;      ///< argument placeholder, or nullptr for booleans
  const char* help;     ///< may contain embedded newlines with indentation
};

constexpr OptionSpec kOptions[] = {
    {"--matrix", "M",
     "emilia | audikw | poisson2d:NX,NY |\n"
     "                    poisson3d:NX,NY,NZ | laplace1d:N | mm:<file.mtx>\n"
     "                    (see --list)"},
    {"--solver", "S",
     "pcg | pipelined | resilient-pcg | dist-pipelined\n"
     "                    (default resilient-pcg; see --list)"},
    {"--precond", "P",
     "identity | jacobi | block-jacobi | ssor | ic0\n"
     "                    (default block-jacobi; see --list)"},
    {"--nodes", "N", "simulated cluster size (default 128)"},
    {"--strategy", "S",
     "none | esrp | imcr  (default esrp for the\n"
     "                    distributed solvers, none otherwise)"},
    {"--interval", "T", "checkpoint interval (default 20; 1=ESR)"},
    {"--phi", "P", "redundant copies (default 1)"},
    {"--rtol", "X", "convergence tolerance (default 1e-8)"},
    {"--block-size", "B", "block Jacobi block size (default 10)"},
    {"--fail-at", "J|auto", "inject a failure (default: none)"},
    {"--fail-ranks", "S:C", "contiguous ranks, start:count (default 0:phi)"},
    {"--failure-process", "SPEC",
     "sample a stochastic failure schedule instead of\n"
     "                    --fail-at: fixed:it=J[,start=S][,count=C] |\n"
     "                    exponential:mean=M | weibull:k=K,scale=S |\n"
     "                    rack:W/<inner> (see --list; runs one reference\n"
     "                    solve for the horizon C)"},
    {"--seed", "N", "failure-process sampling seed (default 1)"},
    {"--cluster", "SPEC",
     "cluster shape: homogeneous | straggler:... |\n"
     "                    slow-rack:... | slow-links:... (see --list)"},
    {"--sdc", "KV",
     "inject a silent bit-flip: it=J[,vec=p|x|r|\n"
     "                    checkpoint|pcopy][,entry=E][,bit=B]\n"
     "                    (resilient-pcg; live vectors detect via\n"
     "                    --residual-replacement, redundant state via the\n"
     "                    recovery ladder's checksums)"},
    {"--residual-replacement", "K",
     "recompute r = b - A x every K iterations\n"
     "                    (default 0 = never; resilient-pcg only)"},
    {"--formulation", "F", "inverse | matrix (default inverse)"},
    {"--threads", "N",
     "kernel threads (default $ESRP_NUM_THREADS or 1;\n"
     "                    0 = all hardware threads)"},
    {"--repeat", "N",
     "run the solve N times through the SolveService\n"
     "                    prepare/solve split, re-using one prepared handle\n"
     "                    (matrix, plans, factorization) across runs, and\n"
     "                    print the plan-cache statistics (default 1)"},
    {"--no-spares", nullptr,
     "recover onto survivors (resilient-pcg ESRP only)"},
    {"--recovery-policy", "P",
     "ladder | exact | checkpoint | scratch | shrink\n"
     "                    recovery-ladder preset (default ladder; shrink\n"
     "                    needs resilient-pcg + esrp, see --list)"},
    {"--list", nullptr, "print the registered solvers, preconditioners,\n"
                        "                    and matrix generators, then exit"},
    {"--quiet", nullptr, "machine-readable one-line output"},
};

[[noreturn]] void usage(const char* msg = nullptr, int code = 2) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out, "usage: esrp_cli [options]\n");
  for (const OptionSpec& o : kOptions) {
    char label[32];
    std::snprintf(label, sizeof label, "%s %s", o.flag,
                  o.arg ? o.arg : "");
    std::fprintf(out, "  %-17s %s\n", label, o.help);
  }
  std::exit(code);
}

bool takes_value(const std::string& key) {
  for (const OptionSpec& o : kOptions)
    if (o.arg != nullptr && key == o.flag) return true;
  return false;
}

template <typename Registry>
void print_registry(const Registry& reg, const char* heading) {
  std::printf("%s:\n", heading);
  for (const std::string& key : reg.keys())
    std::printf("  %-15s %s\n", key.c_str(), reg.help(key).c_str());
}

/// One capability line per solver, straight from the registry's
/// SolverEntry flags — the same flags validate_spec enforces, so what
/// --list prints is exactly what a spec may ask for.
void print_solver_registry() {
  std::printf("solvers:\n");
  for (const std::string& key : solver_registry().keys()) {
    const SolverEntry& e = solver_registry().get(key);
    std::printf("  %-15s %s\n", key.c_str(),
                solver_registry().help(key).c_str());
    std::string caps;
    if (!e.distributed) {
      caps = "sequential; no failure injection";
    } else {
      caps = "strategies: none";
      if (e.supports_esrp) caps += ", esrp";
      caps += ", imcr";
      caps += "; failures: ";
      if (e.max_failure_events == 0) {
        caps += "none";
      } else if (e.max_failure_events == 1) {
        caps += "single event";
      } else {
        caps += "multi-event";
      }
      caps += e.supports_no_spare ? "; no-spare recovery" : "; spares only";
      if (!e.supports_residual_replacement) caps += "; no residual replacement";
      if (e.supports_sdc) caps += "; sdc injection";
      // The recovery-ladder rungs this solver can climb (the shrink and
      // rejoin rungs need the repartition/rejoin hooks).
      caps += e.supports_shrink
                  ? "; rungs: reconstruct, older-snapshot, checkpoint, "
                    "shrink, rejoin, scratch"
                  : "; rungs: reconstruct, older-snapshot, checkpoint, "
                    "scratch";
    }
    if (!e.supports_x0) caps += "; no initial guess (x0)";
    std::printf("  %-15s   [%s]\n", "", caps.c_str());
  }
}

[[noreturn]] void list_registries() {
  print_solver_registry();
  print_registry(precond_registry(), "preconditioners");
  print_registry(matrix_registry(), "matrices");
  print_registry(failure_process_registry(), "failure processes");
  print_registry(cluster_shape_registry(), "cluster shapes");
  std::exit(0);
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool no_spares = false, quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--no-spares") {
      no_spares = true;
    } else if (key == "--quiet") {
      quiet = true;
    } else if (key == "--list") {
      list_registries();
    } else if (key == "--help" || key == "-h") {
      usage(nullptr, 0);
    } else if (takes_value(key) && i + 1 < argc) {
      args[key] = argv[++i];
    } else if (takes_value(key)) {
      usage((key + " requires a value").c_str());
    } else if (key.rfind("--", 0) == 0) {
      usage(("unknown option: " + key).c_str());
    } else {
      usage(("unexpected argument: " + key).c_str());
    }
  }

  auto get = [&](const char* key, const char* fallback) {
    const auto it = args.find(key);
    return it == args.end() ? std::string(fallback) : it->second;
  };

  SolveSpec spec;
  spec.matrix = get("--matrix", "emilia");
  spec.solver = get("--solver", "resilient-pcg");
  spec.precond = get("--precond", "block-jacobi");

  // Key typos, bad enum spellings and a bad --threads are usage errors
  // (exit 2, with the registry's "did you mean" hint), not runtime
  // failures. Validate them before any expensive work.
  try {
    check_matrix_key(spec.matrix);
    const SolverEntry& entry = solver_registry().get(spec.solver);
    (void)precond_registry().get(spec.precond);
    // The default strategy follows the chosen solver's capabilities:
    // esrp where it is implemented, none elsewhere (sequential solvers
    // ignore the strategy entirely).
    spec.strategy = strategy_from_string(get(
        "--strategy",
        entry.distributed && entry.supports_esrp ? "esrp" : "none"));
    spec.formulation =
        formulation_from_string(get("--formulation", "inverse"));
  } catch (const Error& e) {
    usage(e.what());
  }

  if (args.count("--threads")) {
    const std::string& v = args.at("--threads");
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || end == nullptr || *end != '\0' || n < 0)
      usage("--threads must be a non-negative integer (0 = hardware)");
    spec.threads = static_cast<int>(n);
    // Also apply globally (as the pre-facade CLI did): the --fail-at auto
    // reference solve runs outside esrp::solve's per-solve override, and
    // its trajectory — which places the failure — is only comparable to
    // the main solve's at the same thread count.
    set_num_threads(static_cast<int>(n));
  }

  int repeat = 1;
  if (args.count("--repeat")) {
    const std::string& v = args.at("--repeat");
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || end == nullptr || *end != '\0' || n < 1)
      usage("--repeat must be a positive integer");
    repeat = static_cast<int>(n);
  }

  spec.nodes = static_cast<rank_t>(std::atoi(get("--nodes", "128").c_str()));
  spec.interval = std::atol(get("--interval", "20").c_str());
  spec.phi = std::atoi(get("--phi", "1").c_str());
  spec.rtol = std::atof(get("--rtol", "1e-8").c_str());
  spec.block_size = std::atol(get("--block-size", "10").c_str());
  spec.spare_nodes = !no_spares;
  spec.residual_replacement =
      std::atol(get("--residual-replacement", "0").c_str());
  spec.cluster_shape = get("--cluster", "");
  spec.recovery_policy = get("--recovery-policy", "ladder");

  // --sdc is strict k=v parsing (scenario/kv_params.hpp), so a typo'd key
  // is a usage error like an unknown registry key. Semantic checks
  // (target name, bit range, entry range) follow in validate_spec.
  if (args.count("--sdc")) {
    try {
      const KvParams kv(args.at("--sdc"), "--sdc",
                        {"it", "vec", "entry", "bit"});
      SdcEvent e;
      e.iteration = static_cast<index_t>(kv.require_int("it"));
      e.target = kv.get_string("vec", "p");
      e.index = static_cast<index_t>(kv.get_int("entry", 0));
      e.bit = static_cast<int>(kv.get_int("bit", 51));
      spec.sdc_events.push_back(e);
    } catch (const Error& e) {
      usage(e.what());
    }
  }

  // Unsupported solver/strategy/no-spare combinations are usage errors
  // (exit 2) with the registry's capability message, caught before any
  // expensive work — same spirit as the "did you mean" key hints above.
  // (The failure schedule is validated again inside esrp::solve.)
  try {
    validate_spec(spec);
  } catch (const Error& e) {
    usage(e.what());
  }

  // Generator-built matrices resolve at flag time, so malformed dimension
  // arguments stay usage errors (exit 2) like unknown keys. Matrix Market
  // files stay deferred to the solve: an unreadable file is a runtime
  // failure (exit 1), not a usage mistake.
  TestProblem prob;
  if (spec.matrix != "mm" && spec.matrix.rfind("mm:", 0) != 0) {
    try {
      prob = resolve_matrix(spec.matrix);
    } catch (const Error& e) {
      usage(e.what());
    }
    spec.matrix_data = &prob.matrix;
    spec.matrix_name = prob.name;
  }

  try {
    double t0 = -1;
    const std::string fail_at = get("--fail-at", "");
    const std::string process = get("--failure-process", "");
    if (fail_at.empty() && args.count("--fail-ranks"))
      usage("--fail-ranks requires --fail-at");
    if (process.empty() && args.count("--seed"))
      usage("--seed requires --failure-process");
    if (!process.empty() && !fail_at.empty())
      usage("--failure-process and --fail-at are mutually exclusive");
    if ((!fail_at.empty() || !process.empty()) &&
        !solver_registry().get(spec.solver).distributed)
      usage(((fail_at.empty() ? "--failure-process" : "--fail-at") +
             std::string(" needs a distributed solver; ") + spec.solver +
             " is sequential")
                .c_str());

    if (!process.empty()) {
      try {
        check_failure_process_key(process);
      } catch (const Error& e) {
        usage(e.what());
      }
      if (spec.matrix_data == nullptr) { // mm: path — build and reuse
        prob = resolve_matrix(spec.matrix);
        spec.matrix_data = &prob.matrix;
        spec.matrix_name = prob.name;
      }
      // The process samples iterations on [1, C): the horizon C comes from
      // the same failure-free reference solve --fail-at auto runs, so the
      // schedule is calibrated to the trajectory it will interrupt.
      SolveSpec ref_spec = spec;
      ref_spec.strategy = Strategy::none;
      ref_spec.failures.clear();
      ref_spec.sdc_events.clear();
      const SolveReport ref = esrp::solve(ref_spec);
      if (!ref.converged)
        usage("--failure-process: reference run did not converge");
      t0 = ref.modeled_time;
      const std::string seed_text = get("--seed", "1");
      char* seed_end = nullptr;
      const std::uint64_t seed =
          std::strtoull(seed_text.c_str(), &seed_end, 10);
      if (seed_text.empty() || seed_end == nullptr || *seed_end != '\0')
        usage("--seed must be a non-negative integer");
      spec.failures =
          sample_failure_schedule(process, spec.nodes, ref.iterations, seed);
      if (!quiet) {
        std::printf("reference: C = %lld, t0 = %.3f s; seed %llu sampled "
                    "%zu event(s)\n",
                    static_cast<long long>(ref.iterations), t0,
                    static_cast<unsigned long long>(seed),
                    spec.failures.size());
        for (const FailureEvent& e : spec.failures)
          std::printf("  failure at %lld: %zu rank(s) from %d\n",
                      static_cast<long long>(e.iteration), e.ranks.size(),
                      static_cast<int>(e.ranks.empty() ? -1 : e.ranks.front()));
      }
    }
    if (!fail_at.empty()) {
      index_t iteration;
      if (fail_at == "auto") {
        if (spec.matrix_data == nullptr) { // mm: path — build and reuse
          prob = resolve_matrix(spec.matrix);
          spec.matrix_data = &prob.matrix;
          spec.matrix_name = prob.name;
        }
        // The reference run is the failure-free, non-resilient solve of
        // the *same* spec (solver, preconditioner, block size, threads),
        // so C and t0 describe the trajectory the failure actually lands
        // on — not a fixed block-Jacobi baseline.
        SolveSpec ref_spec = spec;
        ref_spec.strategy = Strategy::none;
        ref_spec.failures.clear();
        const SolveReport ref = esrp::solve(ref_spec);
        if (!ref.converged) usage("--fail-at auto: reference run did not converge");
        iteration =
            xp::worst_case_failure_iteration(ref.iterations, spec.interval);
        t0 = ref.modeled_time;
        if (!quiet)
          std::printf("reference: C = %lld, t0 = %.3f s; failing at %lld\n",
                      static_cast<long long>(ref.iterations), t0,
                      static_cast<long long>(iteration));
      } else {
        iteration = std::atol(fail_at.c_str());
      }
      const std::string ranks = get("--fail-ranks",
                                    ("0:" + std::to_string(spec.phi)).c_str());
      const std::size_t colon = ranks.find(':');
      if (colon == std::string::npos) usage("--fail-ranks needs start:count");
      spec.failures.push_back(FailureEvent{
          iteration,
          contiguous_ranks(
              static_cast<rank_t>(std::atoi(ranks.substr(0, colon).c_str())),
              static_cast<rank_t>(std::atoi(ranks.substr(colon + 1).c_str())),
              spec.nodes)});
    }

    SolveReport res;
    if (repeat > 1) {
      // The prepare/solve split: the first prepare builds the handle
      // (matrix, partition, plans, factorization), every later one is a
      // plan-cache hit, and each run re-dispatches only the per-run half.
      // Service-routed solves are bitwise identical to esrp::solve, so
      // --repeat changes amortization, never the answer.
      SolveService service;
      for (int rep = 0; rep < repeat; ++rep) {
        const PrepareResult prep = service.prepare(spec);
        res = service.solve(*prep.handle, spec);
        if (!quiet)
          std::printf("run %d/%d:       converged=%d iterations=%lld "
                      "wall=%.4f s (prepare: cache %s)\n",
                      rep + 1, repeat, res.converged ? 1 : 0,
                      static_cast<long long>(res.iterations),
                      res.wall_seconds, prep.cache_hit ? "hit" : "miss");
      }
      const PlanCache::Stats cache = service.cache_stats();
      if (!quiet)
        std::printf("plan cache:    %llu hit(s), %llu miss(es), "
                    "%llu eviction(s), %zu resident\n",
                    static_cast<unsigned long long>(cache.hits),
                    static_cast<unsigned long long>(cache.misses),
                    static_cast<unsigned long long>(cache.evictions),
                    cache.size);
    } else {
      res = esrp::solve(spec);
    }
    const bool distributed = res.nodes > 0;

    if (quiet) {
      if (distributed) {
        std::size_t detected = 0;
        for (const SdcRecord& s : res.sdc) detected += s.detected ? 1 : 0;
        std::printf("converged=%d iterations=%lld executed=%lld "
                    "modeled_time=%.6f recoveries=%zu drift=%.3e",
                    res.converged ? 1 : 0,
                    static_cast<long long>(res.iterations),
                    static_cast<long long>(res.executed_iterations),
                    res.modeled_time, res.recoveries.size(), res.drift);
        if (!res.recoveries.empty()) {
          std::string rungs;
          for (const RecoveryRecord& rec : res.recoveries) {
            if (!rungs.empty()) rungs += ',';
            rungs += to_string(rec.rung);
          }
          std::printf(" rungs=%s", rungs.c_str());
        }
        if (!res.sdc.empty())
          std::printf(" sdc_detected=%zu/%zu", detected, res.sdc.size());
        std::printf("\n");
      } else {
        std::printf("converged=%d iterations=%lld relres=%.3e flops=%.3e\n",
                    res.converged ? 1 : 0,
                    static_cast<long long>(res.iterations), res.final_relres,
                    res.flops);
      }
      return res.converged ? 0 : 1;
    }

    std::printf("matrix:        %s (%lld rows, %lld nnz)\n",
                res.matrix.c_str(), static_cast<long long>(res.rows),
                static_cast<long long>(res.nnz));
    std::printf("solver:        %s, preconditioner %s\n", res.solver.c_str(),
                res.precond.c_str());
    if (distributed)
      std::printf("strategy:      %s, T = %lld, phi = %d, policy %s%s\n",
                  to_string(spec.strategy).c_str(),
                  static_cast<long long>(spec.interval), spec.phi,
                  spec.recovery_policy.c_str(),
                  no_spares ? ", no spares" : "");
    const int threads = spec.threads >= 0 ? spec.threads : num_threads();
    if (threads != 1)
      std::printf("threads:       %d%s\n", threads,
                  threads == 0 ? " (all hardware)" : "");
    std::printf("converged:     %s after %lld iterations (%lld executed)\n",
                res.converged ? "yes" : "no",
                static_cast<long long>(res.iterations),
                static_cast<long long>(res.executed_iterations));
    if (distributed) {
      std::printf("modeled time:  %.3f s on %d nodes\n", res.modeled_time,
                  static_cast<int>(res.nodes));
      if (t0 > 0)
        std::printf("overhead:      %.1f%% over the reference\n",
                    100 * (res.modeled_time - t0) / t0);
      for (const RecoveryRecord& rec : res.recoveries) {
        std::printf("recovery:      failed at %lld, resumed from %lld "
                    "(%lld redone) via %s, %.4f s modeled\n",
                    static_cast<long long>(rec.failed_at),
                    static_cast<long long>(rec.restored_to),
                    static_cast<long long>(rec.wasted_iterations),
                    to_string(rec.rung).c_str(), rec.modeled_time);
        if (rec.attempted.size() > 1) {
          std::string path;
          for (const RecoveryRung r : rec.attempted) {
            if (!path.empty()) path += " -> ";
            path += to_string(r);
          }
          std::printf("               ladder: %s\n", path.c_str());
        }
        if (rec.copies_corrupt > 0 || rec.checkpoints_corrupt > 0)
          std::printf("               integrity: %lld corrupt cop%s, "
                      "%lld corrupt checkpoint%s demoted (%lld copies "
                      "verified)\n",
                      static_cast<long long>(rec.copies_corrupt),
                      rec.copies_corrupt == 1 ? "y" : "ies",
                      static_cast<long long>(rec.checkpoints_corrupt),
                      rec.checkpoints_corrupt == 1 ? "" : "s",
                      static_cast<long long>(rec.copies_verified));
        if (rec.ranks_absorbed > 0 || rec.ranks_rejoined > 0)
          std::printf("               cluster: %lld rank%s lost, %lld "
                      "absorbed, %lld rejoined\n",
                      static_cast<long long>(rec.ranks_lost),
                      rec.ranks_lost == 1 ? "" : "s",
                      static_cast<long long>(rec.ranks_absorbed),
                      static_cast<long long>(rec.ranks_rejoined));
      }
      for (const SdcRecord& s : res.sdc) {
        std::printf("sdc:           bit %d of %s[%lld] flipped at %lld on "
                    "rank %d — ",
                    s.event.bit, s.event.target.c_str(),
                    static_cast<long long>(s.event.index),
                    static_cast<long long>(s.event.iteration),
                    static_cast<int>(s.rank));
        if (s.detected)
          std::printf("detected at %lld (gap %.3e)\n",
                      static_cast<long long>(s.detected_at),
                      static_cast<double>(s.discrepancy));
        else
          std::printf("UNDETECTED (max gap %.3e%s)\n",
                      static_cast<double>(s.discrepancy),
                      spec.residual_replacement > 0
                          ? ""
                          : "; no residual replacement configured");
      }
      std::printf("residual drift: %+.3e\n", res.drift);
    } else {
      std::printf("final relres:  %.3e after %.3e flops\n", res.final_relres,
                  res.flops);
    }
    return res.converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esrp_cli: %s\n", e.what());
    return 1;
  }
}
