#include "common/error.hpp"

#include <gtest/gtest.h>

namespace esrp {
namespace {

TEST(EsrpCheck, PassingConditionIsSilent) {
  EXPECT_NO_THROW(ESRP_CHECK(1 + 1 == 2));
}

TEST(EsrpCheck, FailingConditionThrowsError) {
  EXPECT_THROW(ESRP_CHECK(false), Error);
}

TEST(EsrpCheck, MessageContainsExpressionAndLocation) {
  try {
    ESRP_CHECK(2 < 1);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(EsrpCheckMsg, StreamedMessageIsIncluded) {
  try {
    const int n = -3;
    ESRP_CHECK_MSG(n >= 0, "dimension must be non-negative, got " << n);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("got -3"), std::string::npos);
  }
}

TEST(EsrpCheckMsg, PassingConditionDoesNotEvaluateStreamEffectsIntoThrow) {
  EXPECT_NO_THROW(ESRP_CHECK_MSG(true, "never shown"));
}

TEST(Error, IsARuntimeError) {
  const Error e("boom");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "boom");
}

} // namespace
} // namespace esrp
