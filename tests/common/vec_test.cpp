#include "common/vec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(VecCopy, CopiesAllEntries) {
  const Vector x{1, 2, 3};
  Vector y(3, 0);
  vec_copy(x, y);
  EXPECT_EQ(y, (Vector{1, 2, 3}));
}

TEST(VecCopy, SizeMismatchThrows) {
  const Vector x{1, 2};
  Vector y(3);
  EXPECT_THROW(vec_copy(x, y), Error);
}

TEST(VecZero, ZeroesInPlace) {
  Vector x{1, -2, 3};
  vec_zero(x);
  EXPECT_EQ(x, (Vector{0, 0, 0}));
}

TEST(VecScale, ScalesInPlace) {
  Vector x{1, -2, 3};
  vec_scale(x, -2);
  EXPECT_EQ(x, (Vector{-2, 4, -6}));
}

TEST(VecAxpy, ComputesYPlusAlphaX) {
  Vector y{1, 1, 1};
  const Vector x{1, 2, 3};
  vec_axpy(y, 2, x);
  EXPECT_EQ(y, (Vector{3, 5, 7}));
}

TEST(VecAxpy, AlphaZeroLeavesYUnchanged) {
  Vector y{4, 5};
  vec_axpy(y, 0, Vector{9, 9});
  EXPECT_EQ(y, (Vector{4, 5}));
}

TEST(VecXpby, ComputesXPlusBetaY) {
  Vector y{1, 2};
  const Vector x{10, 20};
  vec_xpby(y, x, 3);
  EXPECT_EQ(y, (Vector{13, 26}));
}

TEST(VecXpby, BetaZeroCopiesX) {
  Vector y{7, 7};
  vec_xpby(y, Vector{1, 2}, 0);
  EXPECT_EQ(y, (Vector{1, 2}));
}

TEST(VecPointwiseMul, MultipliesEntrywise) {
  Vector z(3);
  vec_pointwise_mul(Vector{1, 2, 3}, Vector{4, 5, 6}, z);
  EXPECT_EQ(z, (Vector{4, 10, 18}));
}

TEST(VecDot, ComputesInnerProduct) {
  EXPECT_DOUBLE_EQ(vec_dot(Vector{1, 2, 3}, Vector{4, 5, 6}), 32);
}

TEST(VecDot, EmptyVectorsGiveZero) {
  EXPECT_DOUBLE_EQ(vec_dot(Vector{}, Vector{}), 0);
}

TEST(VecNorm2, MatchesPythagoras) {
  EXPECT_DOUBLE_EQ(vec_norm2(Vector{3, 4}), 5);
}

TEST(VecNormInf, PicksLargestMagnitude) {
  EXPECT_DOUBLE_EQ(vec_norm_inf(Vector{-7, 3, 5}), 7);
}

TEST(VecDist2, MeasuresEuclideanDistance) {
  EXPECT_DOUBLE_EQ(vec_dist2(Vector{1, 1}, Vector{4, 5}), 5);
}

TEST(VecRelDiffInf, ZeroForIdenticalVectors) {
  EXPECT_DOUBLE_EQ(vec_rel_diff_inf(Vector{1, 2}, Vector{1, 2}), 0);
}

TEST(VecRelDiffInf, NormalizesByReferenceMagnitude) {
  // diff = 1, ||y||_inf = 100 -> 0.01
  EXPECT_DOUBLE_EQ(vec_rel_diff_inf(Vector{101, 0}, Vector{100, 0}), 0.01);
}

TEST(VecRelDiffInf, SmallReferenceFallsBackToAbsolute) {
  // ||y||_inf < 1 uses the max(1, .) floor.
  EXPECT_DOUBLE_EQ(vec_rel_diff_inf(Vector{0.5}, Vector{0.1}), 0.4);
}

} // namespace
} // namespace esrp
