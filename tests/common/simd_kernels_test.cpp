// SIMD-vs-scalar-reference parity for every vectorized kernel. The
// reference below re-implements the documented lane-order contract
// (common/simd.hpp: 4 lane accumulators, lane l taking indices i ≡ l mod 4,
// combined as (l0 + l1) + (l2 + l3), serial tail; chunked by kReduceGrain
// with the single-chunk serial path at one thread) in plain scalar code
// that never touches the SIMD layer. The vectorized build must match it
// bitwise — and so must the ESRP_FORCE_SCALAR fallback build, which CI runs
// over this same suite: both matching the one reference proves vectorized
// and forced-scalar builds are bitwise identical to each other.
#include "common/simd.hpp"

#include <gtest/gtest.h>

#include "../parallel/thread_count_guard.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/fused.hpp"
#include "common/rng.hpp"
#include "common/vec.hpp"
#include "parallel/parallel.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (real_t& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

::testing::AssertionResult bits_eq(real_t a, real_t b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << std::hexfloat << a << " != " << b << " (bitwise)";
}

void expect_bits_eq(std::span<const real_t> a, std::span<const real_t> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(bits_eq(a[i], b[i])) << "index " << i;
}

/// The contract's per-chunk dot, written without the SIMD layer.
real_t ref_dot_chunk(const real_t* x, const real_t* y, index_t lo,
                     index_t hi) {
  real_t lane[4] = {0, 0, 0, 0};
  index_t i = lo;
  for (; i + 4 <= hi; i += 4)
    for (int l = 0; l < 4; ++l) lane[l] += x[i + l] * y[i + l];
  real_t s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < hi; ++i) s += x[i] * y[i];
  return s;
}

real_t ref_dist2_chunk(const real_t* x, const real_t* y, index_t lo,
                       index_t hi) {
  real_t lane[4] = {0, 0, 0, 0};
  index_t i = lo;
  for (; i + 4 <= hi; i += 4)
    for (int l = 0; l < 4; ++l) {
      const real_t d = x[i + l] - y[i + l];
      lane[l] += d * d;
    }
  real_t s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < hi; ++i) {
    const real_t d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

/// parallel_reduce's exact combination semantics, serially: a single chunk
/// at one thread (or when the range fits one grain), else fixed kReduceGrain
/// chunks combined in index order starting from +0.0.
template <class ChunkFn>
real_t ref_reduce(index_t n, int threads, ChunkFn&& chunk) {
  if (threads == 1 || n <= kReduceGrain) return real_t{0} + chunk(0, n);
  real_t acc = 0;
  for (index_t lo = 0; lo < n; lo += kReduceGrain)
    acc = acc + chunk(lo, std::min(n, lo + kReduceGrain));
  return acc;
}

// Sizes: bigger than one grain with a non-multiple-of-4 tail, and a tiny
// odd size that is all tail.
constexpr std::size_t kBig = (1u << 15) + 3u;
constexpr std::size_t kTiny = 7;

TEST(SimdKernels, VecDotMatchesLaneOrderedReference) {
  ThreadCountGuard guard;
  for (const std::size_t n : {kTiny, kBig}) {
    const Vector x = random_vector(n, 1);
    const Vector y = random_vector(n, 2);
    for (const int threads : {1, 2, 4}) {
      set_num_threads(threads);
      const real_t expected =
          ref_reduce(static_cast<index_t>(n), threads,
                     [&](index_t lo, index_t hi) {
                       return ref_dot_chunk(x.data(), y.data(), lo, hi);
                     });
      ASSERT_TRUE(bits_eq(vec_dot(x, y), expected))
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(SimdKernels, VecNorm2AndDist2MatchReference) {
  ThreadCountGuard guard;
  const Vector x = random_vector(kBig, 3);
  const Vector y = random_vector(kBig, 4);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    const real_t dot = ref_reduce(static_cast<index_t>(kBig), threads,
                                  [&](index_t lo, index_t hi) {
                                    return ref_dot_chunk(x.data(), x.data(),
                                                         lo, hi);
                                  });
    ASSERT_TRUE(bits_eq(vec_norm2(x), std::sqrt(dot))) << threads;
    const real_t d2 = ref_reduce(static_cast<index_t>(kBig), threads,
                                 [&](index_t lo, index_t hi) {
                                   return ref_dist2_chunk(x.data(), y.data(),
                                                          lo, hi);
                                 });
    ASSERT_TRUE(bits_eq(vec_dist2(x, y), std::sqrt(d2))) << threads;
  }
}

TEST(SimdKernels, MultiDotsMatchPerComponentReference) {
  ThreadCountGuard guard;
  const Vector x1 = random_vector(kBig, 5);
  const Vector y1 = random_vector(kBig, 6);
  const Vector x2 = random_vector(kBig, 7);
  const Vector y2 = random_vector(kBig, 8);
  const Vector x3 = random_vector(kBig, 9);
  const Vector y3 = random_vector(kBig, 10);
  const auto ref = [&](const Vector& x, const Vector& y, int threads) {
    return ref_reduce(static_cast<index_t>(kBig), threads,
                      [&](index_t lo, index_t hi) {
                        return ref_dot_chunk(x.data(), y.data(), lo, hi);
                      });
  };
  for (const int threads : {1, 2, 4}) {
    set_num_threads(threads);
    const auto [d1, d2] = vec_dot2(x1, y1, x2, y2);
    ASSERT_TRUE(bits_eq(d1, ref(x1, y1, threads))) << threads;
    ASSERT_TRUE(bits_eq(d2, ref(x2, y2, threads))) << threads;
    const auto t = vec_dot3(x1, y1, x2, y2, x3, y3);
    ASSERT_TRUE(bits_eq(t[0], ref(x1, y1, threads))) << threads;
    ASSERT_TRUE(bits_eq(t[1], ref(x2, y2, threads))) << threads;
    ASSERT_TRUE(bits_eq(t[2], ref(x3, y3, threads))) << threads;
  }
}

TEST(SimdKernels, SpmvAndSpmvDotMatchScalarRowReference) {
  ThreadCountGuard guard;
  // 22500 rows: several kReduceGrain chunks plus a partial one.
  const CsrMatrix a = poisson2d(150, 150);
  const auto n = static_cast<std::size_t>(a.rows());
  const Vector x = random_vector(n, 11);
  // The per-row reference: the plain serial CSR loop.
  Vector y_ref(n, 0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    real_t acc = 0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    y_ref[static_cast<std::size_t>(i)] = acc;
  }
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    Vector y(n, 0);
    a.spmv(x, y);
    expect_bits_eq(y, y_ref);
    const real_t expected =
        ref_reduce(a.rows(), threads, [&](index_t lo, index_t hi) {
          return ref_dot_chunk(x.data(), y_ref.data(), lo, hi);
        });
    Vector y2(n, 0);
    ASSERT_TRUE(bits_eq(a.spmv_dot(x, y2), expected)) << threads;
    expect_bits_eq(y2, y_ref);
  }
}

TEST(SimdKernels, SpmvMultiDotMatchesSingleRhsKernels) {
  ThreadCountGuard guard;
  const CsrMatrix a = poisson2d(60, 60);
  const auto n = static_cast<std::size_t>(a.rows());
  // 5 RHS: one full lane stripe plus a tail RHS.
  constexpr std::size_t kRhs = 5;
  std::vector<Vector> xs, ys_multi, ys_single;
  for (std::size_t j = 0; j < kRhs; ++j) {
    xs.push_back(random_vector(n, 20 + j));
    ys_multi.emplace_back(n, 0);
    ys_single.emplace_back(n, 0);
  }
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    std::vector<std::span<const real_t>> xspans(xs.begin(), xs.end());
    std::vector<std::span<real_t>> yspans(ys_multi.begin(), ys_multi.end());
    Vector dots(kRhs, 0);
    a.spmv_multi_dot(xspans, yspans, dots);
    for (std::size_t j = 0; j < kRhs; ++j) {
      const real_t single = a.spmv_dot(xs[j], ys_single[j]);
      ASSERT_TRUE(bits_eq(dots[j], single)) << "rhs " << j;
      expect_bits_eq(ys_multi[j], ys_single[j]);
    }
  }
}

TEST(SimdKernels, ElementwiseKernelsMatchScalarLoops) {
  ThreadCountGuard guard;
  const std::size_t n = kBig;
  const Vector x = random_vector(n, 30);
  const Vector w = random_vector(n, 31);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);

    Vector a = random_vector(n, 32), a_ref = a;
    vec_axpy(a, 0.37, x);
    for (std::size_t i = 0; i < n; ++i) a_ref[i] += 0.37 * x[i];
    expect_bits_eq(a, a_ref);

    Vector b = random_vector(n, 33), b_ref = b;
    vec_xpby(b, x, -1.25);
    for (std::size_t i = 0; i < n; ++i) b_ref[i] = x[i] + -1.25 * b_ref[i];
    expect_bits_eq(b, b_ref);

    Vector c = random_vector(n, 34), c_ref = c;
    vec_scale(c, 1.0 / 3.0);
    for (std::size_t i = 0; i < n; ++i) c_ref[i] *= 1.0 / 3.0;
    expect_bits_eq(c, c_ref);

    Vector d(n, 0), d_ref(n, 0);
    vec_pointwise_mul(x, w, d);
    for (std::size_t i = 0; i < n; ++i) d_ref[i] = x[i] * w[i];
    expect_bits_eq(d, d_ref);

    Vector e(n, 0), e_ref(n, 0);
    vec_sub(x, w, e);
    for (std::size_t i = 0; i < n; ++i) e_ref[i] = x[i] - w[i];
    expect_bits_eq(e, e_ref);
  }
}

TEST(SimdKernels, FusedUpdatesMatchScalarLoops) {
  ThreadCountGuard guard;
  const std::size_t n = kBig;
  const Vector x1 = random_vector(n, 40);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);

    // fused_axpy2 with the x2-aliases-y1 pattern the contract names.
    Vector y1 = random_vector(n, 41), y1_ref = y1;
    Vector y2 = random_vector(n, 42), y2_ref = y2;
    fused_axpy2(y1, 0.7, x1, y2, -0.3, y1);
    for (std::size_t i = 0; i < n; ++i) {
      y1_ref[i] += 0.7 * x1[i];
      y2_ref[i] += -0.3 * y1_ref[i];
    }
    expect_bits_eq(y1, y1_ref);
    expect_bits_eq(y2, y2_ref);

    // fused_pipelined_update: all 10 operands, both scalars.
    std::array<Vector, 10> v;
    std::array<Vector, 10> ref;
    for (std::size_t k = 0; k < v.size(); ++k) {
      v[k] = random_vector(n, 50 + k);
      ref[k] = v[k];
    }
    auto& [z, nv, q, m, s, w2, p, u, xx, r] = v;
    fused_pipelined_update(z, nv, q, m, s, w2, p, u, xx, r, 0.21, -0.83);
    auto& [rz, rnv, rq, rm, rs, rw, rp, ru, rx, rr] = ref;
    for (std::size_t i = 0; i < n; ++i) {
      rz[i] = rnv[i] + -0.83 * rz[i];
      rq[i] = rm[i] + -0.83 * rq[i];
      rs[i] = rw[i] + -0.83 * rs[i];
      rp[i] = ru[i] + -0.83 * rp[i];
      rx[i] += 0.21 * rp[i];
      rr[i] -= 0.21 * rs[i];
      ru[i] -= 0.21 * rq[i];
      rw[i] -= 0.21 * rz[i];
    }
    for (std::size_t k = 0; k < v.size(); ++k) expect_bits_eq(v[k], ref[k]);
  }
}

} // namespace
} // namespace esrp
