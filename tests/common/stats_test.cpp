#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/vec.hpp"

namespace esrp {
namespace {

TEST(Median, OddCountPicksMiddle) {
  const Vector xs{5, 1, 3};
  EXPECT_DOUBLE_EQ(median(xs), 3);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  const Vector xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Median, SingleElement) {
  const Vector xs{42};
  EXPECT_DOUBLE_EQ(median(xs), 42);
}

TEST(Median, InputOrderIsPreserved) {
  Vector xs{5, 1, 3};
  median(xs);
  EXPECT_EQ(xs, (Vector{5, 1, 3}));
}

TEST(Median, EmptyThrows) {
  const Vector xs;
  EXPECT_THROW(median(xs), Error);
}

TEST(Mean, AveragesValues) {
  const Vector xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stddev, SampleFormula) {
  const Vector xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4); // n-1 denominator
}

TEST(Stddev, SingleSampleIsZero) {
  const Vector xs{3};
  EXPECT_DOUBLE_EQ(stddev(xs), 0);
}

TEST(MinMax, FindExtremes) {
  const Vector xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1);
  EXPECT_DOUBLE_EQ(max_of(xs), 7);
}

TEST(Percentile, EndpointsAndMidpoint) {
  const Vector xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const Vector xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Summarize, PopulatesAllFields) {
  const Vector xs{1, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.med, 2);
  EXPECT_DOUBLE_EQ(s.avg, 2);
  EXPECT_DOUBLE_EQ(s.lo, 1);
  EXPECT_DOUBLE_EQ(s.hi, 3);
  EXPECT_NEAR(s.sd, 1.0, 1e-12);
}

TEST(Summarize, EmptyGivesZeroCount) {
  const Vector xs;
  EXPECT_EQ(summarize(xs).n, 0u);
}

} // namespace
} // namespace esrp
