#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace esrp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformIndexInclusiveBounds) {
  Rng rng(11);
  bool seen_lo = false, seen_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const index_t v = rng.uniform_index(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen_lo |= (v == 3);
    seen_hi |= (v == 6);
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(2024);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

} // namespace
} // namespace esrp
