// Parity suite for the fused iteration kernels (common/fused.hpp,
// CsrMatrix::spmv_dot): every fused kernel must be bitwise identical to the
// sequential composition of the unfused kernels it replaces, at 1, 2, and 4
// threads. "Bitwise" is EXPECT_EQ on doubles / memcmp on vectors — no
// tolerances — because the solvers rely on fusion being a pure sweep-count
// optimization that cannot perturb a trajectory.
#include <gtest/gtest.h>

#include <cstring>

#include "../parallel/thread_count_guard.hpp"
#include "common/fused.hpp"
#include "common/rng.hpp"
#include "parallel/parallel.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

/// Sizes straddling the serial cutoff and the fixed reduction grain: serial
/// floor, one exact grain, and a multi-chunk range with a ragged tail.
const std::size_t kSizes[] = {100, static_cast<std::size_t>(kReduceGrain),
                              static_cast<std::size_t>(3 * kReduceGrain) + 17};

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (real_t& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_bitwise_equal(const Vector& a, const Vector& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)))
      << what << " differs from the unfused composition";
}

TEST(FusedKernels, Dot2MatchesTwoDots) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector x1 = random_vector(n, 1), y1 = random_vector(n, 2);
    const Vector x2 = random_vector(n, 3), y2 = random_vector(n, 4);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      const auto [a, b] = vec_dot2(x1, y1, x2, y2);
      EXPECT_EQ(a, vec_dot(x1, y1));
      EXPECT_EQ(b, vec_dot(x2, y2));
    }
  }
}

TEST(FusedKernels, Dot3MatchesThreeDots) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector x1 = random_vector(n, 5), y1 = random_vector(n, 6);
    const Vector x2 = random_vector(n, 7), y2 = random_vector(n, 8);
    const Vector x3 = random_vector(n, 9), y3 = random_vector(n, 10);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      const auto [a, b, c] = vec_dot3(x1, y1, x2, y2, x3, y3);
      EXPECT_EQ(a, vec_dot(x1, y1));
      EXPECT_EQ(b, vec_dot(x2, y2));
      EXPECT_EQ(c, vec_dot(x3, y3));
    }
  }
}

TEST(FusedKernels, Dot3AliasedOperandsMatchSolverUsage) {
  // The solvers call vec_dot3(r, u, w, u, r, r) — operands alias heavily.
  ThreadCountGuard guard;
  const std::size_t n = kSizes[2];
  const Vector r = random_vector(n, 11), u = random_vector(n, 12),
               w = random_vector(n, 13);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);
    const auto [gamma, delta, rr] = vec_dot3(r, u, w, u, r, r);
    EXPECT_EQ(gamma, vec_dot(r, u));
    EXPECT_EQ(delta, vec_dot(w, u));
    EXPECT_EQ(rr, vec_dot(r, r));
  }
}

TEST(FusedKernels, VecSubMatchesElementwise) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 14), y = random_vector(n, 15);
    Vector expected(n);
    for (std::size_t k = 0; k < n; ++k) expected[k] = x[k] - y[k];
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      Vector z(n, 0);
      vec_sub(x, y, z);
      expect_bitwise_equal(expected, z, "vec_sub");
      // In-place form used by the residual kernels: r = b - r.
      Vector r = y;
      vec_sub(x, r, r);
      expect_bitwise_equal(expected, r, "vec_sub in-place");
    }
  }
}

TEST(FusedKernels, Axpy2MatchesTwoAxpys) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector p = random_vector(n, 16), ap = random_vector(n, 17);
    const Vector x0 = random_vector(n, 18), r0 = random_vector(n, 19);
    const real_t alpha = 0.731;
    Vector x_ref = x0, r_ref = r0;
    vec_axpy(x_ref, alpha, p);
    vec_axpy(r_ref, -alpha, ap);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      Vector x = x0, r = r0;
      fused_axpy2(x, alpha, p, r, -alpha, ap);
      expect_bitwise_equal(x_ref, x, "x");
      expect_bitwise_equal(r_ref, r, "r");
    }
  }
}

TEST(FusedKernels, Axpy2SecondInputMayAliasFirstOutput) {
  // y2 += a2 * y1 must see the already-updated y1, exactly as the
  // sequential pair does.
  ThreadCountGuard guard;
  const std::size_t n = kSizes[2];
  const Vector x1 = random_vector(n, 20);
  const Vector y1_0 = random_vector(n, 21), y2_0 = random_vector(n, 22);
  Vector y1_ref = y1_0, y2_ref = y2_0;
  vec_axpy(y1_ref, 0.5, x1);
  vec_axpy(y2_ref, -0.25, y1_ref);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);
    Vector y1 = y1_0, y2 = y2_0;
    fused_axpy2(y1, 0.5, x1, y2, -0.25, y1);
    expect_bitwise_equal(y1_ref, y1, "y1");
    expect_bitwise_equal(y2_ref, y2, "y2");
  }
}

TEST(FusedKernels, PipelinedUpdateMatchesEightKernelSequence) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector nv = random_vector(n, 23), m = random_vector(n, 24);
    const Vector z0 = random_vector(n, 25), q0 = random_vector(n, 26),
                 s0 = random_vector(n, 27), p0 = random_vector(n, 28),
                 x0 = random_vector(n, 29), r0 = random_vector(n, 30),
                 u0 = random_vector(n, 31), w0 = random_vector(n, 32);
    const real_t alpha = 0.391, beta = 0.274;

    Vector z_ref = z0, q_ref = q0, s_ref = s0, p_ref = p0;
    Vector x_ref = x0, r_ref = r0, u_ref = u0, w_ref = w0;
    vec_xpby(z_ref, nv, beta);
    vec_xpby(q_ref, m, beta);
    vec_xpby(s_ref, w_ref, beta);
    vec_xpby(p_ref, u_ref, beta);
    vec_axpy(x_ref, alpha, p_ref);
    vec_axpy(r_ref, -alpha, s_ref);
    vec_axpy(u_ref, -alpha, q_ref);
    vec_axpy(w_ref, -alpha, z_ref);

    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      Vector z = z0, q = q0, s = s0, p = p0;
      Vector x = x0, r = r0, u = u0, w = w0;
      fused_pipelined_update(z, nv, q, m, s, w, p, u, x, r, alpha, beta);
      expect_bitwise_equal(z_ref, z, "z");
      expect_bitwise_equal(q_ref, q, "q");
      expect_bitwise_equal(s_ref, s, "s");
      expect_bitwise_equal(p_ref, p, "p");
      expect_bitwise_equal(x_ref, x, "x");
      expect_bitwise_equal(r_ref, r, "r");
      expect_bitwise_equal(u_ref, u, "u");
      expect_bitwise_equal(w_ref, w, "w");
    }
  }
}

TEST(FusedKernels, SpmvDotMatchesSpmvThenDot) {
  ThreadCountGuard guard;
  // 22500 rows: above kReduceGrain, so the >= 2-thread runs exercise the
  // multi-chunk reduction path; 256 rows stays on the serial path.
  const CsrMatrix small = poisson2d(16, 16);
  const CsrMatrix large = poisson2d(150, 150);
  for (const CsrMatrix* a : {&small, &large}) {
    const auto n = static_cast<std::size_t>(a->rows());
    const Vector p = random_vector(n, 33);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "rows=" << n << " threads=" << threads);
      set_num_threads(threads);
      // Reference at the SAME thread count: a chunked reduction matches its
      // serial sum only below the grain, so the contract is per-count parity.
      Vector y_ref(n);
      a->spmv(p, y_ref);
      const real_t pap_ref = vec_dot(p, y_ref);
      Vector y(n, 0);
      const real_t pap = a->spmv_dot(p, y);
      EXPECT_EQ(pap_ref, pap);
      expect_bitwise_equal(y_ref, y, "y");
    }
  }
}

TEST(FusedKernels, ParallelCopyAndZeroMatchSerial) {
  ThreadCountGuard guard;
  for (const std::size_t n : kSizes) {
    const Vector x = random_vector(n, 34);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      set_num_threads(threads);
      Vector y(n, -1);
      vec_copy(x, y);
      expect_bitwise_equal(x, y, "copy");
      vec_zero(y);
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(real_t{0}, y[k]) << "zero at " << k;
      }
    }
  }
}

} // namespace
} // namespace esrp
