#include "partition/index_set.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(IsIndexSet, AcceptsStrictlyIncreasing) {
  EXPECT_TRUE(is_index_set(IndexSet{1, 4, 9}));
  EXPECT_TRUE(is_index_set(IndexSet{}));
  EXPECT_TRUE(is_index_set(IndexSet{0}));
}

TEST(IsIndexSet, RejectsDuplicatesAndDisorder) {
  EXPECT_FALSE(is_index_set(IndexSet{1, 1}));
  EXPECT_FALSE(is_index_set(IndexSet{2, 1}));
}

TEST(IndexRange, HalfOpenInterval) {
  EXPECT_EQ(index_range(2, 5), (IndexSet{2, 3, 4}));
  EXPECT_TRUE(index_range(3, 3).empty());
  EXPECT_THROW(index_range(5, 2), Error);
}

TEST(SetUnion, MergesSorted) {
  EXPECT_EQ(set_union(IndexSet{1, 3}, IndexSet{2, 3, 7}),
            (IndexSet{1, 2, 3, 7}));
}

TEST(SetDifference, RemovesMembers) {
  EXPECT_EQ(set_difference(IndexSet{1, 2, 3, 4}, IndexSet{2, 4}),
            (IndexSet{1, 3}));
}

TEST(SetIntersection, KeepsCommon) {
  EXPECT_EQ(set_intersection(IndexSet{1, 2, 5}, IndexSet{2, 5, 9}),
            (IndexSet{2, 5}));
}

TEST(SetComplement, WithinDomain) {
  EXPECT_EQ(set_complement(IndexSet{0, 2, 3}, 5), (IndexSet{1, 4}));
  EXPECT_EQ(set_complement(IndexSet{}, 3), (IndexSet{0, 1, 2}));
}

TEST(SetComplement, OutOfDomainThrows) {
  EXPECT_THROW(set_complement(IndexSet{5}, 3), Error);
}

TEST(SetContains, BinarySearchMembership) {
  const IndexSet s{1, 4, 6};
  EXPECT_TRUE(set_contains(s, 4));
  EXPECT_FALSE(set_contains(s, 5));
  EXPECT_FALSE(set_contains(IndexSet{}, 0));
}

TEST(SetAlgebra, ComplementOfComplementIsIdentity) {
  const IndexSet s{0, 3, 7, 9};
  EXPECT_EQ(set_complement(set_complement(s, 10), 10), s);
}

TEST(SetAlgebra, UnionWithComplementIsDomain) {
  const IndexSet s{2, 5};
  EXPECT_EQ(set_union(s, set_complement(s, 6)), index_range(0, 6));
}

} // namespace
} // namespace esrp
