#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netsim/failure.hpp"

namespace esrp {
namespace {

TEST(Partition, EvenSplit) {
  const BlockRowPartition p(12, 4);
  for (rank_t s = 0; s < 4; ++s) EXPECT_EQ(p.local_size(s), 3);
  EXPECT_EQ(p.begin(2), 6);
  EXPECT_EQ(p.end(3), 12);
}

TEST(Partition, RemainderGoesToLeadingNodes) {
  const BlockRowPartition p(10, 4); // 3,3,2,2
  EXPECT_EQ(p.local_size(0), 3);
  EXPECT_EQ(p.local_size(1), 3);
  EXPECT_EQ(p.local_size(2), 2);
  EXPECT_EQ(p.local_size(3), 2);
  EXPECT_EQ(p.end(3), 10);
}

TEST(Partition, MoreNodesThanRowsLeavesEmptyNodes) {
  const BlockRowPartition p(3, 5);
  index_t total = 0;
  for (rank_t s = 0; s < 5; ++s) total += p.local_size(s);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(p.local_size(4), 0);
}

TEST(Partition, OwnerIsConsistentWithRanges) {
  const BlockRowPartition p(100, 7);
  for (index_t i = 0; i < 100; ++i) {
    const rank_t s = p.owner(i);
    EXPECT_GE(i, p.begin(s));
    EXPECT_LT(i, p.end(s));
  }
}

TEST(Partition, GlobalLocalRoundTrip) {
  const BlockRowPartition p(57, 5);
  for (index_t i = 0; i < 57; ++i) {
    const rank_t s = p.owner(i);
    EXPECT_EQ(p.to_global(s, p.to_local(i)), i);
  }
}

TEST(Partition, OwnerOutOfRangeThrows) {
  const BlockRowPartition p(10, 2);
  EXPECT_THROW(p.owner(10), Error);
  EXPECT_THROW(p.owner(-1), Error);
}

TEST(Partition, OwnedByContiguousRanks) {
  const BlockRowPartition p(12, 4);
  const std::vector<rank_t> f{1, 2};
  EXPECT_EQ(p.owned_by(f), index_range(3, 9));
}

TEST(Partition, OwnedByUnsortedRanksIsSorted) {
  const BlockRowPartition p(12, 4);
  const std::vector<rank_t> f{3, 0};
  const IndexSet lost = p.owned_by(f);
  EXPECT_TRUE(is_index_set(lost));
  EXPECT_EQ(lost.size(), 6u);
  EXPECT_EQ(lost.front(), 0);
  EXPECT_EQ(lost.back(), 11);
}

TEST(Partition, DuplicateRanksThrow) {
  const BlockRowPartition p(12, 4);
  const std::vector<rank_t> f{1, 1};
  EXPECT_THROW(p.owned_by(f), Error);
}

TEST(Partition, ComplementOfOwnedIsEverythingElse) {
  const BlockRowPartition p(20, 4);
  const std::vector<rank_t> f{0, 2};
  const IndexSet lost = p.owned_by(f);
  const IndexSet kept = p.complement_of(f);
  EXPECT_EQ(set_union(lost, kept), index_range(0, 20));
  EXPECT_TRUE(set_intersection(lost, kept).empty());
}

TEST(Partition, SingleNodeOwnsEverything) {
  const BlockRowPartition p(8, 1);
  EXPECT_EQ(p.local_size(0), 8);
  EXPECT_EQ(p.owner(7), 0);
}

TEST(Partition, ExplicitOffsetsWithEmptyRanges) {
  const BlockRowPartition p(std::vector<index_t>{0, 4, 4, 8});
  EXPECT_EQ(p.num_nodes(), 3);
  EXPECT_EQ(p.global_size(), 8);
  EXPECT_EQ(p.local_size(1), 0);
  EXPECT_EQ(p.owner(3), 0);
  EXPECT_EQ(p.owner(4), 2); // empty rank 1 owns nothing
  EXPECT_EQ(p.active_nodes(), 2);
}

TEST(Partition, ExplicitOffsetsValidated) {
  EXPECT_THROW(BlockRowPartition(std::vector<index_t>{1, 4}), Error);
  EXPECT_THROW(BlockRowPartition(std::vector<index_t>{0, 4, 2}), Error);
  EXPECT_THROW(BlockRowPartition(std::vector<index_t>{0}), Error);
}

TEST(AbsorbRanks, MiddleBlockGoesToLeftNeighbor) {
  const BlockRowPartition p(12, 4); // 3 each
  const std::vector<rank_t> failed{1, 2};
  const BlockRowPartition q = absorb_ranks(p, failed);
  EXPECT_EQ(q.num_nodes(), 4);
  EXPECT_EQ(q.local_size(0), 9); // own 3 + ranges of 1 and 2
  EXPECT_EQ(q.local_size(1), 0);
  EXPECT_EQ(q.local_size(2), 0);
  EXPECT_EQ(q.local_size(3), 3);
  EXPECT_EQ(q.owner(5), 0);
}

TEST(AbsorbRanks, LeadingBlockGoesToRightNeighbor) {
  const BlockRowPartition p(12, 4);
  const std::vector<rank_t> failed{0};
  const BlockRowPartition q = absorb_ranks(p, failed);
  EXPECT_EQ(q.local_size(0), 0);
  EXPECT_EQ(q.local_size(1), 6);
  EXPECT_EQ(q.owner(0), 1);
}

TEST(AbsorbRanks, CoverageIsPreserved) {
  const BlockRowPartition p(57, 8);
  const std::vector<rank_t> failed{0, 3, 4, 7};
  const BlockRowPartition q = absorb_ranks(p, failed);
  index_t total = 0;
  for (rank_t s = 0; s < 8; ++s) {
    total += q.local_size(s);
    if (rank_in(failed, s)) {
      EXPECT_EQ(q.local_size(s), 0);
    }
  }
  EXPECT_EQ(total, 57);
  // Every index still has exactly one owner and ranges stay contiguous.
  for (index_t i = 0; i < 57; ++i) {
    const rank_t s = q.owner(i);
    EXPECT_GE(i, q.begin(s));
    EXPECT_LT(i, q.end(s));
    EXPECT_FALSE(rank_in(failed, s));
  }
}

TEST(AbsorbRanks, AllRanksFailedThrows) {
  const BlockRowPartition p(6, 2);
  const std::vector<rank_t> failed{0, 1};
  EXPECT_THROW(absorb_ranks(p, failed), Error);
}

TEST(Partition, PaperScale128Nodes) {
  const BlockRowPartition p(923136, 128);
  index_t total = 0;
  for (rank_t s = 0; s < 128; ++s) {
    total += p.local_size(s);
    EXPECT_NEAR(static_cast<double>(p.local_size(s)), 923136.0 / 128, 1.0);
  }
  EXPECT_EQ(total, 923136);
}

} // namespace
} // namespace esrp
