// Threaded SpMV parity: row-range partitioning computes every row with the
// serial per-row loop, so the product must be bitwise equal to the serial
// result at every thread count, for every generator matrix shape.
#include <gtest/gtest.h>

#include "thread_count_guard.hpp"

#include "common/rng.hpp"
#include "parallel/parallel.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

Vector random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(static_cast<std::size_t>(n));
  for (real_t& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Serial reference: the pre-threading spmv was exactly spmv_rows over the
/// full row range, which never parallelizes.
Vector serial_spmv(const CsrMatrix& a, const Vector& x) {
  Vector y(static_cast<std::size_t>(a.rows()));
  a.spmv_rows(0, a.rows(), x, y);
  return y;
}

class ParallelSpmvParity : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSpmvParity, BitwiseEqualOnGeneratorMatrices) {
  ThreadCountGuard guard;
  const CsrMatrix matrices[] = {
      laplace1d(9001),
      poisson2d(73, 61),
      poisson3d(17, 19, 13),
      banded_spd(6000, 37, 0.35, 2026),
      emilia_like(8, 8, 8).matrix,
  };
  for (const CsrMatrix& a : matrices) {
    const Vector x = random_vector(a.cols(), 7);
    const Vector expected = serial_spmv(a, x);

    set_num_threads(GetParam());
    Vector y(static_cast<std::size_t>(a.rows()), -1.0);
    a.spmv(x, y);
    ASSERT_EQ(y, expected) << a.rows() << " rows, " << GetParam()
                           << " threads";
  }
}

TEST_P(ParallelSpmvParity, RepeatedRunsAreIdentical) {
  ThreadCountGuard guard;
  const CsrMatrix a = poisson2d(120, 97);
  const Vector x = random_vector(a.cols(), 13);
  set_num_threads(GetParam());
  Vector first(static_cast<std::size_t>(a.rows()));
  a.spmv(x, first);
  for (int rep = 0; rep < 10; ++rep) {
    Vector again(static_cast<std::size_t>(a.rows()));
    a.spmv(x, again);
    ASSERT_EQ(first, again) << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSpmvParity,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSpmv, SubspanRowRangesStillWork) {
  // spmv_rows keeps its independent meaning (node-local products slice y).
  ThreadCountGuard guard;
  set_num_threads(4);
  const CsrMatrix a = poisson2d(40, 40);
  const Vector x = random_vector(a.cols(), 3);
  const Vector full = serial_spmv(a, x);
  Vector part(800);
  a.spmv_rows(200, 1000, x, part);
  for (std::size_t k = 0; k < part.size(); ++k)
    ASSERT_EQ(part[k], full[k + 200]);
}

} // namespace
} // namespace esrp
