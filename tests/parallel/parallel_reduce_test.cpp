// parallel_for / parallel_reduce semantics and the determinism contract:
// fixed chunk boundaries, partials combined in index order, bitwise
// reproducible results run-to-run and across thread counts >= 2.
#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include "thread_count_guard.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"

namespace esrp {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (real_t& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(ParallelFor, ChunksExactlyPartitionTheRange) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::vector<int> hits(100001, 0);
  std::atomic<int> chunks{0};
  parallel_for(index_t{17}, index_t{100001}, index_t{1000},
               [&](index_t lo, index_t hi) {
                 ++chunks;
                 for (index_t i = lo; i < hi; ++i)
                   ++hits[static_cast<std::size_t>(i)];
               });
  EXPECT_GT(chunks.load(), 1);
  for (index_t i = 0; i < 17; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 0);
  for (index_t i = 17; i < 100001; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingleChunkRangesRunInline) {
  ThreadCountGuard guard;
  set_num_threads(4);
  int calls = 0;
  parallel_for(index_t{5}, index_t{5}, index_t{10},
               [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(index_t{0}, index_t{10}, index_t{10},
               [&](index_t lo, index_t hi) {
                 ++calls;
                 EXPECT_EQ(lo, 0);
                 EXPECT_EQ(hi, 10);
               });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  ThreadCountGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(index_t{0}, index_t{10000}, index_t{100},
                            [&](index_t lo, index_t) {
                              if (lo >= 5000) throw Error("chunk failed");
                            }),
               Error);
}

TEST(ParallelReduce, SumsEveryChunkExactlyOnceInIndexOrder) {
  ThreadCountGuard guard;
  set_num_threads(4);
  // Integer sum: order-insensitive, so this checks coverage, not rounding.
  const index_t n = 123457;
  const long total = parallel_reduce(
      index_t{0}, n, index_t{1024}, long{0}, [](index_t lo, index_t hi) {
        long acc = 0;
        for (index_t i = lo; i < hi; ++i) acc += i;
        return acc;
      });
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, CombineSeesPartialsInIndexOrder) {
  ThreadCountGuard guard;
  set_num_threads(4);
  // Identity chunk + concatenating combine: the result lists the chunk's
  // first indices in ascending order iff combination is index-ordered,
  // no matter which thread finished first.
  using List = std::vector<index_t>;
  const List order = parallel_reduce(
      index_t{0}, index_t{10000}, index_t{512}, List{},
      [](index_t lo, index_t) { return List{lo}; },
      [](List a, List b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t c = 0; c < order.size(); ++c)
    EXPECT_EQ(order[c], static_cast<index_t>(c) * 512);
}

TEST(ParallelReduce, SerialFallbackIsBitIdenticalToLaneOrderedLoop) {
  ThreadCountGuard guard;
  set_num_threads(1);
  const Vector x = random_vector(100000, 11);
  const Vector y = random_vector(100000, 22);
  // At one thread vec_dot takes the single-chunk serial path, which since
  // the SIMD layer (common/simd.hpp) accumulates into 4 lane accumulators
  // (lane l takes indices i ≡ l mod 4) combined as (l0 + l1) + (l2 + l3),
  // with the tail folded serially onto that sum.
  real_t lane[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4)
    for (std::size_t l = 0; l < 4; ++l) lane[l] += x[i + l] * y[i + l];
  real_t expected = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < x.size(); ++i) expected += x[i] * y[i];
  EXPECT_EQ(vec_dot(x, y), expected);
}

TEST(ParallelReduce, DotIsReproducibleRunToRunAtEveryThreadCount) {
  ThreadCountGuard guard;
  const Vector x = random_vector(200000, 33);
  const Vector y = random_vector(200000, 44);
  for (const int threads : {1, 2, 4, 8}) {
    set_num_threads(threads);
    const real_t first = vec_dot(x, y);
    for (int rep = 0; rep < 20; ++rep) {
      const real_t again = vec_dot(x, y);
      ASSERT_EQ(first, again) << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(ParallelReduce, ChunkingIsIndependentOfThreadCountAbove1) {
  ThreadCountGuard guard;
  // Fixed-grain chunking: every parallel thread count computes the exact
  // same partials, so the combined dot is bitwise equal across 2/4/8.
  const Vector x = random_vector(150000, 55);
  const Vector y = random_vector(150000, 66);
  set_num_threads(2);
  const real_t at2 = vec_dot(x, y);
  for (const int threads : {3, 4, 8}) {
    set_num_threads(threads);
    ASSERT_EQ(vec_dot(x, y), at2) << "threads=" << threads;
  }
}

TEST(ParallelReduce, NormsAndDistancesMatchSerialToRounding) {
  ThreadCountGuard guard;
  const Vector x = random_vector(100000, 77);
  const Vector y = random_vector(100000, 88);
  set_num_threads(1);
  const real_t n2_serial = vec_norm2(x);
  const real_t ninf_serial = vec_norm_inf(x);
  const real_t d2_serial = vec_dist2(x, y);
  set_num_threads(4);
  // Max-reductions are exact under any chunking; sum-reductions agree to
  // relative rounding.
  EXPECT_EQ(vec_norm_inf(x), ninf_serial);
  EXPECT_NEAR(vec_norm2(x), n2_serial, 1e-12 * n2_serial);
  EXPECT_NEAR(vec_dist2(x, y), d2_serial, 1e-12 * d2_serial);
}

TEST(ParallelReduce, ElementwiseKernelsAreBitwiseThreadCountInvariant) {
  ThreadCountGuard guard;
  const Vector x = random_vector(200000, 99);
  Vector serial = random_vector(200000, 111);
  Vector threaded = serial;

  set_num_threads(1);
  vec_axpy(serial, 0.37, x);
  vec_xpby(serial, x, -1.25);
  vec_scale(serial, 1.0 / 3.0);

  set_num_threads(4);
  vec_axpy(threaded, 0.37, x);
  vec_xpby(threaded, x, -1.25);
  vec_scale(threaded, 1.0 / 3.0);

  EXPECT_EQ(serial, threaded); // per-index writes: bitwise equal
}

TEST(ParallelRuntime, SetNumThreadsValidatesAndResolvesAuto) {
  ThreadCountGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0); // auto = hardware concurrency
  EXPECT_EQ(num_threads(), hardware_threads());
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_THROW(set_num_threads(-1), Error);
}

TEST(ParallelRuntime, GrainHelpersStayPositive) {
  ThreadCountGuard guard;
  set_num_threads(4);
  EXPECT_GE(adaptive_grain(0), 1);
  EXPECT_GE(adaptive_grain(1), 1);
  EXPECT_GE(elementwise_grain(10), 1);
  const index_t g = adaptive_grain(1 << 20);
  // About tasks_per_thread tasks per thread.
  EXPECT_NEAR(static_cast<double>((1 << 20) / g), 16.0, 1.0);
}

} // namespace
} // namespace esrp
