// Stress: node failures injected mid-iteration while the thread pool is
// actively executing the solver's parallel kernels. Reconstruction must
// still produce a converging solve — the recovery path (gathers, inner
// solves, queue bookkeeping) runs interleaved with threaded SpMV/BLAS-1.
#include <gtest/gtest.h>

#include "thread_count_guard.hpp"

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "netsim/failure.hpp"
#include "parallel/parallel.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

struct Harness {
  CsrMatrix a;
  Vector b;
  BlockRowPartition part;
  SimCluster cluster;
  BlockJacobiPreconditioner precond;

  Harness(CsrMatrix matrix, rank_t nodes)
      : a(std::move(matrix)),
        b(xp::make_rhs(a)),
        part(a.rows(), nodes),
        cluster(part),
        precond(a, part, 10) {}
};

// A matrix large enough that spmv row-chunking and the per-node loops
// actually fan out to the pool (grain checks pass) at 4 threads.
CsrMatrix stress_matrix() { return poisson2d(64, 64); } // 4096 rows

TEST(ThreadedFailureStress, EsrpReconstructsUnderActivePool) {
  ThreadCountGuard guard;
  set_num_threads(4);

  Harness h(stress_matrix(), 16);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.phi = 2;
  opts.failure.iteration = 12; // mid-interval: rollback redoes iterations
  opts.failure.ranks = contiguous_ranks(3, 2, 16);

  ResilientPcg solver(h.a, h.precond, h.cluster, opts);
  const ResilientSolveResult res = solver.solve(h.b);

  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].failed_at, 12);
  EXPECT_LE(res.recoveries[0].restored_to, 12);
  EXPECT_LT(true_relative_residual(h.a, h.b, res.x), 1e-7);
}

TEST(ThreadedFailureStress, RepeatedFailuresWithPoolStayConvergent) {
  ThreadCountGuard guard;
  set_num_threads(4);

  Harness h(stress_matrix(), 16);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 4;
  opts.phi = 2;
  opts.failure.iteration = 9;
  opts.failure.ranks = contiguous_ranks(0, 2, 16);
  FailureEvent second;
  second.iteration = 21;
  second.ranks = contiguous_ranks(8, 2, 16);
  opts.extra_failures.push_back(second);

  ResilientPcg solver(h.a, h.precond, h.cluster, opts);
  const ResilientSolveResult res = solver.solve(h.b);

  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 2u);
  for (const RecoveryRecord& rec : res.recoveries)
    EXPECT_FALSE(rec.restarted_from_scratch);
  EXPECT_LT(true_relative_residual(h.a, h.b, res.x), 1e-7);
}

TEST(ThreadedFailureStress, ThreadedSolveMatchesSerialTrajectory) {
  // The whole solve is reproducible at a fixed thread count, and because
  // every kernel is deterministic the threaded trajectory only differs
  // from serial through dot-product rounding — iteration counts must
  // stay in the same ballpark and both solutions satisfy the tolerance.
  ThreadCountGuard guard;

  auto solve_with = [&](int threads) {
    set_num_threads(threads);
    Harness h(stress_matrix(), 16);
    ResilienceOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = 5;
    opts.phi = 1;
    opts.failure.iteration = 11;
    opts.failure.ranks = contiguous_ranks(5, 1, 16);
    ResilientPcg solver(h.a, h.precond, h.cluster, opts);
    return solver.solve(h.b);
  };

  const ResilientSolveResult serial = solve_with(1);
  const ResilientSolveResult threaded = solve_with(4);
  const ResilientSolveResult threaded_again = solve_with(4);
  const ResilientSolveResult at2 = solve_with(2);

  ASSERT_TRUE(serial.converged);
  ASSERT_TRUE(threaded.converged);
  // Run-to-run determinism of the full resilient solve at 4 threads.
  EXPECT_EQ(threaded.trajectory_iterations,
            threaded_again.trajectory_iterations);
  EXPECT_EQ(threaded.x, threaded_again.x);
  // All reductions chunk with fixed grains, so every thread count >= 2
  // follows the same bits — the whole solve included.
  EXPECT_EQ(threaded.x, at2.x);
  EXPECT_EQ(threaded.trajectory_iterations, at2.trajectory_iterations);
  // Serial-vs-threaded: same algorithm to rounding.
  EXPECT_NEAR(static_cast<double>(threaded.trajectory_iterations),
              static_cast<double>(serial.trajectory_iterations),
              0.05 * static_cast<double>(serial.trajectory_iterations) + 2);
}

TEST(ThreadedFailureStress, NoSpareRecoveryRepartitionsUnderPool) {
  ThreadCountGuard guard;
  set_num_threads(4);

  Harness h(stress_matrix(), 16);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 4;
  opts.phi = 2;
  opts.spare_nodes = false;
  opts.failure.iteration = 10;
  opts.failure.ranks = contiguous_ranks(6, 2, 16);

  ResilientPcg solver(h.a, h.precond, h.cluster, opts);
  const ResilientSolveResult res = solver.solve(h.b);

  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  // Survivors absorbed the failed ranges: those ranks now own nothing.
  for (const rank_t s : opts.failure.ranks)
    EXPECT_EQ(solver.current_partition().local_size(s), 0);
  EXPECT_LT(true_relative_residual(h.a, h.b, res.x), 1e-7);
}

TEST(ThreadedFailureStress, ImcrRestoreWorksUnderPool) {
  ThreadCountGuard guard;
  set_num_threads(4);

  Harness h(stress_matrix(), 16);
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 6;
  opts.phi = 2;
  opts.failure.iteration = 14;
  opts.failure.ranks = contiguous_ranks(2, 2, 16);

  ResilientPcg solver(h.a, h.precond, h.cluster, opts);
  const ResilientSolveResult res = solver.solve(h.b);

  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 12); // last multiple of T
  EXPECT_LT(true_relative_residual(h.a, h.b, res.x), 1e-7);
}

} // namespace
} // namespace esrp
