// Shared by the tests/parallel suites: restore the global thread count on
// scope exit so a failing test cannot leak its setting into later tests of
// the same binary.
#pragma once

#include "parallel/parallel.hpp"

namespace esrp {

struct ThreadCountGuard {
  ~ThreadCountGuard() { set_num_threads(1); }
};

} // namespace esrp
