// ThreadPool / TaskGroup semantics: completion, exception propagation,
// nested fork-join (a task waiting on its own group must help, not
// deadlock), clean shutdown, and the zero-worker degenerate pool.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(ThreadPool, RunsEveryTaskOfAGroup) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i)
    group.run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolExecutesOnTheWaitingThread) {
  ThreadPool pool(0);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) group.run([&done] { ++done; });
  group.wait(); // the only executor is the waiter itself
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  group.run([&done] { ++done; });
  group.wait();
  group.run([&done] { ++done; });
  group.run([&done] { ++done; });
  group.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 20; ++i) {
    group.run([i, &completed] {
      if (i == 7) throw Error("task 7 exploded");
      ++completed;
    });
  }
  try {
    group.wait();
    FAIL() << "wait() must rethrow";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("task 7 exploded"), std::string::npos);
  }
  // The failing task does not cancel its siblings.
  EXPECT_EQ(completed.load(), 19);
}

TEST(ThreadPool, SecondWaitAfterErrorIsClean) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.run([] { throw Error("boom"); });
  EXPECT_THROW(group.wait(), Error);
  group.run([] {});
  EXPECT_NO_THROW(group.wait()); // the error was consumed by the first wait
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
  // One worker: the outer task occupies it, so the inner group can only
  // finish if waiting threads help execute queued jobs.
  ThreadPool pool(1);
  std::atomic<int> inner_done{0};
  TaskGroup outer(pool);
  outer.run([&pool, &inner_done] {
    TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) inner.run([&inner_done] { ++inner_done; });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_done.load(), 8);
}

TEST(ThreadPool, DeeplyNestedForkJoinCompletes) {
  ThreadPool pool(2);
  std::function<int(int)> spawn = [&](int depth) -> int {
    if (depth == 0) return 1;
    int a = 0, b = 0;
    TaskGroup group(pool);
    group.run([&] { a = spawn(depth - 1); });
    group.run([&] { b = spawn(depth - 1); });
    group.wait();
    return a + b;
  };
  EXPECT_EQ(spawn(6), 64);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothWaits) {
  ThreadPool pool(1);
  TaskGroup outer(pool);
  outer.run([&pool] {
    TaskGroup inner(pool);
    inner.run([] { throw Error("inner failure"); });
    inner.wait(); // rethrows on the worker; outer captures it
  });
  EXPECT_THROW(outer.wait(), Error);
}

TEST(ThreadPool, DestructorDrainsQueuedSubmits) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(1), b(1);
  EXPECT_FALSE(a.on_worker_thread());
  // submit (not TaskGroup) so the job can only run on a's worker — a
  // helping wait() would otherwise be allowed to run it on this thread.
  std::atomic<bool> on_a{false}, a_sees_b{true}, done{false};
  a.submit([&] {
    on_a = a.on_worker_thread();
    a_sees_b = b.on_worker_thread();
    done = true;
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(on_a.load());
  EXPECT_FALSE(a_sees_b.load());
}

TEST(ThreadPool, ManyConcurrentGroupsOnOnePool) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&pool, &total] {
      for (int rep = 0; rep < 20; ++rep) {
        TaskGroup group(pool);
        for (int i = 0; i < 10; ++i) group.run([&total] { ++total; });
        group.wait();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 10);
}

} // namespace
} // namespace esrp
