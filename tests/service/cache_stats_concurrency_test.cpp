// Concurrent-stats audit for the two keyed caches (ISSUE 8 satellite): many
// threads hammer PlanCache find/insert/stats and ResultCache
// lookup/store/stats simultaneously, then the test asserts the traffic
// counters add up EXACTLY. Before the caches were annotated and (for
// ResultCache) locked, the counters were plain mutable integers bumped from
// const lookups — a data race that dropped increments under contention and
// that clang's thread-safety analysis now rejects at compile time. The TSan
// CI job runs this test with real instrumentation; on any build it fails if
// even one hit or miss goes missing.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "service/plan_cache.hpp"
#include "service/problem_handle.hpp"
#include "service/solve_service.hpp"
#include "xp/result_cache.hpp"

namespace esrp {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 400;

ProblemSpec laplace_problem(const std::string& key) {
  ProblemSpec problem;
  problem.matrix = key;
  problem.precond = "jacobi";
  return problem;
}

SolverConfig pcg_config() {
  SolverConfig config;
  config.solver = "pcg";
  return config;
}

// The workers deliberately use naked std::thread, not the ThreadPool: the
// point is maximal scheduling freedom while hammering the caches, and the
// pool's own mutex would serialize the contention we want to provoke.

TEST(CacheStatsConcurrency, PlanCacheCountersAreExactUnderContention) {
  // Capacity large enough that nothing is evicted: every find() is then
  // exactly one hit or one miss, so the totals must balance perfectly.
  PlanCache cache(64);
  const auto handle =
      ProblemHandle::build(laplace_problem("laplace1d:16"), pcg_config());

  // Each thread loops over kKeys keys: the first find() of a key by any
  // thread is a miss (then inserted), later finds are hits. Interleaving
  // makes the exact hit/miss split nondeterministic — but their SUM is
  // exactly the number of find() calls, and that is what a dropped
  // (racy) increment would break.
  constexpr int kKeys = 16;
  std::vector<std::string> keys;
  for (int k = 0; k < kKeys; ++k) {
    // Built with += (not operator+): GCC 12's -Wrestrict false-fires on the
    // inlined char* + string&& overload, and the strict lane runs -Werror.
    std::string key = "k";
    key += std::to_string(k);
    keys.push_back(std::move(key));
  }
  std::vector<std::thread> workers; // esrp-lint: allow(raw-thread)
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &handle, &keys] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string& key = keys[op % kKeys];
        if (cache.find(key) == nullptr) cache.insert(key, handle);
        if (op % 64 == 0) (void)cache.stats(); // concurrent stats reads
      }
    });
  }
  for (std::thread& w : workers) w.join(); // esrp-lint: allow(raw-thread)

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Every key was missed at least once (first toucher) and at most once
  // per thread (a thread that misses inserts before its next find).
  EXPECT_GE(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kKeys) * kThreads);
  EXPECT_EQ(stats.size, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(CacheStatsConcurrency, ResultCacheCountersAreExactUnderContention) {
  const std::string path = ::testing::TempDir() + "cache_stats_conc.tsv";
  std::remove(path.c_str());
  xp::ResultCache cache(path);

  xp::RunOutcome outcome;
  outcome.converged = true;
  outcome.iterations = 7;
  outcome.modeled_time = 1.5;

  constexpr int kKeys = 16;
  std::vector<std::string> keys;
  for (int k = 0; k < kKeys; ++k) {
    std::string key = "run"; // += not operator+; see above
    key += std::to_string(k);
    keys.push_back(std::move(key));
  }
  std::vector<std::thread> workers; // esrp-lint: allow(raw-thread)
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &outcome, &keys] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string& key = keys[op % kKeys];
        if (!cache.lookup(key).has_value()) cache.store(key, outcome);
        if (op % 64 == 0) (void)cache.stats(); // concurrent stats reads
      }
    });
  }
  for (std::thread& w : workers) w.join(); // esrp-lint: allow(raw-thread)

  const xp::ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GE(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kKeys) * kThreads);
  EXPECT_EQ(stats.size, static_cast<std::size_t>(kKeys));

  // The backing file must stay uncorrupted under concurrent appends: a
  // fresh cache loaded from it sees one well-formed entry per key (later
  // duplicate stores of a key overwrite on load, so the count is exact).
  xp::ResultCache reloaded(path);
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kKeys));
  const auto hit = reloaded.lookup("run0");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->converged);
  EXPECT_EQ(hit->iterations, 7);
  std::remove(path.c_str());
}

} // namespace
} // namespace esrp
