// Service-vs-facade bitwise parity: a solve routed through
// SolveService::prepare + solve — prepared matrix, partition, plans, and
// factorized preconditioner injected into the drivers — must be bitwise
// identical to the same SolveSpec through esrp::solve, for every
// registered solver, at 1 and 4 kernel threads. "Bitwise" means memcmp on
// the solution (and residual) vectors and exact scalar equality; hashes
// print in failure messages so a diverging trajectory is identifiable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>

#include "../parallel/thread_count_guard.hpp"
#include "api/solve.hpp"
#include "parallel/parallel.hpp"
#include "service/solve_service.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr int kThreadCounts[] = {1, 4};

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void expect_bitwise(const Vector& facade, const Vector& service,
                    const char* what) {
  ASSERT_EQ(facade.size(), service.size()) << what;
  EXPECT_EQ(0, std::memcmp(facade.data(), service.data(),
                           facade.size() * sizeof(real_t)))
      << what << " diverges: facade fnv=" << std::hex << fnv1a(facade)
      << " service fnv=" << fnv1a(service);
}

void expect_report_parity(const SolveReport& facade,
                          const SolveReport& service) {
  EXPECT_EQ(facade.converged, service.converged);
  EXPECT_EQ(facade.iterations, service.iterations);
  EXPECT_EQ(facade.executed_iterations, service.executed_iterations);
  {
    std::ostringstream msg;
    msg << std::hexfloat << "relres facade=" << facade.final_relres
        << " service=" << service.final_relres;
    EXPECT_EQ(facade.final_relres, service.final_relres) << msg.str();
  }
  EXPECT_EQ(facade.modeled_time, service.modeled_time);
  EXPECT_EQ(facade.recoveries.size(), service.recoveries.size());
  expect_bitwise(facade.x, service.x, "x");
  expect_bitwise(facade.r, service.r, "r");
}

class ServiceParity : public ::testing::Test {
protected:
  /// Facade and service solves of `spec` at 1 and 4 threads. The second
  /// service round trips the plan cache warm (hit == true) and must still
  /// match — a cached handle is the same handle.
  void check_parity(SolveSpec spec) {
    SolveService service;
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(threads);
      set_num_threads(threads);
      const SolveReport facade = solve(spec);

      const PrepareResult cold = service.prepare(spec);
      const SolveReport routed = service.solve(*cold.handle, spec);
      expect_report_parity(facade, routed);

      const PrepareResult warm = service.prepare(spec);
      EXPECT_TRUE(warm.cache_hit);
      EXPECT_EQ(cold.handle.get(), warm.handle.get());
      const SolveReport rewarmed = service.solve(*warm.handle, spec);
      expect_report_parity(facade, rewarmed);
    }
  }

  ThreadCountGuard guard_;
};

TEST_F(ServiceParity, SequentialPcg) {
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  check_parity(spec);
}

TEST_F(ServiceParity, SequentialPipelinedSsor) {
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "pipelined";
  spec.precond = "ssor";
  check_parity(spec);
}

TEST_F(ServiceParity, ResilientPcgEsrpWithFailure) {
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.phi = 1;
  spec.failures.push_back(FailureEvent{25, {0}});
  check_parity(spec);
}

TEST_F(ServiceParity, DistPipelinedEsrp) {
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "dist-pipelined";
  spec.precond = "block-jacobi";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.phi = 1;
  spec.failures.push_back(FailureEvent{25, {0}});
  check_parity(spec);
}

// A problem larger than the reduction grain (2^14 entries), so the 4-thread
// runs genuinely fan out and the prepared-parts path is exercised under the
// chunked deterministic reductions, not just the small-n serial path.
TEST_F(ServiceParity, PcgAboveReductionGrain) {
  SolveSpec spec;
  spec.matrix = "poisson2d:150,150"; // 22500 rows > kReduceGrain
  spec.solver = "pcg";
  spec.precond = "jacobi";
  check_parity(spec);
}

// A caller-supplied matrix (ProblemSpec::matrix_data) must behave like a
// registry matrix: the handle copies it, and the solve matches the facade
// borrowing the caller's buffer.
TEST_F(ServiceParity, CallerSuppliedMatrixData) {
  const TestProblem prob = resolve_matrix("poisson3d:8,8,8");
  SolveSpec spec;
  spec.matrix_data = &prob.matrix;
  spec.matrix_name = prob.name;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  check_parity(spec);
}

// The per-session thread budget must reproduce the global setting bitwise:
// a solve under ThreadBudget(4) (service RunSpec::threads = 4, global count
// left at 1) equals the facade solve at global 4 threads.
TEST_F(ServiceParity, ThreadBudgetMatchesGlobalCount) {
  SolveSpec spec;
  spec.matrix = "poisson2d:150,150";
  spec.solver = "pcg";
  spec.precond = "jacobi";

  set_num_threads(4);
  const SolveReport facade = solve(spec);

  set_num_threads(1);
  SolveService service;
  const PrepareResult prep = service.prepare(spec);
  SolveSpec budgeted = spec;
  budgeted.threads = 4;
  const SolveReport routed = service.solve(*prep.handle, budgeted);
  expect_report_parity(facade, routed);
}

} // namespace
} // namespace esrp
