// Multi-RHS batched solves: per-RHS bitwise parity with independent
// single-RHS solves (k = 1 included), independent convergence, shared-sweep
// accounting, and the capability/shape validation around rhs_batch.
#include <gtest/gtest.h>

#include <cstring>

#include "../parallel/thread_count_guard.hpp"
#include "common/error.hpp"
#include "parallel/parallel.hpp"
#include "precond/jacobi.hpp"
#include "service/solve_service.hpp"
#include "solver/batched_pcg.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr int kThreadCounts[] = {1, 4};

void expect_bitwise(const Vector& single, const Vector& batched) {
  ASSERT_EQ(single.size(), batched.size());
  EXPECT_EQ(0, std::memcmp(single.data(), batched.data(),
                           single.size() * sizeof(real_t)));
}

/// k right-hand sides that converge at different iteration counts: the
/// default rhs plus scaled/perturbed variants.
std::vector<Vector> mixed_batch(const CsrMatrix& a, std::size_t k) {
  std::vector<Vector> batch;
  const Vector base = xp::make_rhs(a);
  for (std::size_t j = 0; j < k; ++j) {
    Vector b = base;
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = b[i] * static_cast<real_t>(j + 1) +
             static_cast<real_t>(j) * static_cast<real_t>(i % 7);
    batch.push_back(std::move(b));
  }
  return batch;
}

TEST(BatchedSolveTest, KernelBatchOfOneMatchesPcgSolveBitwise) {
  ThreadCountGuard guard;
  const CsrMatrix a = poisson2d(24, 24);
  const Vector b = xp::make_rhs(a);
  const JacobiPreconditioner precond(a);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    Vector x_single(b.size(), 0);
    const PcgResult single = pcg_solve(a, b, x_single, &precond);

    Vector x_batched(b.size(), 0);
    const std::span<const real_t> bs[] = {b};
    const std::span<real_t> xs[] = {x_batched};
    const BatchedPcgResult batched = batched_pcg_solve(a, bs, xs, &precond);

    ASSERT_EQ(batched.per_rhs.size(), 1u);
    EXPECT_EQ(single.converged, batched.per_rhs[0].converged);
    EXPECT_EQ(single.iterations, batched.per_rhs[0].iterations);
    EXPECT_EQ(single.final_relres, batched.per_rhs[0].final_relres);
    EXPECT_EQ(single.flops, batched.per_rhs[0].flops);
    expect_bitwise(x_single, x_batched);
    EXPECT_EQ(batched.shared_sweeps, single.iterations + 1);
  }
}

TEST(BatchedSolveTest, EverySystemMatchesItsIndependentSolveBitwise) {
  ThreadCountGuard guard;
  const CsrMatrix a = poisson2d(24, 24);
  const JacobiPreconditioner precond(a);
  const std::vector<Vector> batch = mixed_batch(a, 4);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    std::vector<Vector> xs_storage(batch.size(),
                                   Vector(static_cast<std::size_t>(a.rows()), 0));
    std::vector<std::span<const real_t>> bs;
    std::vector<std::span<real_t>> xs;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      bs.emplace_back(batch[j]);
      xs.emplace_back(xs_storage[j]);
    }
    const BatchedPcgResult batched = batched_pcg_solve(a, bs, xs, &precond);

    index_t max_iterations = 0;
    double sweeps_if_independent = 0;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      SCOPED_TRACE(j);
      Vector x_single(batch[j].size(), 0);
      const PcgResult single = pcg_solve(a, batch[j], x_single, &precond);
      EXPECT_EQ(single.converged, batched.per_rhs[j].converged);
      EXPECT_EQ(single.iterations, batched.per_rhs[j].iterations);
      EXPECT_EQ(single.final_relres, batched.per_rhs[j].final_relres);
      expect_bitwise(x_single, xs_storage[j]);
      max_iterations = std::max(max_iterations, single.iterations);
      sweeps_if_independent += static_cast<double>(single.iterations) + 1;
    }
    // The whole point: one shared pass per iteration any system is active,
    // instead of one per system per iteration.
    EXPECT_EQ(batched.shared_sweeps, max_iterations + 1);
    EXPECT_LT(static_cast<double>(batched.shared_sweeps),
              sweeps_if_independent);
  }
}

TEST(BatchedSolveTest, ServiceBatchMatchesServiceSingles) {
  ThreadCountGuard guard;
  SolveService service;
  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);
  const std::vector<Vector> batch = mixed_batch(prep.handle->matrix(), 3);

  RunSpec batched_run;
  batched_run.rhs_batch = batch;
  const std::vector<SolveReport> reports =
      service.solve_batched(*prep.handle, batched_run);
  ASSERT_EQ(reports.size(), batch.size());

  for (std::size_t j = 0; j < batch.size(); ++j) {
    SCOPED_TRACE(j);
    RunSpec single_run;
    single_run.rhs = batch[j];
    const SolveReport single = service.solve(*prep.handle, single_run);
    EXPECT_EQ(single.converged, reports[j].converged);
    EXPECT_EQ(single.iterations, reports[j].iterations);
    EXPECT_EQ(single.final_relres, reports[j].final_relres);
    expect_bitwise(single.x, reports[j].x);
  }
}

TEST(BatchedSolveTest, InitialGuessSeedsEverySystem) {
  SolveService service;
  SolveSpec spec;
  spec.matrix = "poisson2d:16,16";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);
  const CsrMatrix& a = prep.handle->matrix();
  const std::vector<Vector> batch = mixed_batch(a, 2);
  const Vector x0(static_cast<std::size_t>(a.rows()), 0.25);

  RunSpec batched_run;
  batched_run.rhs_batch = batch;
  batched_run.x0 = x0;
  const std::vector<SolveReport> reports =
      service.solve_batched(*prep.handle, batched_run);

  for (std::size_t j = 0; j < batch.size(); ++j) {
    SCOPED_TRACE(j);
    RunSpec single_run;
    single_run.rhs = batch[j];
    single_run.x0 = x0;
    const SolveReport single = service.solve(*prep.handle, single_run);
    EXPECT_EQ(single.iterations, reports[j].iterations);
    expect_bitwise(single.x, reports[j].x);
  }
}

TEST(BatchedSolveTest, ValidationRejectsImpossibleBatches) {
  SolveService service;
  SolveSpec spec;
  spec.matrix = "laplace1d:32";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);
  const Vector b = xp::make_rhs(prep.handle->matrix());

  // rhs_batch through solve() is a usage error pointing at solve_batched.
  RunSpec batched_run;
  batched_run.rhs_batch = {b};
  EXPECT_THROW(service.solve(*prep.handle, batched_run), Error);

  // An empty batch through solve_batched is equally rejected.
  EXPECT_THROW(service.solve_batched(*prep.handle, RunSpec{}), Error);

  // rhs and rhs_batch are mutually exclusive.
  RunSpec both;
  both.rhs = b;
  both.rhs_batch = {b};
  EXPECT_THROW(service.solve_batched(*prep.handle, both), Error);

  // Solvers without supports_batched_rhs reject batches in validation.
  SolveSpec dist = spec;
  dist.solver = "resilient-pcg";
  dist.precond = "block-jacobi";
  dist.nodes = 4;
  const PrepareResult dist_prep = service.prepare(dist);
  EXPECT_THROW(service.solve_batched(*dist_prep.handle, batched_run), Error);
}

} // namespace
} // namespace esrp
