// PlanCache behavior: hit/miss/eviction counters, LRU order, content-key
// construction (two different matrices must never share a key on shape
// alone), and the warm-prepare guarantee — a cache hit returns the *same*
// handle object, so repeat prepares do zero re-assembly/re-factorization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "service/plan_cache.hpp"
#include "service/problem_handle.hpp"
#include "service/solve_service.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

ProblemSpec laplace_problem(const std::string& key) {
  ProblemSpec problem;
  problem.matrix = key;
  problem.precond = "jacobi";
  return problem;
}

SolverConfig pcg_config() {
  SolverConfig config;
  config.solver = "pcg";
  return config;
}

TEST(PlanCacheTest, CountsHitsMissesAndEvictions) {
  PlanCache cache(2);
  const auto h1 = ProblemHandle::build(laplace_problem("laplace1d:16"),
                                       pcg_config());
  const auto h2 = ProblemHandle::build(laplace_problem("laplace1d:17"),
                                       pcg_config());
  const auto h3 = ProblemHandle::build(laplace_problem("laplace1d:18"),
                                       pcg_config());

  EXPECT_EQ(cache.find("a"), nullptr); // miss
  cache.insert("a", h1);
  cache.insert("b", h2);
  EXPECT_EQ(cache.find("a").get(), h1.get()); // hit, refreshes "a"
  cache.insert("c", h3);                      // evicts LRU "b"
  EXPECT_EQ(cache.find("b"), nullptr);        // miss (evicted)
  EXPECT_EQ(cache.find("a").get(), h1.get());
  EXPECT_EQ(cache.find("c").get(), h3.get());

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(PlanCacheTest, ReinsertRefreshesWithoutEviction) {
  PlanCache cache(2);
  const auto h = ProblemHandle::build(laplace_problem("laplace1d:16"),
                                      pcg_config());
  cache.insert("a", h);
  cache.insert("a", h);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PlanCacheTest, CapacityZeroNeverRetainsButStillCounts) {
  PlanCache cache(0);
  const auto h = ProblemHandle::build(laplace_problem("laplace1d:16"),
                                      pcg_config());
  cache.insert("a", h);
  EXPECT_EQ(cache.find("a"), nullptr);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 0u);
}

// Two matrices with identical shape and sparsity but different values must
// get different content keys — the key hashes the numeric content, not just
// dimensions (a shape-only key would hand a solver the wrong factorization).
TEST(PlanCacheTest, ContentKeySeparatesEqualShapedMatrices) {
  CsrMatrix a = laplace1d(32);
  CsrMatrix b = laplace1d(32);
  b.values_mut()[0] += 1.0;

  ProblemSpec pa;
  pa.matrix_data = &a;
  ProblemSpec pb;
  pb.matrix_data = &b;
  EXPECT_NE(ProblemHandle::content_key(pa, pcg_config()),
            ProblemHandle::content_key(pb, pcg_config()));
}

// Sequential and distributed preparations of the same problem factorize
// differently (single-domain vs partition-aligned blocks), so their keys
// must differ; nodes only matters for the distributed key.
TEST(PlanCacheTest, ContentKeySeparatesDistributedness) {
  const ProblemSpec problem = laplace_problem("laplace1d:64");

  SolverConfig sequential = pcg_config();
  SolverConfig distributed;
  distributed.solver = "resilient-pcg";

  const std::string seq_key = ProblemHandle::content_key(problem, sequential);
  const std::string dist_key =
      ProblemHandle::content_key(problem, distributed);
  EXPECT_NE(seq_key, dist_key);

  ProblemSpec other_nodes = problem;
  other_nodes.nodes = 16;
  // nodes reshapes the distributed partition -> new key ...
  EXPECT_NE(ProblemHandle::content_key(other_nodes, distributed), dist_key);
  // ... but is irrelevant to a sequential preparation -> same key.
  EXPECT_EQ(ProblemHandle::content_key(other_nodes, sequential), seq_key);
}

TEST(PlanCacheTest, PrecondParametersEnterTheKey) {
  const ProblemSpec base = laplace_problem("laplace1d:64");
  ProblemSpec other = base;
  other.precond = "block-jacobi";
  EXPECT_NE(ProblemHandle::content_key(base, pcg_config()),
            ProblemHandle::content_key(other, pcg_config()));

  ProblemSpec sized = other;
  sized.block_size = 4;
  EXPECT_NE(ProblemHandle::content_key(sized, pcg_config()),
            ProblemHandle::content_key(other, pcg_config()));
}

// The warm-prepare guarantee: the second prepare of an identical problem is
// a cache hit that returns the same handle object — shared_ptr identity is
// the proof that nothing was re-assembled or re-factorized.
TEST(PlanCacheTest, WarmPrepareReusesTheHandle) {
  SolveService service;
  const ProblemSpec problem = laplace_problem("laplace1d:64");
  const SolverConfig config = pcg_config();

  const PrepareResult cold = service.prepare(problem, config);
  EXPECT_FALSE(cold.cache_hit);
  const PrepareResult warm = service.prepare(problem, config);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.handle.get(), warm.handle.get());

  const PlanCache::Stats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

// An evicted handle stays alive while someone holds it — eviction drops the
// cache's reference, never the object under a running solve.
TEST(PlanCacheTest, EvictionKeepsLiveHandlesAlive) {
  ServiceOptions opts;
  opts.cache_capacity = 1;
  SolveService service(opts);

  const PrepareResult first =
      service.prepare(laplace_problem("laplace1d:32"), pcg_config());
  const PrepareResult second =
      service.prepare(laplace_problem("laplace1d:33"), pcg_config());
  EXPECT_EQ(service.cache_stats().evictions, 1u);

  // The evicted handle still solves.
  const SolveReport report = service.solve(*first.handle, RunSpec{});
  EXPECT_TRUE(report.converged);

  // Re-preparing the evicted problem is a rebuild (miss), not a hit.
  const PrepareResult again =
      service.prepare(laplace_problem("laplace1d:32"), pcg_config());
  EXPECT_FALSE(again.cache_hit);
  EXPECT_NE(again.handle.get(), first.handle.get());
  (void)second;
}

TEST(PlanCacheTest, UnknownSolverKeyThrows) {
  EXPECT_THROW(ProblemHandle::content_key(laplace_problem("laplace1d:16"),
                                          SolverConfig{.solver = "nope"}),
               Error);
}

} // namespace
} // namespace esrp
