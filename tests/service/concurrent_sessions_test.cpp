// Concurrent solve sessions: N submits multiplexed onto the service's
// session workers must each produce the bitwise-identical report of the
// same solve run synchronously at the same thread budget — budgets are
// thread-local, so sessions cannot perturb each other or the global
// setting. Also pins error propagation through futures and shutdown with a
// drained queue. Run under TSan in CI, so any data race in the service or
// the shared-pool kernels fails loudly.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "../parallel/thread_count_guard.hpp"
#include "common/error.hpp"
#include "parallel/parallel.hpp"
#include "service/solve_service.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

void expect_bitwise(const Vector& expected, const Vector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  EXPECT_EQ(0, std::memcmp(expected.data(), actual.data(),
                           expected.size() * sizeof(real_t)));
}

void expect_report_parity(const SolveReport& expected,
                          const SolveReport& actual) {
  EXPECT_EQ(expected.converged, actual.converged);
  EXPECT_EQ(expected.iterations, actual.iterations);
  EXPECT_EQ(expected.final_relres, actual.final_relres);
  expect_bitwise(expected.x, actual.x);
}

TEST(ConcurrentSessionsTest, SubmittedSolvesMatchSynchronousReferences) {
  ThreadCountGuard guard;
  ServiceOptions opts;
  opts.max_sessions = 4;
  SolveService service(opts);

  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);
  const CsrMatrix& a = prep.handle->matrix();

  // Distinct rhs per job, each with its own thread budget; reference runs
  // are synchronous at the same budget.
  constexpr std::size_t kJobs = 16;
  const Vector base = xp::make_rhs(a);
  std::vector<Vector> rhs(kJobs);
  std::vector<SolveReport> reference(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    rhs[i] = base;
    for (std::size_t row = 0; row < rhs[i].size(); ++row)
      rhs[i][row] += static_cast<real_t>(i) * static_cast<real_t>(row % 5);
    RunSpec run;
    run.rhs = rhs[i];
    run.threads = 1 + static_cast<int>(i % 2);
    reference[i] = service.solve(*prep.handle, run);
  }

  std::vector<std::future<SolveReport>> futures;
  futures.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    RunSpec run;
    run.rhs = rhs[i];
    run.threads = 1 + static_cast<int>(i % 2);
    futures.push_back(service.submit(prep.handle, std::move(run)));
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    SCOPED_TRACE(i);
    expect_report_parity(reference[i], futures[i].get());
  }
}

// SessionOptions::threads overrides the RunSpec budget for that session.
TEST(ConcurrentSessionsTest, SessionThreadOverrideMatchesBudgetedReference) {
  ThreadCountGuard guard;
  SolveService service;
  SolveSpec spec;
  spec.matrix = "poisson2d:16,16";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);

  RunSpec budgeted;
  budgeted.threads = 2;
  const SolveReport reference = service.solve(*prep.handle, budgeted);

  SessionOptions session;
  session.threads = 2;
  std::future<SolveReport> future =
      service.submit(prep.handle, RunSpec{}, session);
  expect_report_parity(reference, future.get());
}

// A submit whose RunSpec owns its rhs (take_rhs) stays valid after the
// caller's buffer is gone — the owning storage travels with the job.
TEST(ConcurrentSessionsTest, OwnedRhsSurvivesTheQueue) {
  SolveService service;
  SolveSpec spec;
  spec.matrix = "laplace1d:64";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);

  Vector b = xp::make_rhs(prep.handle->matrix());
  RunSpec reference_run;
  reference_run.rhs = b;
  const SolveReport reference = service.solve(*prep.handle, reference_run);

  std::future<SolveReport> future;
  {
    RunSpec run;
    run.take_rhs(Vector(b)); // owning copy; the scope ends before the solve
    future = service.submit(prep.handle, std::move(run));
  }
  expect_report_parity(reference, future.get());
}

TEST(ConcurrentSessionsTest, ErrorsPropagateThroughTheFuture) {
  SolveService service;
  SolveSpec spec;
  spec.matrix = "laplace1d:32";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  const PrepareResult prep = service.prepare(spec);

  RunSpec bad;
  bad.take_rhs(Vector(7, 1.0)); // wrong dimension for a 32-row matrix
  std::future<SolveReport> future = service.submit(prep.handle, std::move(bad));
  EXPECT_ANY_THROW(future.get());

  // The session worker survives a failed job and keeps serving.
  std::future<SolveReport> good = service.submit(prep.handle, RunSpec{});
  EXPECT_TRUE(good.get().converged);
}

// Destruction with queued work: every future is satisfied (the queue drains
// before the workers exit), so no submit is silently dropped.
TEST(ConcurrentSessionsTest, ShutdownDrainsTheQueue) {
  SolveSpec spec;
  spec.matrix = "poisson2d:16,16";
  spec.solver = "pcg";
  spec.precond = "jacobi";

  std::vector<std::future<SolveReport>> futures;
  {
    ServiceOptions opts;
    opts.max_sessions = 2;
    SolveService service(opts);
    const PrepareResult prep = service.prepare(spec);
    for (int i = 0; i < 8; ++i)
      futures.push_back(service.submit(prep.handle, RunSpec{}));
  } // ~SolveService joins after the queue drains
  for (std::future<SolveReport>& f : futures)
    EXPECT_TRUE(f.get().converged);
}

// Many sessions hammering one shared handle: same handle, same rhs, same
// budget -> every result bitwise equal (the prepared parts are truly
// read-only under concurrency; TSan watches).
TEST(ConcurrentSessionsTest, SharedHandleStress) {
  ThreadCountGuard guard;
  ServiceOptions opts;
  opts.max_sessions = 8;
  SolveService service(opts);

  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.failures.push_back(FailureEvent{20, {0}});
  const PrepareResult prep = service.prepare(spec);

  RunSpec run = static_cast<const RunSpec&>(spec);
  run.threads = 1;
  const SolveReport reference = service.solve(*prep.handle, run);
  EXPECT_EQ(reference.recoveries.size(), 1u);

  std::vector<std::future<SolveReport>> futures;
  for (int i = 0; i < 24; ++i) {
    RunSpec job = static_cast<const RunSpec&>(spec);
    job.threads = 1;
    futures.push_back(service.submit(prep.handle, std::move(job)));
  }
  for (std::future<SolveReport>& f : futures) {
    const SolveReport report = f.get();
    expect_report_parity(reference, report);
    EXPECT_EQ(reference.modeled_time, report.modeled_time);
  }
}

} // namespace
} // namespace esrp
