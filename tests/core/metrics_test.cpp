#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/vec.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(TrueRelativeResidual, ZeroForExactSolution) {
  const CsrMatrix a = laplace1d(10);
  Vector x(10);
  for (std::size_t i = 0; i < 10; ++i) x[i] = static_cast<real_t>(i);
  Vector b(10);
  a.spmv(x, b);
  EXPECT_NEAR(true_relative_residual(a, b, x), 0, 1e-15);
}

TEST(TrueRelativeResidual, OneForZeroGuess) {
  const CsrMatrix a = laplace1d(10);
  const Vector b(10, 1);
  const Vector x(10, 0);
  EXPECT_DOUBLE_EQ(true_relative_residual(a, b, x), 1);
}

TEST(TrueRelativeResidual, ZeroRhsThrows) {
  const CsrMatrix a = laplace1d(4);
  const Vector b(4, 0), x(4, 0);
  EXPECT_THROW(true_relative_residual(a, b, x), Error);
}

TEST(ResidualDrift, ZeroWhenRecursiveEqualsTrue) {
  const CsrMatrix a = laplace1d(8);
  const Vector x(8, 0.5);
  Vector b(8, 1);
  Vector ax(8);
  a.spmv(x, ax);
  Vector r(8);
  for (std::size_t i = 0; i < 8; ++i) r[i] = b[i] - ax[i];
  EXPECT_NEAR(residual_drift(a, b, x, r), 0, 1e-15);
}

TEST(ResidualDrift, PositiveWhenRecursiveNormIsLarger) {
  // ||r_rec|| = 2 ||r_true|| -> drift = +1.
  const CsrMatrix a = csr_identity(4);
  const Vector b{1, 0, 0, 0};
  const Vector x(4, 0); // true residual = b, norm 1
  const Vector r{2, 0, 0, 0};
  EXPECT_DOUBLE_EQ(residual_drift(a, b, x, r), 1);
}

TEST(ResidualDrift, NegativeWhenRecursiveNormIsSmaller) {
  const CsrMatrix a = csr_identity(4);
  const Vector b{1, 0, 0, 0};
  const Vector x(4, 0);
  const Vector r{0.5, 0, 0, 0};
  EXPECT_DOUBLE_EQ(residual_drift(a, b, x, r), -0.5);
}

TEST(ResidualDrift, SignConventionMatchesPaper) {
  // Paper: "a more positive value indicates a smaller ||b - A x||" — here a
  // fixed recursive residual with a better x must raise the drift.
  const CsrMatrix a = csr_identity(2);
  const Vector b{1, 1};
  const Vector r{0.1, 0};
  const Vector far{0, 0};    // true residual norm sqrt(2)
  const Vector near{0.9, 0.9}; // true residual norm ~0.14
  EXPECT_GT(residual_drift(a, b, near, r), residual_drift(a, b, far, r));
}

} // namespace
} // namespace esrp
