// Direct tests of the Alg. 2 reconstruction: build a consistent synthetic
// PCG state (r = b - A x, z = P r, p_cur = z + beta p_prev), destroy the
// failed nodes' slices, and verify the reconstruction recovers the exact
// lost entries from the surviving data plus the redundant copies.
#include "core/reconstruction.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

Vector random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

struct SyntheticState {
  Vector x, r, z, p_prev, p_cur, b;
  real_t beta;
};

SyntheticState make_state(const CsrMatrix& a, const Preconditioner& precond,
                          std::uint64_t seed) {
  const index_t n = a.rows();
  SyntheticState st;
  st.x = random_vector(n, seed);
  st.b = random_vector(n, seed + 1);
  st.p_prev = random_vector(n, seed + 2);
  st.beta = 0.37;
  st.r.resize(static_cast<std::size_t>(n));
  a.spmv(st.x, st.r);
  for (std::size_t i = 0; i < st.r.size(); ++i) st.r[i] = st.b[i] - st.r[i];
  st.z.resize(static_cast<std::size_t>(n));
  precond.apply(st.r, st.z);
  st.p_cur.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < st.z.size(); ++i)
    st.p_cur[i] = st.z[i] + st.beta * st.p_prev[i];
  return st;
}

/// Redundant copy holding all entries of `values` on `holder` (a surviving
/// node in the tests).
RedundantCopy full_copy(index_t tag, rank_t num_nodes, rank_t holder,
                        std::span<const real_t> values) {
  RedundantCopy c(tag, num_nodes);
  for (std::size_t i = 0; i < values.size(); ++i)
    c.record(holder, static_cast<index_t>(i), values[i]);
  c.finalize();
  return c;
}

class ReconstructionFixture : public ::testing::Test {
protected:
  ReconstructionFixture()
      : a_(poisson2d(6, 6)),
        part_(a_.rows(), 6),
        cluster_(part_),
        precond_(a_, part_, 6),
        state_(make_state(a_, precond_, 99)) {}

  ReconstructionInputs make_inputs(const std::vector<rank_t>& failed,
                                   const RedundantCopy& prev,
                                   const RedundantCopy& cur,
                                   const DistVector& x_star,
                                   const DistVector& r_star) {
    ReconstructionInputs in;
    in.a = &a_;
    in.p_action = precond_.action_matrix();
    in.part = &part_;
    in.failed = failed;
    in.p_prev = &prev;
    in.p_cur = &cur;
    in.beta_prev = state_.beta;
    in.x_star = &x_star;
    in.r_star = &r_star;
    in.b_global = state_.b;
    return in;
  }

  CsrMatrix a_;
  BlockRowPartition part_;
  SimCluster cluster_;
  BlockJacobiPreconditioner precond_;
  SyntheticState state_;
};

TEST_F(ReconstructionFixture, RecoversExactLostEntries) {
  const std::vector<rank_t> failed{2};
  const rank_t holder = 4;
  const RedundantCopy prev = full_copy(9, 6, holder, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, holder, state_.p_cur);

  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  x_star.zero_ranks(failed); // reconstruction must not read failed slices
  r_star.zero_ranks(failed);

  const ReconstructionOutput out =
      reconstruct_state(make_inputs(failed, prev, cur, x_star, r_star),
                        cluster_);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.lost, part_.owned_by(failed));
  for (std::size_t k = 0; k < out.lost.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.lost[k]);
    EXPECT_NEAR(out.p_f[k], state_.p_cur[i], 1e-12);
    EXPECT_NEAR(out.z_f[k], state_.z[i], 1e-12);
    EXPECT_NEAR(out.r_f[k], state_.r[i], 1e-9);
    EXPECT_NEAR(out.x_f[k], state_.x[i], 1e-8);
  }
}

TEST_F(ReconstructionFixture, MultipleFailedNodes) {
  const std::vector<rank_t> failed{0, 1, 5};
  const rank_t holder = 3;
  const RedundantCopy prev = full_copy(0, 6, holder, state_.p_prev);
  const RedundantCopy cur = full_copy(1, 6, holder, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  x_star.zero_ranks(failed);
  r_star.zero_ranks(failed);
  const ReconstructionOutput out =
      reconstruct_state(make_inputs(failed, prev, cur, x_star, r_star),
                        cluster_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.lost.size(),
            static_cast<std::size_t>(part_.local_size(0) +
                                     part_.local_size(1) +
                                     part_.local_size(5)));
  for (std::size_t k = 0; k < out.lost.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.lost[k]);
    EXPECT_NEAR(out.x_f[k], state_.x[i], 1e-8);
    EXPECT_NEAR(out.r_f[k], state_.r[i], 1e-9);
  }
}

TEST_F(ReconstructionFixture, MissingCopyReportsFailure) {
  const std::vector<rank_t> failed{2};
  // Copies held only on rank 2 itself -> destroyed with the failure.
  RedundantCopy prev = full_copy(9, 6, /*holder=*/2, state_.p_prev);
  RedundantCopy cur = full_copy(10, 6, /*holder=*/2, state_.p_cur);
  prev.drop_holders(failed);
  cur.drop_holders(failed);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  const ReconstructionOutput out =
      reconstruct_state(make_inputs(failed, prev, cur, x_star, r_star),
                        cluster_);
  EXPECT_FALSE(out.ok);
}

TEST_F(ReconstructionFixture, ChargesRecoveryCommunication) {
  const std::vector<rank_t> failed{3};
  const RedundantCopy prev = full_copy(9, 6, 0, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 0, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  const double t0 = cluster_.modeled_time();
  const ReconstructionOutput out =
      reconstruct_state(make_inputs(failed, prev, cur, x_star, r_star),
                        cluster_);
  ASSERT_TRUE(out.ok);
  EXPECT_GT(cluster_.ledger().totals(CommCategory::recovery).messages, 0u);
  EXPECT_GT(cluster_.modeled_time(), t0);
  EXPECT_GT(out.flops, 0);
  EXPECT_GT(out.inner_iterations_matrix, 0);
}

TEST_F(ReconstructionFixture, BlockJacobiMakesPreconditionerSolveTrivial) {
  // With node-aligned block Jacobi, P_{I_f, I\I_f} = 0, so the inner solve
  // for r works on a block-diagonal SPD system and converges quickly.
  const std::vector<rank_t> failed{1};
  const RedundantCopy prev = full_copy(9, 6, 4, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 4, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  const ReconstructionOutput out =
      reconstruct_state(make_inputs(failed, prev, cur, x_star, r_star),
                        cluster_);
  ASSERT_TRUE(out.ok);
  // The extracted P_{I_f,I_f} has blocks of size <= 6 and its block Jacobi
  // inner preconditioner inverts them exactly: few iterations needed.
  EXPECT_LE(out.inner_iterations_precond, 10);
}

TEST_F(ReconstructionFixture, MatrixFormulationRecoversExactly) {
  // The "preconditioner itself" formulation of [20]: r_f comes from a
  // direct multiplication with M, no inner solve.
  const std::vector<rank_t> failed{2};
  const RedundantCopy prev = full_copy(9, 6, 4, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 4, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  DistVector z_star(part_, state_.z);
  x_star.zero_ranks(failed);
  r_star.zero_ranks(failed);
  z_star.zero_ranks(failed);

  ReconstructionInputs in = make_inputs(failed, prev, cur, x_star, r_star);
  in.formulation = PrecondFormulation::matrix;
  in.p_matrix = precond_.matrix_form();
  in.z_star = &z_star;
  const ReconstructionOutput out = reconstruct_state(in, cluster_);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.inner_iterations_precond, 0); // no inner solve for r
  EXPECT_GT(out.inner_iterations_matrix, 0);  // x still needs one
  for (std::size_t k = 0; k < out.lost.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.lost[k]);
    EXPECT_NEAR(out.r_f[k], state_.r[i], 1e-11);
    EXPECT_NEAR(out.x_f[k], state_.x[i], 1e-8);
  }
}

TEST_F(ReconstructionFixture, FormulationsAgree) {
  const std::vector<rank_t> failed{0, 3};
  const RedundantCopy prev = full_copy(9, 6, 4, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 4, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  DistVector z_star(part_, state_.z);

  ReconstructionInputs inv = make_inputs(failed, prev, cur, x_star, r_star);
  const ReconstructionOutput a = reconstruct_state(inv, cluster_);

  ReconstructionInputs mat = make_inputs(failed, prev, cur, x_star, r_star);
  mat.formulation = PrecondFormulation::matrix;
  mat.p_matrix = precond_.matrix_form();
  mat.z_star = &z_star;
  const ReconstructionOutput b = reconstruct_state(mat, cluster_);

  ASSERT_TRUE(a.ok && b.ok);
  for (std::size_t k = 0; k < a.lost.size(); ++k) {
    EXPECT_NEAR(a.r_f[k], b.r_f[k], 1e-10);
    EXPECT_NEAR(a.x_f[k], b.x_f[k], 1e-8);
  }
  // The matrix form does strictly less floating-point work.
  EXPECT_LT(b.flops, a.flops);
}

TEST_F(ReconstructionFixture, MatrixFormulationRequiresInputs) {
  const std::vector<rank_t> failed{2};
  const RedundantCopy prev = full_copy(9, 6, 4, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 4, state_.p_cur);
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  ReconstructionInputs in = make_inputs(failed, prev, cur, x_star, r_star);
  in.formulation = PrecondFormulation::matrix; // p_matrix/z_star missing
  EXPECT_THROW(reconstruct_state(in, cluster_), Error);
}

TEST_F(ReconstructionFixture, MismatchedCopyTagsRejected) {
  const std::vector<rank_t> failed{2};
  const RedundantCopy prev = full_copy(5, 6, 4, state_.p_prev);
  const RedundantCopy cur = full_copy(10, 6, 4, state_.p_cur); // not 5+1
  DistVector x_star(part_, state_.x), r_star(part_, state_.r);
  EXPECT_THROW(reconstruct_state(
                   make_inputs(failed, prev, cur, x_star, r_star), cluster_),
               Error);
}

} // namespace
} // namespace esrp
