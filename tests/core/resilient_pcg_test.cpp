// End-to-end tests of the resilient distributed PCG: correctness of the
// failure-free solver, exact state reconstruction after injected failures,
// trajectory preservation, and the edge cases of the storage-stage protocol.
#include "core/resilient_pcg.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "precond/block_jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

struct SolveSystem {
  CsrMatrix a;
  Vector b;
  BlockRowPartition part;

  SolveSystem(CsrMatrix matrix, rank_t nodes)
      : a(std::move(matrix)), b(xp::make_rhs(a)), part(a.rows(), nodes) {}
};

ResilientSolveResult run(SolveSystem& s, const ResilienceOptions& opts,
                         SimCluster* cluster_out = nullptr,
                         IterationHook hook = {}) {
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  if (hook) solver.set_iteration_hook(std::move(hook));
  ResilientSolveResult res = solver.solve(s.b);
  if (cluster_out) *cluster_out = cluster;
  return res;
}

TEST(ResilientPcg, PlainDistributedSolveMatchesSequentialPcg) {
  SolveSystem s(poisson2d(10, 10), 8);
  ResilienceOptions opts;
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);

  BlockJacobiPreconditioner seq_precond(s.a, s.part, 10);
  Vector x_seq(s.b.size(), 0);
  const PcgResult seq = pcg_solve(s.a, s.b, x_seq, &seq_precond);
  ASSERT_TRUE(seq.converged);
  // Same operator, same preconditioner, same trajectory: iteration counts
  // match and iterates agree to rounding.
  EXPECT_EQ(res.trajectory_iterations, seq.iterations);
  EXPECT_LT(vec_rel_diff_inf(res.x, x_seq), 1e-10);
}

TEST(ResilientPcg, SolutionSatisfiesTrueResidualTolerance) {
  SolveSystem s(poisson3d(5, 5, 4), 10);
  ResilienceOptions opts;
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(ResilientPcg, EsrpFailureFreeFollowsSameTrajectory) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions plain;
  const ResilientSolveResult ref = run(s, plain);

  for (index_t T : {1, 5, 20}) {
    ResilienceOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = T;
    opts.phi = 2;
    const ResilientSolveResult res = run(s, opts);
    ASSERT_TRUE(res.converged) << "T=" << T;
    EXPECT_EQ(res.trajectory_iterations, ref.trajectory_iterations);
    EXPECT_EQ(res.x, ref.x); // identical arithmetic, bitwise equal
  }
}

TEST(ResilientPcg, EsrpFailureFreeCostsMoreThanPlainButLessThanEsr) {
  SolveSystem s(poisson2d(16, 16), 8);
  ResilienceOptions plain;
  SimCluster c0(s.part);
  const double t_plain = run(s, plain).modeled_time;

  ResilienceOptions esr;
  esr.strategy = Strategy::esrp;
  esr.interval = 1;
  esr.phi = 3;
  const double t_esr = run(s, esr).modeled_time;

  ResilienceOptions esrp;
  esrp.strategy = Strategy::esrp;
  esrp.interval = 20;
  esrp.phi = 3;
  const double t_esrp = run(s, esrp).modeled_time;

  EXPECT_GT(t_esr, t_plain);
  EXPECT_GT(t_esrp, t_plain);
  EXPECT_LT(t_esrp, t_esr); // the paper's headline effect
}

TEST(ResilientPcg, EsrSingleFailureExactStateReconstruction) {
  SolveSystem s(poisson2d(10, 10), 8);

  // Reference trajectory: record the state at every iteration.
  std::map<index_t, Vector> ref_x, ref_r, ref_p;
  ResilienceOptions plain;
  const ResilientSolveResult ref =
      run(s, plain, nullptr,
          [&](index_t j, const DistVector& x, const DistVector& r,
              const DistVector&, const DistVector& p) {
            ref_x[j] = x.gather_global();
            ref_r[j] = r.gather_global();
            ref_p[j] = p.gather_global();
          });
  ASSERT_TRUE(ref.converged);
  const index_t c = ref.trajectory_iterations;

  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 1; // classic ESR
  opts.phi = 1;
  opts.failure.iteration = c / 2;
  opts.failure.ranks = {3};

  real_t max_dev = 0;
  const ResilientSolveResult res =
      run(s, opts, nullptr,
          [&](index_t j, const DistVector& x, const DistVector& r,
              const DistVector&, const DistVector& p) {
            if (!ref_x.count(j)) return;
            max_dev = std::max(max_dev, vec_rel_diff_inf(x.gather_global(),
                                                         ref_x.at(j)));
            max_dev = std::max(max_dev, vec_rel_diff_inf(r.gather_global(),
                                                         ref_r.at(j)));
            max_dev = std::max(max_dev, vec_rel_diff_inf(p.gather_global(),
                                                         ref_p.at(j)));
          });
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  // ESR reconstructs the *current* iteration: no rollback.
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 0);
  // The whole trajectory (including every post-recovery state) stays within
  // inner-solve accuracy of the undisturbed run.
  EXPECT_LT(max_dev, 1e-6);
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(c), 1);
}

TEST(ResilientPcg, EsrpRollsBackToLastStorageStage) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions plain;
  const index_t c = run(s, plain).trajectory_iterations;
  ASSERT_GT(c, 25);

  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 18; // inside (10, 20): last stage completed at 11
  opts.failure.ranks = {1, 2};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_EQ(res.recoveries[0].restored_to, 11);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 7);
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(c), 1);
  // redone iterations + the recovery body itself
  EXPECT_EQ(res.executed_iterations, res.trajectory_iterations + 7 + 1);
}

TEST(ResilientPcg, FailureDuringStorageStageUsesPreviousStage) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  // j = 20 is a first-storage iteration: p'(20) has been pushed but the
  // stage is incomplete; recovery must reach back to state 11 (Fig. 1).
  opts.failure.iteration = 20;
  opts.failure.ranks = {4, 5};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 11);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 9);
}

TEST(ResilientPcg, FailureAtSecondStorageIterationRecoversInPlace) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.failure.iteration = 21; // second storage iteration of stage 2
  opts.failure.ranks = {6};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_EQ(res.recoveries[0].restored_to, 21);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 0);
}

TEST(ResilientPcg, FailureBeforeFirstStorageStageRestartsFromScratch) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.failure.iteration = 5; // first stage completes at iteration 11
  opts.failure.ranks = {0};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 0);
}

TEST(ResilientPcg, MoreFailuresThanPhiForcesRestart) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 1;
  opts.phi = 1;
  opts.failure.iteration = 20;
  opts.failure.ranks = {2, 3}; // psi = 2 > phi = 1
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged); // still converges, just expensively
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
}

TEST(ResilientPcg, TwoSlotQueueAblationForcesRestartMidStage) {
  // With capacity 2 the previous stage's pair is evicted by the first push
  // of the next stage — exactly the failure mode the 3-slot design avoids.
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.queue_capacity = 2;
  opts.failure.iteration = 20; // right after the first push of stage 2
  opts.failure.ranks = {3};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);

  // The 3-slot default recovers from the very same scenario.
  opts.queue_capacity = 3;
  const ResilientSolveResult ok = run(s, opts);
  ASSERT_EQ(ok.recoveries.size(), 1u);
  EXPECT_FALSE(ok.recoveries[0].restarted_from_scratch);
}

TEST(ResilientPcg, ImcrRestoresCheckpointExactly) {
  SolveSystem s(poisson2d(12, 12), 8);
  std::map<index_t, Vector> ref_x;
  ResilienceOptions plain;
  const ResilientSolveResult ref =
      run(s, plain, nullptr,
          [&](index_t j, const DistVector& x, const DistVector&,
              const DistVector&, const DistVector&) {
            ref_x[j] = x.gather_global();
          });
  const index_t c = ref.trajectory_iterations;
  ASSERT_GT(c, 25);

  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 18;
  opts.failure.ranks = {1, 2};
  real_t max_dev = 0;
  const ResilientSolveResult res =
      run(s, opts, nullptr,
          [&](index_t j, const DistVector& x, const DistVector&,
              const DistVector&, const DistVector&) {
            if (ref_x.count(j))
              max_dev = std::max(max_dev, vec_rel_diff_inf(x.gather_global(),
                                                           ref_x.at(j)));
          });
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_EQ(res.recoveries[0].restored_to, 10);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 8);
  // Checkpoint restore is bitwise: zero deviation on the whole trajectory.
  EXPECT_EQ(max_dev, 0);
  EXPECT_EQ(res.trajectory_iterations, c);
}

TEST(ResilientPcg, ImcrBeforeFirstCheckpointRestarts) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 1;
  opts.failure.iteration = 4;
  opts.failure.ranks = {2};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
}

TEST(ResilientPcg, StrategyNoneWithFailureRestartsAndStillConverges) {
  SolveSystem s(poisson2d(10, 10), 8);
  ResilienceOptions plain;
  const ResilientSolveResult ref = run(s, plain);
  const index_t c = ref.trajectory_iterations;
  ResilienceOptions opts;
  opts.failure.iteration = c / 2;
  opts.failure.ranks = {0};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
  // Roughly half the solve is thrown away and redone.
  EXPECT_GT(res.modeled_time, 1.3 * ref.modeled_time);
  EXPECT_EQ(res.executed_iterations, c + c / 2 + 1);
}

TEST(ResilientPcg, RecoveryCommIsChargedUnderRecoveryCategory) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.failure.iteration = 18;
  opts.failure.ranks = {5};
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(s.b);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(cluster.ledger().totals(CommCategory::recovery).messages, 0u);
  EXPECT_GT(cluster.ledger().totals(CommCategory::aspmv_extra).bytes, 0u);
  EXPECT_EQ(cluster.ledger().totals(CommCategory::checkpoint).bytes, 0u);
}

TEST(ResilientPcg, ImcrChargesCheckpointTraffic) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 3;
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  ASSERT_TRUE(solver.solve(s.b).converged);
  EXPECT_GT(cluster.ledger().totals(CommCategory::checkpoint).bytes, 0u);
  EXPECT_EQ(cluster.ledger().totals(CommCategory::aspmv_extra).bytes, 0u);
}

TEST(ResilientPcg, ResidualDriftStaysSmallAfterRecovery) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 18;
  opts.failure.ranks = {3, 4};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  const real_t drift = residual_drift(s.a, s.b, res.x, res.r);
  EXPECT_LT(std::abs(drift), 0.5);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(ResilientPcg, MatrixFormulationRecoversOnSameTrajectory) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions base;
  base.strategy = Strategy::esrp;
  base.interval = 10;
  base.phi = 2;
  base.failure.iteration = 18;
  base.failure.ranks = {1, 2};

  const ResilientSolveResult inv = run(s, base);
  ResilienceOptions mat = base;
  mat.precond_formulation = PrecondFormulation::matrix;
  const ResilientSolveResult res = run(s, mat);
  ASSERT_TRUE(inv.converged && res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].inner_iterations_precond, 0);
  // Same trajectory, same solution (within reconstruction accuracy).
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(inv.trajectory_iterations), 1);
  EXPECT_LT(vec_rel_diff_inf(res.x, inv.x), 1e-6);
  // The matrix formulation's recovery is cheaper (one inner solve fewer).
  EXPECT_LE(res.recoveries[0].modeled_time, inv.recoveries[0].modeled_time);
}

TEST(ResilientPcg, IntervalTwoBehavesLikeDensestPeriodicStorage) {
  // The paper notes T = 2 is pointless (ESR is better) but it must still be
  // *correct*: every iteration belongs to some storage stage, so any
  // failure after the first full stage recovers with minimal rollback.
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 2;
  opts.phi = 2;
  opts.failure.iteration = 17; // odd: a second-storage iteration
  opts.failure.ranks = {2, 3};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_LE(res.recoveries[0].wasted_iterations, 2);
}

TEST(ResilientPcg, TwoFailureEventsBothRecover) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions plain;
  const ResilientSolveResult ref = run(s, plain);
  const index_t c = ref.trajectory_iterations;
  ASSERT_GT(c, 30);

  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.phi = 2;
  opts.failure.iteration = 13;
  opts.failure.ranks = {1, 2};
  FailureEvent second;
  second.iteration = 28;
  second.ranks = {5, 6};
  opts.extra_failures.push_back(second);

  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 2u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_FALSE(res.recoveries[1].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].failed_at, 13);
  EXPECT_EQ(res.recoveries[1].failed_at, 28);
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(c), 2);
  EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), 1e-5);
}

TEST(ResilientPcg, SecondFailureBeforeRedundancyReplenishedRestarts) {
  // Both events hit the same ranks' redundancy holders before the next
  // storage stage completes: the second recovery has no copies left for
  // some entries and must restart.
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 20;
  opts.phi = 1;
  opts.failure.iteration = 23;
  opts.failure.ranks = {3};
  FailureEvent second;
  second.iteration = 24; // between stages: holders of node 4 not refreshed
  second.ranks = {4};    // ring holder of node 3's copies
  opts.extra_failures.push_back(second);
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 2u);
  // Either outcome for event 2 is protocol-legal, but the solve must end
  // correctly; with phi=1 and adjacent holders, expect the restart path.
  EXPECT_TRUE(res.recoveries[1].restarted_from_scratch ||
              res.recoveries[1].restored_to >= 0);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(ResilientPcg, DuplicateEventIterationsRejected) {
  SolveSystem s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilienceOptions opts;
  opts.failure.iteration = 5;
  opts.failure.ranks = {0};
  FailureEvent dup;
  dup.iteration = 5;
  dup.ranks = {1};
  opts.extra_failures.push_back(dup);
  EXPECT_THROW(ResilientPcg(s.a, precond, cluster, opts), Error);
}

TEST(ResilientPcg, ResidualReplacementImprovesDrift) {
  SolveSystem s(diffusion3d_27pt(6, 6, 6, 1e3, 5, 1e-4), 8);
  ResilienceOptions plain;
  const ResilientSolveResult raw = run(s, plain);
  ResilienceOptions rr;
  rr.residual_replacement = 50;
  const ResilientSolveResult replaced = run(s, rr);
  ASSERT_TRUE(raw.converged && replaced.converged);
  const real_t drift_raw =
      std::abs(residual_drift(s.a, s.b, raw.x, raw.r));
  const real_t drift_replaced =
      std::abs(residual_drift(s.a, s.b, replaced.x, replaced.r));
  // With periodic replacement the recursive residual tracks the true one.
  EXPECT_LE(drift_replaced, drift_raw + 1e-12);
  // And the true solution quality is at least as good.
  EXPECT_LT(true_relative_residual(s.a, s.b, replaced.x), 2e-8);
}

TEST(ResilientPcg, ResidualReplacementKeepsEsrpRecoveryWorking) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.residual_replacement = 15;
  opts.failure.iteration = 18;
  opts.failure.ranks = {1, 2};
  const ResilientSolveResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(ResilientPcg, NoSpareRecoveryContinuesOnSurvivors) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions plain;
  const ResilientSolveResult ref = run(s, plain);

  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.spare_nodes = false;
  opts.failure.iteration = 18;
  opts.failure.ranks = {3, 4};

  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(s.b);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 11);
  // Same trajectory and solution as the undisturbed run.
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(ref.trajectory_iterations), 1);
  EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), 1e-6);
  // The failed ranks retired: their ranges were absorbed by rank 2.
  const BlockRowPartition& np = solver.current_partition();
  EXPECT_EQ(np.local_size(3), 0);
  EXPECT_EQ(np.local_size(4), 0);
  EXPECT_EQ(np.local_size(2), 3 * s.part.local_size(2));
  EXPECT_EQ(np.active_nodes(), 6);
}

TEST(ResilientPcg, NoSpareRecoveryOfLeadingBlock) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 3;
  opts.spare_nodes = false;
  opts.failure.iteration = 25;
  opts.failure.ranks = {0, 1, 2};
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(s.b);
  ASSERT_TRUE(res.converged);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  // Rank 3 adopts the leading block.
  EXPECT_EQ(solver.current_partition().owner(0), 3);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(ResilientPcg, NoSpareRestartAlsoShrinksThePartition) {
  SolveSystem s(poisson2d(12, 12), 8);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.spare_nodes = false;
  opts.failure.iteration = 5; // before the first storage stage
  opts.failure.ranks = {6};
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilientPcg solver(s.a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(s.b);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(solver.current_partition().local_size(6), 0);
}

TEST(ResilientPcg, NoSparesRejectedForImcr) {
  SolveSystem s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.spare_nodes = false;
  EXPECT_THROW(ResilientPcg(s.a, precond, cluster, opts), Error);
}

TEST(ResilientPcg, RequiresExplicitPreconditionerAction) {
  SolveSystem s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  // SSOR has no action matrix: the distributed solver must refuse it.
  class NoAction final : public Preconditioner {
  public:
    explicit NoAction(index_t n) : n_(n) {}
    std::string name() const override { return "noaction"; }
    index_t dim() const override { return n_; }
    void apply(std::span<const real_t> r, std::span<real_t> z) const override {
      std::copy(r.begin(), r.end(), z.begin());
    }
    double apply_flops() const override { return 0; }

  private:
    index_t n_;
  } precond(s.a.rows());
  ResilienceOptions opts;
  EXPECT_THROW(ResilientPcg(s.a, precond, cluster, opts), Error);
}

TEST(ResilientPcg, InvalidFailureRanksRejected) {
  SolveSystem s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilienceOptions opts;
  opts.failure.iteration = 3;
  opts.failure.ranks = {7}; // out of range for 4 nodes
  EXPECT_THROW(ResilientPcg(s.a, precond, cluster, opts), Error);
}

} // namespace
} // namespace esrp
