// Round-trip parsers for the two solver enums: strategy_from_string /
// formulation_from_string must invert to_string exhaustively and reject
// unknown spellings with an error naming the valid ones (the CLI used to
// open-code this parsing).
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "core/reconstruction.hpp"
#include "core/resilient_pcg.hpp"

namespace esrp {
namespace {

TEST(StrategyRoundTrip, Exhaustive) {
  for (const Strategy s : {Strategy::none, Strategy::esrp, Strategy::imcr}) {
    EXPECT_EQ(strategy_from_string(to_string(s)), s) << to_string(s);
  }
}

TEST(StrategyRoundTrip, CanonicalSpellings) {
  EXPECT_EQ(strategy_from_string("none"), Strategy::none);
  EXPECT_EQ(strategy_from_string("esrp"), Strategy::esrp);
  EXPECT_EQ(strategy_from_string("imcr"), Strategy::imcr);
}

TEST(StrategyRoundTrip, RejectsUnknownNamesListingValid) {
  for (const char* bad : {"", "ESRP", "esr", "imrc", "checkpoint"}) {
    SCOPED_TRACE(bad);
    try {
      (void)strategy_from_string(bad);
      FAIL() << "must throw";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown strategy"), std::string::npos) << msg;
      EXPECT_NE(msg.find("none, esrp, imcr"), std::string::npos) << msg;
    }
  }
}

TEST(FormulationRoundTrip, Exhaustive) {
  for (const PrecondFormulation f :
       {PrecondFormulation::inverse, PrecondFormulation::matrix}) {
    EXPECT_EQ(formulation_from_string(to_string(f)), f) << to_string(f);
  }
}

TEST(FormulationRoundTrip, CanonicalSpellings) {
  EXPECT_EQ(formulation_from_string("inverse"), PrecondFormulation::inverse);
  EXPECT_EQ(formulation_from_string("matrix"), PrecondFormulation::matrix);
}

TEST(FormulationRoundTrip, RejectsUnknownNamesListingValid) {
  for (const char* bad : {"", "Inverse", "matrx", "action"}) {
    SCOPED_TRACE(bad);
    try {
      (void)formulation_from_string(bad);
      FAIL() << "must throw";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown preconditioner formulation"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("inverse, matrix"), std::string::npos) << msg;
    }
  }
}

} // namespace
} // namespace esrp
