// Parameterized property sweep over the full resilience configuration space:
// for every (matrix, strategy, T, phi, failure placement) combination the
// solver must converge to the correct solution on the reference trajectory,
// and the recovery bookkeeping must satisfy the protocol invariants.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

struct PropertyCase {
  const char* matrix;
  Strategy strategy;
  index_t interval;
  int phi;
  int psi;             // failures injected (0 = failure-free)
  rank_t fail_start;
  double fail_frac;    // failure iteration as a fraction of C
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string s = std::string(c.matrix) + "_" + to_string(c.strategy) + "_T" +
                  std::to_string(c.interval) + "_phi" + std::to_string(c.phi);
  if (c.psi > 0)
    s += "_psi" + std::to_string(c.psi) + "_at" +
         std::to_string(static_cast<int>(c.fail_frac * 100)) + "pct_r" +
         std::to_string(c.fail_start);
  else
    s += "_nofail";
  return s;
}

class EsrpProperty : public ::testing::TestWithParam<PropertyCase> {
protected:
  static constexpr rank_t kNodes = 12; // must exceed the largest phi (8)

  static CsrMatrix make_matrix(const std::string& name) {
    if (name == "poisson2d") return poisson2d(12, 12);
    if (name == "diffusion") return diffusion3d_27pt(5, 5, 5, 100, 42);
    if (name == "elasticity") return elasticity3d(4, 4, 3, 20, 42);
    if (name == "banded") return banded_spd(160, 7, 0.35, 42);
    throw Error("unknown matrix " + name);
  }
};

TEST_P(EsrpProperty, ConvergesOnReferenceTrajectoryWithSaneBookkeeping) {
  const PropertyCase& c = GetParam();
  const CsrMatrix a = make_matrix(c.matrix);
  const Vector b = xp::make_rhs(a);
  const BlockRowPartition part(a.rows(), kNodes);
  BlockJacobiPreconditioner precond(a, part, 10);

  // Reference run.
  SimCluster ref_cluster(part);
  ResilienceOptions ref_opts;
  ResilientPcg ref_solver(a, precond, ref_cluster, ref_opts);
  const ResilientSolveResult ref = ref_solver.solve(b);
  ASSERT_TRUE(ref.converged);
  const index_t C = ref.trajectory_iterations;

  ResilienceOptions opts;
  opts.strategy = c.strategy;
  opts.interval = c.interval;
  opts.phi = c.phi;
  if (c.psi > 0) {
    opts.failure.iteration = std::max<index_t>(
        1, static_cast<index_t>(c.fail_frac * static_cast<double>(C)));
    opts.failure.ranks =
        contiguous_ranks(c.fail_start, static_cast<rank_t>(c.psi), kNodes);
    ASSERT_LT(opts.failure.iteration, C);
  }

  SimCluster cluster(part);
  ResilientPcg solver(a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(b);

  ASSERT_TRUE(res.converged);
  // The trajectory (and hence the iteration count) is preserved by every
  // recovery path, including a scratch restart. ESRP reconstruction is
  // exact only to the 1e-14 inner-solve tolerance, so convergence may land
  // within one iteration of the reference.
  EXPECT_NEAR(static_cast<double>(res.trajectory_iterations),
              static_cast<double>(C), 1);
  // True residual consistent with the convergence tolerance.
  EXPECT_LT(true_relative_residual(a, b, res.x), 1e-6);

  if (c.psi == 0) {
    EXPECT_TRUE(res.recoveries.empty());
    EXPECT_EQ(res.executed_iterations, res.trajectory_iterations);
  } else {
    ASSERT_EQ(res.recoveries.size(), 1u);
    const RecoveryRecord& rec = res.recoveries[0];
    EXPECT_EQ(rec.failed_at, opts.failure.iteration);
    EXPECT_LE(rec.restored_to, rec.failed_at);
    EXPECT_EQ(rec.wasted_iterations, rec.failed_at - rec.restored_to);
    EXPECT_GE(rec.modeled_time, 0);
    if (!rec.restarted_from_scratch) {
      // Rollback distance is bounded by one full stage cycle: the previous
      // stage ends at (m-1)T + 1 and the failure happens before the next
      // stage completes at (m+1)T + 1.
      EXPECT_LE(rec.wasted_iterations, 2 * c.interval);
      // psi <= phi failures must always be recoverable once a stage exists.
      if (c.psi <= c.phi && rec.restored_to == 0) {
        EXPECT_LE(rec.failed_at, c.interval + 1);
      }
    }
    EXPECT_EQ(res.executed_iterations,
              res.trajectory_iterations + rec.wasted_iterations + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FailureFree, EsrpProperty,
    ::testing::Values(
        PropertyCase{"poisson2d", Strategy::esrp, 1, 1, 0, 0, 0},
        PropertyCase{"poisson2d", Strategy::esrp, 1, 8, 0, 0, 0},
        PropertyCase{"poisson2d", Strategy::esrp, 5, 3, 0, 0, 0},
        PropertyCase{"poisson2d", Strategy::imcr, 5, 3, 0, 0, 0},
        PropertyCase{"diffusion", Strategy::esrp, 10, 2, 0, 0, 0},
        PropertyCase{"elasticity", Strategy::esrp, 4, 2, 0, 0, 0},
        PropertyCase{"banded", Strategy::esrp, 7, 3, 0, 0, 0},
        PropertyCase{"banded", Strategy::imcr, 7, 3, 0, 0, 0}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    WithFailures, EsrpProperty,
    ::testing::Values(
        // ESR (T = 1), single and multiple failures, both locations.
        PropertyCase{"poisson2d", Strategy::esrp, 1, 1, 1, 0, 0.5},
        PropertyCase{"poisson2d", Strategy::esrp, 1, 3, 3, 4, 0.5},
        PropertyCase{"diffusion", Strategy::esrp, 1, 3, 3, 0, 0.4},
        // ESRP with periodic storage.
        PropertyCase{"poisson2d", Strategy::esrp, 5, 1, 1, 0, 0.5},
        PropertyCase{"poisson2d", Strategy::esrp, 5, 3, 3, 4, 0.6},
        PropertyCase{"diffusion", Strategy::esrp, 10, 2, 2, 4, 0.5},
        PropertyCase{"elasticity", Strategy::esrp, 4, 2, 2, 0, 0.5},
        PropertyCase{"banded", Strategy::esrp, 7, 3, 3, 2, 0.7},
        // Failure block wrapping around the ring boundary.
        PropertyCase{"poisson2d", Strategy::esrp, 5, 3, 3, 6, 0.5},
        // IMCR grid.
        PropertyCase{"poisson2d", Strategy::imcr, 5, 1, 1, 0, 0.5},
        PropertyCase{"poisson2d", Strategy::imcr, 5, 3, 3, 4, 0.5},
        PropertyCase{"diffusion", Strategy::imcr, 10, 2, 2, 0, 0.5},
        PropertyCase{"banded", Strategy::imcr, 7, 3, 3, 6, 0.4},
        // Over-subscribed failures (psi > phi): restart path.
        PropertyCase{"poisson2d", Strategy::esrp, 5, 1, 2, 0, 0.5},
        PropertyCase{"poisson2d", Strategy::imcr, 5, 1, 2, 0, 0.5},
        // Very early and very late failures.
        PropertyCase{"poisson2d", Strategy::esrp, 5, 2, 2, 0, 0.05},
        PropertyCase{"poisson2d", Strategy::esrp, 5, 2, 2, 0, 0.95},
        PropertyCase{"poisson2d", Strategy::imcr, 5, 2, 2, 0, 0.95}),
    case_name);

} // namespace
} // namespace esrp
