#include "core/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(YoungInterval, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(young_interval_seconds(2.0, 100.0), std::sqrt(400.0));
  EXPECT_DOUBLE_EQ(young_interval_seconds(0.0, 100.0), 0.0);
}

TEST(YoungInterval, InvalidMtbfThrows) {
  EXPECT_THROW(young_interval_seconds(1.0, 0.0), Error);
  EXPECT_THROW(young_interval_seconds(-1.0, 10.0), Error);
}

TEST(DalyInterval, ReducesToYoungForCheapCheckpoints) {
  // delta << M: the correction terms vanish.
  const double delta = 1e-6, mtbf = 3600;
  EXPECT_NEAR(daly_interval_seconds(delta, mtbf),
              young_interval_seconds(delta, mtbf), 1e-4);
}

TEST(DalyInterval, CorrectionIsPositiveMinusDelta) {
  const double delta = 10, mtbf = 1000;
  const double young = young_interval_seconds(delta, mtbf);
  const double daly = daly_interval_seconds(delta, mtbf);
  // Daly = young * (1 + eps) - delta with small positive eps.
  EXPECT_GT(daly, young - delta);
  EXPECT_LT(daly, young * 1.2);
}

TEST(DalyInterval, ExpensiveCheckpointsCapAtMtbf) {
  EXPECT_DOUBLE_EQ(daly_interval_seconds(300.0, 100.0), 100.0);
}

TEST(OptimalIterations, RoundsToIterationCount) {
  IntervalModel m;
  m.checkpoint_cost_s = 0.02;
  m.mtbf_s = 9.0 * 3600; // paper's 9 h MTBF for 100k nodes
  m.iteration_s = 1.4e-3;
  const index_t t = optimal_interval_iterations(m);
  // Young's estimate: sqrt(2 * 0.02 * 32400) = 36 s -> ~25.7k iterations.
  EXPECT_GT(t, 20000);
  EXPECT_LT(t, 30000);
}

TEST(OptimalIterations, AtLeastOne) {
  IntervalModel m;
  m.checkpoint_cost_s = 1e-12;
  m.mtbf_s = 1e-6;
  m.iteration_s = 10;
  EXPECT_EQ(optimal_interval_iterations(m), 1);
}

TEST(ExpectedRuntime, NoFailuresNoCheckpointCostIsWork) {
  // Large MTBF, free checkpoints: expected time ~ work.
  EXPECT_NEAR(expected_runtime_seconds(100, 10, 0, 1e12, 0), 100, 1e-6);
}

TEST(ExpectedRuntime, ConvexInTau) {
  // Around the optimum the expected runtime must be lower than at extreme
  // intervals (too-frequent and too-rare checkpointing both lose).
  const double work = 1000, delta = 0.5, mtbf = 500, rec = 1.0;
  const double tau_opt = daly_interval_seconds(delta, mtbf);
  const double at_opt = expected_runtime_seconds(work, tau_opt, delta, mtbf, rec);
  EXPECT_LT(at_opt, expected_runtime_seconds(work, tau_opt / 20, delta, mtbf, rec));
  EXPECT_LT(at_opt, expected_runtime_seconds(work, tau_opt * 20, delta, mtbf, rec));
}

TEST(ExpectedRuntime, MoreFailuresCostMore) {
  const double work = 1000, delta = 0.5, tau = 30, rec = 1.0;
  EXPECT_GT(expected_runtime_seconds(work, tau, delta, 100, rec),
            expected_runtime_seconds(work, tau, delta, 10000, rec));
}

} // namespace
} // namespace esrp
