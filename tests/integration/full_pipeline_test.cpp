// Integration tests exercising the full pipeline end to end at a moderate
// scale: generator -> partition -> plans -> resilient solve -> recovery ->
// metrics, mirroring (a scaled-down version of) the paper's experimental
// protocol including the worst-case failure placement.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

TEST(Integration, EmiliaLikeSmallGridFullProtocol) {
  const TestProblem prob = emilia_like(8, 8, 8); // 512 rows
  const Vector b = xp::make_rhs(prob.matrix);
  const rank_t nodes = 16;

  const xp::Reference ref = xp::run_reference(prob.matrix, b, nodes);
  ASSERT_GT(ref.iterations, 30);

  // ESRP with the paper's protocol: failure two iterations before the end
  // of the interval containing C/2, psi = phi contiguous failures.
  for (const index_t T : {1, 10}) {
    for (const int phi : {1, 3}) {
      xp::RunConfig cfg;
      cfg.strategy = Strategy::esrp;
      cfg.interval = T;
      cfg.phi = phi;
      cfg.num_nodes = nodes;
      cfg.with_failure = true;
      cfg.psi = phi;
      cfg.failure_start = 0;
      cfg.failure_iteration =
          xp::worst_case_failure_iteration(ref.iterations, T);
      const xp::RunOutcome out = xp::run_experiment(prob.matrix, b, cfg);
      ASSERT_TRUE(out.converged) << "T=" << T << " phi=" << phi;
      EXPECT_FALSE(out.restarted);
      EXPECT_NEAR(static_cast<double>(out.iterations),
                  static_cast<double>(ref.iterations), 1);
      EXPECT_GT(out.modeled_time, ref.t0_modeled);
      EXPECT_LT(std::abs(out.drift), 1.0);
    }
  }
}

TEST(Integration, AudikwLikeSmallGridImcrVsEsrp) {
  const TestProblem prob = audikw_like(5, 5, 5); // 375 rows
  const Vector b = xp::make_rhs(prob.matrix);
  const rank_t nodes = 12;
  const xp::Reference ref = xp::run_reference(prob.matrix, b, nodes);

  auto failure_cfg = [&](Strategy strat) {
    xp::RunConfig cfg;
    cfg.strategy = strat;
    cfg.interval = 10;
    cfg.phi = 3;
    cfg.num_nodes = nodes;
    cfg.with_failure = true;
    cfg.psi = 3;
    cfg.failure_start = static_cast<rank_t>(nodes / 2);
    cfg.failure_iteration =
        xp::worst_case_failure_iteration(ref.iterations, 10);
    return cfg;
  };

  const xp::RunOutcome esrp = xp::run_experiment(prob.matrix, b,
                                                 failure_cfg(Strategy::esrp));
  const xp::RunOutcome imcr = xp::run_experiment(prob.matrix, b,
                                                 failure_cfg(Strategy::imcr));
  ASSERT_TRUE(esrp.converged && imcr.converged);
  EXPECT_FALSE(esrp.restarted);
  EXPECT_FALSE(imcr.restarted);
  // Both preserve the trajectory. ESRP reconstruction is exact only to the
  // inner-solve tolerance, so convergence may land within one iteration of
  // the reference; IMCR restores bitwise.
  EXPECT_NEAR(static_cast<double>(esrp.iterations),
              static_cast<double>(ref.iterations), 1);
  EXPECT_EQ(imcr.iterations, ref.iterations);
  // IMCR's recovery is pure data transfer; ESRP's includes inner solves —
  // the paper's observation that IMCR recovers faster.
  EXPECT_LT(imcr.recovery_time, esrp.recovery_time);
}

TEST(Integration, OverheadShapeEsrVsEsrpVsImcr) {
  // Failure-free overhead ordering on a communication-meaningful problem:
  // ESR (T=1) stores every iteration and must cost the most; ESRP at T=50
  // amortizes the ASpMV; both are resilience overheads over the reference.
  const TestProblem prob = emilia_like(8, 8, 8);
  const Vector b = xp::make_rhs(prob.matrix);
  const rank_t nodes = 16;
  const xp::Reference ref = xp::run_reference(prob.matrix, b, nodes);

  auto overhead = [&](Strategy strat, index_t T, int phi) {
    xp::RunConfig cfg;
    cfg.strategy = strat;
    cfg.interval = T;
    cfg.phi = phi;
    cfg.num_nodes = nodes;
    const xp::RunOutcome out = xp::run_experiment(prob.matrix, b, cfg);
    EXPECT_TRUE(out.converged);
    return xp::relative_overhead(out.modeled_time, ref.t0_modeled);
  };

  const double esr = overhead(Strategy::esrp, 1, 3);
  const double esrp50 = overhead(Strategy::esrp, 50, 3);
  EXPECT_GT(esr, 0);
  EXPECT_GT(esrp50, 0);
  EXPECT_LT(esrp50, esr); // periodic storage reduces the overhead

  // More redundant copies cost more for ESR.
  const double esr_phi1 = overhead(Strategy::esrp, 1, 1);
  const double esr_phi8 = overhead(Strategy::esrp, 1, 8);
  EXPECT_LT(esr_phi1, esr_phi8);
}

TEST(Integration, DriftMetricMatchesPaperScale) {
  // Drift magnitudes in the paper are O(1e-1); at our scale they must be
  // small and the failure-free drift must be identical across strategies
  // (same trajectory).
  const TestProblem prob = emilia_like(7, 7, 7);
  const Vector b = xp::make_rhs(prob.matrix);
  const rank_t nodes = 8;

  xp::RunConfig none_cfg, esrp_cfg;
  none_cfg.num_nodes = nodes;
  esrp_cfg.num_nodes = nodes;
  esrp_cfg.strategy = Strategy::esrp;
  esrp_cfg.interval = 20;
  esrp_cfg.phi = 2;
  const xp::RunOutcome a = xp::run_experiment(prob.matrix, b, none_cfg);
  const xp::RunOutcome c = xp::run_experiment(prob.matrix, b, esrp_cfg);
  ASSERT_TRUE(a.converged && c.converged);
  EXPECT_DOUBLE_EQ(a.drift, c.drift); // identical trajectory
}

TEST(Integration, MatrixMarketRoundTripThroughSolver) {
  // Export a generated matrix, re-import it, and solve: the I/O path works
  // for users who bring the real SuiteSparse matrices.
  const CsrMatrix a = diffusion3d_27pt(5, 5, 5, 100, 3);
  const std::string path = testing::TempDir() + "/esrp_integration.mtx";
  write_matrix_market_file(path, a);
  const CsrMatrix a2 = read_matrix_market_file(path);
  const Vector b = xp::make_rhs(a2);
  xp::RunConfig cfg;
  cfg.num_nodes = 8;
  const xp::RunOutcome out = xp::run_experiment(a2, b, cfg);
  EXPECT_TRUE(out.converged);
}

} // namespace
} // namespace esrp
