// End-to-end guard for the kernel determinism contract: the fused solver
// loops must reproduce these pinned trajectories bit-for-bit at fixed
// thread counts. The golden rows were first captured before the hot loops
// were rewired through common/fused.hpp (PR 4), then re-versioned ONCE —
// explicitly, as docs/parallelism.md sanctions — when the SIMD layer
// (common/simd.hpp) changed every sum-reduction's within-chunk association
// to the fixed 4-lane order. They are captured from that lane-ordered
// contract and must now stay stable across thread counts, ISAs
// (scalar/SSE2/AVX2), and the ESRP_FORCE_SCALAR fallback build — relres
// and flops as exact hexfloat bits, solution/residual vectors as
// FNV-1a-64 hashes over their raw bytes. Any kernel change that moves a
// single ULP anywhere in a trajectory changes a hash and fails here.
//
// The 1- and 4-thread rows of the large cases genuinely differ (chunked
// reductions), so both the serial and the multi-chunk fused paths are
// pinned. The resilient rows run a two-event failure/recovery schedule
// (ESRP reconstruction), an IMCR restore with nonzero initial guess and
// residual replacement, and the distributed pipelined solver with and
// without a failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>

#include "../parallel/thread_count_guard.hpp"
#include "api/solve.hpp"
#include "core/resilient_pcg.hpp"
#include "netsim/cluster.hpp"
#include "parallel/parallel.hpp"
#include "pipelined/dist_pipelined_pcg.hpp"
#include "pipelined/pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  int threads;
  bool converged;
  std::int64_t iterations;
  real_t final_relres;
  double flops_or_executed; ///< flops (sequential) / executed (distributed)
  std::uint64_t x_hash;
  std::uint64_t r_hash; ///< 0 where the solver does not expose r
};

// clang-format off
constexpr Golden kPcgSmall[] = {
    {1, true, 51, 0x1.4e2430a2fc6aep-27, 0x1.228p+18, 0x2566b9d55b6bec24ull, 0},
    {4, true, 51, 0x1.4e2430a2fc6aep-27, 0x1.228p+18, 0x2566b9d55b6bec24ull, 0},
};
constexpr Golden kPcgLarge[] = {
    {1, true, 603, 0x1.487d050692d94p-27, 0x1.085bp+29, 0x00181c8e44833af0ull, 0},
    {4, true, 603, 0x1.487d050692d22p-27, 0x1.085bp+29, 0x3128a295a730f1bbull, 0},
};
constexpr Golden kPipeSmall[] = {
    {1, true, 45, 0x1.07e2ef8135ec5p-27, 0x1.0f3cp+19, 0xb814475ec5a3b016ull, 0},
    {4, true, 45, 0x1.07e2ef8135ec5p-27, 0x1.0f3cp+19, 0xb814475ec5a3b016ull, 0},
};
constexpr Golden kPipeLarge[] = {
    {1, true, 487, 0x1.4ea2b636ed607p-27, 0x1.e38572p+29, 0x357fc9ea590a2bc6ull, 0},
    {4, true, 487, 0x1.4ea5da0d7b211p-27, 0x1.e38572p+29, 0x700ba7900a9f1e30ull, 0},
};
constexpr Golden kResilientEsrp[] = {
    {1, true, 46, 0x1.cd74c392c15fp-28, 53, 0x1a7e778ad37153dcull, 0x7c8f5a43799b12dcull},
    {4, true, 46, 0x1.cd74c392c15fp-28, 53, 0x1a7e778ad37153dcull, 0x7c8f5a43799b12dcull},
};
constexpr Golden kResilientImcr[] = {
    {1, true, 46, 0x1.e117cee994124p-28, 50, 0x06066dc7adbbbd8dull, 0x4e3a865e6320584dull},
    {4, true, 46, 0x1.e117cee994124p-28, 50, 0x06066dc7adbbbd8dull, 0x4e3a865e6320584dull},
};
constexpr Golden kDistPipeImcr[] = {
    {1, true, 46, 0x1.cd74c1c42353p-28, 64, 0x952effc8a88af50bull, 0xb7a455f1106968caull},
    {4, true, 46, 0x1.cd74c1c42353p-28, 64, 0x952effc8a88af50bull, 0xb7a455f1106968caull},
};
constexpr Golden kDistPipePlain[] = {
    {1, true, 46, 0x1.cd74c1c42353p-28, 46, 0x952effc8a88af50bull, 0xb7a455f1106968caull},
    {4, true, 46, 0x1.cd74c1c42353p-28, 46, 0x952effc8a88af50bull, 0xb7a455f1106968caull},
};
// clang-format on

class FusedSolverParity : public ::testing::Test {
protected:
  FusedSolverParity()
      : small_(poisson2d(16, 16)),
        large_(poisson2d(200, 200)),
        b_small_(xp::make_rhs(small_)),
        b_large_(xp::make_rhs(large_)) {}

  ThreadCountGuard guard_;
  CsrMatrix small_, large_;
  Vector b_small_, b_large_;
};

TEST_F(FusedSolverParity, SequentialPcgMatchesPreFusionPin) {
  for (const auto& [matrix, b, goldens] :
       {std::tuple{&small_, &b_small_, std::span<const Golden>(kPcgSmall)},
        std::tuple{&large_, &b_large_, std::span<const Golden>(kPcgLarge)}}) {
    const JacobiPreconditioner precond(*matrix);
    for (const Golden& g : goldens) {
      SCOPED_TRACE(testing::Message()
                   << "rows=" << matrix->rows() << " threads=" << g.threads);
      set_num_threads(g.threads);
      Vector x(b->size(), 0);
      const PcgResult r = pcg_solve(*matrix, *b, x, &precond);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed, r.flops);
      EXPECT_EQ(g.x_hash, fnv1a(x));
    }
  }
}

TEST_F(FusedSolverParity, SequentialPipelinedMatchesPreFusionPin) {
  for (const auto& [matrix, b, goldens] :
       {std::tuple{&small_, &b_small_, std::span<const Golden>(kPipeSmall)},
        std::tuple{&large_, &b_large_, std::span<const Golden>(kPipeLarge)}}) {
    const BlockJacobiPreconditioner precond(*matrix, 10);
    for (const Golden& g : goldens) {
      SCOPED_TRACE(testing::Message()
                   << "rows=" << matrix->rows() << " threads=" << g.threads);
      set_num_threads(g.threads);
      Vector x(b->size(), 0);
      const PipelinedPcgResult r = pipelined_pcg_solve(*matrix, *b, x, &precond);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed, r.flops);
      EXPECT_EQ(g.x_hash, fnv1a(x));
    }
  }
}

TEST_F(FusedSolverParity, ResilientEsrpTwoFailureScheduleMatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const Golden& g : kResilientEsrp) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    const BlockRowPartition part(small_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
    const BlockJacobiPreconditioner precond(small_, part, 10);
    ResilienceOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = 5;
    opts.phi = 2;
    opts.failure = FailureEvent{12, contiguous_ranks(2, 2, nodes)};
    opts.extra_failures.push_back(
        FailureEvent{25, contiguous_ranks(5, 1, nodes)});
    ResilientPcg solver(small_, precond, cluster, opts);
    const ResilientSolveResult r = solver.solve(b_small_);
    EXPECT_EQ(g.converged, r.converged);
    EXPECT_EQ(g.iterations, r.trajectory_iterations);
    EXPECT_EQ(g.final_relres, r.final_relres);
    EXPECT_EQ(g.flops_or_executed,
              static_cast<double>(r.executed_iterations));
    EXPECT_EQ(g.x_hash, fnv1a(r.x));
    EXPECT_EQ(g.r_hash, fnv1a(r.r));
    ASSERT_EQ(2u, r.recoveries.size());
    EXPECT_EQ(11, r.recoveries[0].restored_to);
    EXPECT_EQ(21, r.recoveries[1].restored_to);
  }
}

TEST_F(FusedSolverParity, ResilientImcrRestartWithX0MatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const Golden& g : kResilientImcr) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    const BlockRowPartition part(small_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
    const BlockJacobiPreconditioner precond(small_, part, 10);
    ResilienceOptions opts;
    opts.strategy = Strategy::imcr;
    opts.interval = 6;
    opts.phi = 2;
    opts.residual_replacement = 10;
    opts.failure = FailureEvent{15, contiguous_ranks(1, 2, nodes)};
    ResilientPcg solver(small_, precond, cluster, opts);
    const Vector x0(b_small_.size(), 0.5);
    const ResilientSolveResult r = solver.solve(b_small_, x0);
    EXPECT_EQ(g.converged, r.converged);
    EXPECT_EQ(g.iterations, r.trajectory_iterations);
    EXPECT_EQ(g.final_relres, r.final_relres);
    EXPECT_EQ(g.flops_or_executed,
              static_cast<double>(r.executed_iterations));
    EXPECT_EQ(g.x_hash, fnv1a(r.x));
    EXPECT_EQ(g.r_hash, fnv1a(r.r));
  }
}

TEST_F(FusedSolverParity, DistPipelinedMatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const bool with_failure : {true, false}) {
    for (const Golden& g : with_failure ? kDistPipeImcr : kDistPipePlain) {
      SCOPED_TRACE(testing::Message()
                   << "failure=" << with_failure << " threads=" << g.threads);
      set_num_threads(g.threads);
      const BlockRowPartition part(small_.rows(), nodes);
      SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
      const BlockJacobiPreconditioner precond(small_, part, 10);
      DistPipelinedOptions opts;
      if (with_failure) {
        opts.strategy = Strategy::imcr;
        opts.interval = 10;
        opts.phi = 2;
        opts.failure = FailureEvent{17, contiguous_ranks(1, 3, nodes)};
      }
      DistPipelinedPcg solver(small_, precond, cluster, opts);
      const DistPipelinedResult r = solver.solve(b_small_);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.trajectory_iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed,
                static_cast<double>(r.executed_iterations));
      EXPECT_EQ(g.x_hash, fnv1a(r.x));
      EXPECT_EQ(g.r_hash, fnv1a(r.r));
    }
  }
}

/// Facade-routed solves hit the same pins: the fused loops sit behind
/// esrp::solve unchanged (the PR 3 parity guarantee).
TEST_F(FusedSolverParity, FacadeRoutedSolveMatchesPreFusionPin) {
  for (const Golden& g : kPcgSmall) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    SolveSpec spec;
    spec.matrix_data = &small_;
    spec.rhs = b_small_;
    spec.solver = "pcg";
    spec.precond = "jacobi";
    const SolveReport report = solve(spec);
    EXPECT_EQ(g.converged, report.converged);
    EXPECT_EQ(g.iterations, report.iterations);
    EXPECT_EQ(g.final_relres, report.final_relres);
    EXPECT_EQ(g.flops_or_executed, report.flops);
    EXPECT_EQ(g.x_hash, fnv1a(report.x));
  }
}

/// Flop accounting audit (fused kernels must report the unfused sequence's
/// counts): with the identity preconditioner the totals have a closed form.
/// PCG: init spmv + 4n, each executed body spmv + 12n. Pipelined: init
/// 2 spmv, each loop top 6n, each executed body spmv + 16n.
TEST_F(FusedSolverParity, FusedFlopAccountingMatchesUnfusedFormula) {
  const CsrMatrix a = poisson2d(30, 30);
  const Vector b = xp::make_rhs(a);
  const double spmv = static_cast<double>(a.spmv_flops());
  const double n = static_cast<double>(a.rows());

  Vector x(b.size(), 0);
  const PcgResult pcg = pcg_solve(a, b, x, nullptr);
  ASSERT_TRUE(pcg.converged);
  const double j = static_cast<double>(pcg.iterations);
  EXPECT_EQ(spmv + 4 * n + j * (spmv + 12 * n), pcg.flops);

  Vector xp2(b.size(), 0);
  const PipelinedPcgResult pipe = pipelined_pcg_solve(a, b, xp2, nullptr);
  ASSERT_TRUE(pipe.converged);
  const double jp = static_cast<double>(pipe.iterations);
  EXPECT_EQ(2 * spmv + (jp + 1) * 6 * n + jp * (spmv + 16 * n), pipe.flops);
}

} // namespace
} // namespace esrp
