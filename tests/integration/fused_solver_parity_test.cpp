// End-to-end guard for the kernel-fusion refactor: the fused solver loops
// must reproduce the pre-fusion (PR 3) solves bit-for-bit at fixed thread
// counts. The golden rows below were captured by running the four solvers
// BEFORE the hot loops were rewired through common/fused.hpp — relres and
// flops as exact hexfloat bits, solution/residual vectors as FNV-1a-64
// hashes over their raw bytes. Any fused kernel that changes a single ULP
// anywhere in a trajectory changes a hash and fails here.
//
// The 1- and 4-thread rows of the large cases genuinely differ (chunked
// reductions), so both the serial and the multi-chunk fused paths are
// pinned. The resilient rows run a two-event failure/recovery schedule
// (ESRP reconstruction), an IMCR restore with nonzero initial guess and
// residual replacement, and the distributed pipelined solver with and
// without a failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>

#include "../parallel/thread_count_guard.hpp"
#include "api/solve.hpp"
#include "core/resilient_pcg.hpp"
#include "netsim/cluster.hpp"
#include "parallel/parallel.hpp"
#include "pipelined/dist_pipelined_pcg.hpp"
#include "pipelined/pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  int threads;
  bool converged;
  std::int64_t iterations;
  real_t final_relres;
  double flops_or_executed; ///< flops (sequential) / executed (distributed)
  std::uint64_t x_hash;
  std::uint64_t r_hash; ///< 0 where the solver does not expose r
};

// clang-format off
constexpr Golden kPcgSmall[] = {
    {1, true, 51, 0x1.4e2430a2fc6d8p-27, 0x1.228p+18, 0xaccb8734b55e8272ull, 0},
    {4, true, 51, 0x1.4e2430a2fc6d8p-27, 0x1.228p+18, 0xaccb8734b55e8272ull, 0},
};
constexpr Golden kPcgLarge[] = {
    {1, true, 603, 0x1.487d050692dafp-27, 0x1.085bp+29, 0x8c00e2a0b758bbaaull, 0},
    {4, true, 603, 0x1.487d050692fddp-27, 0x1.085bp+29, 0x8795e9b4cf21a41bull, 0},
};
constexpr Golden kPipeSmall[] = {
    {1, true, 45, 0x1.07e2ef4e4f1f6p-27, 0x1.0f3cp+19, 0x9bf9f6427477250eull, 0},
    {4, true, 45, 0x1.07e2ef4e4f1f6p-27, 0x1.0f3cp+19, 0x9bf9f6427477250eull, 0},
};
constexpr Golden kPipeLarge[] = {
    {1, true, 487, 0x1.4ea50e05f8ab1p-27, 0x1.e38572p+29, 0xe9e93122806cd57full, 0},
    {4, true, 487, 0x1.4ea57b0906d6ep-27, 0x1.e38572p+29, 0xe7a655dabbabae3cull, 0},
};
constexpr Golden kResilientEsrp[] = {
    {1, true, 46, 0x1.cd74c392c0b03p-28, 53, 0x34d1893ecd3f5437ull, 0xaa5bb0a3791451d2ull},
    {4, true, 46, 0x1.cd74c392c0b03p-28, 53, 0x34d1893ecd3f5437ull, 0xaa5bb0a3791451d2ull},
};
constexpr Golden kResilientImcr[] = {
    {1, true, 46, 0x1.e117cef1dc2dap-28, 50, 0xc663b01cc5499a89ull, 0x5f0c138d008086b3ull},
    {4, true, 46, 0x1.e117cef1dc2dap-28, 50, 0xc663b01cc5499a89ull, 0x5f0c138d008086b3ull},
};
constexpr Golden kDistPipeImcr[] = {
    {1, true, 46, 0x1.cd74c2d349e01p-28, 64, 0x84cf8b667d1c4725ull, 0x2b3cdd5e18fca129ull},
    {4, true, 46, 0x1.cd74c2d349e01p-28, 64, 0x84cf8b667d1c4725ull, 0x2b3cdd5e18fca129ull},
};
constexpr Golden kDistPipePlain[] = {
    {1, true, 46, 0x1.cd74c2d349e01p-28, 46, 0x84cf8b667d1c4725ull, 0x2b3cdd5e18fca129ull},
    {4, true, 46, 0x1.cd74c2d349e01p-28, 46, 0x84cf8b667d1c4725ull, 0x2b3cdd5e18fca129ull},
};
// clang-format on

class FusedSolverParity : public ::testing::Test {
protected:
  FusedSolverParity()
      : small_(poisson2d(16, 16)),
        large_(poisson2d(200, 200)),
        b_small_(xp::make_rhs(small_)),
        b_large_(xp::make_rhs(large_)) {}

  ThreadCountGuard guard_;
  CsrMatrix small_, large_;
  Vector b_small_, b_large_;
};

TEST_F(FusedSolverParity, SequentialPcgMatchesPreFusionPin) {
  for (const auto& [matrix, b, goldens] :
       {std::tuple{&small_, &b_small_, std::span<const Golden>(kPcgSmall)},
        std::tuple{&large_, &b_large_, std::span<const Golden>(kPcgLarge)}}) {
    const JacobiPreconditioner precond(*matrix);
    for (const Golden& g : goldens) {
      SCOPED_TRACE(testing::Message()
                   << "rows=" << matrix->rows() << " threads=" << g.threads);
      set_num_threads(g.threads);
      Vector x(b->size(), 0);
      const PcgResult r = pcg_solve(*matrix, *b, x, &precond);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed, r.flops);
      EXPECT_EQ(g.x_hash, fnv1a(x));
    }
  }
}

TEST_F(FusedSolverParity, SequentialPipelinedMatchesPreFusionPin) {
  for (const auto& [matrix, b, goldens] :
       {std::tuple{&small_, &b_small_, std::span<const Golden>(kPipeSmall)},
        std::tuple{&large_, &b_large_, std::span<const Golden>(kPipeLarge)}}) {
    const BlockJacobiPreconditioner precond(*matrix, 10);
    for (const Golden& g : goldens) {
      SCOPED_TRACE(testing::Message()
                   << "rows=" << matrix->rows() << " threads=" << g.threads);
      set_num_threads(g.threads);
      Vector x(b->size(), 0);
      const PipelinedPcgResult r = pipelined_pcg_solve(*matrix, *b, x, &precond);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed, r.flops);
      EXPECT_EQ(g.x_hash, fnv1a(x));
    }
  }
}

TEST_F(FusedSolverParity, ResilientEsrpTwoFailureScheduleMatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const Golden& g : kResilientEsrp) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    const BlockRowPartition part(small_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
    const BlockJacobiPreconditioner precond(small_, part, 10);
    ResilienceOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = 5;
    opts.phi = 2;
    opts.failure = FailureEvent{12, contiguous_ranks(2, 2, nodes)};
    opts.extra_failures.push_back(
        FailureEvent{25, contiguous_ranks(5, 1, nodes)});
    ResilientPcg solver(small_, precond, cluster, opts);
    const ResilientSolveResult r = solver.solve(b_small_);
    EXPECT_EQ(g.converged, r.converged);
    EXPECT_EQ(g.iterations, r.trajectory_iterations);
    EXPECT_EQ(g.final_relres, r.final_relres);
    EXPECT_EQ(g.flops_or_executed,
              static_cast<double>(r.executed_iterations));
    EXPECT_EQ(g.x_hash, fnv1a(r.x));
    EXPECT_EQ(g.r_hash, fnv1a(r.r));
    ASSERT_EQ(2u, r.recoveries.size());
    EXPECT_EQ(11, r.recoveries[0].restored_to);
    EXPECT_EQ(21, r.recoveries[1].restored_to);
  }
}

TEST_F(FusedSolverParity, ResilientImcrRestartWithX0MatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const Golden& g : kResilientImcr) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    const BlockRowPartition part(small_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
    const BlockJacobiPreconditioner precond(small_, part, 10);
    ResilienceOptions opts;
    opts.strategy = Strategy::imcr;
    opts.interval = 6;
    opts.phi = 2;
    opts.residual_replacement = 10;
    opts.failure = FailureEvent{15, contiguous_ranks(1, 2, nodes)};
    ResilientPcg solver(small_, precond, cluster, opts);
    const Vector x0(b_small_.size(), 0.5);
    const ResilientSolveResult r = solver.solve(b_small_, x0);
    EXPECT_EQ(g.converged, r.converged);
    EXPECT_EQ(g.iterations, r.trajectory_iterations);
    EXPECT_EQ(g.final_relres, r.final_relres);
    EXPECT_EQ(g.flops_or_executed,
              static_cast<double>(r.executed_iterations));
    EXPECT_EQ(g.x_hash, fnv1a(r.x));
    EXPECT_EQ(g.r_hash, fnv1a(r.r));
  }
}

TEST_F(FusedSolverParity, DistPipelinedMatchesPreFusionPin) {
  const rank_t nodes = 8;
  for (const bool with_failure : {true, false}) {
    for (const Golden& g : with_failure ? kDistPipeImcr : kDistPipePlain) {
      SCOPED_TRACE(testing::Message()
                   << "failure=" << with_failure << " threads=" << g.threads);
      set_num_threads(g.threads);
      const BlockRowPartition part(small_.rows(), nodes);
      SimCluster cluster(part, xp::calibrated_cost(small_, nodes));
      const BlockJacobiPreconditioner precond(small_, part, 10);
      DistPipelinedOptions opts;
      if (with_failure) {
        opts.strategy = Strategy::imcr;
        opts.interval = 10;
        opts.phi = 2;
        opts.failure = FailureEvent{17, contiguous_ranks(1, 3, nodes)};
      }
      DistPipelinedPcg solver(small_, precond, cluster, opts);
      const DistPipelinedResult r = solver.solve(b_small_);
      EXPECT_EQ(g.converged, r.converged);
      EXPECT_EQ(g.iterations, r.trajectory_iterations);
      EXPECT_EQ(g.final_relres, r.final_relres);
      EXPECT_EQ(g.flops_or_executed,
                static_cast<double>(r.executed_iterations));
      EXPECT_EQ(g.x_hash, fnv1a(r.x));
      EXPECT_EQ(g.r_hash, fnv1a(r.r));
    }
  }
}

/// Facade-routed solves hit the same pins: the fused loops sit behind
/// esrp::solve unchanged (the PR 3 parity guarantee).
TEST_F(FusedSolverParity, FacadeRoutedSolveMatchesPreFusionPin) {
  for (const Golden& g : kPcgSmall) {
    SCOPED_TRACE(g.threads);
    set_num_threads(g.threads);
    SolveSpec spec;
    spec.matrix_data = &small_;
    spec.rhs = b_small_;
    spec.solver = "pcg";
    spec.precond = "jacobi";
    const SolveReport report = solve(spec);
    EXPECT_EQ(g.converged, report.converged);
    EXPECT_EQ(g.iterations, report.iterations);
    EXPECT_EQ(g.final_relres, report.final_relres);
    EXPECT_EQ(g.flops_or_executed, report.flops);
    EXPECT_EQ(g.x_hash, fnv1a(report.x));
  }
}

/// Flop accounting audit (fused kernels must report the unfused sequence's
/// counts): with the identity preconditioner the totals have a closed form.
/// PCG: init spmv + 4n, each executed body spmv + 12n. Pipelined: init
/// 2 spmv, each loop top 6n, each executed body spmv + 16n.
TEST_F(FusedSolverParity, FusedFlopAccountingMatchesUnfusedFormula) {
  const CsrMatrix a = poisson2d(30, 30);
  const Vector b = xp::make_rhs(a);
  const double spmv = static_cast<double>(a.spmv_flops());
  const double n = static_cast<double>(a.rows());

  Vector x(b.size(), 0);
  const PcgResult pcg = pcg_solve(a, b, x, nullptr);
  ASSERT_TRUE(pcg.converged);
  const double j = static_cast<double>(pcg.iterations);
  EXPECT_EQ(spmv + 4 * n + j * (spmv + 12 * n), pcg.flops);

  Vector xp2(b.size(), 0);
  const PipelinedPcgResult pipe = pipelined_pcg_solve(a, b, xp2, nullptr);
  ASSERT_TRUE(pipe.converged);
  const double jp = static_cast<double>(pipe.iterations);
  EXPECT_EQ(2 * spmv + (jp + 1) * 6 * n + jp * (spmv + 16 * n), pipe.flops);
}

} // namespace
} // namespace esrp
