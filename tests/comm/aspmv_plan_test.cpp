// ASpMV augmentation-plan tests, including the paper's central redundancy
// invariant as a parameterized property: after one ASpMV every entry must
// reside on at least phi nodes besides its owner, so any phi-node failure
// leaves a surviving copy.
#include "comm/aspmv_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "netsim/failure.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(DesignatedDestination, MatchesEq1RingPattern) {
  // d_{s,k} = s + ceil(k/2) for odd k, s - k/2 for even k (mod N).
  EXPECT_EQ(designated_destination(5, 1, 10), 6);
  EXPECT_EQ(designated_destination(5, 2, 10), 4);
  EXPECT_EQ(designated_destination(5, 3, 10), 7);
  EXPECT_EQ(designated_destination(5, 4, 10), 3);
  EXPECT_EQ(designated_destination(5, 5, 10), 8);
}

TEST(DesignatedDestination, WrapsModuloN) {
  EXPECT_EQ(designated_destination(7, 1, 8), 0);
  EXPECT_EQ(designated_destination(0, 2, 8), 7);
  EXPECT_EQ(designated_destination(0, 4, 8), 6);
}

TEST(DesignatedDestination, FirstPhiDestinationsAreDistinct) {
  const rank_t n = 16;
  for (rank_t s = 0; s < n; ++s) {
    std::vector<rank_t> ds;
    for (int k = 1; k <= 8; ++k) ds.push_back(designated_destination(s, k, n));
    std::sort(ds.begin(), ds.end());
    EXPECT_EQ(std::adjacent_find(ds.begin(), ds.end()), ds.end());
    EXPECT_FALSE(std::binary_search(ds.begin(), ds.end(), s));
  }
}

TEST(AspmvPlan, PhiMustBeBelowNodeCount) {
  const CsrMatrix a = laplace1d(8);
  const BlockRowPartition part(8, 4);
  const SpmvPlan base(a, part);
  EXPECT_THROW(AspmvPlan(base, 4), Error);
  EXPECT_THROW(AspmvPlan(base, 0), Error);
  EXPECT_NO_THROW(AspmvPlan(base, 3));
}

TEST(AspmvPlan, ExtraSendsAvoidRegularDuplicates) {
  const CsrMatrix a = poisson2d(6, 6);
  const BlockRowPartition part(36, 6);
  const SpmvPlan base(a, part);
  const AspmvPlan aug(base, 2);
  for (rank_t s = 0; s < 6; ++s) {
    for (const SendList& sl : aug.extra_sends(s)) {
      for (index_t i : sl.indices) {
        EXPECT_FALSE(set_contains(base.send_set(s, sl.to), i))
            << "entry " << i << " sent twice to node " << sl.to;
      }
    }
  }
}

TEST(AspmvPlan, NoOversending) {
  // Greedy augmentation sends exactly max(0, phi - m(i)) extra copies.
  const CsrMatrix a = poisson2d(8, 8);
  const BlockRowPartition part(64, 8);
  const SpmvPlan base(a, part);
  const int phi = 3;
  const AspmvPlan aug(base, phi);
  for (index_t i = 0; i < 64; ++i) {
    const int receivers = static_cast<int>(aug.receivers_of(i).size());
    EXPECT_EQ(receivers, std::max(phi, base.multiplicity(i)))
        << "entry " << i;
  }
}

TEST(AspmvPlan, HighMultiplicityEntriesNeedNoAugmentation) {
  const CsrMatrix a = laplace1d(6);
  const BlockRowPartition part(6, 6); // every entry already sent to neighbors
  const SpmvPlan base(a, part);
  const AspmvPlan aug(base, 1);
  EXPECT_EQ(aug.total_extra_entries(), 0u);
}

TEST(AspmvPlan, BandedMatrixHasLowerOverheadThanDiagonalOne) {
  // Paper §2.2: banded matrices minimize ASpMV augmentation because the
  // neighbors already receive much of the data.
  const index_t n = 64;
  const BlockRowPartition part(n, 8);
  const CsrMatrix banded = banded_spd(n, 10, 1.0, 3);
  // A (block-)diagonal-only matrix shares nothing in the regular SpMV.
  const CsrMatrix diag = csr_identity(n, 2.0);
  const SpmvPlan base_banded(banded, part);
  const AspmvPlan aug_banded(base_banded, 1);
  const SpmvPlan base_diag(diag, part);
  const AspmvPlan aug_diag(base_diag, 1);
  EXPECT_EQ(base_diag.total_entries_sent(), 0u);
  EXPECT_EQ(aug_diag.total_extra_entries(), static_cast<std::uint64_t>(n));
  EXPECT_LT(aug_banded.total_extra_entries(), aug_diag.total_extra_entries());
}

TEST(AspmvPlan, ExtraEntriesGrowWithPhi) {
  const CsrMatrix a = poisson2d(10, 10);
  const BlockRowPartition part(100, 10);
  const SpmvPlan base(a, part);
  std::uint64_t prev = 0;
  for (int phi : {1, 3, 8}) {
    const AspmvPlan aug(base, phi);
    EXPECT_GE(aug.total_extra_entries(), prev);
    prev = aug.total_extra_entries();
  }
  EXPECT_GT(prev, 0u);
}

TEST(AspmvPlacement, HaloAffinePrefersExistingRoutes) {
  const CsrMatrix a = poisson2d(10, 10);
  const BlockRowPartition part(100, 10);
  const SpmvPlan base(a, part);
  const AspmvPlan ring(base, 3, AspmvPlacement::ring);
  const AspmvPlan affine(base, 3, AspmvPlacement::halo_affine);
  // The halo-affine placement opens at most as many fresh sender->receiver
  // routes as the ring placement (usually strictly fewer).
  EXPECT_LE(affine.new_routes(), ring.new_routes());
}

TEST(AspmvPlacement, HaloAffineKeepsTheRedundancyInvariant) {
  const CsrMatrix a = diffusion3d_27pt(4, 5, 5, 50, 7);
  const BlockRowPartition part(a.rows(), 8);
  const SpmvPlan base(a, part);
  for (const int phi : {1, 3, 5}) {
    const AspmvPlan aug(base, phi, AspmvPlacement::halo_affine);
    for (index_t i = 0; i < a.rows(); ++i) {
      EXPECT_GE(static_cast<int>(aug.receivers_of(i).size()), phi)
          << "entry " << i << " phi " << phi;
    }
  }
}

TEST(AspmvPlacement, DestinationsAreDistinctAndNotOwner) {
  const CsrMatrix a = poisson3d(5, 5, 4);
  const BlockRowPartition part(a.rows(), 7);
  const SpmvPlan base(a, part);
  for (const AspmvPlacement placement :
       {AspmvPlacement::ring, AspmvPlacement::halo_affine}) {
    const AspmvPlan aug(base, 4, placement);
    for (rank_t s = 0; s < 7; ++s) {
      auto dests = aug.destinations_of(s);
      ASSERT_EQ(dests.size(), 4u);
      std::sort(dests.begin(), dests.end());
      EXPECT_EQ(std::adjacent_find(dests.begin(), dests.end()), dests.end());
      EXPECT_FALSE(std::binary_search(dests.begin(), dests.end(), s));
    }
  }
}

TEST(AspmvPlacement, RingMatchesEq1Destinations) {
  const CsrMatrix a = laplace1d(24);
  const BlockRowPartition part(24, 8);
  const SpmvPlan base(a, part);
  const AspmvPlan aug(base, 3);
  for (rank_t s = 0; s < 8; ++s) {
    const auto& dests = aug.destinations_of(s);
    for (int k = 1; k <= 3; ++k)
      EXPECT_EQ(dests[static_cast<std::size_t>(k - 1)],
                designated_destination(s, k, 8));
  }
}

// ---------------------------------------------------------------------------
// Property sweep: the redundancy invariant over matrices x node counts x phi.
// ---------------------------------------------------------------------------

struct RedundancyCase {
  const char* matrix;
  rank_t nodes;
  int phi;
};

class AspmvRedundancyProperty
    : public ::testing::TestWithParam<RedundancyCase> {
protected:
  static CsrMatrix make_matrix(const std::string& name) {
    if (name == "laplace1d") return laplace1d(96);
    if (name == "poisson2d") return poisson2d(10, 10);
    if (name == "poisson3d") return poisson3d(5, 5, 4);
    if (name == "banded") return banded_spd(90, 5, 0.4, 13);
    if (name == "diffusion") return diffusion3d_27pt(4, 5, 5, 50, 7);
    if (name == "elasticity") return elasticity3d(3, 3, 4, 20, 9);
    throw Error("unknown matrix " + name);
  }
};

TEST_P(AspmvRedundancyProperty, EveryEntryHasAtLeastPhiOffOwnerCopies) {
  const RedundancyCase& c = GetParam();
  const CsrMatrix a = make_matrix(c.matrix);
  const BlockRowPartition part(a.rows(), c.nodes);
  const SpmvPlan base(a, part);
  const AspmvPlan aug(base, c.phi);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto receivers = aug.receivers_of(i);
    EXPECT_GE(static_cast<int>(receivers.size()), c.phi)
        << "entry " << i << " under-replicated";
    for (rank_t r : receivers) EXPECT_NE(r, part.owner(i));
  }
}

TEST_P(AspmvRedundancyProperty, AnyContiguousPhiFailureLeavesACopy) {
  const RedundancyCase& c = GetParam();
  const CsrMatrix a = make_matrix(c.matrix);
  const BlockRowPartition part(a.rows(), c.nodes);
  const SpmvPlan base(a, part);
  const AspmvPlan aug(base, c.phi);
  // Slide a contiguous failure window of psi = phi ranks over the ring.
  for (rank_t start = 0; start < c.nodes; ++start) {
    const auto failed =
        contiguous_ranks(start, static_cast<rank_t>(c.phi), c.nodes);
    for (rank_t f : failed) {
      for (index_t i = part.begin(f); i < part.end(f); ++i) {
        const auto receivers = aug.receivers_of(i);
        const bool survives = std::any_of(
            receivers.begin(), receivers.end(),
            [&](rank_t r) { return !rank_in(failed, r); });
        EXPECT_TRUE(survives) << "entry " << i << " lost when ranks starting "
                              << start << " fail";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AspmvRedundancyProperty,
    ::testing::Values(
        RedundancyCase{"laplace1d", 8, 1}, RedundancyCase{"laplace1d", 8, 3},
        RedundancyCase{"laplace1d", 12, 8}, RedundancyCase{"poisson2d", 10, 1},
        RedundancyCase{"poisson2d", 10, 3}, RedundancyCase{"poisson2d", 10, 8},
        RedundancyCase{"poisson3d", 7, 3}, RedundancyCase{"banded", 9, 2},
        RedundancyCase{"banded", 9, 5}, RedundancyCase{"diffusion", 8, 3},
        RedundancyCase{"elasticity", 6, 2}, RedundancyCase{"elasticity", 6, 4}),
    [](const ::testing::TestParamInfo<RedundancyCase>& info) {
      return std::string(info.param.matrix) + "_N" +
             std::to_string(info.param.nodes) + "_phi" +
             std::to_string(info.param.phi);
    });

} // namespace
} // namespace esrp
