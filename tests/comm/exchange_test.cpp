#include "comm/exchange.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

Vector random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

class ExchangeFixture : public ::testing::Test {
protected:
  ExchangeFixture()
      : a_(poisson2d(8, 8)),
        part_(a_.rows(), 8),
        cluster_(part_),
        plan_(a_, part_),
        engine_(a_, plan_, cluster_) {}

  CsrMatrix a_;
  BlockRowPartition part_;
  SimCluster cluster_;
  SpmvPlan plan_;
  ExchangeEngine engine_;
};

TEST_F(ExchangeFixture, DistributedSpmvMatchesSequential) {
  const Vector x = random_vector(a_.rows(), 1);
  DistVector xd(part_, x), yd(part_);
  engine_.spmv(xd, yd);
  Vector y_ref(static_cast<std::size_t>(a_.rows()));
  a_.spmv(x, y_ref);
  const Vector y = yd.gather_global();
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);
}

TEST_F(ExchangeFixture, SpmvChargesHaloAndCompute) {
  const Vector x = random_vector(a_.rows(), 2);
  DistVector xd(part_, x), yd(part_);
  engine_.spmv(xd, yd);
  EXPECT_GT(cluster_.modeled_time(), 0);
  EXPECT_EQ(cluster_.ledger().totals(CommCategory::spmv_halo).bytes,
            plan_.total_entries_sent() * CostParams::bytes_per_scalar);
  EXPECT_EQ(cluster_.ledger().totals(CommCategory::aspmv_extra).bytes, 0u);
}

TEST_F(ExchangeFixture, AspmvProductEqualsSpmvProduct) {
  const AspmvPlan aug(plan_, 3);
  const Vector x = random_vector(a_.rows(), 3);
  DistVector xd(part_, x), y1(part_), y2(part_);
  engine_.spmv(xd, y1);
  engine_.aspmv(aug, xd, /*tag=*/0, y2);
  EXPECT_EQ(y1.gather_global(), y2.gather_global());
}

TEST_F(ExchangeFixture, AspmvChargesExtraTraffic) {
  const AspmvPlan aug(plan_, 3);
  const Vector x = random_vector(a_.rows(), 4);
  DistVector xd(part_, x), yd(part_);
  engine_.aspmv(aug, xd, 0, yd);
  EXPECT_EQ(cluster_.ledger().totals(CommCategory::aspmv_extra).bytes,
            aug.total_extra_entries() * CostParams::bytes_per_scalar);
}

TEST_F(ExchangeFixture, CapturedCopyHoldsExactValues) {
  const AspmvPlan aug(plan_, 2);
  const Vector x = random_vector(a_.rows(), 5);
  DistVector xd(part_, x), yd(part_);
  const RedundantCopy copy = engine_.aspmv(aug, xd, 7, yd);
  EXPECT_EQ(copy.tag(), 7);
  // Every entry can be recovered from some non-owner holder with its exact
  // value, even when the owner "fails".
  for (index_t i = 0; i < a_.rows(); ++i) {
    const std::vector<rank_t> failed{part_.owner(i)};
    const auto hit = copy.find_surviving(i, failed);
    ASSERT_TRUE(hit.has_value()) << "entry " << i;
    EXPECT_DOUBLE_EQ(hit->second, x[static_cast<std::size_t>(i)]);
    EXPECT_NE(hit->first, part_.owner(i));
  }
}

TEST_F(ExchangeFixture, HeldInFiltersByWantedSet) {
  const AspmvPlan aug(plan_, 1);
  const Vector x = random_vector(a_.rows(), 6);
  DistVector xd(part_, x), yd(part_);
  const RedundantCopy copy = engine_.aspmv(aug, xd, 0, yd);
  const IndexSet wanted = index_range(part_.begin(0), part_.end(0));
  for (rank_t h = 1; h < part_.num_nodes(); ++h) {
    for (const auto& [idx, val] : copy.held_in(h, wanted)) {
      EXPECT_EQ(part_.owner(idx), 0);
      EXPECT_DOUBLE_EQ(val, x[static_cast<std::size_t>(idx)]);
    }
  }
}

TEST_F(ExchangeFixture, DropHoldersForgetsFailedNodesCopies) {
  const AspmvPlan aug(plan_, 1);
  const Vector x = random_vector(a_.rows(), 8);
  DistVector xd(part_, x), yd(part_);
  RedundantCopy copy = engine_.aspmv(aug, xd, 0, yd);
  const std::size_t before = copy.total_entries();
  std::vector<rank_t> all_but_owner;
  for (rank_t s = 1; s < part_.num_nodes(); ++s) all_but_owner.push_back(s);
  copy.drop_holders(all_but_owner);
  EXPECT_LT(copy.total_entries(), before);
  // With every non-owner holder gone, nothing survives an owner failure.
  const std::vector<rank_t> owner_failed{0};
  bool any = false;
  for (index_t i = part_.begin(0); i < part_.end(0) && !any; ++i)
    any = copy.find_surviving(i, owner_failed).has_value();
  EXPECT_FALSE(any);
}

TEST_F(ExchangeFixture, HaloAffinePlacementDeliversSameProductAndCopies) {
  const AspmvPlan aug(plan_, 3, AspmvPlacement::halo_affine);
  const Vector x = random_vector(a_.rows(), 21);
  DistVector xd(part_, x), y1(part_), y2(part_);
  engine_.spmv(xd, y1);
  const RedundantCopy copy = engine_.aspmv(aug, xd, 5, y2);
  EXPECT_EQ(y1.gather_global(), y2.gather_global());
  // Redundancy invariant holds through the engine: every entry survives the
  // failure of its owner plus two neighbors.
  for (index_t i = 0; i < a_.rows(); ++i) {
    const rank_t owner = part_.owner(i);
    const std::vector<rank_t> failed{
        owner, static_cast<rank_t>((owner + 1) % part_.num_nodes()),
        static_cast<rank_t>((owner + part_.num_nodes() - 1) %
                            part_.num_nodes())};
    const auto hit = copy.find_surviving(i, failed);
    ASSERT_TRUE(hit.has_value()) << "entry " << i;
    EXPECT_DOUBLE_EQ(hit->second, x[static_cast<std::size_t>(i)]);
  }
}

TEST_F(ExchangeFixture, NoBarrierSpmvLeavesSuperstepOpen) {
  const Vector x = random_vector(a_.rows(), 22);
  DistVector xd(part_, x), yd(part_);
  engine_.spmv(xd, yd, /*complete_step=*/false);
  const double before = cluster_.modeled_time();
  // Nothing charged yet: the step is still open.
  cluster_.complete_step();
  EXPECT_GT(cluster_.modeled_time(), before);
}

TEST(Exchange, SingleNodeClusterNeedsNoMessages) {
  const CsrMatrix a = laplace1d(10);
  const BlockRowPartition part(10, 1);
  SimCluster cluster(part);
  const SpmvPlan plan(a, part);
  ExchangeEngine engine(a, plan, cluster);
  DistVector x(part, Vector(10, 1)), y(part);
  engine.spmv(x, y);
  EXPECT_EQ(cluster.ledger().total_messages(), 0u);
  EXPECT_GT(cluster.modeled_time(), 0); // compute still charged
}

TEST(Exchange, WorksOnElasticityOperator) {
  const CsrMatrix a = elasticity3d(3, 3, 3, 10, 2);
  const BlockRowPartition part(a.rows(), 6);
  SimCluster cluster(part);
  const SpmvPlan plan(a, part);
  ExchangeEngine engine(a, plan, cluster);
  const Vector x = random_vector(a.rows(), 11);
  DistVector xd(part, x), yd(part);
  engine.spmv(xd, yd);
  Vector y_ref(static_cast<std::size_t>(a.rows()));
  a.spmv(x, y_ref);
  const Vector y = yd.gather_global();
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

} // namespace
} // namespace esrp
