#include "comm/spmv_plan.hpp"

#include <gtest/gtest.h>

#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(SpmvPlan, Laplace1dSendsBoundaryEntriesToNeighbors) {
  const CsrMatrix a = laplace1d(8);
  const BlockRowPartition part(8, 4); // ranges [0,2) [2,4) [4,6) [6,8)
  const SpmvPlan plan(a, part);

  // Node 0 owns {0,1}; node 1's rows 2..3 reference column 1 -> I_{0,1}={1}.
  EXPECT_EQ(plan.send_set(0, 1), (IndexSet{1}));
  // Node 1 sends its first entry left and its last entry right.
  EXPECT_EQ(plan.send_set(1, 0), (IndexSet{2}));
  EXPECT_EQ(plan.send_set(1, 2), (IndexSet{3}));
  // Non-adjacent nodes exchange nothing for a tridiagonal matrix.
  EXPECT_TRUE(plan.send_set(0, 2).empty());
  EXPECT_TRUE(plan.send_set(0, 3).empty());
}

TEST(SpmvPlan, GhostsAreExactlyTheOffNodeColumns) {
  const CsrMatrix a = laplace1d(8);
  const BlockRowPartition part(8, 4);
  const SpmvPlan plan(a, part);
  EXPECT_EQ(plan.ghosts(0), (IndexSet{2}));
  EXPECT_EQ(plan.ghosts(1), (IndexSet{1, 4}));
  EXPECT_EQ(plan.ghosts(3), (IndexSet{5}));
}

TEST(SpmvPlan, MultiplicityCountsDistinctReceivers) {
  const CsrMatrix a = laplace1d(8);
  const BlockRowPartition part(8, 4);
  const SpmvPlan plan(a, part);
  // Interior entries of a node (e.g. index 0) are never sent: m = 0.
  EXPECT_EQ(plan.multiplicity(0), 0);
  // Boundary entries go to exactly one neighbor: m = 1.
  EXPECT_EQ(plan.multiplicity(1), 1);
  EXPECT_EQ(plan.multiplicity(2), 1);
}

TEST(SpmvPlan, TridiagonalDoesNotProvideFullRedundancy) {
  const CsrMatrix a = laplace1d(12);
  const BlockRowPartition part(12, 4);
  const SpmvPlan plan(a, part);
  // Paper §2.2: most matrices fail the full-redundancy condition.
  EXPECT_FALSE(plan.provides_full_redundancy());
}

TEST(SpmvPlan, OnePerNodeRowsGiveFullRedundancy) {
  // With one row per node, every off-diagonal entry crosses a node
  // boundary, so every entry of a connected stencil is sent somewhere.
  const CsrMatrix a = laplace1d(6);
  const BlockRowPartition part(6, 6);
  const SpmvPlan plan(a, part);
  EXPECT_TRUE(plan.provides_full_redundancy());
}

TEST(SpmvPlan, LocalNnzSumsToTotal) {
  const CsrMatrix a = poisson2d(8, 8);
  const BlockRowPartition part(64, 5);
  const SpmvPlan plan(a, part);
  index_t total = 0;
  for (rank_t s = 0; s < 5; ++s) total += plan.local_nnz(s);
  EXPECT_EQ(total, a.nnz());
}

TEST(SpmvPlan, SendListsNeverTargetSelf) {
  const CsrMatrix a = poisson2d(10, 10);
  const BlockRowPartition part(100, 7);
  const SpmvPlan plan(a, part);
  for (rank_t s = 0; s < 7; ++s) {
    for (const SendList& sl : plan.sends(s)) {
      EXPECT_NE(sl.to, s);
      EXPECT_TRUE(is_index_set(sl.indices));
      for (index_t i : sl.indices) EXPECT_EQ(part.owner(i), s);
    }
  }
}

TEST(SpmvPlan, TotalEntriesMatchesSumOfSendLists) {
  const CsrMatrix a = poisson2d(9, 9);
  const BlockRowPartition part(81, 6);
  const SpmvPlan plan(a, part);
  std::uint64_t manual = 0;
  for (rank_t s = 0; s < 6; ++s)
    for (const SendList& sl : plan.sends(s)) manual += sl.indices.size();
  EXPECT_EQ(plan.total_entries_sent(), manual);
  EXPECT_GT(manual, 0u);
}

TEST(SpmvPlan, SendSetsCoverEveryGhost) {
  const CsrMatrix a = poisson3d(4, 4, 4);
  const BlockRowPartition part(64, 8);
  const SpmvPlan plan(a, part);
  for (rank_t l = 0; l < 8; ++l) {
    for (index_t g : plan.ghosts(l)) {
      const rank_t owner = part.owner(g);
      EXPECT_TRUE(set_contains(plan.send_set(owner, l), g))
          << "ghost " << g << " of node " << l << " not covered";
    }
  }
}

TEST(SpmvPlan, DenserMatrixSendsMoreEntries) {
  // Paper §2.2: denser matrices move more data in the regular SpMV.
  const CsrMatrix narrow = banded_spd(60, 2, 1.0, 1);
  const CsrMatrix wide = banded_spd(60, 12, 1.0, 1);
  const BlockRowPartition part(60, 6);
  EXPECT_LT(SpmvPlan(narrow, part).total_entries_sent(),
            SpmvPlan(wide, part).total_entries_sent());
}

} // namespace
} // namespace esrp
