#include "netsim/failure.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(ContiguousRanks, SimpleBlock) {
  EXPECT_EQ(contiguous_ranks(2, 3, 8), (std::vector<rank_t>{2, 3, 4}));
}

TEST(ContiguousRanks, WrapsAroundModulo) {
  EXPECT_EQ(contiguous_ranks(6, 4, 8), (std::vector<rank_t>{6, 7, 0, 1}));
}

TEST(ContiguousRanks, PaperScenarios) {
  // Paper: blocks starting at ranks 0 and 64 on 128 nodes.
  const auto start = contiguous_ranks(0, 8, 128);
  EXPECT_EQ(start.front(), 0);
  EXPECT_EQ(start.back(), 7);
  const auto center = contiguous_ranks(64, 8, 128);
  EXPECT_EQ(center.front(), 64);
  EXPECT_EQ(center.back(), 71);
}

TEST(ContiguousRanks, ZeroCountIsEmpty) {
  EXPECT_TRUE(contiguous_ranks(3, 0, 8).empty());
}

TEST(ContiguousRanks, TooManyThrows) {
  EXPECT_THROW(contiguous_ranks(0, 9, 8), Error);
}

TEST(RankIn, MembershipCheck) {
  const std::vector<rank_t> rs{1, 5};
  EXPECT_TRUE(rank_in(rs, 5));
  EXPECT_FALSE(rank_in(rs, 2));
}

TEST(SurvivingRanks, ComplementIsSortedAndComplete) {
  const std::vector<rank_t> failed{1, 3};
  const auto surv = surviving_ranks(failed, 5);
  EXPECT_EQ(surv, (std::vector<rank_t>{0, 2, 4}));
}

TEST(FailureEvent, EnabledRequiresIterationAndRanks) {
  FailureEvent e;
  EXPECT_FALSE(e.enabled());
  e.iteration = 5;
  EXPECT_FALSE(e.enabled()); // no ranks yet
  e.ranks = {0};
  EXPECT_TRUE(e.enabled());
  e.iteration = -1;
  EXPECT_FALSE(e.enabled());
}

} // namespace
} // namespace esrp
