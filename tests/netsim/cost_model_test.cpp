#include "netsim/cost_model.hpp"

#include <gtest/gtest.h>

namespace esrp {
namespace {

TEST(CostModel, MessageTimeIsAffineInBytes) {
  CostParams p;
  p.alpha_s = 1e-6;
  p.beta_s = 1e-9;
  EXPECT_DOUBLE_EQ(message_time(p, 0), 1e-6);
  EXPECT_DOUBLE_EQ(message_time(p, 1000), 1e-6 + 1e-6);
}

TEST(CostModel, AllreduceSingleNodeIsFree) {
  CostParams p;
  EXPECT_DOUBLE_EQ(allreduce_time(p, 1, 8), 0);
}

TEST(CostModel, AllreduceUsesLog2Rounds) {
  CostParams p;
  p.alpha_s = 1;
  p.beta_s = 0;
  EXPECT_DOUBLE_EQ(allreduce_time(p, 2, 8), 2);   // 1 round, x2
  EXPECT_DOUBLE_EQ(allreduce_time(p, 8, 8), 6);   // 3 rounds
  EXPECT_DOUBLE_EQ(allreduce_time(p, 128, 8), 14); // 7 rounds
}

TEST(CostModel, AllreduceNonPowerOfTwoRoundsUp) {
  CostParams p;
  p.alpha_s = 1;
  p.beta_s = 0;
  EXPECT_DOUBLE_EQ(allreduce_time(p, 5, 8), 6); // ceil(log2 5) = 3 rounds
}

TEST(CostModel, ComputeTimeScalesWithFlops) {
  CostParams p;
  p.gamma_s = 2e-10;
  EXPECT_DOUBLE_EQ(compute_time(p, 1e9), 0.2);
  EXPECT_DOUBLE_EQ(compute_time(p, 0), 0);
}

TEST(CostModel, DefaultsAreSane) {
  const CostParams p;
  // 1 MB message takes far longer than latency alone.
  EXPECT_GT(message_time(p, 1 << 20), 10 * p.alpha_s);
  // A double is 8 bytes.
  EXPECT_EQ(CostParams::bytes_per_scalar, 8u);
}

} // namespace
} // namespace esrp
