#include "netsim/dist_vector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

TEST(DistVector, ConstructsZeroedSlices) {
  const BlockRowPartition part(10, 3);
  const DistVector v(part);
  for (rank_t s = 0; s < 3; ++s) {
    for (real_t x : v.local(s)) EXPECT_DOUBLE_EQ(x, 0);
  }
}

TEST(DistVector, ScatterGatherRoundTrip) {
  const BlockRowPartition part(10, 3);
  Vector g(10);
  for (std::size_t i = 0; i < 10; ++i) g[i] = static_cast<real_t>(i * i);
  const DistVector v(part, g);
  EXPECT_EQ(v.gather_global(), g);
}

TEST(DistVector, LocalSlicesMatchPartitionRanges) {
  const BlockRowPartition part(10, 3); // 4,3,3
  Vector g(10);
  for (std::size_t i = 0; i < 10; ++i) g[i] = static_cast<real_t>(i);
  const DistVector v(part, g);
  EXPECT_EQ(v.local(0).size(), 4u);
  EXPECT_DOUBLE_EQ(v.local(1)[0], 4);
  EXPECT_DOUBLE_EQ(v.local(2)[2], 9);
}

TEST(DistVector, ZeroRanksWipesOnlyThoseSlices) {
  const BlockRowPartition part(9, 3);
  Vector g(9, 1);
  DistVector v(part, g);
  const std::vector<rank_t> failed{1};
  v.zero_ranks(failed);
  EXPECT_DOUBLE_EQ(v.at(0), 1);
  EXPECT_DOUBLE_EQ(v.at(3), 0);
  EXPECT_DOUBLE_EQ(v.at(5), 0);
  EXPECT_DOUBLE_EQ(v.at(6), 1);
}

TEST(DistVector, AtAndSetAddressGlobalIndices) {
  const BlockRowPartition part(7, 2);
  DistVector v(part);
  v.set(5, 3.25);
  EXPECT_DOUBLE_EQ(v.at(5), 3.25);
  EXPECT_DOUBLE_EQ(v.local(1)[static_cast<std::size_t>(5 - part.begin(1))],
                   3.25);
}

TEST(DistVector, CopyFromReplicatesAllSlices) {
  const BlockRowPartition part(8, 4);
  Vector g{1, 2, 3, 4, 5, 6, 7, 8};
  const DistVector a(part, g);
  DistVector b(part);
  b.copy_from(a);
  EXPECT_EQ(b.gather_global(), g);
}

TEST(DistVector, MutatingLocalSliceAffectsGather) {
  const BlockRowPartition part(6, 2);
  DistVector v(part);
  v.local(1)[0] = 42;
  EXPECT_DOUBLE_EQ(v.gather_global()[3], 42);
}

TEST(DistVector, SizeMismatchOnScatterThrows) {
  const BlockRowPartition part(6, 2);
  DistVector v(part);
  const Vector wrong(5, 0);
  EXPECT_THROW(v.set_from_global(wrong), Error);
}

TEST(DistVector, ZeroAllClearsEverything) {
  const BlockRowPartition part(6, 3);
  DistVector v(part, Vector(6, 7));
  v.zero_all();
  for (real_t x : v.gather_global()) EXPECT_DOUBLE_EQ(x, 0);
}

} // namespace
} // namespace esrp
