// The centralized failure-schedule validation (netsim/failure.hpp):
// validate_failure_schedule and merge_failure_schedule are the single
// source of truth both resilience engines and validate_spec route through,
// so every malformed-schedule class is pinned here once.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netsim/failure.hpp"

namespace esrp {
namespace {

constexpr rank_t kNodes = 8;

void expect_rejected(std::vector<FailureEvent> schedule,
                     const std::string& needle) {
  try {
    validate_failure_schedule(schedule, kNodes);
    FAIL() << "expected the schedule to be rejected (" << needle << ")";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FailureSchedule, AcceptsWellFormedSchedules) {
  EXPECT_NO_THROW(validate_failure_schedule({}, kNodes));
  std::vector<FailureEvent> one{{10, {0}}};
  EXPECT_NO_THROW(validate_failure_schedule(one, kNodes));
  std::vector<FailureEvent> multi{{5, {0, 1}}, {6, {2}}, {40, {7}}};
  EXPECT_NO_THROW(validate_failure_schedule(multi, kNodes));
}

TEST(FailureSchedule, AllRanksFailingIsValid) {
  // The recovery ladder resolves an all-ranks event to a deterministic
  // scratch restart; it is not a schedule error.
  std::vector<FailureEvent> all{{10, {0, 1, 2, 3, 4, 5, 6, 7}}};
  EXPECT_NO_THROW(validate_failure_schedule(all, kNodes));
}

TEST(FailureSchedule, RejectsHalfSpecifiedEvents) {
  expect_rejected({{10, {}}}, "not fully specified");
  expect_rejected({{-1, {3}}}, "not fully specified");
}

TEST(FailureSchedule, RejectsNonIncreasingIterations) {
  expect_rejected({{10, {0}}, {10, {1}}}, "strictly increasing");
  expect_rejected({{10, {0}}, {5, {1}}}, "strictly increasing");
}

TEST(FailureSchedule, RejectsBadRanks) {
  expect_rejected({{10, {kNodes}}}, "outside");
  expect_rejected({{10, {-1}}}, "outside");
  expect_rejected({{10, {3, 3}}}, "more than once");
}

TEST(FailureSchedule, MergeSortsAndSkipsDisabledEvents) {
  FailureEvent primary{20, {1}};
  std::vector<FailureEvent> extra{{5, {0}}, FailureEvent{}, {30, {2}}};
  const std::vector<FailureEvent> merged =
      merge_failure_schedule(primary, extra, kNodes);
  ASSERT_EQ(merged.size(), 3u); // the default-constructed event is dropped
  EXPECT_EQ(merged[0].iteration, 5);
  EXPECT_EQ(merged[1].iteration, 20);
  EXPECT_EQ(merged[2].iteration, 30);
}

TEST(FailureSchedule, MergeWithDisabledPrimaryIsJustTheExtras) {
  std::vector<FailureEvent> extra{{5, {0}}};
  const std::vector<FailureEvent> merged =
      merge_failure_schedule(FailureEvent{}, extra, kNodes);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].iteration, 5);
}

TEST(FailureSchedule, MergeKeepsHalfSpecifiedEventsForRejection) {
  // A half-specified event is a caller mistake, not a disabled slot: the
  // merge must surface it instead of silently dropping it.
  std::vector<FailureEvent> no_ranks{{7, {}}};
  EXPECT_THROW(merge_failure_schedule(FailureEvent{}, no_ranks, kNodes),
               Error);
  std::vector<FailureEvent> no_iteration{{-1, {2}}};
  EXPECT_THROW(merge_failure_schedule(FailureEvent{}, no_iteration, kNodes),
               Error);
}

TEST(FailureSchedule, MergeRejectsCollidingPrimaryAndExtra) {
  std::vector<FailureEvent> extra{{10, {1}}};
  EXPECT_THROW(
      merge_failure_schedule(FailureEvent{10, {0}}, extra, kNodes), Error);
}

} // namespace
} // namespace esrp
