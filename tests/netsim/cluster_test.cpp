#include "netsim/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

CostParams unit_cost() {
  CostParams p;
  p.alpha_s = 1;    // 1 s per message
  p.beta_s = 0.5;   // 0.5 s per byte
  p.gamma_s = 2;    // 2 s per flop
  return p;
}

TEST(SimCluster, StepChargesSlowestNode) {
  const BlockRowPartition part(8, 4);
  SimCluster c(part, unit_cost());
  c.add_compute(0, 1); // 2 s
  c.add_compute(1, 3); // 6 s
  c.complete_step();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 6);
}

TEST(SimCluster, EmptyStepChargesNothing) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part, unit_cost());
  c.complete_step();
  c.complete_step();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 0);
}

TEST(SimCluster, SendChargesBothEndpoints) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part, unit_cost());
  c.send(0, 1, 2, CommCategory::spmv_halo); // 1 + 2*0.5 = 2 s each side
  c.complete_step();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 2);
}

TEST(SimCluster, SendAndRecvOverlapPerNode) {
  const BlockRowPartition part(8, 4);
  SimCluster c(part, unit_cost());
  // Node 1 sends one message (2 s) and receives one message (2 s):
  // max(send, recv) = 2 s, not 4 s.
  c.send(1, 2, 2, CommCategory::spmv_halo);
  c.send(0, 1, 2, CommCategory::spmv_halo);
  c.complete_step();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 2);
}

TEST(SimCluster, ComputePlusCommAccumulatePerNode) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part, unit_cost());
  c.add_compute(0, 1);                       // 2 s
  c.send(0, 1, 2, CommCategory::spmv_halo);  // +2 s on node 0
  c.complete_step();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 4);
}

TEST(SimCluster, SelfSendThrows) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part);
  EXPECT_THROW(c.send(1, 1, 8, CommCategory::other), Error);
}

TEST(SimCluster, AllreduceCompletesPendingStep) {
  const BlockRowPartition part(8, 4);
  SimCluster c(part, unit_cost());
  c.add_compute(0, 1); // 2 s
  c.allreduce(1, CommCategory::allreduce);
  // step (2 s) + allreduce 2*ceil(log2 4)*(1 + 8*0.5) = 4*5 = 20 s
  EXPECT_DOUBLE_EQ(c.modeled_time(), 22);
}

TEST(SimCluster, LedgerAccumulatesPerCategory) {
  const BlockRowPartition part(8, 4);
  SimCluster c(part);
  c.send(0, 1, 100, CommCategory::spmv_halo);
  c.send(1, 2, 50, CommCategory::aspmv_extra);
  c.send(2, 3, 50, CommCategory::aspmv_extra);
  c.complete_step();
  EXPECT_EQ(c.ledger().totals(CommCategory::spmv_halo).messages, 1u);
  EXPECT_EQ(c.ledger().totals(CommCategory::spmv_halo).bytes, 100u);
  EXPECT_EQ(c.ledger().totals(CommCategory::aspmv_extra).messages, 2u);
  EXPECT_EQ(c.ledger().totals(CommCategory::aspmv_extra).bytes, 100u);
  EXPECT_EQ(c.ledger().total_messages(), 3u);
}

TEST(SimCluster, ChargeTimeAddsDirectly) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part, unit_cost());
  c.charge_time(3.5);
  EXPECT_DOUBLE_EQ(c.modeled_time(), 3.5);
  EXPECT_THROW(c.charge_time(-1), Error);
}

TEST(SimCluster, ResetAccountingClearsTimeAndLedger) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part, unit_cost());
  c.send(0, 1, 8, CommCategory::other);
  c.complete_step();
  c.reset_accounting();
  EXPECT_DOUBLE_EQ(c.modeled_time(), 0);
  EXPECT_EQ(c.ledger().total_bytes(), 0u);
}

TEST(SimCluster, ResetMidStepThrows) {
  const BlockRowPartition part(8, 2);
  SimCluster c(part);
  c.add_compute(0, 1);
  EXPECT_THROW(c.reset_accounting(), Error);
}

TEST(SimCluster, OverlappedAllreduceChargesMaxNotSum) {
  const BlockRowPartition part(8, 4);
  SimCluster c(part, unit_cost());
  // Compute of 10 flops = 20 s; allreduce of 8 bytes over 4 nodes =
  // 2*2*(1 + 8*0.5) = 20 s. Overlapped: max(20, 20) = 20 s, not 40 s.
  c.add_compute(0, 10);
  c.allreduce_overlapped(1, CommCategory::allreduce);
  EXPECT_DOUBLE_EQ(c.modeled_time(), 20);
}

TEST(SimCluster, OverlappedAllreduceDominatedByLongerSide) {
  const BlockRowPartition part(8, 4);
  SimCluster c1(part, unit_cost());
  c1.add_compute(0, 100); // 200 s >> 20 s reduction
  c1.allreduce_overlapped(1, CommCategory::allreduce);
  EXPECT_DOUBLE_EQ(c1.modeled_time(), 200);

  SimCluster c2(part, unit_cost());
  c2.add_compute(0, 1); // 2 s << 20 s reduction
  c2.allreduce_overlapped(1, CommCategory::allreduce);
  EXPECT_DOUBLE_EQ(c2.modeled_time(), 20);
}

TEST(SimCluster, SetPartitionRebinds) {
  const BlockRowPartition part(8, 4);
  const BlockRowPartition absorbed(std::vector<index_t>{0, 4, 4, 6, 8});
  SimCluster c(part);
  c.set_partition(absorbed);
  EXPECT_EQ(&c.partition(), &absorbed);
}

TEST(SimCluster, SetPartitionRejectsDifferentShape) {
  const BlockRowPartition part(8, 4);
  const BlockRowPartition fewer_nodes(8, 2);
  const BlockRowPartition different_size(10, 4);
  SimCluster c(part);
  EXPECT_THROW(c.set_partition(fewer_nodes), Error);
  EXPECT_THROW(c.set_partition(different_size), Error);
}

TEST(SimCluster, SetPartitionRejectedMidStep) {
  const BlockRowPartition part(8, 4);
  const BlockRowPartition other(std::vector<index_t>{0, 2, 4, 6, 8});
  SimCluster c(part);
  c.add_compute(0, 1);
  EXPECT_THROW(c.set_partition(other), Error);
}

TEST(CommCategory, NamesAreStable) {
  EXPECT_EQ(to_string(CommCategory::spmv_halo), "spmv_halo");
  EXPECT_EQ(to_string(CommCategory::aspmv_extra), "aspmv_extra");
  EXPECT_EQ(to_string(CommCategory::checkpoint), "checkpoint");
  EXPECT_EQ(to_string(CommCategory::recovery), "recovery");
  EXPECT_EQ(to_string(CommCategory::allreduce), "allreduce");
}

} // namespace
} // namespace esrp
