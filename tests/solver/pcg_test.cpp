#include "solver/pcg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(Pcg, SolvesLaplace1dToTolerance) {
  const CsrMatrix a = laplace1d(50);
  const Vector b(50, 1);
  Vector x(50, 0);
  const PcgResult res = pcg_solve(a, b, x, nullptr);
  EXPECT_TRUE(res.converged);
  Vector ax(50);
  a.spmv(x, ax);
  EXPECT_LT(vec_dist2(ax, b) / vec_norm2(b), 1e-7);
}

TEST(Pcg, MatchesDenseSolve) {
  const CsrMatrix a = banded_spd(25, 4, 0.6, 31);
  Rng rng(2);
  Vector b(25);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vector x(25, 0);
  PcgOptions opts;
  opts.rtol = 1e-12;
  const PcgResult res = pcg_solve(a, b, x, nullptr, opts);
  ASSERT_TRUE(res.converged);
  const Vector x_ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);
}

TEST(Pcg, ExactArithmeticConvergesWithinDimensionIterations) {
  const CsrMatrix a = laplace1d(30);
  const Vector b(30, 1);
  Vector x(30, 0);
  const PcgResult res = pcg_solve(a, b, x, nullptr);
  // CG terminates in <= n steps in exact arithmetic; float drift allows a
  // small margin.
  EXPECT_LE(res.iterations, 35);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplace1d(10);
  const Vector b(10, 0);
  Vector x(10, 5); // nonzero initial guess must be wiped
  const PcgResult res = pcg_solve(a, b, x, nullptr);
  EXPECT_TRUE(res.converged);
  for (real_t v : x) EXPECT_DOUBLE_EQ(v, 0);
}

TEST(Pcg, WarmStartFromExactSolutionTakesZeroIterations) {
  const CsrMatrix a = laplace1d(20);
  Vector x_true(20);
  for (std::size_t i = 0; i < 20; ++i) x_true[i] = static_cast<real_t>(i);
  Vector b(20);
  a.spmv(x_true, b);
  Vector x = x_true;
  const PcgResult res = pcg_solve(a, b, x, nullptr);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Pcg, JacobiPreconditionerPreservesSolution) {
  const CsrMatrix a = banded_spd(40, 5, 0.5, 7);
  const Vector b(40, 1);
  JacobiPreconditioner p(a);
  Vector x1(40, 0), x2(40, 0);
  PcgOptions opts;
  opts.rtol = 1e-10;
  ASSERT_TRUE(pcg_solve(a, b, x1, nullptr, opts).converged);
  ASSERT_TRUE(pcg_solve(a, b, x2, &p, opts).converged);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-7);
}

TEST(Pcg, BlockJacobiReducesIterationsOnIllConditionedProblem) {
  const CsrMatrix a = diffusion3d_27pt(6, 6, 6, 1e3, 12);
  // A random right-hand side: the all-ones vector is an eigenvector of the
  // shifted graph Laplacian and would make plain CG converge in one step.
  Rng rhs_rng(99);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rhs_rng.uniform(-1, 1);
  BlockJacobiPreconditioner p(a, 10);
  Vector x1(b.size(), 0), x2(b.size(), 0);
  const PcgResult plain = pcg_solve(a, b, x1, nullptr);
  const PcgResult prec = pcg_solve(a, b, x2, &p);
  ASSERT_TRUE(plain.converged && prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(Pcg, MaxIterationsCapIsHonored) {
  const CsrMatrix a = poisson2d(30, 30);
  const Vector b(900, 1);
  Vector x(900, 0);
  PcgOptions opts;
  opts.max_iterations = 5;
  const PcgResult res = pcg_solve(a, b, x, nullptr, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 5);
  EXPECT_GT(res.final_relres, 0);
}

TEST(Pcg, TightToleranceReachesNearMachinePrecision) {
  const CsrMatrix a = laplace1d(60);
  const Vector b(60, 1);
  Vector x(60, 0);
  PcgOptions opts;
  opts.rtol = 1e-14; // the paper's inner-reconstruction tolerance
  const PcgResult res = pcg_solve(a, b, x, nullptr, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_relres, 1e-14);
}

TEST(Pcg, IterationCallbackSeesMonotoneIterationNumbers) {
  const CsrMatrix a = laplace1d(30);
  const Vector b(30, 1);
  Vector x(30, 0);
  index_t last = -1;
  bool monotone = true;
  pcg_solve(a, b, x, nullptr, {}, [&](index_t j, real_t relres) {
    monotone = monotone && (j == last + 1) && relres >= 0;
    last = j;
  });
  EXPECT_TRUE(monotone);
  EXPECT_GE(last, 0);
}

TEST(Pcg, FlopsAccountingIsPositiveAndGrowsWithIterations) {
  const CsrMatrix a = laplace1d(40);
  const Vector b(40, 1);
  Vector x1(40, 0), x2(40, 0);
  PcgOptions few, many;
  few.max_iterations = 2;
  many.max_iterations = 20;
  const PcgResult r1 = pcg_solve(a, b, x1, nullptr, few);
  const PcgResult r2 = pcg_solve(a, b, x2, nullptr, many);
  EXPECT_GT(r1.flops, 0);
  EXPECT_GT(r2.flops, r1.flops);
}

TEST(Pcg, NonSpdMatrixIsRejectedMidSolve) {
  // Symmetric indefinite: CG must detect p^T A p <= 0.
  CooBuilder bb(2, 2);
  bb.add(0, 0, 1);
  bb.add(1, 1, -1);
  const CsrMatrix a = bb.to_csr();
  const Vector b{0, 1};
  Vector x(2, 0);
  EXPECT_THROW(pcg_solve(a, b, x, nullptr), Error);
}

TEST(Pcg, SizeMismatchThrows) {
  const CsrMatrix a = laplace1d(4);
  const Vector b(3, 1);
  Vector x(4, 0);
  EXPECT_THROW(pcg_solve(a, b, x, nullptr), Error);
}

} // namespace
} // namespace esrp
