#include "precond/block_jacobi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(UniformBlocks, FewestBlocksUnderCap) {
  // 25 rows, cap 10 -> 3 blocks of sizes 9,8,8.
  const auto starts = uniform_blocks(0, 25, 10);
  EXPECT_EQ(starts, (std::vector<index_t>{0, 9, 17, 25}));
}

TEST(UniformBlocks, ExactMultiple) {
  const auto starts = uniform_blocks(5, 25, 10);
  EXPECT_EQ(starts, (std::vector<index_t>{5, 15, 25}));
}

TEST(UniformBlocks, EmptyRange) {
  EXPECT_EQ(uniform_blocks(3, 3, 10), (std::vector<index_t>{3}));
}

TEST(UniformBlocks, CapOneGivesSingletons) {
  EXPECT_EQ(uniform_blocks(0, 3, 1), (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(BlockJacobi, BlocksAlignWithNodeBoundaries) {
  const CsrMatrix a = poisson2d(8, 8); // 64 rows
  const BlockRowPartition part(64, 4); // 16 per node
  BlockJacobiPreconditioner p(a, part, 10);
  const auto& starts = p.block_starts();
  // Node boundaries 16, 32, 48 must appear among the block boundaries.
  for (index_t boundary : {16, 32, 48}) {
    EXPECT_TRUE(std::find(starts.begin(), starts.end(), boundary) !=
                starts.end());
  }
  // No block exceeds the cap.
  for (std::size_t k = 0; k + 1 < starts.size(); ++k)
    EXPECT_LE(starts[k + 1] - starts[k], 10);
}

TEST(BlockJacobi, ActionIsExactInverseOnEachBlock) {
  const CsrMatrix a = banded_spd(24, 2, 1.0, 5);
  BlockJacobiPreconditioner p(a, /*max_block_size=*/6);
  const CsrMatrix* act = p.action_matrix();
  ASSERT_NE(act, nullptr);
  // For each block B: act_block * B = I.
  const auto& starts = p.block_starts();
  const DenseMatrix ad = DenseMatrix::from_csr(a);
  const DenseMatrix pd = DenseMatrix::from_csr(*act);
  for (std::size_t k = 0; k + 1 < starts.size(); ++k) {
    const index_t lo = starts[k], hi = starts[k + 1];
    const index_t len = hi - lo;
    DenseMatrix b(len, len), inv(len, len);
    for (index_t i = 0; i < len; ++i)
      for (index_t j = 0; j < len; ++j) {
        b(i, j) = ad(lo + i, lo + j);
        inv(i, j) = pd(lo + i, lo + j);
      }
    const DenseMatrix prod = inv.multiply(b);
    EXPECT_LT(prod.max_abs_diff(DenseMatrix::identity(len)), 1e-10);
  }
}

TEST(BlockJacobi, ActionMatrixIsSymmetric) {
  const CsrMatrix a = poisson3d(3, 3, 3);
  BlockJacobiPreconditioner p(a, 10);
  EXPECT_TRUE(p.action_matrix()->is_symmetric(1e-10));
}

TEST(BlockJacobi, BlockSizeOneEqualsPointJacobi) {
  const CsrMatrix a = banded_spd(15, 3, 0.6, 8);
  BlockJacobiPreconditioner p(a, 1);
  const Vector d = a.diagonal();
  Vector r(15, 1), z(15);
  p.apply(r, z);
  for (std::size_t i = 0; i < 15; ++i)
    EXPECT_NEAR(z[i], 1.0 / d[i], 1e-14);
}

TEST(BlockJacobi, ApplySolvesBlockSystems) {
  // For block-diagonal A (bandwidth smaller than block size), the block
  // Jacobi action is the full inverse: A * (P r) = r.
  const CsrMatrix a = banded_spd(20, 1, 1.0, 3);
  BlockJacobiPreconditioner p(a, 20); // one block = full matrix
  Rng rng(4);
  Vector r(20), z(20), az(20);
  for (auto& v : r) v = rng.uniform(-1, 1);
  p.apply(r, z);
  a.spmv(z, az);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(az[i], r[i], 1e-10);
}

TEST(BlockJacobi, NodeLocalRowsNeverCrossNodeBoundary) {
  const CsrMatrix a = diffusion3d_27pt(4, 4, 4, 10, 6);
  const BlockRowPartition part(64, 5);
  BlockJacobiPreconditioner p(a, part, 10);
  const CsrMatrix* act = p.action_matrix();
  for (rank_t s = 0; s < 5; ++s) {
    for (index_t i = part.begin(s); i < part.end(s); ++i) {
      for (index_t j : act->row_cols(i)) {
        EXPECT_GE(j, part.begin(s));
        EXPECT_LT(j, part.end(s));
      }
    }
  }
}

TEST(BlockJacobi, PaperDefaultBlockSizeIsTen) {
  const CsrMatrix a = poisson2d(10, 10);
  const BlockRowPartition part(100, 4);
  BlockJacobiPreconditioner p(a, part);
  const auto& starts = p.block_starts();
  for (std::size_t k = 0; k + 1 < starts.size(); ++k)
    EXPECT_LE(starts[k + 1] - starts[k], 10);
}

} // namespace
} // namespace esrp
