#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "precond/ic0.hpp"
#include "precond/ssor.hpp"
#include "solver/pcg.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(Ssor, RejectsInvalidOmega) {
  const CsrMatrix a = laplace1d(4);
  EXPECT_THROW(SsorPreconditioner(a, 0.0), Error);
  EXPECT_THROW(SsorPreconditioner(a, 2.0), Error);
  EXPECT_NO_THROW(SsorPreconditioner(a, 1.5));
}

TEST(Ssor, ApplyIsSymmetricOperator) {
  // A symmetric preconditioner action satisfies <P u, v> = <u, P v>,
  // required for PCG.
  const CsrMatrix a = banded_spd(15, 3, 0.7, 10);
  SsorPreconditioner p(a, 1.2);
  Rng rng(1);
  Vector u(15), v(15), pu(15), pv(15);
  for (auto& x : u) x = rng.uniform(-1, 1);
  for (auto& x : v) x = rng.uniform(-1, 1);
  p.apply(u, pu);
  p.apply(v, pv);
  EXPECT_NEAR(vec_dot(pu, v), vec_dot(u, pv), 1e-10);
}

TEST(Ssor, NoActionMatrix) {
  const CsrMatrix a = laplace1d(4);
  SsorPreconditioner p(a);
  EXPECT_EQ(p.action_matrix(), nullptr);
}

TEST(Ssor, AcceleratesPcgOnLaplacian) {
  const CsrMatrix a = laplace1d(200);
  const Vector b(200, 1);
  SsorPreconditioner p(a, 1.5);
  Vector x1(200, 0), x2(200, 0);
  const PcgResult plain = pcg_solve(a, b, x1, nullptr);
  const PcgResult ssor = pcg_solve(a, b, x2, &p);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(ssor.converged);
  EXPECT_LT(ssor.iterations, plain.iterations);
}

TEST(Ic0, FactorOfTridiagonalIsExact) {
  // IC(0) on a tridiagonal SPD matrix has no dropped fill: L L^T = A.
  const CsrMatrix a = laplace1d(12);
  Ic0Preconditioner p(a);
  const DenseMatrix l = DenseMatrix::from_csr(p.factor());
  const DenseMatrix llt = l.multiply(l.transpose());
  EXPECT_LT(llt.max_abs_diff(DenseMatrix::from_csr(a)), 1e-12);
}

TEST(Ic0, ApplyInvertsExactFactorization) {
  const CsrMatrix a = laplace1d(16);
  Ic0Preconditioner p(a);
  Rng rng(3);
  Vector r(16), z(16), az(16);
  for (auto& v : r) v = rng.uniform(-1, 1);
  p.apply(r, z);
  a.spmv(z, az); // exact factorization: A z = r
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(az[i], r[i], 1e-10);
}

TEST(Ic0, SymmetricOperator) {
  const CsrMatrix a = banded_spd(20, 4, 0.5, 2);
  Ic0Preconditioner p(a);
  Rng rng(5);
  Vector u(20), v(20), pu(20), pv(20);
  for (auto& x : u) x = rng.uniform(-1, 1);
  for (auto& x : v) x = rng.uniform(-1, 1);
  p.apply(u, pu);
  p.apply(v, pv);
  EXPECT_NEAR(vec_dot(pu, v), vec_dot(u, pv), 1e-10);
}

TEST(Ic0, StrongestOfTheSimplePreconditioners) {
  // On the Poisson problem IC(0) should beat plain CG noticeably — the
  // "more appropriate preconditioner" direction of the paper's conclusions.
  const CsrMatrix a = poisson2d(20, 20);
  const Vector b(400, 1);
  Ic0Preconditioner p(a);
  Vector x1(400, 0), x2(400, 0);
  const PcgResult plain = pcg_solve(a, b, x1, nullptr);
  const PcgResult ic = pcg_solve(a, b, x2, &p);
  ASSERT_TRUE(plain.converged && ic.converged);
  EXPECT_LT(ic.iterations, plain.iterations * 0.7);
}

TEST(Ic0, DiagonalShiftRescuesBreakdown) {
  // Construct a symmetric matrix that is SPD but IC(0)-fragile; with a large
  // shift the factorization must succeed.
  const CsrMatrix a = banded_spd(30, 6, 0.9, 17);
  EXPECT_NO_THROW(Ic0Preconditioner(a, 0.5));
}

} // namespace
} // namespace esrp
