#include "precond/jacobi.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(Identity, ApplyIsCopy) {
  IdentityPreconditioner p(3);
  Vector z(3);
  p.apply(Vector{1, 2, 3}, z);
  EXPECT_EQ(z, (Vector{1, 2, 3}));
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p.name(), "identity");
}

TEST(Identity, ActionMatrixIsIdentity) {
  IdentityPreconditioner p(4);
  ASSERT_NE(p.action_matrix(), nullptr);
  EXPECT_EQ(p.action_matrix()->nnz(), 4);
  EXPECT_DOUBLE_EQ(p.action_matrix()->at(2, 2), 1);
}

TEST(Jacobi, ApplyDividesByDiagonal) {
  const CsrMatrix a = laplace1d(4); // diagonal all 2
  JacobiPreconditioner p(a);
  Vector z(4);
  p.apply(Vector{2, 4, 6, 8}, z);
  EXPECT_EQ(z, (Vector{1, 2, 3, 4}));
}

TEST(Jacobi, ActionMatrixMatchesApply) {
  const CsrMatrix a = banded_spd(20, 3, 0.5, 21);
  JacobiPreconditioner p(a);
  const Vector r(20, 1);
  Vector z1(20), z2(20);
  p.apply(r, z1);
  ASSERT_NE(p.action_matrix(), nullptr);
  p.action_matrix()->spmv(r, z2);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
}

TEST(Jacobi, RejectsNonPositiveDiagonal) {
  CsrMatrix a(2, 2, {0, 1, 2}, {0, 1}, {1.0, -3.0});
  EXPECT_THROW(JacobiPreconditioner{a}, Error);
}

TEST(Jacobi, RejectsMissingDiagonal) {
  // Row 1 has no stored diagonal -> treated as 0 -> rejected.
  CsrMatrix a(2, 2, {0, 1, 2}, {0, 0}, {1.0, 5.0});
  EXPECT_THROW(JacobiPreconditioner{a}, Error);
}

TEST(Jacobi, ApplyFlopsIsLinear) {
  const CsrMatrix a = laplace1d(100);
  JacobiPreconditioner p(a);
  EXPECT_DOUBLE_EQ(p.apply_flops(), 100);
}

} // namespace
} // namespace esrp
