// CSR <-> SELL-C-σ parity: the mirror's spmv / spmv_dot must be bitwise
// equal to the CSR kernels across sorting windows, ragged and empty rows,
// non-multiple-of-C row counts, and thread counts — that equality is what
// lets CsrMatrix route through an attached mirror without re-versioning any
// golden trajectory (sparse/sell.hpp).
#include "sparse/sell.hpp"

#include <gtest/gtest.h>

#include "../parallel/thread_count_guard.hpp"

#include <bit>
#include <cstdint>
#include <vector>

#include "api/registry.hpp"
#include "common/rng.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (real_t& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_bits_eq(std::span<const real_t> a, std::span<const real_t> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
}

/// Deterministic ragged matrix: row i holds `i*i % 9` consecutive columns
/// (so lengths 0..8 cycle irregularly — empty rows included) starting at a
/// row-dependent offset, with LCG values.
CsrMatrix ragged_matrix(index_t rows, index_t cols) {
  Rng rng(1234);
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  for (index_t i = 0; i < rows; ++i) {
    const index_t len = std::min<index_t>((i * i) % 9, cols);
    const index_t start = (i * 7) % std::max<index_t>(1, cols - len + 1);
    for (index_t t = 0; t < len; ++t) {
      col_idx.push_back(start + t);
      values.push_back(rng.uniform(-2.0, 2.0));
    }
    row_ptr.push_back(static_cast<index_t>(col_idx.size()));
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

void expect_spmv_parity(const CsrMatrix& a, index_t sigma) {
  ThreadCountGuard guard;
  const SellMatrix sell(a, sigma);
  EXPECT_EQ(sell.rows(), a.rows());
  EXPECT_EQ(sell.cols(), a.cols());
  EXPECT_EQ(sell.nnz(), a.nnz());
  EXPECT_GE(sell.padded_entries(), a.nnz());
  const Vector x = random_vector(static_cast<std::size_t>(a.cols()), 99);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    Vector y_csr(static_cast<std::size_t>(a.rows()), 0);
    Vector y_sell(static_cast<std::size_t>(a.rows()), 0);
    a.spmv(x, y_csr); // no mirror attached: the plain CSR kernel
    sell.spmv(x, y_sell);
    expect_bits_eq(y_sell, y_csr);
    if (a.rows() == a.cols()) {
      Vector yd_csr(static_cast<std::size_t>(a.rows()), 0);
      Vector yd_sell(static_cast<std::size_t>(a.rows()), 0);
      const real_t d_csr = a.spmv_dot(x, yd_csr);
      const real_t d_sell = sell.spmv_dot(x, yd_sell);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(d_csr),
                std::bit_cast<std::uint64_t>(d_sell))
          << "sigma=" << sigma << " threads=" << threads;
      expect_bits_eq(yd_sell, yd_csr);
    }
  }
}

TEST(SellMatrix, BitwiseSpmvParityAcrossSigmaWindows) {
  const CsrMatrix a = ragged_matrix(1021, 1021); // not a multiple of C
  for (const index_t sigma : {index_t{1}, index_t{3}, index_t{4}, index_t{64},
                              index_t{100000}}) {
    SCOPED_TRACE(sigma);
    expect_spmv_parity(a, sigma);
  }
}

TEST(SellMatrix, BitwiseParityOnStencilMatrix) {
  expect_spmv_parity(poisson2d(48, 48), kDefaultSellSigma);
}

TEST(SellMatrix, BitwiseParityOnRectangularMatrix) {
  expect_spmv_parity(ragged_matrix(257, 64), 16);
}

TEST(SellMatrix, StencilMatrixUsesPackedColumnRuns) {
  // On a stencil operator most chunks hold four consecutive rows whose t-th
  // columns are four consecutive indices, so they store one base column per
  // position. The compression is the whole point of the format here: the
  // SpMV is bandwidth-bound, and the column stream shrinks ~4x.
  const CsrMatrix a = poisson2d(64, 64);
  const SellMatrix sell(a, kDefaultSellSigma);
  EXPECT_GT(sell.packed_chunks(), sell.chunk_count() / 2);
  EXPECT_LT(sell.col_stream_entries(), sell.padded_entries() / 2);
  // Ragged rows break both run conditions; everything stays generic with
  // the full 4-wide column tuples.
  const CsrMatrix r = ragged_matrix(256, 256);
  const SellMatrix rsell(r, 16);
  EXPECT_EQ(rsell.col_stream_entries(), rsell.padded_entries());
}

TEST(SellMatrix, SigmaWindowsNeverCrossReduceGrainBoundaries) {
  // > kReduceGrain rows with a window size that would straddle the grain
  // boundary if not clipped: spmv_dot's per-chunk scatter/dot stays
  // self-contained only because of the clipping, so bitwise parity on this
  // matrix is the regression test for it.
  const CsrMatrix a = poisson2d(150, 150); // 22500 rows > 16384
  expect_spmv_parity(a, index_t{10000});
  const SellMatrix sell(a, 10000);
  // The permutation never maps a row across its kReduceGrain block.
  const auto perm = sell.perm();
  for (index_t s = 0; s < a.rows(); ++s)
    ASSERT_EQ(s / kReduceGrain, perm[static_cast<std::size_t>(s)] / kReduceGrain)
        << "slot " << s;
}

TEST(SellMatrix, PermutationSortsByDescendingLengthWithinWindows) {
  const CsrMatrix a = ragged_matrix(300, 300);
  const index_t sigma = 32;
  const SellMatrix sell(a, sigma);
  const auto perm = sell.perm();
  std::vector<bool> seen(static_cast<std::size_t>(a.rows()), false);
  const auto len = [&](index_t r) {
    return a.row_ptr()[static_cast<std::size_t>(r) + 1] -
           a.row_ptr()[static_cast<std::size_t>(r)];
  };
  for (index_t s = 0; s < a.rows(); ++s) {
    const index_t row = perm[static_cast<std::size_t>(s)];
    ASSERT_FALSE(seen[static_cast<std::size_t>(row)]);
    seen[static_cast<std::size_t>(row)] = true;
    // Window-local: a slot's row comes from its own sigma window.
    EXPECT_EQ(s / sigma, row / sigma);
    // Descending lengths within the window.
    if (s % sigma != 0)
      EXPECT_GE(len(perm[static_cast<std::size_t>(s) - 1]), len(row));
  }
}

TEST(SellMatrix, FormatSellSpecAttachesMirrorAndKeepsSolveBitsIdentical) {
  ThreadCountGuard guard;
  set_num_threads(2);
  TestProblem csr_prob = resolve_matrix("poisson2d:48,48");
  TestProblem sell_prob = resolve_matrix("poisson2d:48,48;format=sell;sigma=128");
  ASSERT_EQ(csr_prob.matrix.sell(), nullptr);
  ASSERT_NE(sell_prob.matrix.sell(), nullptr);
  EXPECT_EQ(sell_prob.matrix.sell()->sigma(), 128);

  // Routed kernels: the attached matrix must produce bitwise identical
  // spmv / spmv_dot results.
  const auto n = static_cast<std::size_t>(csr_prob.matrix.rows());
  const Vector x = random_vector(n, 7);
  Vector y_csr(n, 0), y_sell(n, 0);
  const real_t d_csr = csr_prob.matrix.spmv_dot(x, y_csr);
  const real_t d_sell = sell_prob.matrix.spmv_dot(x, y_sell);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d_csr),
            std::bit_cast<std::uint64_t>(d_sell));
  expect_bits_eq(y_sell, y_csr);
}

TEST(SellMatrix, ValuesMutDetachesTheMirror) {
  TestProblem prob = resolve_matrix("poisson2d:12,12;format=sell");
  ASSERT_NE(prob.matrix.sell(), nullptr);
  prob.matrix.values_mut()[0] += 1.0;
  // The mirror copied the old values; serving it now would be stale.
  EXPECT_EQ(prob.matrix.sell(), nullptr);
}

TEST(SellMatrix, SpecOptionErrorsAreActionable) {
  EXPECT_THROW(resolve_matrix("poisson2d:8,8;format=hyb"), Error);
  EXPECT_THROW(resolve_matrix("poisson2d:8,8;sigma=64"), Error); // needs sell
  EXPECT_THROW(resolve_matrix("poisson2d:8,8;format=sell;sigma=0"), Error);
  EXPECT_THROW(check_matrix_key("poisson2d:8,8;format=hyb"), Error);
  EXPECT_NO_THROW(check_matrix_key("poisson2d:8,8;format=sell;sigma=64"));
  EXPECT_NO_THROW(resolve_matrix("poisson2d:8,8;format=csr"));
}

} // namespace
} // namespace esrp
