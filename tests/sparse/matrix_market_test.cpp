#include "sparse/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(MatrixMarket, ParsesGeneralCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "2 3 3\n"
      "1 1 1.5\n"
      "2 3 -2\n"
      "1 2 4\n");
  const CsrMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -2);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4);
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2\n"
      "2 1 -1\n"
      "3 3 5\n");
  const CsrMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 4); // off-diagonal mirrored, diagonals not duplicated
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsUnsupportedFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RoundTripPreservesMatrix) {
  const CsrMatrix a = banded_spd(25, 4, 0.5, /*seed=*/77);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  const CsrMatrix b = read_matrix_market(in);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j : a.row_cols(i)) EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
}

TEST(MatrixMarket, FileRoundTrip) {
  const CsrMatrix a = laplace1d(6);
  const std::string path = testing::TempDir() + "/esrp_mm_test.mtx";
  write_matrix_market_file(path, a);
  const CsrMatrix b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_DOUBLE_EQ(b.at(3, 2), -1);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), Error);
}

} // namespace
} // namespace esrp
