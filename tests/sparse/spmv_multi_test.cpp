// spmv_multi / spmv_multi_dot: one streaming pass over the matrix for k
// input vectors, with each output bitwise identical to the single-vector
// kernel on the same input — the contract that makes batched PCG per-RHS
// bitwise equal to independent solves. Checked at 1 and 4 threads, below
// and above the fixed reduction grain.
#include <gtest/gtest.h>

#include <cstring>

#include "../parallel/thread_count_guard.hpp"
#include "parallel/parallel.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr int kThreadCounts[] = {1, 4};

std::vector<Vector> make_inputs(const CsrMatrix& a, std::size_t k) {
  std::vector<Vector> xs;
  const Vector base = xp::make_rhs(a);
  for (std::size_t j = 0; j < k; ++j) {
    Vector x = base;
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = x[i] * static_cast<real_t>(j + 1) -
             static_cast<real_t>(i % (j + 3));
    xs.push_back(std::move(x));
  }
  return xs;
}

void check_matrix(const CsrMatrix& a, std::size_t k) {
  ThreadCountGuard guard;
  const std::vector<Vector> xs = make_inputs(a, k);
  const std::size_t n = static_cast<std::size_t>(a.rows());

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    std::vector<Vector> ys_multi(k, Vector(n, -1));
    std::vector<std::span<const real_t>> in(k);
    std::vector<std::span<real_t>> out(k);
    for (std::size_t j = 0; j < k; ++j) {
      in[j] = xs[j];
      out[j] = ys_multi[j];
    }
    a.spmv_multi(in, out);

    for (std::size_t j = 0; j < k; ++j) {
      SCOPED_TRACE(j);
      Vector y_single(n, -2);
      a.spmv(xs[j], y_single);
      EXPECT_EQ(0, std::memcmp(y_single.data(), ys_multi[j].data(),
                               n * sizeof(real_t)));
    }

    std::vector<Vector> ys_dot(k, Vector(n, -3));
    std::vector<real_t> dots(k, -4);
    for (std::size_t j = 0; j < k; ++j) out[j] = ys_dot[j];
    a.spmv_multi_dot(in, out, dots);

    for (std::size_t j = 0; j < k; ++j) {
      SCOPED_TRACE(j);
      Vector y_single(n, -5);
      const real_t dot_single = a.spmv_dot(xs[j], y_single);
      EXPECT_EQ(0, std::memcmp(y_single.data(), ys_dot[j].data(),
                               n * sizeof(real_t)));
      EXPECT_EQ(dot_single, dots[j]); // bitwise, not approximately
    }
  }
}

TEST(SpmvMultiTest, SmallMatrixBelowReductionGrain) {
  check_matrix(poisson2d(24, 24), 4);
}

TEST(SpmvMultiTest, LargeMatrixAboveReductionGrain) {
  check_matrix(poisson2d(150, 150), 3); // 22500 rows > 2^14 grain
}

TEST(SpmvMultiTest, BatchOfOne) { check_matrix(laplace1d(100), 1); }

TEST(SpmvMultiTest, UnsymmetricPatternStressesRowStreaming) {
  check_matrix(poisson3d(8, 8, 8), 5);
}

} // namespace
} // namespace esrp
