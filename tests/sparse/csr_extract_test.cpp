// Submatrix extraction is the backbone of the Alg. 2 reconstruction
// (A_{I_f,I_f}, A_{I_f,I\I_f}); verify it against dense indexing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "partition/index_set.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(Extract, PrincipalSubmatrixOfLaplacian) {
  const CsrMatrix a = laplace1d(5);
  const IndexSet rows{1, 2, 3};
  const CsrMatrix sub = a.extract(rows, rows);
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.cols(), 3);
  // tridiag(-1, 2, -1) restricted to interior indices is again tridiagonal.
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 2);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), -1);
  EXPECT_DOUBLE_EQ(sub.at(1, 2), -1);
  EXPECT_DOUBLE_EQ(sub.at(0, 2), 0);
}

TEST(Extract, NonContiguousSelection) {
  const CsrMatrix a = laplace1d(6);
  const IndexSet rows{0, 3, 5};
  const CsrMatrix sub = a.extract(rows, rows);
  // No pair of {0, 3, 5} is adjacent, so only diagonals survive.
  EXPECT_EQ(sub.nnz(), 3);
  for (index_t k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(sub.at(k, k), 2);
}

TEST(Extract, RectangularSelection) {
  const CsrMatrix a = laplace1d(4);
  const IndexSet rows{1};
  const IndexSet cols{0, 2};
  const CsrMatrix sub = a.extract(rows, cols);
  EXPECT_EQ(sub.rows(), 1);
  EXPECT_EQ(sub.cols(), 2);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), -1); // A(1,0)
  EXPECT_DOUBLE_EQ(sub.at(0, 1), -1); // A(1,2)
}

TEST(Extract, NonIncreasingIndexSetThrows) {
  const CsrMatrix a = laplace1d(4);
  const IndexSet bad{2, 1};
  const IndexSet ok{0};
  EXPECT_THROW(a.extract(bad, ok), Error);
  EXPECT_THROW(a.extract(ok, bad), Error);
}

TEST(ExtractExcludingCols, ComplementSelection) {
  const CsrMatrix a = laplace1d(5);
  const IndexSet lost{1, 2}; // extract rows {1,2}, columns NOT in {1,2}
  const CsrMatrix sub = a.extract_excluding_cols(lost, lost);
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.cols(), 3); // remaining columns {0, 3, 4} -> local 0,1,2
  EXPECT_DOUBLE_EQ(sub.at(0, 0), -1); // A(1,0)
  EXPECT_DOUBLE_EQ(sub.at(1, 1), -1); // A(2,3) -> local col 1
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 0);
}

TEST(ExtractExcludingCols, AgreesWithDenseReference) {
  const CsrMatrix a = banded_spd(40, 6, 0.6, /*seed=*/3);
  const IndexSet lost{5, 6, 7, 20, 33};
  const CsrMatrix fc = a.extract_excluding_cols(lost, lost);
  const DenseMatrix dense = DenseMatrix::from_csr(a);
  // Build the reference by dense double-loop over kept columns.
  IndexSet kept;
  for (index_t j = 0; j < 40; ++j)
    if (!std::binary_search(lost.begin(), lost.end(), j)) kept.push_back(j);
  ASSERT_EQ(fc.cols(), static_cast<index_t>(kept.size()));
  for (std::size_t r = 0; r < lost.size(); ++r)
    for (std::size_t c = 0; c < kept.size(); ++c)
      EXPECT_DOUBLE_EQ(fc.at(static_cast<index_t>(r), static_cast<index_t>(c)),
                       dense(lost[r], kept[c]));
}

TEST(Extract, SplitMatvecReassemblesFullProduct) {
  // A x = [A_{f,f} A_{f,c}] [x_f; x_c] restricted to rows f: the identity
  // the reconstruction relies on (Alg. 2 line 7).
  const CsrMatrix a = banded_spd(30, 4, 0.7, /*seed=*/9);
  const IndexSet lost{3, 4, 11, 12, 13, 28};
  const CsrMatrix ff = a.extract(lost, lost);
  const CsrMatrix fc = a.extract_excluding_cols(lost, lost);

  Rng rng(17);
  Vector x(30);
  for (auto& v : x) v = rng.uniform(-1, 1);

  Vector x_f, x_c;
  for (index_t j = 0; j < 30; ++j) {
    if (std::binary_search(lost.begin(), lost.end(), j))
      x_f.push_back(x[static_cast<std::size_t>(j)]);
    else
      x_c.push_back(x[static_cast<std::size_t>(j)]);
  }

  Vector full(30);
  a.spmv(x, full);
  Vector part1(lost.size()), part2(lost.size());
  ff.spmv(x_f, part1);
  fc.spmv(x_c, part2);
  for (std::size_t k = 0; k < lost.size(); ++k)
    EXPECT_NEAR(part1[k] + part2[k], full[static_cast<std::size_t>(lost[k])],
                1e-12);
}

TEST(Extract, EmptyRowSetGivesEmptyMatrix) {
  const CsrMatrix a = laplace1d(4);
  const IndexSet none;
  const IndexSet all{0, 1, 2, 3};
  const CsrMatrix sub = a.extract(none, all);
  EXPECT_EQ(sub.rows(), 0);
  EXPECT_EQ(sub.nnz(), 0);
}

} // namespace
} // namespace esrp
