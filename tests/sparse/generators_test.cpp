#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/dense.hpp"

namespace esrp {
namespace {

/// SPD check via dense Cholesky (only for small instances).
bool is_spd(const CsrMatrix& a) {
  if (!a.is_symmetric(1e-10)) return false;
  try {
    Cholesky chol(DenseMatrix::from_csr(a));
    return true;
  } catch (...) {
    return false;
  }
}

TEST(Laplace1d, StructureAndValues) {
  const CsrMatrix a = laplace1d(5);
  EXPECT_EQ(a.rows(), 5);
  EXPECT_EQ(a.nnz(), 5 + 2 * 4);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2);
  EXPECT_DOUBLE_EQ(a.at(2, 3), -1);
  EXPECT_TRUE(is_spd(a));
}

TEST(Poisson2d, StencilCounts) {
  const CsrMatrix a = poisson2d(4, 3);
  EXPECT_EQ(a.rows(), 12);
  // nnz = 5*interior + boundary adjustments; verify via row sums instead:
  // row sums are >= 0 and 0 only for interior rows (all neighbors present).
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4);
  EXPECT_TRUE(is_spd(a));
}

TEST(Poisson2d, InteriorRowHasFiveEntries) {
  const CsrMatrix a = poisson2d(5, 5);
  const index_t center = 2 * 5 + 2;
  EXPECT_EQ(a.row_cols(center).size(), 5u);
}

TEST(Poisson3d, CenterRowHasSevenEntries) {
  const CsrMatrix a = poisson3d(3, 3, 3);
  const index_t center = (1 * 3 + 1) * 3 + 1;
  EXPECT_EQ(a.row_cols(center).size(), 7u);
  EXPECT_TRUE(is_spd(a));
}

TEST(BandedSpd, RespectsBandwidthAndIsSpd) {
  const CsrMatrix a = banded_spd(30, 3, 0.8, /*seed=*/5);
  EXPECT_LE(a.half_bandwidth(), 3);
  EXPECT_TRUE(is_spd(a));
}

TEST(BandedSpd, DeterministicInSeed) {
  const CsrMatrix a = banded_spd(20, 4, 0.5, 11);
  const CsrMatrix b = banded_spd(20, 4, 0.5, 11);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j : a.row_cols(i)) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
}

TEST(BandedSpd, DifferentSeedsDiffer) {
  const CsrMatrix a = banded_spd(20, 4, 0.5, 11);
  const CsrMatrix b = banded_spd(20, 4, 0.5, 12);
  bool any_diff = a.nnz() != b.nnz();
  if (!any_diff) {
    for (index_t i = 0; i < a.rows() && !any_diff; ++i)
      for (index_t j : a.row_cols(i))
        if (a.at(i, j) != b.at(i, j)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Diffusion27pt, SymmetricPositiveDefinite) {
  const CsrMatrix a = diffusion3d_27pt(4, 4, 4, 100, /*seed=*/1);
  EXPECT_EQ(a.rows(), 64);
  EXPECT_TRUE(is_spd(a));
}

TEST(Diffusion27pt, InteriorRowHas27Entries) {
  const CsrMatrix a = diffusion3d_27pt(5, 5, 5, 10, /*seed=*/2);
  const index_t center = (2 * 5 + 2) * 5 + 2;
  EXPECT_EQ(a.row_cols(center).size(), 27u);
}

TEST(Elasticity3d, SymmetricPositiveDefinite) {
  const CsrMatrix a = elasticity3d(3, 3, 3, 50, /*seed=*/4);
  EXPECT_EQ(a.rows(), 81); // 27 points x 3 dof
  EXPECT_TRUE(is_spd(a));
}

TEST(Elasticity3d, DenserRowsThanScalarDiffusion) {
  const CsrMatrix e = elasticity3d(4, 4, 4, 10, 1);
  const CsrMatrix d = diffusion3d_27pt(4, 4, 4, 10, 1);
  const double e_row = static_cast<double>(e.nnz()) / static_cast<double>(e.rows());
  const double d_row = static_cast<double>(d.nnz()) / static_cast<double>(d.rows());
  // audikw_like must mirror audikw_1's higher per-row density (82 vs 44).
  EXPECT_GT(e_row, d_row * 0.6);
  EXPECT_GT(e.half_bandwidth(), 0);
}

TEST(Diffusion27pt, AnisotropyScalesDirectionalCouplings) {
  // With strong z-damping the z-neighbor couplings must be ~1000x weaker
  // than the x-neighbor couplings, on average.
  const index_t n = 6;
  const CsrMatrix a = diffusion3d_27pt(n, n, n, 1, /*seed=*/3, 1e-2,
                                       /*ay=*/1.0, /*az=*/1e-3);
  auto id = [n](index_t ix, index_t iy, index_t iz) {
    return (iz * n + iy) * n + ix;
  };
  double x_sum = 0, z_sum = 0;
  int count = 0;
  for (index_t iz = 1; iz + 1 < n; ++iz)
    for (index_t iy = 1; iy + 1 < n; ++iy)
      for (index_t ix = 1; ix + 1 < n; ++ix) {
        x_sum += std::abs(a.at(id(ix, iy, iz), id(ix + 1, iy, iz)));
        z_sum += std::abs(a.at(id(ix, iy, iz), id(ix, iy, iz + 1)));
        ++count;
      }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(z_sum / x_sum, 1e-3, 2e-4); // contrast=1 -> weights exactly az
}

TEST(Diffusion27pt, AnisotropicMatrixStaysSpd) {
  const CsrMatrix a = diffusion3d_27pt(4, 4, 4, 100, 9, 1e-4, 0.05, 0.001);
  EXPECT_TRUE(is_spd(a));
}

TEST(Elasticity3d, AnisotropicMatrixStaysSpd) {
  const CsrMatrix a = elasticity3d(3, 3, 3, 100, 9, 1e-3, 1.0, 0.1);
  EXPECT_TRUE(is_spd(a));
}

TEST(Generators, ShiftMustBePositive) {
  EXPECT_THROW(diffusion3d_27pt(2, 2, 2, 1, 1, 0.0), Error);
  EXPECT_THROW(elasticity3d(2, 2, 2, 1, 1, -1.0), Error);
  EXPECT_THROW(diffusion3d_27pt(2, 2, 2, 1, 1, 1e-2, 0.0, 1.0), Error);
}

TEST(TestProblems, NamedProblemsCarryMetadata) {
  const TestProblem p = emilia_like(4, 4, 4);
  EXPECT_NE(p.name.find("emilia_like"), std::string::npos);
  EXPECT_EQ(p.matrix.rows(), 64);
  const TestProblem q = audikw_like(3, 3, 3);
  EXPECT_NE(q.name.find("audikw_like"), std::string::npos);
  EXPECT_EQ(q.matrix.rows(), 81);
}

TEST(TestProblems, GeneratorsRejectInvalidSizes) {
  EXPECT_THROW(poisson2d(0, 3), Error);
  EXPECT_THROW(poisson3d(2, -1, 2), Error);
  EXPECT_THROW(diffusion3d_27pt(2, 2, 2, 0.5, 1), Error); // contrast < 1
}

} // namespace
} // namespace esrp
