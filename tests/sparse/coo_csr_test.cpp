#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace esrp {
namespace {

CsrMatrix small_example() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  CooBuilder b(3, 3);
  b.add(0, 0, 2);
  b.add(0, 1, -1);
  b.add(1, 0, -1);
  b.add(1, 1, 2);
  b.add(1, 2, -1);
  b.add(2, 1, -1);
  b.add(2, 2, 2);
  return b.to_csr();
}

TEST(CooBuilder, BuildsExpectedCsr) {
  const CsrMatrix a = small_example();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0);
}

TEST(CooBuilder, DuplicatesAreSummed) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1);
  b.add(0, 0, 2.5);
  const CsrMatrix a = b.to_csr();
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
}

TEST(CooBuilder, CancellingDuplicatesAreDropped) {
  CooBuilder b(2, 2);
  b.add(1, 1, 4);
  b.add(1, 1, -4);
  b.add(0, 1, 1);
  const CsrMatrix a = b.to_csr();
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0);
}

TEST(CooBuilder, AddSymAddsMirrorEntry) {
  CooBuilder b(3, 3);
  b.add_sym(0, 2, 5);
  b.add_sym(1, 1, 7); // diagonal: added once
  const CsrMatrix a = b.to_csr();
  EXPECT_DOUBLE_EQ(a.at(0, 2), 5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 7);
  EXPECT_EQ(a.nnz(), 3);
}

TEST(CooBuilder, OutOfRangeTripletThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1), Error);
  EXPECT_THROW(b.add(0, -1, 1), Error);
}

TEST(CooBuilder, EmptyMatrixProducesValidCsr) {
  CooBuilder b(4, 4);
  const CsrMatrix a = b.to_csr();
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.rows(), 4);
}

TEST(Csr, RowAccessorsAreSortedAndConsistent) {
  const CsrMatrix a = small_example();
  const auto cols = a.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
  const auto vals = a.row_vals(1);
  EXPECT_DOUBLE_EQ(vals[0], -1);
  EXPECT_DOUBLE_EQ(vals[1], 2);
  EXPECT_DOUBLE_EQ(vals[2], -1);
}

TEST(Csr, SpmvMatchesHandComputation) {
  const CsrMatrix a = small_example();
  const Vector x{1, 2, 3};
  Vector y(3);
  a.spmv(x, y);
  EXPECT_EQ(y, (Vector{0, 0, 4}));
}

TEST(Csr, SpmvRowsComputesPartialProduct) {
  const CsrMatrix a = small_example();
  const Vector x{1, 2, 3};
  Vector y(2);
  a.spmv_rows(1, 3, x, y);
  EXPECT_EQ(y, (Vector{0, 4}));
}

TEST(Csr, TransposeOfSymmetricEqualsOriginal) {
  const CsrMatrix a = small_example();
  const CsrMatrix at = a.transpose();
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(at.at(i, j), a.at(i, j));
}

TEST(Csr, TransposeOfRectangular) {
  CooBuilder b(2, 3);
  b.add(0, 2, 1);
  b.add(1, 0, 5);
  const CsrMatrix at = b.to_csr().transpose();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_DOUBLE_EQ(at.at(2, 0), 1);
  EXPECT_DOUBLE_EQ(at.at(0, 1), 5);
}

TEST(Csr, DiagonalExtractsStoredAndMissingEntries) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4);
  b.add(2, 2, 9);
  const Vector d = b.to_csr().diagonal();
  EXPECT_EQ(d, (Vector{4, 0, 9}));
}

TEST(Csr, IsSymmetricDetectsAsymmetry) {
  EXPECT_TRUE(small_example().is_symmetric());
  CooBuilder b(2, 2);
  b.add(0, 1, 1);
  EXPECT_FALSE(b.to_csr().is_symmetric());
}

TEST(Csr, HalfBandwidthOfTridiagonalIsOne) {
  EXPECT_EQ(small_example().half_bandwidth(), 1);
}

TEST(Csr, NnzWithinBandCountsDiagonalBand) {
  const CsrMatrix a = small_example();
  EXPECT_EQ(a.nnz_within_band(0), 3);  // diagonal only
  EXPECT_EQ(a.nnz_within_band(1), 7);  // everything
}

TEST(Csr, InvalidRowPtrThrows) {
  // row_ptr not covering all entries
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), Error);
}

TEST(Csr, UnsortedColumnsThrow) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 1.0}), Error);
}

TEST(Csr, IdentityFactory) {
  const CsrMatrix eye = csr_identity(4, 2.5);
  EXPECT_EQ(eye.nnz(), 4);
  for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(eye.at(i, i), 2.5);
  Vector y(4);
  eye.spmv(Vector{1, 2, 3, 4}, y);
  EXPECT_EQ(y, (Vector{2.5, 5, 7.5, 10}));
}

} // namespace
} // namespace esrp
