#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

DenseMatrix spd3() {
  // A = [[4,1,0],[1,3,1],[0,1,2]] (diagonally dominant symmetric -> SPD).
  DenseMatrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
  a(2, 1) = 1; a(2, 2) = 2;
  return a;
}

TEST(DenseMatrix, IdentityAndIndexing) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0);
}

TEST(DenseMatrix, FromCsrRoundTrip) {
  const CsrMatrix a = laplace1d(4);
  const DenseMatrix d = DenseMatrix::from_csr(a);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(d(i, j), a.at(i, j));
}

TEST(DenseMatrix, MatvecMatchesManual) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Vector y(2);
  a.matvec(Vector{1, 1, 1}, y);
  EXPECT_EQ(y, (Vector{6, 15}));
}

TEST(DenseMatrix, TransposeAndMultiply) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  const DenseMatrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(0, 1), 3);
  const DenseMatrix prod = a.multiply(at);
  EXPECT_DOUBLE_EQ(prod(0, 0), 5);
  EXPECT_DOUBLE_EQ(prod(0, 1), 11);
  EXPECT_TRUE(prod.is_symmetric());
}

TEST(DenseMatrix, IsSymmetricDetectsAsymmetry) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1;
  EXPECT_FALSE(a.is_symmetric());
  a(1, 0) = 1;
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const DenseMatrix a = spd3();
  const Vector x_true{1, -2, 3};
  Vector b(3);
  a.matvec(x_true, b);
  const Vector x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  const DenseMatrix a = spd3();
  const DenseMatrix inv = Cholesky(a).inverse();
  const DenseMatrix prod = a.multiply(inv);
  EXPECT_LT(prod.max_abs_diff(DenseMatrix::identity(3)), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1; // eigenvalues 3 and -1
  EXPECT_THROW(Cholesky{a}, Error);
}

TEST(Cholesky, LogDetOfDiagonalMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4; a(1, 1) = 9;
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(DenseSolve, PartialPivotingHandlesZeroLeadingPivot) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const Vector x = dense_solve(a, Vector{3, 7});
  EXPECT_NEAR(x[0], 7, 1e-14);
  EXPECT_NEAR(x[1], 3, 1e-14);
}

TEST(DenseSolve, RandomSystemResidualIsTiny) {
  Rng rng(41);
  const index_t n = 20;
  DenseMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 5; // keep well-conditioned
  }
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  const Vector x = dense_solve(a, b);
  Vector ax(static_cast<std::size_t>(n));
  a.matvec(x, ax);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(DenseSolve, SingularMatrixThrows) {
  DenseMatrix a(2, 2); // all zeros
  EXPECT_THROW(dense_solve(a, Vector{1, 1}), Error);
}

} // namespace
} // namespace esrp
