// Unit tests of the solver-agnostic ResilienceEngine: storage-stage
// cadence, event scheduling, snapshot slots, checkpoint bookkeeping, and
// the recovery orchestration over a stub SolverState client — including
// storage-stage replenishment of the redundancy queue after a recovery.
#include "resilience/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

constexpr rank_t kNodes = 6;
constexpr index_t kRows = 24;

RedundantCopy make_copy(index_t tag, real_t value = 1.0) {
  // Every entry held by the owner's ring neighbor — enough structure for
  // queue bookkeeping tests (the engine never reads the entries itself).
  RedundantCopy copy(tag, kNodes);
  for (index_t i = 0; i < kRows; ++i)
    copy.record((static_cast<rank_t>(i / (kRows / kNodes)) + 1) % kNodes, i,
                value);
  copy.finalize();
  return copy;
}

/// A stub solver: one state vector + one scalar, hooks that count calls.
struct StubSolver {
  explicit StubSolver(const BlockRowPartition& part) : v(part) {}

  SolverState state() { return SolverState{{&v}, {}, {&beta}}; }

  ResilienceEngine::Client client() {
    ResilienceEngine::Client c;
    c.state = [this] { return state(); };
    c.restart = [this] { ++restarts; };
    c.reconstruct = [this](StateSnapshot& stars, const RedundantCopy& prev,
                           const RedundantCopy& cur,
                           std::span<const rank_t> failed, RecoveryRecord&) {
      ++reconstructions;
      last_prev_tag = prev.tag();
      last_cur_tag = cur.tag();
      last_failed.assign(failed.begin(), failed.end());
      last_beta_star = stars.scalar(0);
      if (!reconstruct_ok) return false;
      // Roll the live vector back to the snapshot, as a real solver would.
      stars.restore_vectors(state());
      beta = stars.scalar(0);
      return true;
    };
    return c;
  }

  DistVector v;
  real_t beta = 0;
  int restarts = 0;
  int reconstructions = 0;
  bool reconstruct_ok = true;
  index_t last_prev_tag = -1;
  index_t last_cur_tag = -1;
  real_t last_beta_star = 0;
  std::vector<rank_t> last_failed;
};

class EngineFixture : public ::testing::Test {
protected:
  EngineFixture() : part_(kRows, kNodes), cluster_(part_), solver_(part_) {}

  static ResilienceEngine::Config config() {
    ResilienceEngine::Config cfg;
    cfg.checkpoint_vectors = 1;
    cfg.checkpoint_scalars = 1;
    return cfg;
  }

  ResilienceEngine make_engine(ResilienceOptions opts,
                               ResilienceEngine::Config cfg = config()) {
    ResilienceEngine engine(opts, part_, cfg);
    engine.begin_solve(cluster_);
    return engine;
  }

  BlockRowPartition part_;
  SimCluster cluster_;
  StubSolver solver_;
};

TEST_F(EngineFixture, StoragePlanMatchesAlg3Cadence) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  ResilienceEngine engine = make_engine(opts);
  // No stage before the first full interval.
  for (index_t j : {0, 1, 4}) EXPECT_FALSE(engine.storage_plan(j).store());
  EXPECT_TRUE(engine.storage_plan(5).first_store);
  EXPECT_TRUE(engine.storage_plan(6).second_store);
  EXPECT_FALSE(engine.storage_plan(7).store());
  EXPECT_TRUE(engine.storage_plan(10).first_store);

  ResilienceOptions esr = opts;
  esr.interval = 1; // classic ESR: a full (second) store every iteration
  ResilienceEngine esr_engine = make_engine(esr);
  for (index_t j : {0, 1, 7}) {
    EXPECT_TRUE(esr_engine.storage_plan(j).second_store);
    EXPECT_FALSE(esr_engine.storage_plan(j).first_store);
  }

  ResilienceOptions none;
  ResilienceEngine none_engine = make_engine(none);
  EXPECT_FALSE(none_engine.storage_plan(5).store());
}

TEST_F(EngineFixture, PendingEventFiresExactlyOnce) {
  ResilienceOptions opts;
  opts.failure = FailureEvent{3, {1}};
  opts.extra_failures.push_back(FailureEvent{7, {2, 3}});
  ResilienceEngine engine = make_engine(opts);
  EXPECT_EQ(engine.pending_event(2), nullptr);
  const FailureEvent* first = engine.pending_event(3);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->ranks, std::vector<rank_t>{1});
  // A rolled-back re-execution of iteration 3 must not re-fire the event.
  EXPECT_EQ(engine.pending_event(3), nullptr);
  ASSERT_NE(engine.pending_event(7), nullptr);
  // begin_solve resets the schedule.
  engine.begin_solve(cluster_);
  EXPECT_NE(engine.pending_event(3), nullptr);
}

TEST_F(EngineFixture, InvalidEventSchedulesRejected) {
  ResilienceOptions out_of_range;
  out_of_range.failure = FailureEvent{3, {kNodes}};
  EXPECT_THROW(ResilienceEngine(out_of_range, part_, config()), Error);

  ResilienceOptions duplicate;
  duplicate.failure = FailureEvent{3, {1}};
  duplicate.extra_failures.push_back(FailureEvent{3, {2}});
  EXPECT_THROW(ResilienceEngine(duplicate, part_, config()), Error);

  // All-ranks-fail is a *valid* schedule since the recovery ladder: it
  // resolves deterministically to the scratch rung instead of being
  // rejected up front.
  ResilienceOptions all_fail;
  all_fail.failure = FailureEvent{3, {0, 1, 2, 3, 4, 5}};
  EXPECT_NO_THROW(ResilienceEngine(all_fail, part_, config()));

  ResilienceOptions no_spare_imcr;
  no_spare_imcr.strategy = Strategy::imcr;
  no_spare_imcr.spare_nodes = false;
  EXPECT_THROW(ResilienceEngine(no_spare_imcr, part_, config()), Error);
}

TEST_F(EngineFixture, SnapshotSlotsEvictOldestAndCarryExtraScalars) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  ResilienceEngine::Config cfg = config();
  cfg.snapshot_slots = 2;
  cfg.snapshot_extra_scalars = 1;
  ResilienceEngine engine = make_engine(opts, cfg);

  solver_.beta = 0.25;
  engine.save_snapshot(5, solver_.state());
  solver_.beta = 0.5;
  engine.save_snapshot(6, solver_.state());
  EXPECT_TRUE(engine.has_snapshot(5));
  EXPECT_TRUE(engine.has_snapshot(6));
  engine.set_snapshot_scalar(6, 1, 7.5); // the extra slot
  engine.save_snapshot(7, solver_.state());
  EXPECT_FALSE(engine.has_snapshot(5)); // evicted beyond the two slots
  EXPECT_TRUE(engine.has_snapshot(6) && engine.has_snapshot(7));
  // Amending an evicted tag is a harmless no-op.
  engine.set_snapshot_scalar(5, 1, 1.0);
}

TEST_F(EngineFixture, CheckpointDueSkipsRecapturedTag) {
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 4;
  ResilienceEngine engine = make_engine(opts);
  EXPECT_FALSE(engine.checkpoint_due(0)); // j = 0 is never checkpointed
  EXPECT_FALSE(engine.checkpoint_due(3));
  ASSERT_TRUE(engine.checkpoint_due(4));
  engine.store_checkpoint(4, solver_.state());
  // The tag check: a rollback that re-executes iteration 4 must not
  // re-checkpoint identical state.
  EXPECT_FALSE(engine.checkpoint_due(4));
  EXPECT_TRUE(engine.checkpoint_due(8));
}

TEST_F(EngineFixture, ImcrRecoveryRestoresCheckpointState) {
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 4;
  opts.phi = 2;
  opts.failure = FailureEvent{6, {2}};
  ResilienceEngine engine = make_engine(opts);

  Vector filled(kRows, 3.5);
  solver_.v.set_from_global(filled);
  solver_.beta = 0.125;
  engine.store_checkpoint(4, solver_.state());
  solver_.beta = 99; // drifts past the checkpoint

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(6), 6, solver_.client(), record);
  EXPECT_EQ(resume, 4);
  EXPECT_EQ(record.restored_to, 4);
  EXPECT_EQ(record.wasted_iterations, 2);
  EXPECT_FALSE(record.restarted_from_scratch);
  EXPECT_EQ(solver_.v.gather_global(), filled);
  EXPECT_DOUBLE_EQ(solver_.beta, 0.125);
  EXPECT_EQ(solver_.restarts, 0);
}

TEST_F(EngineFixture, EsrpRecoveryHandsSnapshotAndCopyPairToClient) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {2, 3}};
  ResilienceEngine engine = make_engine(opts);

  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  solver_.beta = 0.75;
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);
  EXPECT_EQ(resume, 6);
  EXPECT_EQ(solver_.reconstructions, 1);
  // Trailing pairing: target 6 consumes copies (5, 6).
  EXPECT_EQ(solver_.last_prev_tag, 5);
  EXPECT_EQ(solver_.last_cur_tag, 6);
  EXPECT_EQ(solver_.last_failed, (std::vector<rank_t>{2, 3}));
  EXPECT_DOUBLE_EQ(solver_.last_beta_star, 0.75);
  EXPECT_FALSE(record.restarted_from_scratch);
  EXPECT_EQ(record.wasted_iterations, 2);
}

TEST_F(EngineFixture, LeadingPairingConsumesForwardCopyPair) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {1}};
  ResilienceEngine::Config cfg = config();
  cfg.pairing = ResilienceEngine::CopyPairing::leading;
  ResilienceEngine engine = make_engine(opts, cfg);

  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(5, solver_.state());
  engine.set_recoverable(5);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);
  EXPECT_EQ(resume, 5);
  EXPECT_EQ(solver_.last_prev_tag, 5);
  EXPECT_EQ(solver_.last_cur_tag, 6);
}

TEST_F(EngineFixture, ScratchRestartClearsStrategyState) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{3, {1}}; // before any storage stage
  ResilienceEngine engine = make_engine(opts);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(3), 3, solver_.client(), record);
  EXPECT_EQ(resume, 0);
  EXPECT_TRUE(record.restarted_from_scratch);
  EXPECT_EQ(record.wasted_iterations, 3);
  EXPECT_EQ(solver_.restarts, 1);
  EXPECT_EQ(solver_.reconstructions, 0);
  EXPECT_TRUE(engine.queue_tags().empty());
  EXPECT_EQ(engine.last_recoverable(), -1);
}

TEST_F(EngineFixture, FailedReconstructionFallsBackToScratch) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {2}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);
  solver_.reconstruct_ok = false; // a redundant copy did not survive

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);
  EXPECT_EQ(resume, 0);
  EXPECT_EQ(solver_.reconstructions, 1);
  EXPECT_EQ(solver_.restarts, 1);
  EXPECT_TRUE(record.restarted_from_scratch);
}

TEST_F(EngineFixture, StorageStagesReplenishTheQueueAfterRecovery) {
  // The multi-event guarantee: after a rollback, the following storage
  // stages push fresh copies and re-arm the recoverable target, so a second
  // failure recovers from the *new* stage instead of the consumed one.
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.queue_capacity = 3;
  opts.failure = FailureEvent{8, {2}};
  opts.extra_failures.push_back(FailureEvent{13, {4}});
  ResilienceEngine engine = make_engine(opts);

  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord first;
  ASSERT_EQ(engine.recover(*engine.pending_event(8), 8, solver_.client(),
                           first),
            6);

  // Re-execution reaches the next stage: re-pushed + fresh copies.
  engine.push_copy(make_copy(10));
  engine.push_copy(make_copy(11));
  engine.save_snapshot(11, solver_.state());
  engine.set_recoverable(11);
  EXPECT_EQ(engine.queue_tags(), (std::vector<index_t>{6, 10, 11}));
  EXPECT_EQ(engine.last_recoverable(), 11);

  RecoveryRecord second;
  ASSERT_EQ(engine.recover(*engine.pending_event(13), 13, solver_.client(),
                           second),
            11);
  EXPECT_EQ(solver_.last_prev_tag, 10);
  EXPECT_EQ(solver_.last_cur_tag, 11);
  EXPECT_FALSE(second.restarted_from_scratch);
  EXPECT_EQ(second.wasted_iterations, 2);
}

TEST_F(EngineFixture, CallbacksFireAroundRecovery) {
  ResilienceOptions opts;
  opts.failure = FailureEvent{4, {1}};
  ResilienceEngine engine = make_engine(opts);
  int failures = 0;
  int recoveries = 0;
  engine.set_failure_callback([&](const FailureEvent& e) {
    ++failures;
    EXPECT_EQ(e.iteration, 4);
  });
  engine.set_recovery_callback([&](const RecoveryRecord& rec) {
    ++recoveries;
    EXPECT_TRUE(rec.restarted_from_scratch);
  });
  RecoveryRecord record;
  engine.recover(*engine.pending_event(4), 4, solver_.client(), record);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(recoveries, 1);
}

TEST_F(EngineFixture, AllRanksFailingLandsOnScratchDeterministically) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {0, 1, 2, 3, 4, 5}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);
  // Every holder of every copy died with the cluster: reconstruction finds
  // no surviving data and the ladder bottoms out at scratch.
  EXPECT_EQ(resume, 0);
  EXPECT_TRUE(record.restarted_from_scratch);
  EXPECT_EQ(record.rung, RecoveryRung::scratch);
  EXPECT_EQ(record.ranks_lost, 6);
  EXPECT_EQ(solver_.restarts, 1);
}

TEST_F(EngineFixture, ScratchPolicySkipsExactRungs) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy = recovery_policy_from_string("scratch");
  opts.failure = FailureEvent{8, {2}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);
  // Perfectly recoverable state, but the policy says scratch only.
  EXPECT_EQ(resume, 0);
  EXPECT_EQ(solver_.reconstructions, 0);
  EXPECT_EQ(record.rung, RecoveryRung::scratch);
  EXPECT_EQ(record.attempted, (std::vector<RecoveryRung>{
                                  RecoveryRung::scratch}));
}

TEST_F(EngineFixture, OlderSnapshotRungRecoversWhenNewestPairIsGone) {
  // Two snapshot slots (the pipelined layout): when the newest target's
  // copy pair is unusable, rung 2 walks back to the older stored snapshot
  // and reconstructs there — still bitwise-exact, just further back.
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{13, {2}};
  ResilienceEngine::Config cfg = config();
  cfg.snapshot_slots = 2;
  ResilienceEngine engine = make_engine(opts, cfg);

  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  solver_.beta = 0.5;
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);
  engine.push_copy(make_copy(11)); // tag 10 never stored: pair incomplete
  solver_.beta = 0.75;
  engine.save_snapshot(11, solver_.state());
  engine.set_recoverable(11);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(13), 13, solver_.client(), record);
  EXPECT_EQ(resume, 6);
  EXPECT_EQ(record.rung, RecoveryRung::older_snapshot);
  EXPECT_EQ(record.restored_to, 6);
  EXPECT_EQ(record.wasted_iterations, 7);
  EXPECT_FALSE(record.restarted_from_scratch);
  EXPECT_DOUBLE_EQ(solver_.beta, 0.5); // rolled back to the older stars
  // The exact-only policy would have refused that walk-back.
  EXPECT_EQ(solver_.last_prev_tag, 5);
  EXPECT_EQ(solver_.last_cur_tag, 6);
}

TEST_F(EngineFixture, ExactPolicyRefusesOlderSnapshots) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy = recovery_policy_from_string("exact");
  opts.failure = FailureEvent{13, {2}};
  ResilienceEngine::Config cfg = config();
  cfg.snapshot_slots = 2;
  ResilienceEngine engine = make_engine(opts, cfg);

  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);
  engine.push_copy(make_copy(11));
  engine.save_snapshot(11, solver_.state());
  engine.set_recoverable(11);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(13), 13, solver_.client(), record);
  EXPECT_EQ(resume, 0);
  EXPECT_EQ(record.rung, RecoveryRung::scratch);
  EXPECT_EQ(solver_.reconstructions, 0);
}

TEST_F(EngineFixture, RetryBudgetCollapsesCascadesToScratch) {
  // Two failures inside one storage period with max_attempts = 1: the
  // second recovery has made no storage progress since the first, so the
  // ladder deterministically collapses to scratch instead of thrashing.
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy.max_attempts = 1;
  opts.failure = FailureEvent{8, {2}};
  opts.extra_failures.push_back(FailureEvent{9, {4}});
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord first;
  ASSERT_EQ(engine.recover(*engine.pending_event(8), 8, solver_.client(),
                           first),
            6);
  EXPECT_EQ(first.rung, RecoveryRung::reconstruct);

  // No set_recoverable between the events: the budget is exhausted.
  RecoveryRecord second;
  EXPECT_EQ(engine.recover(*engine.pending_event(9), 9, solver_.client(),
                           second),
            0);
  EXPECT_EQ(second.rung, RecoveryRung::scratch);
  EXPECT_TRUE(second.restarted_from_scratch);
  EXPECT_EQ(solver_.reconstructions, 1); // rung 1 never ran the second time
}

TEST_F(EngineFixture, StorageProgressResetsTheRetryBudget) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy.max_attempts = 1;
  opts.failure = FailureEvent{8, {2}};
  opts.extra_failures.push_back(FailureEvent{13, {4}});
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord first;
  ASSERT_EQ(engine.recover(*engine.pending_event(8), 8, solver_.client(),
                           first),
            6);

  // The re-executed iterations reach the next storage stage: the advanced
  // recoverable tag resets the budget, so the second failure still gets the
  // full ladder.
  engine.push_copy(make_copy(10));
  engine.push_copy(make_copy(11));
  engine.save_snapshot(11, solver_.state());
  engine.set_recoverable(11);

  RecoveryRecord second;
  EXPECT_EQ(engine.recover(*engine.pending_event(13), 13, solver_.client(),
                           second),
            11);
  EXPECT_EQ(second.rung, RecoveryRung::reconstruct);
}

TEST_F(EngineFixture, ShrinkPolicyRepartitionsOnUnrecoverableFailure) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy = recovery_policy_from_string("shrink");
  opts.failure = FailureEvent{3, {1}}; // before any storage stage
  ResilienceEngine engine = make_engine(opts);

  int repartitions = 0;
  ResilienceEngine::Client client = solver_.client();
  client.repartition = [&](std::span<const rank_t> failed) {
    ++repartitions;
    EXPECT_EQ(failed.size(), 1u);
  };

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(3), 3, client, record);
  EXPECT_EQ(resume, 0);
  EXPECT_EQ(repartitions, 1);
  EXPECT_EQ(record.rung, RecoveryRung::shrink);
  EXPECT_TRUE(record.restarted_from_scratch); // restart on the shrunken map
  EXPECT_EQ(record.ranks_absorbed, 1);
  EXPECT_EQ(engine.retired_ranks(), (std::vector<rank_t>{1}));
}

TEST_F(EngineFixture, RejoinRungReExpandsAtTheNextStorageStage) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.policy = recovery_policy_from_string("shrink");
  opts.failure = FailureEvent{3, {1}};
  ResilienceEngine engine = make_engine(opts);

  int rejoins = 0;
  ResilienceEngine::Client client = solver_.client();
  client.repartition = [](std::span<const rank_t>) {};
  client.rejoin = [&] { ++rejoins; };

  RecoveryRecord shrink_record;
  engine.recover(*engine.pending_event(3), 3, client, shrink_record);
  ASSERT_EQ(engine.retired_ranks().size(), 1u);

  // Not a storage-stage boundary: no rejoin yet.
  RecoveryRecord r1;
  EXPECT_FALSE(engine.try_rejoin(4, client, r1));
  EXPECT_EQ(rejoins, 0);

  RecoveryRecord r2;
  ASSERT_TRUE(engine.try_rejoin(5, client, r2));
  EXPECT_EQ(rejoins, 1);
  EXPECT_EQ(r2.rung, RecoveryRung::rejoin);
  EXPECT_EQ(r2.ranks_rejoined, 1);
  EXPECT_EQ(r2.wasted_iterations, 0);
  EXPECT_TRUE(engine.retired_ranks().empty());
  // Stale shrunken-map strategy state was dropped.
  EXPECT_TRUE(engine.queue_tags().empty());
  EXPECT_EQ(engine.last_recoverable(), -1);

  // Nothing retired anymore: the next boundary is a no-op.
  RecoveryRecord r3;
  EXPECT_FALSE(engine.try_rejoin(10, client, r3));
}

TEST_F(EngineFixture, RecoveryZeroesFailedRanksBeforeReconstruction) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {2}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  solver_.v.set_from_global(Vector(kRows, 2.0));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  ResilienceEngine::Client client = solver_.client();
  client.reconstruct = [&](StateSnapshot& stars, const RedundantCopy&,
                           const RedundantCopy&, std::span<const rank_t>,
                           RecoveryRecord&) {
    // The failure wiped rank 2's slices of both the live vector and the
    // snapshot before the client runs.
    for (real_t x : solver_.v.local(2)) EXPECT_EQ(x, 0.0);
    for (real_t x : stars.vec(0).local(2)) EXPECT_EQ(x, 0.0);
    for (real_t x : stars.vec(0).local(1)) EXPECT_EQ(x, 2.0);
    return true;
  };
  RecoveryRecord record;
  EXPECT_EQ(engine.recover(*engine.pending_event(8), 8, client, record), 6);
}

} // namespace
} // namespace esrp
