// Integrity-checked redundant state: FNV-1a seals on redundancy-queue
// copies and IMCR checkpoints, byte-flip injection through the SdcEvent
// "pcopy" / "checkpoint" targets, and the recovery ladder's
// detect-demote-record behavior when corrupted state would otherwise be
// consumed — at the component level, the engine level, and end-to-end
// through esrp::solve.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/solve.hpp"
#include "comm/exchange.hpp"
#include "common/error.hpp"
#include "resilience/checkpoint_store.hpp"
#include "resilience/engine.hpp"

namespace esrp {
namespace {

constexpr rank_t kNodes = 6;
constexpr index_t kRows = 24;

RedundantCopy make_copy(index_t tag, real_t value = 1.0) {
  RedundantCopy copy(tag, kNodes);
  for (index_t i = 0; i < kRows; ++i)
    copy.record((static_cast<rank_t>(i / (kRows / kNodes)) + 1) % kNodes, i,
                value);
  copy.finalize();
  return copy;
}

// ------------------------------------------------------------ components --

TEST(RedundantCopyIntegrity, ByteFlipBreaksVerification) {
  RedundantCopy copy = make_copy(5);
  EXPECT_TRUE(copy.verify({}));

  const rank_t holder = copy.corrupt(0, 51);
  ASSERT_GE(holder, 0);
  EXPECT_FALSE(copy.verify({}));

  // When the corrupted holder itself is among the failed ranks its copy is
  // gone anyway — the surviving holders still verify.
  const std::vector<rank_t> failed{holder};
  EXPECT_TRUE(copy.verify(failed));
}

TEST(RedundantCopyIntegrity, DroppedHoldersAreNotCorruption) {
  RedundantCopy copy = make_copy(5);
  const std::vector<rank_t> failed{2};
  copy.drop_holders(failed);
  // A failure legitimately erases holders' lists; later verification
  // against a *different* failed set must not read that as corruption.
  EXPECT_TRUE(copy.verify({}));
}

TEST(RedundantCopyIntegrity, CorruptReportsMissingEntries) {
  RedundantCopy copy = make_copy(5);
  EXPECT_EQ(copy.corrupt(kRows + 100, 51), -1);
}

TEST(CheckpointStoreIntegrity, ByteFlipBreaksVerification) {
  BlockRowPartition part(kRows, kNodes);
  SimCluster cluster(part);
  DistVector v(part);
  v.set_from_global(Vector(kRows, 2.5));
  real_t beta = 0.125;
  const SolverState state{{&v}, {}, {&beta}};

  CheckpointStore store(part, 1, 1, 1);
  store.store(4, state, cluster);
  EXPECT_TRUE(store.verify());

  const rank_t owner = store.corrupt(0, 7, 31);
  EXPECT_EQ(owner, part.owner(7));
  EXPECT_FALSE(store.verify());

  // Re-storing reseals: the next checkpoint is trustworthy again.
  store.store(8, state, cluster);
  EXPECT_TRUE(store.verify());
}

// ---------------------------------------------------------------- engine --

/// Same stub as engine_test: one state vector + one scalar.
struct StubSolver {
  explicit StubSolver(const BlockRowPartition& part) : v(part) {}

  SolverState state() { return SolverState{{&v}, {}, {&beta}}; }

  ResilienceEngine::Client client() {
    ResilienceEngine::Client c;
    c.state = [this] { return state(); };
    c.restart = [this] { ++restarts; };
    c.reconstruct = [this](StateSnapshot& stars, const RedundantCopy&,
                           const RedundantCopy&, std::span<const rank_t>,
                           RecoveryRecord&) {
      ++reconstructions;
      stars.restore_vectors(state());
      beta = stars.scalar(0);
      return true;
    };
    return c;
  }

  DistVector v;
  real_t beta = 0;
  int restarts = 0;
  int reconstructions = 0;
};

class IntegrityEngineFixture : public ::testing::Test {
protected:
  IntegrityEngineFixture()
      : part_(kRows, kNodes), cluster_(part_), solver_(part_) {}

  static ResilienceEngine::Config config() {
    ResilienceEngine::Config cfg;
    cfg.checkpoint_vectors = 1;
    cfg.checkpoint_scalars = 1;
    return cfg;
  }

  ResilienceEngine make_engine(ResilienceOptions opts,
                               ResilienceEngine::Config cfg = config()) {
    ResilienceEngine engine(opts, part_, cfg);
    engine.begin_solve(cluster_);
    return engine;
  }

  BlockRowPartition part_;
  SimCluster cluster_;
  StubSolver solver_;
};

TEST_F(IntegrityEngineFixture, CorruptQueueCopyIsDetectedAndDemoted) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {2}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  // The "pcopy" SdcEvent target flips a bit in the newest copy (tag 6 —
  // the `cur` half of the reconstruction pair) without touching its seal.
  SdcEvent flip;
  flip.iteration = 7;
  flip.target = "pcopy";
  flip.index = 0;
  flip.bit = 51;
  EXPECT_GE(engine.corrupt_redundant_state(flip), 0);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record);

  // The corruption is detected at verification time, the reconstruct rung
  // is demoted, and — with no other rung available — the ladder lands on
  // scratch. The record reports all of it honestly.
  EXPECT_EQ(solver_.reconstructions, 0);
  EXPECT_EQ(resume, 0);
  EXPECT_TRUE(record.restarted_from_scratch);
  EXPECT_EQ(record.rung, RecoveryRung::scratch);
  EXPECT_GE(record.copies_corrupt, 1);
  ASSERT_GE(record.attempted.size(), 2u);
  EXPECT_EQ(record.attempted.front(), RecoveryRung::reconstruct);
  EXPECT_EQ(record.attempted.back(), RecoveryRung::scratch);
}

TEST_F(IntegrityEngineFixture, CorruptCheckpointIsDetectedAndDemoted) {
  ResilienceOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 4;
  opts.phi = 2;
  opts.failure = FailureEvent{6, {2}};
  ResilienceEngine engine = make_engine(opts);

  solver_.v.set_from_global(Vector(kRows, 3.5));
  solver_.beta = 0.125;
  engine.store_checkpoint(4, solver_.state());

  SdcEvent flip;
  flip.iteration = 5;
  flip.target = "checkpoint";
  flip.index = 3;
  flip.bit = 40;
  EXPECT_GE(engine.corrupt_redundant_state(flip), 0);

  RecoveryRecord record;
  const index_t resume =
      engine.recover(*engine.pending_event(6), 6, solver_.client(), record);

  // verify() fails, so the corrupted checkpoint is demoted instead of
  // silently restoring poisoned state.
  EXPECT_EQ(resume, 0);
  EXPECT_TRUE(record.restarted_from_scratch);
  EXPECT_EQ(record.rung, RecoveryRung::scratch);
  EXPECT_EQ(record.checkpoints_corrupt, 1);
  EXPECT_EQ(record.attempted,
            (std::vector<RecoveryRung>{RecoveryRung::checkpoint,
                                       RecoveryRung::scratch}));
  EXPECT_EQ(solver_.restarts, 1);
}

TEST_F(IntegrityEngineFixture, IntactStateVerifiesAndRecordsCounts) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.failure = FailureEvent{8, {2}};
  ResilienceEngine engine = make_engine(opts);
  engine.push_copy(make_copy(5));
  engine.push_copy(make_copy(6));
  engine.save_snapshot(6, solver_.state());
  engine.set_recoverable(6);

  RecoveryRecord record;
  EXPECT_EQ(
      engine.recover(*engine.pending_event(8), 8, solver_.client(), record),
      6);
  EXPECT_EQ(record.rung, RecoveryRung::reconstruct);
  EXPECT_EQ(record.copies_verified, 2);
  EXPECT_EQ(record.copies_corrupt, 0);
}

TEST_F(IntegrityEngineFixture, CorruptionOfAbsentStateIsReportedAsMiss) {
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  ResilienceEngine engine = make_engine(opts);
  SdcEvent flip;
  flip.iteration = 3;
  flip.target = "pcopy";
  EXPECT_EQ(engine.corrupt_redundant_state(flip), -1); // empty queue

  ResilienceOptions imcr;
  imcr.strategy = Strategy::imcr;
  ResilienceEngine engine2 = make_engine(imcr);
  flip.target = "checkpoint";
  EXPECT_EQ(engine2.corrupt_redundant_state(flip), -1); // nothing stored

  flip.target = "p"; // live vectors are the solver's job, not the engine's
  EXPECT_THROW(engine2.corrupt_redundant_state(flip), Error);
}

// ------------------------------------------------------------ end-to-end --

/// Small deterministic esrp run shared by the end-to-end tests.
SolveSpec esrp_spec() {
  SolveSpec spec;
  spec.matrix = "poisson2d:16,16";
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 5;
  spec.rtol = 1e-8;
  return spec;
}

TEST(IntegrityEndToEnd, CorruptCopyConsumedByRecoveryIsDetected) {
  // Flip a bit of the newest redundancy-queue copy right after a storage
  // stage, then fail a rank before the next stage: the recovery verifies
  // the pair, detects the flip, demotes the reconstruct rung, and the SDC
  // record is honestly marked detected at the recovery iteration.
  SolveSpec spec = esrp_spec();
  SdcEvent flip;
  flip.iteration = 12; // after the (10, 11) storage stage completes
  flip.target = "pcopy";
  flip.index = 0;
  flip.bit = 51;
  spec.sdc_events.push_back(flip);
  spec.failures.push_back(FailureEvent{13, {2}});

  const SolveReport report = esrp::solve(spec);
  EXPECT_TRUE(report.converged);
  ASSERT_EQ(report.recoveries.size(), 1u);
  const RecoveryRecord& rec = report.recoveries[0];
  EXPECT_NE(rec.rung, RecoveryRung::reconstruct);
  EXPECT_GE(rec.copies_corrupt, 1);
  ASSERT_EQ(report.sdc.size(), 1u);
  EXPECT_TRUE(report.sdc[0].detected);
  EXPECT_EQ(report.sdc[0].detected_at, 13);

  // The reference run without the flip reconstructs exactly — same inputs,
  // intact redundancy.
  SolveSpec clean = esrp_spec();
  clean.failures.push_back(FailureEvent{13, {2}});
  const SolveReport ref = esrp::solve(clean);
  ASSERT_EQ(ref.recoveries.size(), 1u);
  EXPECT_EQ(ref.recoveries[0].rung, RecoveryRung::reconstruct);
  EXPECT_EQ(ref.recoveries[0].copies_corrupt, 0);
  ASSERT_TRUE(report.converged && ref.converged);
  // Both runs end at the same answer: the ladder's scratch floor is slower,
  // never wrong.
  EXPECT_LE(report.final_relres, spec.rtol);
  EXPECT_LE(ref.final_relres, spec.rtol);
}

TEST(IntegrityEndToEnd, CorruptCheckpointFallsBackHonestly) {
  SolveSpec spec = esrp_spec();
  spec.strategy = Strategy::imcr;
  SdcEvent flip;
  flip.iteration = 12; // after the checkpoint at 10
  flip.target = "checkpoint";
  flip.index = 0;
  flip.bit = 51;
  spec.sdc_events.push_back(flip);
  spec.failures.push_back(FailureEvent{13, {2}});

  const SolveReport report = esrp::solve(spec);
  EXPECT_TRUE(report.converged);
  ASSERT_EQ(report.recoveries.size(), 1u);
  const RecoveryRecord& rec = report.recoveries[0];
  EXPECT_EQ(rec.rung, RecoveryRung::scratch);
  EXPECT_EQ(rec.checkpoints_corrupt, 1);
  EXPECT_TRUE(rec.restarted_from_scratch);
  ASSERT_EQ(report.sdc.size(), 1u);
  EXPECT_TRUE(report.sdc[0].detected);
  EXPECT_LE(report.final_relres, spec.rtol);
}

} // namespace
} // namespace esrp
