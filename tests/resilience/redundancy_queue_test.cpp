// Queue-semantics tests, including a replay of the Fig. 1 timeline.
#include "resilience/redundancy_queue.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace esrp {
namespace {

RedundantCopy make_copy(index_t tag) {
  RedundantCopy c(tag, /*num_nodes=*/4);
  c.record(1, 0, static_cast<real_t>(tag));
  c.finalize();
  return c;
}

TEST(RedundancyQueue, StartsEmpty) {
  RedundancyQueue q;
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_FALSE(q.newest_adjacent_pair().has_value());
  EXPECT_TRUE(q.tags().empty());
}

TEST(RedundancyQueue, CapacityBelowTwoRejected) {
  EXPECT_THROW(RedundancyQueue{1}, Error);
}

TEST(RedundancyQueue, EvictsOldestBeyondCapacity) {
  RedundancyQueue q(3);
  q.push(make_copy(1));
  q.push(make_copy(2));
  q.push(make_copy(3));
  q.push(make_copy(4));
  EXPECT_EQ(q.tags(), (std::vector<index_t>{2, 3, 4}));
  EXPECT_EQ(q.find(1), nullptr);
  EXPECT_NE(q.find(2), nullptr);
}

TEST(RedundancyQueue, PushSameTagReplacesInPlace) {
  RedundancyQueue q(3);
  q.push(make_copy(5));
  q.push(make_copy(6));
  q.push(make_copy(6)); // rollback re-execution
  EXPECT_EQ(q.tags(), (std::vector<index_t>{5, 6}));
}

TEST(RedundancyQueue, OutOfOrderNewTagThrows) {
  RedundancyQueue q(3);
  q.push(make_copy(5));
  EXPECT_THROW(q.push(make_copy(3)), Error);
}

TEST(RedundancyQueue, NewestAdjacentPairFindsLatest) {
  RedundancyQueue q(3);
  q.push(make_copy(20));
  q.push(make_copy(21));
  EXPECT_EQ(q.newest_adjacent_pair(), 21);
  q.push(make_copy(40));
  // [20, 21, 40]: the pair (20,21) is still the newest adjacent one.
  EXPECT_EQ(q.newest_adjacent_pair(), 21);
  q.push(make_copy(41));
  // [21, 40, 41]: now (40,41).
  EXPECT_EQ(q.newest_adjacent_pair(), 41);
}

TEST(RedundancyQueue, NoAdjacentPairWithGappedTags) {
  RedundancyQueue q(3);
  q.push(make_copy(20));
  q.push(make_copy(40));
  EXPECT_FALSE(q.newest_adjacent_pair().has_value());
}

TEST(RedundancyQueue, Figure1Timeline) {
  // Replays the queue states of the paper's Fig. 1 with T = 20:
  // j = 0..T-1 : [_, _, _]
  // j = T      : [_, _, p'(T)]
  // j = T+1    : [_, p'(T), p'(T+1)]
  // j = 2T     : [p'(T), p'(T+1), p'(2T)]
  // j = 2T+1   : [p'(T+1), p'(2T), p'(2T+1)]
  const index_t T = 20;
  RedundancyQueue q(3);
  auto step = [&](index_t j) {
    if (j >= T && (j % T == 0 || j % T == 1)) q.push(make_copy(j));
  };
  for (index_t j = 0; j < T; ++j) step(j);
  EXPECT_TRUE(q.tags().empty());
  step(T);
  EXPECT_EQ(q.tags(), (std::vector<index_t>{T}));
  step(T + 1);
  EXPECT_EQ(q.tags(), (std::vector<index_t>{T, T + 1}));
  for (index_t j = T + 2; j < 2 * T; ++j) step(j);
  EXPECT_EQ(q.tags(), (std::vector<index_t>{T, T + 1}));
  step(2 * T);
  EXPECT_EQ(q.tags(), (std::vector<index_t>{T, T + 1, 2 * T}));
  // Failure here must still reconstruct T+1 (the thin arrows of Fig. 1).
  EXPECT_EQ(q.newest_adjacent_pair(), T + 1);
  step(2 * T + 1);
  EXPECT_EQ(q.tags(), (std::vector<index_t>{T + 1, 2 * T, 2 * T + 1}));
  EXPECT_EQ(q.newest_adjacent_pair(), 2 * T + 1);
}

TEST(RedundancyQueue, TwoSlotQueueLosesThePreviousStage) {
  // The ablation the paper motivates: with only two slots, a failure right
  // after the first ASpMV of a storage stage has no adjacent pair left.
  const index_t T = 20;
  RedundancyQueue q(2);
  q.push(make_copy(T));
  q.push(make_copy(T + 1));
  EXPECT_EQ(q.newest_adjacent_pair(), T + 1);
  q.push(make_copy(2 * T)); // evicts p'(T)
  EXPECT_FALSE(q.newest_adjacent_pair().has_value());
}

TEST(RedundancyQueue, DropHoldersPropagatesToAllCopies) {
  RedundancyQueue q(3);
  q.push(make_copy(1));
  q.push(make_copy(2));
  const std::vector<rank_t> failed{1}; // holder rank used by make_copy
  q.drop_holders(failed);
  const std::vector<rank_t> none;
  EXPECT_FALSE(q.find(1)->find_surviving(0, none).has_value());
  EXPECT_FALSE(q.find(2)->find_surviving(0, none).has_value());
}

TEST(RedundancyQueue, ClearEmptiesQueue) {
  RedundancyQueue q(3);
  q.push(make_copy(1));
  q.clear();
  EXPECT_EQ(q.size(), 0u);
}

} // namespace
} // namespace esrp
