#include "resilience/checkpoint_store.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace esrp {
namespace {

Vector random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

class CheckpointFixture : public ::testing::Test {
protected:
  CheckpointFixture()
      : part_(24, 6),
        cluster_(part_),
        x_(part_, random_vector(24, 1)),
        r_(part_, random_vector(24, 2)),
        z_(part_, random_vector(24, 3)),
        p_(part_, random_vector(24, 4)) {}

  /// The classic solver's state shape: {x, r, z, p} + beta.
  SolverState state(real_t& beta) {
    return SolverState{{&x_, &r_, &z_, &p_}, {}, {&beta}};
  }
  static SolverState state_of(DistVector& x, DistVector& r, DistVector& z,
                              DistVector& p, real_t& beta) {
    return SolverState{{&x, &r, &z, &p}, {}, {&beta}};
  }

  BlockRowPartition part_;
  SimCluster cluster_;
  DistVector x_, r_, z_, p_;
};

TEST_F(CheckpointFixture, StartsWithoutCheckpoint) {
  CheckpointStore store(part_, 1, 4, 1);
  EXPECT_FALSE(store.has_checkpoint());
}

TEST_F(CheckpointFixture, StoreChargesPhiBuddyMessagesPerNode) {
  CheckpointStore store(part_, 2, 4, 1);
  real_t beta = 0.5;
  store.store(10, state(beta), cluster_);
  EXPECT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.tag(), 10);
  const auto& tot = cluster_.ledger().totals(CommCategory::checkpoint);
  EXPECT_EQ(tot.messages, 6u * 2u);
  // (4 vectors * 4 local entries + 1 scalar) * 8 bytes * 6 nodes * 2 buddies
  EXPECT_EQ(tot.bytes, (4u * 4u + 1u) * 8u * 6u * 2u);
}

TEST_F(CheckpointFixture, MessageBytesScaleWithTheStateShape) {
  // The pipelined solver's shape: 8 recurrence vectors + 2 scalars.
  std::vector<DistVector> vecs(8, DistVector(part_));
  real_t gamma = 0.25, alpha = 0.75;
  SolverState st;
  for (DistVector& v : vecs) st.vectors.push_back(&v);
  st.scalars = {&gamma, &alpha};
  CheckpointStore store(part_, 1, 8, 2);
  store.store(3, st, cluster_);
  const auto& tot = cluster_.ledger().totals(CommCategory::checkpoint);
  EXPECT_EQ(tot.bytes, (8u * 4u + 2u) * 8u * 6u * 1u);
}

TEST_F(CheckpointFixture, RestoreRecoversExactState) {
  CheckpointStore store(part_, 1, 4, 1);
  real_t beta0 = 0.25;
  store.store(5, state(beta0), cluster_);
  const Vector x_snapshot = x_.gather_global();

  // Mutate and damage the live state.
  DistVector x2(part_, random_vector(24, 9)), r2(part_), z2(part_), p2(part_);
  const std::vector<rank_t> failed{2};
  real_t beta = -1;
  ASSERT_TRUE(store.restore(failed, state_of(x2, r2, z2, p2, beta), cluster_));
  EXPECT_EQ(x2.gather_global(), x_snapshot);
  EXPECT_EQ(r2.gather_global(), r_.gather_global());
  EXPECT_DOUBLE_EQ(beta, 0.25);
}

TEST_F(CheckpointFixture, RestoreChargesOneRecoveryMessagePerFailedRank) {
  CheckpointStore store(part_, 3, 4, 1);
  real_t beta0 = 0;
  store.store(5, state(beta0), cluster_);
  cluster_.reset_accounting();
  DistVector x2(part_), r2(part_), z2(part_), p2(part_);
  real_t beta = 0;
  const std::vector<rank_t> failed{1, 2};
  ASSERT_TRUE(store.restore(failed, state_of(x2, r2, z2, p2, beta), cluster_));
  EXPECT_EQ(cluster_.ledger().totals(CommCategory::recovery).messages, 2u);
}

TEST_F(CheckpointFixture, SurvivingBuddyPrefersNearestRingNeighbor) {
  CheckpointStore store(part_, 3, 4, 1);
  const std::vector<rank_t> nobody;
  EXPECT_EQ(store.surviving_buddy(2, nobody), 3); // d(2,1) = 3
  const std::vector<rank_t> right_failed{3};
  EXPECT_EQ(store.surviving_buddy(2, right_failed), 1); // d(2,2) = 1
}

TEST_F(CheckpointFixture, AllBuddiesFailedIsUnrecoverable) {
  CheckpointStore store(part_, 1, 4, 1); // single buddy: d(s,1) = s+1
  real_t beta0 = 0;
  store.store(5, state(beta0), cluster_);
  DistVector x2(part_), r2(part_), z2(part_), p2(part_);
  real_t beta = 0;
  // Fail both node 2 and its only buddy 3: restore must refuse.
  const std::vector<rank_t> failed{2, 3};
  EXPECT_FALSE(store.restore(failed, state_of(x2, r2, z2, p2, beta), cluster_));
}

TEST_F(CheckpointFixture, ContiguousBlockOfPhiFailuresIsRecoverable) {
  // phi buddies span a ring interval of length phi+1, so a contiguous block
  // of psi = phi failures always leaves each node a surviving buddy.
  const int phi = 3;
  CheckpointStore store(part_, phi, 4, 1);
  real_t beta0 = 0;
  store.store(5, state(beta0), cluster_);
  for (rank_t start = 0; start < part_.num_nodes(); ++start) {
    const auto failed = contiguous_ranks(start, phi, part_.num_nodes());
    for (rank_t f : failed)
      EXPECT_TRUE(store.surviving_buddy(f, failed).has_value())
          << "rank " << f << " with block at " << start;
  }
}

TEST_F(CheckpointFixture, NewerStoreOverwritesOlder) {
  CheckpointStore store(part_, 1, 4, 1);
  real_t beta0 = 0.5;
  store.store(5, state(beta0), cluster_);
  DistVector x_new(part_, random_vector(24, 77));
  real_t beta1 = 0.75;
  store.store(8, state_of(x_new, r_, z_, p_, beta1), cluster_);
  EXPECT_EQ(store.tag(), 8);
  DistVector x2(part_), r2(part_), z2(part_), p2(part_);
  real_t beta = 0;
  const std::vector<rank_t> failed{0};
  ASSERT_TRUE(store.restore(failed, state_of(x2, r2, z2, p2, beta), cluster_));
  EXPECT_EQ(x2.gather_global(), x_new.gather_global());
  EXPECT_DOUBLE_EQ(beta, 0.75);
}

} // namespace
} // namespace esrp
