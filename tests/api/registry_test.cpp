// Registry layer: duplicate-registration rejection, unknown-key errors with
// "did you mean" suggestions, the builtin key sets, and matrix-spec parsing
// (the logic that used to live inside tools/esrp_cli.cpp).
#include <gtest/gtest.h>

#include <string>

#include "api/registry.hpp"
#include "common/error.hpp"

namespace esrp {
namespace {

TEST(Registry, DuplicateRegistrationRejected) {
  Registry<int> reg("widget");
  reg.add("alpha", "first", 1);
  try {
    reg.add("alpha", "second", 2);
    FAIL() << "duplicate add must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate widget registration"),
              std::string::npos)
        << e.what();
  }
  // The original registration survives.
  EXPECT_EQ(reg.get("alpha"), 1);
  EXPECT_EQ(reg.help("alpha"), "first");
}

TEST(Registry, EmptyKeyRejected) {
  Registry<int> reg("widget");
  EXPECT_THROW(reg.add("", "help", 1), Error);
}

TEST(Registry, UnknownKeySuggestsClosestAndListsValid) {
  Registry<int> reg("widget");
  reg.add("pcg", "", 1);
  reg.add("pipelined", "", 2);
  try {
    reg.get("pgc");
    FAIL() << "unknown key must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget \"pgc\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean \"pcg\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("pipelined"), std::string::npos) << msg;
  }
}

TEST(Registry, WildlyWrongKeyOmitsSuggestion) {
  Registry<int> reg("widget");
  reg.add("pcg", "", 1);
  try {
    reg.get("completely-unrelated");
    FAIL();
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid widget keys: pcg"), std::string::npos) << msg;
  }
}

TEST(Registry, KeysAreSorted) {
  Registry<int> reg("widget");
  reg.add("b", "", 1);
  reg.add("a", "", 2);
  reg.add("c", "", 3);
  EXPECT_EQ(reg.keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(BuiltinRegistries, SolverKeys) {
  EXPECT_EQ(solver_registry().keys(),
            (std::vector<std::string>{"dist-pipelined", "pcg", "pipelined",
                                      "resilient-pcg"}));
  EXPECT_TRUE(solver_registry().get("resilient-pcg").distributed);
  EXPECT_TRUE(solver_registry().get("dist-pipelined").distributed);
  EXPECT_FALSE(solver_registry().get("pcg").distributed);
  EXPECT_FALSE(solver_registry().get("pipelined").distributed);
}

TEST(BuiltinRegistries, PrecondKeys) {
  EXPECT_EQ(precond_registry().keys(),
            (std::vector<std::string>{"block-jacobi", "ic0", "identity",
                                      "jacobi", "ssor"}));
}

TEST(BuiltinRegistries, MatrixKeys) {
  EXPECT_EQ(matrix_registry().keys(),
            (std::vector<std::string>{"audikw", "emilia", "laplace1d", "mm",
                                      "poisson2d", "poisson3d"}));
}

TEST(MatrixResolve, ParameterizedKeys) {
  const TestProblem p2 = resolve_matrix("poisson2d:6,5");
  EXPECT_EQ(p2.name, "poisson2d");
  EXPECT_EQ(p2.matrix.rows(), 30);

  const TestProblem p3 = resolve_matrix("poisson3d:3,4,5");
  EXPECT_EQ(p3.matrix.rows(), 60);

  const TestProblem l1 = resolve_matrix("laplace1d:17");
  EXPECT_EQ(l1.matrix.rows(), 17);

  // The stand-in generators accept an optional grid argument.
  const TestProblem em = resolve_matrix("emilia:6,6,6");
  EXPECT_EQ(em.matrix.rows(), 216);
  const TestProblem au = resolve_matrix("audikw:4,4,4");
  EXPECT_EQ(au.matrix.rows(), 3 * 64); // 3 dof per grid point
}

TEST(MatrixResolve, MalformedArguments) {
  EXPECT_THROW(resolve_matrix("poisson2d"), Error);      // missing dims
  EXPECT_THROW(resolve_matrix("poisson2d:6"), Error);    // too few
  EXPECT_THROW(resolve_matrix("poisson2d:6,7,8"), Error); // too many
  EXPECT_THROW(resolve_matrix("poisson2d:0,5"), Error);  // non-positive
  EXPECT_THROW(resolve_matrix("poisson2d:a,b"), Error);  // non-numeric
  EXPECT_THROW(resolve_matrix("poisson2d:4,-4"), Error); // negative
  EXPECT_THROW(resolve_matrix("mm"), Error);             // missing path
  EXPECT_THROW(resolve_matrix("mm:/does/not/exist.mtx"), Error);
}

TEST(MatrixResolve, UnknownKeySuggests) {
  try {
    resolve_matrix("poison3d:4,4,4");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"poisson3d\""),
              std::string::npos)
        << e.what();
  }
  // check_matrix_key validates without building anything.
  EXPECT_THROW(check_matrix_key("poison3d:4,4,4"), Error);
  EXPECT_NO_THROW(check_matrix_key("poisson3d:400,400,400"));
}

} // namespace
} // namespace esrp
