// RunSpec owning-storage semantics (the borrowed-span lifetime fix) and
// the SolveSpec = ProblemSpec + SolverConfig + RunSpec decomposition: the
// aggregate must keep exposing every historical field flat, and copied /
// moved RunSpecs must carry their owned rhs/x0 storage with the spans
// re-pointed — never left dangling into the source.
#include <gtest/gtest.h>

#include <utility>

#include "api/solve.hpp"
#include "api/solve_spec.hpp"
#include "common/error.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

bool points_into(std::span<const real_t> s, const RunSpec& spec) {
  // Observable proxy for ownership: the accessor agrees with the span.
  (void)s;
  return spec.owns_rhs();
}

TEST(RunSpecLifetimeTest, BorrowedByDefault) {
  const Vector b(16, 1.0);
  RunSpec run;
  run.rhs = b;
  EXPECT_FALSE(run.owns_rhs());
  EXPECT_FALSE(run.owns_x0());
  EXPECT_EQ(run.rhs.data(), b.data()); // borrowing means no copy
}

TEST(RunSpecLifetimeTest, TakeRhsOwns) {
  RunSpec run;
  run.take_rhs(Vector(16, 2.5));
  EXPECT_TRUE(run.owns_rhs());
  ASSERT_EQ(run.rhs.size(), 16u);
  EXPECT_EQ(run.rhs[3], 2.5);
}

TEST(RunSpecLifetimeTest, CopyRepointsOwnedStorage) {
  RunSpec run;
  run.take_rhs(Vector(16, 3.0));
  run.take_x0(Vector(16, 0.5));

  RunSpec copy = run;
  EXPECT_TRUE(copy.owns_rhs());
  EXPECT_TRUE(copy.owns_x0());
  ASSERT_EQ(copy.rhs.size(), 16u);
  // The copy's spans must point into the copy's storage, not the source's.
  EXPECT_NE(copy.rhs.data(), run.rhs.data());
  EXPECT_NE(copy.x0.data(), run.x0.data());
  EXPECT_EQ(copy.rhs[0], 3.0);
  EXPECT_EQ(copy.x0[0], 0.5);
}

TEST(RunSpecLifetimeTest, CopyKeepsBorrowedSpansBorrowed) {
  const Vector b(8, 4.0);
  RunSpec run;
  run.rhs = b;
  RunSpec copy = run;
  EXPECT_FALSE(copy.owns_rhs());
  EXPECT_EQ(copy.rhs.data(), b.data());
}

TEST(RunSpecLifetimeTest, MoveTransfersOwnership) {
  RunSpec run;
  run.take_rhs(Vector(16, 5.0));
  const real_t* data = run.rhs.data();

  RunSpec moved = std::move(run);
  EXPECT_TRUE(moved.owns_rhs());
  EXPECT_EQ(moved.rhs.data(), data); // the buffer itself moved
  EXPECT_EQ(moved.rhs[7], 5.0);
  EXPECT_FALSE(points_into(run.rhs, run)); // NOLINT(bugprone-use-after-move)
}

TEST(RunSpecLifetimeTest, OwnedRhsOutlivesTheCallersBuffer) {
  // The exact footgun the redesign fixes: fill the spec from a temporary,
  // solve later. With take_rhs the storage is inside the spec.
  const CsrMatrix a = laplace1d(32);
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  {
    Vector temp = xp::make_rhs(a);
    spec.take_rhs(std::move(temp));
  } // temp gone; spec.rhs still valid
  const SolveReport report = solve(spec);
  EXPECT_TRUE(report.converged);
}

TEST(RunSpecLifetimeTest, AggregateSlicesToItsBases) {
  SolveSpec spec;
  spec.matrix = "laplace1d:8";
  spec.solver = "pipelined";
  spec.rtol = 1e-6;
  spec.nodes = 32;
  spec.take_rhs(Vector(8, 1.0));

  // Each base view sees its own fields, and the views are the same object.
  const ProblemSpec& problem = spec;
  const SolverConfig& config = spec;
  const RunSpec& run = spec;
  EXPECT_EQ(problem.matrix, "laplace1d:8");
  EXPECT_EQ(problem.nodes, 32);
  EXPECT_EQ(config.solver, "pipelined");
  EXPECT_EQ(config.rtol, 1e-6);
  EXPECT_TRUE(run.owns_rhs());
  EXPECT_EQ(run.rhs.data(), spec.rhs.data());
}

TEST(RunSpecLifetimeTest, ValidateRejectsBatchOnNonBatchedSolver) {
  const CsrMatrix a = laplace1d(16);
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.solver = "resilient-pcg"; // no supports_batched_rhs
  spec.precond = "block-jacobi";
  spec.nodes = 4;
  spec.rhs_batch.emplace_back(16, 1.0);
  EXPECT_THROW(validate_spec(spec), Error);
}

TEST(RunSpecLifetimeTest, ValidateRejectsRhsAndBatchTogether) {
  const CsrMatrix a = laplace1d(16);
  const Vector b(16, 1.0);
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.solver = "pcg";
  spec.precond = "jacobi";
  spec.rhs = b;
  spec.rhs_batch.emplace_back(16, 1.0);
  EXPECT_THROW(validate_spec(spec), Error);
}

} // namespace
} // namespace esrp
