// Facade-vs-direct parity: esrp::solve(SolveSpec) must be bitwise identical
// to hand-assembling the same solve through the historical direct APIs, for
// every registered solver, at 1 and 4 kernel threads (the acceptance
// criterion of the api_redesign issue). "Bitwise" means memcmp on the
// solution (and residual) vectors plus exact equality of the scalar
// outputs — no tolerances anywhere.
#include <gtest/gtest.h>

#include <cstring>

#include "../parallel/thread_count_guard.hpp"
#include "api/solve.hpp"
#include "core/resilient_pcg.hpp"
#include "netsim/cluster.hpp"
#include "parallel/parallel.hpp"
#include "pipelined/dist_pipelined_pcg.hpp"
#include "pipelined/pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr int kThreadCounts[] = {1, 4};

void expect_bitwise_equal(const Vector& direct, const Vector& facade,
                          const char* what) {
  ASSERT_EQ(direct.size(), facade.size()) << what;
  EXPECT_EQ(0, std::memcmp(direct.data(), facade.data(),
                           direct.size() * sizeof(real_t)))
      << what << " differs between the direct call and the facade";
}

class FacadeParity : public ::testing::Test {
protected:
  FacadeParity() : a_(poisson2d(16, 16)), b_(xp::make_rhs(a_)) {}

  ThreadCountGuard guard_;
  CsrMatrix a_;
  Vector b_;
};

TEST_F(FacadeParity, SequentialPcg) {
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    const JacobiPreconditioner precond(a_);
    Vector x(b_.size(), 0);
    const PcgResult direct = pcg_solve(a_, b_, x, &precond);

    SolveSpec spec;
    spec.matrix_data = &a_;
    spec.rhs = b_;
    spec.solver = "pcg";
    spec.precond = "jacobi";
    const SolveReport facade = solve(spec);

    EXPECT_EQ(direct.converged, facade.converged);
    EXPECT_EQ(direct.iterations, facade.iterations);
    EXPECT_EQ(direct.final_relres, facade.final_relres);
    EXPECT_EQ(direct.flops, facade.flops);
    expect_bitwise_equal(x, facade.x, "x");
  }
}

TEST_F(FacadeParity, SequentialPipelined) {
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    const BlockJacobiPreconditioner precond(a_, /*max_block_size=*/10);
    Vector x(b_.size(), 0);
    const PipelinedPcgResult direct = pipelined_pcg_solve(a_, b_, x, &precond);

    SolveSpec spec;
    spec.matrix_data = &a_;
    spec.rhs = b_;
    spec.solver = "pipelined";
    spec.precond = "block-jacobi";
    const SolveReport facade = solve(spec);

    EXPECT_EQ(direct.converged, facade.converged);
    EXPECT_EQ(direct.iterations, facade.iterations);
    EXPECT_EQ(direct.final_relres, facade.final_relres);
    EXPECT_EQ(direct.flops, facade.flops);
    expect_bitwise_equal(x, facade.x, "x");
  }
}

TEST_F(FacadeParity, ResilientPcgWithFailure) {
  const rank_t nodes = 8;
  const FailureEvent event{12, contiguous_ranks(2, 2, nodes)};

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    const BlockRowPartition part(a_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(a_, nodes));
    const BlockJacobiPreconditioner precond(a_, part, 10);
    ResilienceOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = 5;
    opts.phi = 2;
    opts.failure = event;
    ResilientPcg solver(a_, precond, cluster, opts);
    const ResilientSolveResult direct = solver.solve(b_);

    SolveSpec spec;
    spec.matrix_data = &a_;
    spec.rhs = b_;
    spec.solver = "resilient-pcg";
    spec.precond = "block-jacobi";
    spec.nodes = nodes;
    spec.strategy = Strategy::esrp;
    spec.interval = 5;
    spec.phi = 2;
    spec.failures.push_back(event);
    const SolveReport facade = solve(spec);

    EXPECT_EQ(direct.converged, facade.converged);
    EXPECT_EQ(direct.trajectory_iterations, facade.iterations);
    EXPECT_EQ(direct.executed_iterations, facade.executed_iterations);
    EXPECT_EQ(direct.final_relres, facade.final_relres);
    EXPECT_EQ(direct.modeled_time, facade.modeled_time);
    ASSERT_EQ(direct.recoveries.size(), facade.recoveries.size());
    ASSERT_EQ(facade.recoveries.size(), 1u);
    EXPECT_EQ(direct.recoveries[0].restored_to,
              facade.recoveries[0].restored_to);
    expect_bitwise_equal(direct.x, facade.x, "x");
    expect_bitwise_equal(direct.r, facade.r, "r");
  }
}

TEST_F(FacadeParity, DistPipelined) {
  const rank_t nodes = 8;
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    set_num_threads(threads);

    const BlockRowPartition part(a_.rows(), nodes);
    SimCluster cluster(part, xp::calibrated_cost(a_, nodes));
    const BlockJacobiPreconditioner precond(a_, part, 10);
    DistPipelinedPcg solver(a_, precond, cluster, DistPipelinedOptions{});
    const DistPipelinedResult direct = solver.solve(b_);

    SolveSpec spec;
    spec.matrix_data = &a_;
    spec.rhs = b_;
    spec.solver = "dist-pipelined";
    spec.precond = "block-jacobi";
    spec.nodes = nodes;
    const SolveReport facade = solve(spec);

    EXPECT_EQ(direct.converged, facade.converged);
    EXPECT_EQ(direct.trajectory_iterations, facade.iterations);
    EXPECT_EQ(direct.final_relres, facade.final_relres);
    EXPECT_EQ(direct.modeled_time, facade.modeled_time);
    expect_bitwise_equal(direct.x, facade.x, "x");
    expect_bitwise_equal(direct.r, facade.r, "r");
  }
}

/// The registry key falls back to the same generator the direct path calls,
/// so key-built and caller-built matrices give identical solves.
TEST_F(FacadeParity, MatrixKeyMatchesMatrixData) {
  SolveSpec by_key;
  by_key.matrix = "poisson2d:16,16";
  by_key.solver = "pcg";
  by_key.precond = "jacobi";
  const SolveReport key_report = solve(by_key);

  SolveSpec by_data = by_key;
  by_data.matrix.clear();
  by_data.matrix_data = &a_;
  by_data.rhs = b_; // the default rhs of the key path is xp::make_rhs(a)
  const SolveReport data_report = solve(by_data);

  EXPECT_EQ(key_report.iterations, data_report.iterations);
  expect_bitwise_equal(key_report.x, data_report.x, "x");
}

} // namespace
} // namespace esrp
