// SolveSpec validation: every malformed-spec class the facade must reject
// before any expensive work — bad scalars, phi vs nodes, malformed failure
// schedules, unknown registry keys, and solver/strategy mismatches.
#include <gtest/gtest.h>

#include <string>

#include "api/solve.hpp"
#include "common/error.hpp"
#include "netsim/failure.hpp"

namespace esrp {
namespace {

/// Smallest valid distributed spec.
SolveSpec distributed_spec() {
  SolveSpec spec;
  spec.matrix = "poisson2d:8,8";
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = 4;
  spec.phi = 1;
  return spec;
}

void expect_invalid(const SolveSpec& spec, const std::string& needle) {
  try {
    validate_spec(spec);
    FAIL() << "expected validation to reject the spec (" << needle << ")";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(SolveSpecValidation, AcceptsMinimalSpecs) {
  EXPECT_NO_THROW(validate_spec(distributed_spec()));
  SolveSpec seq;
  seq.matrix = "poisson2d:8,8";
  seq.solver = "pcg";
  seq.precond = "jacobi";
  EXPECT_NO_THROW(validate_spec(seq));
}

TEST(SolveSpecValidation, RequiresAProblem) {
  SolveSpec spec = distributed_spec();
  spec.matrix.clear();
  expect_invalid(spec, "matrix");
}

TEST(SolveSpecValidation, RejectsNonPositiveInterval) {
  SolveSpec spec = distributed_spec();
  spec.interval = 0;
  expect_invalid(spec, "interval");
  spec.interval = -20;
  expect_invalid(spec, "interval");
}

TEST(SolveSpecValidation, RejectsBadScalars) {
  SolveSpec spec = distributed_spec();
  spec.rtol = 0;
  expect_invalid(spec, "rtol");

  spec = distributed_spec();
  spec.max_iterations = -1;
  expect_invalid(spec, "max_iterations");

  spec = distributed_spec();
  spec.block_size = 0;
  expect_invalid(spec, "block_size");

  spec = distributed_spec();
  spec.threads = -2;
  expect_invalid(spec, "threads");

  spec = distributed_spec();
  spec.ssor_omega = 2.5;
  expect_invalid(spec, "ssor_omega");
}

TEST(SolveSpecValidation, RejectsPhiNotBelowNodes) {
  SolveSpec spec = distributed_spec();
  spec.phi = 5; // > nodes = 4
  expect_invalid(spec, "phi");
  spec.phi = 4; // == nodes: no node can hold a copy of itself
  expect_invalid(spec, "phi");
  spec.phi = 0;
  expect_invalid(spec, "phi");
}

TEST(SolveSpecValidation, RejectsMalformedFailureSchedules) {
  // Duplicate iterations (validated by the shared netsim schedule checker).
  SolveSpec spec = distributed_spec();
  spec.failures.push_back(FailureEvent{10, {0}});
  spec.failures.push_back(FailureEvent{10, {1}});
  expect_invalid(spec, "strictly increasing");

  // Under-specified event (no ranks).
  spec = distributed_spec();
  spec.failures.push_back(FailureEvent{10, {}});
  expect_invalid(spec, "not fully specified");

  // Under-specified event (negative iteration).
  spec = distributed_spec();
  spec.failures.push_back(FailureEvent{-1, {0}});
  expect_invalid(spec, "not fully specified");

  // Rank out of range.
  spec = distributed_spec();
  spec.failures.push_back(FailureEvent{10, {7}});
  expect_invalid(spec, "outside");

  // Same rank listed twice in one event.
  spec = distributed_spec();
  spec.failures.push_back(FailureEvent{10, {1, 1}});
  expect_invalid(spec, "more than once");

  // All ranks failing at once is *valid* since the recovery ladder: it
  // resolves to a deterministic scratch restart instead of being rejected.
  spec = distributed_spec();
  spec.failures.push_back(FailureEvent{10, {0, 1, 2, 3}});
  EXPECT_NO_THROW(validate_spec(spec));
}

TEST(SolveSpecValidation, RecoveryPolicyNamesAndCapabilities) {
  // Every preset parses on the capable solver (esrp: every rung is legal).
  for (const char* name :
       {"ladder", "exact", "checkpoint", "scratch", "shrink"}) {
    SolveSpec spec = distributed_spec();
    spec.strategy = Strategy::esrp;
    spec.recovery_policy = name;
    EXPECT_NO_THROW(validate_spec(spec)) << name;
  }

  // Unknown policy names are rejected with the valid spellings.
  SolveSpec spec = distributed_spec();
  spec.recovery_policy = "lader";
  expect_invalid(spec, "recovery policy");

  // dist-pipelined has no repartition/rejoin hooks -> no shrink policy.
  spec = distributed_spec();
  spec.solver = "dist-pipelined";
  spec.recovery_policy = "shrink";
  expect_invalid(spec, "shrink");

  // The shrink rung is esrp-only, like no-spare recovery.
  spec = distributed_spec();
  spec.strategy = Strategy::imcr;
  spec.recovery_policy = "shrink";
  expect_invalid(spec, "esrp");
}

TEST(SolveSpecValidation, SdcRedundantStateTargetsAreStrategyGated) {
  SdcEvent flip;
  flip.iteration = 5;

  // "pcopy" corrupts a redundancy-queue copy: esrp only.
  SolveSpec spec = distributed_spec();
  spec.strategy = Strategy::esrp;
  flip.target = "pcopy";
  spec.sdc_events.push_back(flip);
  EXPECT_NO_THROW(validate_spec(spec));
  spec.strategy = Strategy::imcr;
  expect_invalid(spec, "esrp");

  // "checkpoint" corrupts the IMCR buddy checkpoint: imcr only.
  spec = distributed_spec();
  spec.strategy = Strategy::imcr;
  flip.target = "checkpoint";
  spec.sdc_events.push_back(flip);
  EXPECT_NO_THROW(validate_spec(spec));
  spec.strategy = Strategy::esrp;
  expect_invalid(spec, "imcr");

  // Unknown targets still list the full vocabulary.
  spec = distributed_spec();
  flip.target = "q";
  spec.sdc_events.push_back(flip);
  expect_invalid(spec, "checkpoint, or pcopy");
}

TEST(SolveSpecValidation, DistributedSolversNeedExplicitActionPrecond) {
  for (const char* solver : {"resilient-pcg", "dist-pipelined"}) {
    for (const char* precond : {"ssor", "ic0"}) {
      SCOPED_TRACE(std::string(solver) + " + " + precond);
      SolveSpec spec = distributed_spec();
      spec.solver = solver;
      spec.precond = precond;
      expect_invalid(spec, "no explicit node-local action matrix");
    }
  }
  // The sequential solvers pair with every preconditioner.
  SolveSpec spec;
  spec.matrix = "poisson2d:8,8";
  spec.solver = "pipelined";
  spec.precond = "ssor";
  EXPECT_NO_THROW(validate_spec(spec));
}

TEST(SolveSpecValidation, SequentialSolversCannotTakeFailures) {
  SolveSpec spec;
  spec.matrix = "poisson2d:8,8";
  spec.solver = "pcg";
  spec.precond = "jacobi";
  spec.failures.push_back(FailureEvent{10, {0}});
  expect_invalid(spec, "sequential");
}

TEST(SolveSpecValidation, DistPipelinedTakesMultiEventSchedulesAndEsrp) {
  SolveSpec spec = distributed_spec();
  spec.solver = "dist-pipelined";
  spec.failures.push_back(FailureEvent{10, {0}});
  spec.failures.push_back(FailureEvent{20, {1}});
  EXPECT_NO_THROW(validate_spec(spec));
  spec.strategy = Strategy::esrp;
  EXPECT_NO_THROW(validate_spec(spec));
  spec.strategy = Strategy::imcr;
  EXPECT_NO_THROW(validate_spec(spec));
}

TEST(SolveSpecValidation, NoSpareRecoveryNeedsACapableSolver) {
  SolveSpec spec = distributed_spec();
  spec.solver = "resilient-pcg";
  spec.strategy = Strategy::esrp;
  spec.spare_nodes = false;
  EXPECT_NO_THROW(validate_spec(spec));
  spec.solver = "dist-pipelined";
  expect_invalid(spec, "does not support no-spare recovery");
}

TEST(SolveSpecValidation, NoSpareRecoveryNeedsEsrpStrategy) {
  SolveSpec spec = distributed_spec();
  spec.solver = "resilient-pcg";
  spec.spare_nodes = false;
  for (Strategy s : {Strategy::none, Strategy::imcr}) {
    spec.strategy = s;
    expect_invalid(spec, "only defined for the esrp strategy");
  }
}

TEST(SolveSpecValidation, ResidualReplacementNeedsACapableSolver) {
  SolveSpec spec = distributed_spec();
  spec.solver = "resilient-pcg";
  spec.residual_replacement = 10;
  EXPECT_NO_THROW(validate_spec(spec));
  spec.solver = "dist-pipelined";
  expect_invalid(spec, "does not implement residual replacement");
}

TEST(SolveSpecValidation, DistPipelinedRejectsInitialGuess) {
  const Vector x0(64, 0.5); // poisson2d:8,8 has 64 rows
  SolveSpec spec = distributed_spec();
  spec.solver = "dist-pipelined";
  spec.x0 = x0;
  expect_invalid(spec, "initial guess");
  spec.solver = "resilient-pcg";
  EXPECT_NO_THROW(validate_spec(spec));
}

TEST(SolveSpecValidation, UnknownKeysGetDidYouMean) {
  SolveSpec spec = distributed_spec();
  spec.solver = "resilient-pgc";
  expect_invalid(spec, "did you mean \"resilient-pcg\"");

  spec = distributed_spec();
  spec.precond = "jacobbi";
  expect_invalid(spec, "did you mean \"jacobi\"");

  spec = distributed_spec();
  spec.matrix = "poisssson2d:8,8";
  expect_invalid(spec, "did you mean \"poisson2d\"");
}

TEST(SolveSpecValidation, SolveRejectsMismatchedVectors) {
  const Vector short_rhs(7, 1.0);
  SolveSpec spec;
  spec.matrix = "poisson2d:4,4"; // 16 rows
  spec.solver = "pcg";
  spec.precond = "identity";
  spec.rhs = short_rhs;
  EXPECT_THROW(solve(spec), Error);

  spec.rhs = {};
  spec.x0 = short_rhs;
  EXPECT_THROW(solve(spec), Error);
}

} // namespace
} // namespace esrp
