// SolverObserver semantics across the facade: on_iteration fires once per
// executed iteration body, on_failure/on_recovery bracket every failure
// event, and the rollback is visible as a decrease in the observed
// iteration numbers.
#include <gtest/gtest.h>

#include <vector>

#include "api/solve.hpp"
#include "netsim/failure.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

class RecordingObserver final : public SolverObserver {
public:
  void on_iteration(index_t iteration, real_t relres) override {
    iterations.push_back(iteration);
    relres_values.push_back(relres);
  }
  void on_failure(const FailureEvent& event) override {
    failures.push_back(event);
  }
  void on_recovery(const RecoveryRecord& record) override {
    recoveries.push_back(record);
  }

  std::vector<index_t> iterations;
  std::vector<real_t> relres_values;
  std::vector<FailureEvent> failures;
  std::vector<RecoveryRecord> recoveries;
};

class SolveObserver : public ::testing::Test {
protected:
  SolveObserver() : a_(poisson2d(12, 12)), b_(xp::make_rhs(a_)) {}

  SolveSpec base_spec() const {
    SolveSpec spec;
    spec.matrix_data = &a_;
    spec.rhs = b_;
    return spec;
  }

  CsrMatrix a_;
  Vector b_;
};

TEST_F(SolveObserver, ResilientSolveReportsFailureAndRecovery) {
  SolveSpec spec = base_spec();
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.nodes = 6;
  spec.strategy = Strategy::esrp;
  spec.interval = 5;
  spec.phi = 2;
  // Mid-interval failure (the storage pair lands at iterations 10/11), so
  // the recovery must roll back — the observer sees the iteration number
  // decrease.
  const FailureEvent event{13, contiguous_ranks(1, 2, 6)};
  spec.failures.push_back(event);

  RecordingObserver obs;
  const SolveReport report = solve(spec, &obs);
  ASSERT_TRUE(report.converged);

  // One call per executed iteration body plus the final converging check —
  // the uniform contract across all registered solvers.
  EXPECT_EQ(static_cast<index_t>(obs.iterations.size()),
            report.executed_iterations + 1);
  EXPECT_LT(obs.relres_values.back(), spec.rtol);

  // Exactly one failure, reported with the configured event...
  ASSERT_EQ(obs.failures.size(), 1u);
  EXPECT_EQ(obs.failures[0].iteration, event.iteration);
  EXPECT_EQ(obs.failures[0].ranks, event.ranks);
  // ...and one recovery whose record matches the report's.
  ASSERT_EQ(obs.recoveries.size(), 1u);
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_EQ(obs.recoveries[0].failed_at, report.recoveries[0].failed_at);
  EXPECT_EQ(obs.recoveries[0].restored_to, report.recoveries[0].restored_to);

  // The rollback is visible: some consecutive pair of observed iteration
  // numbers decreases (back to the restored iteration).
  bool saw_rollback = false;
  for (std::size_t k = 1; k < obs.iterations.size(); ++k)
    saw_rollback = saw_rollback || obs.iterations[k] < obs.iterations[k - 1];
  EXPECT_TRUE(saw_rollback);
}

TEST_F(SolveObserver, SequentialSolversReportEveryIteration) {
  for (const char* solver : {"pcg", "pipelined"}) {
    SCOPED_TRACE(solver);
    SolveSpec spec = base_spec();
    spec.solver = solver;
    spec.precond = "jacobi";

    RecordingObserver obs;
    const SolveReport report = solve(spec, &obs);
    ASSERT_TRUE(report.converged);

    // The callback fires before the convergence check, so the converging
    // iteration is observed too.
    EXPECT_EQ(static_cast<index_t>(obs.iterations.size()),
              report.executed_iterations + 1);
    // Iteration numbers are 0..C with no failures to roll back.
    for (std::size_t k = 0; k < obs.iterations.size(); ++k)
      EXPECT_EQ(obs.iterations[k], static_cast<index_t>(k));
    // The last observed relres is the converged one.
    EXPECT_EQ(obs.relres_values.back(), report.final_relres);
  }
}

TEST_F(SolveObserver, DistPipelinedReportsRecovery) {
  SolveSpec spec = base_spec();
  spec.solver = "dist-pipelined";
  spec.precond = "block-jacobi";
  spec.nodes = 6;
  spec.strategy = Strategy::imcr;
  spec.interval = 5;
  spec.phi = 2;
  spec.failures.push_back(FailureEvent{11, contiguous_ranks(1, 2, 6)});

  RecordingObserver obs;
  const SolveReport report = solve(spec, &obs);
  ASSERT_TRUE(report.converged);
  EXPECT_EQ(obs.failures.size(), 1u);
  EXPECT_EQ(obs.recoveries.size(), 1u);
  EXPECT_EQ(static_cast<index_t>(obs.iterations.size()),
            report.executed_iterations + 1);
  EXPECT_LT(obs.relres_values.back(), spec.rtol);
}

} // namespace
} // namespace esrp
