// The failure-process registry (scenario/failure_process.hpp): spec
// parsing, schedule shape invariants, the rack correlation decorator, and
// seed determinism. The "fixed" process must reproduce the paper's §5
// hand-placed protocol exactly — it is the bridge between the stochastic
// scenario lab and the existing golden-trajectory tests.
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/error.hpp"
#include "scenario/failure_process.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

TEST(FailureProcessRegistry, ListsAllFourProcesses) {
  const auto& reg = failure_process_registry();
  for (const char* key : {"fixed", "exponential", "weibull", "rack"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_FALSE(reg.help(key).empty()) << key;
  }
}

TEST(FailureProcessRegistry, UnknownKeySuggestsNearMiss) {
  try {
    resolve_failure_process("expnential:mean=3");
    FAIL() << "expected esrp::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exponential"), std::string::npos);
  }
}

TEST(FailureProcessRegistry, MalformedParametersThrow) {
  EXPECT_THROW(resolve_failure_process("exponential"), Error);      // no mean
  EXPECT_THROW(resolve_failure_process("exponential:mean=0"), Error);
  EXPECT_THROW(resolve_failure_process("exponential:mena=3"), Error);
  EXPECT_THROW(resolve_failure_process("weibull:k=0,scale=4"), Error);
  EXPECT_THROW(resolve_failure_process("weibull:k=1"), Error);      // no scale
  EXPECT_THROW(resolve_failure_process("fixed:it=0"), Error);
  EXPECT_THROW(resolve_failure_process("fixed:it=5,it=6"), Error);  // dup
  EXPECT_THROW(resolve_failure_process("rack:4"), Error);           // no inner
  EXPECT_THROW(resolve_failure_process("rack:0/fixed:it=5"), Error);
  EXPECT_THROW(resolve_failure_process("rack:x/fixed:it=5"), Error);
  // check_failure_process_key validates the rack's *inner* key too.
  EXPECT_THROW(check_failure_process_key("rack:2/expo:mean=3"), Error);
  EXPECT_NO_THROW(check_failure_process_key("rack:2/exponential:mean=3"));
}

TEST(FailureProcess, FixedReproducesHandPlacedSchedule) {
  const std::vector<FailureEvent> events =
      sample_failure_schedule("fixed:it=17,start=2,count=2", 8, 100, 123);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].iteration, 17);
  EXPECT_EQ(events[0].ranks, contiguous_ranks(2, 2, 8));
  EXPECT_EQ(events[0].cause, FailureCause::crash);
  // The fixed process consumes no randomness: any seed, same schedule.
  const std::vector<FailureEvent> other =
      sample_failure_schedule("fixed:it=17,start=2,count=2", 8, 100, 999);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].iteration, events[0].iteration);
  EXPECT_EQ(other[0].ranks, events[0].ranks);
}

/// The acceptance bridge: a solve driven by the sampled "fixed" schedule is
/// bitwise identical to the same solve with the hand-written FailureEvent —
/// the stochastic machinery adds nothing to the paper's protocol.
TEST(FailureProcess, FixedScheduleSolveMatchesHandWrittenEventBitwise) {
  const TestProblem prob = resolve_matrix("poisson2d:12,12");
  const Vector rhs = xp::make_rhs(prob.matrix);

  SolveSpec spec;
  spec.matrix_data = &prob.matrix;
  spec.rhs = rhs;
  spec.solver = "resilient-pcg";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.phi = 2;
  spec.failures.push_back(FailureEvent{17, contiguous_ranks(2, 2, 8)});
  const SolveReport manual = solve(spec);
  ASSERT_TRUE(manual.converged);

  SolveSpec sampled = spec;
  sampled.failures =
      sample_failure_schedule("fixed:it=17,start=2,count=2", 8, 100, 7);
  const SolveReport report = solve(sampled);
  ASSERT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, manual.iterations);
  EXPECT_EQ(report.final_relres, manual.final_relres);
  EXPECT_EQ(report.modeled_time, manual.modeled_time);
  EXPECT_EQ(fnv1a(report.x), fnv1a(manual.x));
  EXPECT_EQ(fnv1a(report.r), fnv1a(manual.r));
}

TEST(FailureProcess, ScheduleIterationsAreStrictlyIncreasingInHorizon) {
  // mean=1 stresses the integer-iteration bump: continuous arrivals often
  // land in the same unit interval, and the schedule must still be
  // strictly increasing (the engine requires pairwise distinct events).
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    const std::vector<FailureEvent> events =
        sample_failure_schedule("exponential:mean=1", 8, 50, seed);
    ASSERT_FALSE(events.empty());
    index_t prev = 0;
    for (const FailureEvent& e : events) {
      EXPECT_GT(e.iteration, prev);
      EXPECT_LT(e.iteration, 50);
      ASSERT_EQ(e.ranks.size(), 1u);
      EXPECT_GE(e.ranks[0], 0);
      EXPECT_LT(e.ranks[0], 8);
      EXPECT_EQ(e.cause, FailureCause::crash);
      prev = e.iteration;
    }
  }
}

TEST(FailureProcess, SameSeedSameScheduleDistinctSeedsDistinct) {
  const auto a = sample_failure_schedule("exponential:mean=10", 16, 200, 11);
  const auto b = sample_failure_schedule("exponential:mean=10", 16, 200, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration);
    EXPECT_EQ(a[i].ranks, b[i].ranks);
  }
  const auto c = sample_failure_schedule("exponential:mean=10", 16, 200, 12);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].iteration != c[i].iteration || a[i].ranks != c[i].ranks;
  EXPECT_TRUE(differs) << "seeds 11 and 12 produced identical schedules";
}

TEST(FailureProcess, RackDecoratorWidensEventsWithoutShiftingArrivals) {
  const auto plain = sample_failure_schedule("exponential:mean=8", 8, 120, 5);
  const auto rack =
      sample_failure_schedule("rack:3/exponential:mean=8", 8, 120, 5);
  ASSERT_FALSE(plain.empty());
  ASSERT_EQ(rack.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Inter-arrivals are drawn before ranks, so decorating never perturbs
    // the arrival sequence — only the blast radius.
    EXPECT_EQ(rack[i].iteration, plain[i].iteration);
    EXPECT_EQ(rack[i].ranks,
              contiguous_ranks(plain[i].ranks[0], 3, 8));
  }
}

TEST(FailureProcess, RackWidthMustLeaveASurvivor) {
  EXPECT_THROW(sample_failure_schedule("rack:8/exponential:mean=5", 8, 60, 1),
               std::exception);
  EXPECT_NO_THROW(
      sample_failure_schedule("rack:7/exponential:mean=5", 8, 60, 1));
}

TEST(FailureProcess, WeibullShapeOneMatchesExponentialDraws) {
  // k = 1 degenerates to Exp(1/scale); the inverse-CDF implementations
  // must agree bitwise on the same underlying uniforms.
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(weibull_interarrival(1.0, 30.0, a),
              exponential_interarrival(30.0, b));
}

} // namespace
} // namespace esrp
