// Silent-data-corruption injection and detection (scenario lab): a chosen
// bit of a chosen vector entry flips at a sampled iteration, and the
// residual-replacement machinery (van der Vorst & Ye, the paper's [27])
// flags it when the recursive and recomputed residual norms disagree.
// Detection is honest in both directions: a flip below the threshold (or
// with no replacement cadence configured) is *reported* undetected, never
// silently dropped from the report.
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/error.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

class SdcInjection : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    problem_ = new TestProblem(resolve_matrix("poisson2d:12,12"));
    rhs_ = new Vector(xp::make_rhs(problem_->matrix));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete rhs_;
    problem_ = nullptr;
    rhs_ = nullptr;
  }

  SolveSpec base_spec() const {
    SolveSpec spec;
    spec.matrix_data = &problem_->matrix;
    spec.rhs = *rhs_;
    spec.solver = "resilient-pcg";
    spec.nodes = 8;
    return spec;
  }

  static TestProblem* problem_;
  static Vector* rhs_;
};

TestProblem* SdcInjection::problem_ = nullptr;
Vector* SdcInjection::rhs_ = nullptr;

TEST_F(SdcInjection, HighBitFlipInPIsDetectedWithinCadence) {
  SolveSpec spec = base_spec();
  spec.residual_replacement = 5;
  spec.sdc_events.push_back(SdcEvent{12, "p", 30, 51});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.sdc.size(), 1u);
  const SdcRecord& rec = res.sdc[0];
  EXPECT_TRUE(rec.detected);
  // Replacement steps land where (j + 1) % cadence == 0; the first one at
  // or after the flip must already see the recursive/recomputed gap.
  EXPECT_GE(rec.detected_at, 12);
  EXPECT_LT(rec.detected_at, 12 + spec.residual_replacement);
  EXPECT_GT(rec.discrepancy, spec.sdc_threshold);
  // The flipped entry lives on the partition's owner of global row 30.
  EXPECT_GE(rec.rank, 0);
  EXPECT_LT(rec.rank, 8);
  EXPECT_EQ(rec.event.iteration, 12);
  EXPECT_EQ(rec.event.target, "p");
}

TEST_F(SdcInjection, FlipInXIsDetectedThroughTrueResidualDrift) {
  SolveSpec spec = base_spec();
  spec.residual_replacement = 5;
  spec.sdc_events.push_back(SdcEvent{12, "x", 100, 46});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.sdc.size(), 1u);
  EXPECT_TRUE(res.sdc[0].detected);
  EXPECT_LT(res.sdc[0].detected_at, 12 + spec.residual_replacement);
}

TEST_F(SdcInjection, WithoutReplacementCadenceTheFlipIsReportedUndetected) {
  SolveSpec spec = base_spec();
  spec.sdc_events.push_back(SdcEvent{12, "p", 30, 51});
  const SolveReport res = solve(spec);
  // No detector configured: the run still reports the injection, flagged
  // undetected — the honest "silent" in silent data corruption.
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.sdc.size(), 1u);
  EXPECT_FALSE(res.sdc[0].detected);
  EXPECT_EQ(res.sdc[0].detected_at, -1);
}

TEST_F(SdcInjection, LowBitFlipStaysBelowThresholdAndIsHonestlyUndetected) {
  SolveSpec spec = base_spec();
  spec.residual_replacement = 5;
  spec.sdc_events.push_back(SdcEvent{12, "p", 30, 10});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.sdc.size(), 1u);
  EXPECT_FALSE(res.sdc[0].detected);
  // The per-record discrepancy still carries the largest observed gap, so
  // a near-miss is visible in the report.
  EXPECT_LT(res.sdc[0].discrepancy, spec.sdc_threshold);
}

TEST_F(SdcInjection, TighterThresholdCatchesWhatTheDefaultMisses) {
  // Same low-bit flip, threshold dropped below the observed gap: the
  // detection boundary is the configured threshold, nothing hard-coded.
  SolveSpec undetected = base_spec();
  undetected.residual_replacement = 5;
  undetected.sdc_events.push_back(SdcEvent{12, "p", 30, 40});
  const SolveReport miss = solve(undetected);
  ASSERT_EQ(miss.sdc.size(), 1u);
  ASSERT_FALSE(miss.sdc[0].detected);
  ASSERT_GT(miss.sdc[0].discrepancy, 0);

  SolveSpec tight = undetected;
  tight.sdc_threshold = miss.sdc[0].discrepancy / 2;
  const SolveReport hit = solve(tight);
  ASSERT_EQ(hit.sdc.size(), 1u);
  EXPECT_TRUE(hit.sdc[0].detected);
}

TEST_F(SdcInjection, ObserverSeesSdcAsCauseTaggedFailure) {
  struct Recorder : SolverObserver {
    std::vector<FailureEvent> failures;
    void on_failure(const FailureEvent& e) override {
      failures.push_back(e);
    }
  } obs;
  SolveSpec spec = base_spec();
  spec.residual_replacement = 5;
  spec.sdc_events.push_back(SdcEvent{12, "p", 30, 51});
  const SolveReport res = solve(spec, &obs);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(obs.failures.size(), 1u);
  EXPECT_EQ(obs.failures[0].cause, FailureCause::sdc);
  EXPECT_EQ(obs.failures[0].iteration, 12);
  ASSERT_EQ(obs.failures[0].ranks.size(), 1u);
  EXPECT_EQ(obs.failures[0].ranks[0], res.sdc[0].rank);
}

TEST_F(SdcInjection, ValidationRejectsUnsupportedSolversAndBadEvents) {
  // dist-pipelined does not implement injection; claiming it must throw,
  // not silently skip the flip.
  SolveSpec spec = base_spec();
  spec.solver = "dist-pipelined";
  spec.sdc_events.push_back(SdcEvent{12, "p", 30, 51});
  EXPECT_THROW(validate_spec(spec), Error);

  SolveSpec seq = base_spec();
  seq.solver = "pcg";
  seq.strategy = Strategy::none;
  seq.sdc_events.push_back(SdcEvent{12, "p", 30, 51});
  EXPECT_THROW(validate_spec(seq), Error);

  SolveSpec bad_target = base_spec();
  bad_target.sdc_events.push_back(SdcEvent{12, "q", 30, 51});
  EXPECT_THROW(validate_spec(bad_target), Error);

  SolveSpec bad_bit = base_spec();
  bad_bit.sdc_events.push_back(SdcEvent{12, "p", 30, 64});
  EXPECT_THROW(validate_spec(bad_bit), Error);

  SolveSpec bad_threshold = base_spec();
  bad_threshold.sdc_threshold = 0;
  EXPECT_THROW(validate_spec(bad_threshold), Error);

  // Out-of-range entry index is only checkable against the built matrix:
  // the solver's constructor rejects it at solve time.
  SolveSpec bad_index = base_spec();
  bad_index.sdc_events.push_back(
      SdcEvent{12, "p", problem_->matrix.rows(), 51});
  EXPECT_THROW(solve(bad_index), Error);
}

TEST_F(SdcInjection, SdcCoexistsWithCrashRecovery) {
  // A crash and a bit-flip in one run: the crash rolls back and recovers,
  // the flip is detected on the replacement cadence, and both appear in
  // the report with their own cause.
  SolveSpec spec = base_spec();
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.phi = 2;
  spec.residual_replacement = 5;
  spec.failures.push_back(FailureEvent{17, {2, 3}});
  spec.sdc_events.push_back(SdcEvent{25, "p", 30, 51});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  ASSERT_EQ(res.sdc.size(), 1u);
  EXPECT_TRUE(res.sdc[0].detected);
}

} // namespace
} // namespace esrp
