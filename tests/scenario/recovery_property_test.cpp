// The property-test harness of the scenario engine: 50 seeded random
// scenarios (25 per distributed solver) across strategies, storage
// intervals, and stochastic failure processes, each checked against the
// failure-free reference trajectory of the same spec.
//
// What "exact recovery" means per path (docs/resilience.md):
//   - empty schedule, or checkpoint restores (IMCR) and scratch restarts:
//     bitwise identical to the failure-free run — the solver re-executes
//     the same arithmetic, so relres and the x/r vectors match hash-exact;
//   - ESRP reconstruction: the lost entries are rebuilt by *inner solves*
//     at inner_rtol = 1e-14, so the recovered run follows the reference
//     trajectory to reconstruction accuracy (same iteration count ±1,
//     solution within 1e-7), not bitwise.
// Every scenario additionally proves reproducibility: the identical spec
// rerun at 4 threads yields a bitwise-identical report (the fixed-grain
// reductions in docs/parallelism.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "scenario/failure_process.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr rank_t kNodes = 8;
constexpr real_t kEsrpRecoveryTol = 1e-7; ///< x deviation after reconstruction

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct PropertyCase {
  const char* solver;
  std::uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << c.solver << "/seed" << c.seed;
}

class ScenarioRecoveryProperty
    : public ::testing::TestWithParam<PropertyCase> {
protected:
  static void SetUpTestSuite() {
    problem_ = new TestProblem(resolve_matrix("poisson2d:12,12"));
    rhs_ = new Vector(xp::make_rhs(problem_->matrix));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete rhs_;
    problem_ = nullptr;
    rhs_ = nullptr;
  }

  SolveSpec base_spec(const char* solver) const {
    SolveSpec spec;
    spec.matrix_data = &problem_->matrix;
    spec.rhs = *rhs_;
    spec.solver = solver;
    spec.precond = "block-jacobi";
    spec.nodes = kNodes;
    spec.phi = 2;
    spec.threads = 1;
    return spec;
  }

  static TestProblem* problem_;
  static Vector* rhs_;
};

TestProblem* ScenarioRecoveryProperty::problem_ = nullptr;
Vector* ScenarioRecoveryProperty::rhs_ = nullptr;

TEST_P(ScenarioRecoveryProperty, RecoversExactlyOnRandomScenario) {
  const PropertyCase& param = GetParam();
  Rng rng(0x5CE9A210ull ^ (param.seed * 0x9E3779B97F4A7C15ull));

  // --- draw the scenario -------------------------------------------------
  const Strategy strategy =
      rng.next_below(2) == 0 ? Strategy::esrp : Strategy::imcr;
  const index_t intervals[] = {1, 5, 10, 20};
  const index_t interval = intervals[rng.next_below(4)];
  const char* processes[] = {
      "exponential:mean=8",  "exponential:mean=15", "exponential:mean=30",
      "weibull:k=2,scale=20", "rack:2/exponential:mean=20"};
  const std::string process = processes[rng.next_below(5)];

  // --- failure-free reference on the same spec ---------------------------
  SolveSpec ref_spec = base_spec(param.solver);
  ref_spec.strategy = Strategy::none;
  const SolveReport ref = solve(ref_spec);
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.iterations, 10);

  // --- the scenario run --------------------------------------------------
  SolveSpec spec = base_spec(param.solver);
  spec.strategy = strategy;
  spec.interval = interval;
  spec.failures = sample_failure_schedule(process, kNodes, ref.iterations,
                                          param.seed + 1);
  SCOPED_TRACE(::testing::Message()
               << to_string(strategy) << " T=" << interval << " " << process
               << " events=" << spec.failures.size());
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.executed_iterations, res.iterations);
  EXPECT_LE(res.recoveries.size(), spec.failures.size());

  const bool scratch = res.restarted_from_scratch();
  const bool bitwise_path = spec.failures.empty() ||
                            (strategy == Strategy::imcr && !scratch) ||
                            (scratch && res.recoveries.size() == 1);
  if (bitwise_path) {
    // Copy-restore recovery (or none at all) re-executes the reference
    // arithmetic verbatim: hash-exact solution and residual, identical
    // hexfloat relres.
    EXPECT_EQ(res.iterations, ref.iterations);
    EXPECT_EQ(res.final_relres, ref.final_relres);
    EXPECT_EQ(fnv1a(res.x), fnv1a(ref.x));
    EXPECT_EQ(fnv1a(res.r), fnv1a(ref.r));
  } else if (!scratch) {
    // ESRP reconstruction: exact to inner-solve accuracy, not bitwise.
    EXPECT_LE(std::llabs(static_cast<long long>(res.iterations) -
                         static_cast<long long>(ref.iterations)),
              1);
    EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), kEsrpRecoveryTol);
  } else {
    // A mid-run scratch restart replays a prefix before the restart, so
    // only the final answer is comparable.
    EXPECT_LT(true_relative_residual(problem_->matrix, *rhs_, res.x),
              1e-7);
  }

  // --- reproducibility: same spec, 4 threads, bitwise-identical report ---
  SolveSpec spec4 = spec;
  spec4.threads = 4;
  const SolveReport res4 = solve(spec4);
  ASSERT_TRUE(res4.converged);
  EXPECT_EQ(res4.iterations, res.iterations);
  EXPECT_EQ(res4.executed_iterations, res.executed_iterations);
  EXPECT_EQ(res4.final_relres, res.final_relres);
  EXPECT_EQ(res4.modeled_time, res.modeled_time);
  EXPECT_EQ(fnv1a(res4.x), fnv1a(res.x));
  EXPECT_EQ(fnv1a(res4.r), fnv1a(res.r));
}

// ----------------------------------------------------- cascading failures --
// Directed cascades the random processes only rarely sample: a second
// failure striking during the re-execution window of the first, and an
// all-ranks catastrophe. Each case is checked at 1 thread and proven
// bitwise-reproducible at 4 (the same contract as the random scenarios).

class CascadingRecovery : public ::testing::Test {
protected:
  static SolveSpec base_spec() {
    SolveSpec spec;
    spec.matrix = "poisson2d:12,12";
    spec.solver = "resilient-pcg";
    spec.precond = "block-jacobi";
    spec.nodes = kNodes;
    spec.phi = 2;
    spec.threads = 1;
    return spec;
  }

  /// Reference trajectory (failure-free, strategy none) of base_spec.
  static SolveReport reference() {
    SolveSpec ref = base_spec();
    ref.strategy = Strategy::none;
    return solve(ref);
  }

  /// Rerun `spec` at 4 threads and require a bitwise-identical report.
  static void expect_reproducible_at_4_threads(SolveSpec spec,
                                               const SolveReport& res) {
    spec.threads = 4;
    const SolveReport res4 = solve(spec);
    ASSERT_TRUE(res4.converged);
    EXPECT_EQ(res4.iterations, res.iterations);
    EXPECT_EQ(res4.executed_iterations, res.executed_iterations);
    EXPECT_EQ(res4.final_relres, res.final_relres);
    EXPECT_EQ(res4.modeled_time, res.modeled_time);
    EXPECT_EQ(fnv1a(res4.x), fnv1a(res.x));
    EXPECT_EQ(fnv1a(res4.r), fnv1a(res.r));
  }
};

TEST_F(CascadingRecovery, SecondFailureDuringReExecutionRecoversExactly) {
  // T = 20: the (20, 21) stage arms recovery; the failure at 25 rolls back
  // to 21, and the failure at 26 strikes during the re-executed iterations
  // — inside the same ESRP period, before any storage progress. Both climb
  // the ladder to the reconstruct rung off the same stage.
  const SolveReport ref = reference();
  ASSERT_TRUE(ref.converged);

  SolveSpec spec = base_spec();
  spec.strategy = Strategy::esrp;
  spec.interval = 20;
  spec.failures.push_back(FailureEvent{25, {1}});
  spec.failures.push_back(FailureEvent{26, {3}});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 2u);
  EXPECT_EQ(res.recoveries[0].rung, RecoveryRung::reconstruct);
  EXPECT_EQ(res.recoveries[1].rung, RecoveryRung::reconstruct);
  EXPECT_EQ(res.recoveries[0].copies_corrupt, 0);
  EXPECT_EQ(res.recoveries[1].copies_corrupt, 0);

  // Reconstruction-exact: the reference trajectory to inner-solve accuracy.
  EXPECT_LE(std::llabs(static_cast<long long>(res.iterations) -
                       static_cast<long long>(ref.iterations)),
            1);
  EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), kEsrpRecoveryTol);

  expect_reproducible_at_4_threads(spec, res);
}

TEST_F(CascadingRecovery, BackToBackFailuresInOneEsrpPeriodStayBounded) {
  // Three failures inside one period: recoveries 1-3 all replay from the
  // same stage with no storage progress between them, exercising the retry
  // budget (default max_attempts = 3 — the third one still reconstructs).
  const SolveReport ref = reference();
  ASSERT_TRUE(ref.converged);

  SolveSpec spec = base_spec();
  spec.strategy = Strategy::esrp;
  spec.interval = 20;
  spec.failures.push_back(FailureEvent{23, {1}});
  spec.failures.push_back(FailureEvent{24, {3}});
  spec.failures.push_back(FailureEvent{25, {5}});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 3u);
  for (const RecoveryRecord& rec : res.recoveries)
    EXPECT_EQ(rec.rung, RecoveryRung::reconstruct);
  EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), kEsrpRecoveryTol);

  expect_reproducible_at_4_threads(spec, res);
}

TEST_F(CascadingRecovery, AllRanksFailingRestartsFromScratchBitwise) {
  const SolveReport ref = reference();
  ASSERT_TRUE(ref.converged);

  SolveSpec spec = base_spec();
  spec.strategy = Strategy::esrp;
  spec.interval = 20;
  std::vector<rank_t> all;
  for (rank_t s = 0; s < kNodes; ++s) all.push_back(s);
  spec.failures.push_back(FailureEvent{30, all});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_EQ(res.recoveries[0].rung, RecoveryRung::scratch);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].ranks_lost, kNodes);

  // A single scratch restart replays the reference arithmetic verbatim.
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_EQ(res.final_relres, ref.final_relres);
  EXPECT_EQ(fnv1a(res.x), fnv1a(ref.x));
  EXPECT_EQ(fnv1a(res.r), fnv1a(ref.r));

  expect_reproducible_at_4_threads(spec, res);
}

TEST_F(CascadingRecovery, ShrinkPolicyShrinksThenRejoins) {
  // A failure before the first storage stage is unrecoverable; under the
  // "shrink" policy the survivors absorb the lost ranges and restart on
  // the shrunken map, and the retired rank rejoins at the next
  // storage-stage boundary.
  SolveSpec spec = base_spec();
  spec.strategy = Strategy::esrp;
  spec.interval = 20;
  spec.recovery_policy = "shrink";
  spec.failures.push_back(FailureEvent{5, {2}});
  const SolveReport res = solve(spec);
  ASSERT_TRUE(res.converged);
  ASSERT_GE(res.recoveries.size(), 2u);
  EXPECT_EQ(res.recoveries[0].rung, RecoveryRung::shrink);
  EXPECT_EQ(res.recoveries[0].ranks_absorbed, 1);
  EXPECT_EQ(res.recoveries[1].rung, RecoveryRung::rejoin);
  EXPECT_EQ(res.recoveries[1].ranks_rejoined, 1);

  // The ladder never changes the answer, only the route to it.
  TestProblem prob = resolve_matrix("poisson2d:12,12");
  const Vector rhs = xp::make_rhs(prob.matrix);
  EXPECT_LT(true_relative_residual(prob.matrix, rhs, res.x), 1e-7);

  expect_reproducible_at_4_threads(spec, res);
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  for (const char* solver : {"resilient-pcg", "dist-pipelined"})
    for (std::uint64_t seed = 0; seed < 25; ++seed)
      cases.push_back({solver, seed});
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string solver = info.param.solver;
  for (char& c : solver)
    if (c == '-') c = '_';
  return solver + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(FiftyScenarios, ScenarioRecoveryProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

} // namespace
} // namespace esrp
