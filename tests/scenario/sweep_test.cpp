// The scenario sweep runner (scenario/sweep.hpp): grid validation, cell
// enumeration, per-cell seed derivation, and the two determinism
// guarantees the CI artifact relies on — the same seed reproduces the
// byte-identical CSV at any thread count, and distinct seeds draw distinct
// schedules.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "scenario/sweep.hpp"

namespace esrp {
namespace {

SweepOptions small_options() {
  SweepOptions opts;
  opts.matrix = "poisson2d:10,10";
  opts.nodes = 6;
  opts.phi = 2;
  opts.repetitions = 2;
  opts.seed = 42;
  opts.threads = 1;
  return opts;
}

ParamGrid small_grid() {
  ParamGrid grid;
  grid["strategy"] = {std::string("esrp"), std::string("imcr")};
  grid["interval"] = {std::int64_t{5}, std::int64_t{10}};
  grid["process"] = {std::string("exponential:mean=20"),
                     std::string("fixed:it=12")};
  grid["cluster"] = {std::string("homogeneous"),
                     std::string("straggler:count=1,factor=4")};
  return grid;
}

TEST(SweepValidation, RejectsMalformedGridsBeforeAnySolve) {
  const SweepOptions opts = small_options();
  ParamGrid missing = small_grid();
  missing.erase("process");
  EXPECT_THROW(run_sweep(missing, opts), Error);

  ParamGrid empty_axis = small_grid();
  empty_axis["cluster"].clear();
  EXPECT_THROW(run_sweep(empty_axis, opts), Error);

  ParamGrid unknown_axis = small_grid();
  unknown_axis["storage"] = {std::string("x")};
  EXPECT_THROW(run_sweep(unknown_axis, opts), Error);

  ParamGrid bad_type = small_grid();
  bad_type["interval"] = {std::string("ten")};
  EXPECT_THROW(run_sweep(bad_type, opts), Error);

  ParamGrid bad_interval = small_grid();
  bad_interval["interval"] = {std::int64_t{0}};
  EXPECT_THROW(run_sweep(bad_interval, opts), Error);

  ParamGrid bad_process = small_grid();
  bad_process["process"] = {std::string("expnential:mean=3")};
  EXPECT_THROW(run_sweep(bad_process, opts), Error);

  ParamGrid bad_shape = small_grid();
  bad_shape["cluster"] = {std::string("stragler:factor=2")};
  EXPECT_THROW(run_sweep(bad_shape, opts), Error);

  SweepOptions bad_reps = small_options();
  bad_reps.repetitions = 0;
  EXPECT_THROW(run_sweep(small_grid(), bad_reps), Error);
}

TEST(SweepCells, EnumeratesTheFullCrossProduct) {
  const SweepResult result = run_sweep(small_grid(), small_options());
  EXPECT_EQ(result.cells.size(), 2u * 2u * 2u * 2u);
  EXPECT_GT(result.horizon, 0);
  // One failure-free reference per distinct cluster shape.
  EXPECT_EQ(result.reference_time.size(), 2u);
  for (const auto& [shape, t0] : result.reference_time) EXPECT_GT(t0, 0);
  for (const SweepCell& cell : result.cells) {
    EXPECT_EQ(cell.repetitions, 2);
    EXPECT_GE(cell.converged, 0);
    EXPECT_LE(cell.survived, cell.converged);
    EXPECT_GE(cell.survival_probability, 0.0);
    EXPECT_LE(cell.survival_probability, 1.0);
  }
}

TEST(SweepCells, FixedProcessCellsAlwaysDrawExactlyOneEvent) {
  const SweepResult result = run_sweep(small_grid(), small_options());
  for (const SweepCell& cell : result.cells) {
    if (cell.process == "fixed:it=12") {
      EXPECT_EQ(cell.mean_failures, 1.0) << cell.key();
    }
  }
}

TEST(SweepSeeds, CellSeedsAreOrderIndependentAndDistinct) {
  // FNV over the cell key: a cell's seeds never depend on which cells ran
  // before it, so pruning the grid leaves surviving cells untouched.
  const std::uint64_t a = cell_seed(42, "esrp|T=5|exponential:mean=20|h", 0);
  EXPECT_EQ(a, cell_seed(42, "esrp|T=5|exponential:mean=20|h", 0));
  EXPECT_NE(a, cell_seed(42, "esrp|T=5|exponential:mean=20|h", 1));
  EXPECT_NE(a, cell_seed(42, "imcr|T=5|exponential:mean=20|h", 0));
  EXPECT_NE(a, cell_seed(43, "esrp|T=5|exponential:mean=20|h", 0));
}

TEST(SweepDeterminism, SameSeedSameCsvAcrossRunsAndThreadCounts) {
  const SweepResult once = run_sweep(small_grid(), small_options());
  const SweepResult again = run_sweep(small_grid(), small_options());
  EXPECT_EQ(sweep_csv(once), sweep_csv(again));

  SweepOptions threaded = small_options();
  threaded.threads = 4;
  const SweepResult parallel = run_sweep(small_grid(), threaded);
  // The distributed solvers are bitwise deterministic across thread counts
  // (fixed-grain reductions), so the whole table is too.
  EXPECT_EQ(sweep_csv(once), sweep_csv(parallel));

  std::ostringstream table_once, table_parallel;
  print_sweep_table(once, table_once);
  print_sweep_table(parallel, table_parallel);
  EXPECT_EQ(table_once.str(), table_parallel.str());
}

TEST(SweepDeterminism, DistinctSeedsDrawDistinctSchedules) {
  SweepOptions other = small_options();
  other.seed = 43;
  const SweepResult a = run_sweep(small_grid(), small_options());
  const SweepResult b = run_sweep(small_grid(), other);
  // The stochastic cells must actually differ somewhere — equal tables
  // from different seeds would mean the seed never reaches the draws.
  bool differs = false;
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].process == "fixed:it=12") {
      // The deterministic process is seed-invariant by construction.
      EXPECT_EQ(a.cells[i].mean_failures, b.cells[i].mean_failures);
      continue;
    }
    differs = differs ||
              a.cells[i].mean_failures != b.cells[i].mean_failures ||
              a.cells[i].mean_overhead != b.cells[i].mean_overhead;
  }
  EXPECT_TRUE(differs);
}

TEST(SweepCsv, IsStableAndMachineReadable) {
  const SweepResult result = run_sweep(small_grid(), small_options());
  const std::string csv = sweep_csv(result);
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "strategy,interval,process,cluster,repetitions,converged,"
            "survived,survival_probability,mean_failures,mean_overhead,"
            "mean_wasted");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, result.cells.size());
}

} // namespace
} // namespace esrp
