// Statistical sanity for the inverse-CDF samplers: with 10k seeded draws
// the empirical mean inter-arrival must sit within 5% of the analytic
// mean. The draws are deterministic (splitmix64), so these are exact
// regression tests dressed as statistics — a change in the sampler that
// shifts the distribution fails loudly, a refactor that preserves it
// passes bitwise.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "scenario/failure_process.hpp"

namespace esrp {
namespace {

constexpr int kDraws = 10000;
constexpr double kTolerance = 0.05; ///< relative error on the mean

template <typename Draw>
double empirical_mean(std::uint64_t seed, Draw&& draw) {
  Rng rng(seed);
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += draw(rng);
  return sum / kDraws;
}

TEST(ScenarioStatistics, ExponentialMeanWithinFivePercent) {
  for (const double mean : {5.0, 37.0, 200.0}) {
    const double got = empirical_mean(
        0xE1ull, [mean](Rng& r) { return exponential_interarrival(mean, r); });
    EXPECT_NEAR(got, mean, kTolerance * mean) << "mean=" << mean;
  }
}

TEST(ScenarioStatistics, WeibullShapeOneMeanMatchesExponential) {
  // Weibull(k = 1, scale) is Exp(1/scale): mean = scale.
  for (const double scale : {5.0, 37.0}) {
    const double got = empirical_mean(0x3Bull, [scale](Rng& r) {
      return weibull_interarrival(1.0, scale, r);
    });
    EXPECT_NEAR(got, scale, kTolerance * scale) << "scale=" << scale;
  }
}

TEST(ScenarioStatistics, WeibullShapeTwoMeanMatchesGammaFormula) {
  // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k); k = 2 gives
  // lambda * Gamma(1.5) = lambda * sqrt(pi) / 2.
  const double scale = 40.0;
  const double expected = scale * std::sqrt(std::acos(-1.0)) / 2.0;
  const double got = empirical_mean(0x77ull, [scale](Rng& r) {
    return weibull_interarrival(2.0, scale, r);
  });
  EXPECT_NEAR(got, expected, kTolerance * expected);
}

TEST(ScenarioStatistics, DrawsAreNonNegativeAndFinite) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double e = exponential_interarrival(3.0, rng);
    const double w = weibull_interarrival(0.7, 3.0, rng);
    EXPECT_TRUE(std::isfinite(e) && e >= 0);
    EXPECT_TRUE(std::isfinite(w) && w >= 0);
  }
}

/// The renewal schedule's event count tracks horizon / mean — the schedule
/// builder neither drops nor duplicates arrivals on the way to integer
/// iterations (a weak law check over many seeds, deterministic in sum).
TEST(ScenarioStatistics, ScheduleDensityTracksMeanInterArrival) {
  const double mean = 25.0;
  const index_t horizon = 500;
  double total_events = 0;
  const int runs = 200;
  for (int s = 0; s < runs; ++s)
    total_events += static_cast<double>(
        sample_failure_schedule("exponential:mean=25", 8, horizon,
                                1000 + static_cast<std::uint64_t>(s))
            .size());
  const double per_run = total_events / runs;
  const double expected = static_cast<double>(horizon) / mean;
  EXPECT_NEAR(per_run, expected, 0.1 * expected);
}

} // namespace
} // namespace esrp
