// Heterogeneous cluster shapes (scenario/cluster_shape.hpp +
// netsim/cost_model.hpp): the shape registry, the HeterogeneousCostModel
// accounting semantics, and the load-bearing invariant that cost models
// change *modeled time only* — the floating-point trajectory is identical
// on every shape (cost accounting never feeds back into the arithmetic).
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/error.hpp"
#include "netsim/cost_model.hpp"
#include "scenario/cluster_shape.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

std::uint64_t fnv1a(const Vector& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(real_t); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

TEST(ClusterShapeRegistry, ListsAllFourShapes) {
  const auto& reg = cluster_shape_registry();
  for (const char* key :
       {"homogeneous", "straggler", "slow-rack", "slow-links"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_FALSE(reg.help(key).empty()) << key;
  }
}

TEST(ClusterShapeRegistry, SpecValidation) {
  const CostParams base;
  EXPECT_THROW(resolve_cluster_shape("stragler:factor=2", base, 8), Error);
  EXPECT_THROW(resolve_cluster_shape("homogeneous:x=1", base, 8), Error);
  EXPECT_THROW(resolve_cluster_shape("straggler:factor=0", base, 8), Error);
  EXPECT_THROW(resolve_cluster_shape("straggler:count=9,factor=2", base, 8),
               Error);
  EXPECT_THROW(resolve_cluster_shape("slow-rack:start=8,factor=2", base, 8),
               Error);
  EXPECT_THROW(resolve_cluster_shape("slow-links", base, 8), Error);
  EXPECT_NO_THROW(resolve_cluster_shape("", base, 8)); // empty = homogeneous
  EXPECT_NO_THROW(resolve_cluster_shape("straggler:factor=4", base, 8));
}

TEST(HeterogeneousCostModel, NoOverridesDelegatesToHomogeneousBitwise) {
  const CostParams base;
  const HeterogeneousCostModel model(base);
  EXPECT_TRUE(model.homogeneous());
  for (const std::size_t bytes : {8u, 1024u, 65536u}) {
    EXPECT_EQ(model.message_time(0, 5, bytes), message_time(base, bytes));
    EXPECT_EQ(model.allreduce_time(8, bytes), allreduce_time(base, 8, bytes));
  }
  EXPECT_EQ(model.compute_time(3, 1e6), compute_time(base, 1e6));
}

TEST(HeterogeneousCostModel, GammaMultiplierSlowsOnlyThatRank) {
  HeterogeneousCostModel model;
  model.set_gamma_multiplier(2, 4.0);
  EXPECT_FALSE(model.homogeneous());
  EXPECT_EQ(model.compute_time(2, 1e6),
            4.0 * compute_time(model.base(), 1e6));
  EXPECT_EQ(model.compute_time(0, 1e6), compute_time(model.base(), 1e6));
}

TEST(HeterogeneousCostModel, LinkMultiplierChargesTheSlowerEndpoint) {
  HeterogeneousCostModel model;
  model.set_link_multiplier(1, 3.0);
  const std::size_t bytes = 4096;
  const double fast = message_time(model.base(), bytes);
  EXPECT_EQ(model.message_time(0, 2, bytes), fast); // untouched link
  EXPECT_EQ(model.message_time(0, 1, bytes), 3.0 * fast);
  EXPECT_EQ(model.message_time(1, 0, bytes), 3.0 * fast); // undirected
}

TEST(HeterogeneousCostModel, AbsoluteLinkOverrideBeatsMultipliers) {
  HeterogeneousCostModel model;
  model.set_link_multiplier(1, 3.0);
  model.set_link(1, 4, 1e-3, 1e-8);
  const std::size_t bytes = 100;
  EXPECT_EQ(model.message_time(4, 1, bytes),
            1e-3 + static_cast<double>(bytes) * 1e-8);
  // Last call wins on the same undirected link.
  model.set_link(4, 1, 2e-3, 1e-8);
  EXPECT_EQ(model.message_time(1, 4, bytes),
            2e-3 + static_cast<double>(bytes) * 1e-8);
}

TEST(HeterogeneousCostModel, AllreduceChargesTheWorstLink) {
  HeterogeneousCostModel model;
  model.set_link_multiplier(5, 2.5);
  const std::size_t bytes = 800;
  // Recursive doubling eventually crosses every link, so each of the
  // 2*ceil(log2 N) rounds pays the slowest one.
  EXPECT_EQ(model.allreduce_time(8, bytes),
            2.5 * allreduce_time(model.base(), 8, bytes));
}

class ClusterShapeSolve : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    problem_ = new TestProblem(resolve_matrix("poisson2d:12,12"));
    rhs_ = new Vector(xp::make_rhs(problem_->matrix));
  }
  static void TearDownTestSuite() {
    delete problem_;
    delete rhs_;
    problem_ = nullptr;
    rhs_ = nullptr;
  }

  SolveSpec base_spec() const {
    SolveSpec spec;
    spec.matrix_data = &problem_->matrix;
    spec.rhs = *rhs_;
    spec.solver = "resilient-pcg";
    spec.nodes = 8;
    spec.strategy = Strategy::esrp;
    spec.interval = 10;
    spec.phi = 2;
    spec.failures.push_back(FailureEvent{17, {2, 3}});
    return spec;
  }

  static TestProblem* problem_;
  static Vector* rhs_;
};

TestProblem* ClusterShapeSolve::problem_ = nullptr;
Vector* ClusterShapeSolve::rhs_ = nullptr;

TEST_F(ClusterShapeSolve, ShapesChangeModeledTimeButNeverTheTrajectory) {
  const SolveReport ref = solve(base_spec());
  ASSERT_TRUE(ref.converged);

  for (const char* shape :
       {"straggler:count=1,factor=4", "slow-rack:start=0,count=2,factor=8",
        "slow-links:factor=2"}) {
    SolveSpec spec = base_spec();
    spec.cluster_shape = shape;
    const SolveReport res = solve(spec);
    SCOPED_TRACE(shape);
    ASSERT_TRUE(res.converged);
    // Identical arithmetic: iteration count, hexfloat relres, and the
    // full x/r vectors are bitwise equal across shapes...
    EXPECT_EQ(res.iterations, ref.iterations);
    EXPECT_EQ(res.executed_iterations, ref.executed_iterations);
    EXPECT_EQ(res.final_relres, ref.final_relres);
    EXPECT_EQ(fnv1a(res.x), fnv1a(ref.x));
    EXPECT_EQ(fnv1a(res.r), fnv1a(ref.r));
    // ...while the accounting reflects the slower cluster.
    EXPECT_GT(res.modeled_time, ref.modeled_time);
  }
}

TEST_F(ClusterShapeSolve, ExplicitHomogeneousIsBitwiseTheDefault) {
  const SolveReport ref = solve(base_spec());
  SolveSpec spec = base_spec();
  spec.cluster_shape = "homogeneous";
  const SolveReport res = solve(spec);
  ASSERT_TRUE(ref.converged && res.converged);
  EXPECT_EQ(res.modeled_time, ref.modeled_time);
  EXPECT_EQ(res.final_relres, ref.final_relres);
  EXPECT_EQ(fnv1a(res.x), fnv1a(ref.x));
}

TEST_F(ClusterShapeSolve, UnknownShapeIsRejectedBeforeTheSolve) {
  SolveSpec spec = base_spec();
  spec.cluster_shape = "straggglers:factor=2";
  EXPECT_THROW(validate_spec(spec), Error);
}

} // namespace
} // namespace esrp
