// Exact state reconstruction on the distributed pipelined solver — the
// reference [16] scheme carried by the solver-agnostic resilience engine.
// Recovery exactness is measured against the failure-free trajectory: the
// reconstruction repairs the eight recurrence vectors to inner-solve
// accuracy (1e-14), so a recovered run must converge in the same number of
// trajectory iterations with a solution within a pinned tolerance.
#include <gtest/gtest.h>

#include "api/solve.hpp"
#include "common/error.hpp"
#include "core/metrics.hpp"
#include "pipelined/dist_pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

constexpr real_t kRecoveryTol = 1e-9; ///< x deviation from failure-free run

struct System {
  CsrMatrix a;
  Vector b;
  BlockRowPartition part;
  System(CsrMatrix m, rank_t nodes)
      : a(std::move(m)), b(xp::make_rhs(a)), part(a.rows(), nodes) {}
};

DistPipelinedResult run(System& s, const DistPipelinedOptions& opts,
                        SimCluster* cluster_out = nullptr) {
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedPcg solver(s.a, precond, cluster, opts);
  DistPipelinedResult res = solver.solve(s.b);
  if (cluster_out) *cluster_out = cluster;
  return res;
}

TEST(DistPipelinedEsrp, FailureFreeRunFollowsSameTrajectory) {
  System s(poisson2d(12, 12), 8);
  const DistPipelinedResult ref = run(s, DistPipelinedOptions{});

  for (index_t T : {1, 5, 20}) {
    DistPipelinedOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = T;
    opts.phi = 2;
    const DistPipelinedResult res = run(s, opts);
    ASSERT_TRUE(res.converged) << "T=" << T;
    EXPECT_EQ(res.trajectory_iterations, ref.trajectory_iterations);
    // Storage stages only disseminate copies; the arithmetic is untouched.
    EXPECT_EQ(res.x, ref.x);
  }
}

TEST(DistPipelinedEsrp, RecoversToFailureFreeTrajectory) {
  System s(poisson2d(12, 12), 8);
  const DistPipelinedResult ref = run(s, DistPipelinedOptions{});
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.trajectory_iterations, 25);

  for (index_t T : {1, 5, 10}) {
    DistPipelinedOptions opts;
    opts.strategy = Strategy::esrp;
    opts.interval = T;
    opts.phi = 2;
    opts.failure.iteration = 17;
    opts.failure.ranks = {2, 3};
    const DistPipelinedResult res = run(s, opts);
    ASSERT_TRUE(res.converged) << "T=" << T;
    ASSERT_EQ(res.recoveries.size(), 1u);
    EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
    // Exactness: same iteration count to convergence, solution within the
    // reconstruction accuracy of the undisturbed run.
    EXPECT_EQ(res.trajectory_iterations, ref.trajectory_iterations);
    EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), kRecoveryTol);
  }
}

TEST(DistPipelinedEsrp, RollsBackToFirstStorageIteration) {
  // Leading copy pairing (ref. [16]): snapshot t needs copies t and t+1,
  // so the rollback target is the *first* storage iteration of the stage.
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 17; // stage at (10, 11): target 10
  opts.failure.ranks = {1, 2};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_EQ(res.recoveries[0].restored_to, 10);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 7);
  // redone iterations + the recovery body itself
  EXPECT_EQ(res.executed_iterations, res.trajectory_iterations + 7 + 1);
}

TEST(DistPipelinedEsrp, ClassicEsrIntervalOneRollsBackOneIteration) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 1;
  opts.phi = 1;
  opts.failure.iteration = 20;
  opts.failure.ranks = {4};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  // With per-iteration storage the newest recoverable state is j-1: the
  // inversion needs the *next* iteration's copy.
  EXPECT_EQ(res.recoveries[0].restored_to, 19);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 1);
}

TEST(DistPipelinedEsrp, TwoEventScheduleBothRecover) {
  System s(poisson2d(12, 12), 8);
  const DistPipelinedResult ref = run(s, DistPipelinedOptions{});
  ASSERT_GT(ref.trajectory_iterations, 30);

  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.phi = 2;
  opts.failure.iteration = 13;
  opts.failure.ranks = {1, 2};
  opts.extra_failures.push_back(FailureEvent{28, {5, 6}});
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 2u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_FALSE(res.recoveries[1].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].failed_at, 13);
  EXPECT_EQ(res.recoveries[0].restored_to, 10);
  EXPECT_EQ(res.recoveries[1].failed_at, 28);
  // The second stage's redundancy was replenished after the first rollback.
  EXPECT_EQ(res.recoveries[1].restored_to, 25);
  EXPECT_EQ(res.trajectory_iterations, ref.trajectory_iterations);
  EXPECT_LT(vec_rel_diff_inf(res.x, ref.x), kRecoveryTol);
}

TEST(DistPipelinedEsrp, PhiTwoSurvivesContiguousBlockOfTwo) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 22;
  opts.failure.ranks = contiguous_ranks(5, 2, 8); // psi = phi
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 20);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(DistPipelinedEsrp, FailureBeforeFirstStageRestartsFromScratch) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 1;
  opts.failure.iteration = 5; // first stage completes at iteration 11
  opts.failure.ranks = {0};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 0);
}

TEST(DistPipelinedEsrp, StorageStagesChargeRedundancyTraffic) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 17;
  opts.failure.ranks = {3};
  SimCluster cluster(s.part);
  const DistPipelinedResult res = run(s, opts, &cluster);
  ASSERT_TRUE(res.converged);
  // The dedicated p-copy dissemination (the pipelined SpMV input is m, so
  // nothing rides the regular exchange) and the recovery gathers.
  EXPECT_GT(cluster.ledger().totals(CommCategory::aspmv_extra).bytes, 0u);
  EXPECT_GT(cluster.ledger().totals(CommCategory::recovery).messages, 0u);
  EXPECT_EQ(cluster.ledger().totals(CommCategory::checkpoint).bytes, 0u);
}

TEST(DistPipelinedEsrp, MatrixFormulationRecoversOnSameTrajectory) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions base;
  base.strategy = Strategy::esrp;
  base.interval = 10;
  base.phi = 2;
  base.failure.iteration = 17;
  base.failure.ranks = {1, 2};
  const DistPipelinedResult inv = run(s, base);

  DistPipelinedOptions mat = base;
  mat.precond_formulation = PrecondFormulation::matrix;
  const DistPipelinedResult res = run(s, mat);
  ASSERT_TRUE(inv.converged && res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].inner_iterations_precond, 0);
  EXPECT_EQ(res.trajectory_iterations, inv.trajectory_iterations);
  EXPECT_LT(vec_rel_diff_inf(res.x, inv.x), 1e-6);
}

/// The facade path: `--solver pipelined --strategy esrp` territory. The
/// driver routes the same direct API, so the facade solve is bitwise equal.
TEST(DistPipelinedEsrp, FacadeDrivenEsrpSolveMatchesDirectApi) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 5;
  opts.phi = 2;
  opts.failure.iteration = 13;
  opts.failure.ranks = {1, 2};
  opts.extra_failures.push_back(FailureEvent{28, {5, 6}});
  SimCluster cluster(s.part, xp::calibrated_cost(s.a, 8));
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedPcg solver(s.a, precond, cluster, opts);
  const DistPipelinedResult direct = solver.solve(s.b);
  ASSERT_TRUE(direct.converged);
  ASSERT_EQ(direct.recoveries.size(), 2u);

  SolveSpec spec;
  spec.matrix_data = &s.a;
  spec.rhs = s.b;
  spec.solver = "dist-pipelined";
  spec.precond = "block-jacobi";
  spec.nodes = 8;
  spec.strategy = Strategy::esrp;
  spec.interval = 5;
  spec.phi = 2;
  spec.failures.push_back(FailureEvent{13, {1, 2}});
  spec.failures.push_back(FailureEvent{28, {5, 6}});
  const SolveReport facade = solve(spec);
  EXPECT_TRUE(facade.converged);
  EXPECT_EQ(facade.iterations, direct.trajectory_iterations);
  EXPECT_EQ(facade.executed_iterations, direct.executed_iterations);
  EXPECT_EQ(facade.final_relres, direct.final_relres);
  EXPECT_EQ(facade.modeled_time, direct.modeled_time);
  ASSERT_EQ(facade.recoveries.size(), 2u);
  EXPECT_EQ(facade.recoveries[1].restored_to,
            direct.recoveries[1].restored_to);
  EXPECT_EQ(facade.x, direct.x);
  EXPECT_EQ(facade.r, direct.r);
}

} // namespace
} // namespace esrp
