#include "pipelined/dist_pipelined_pcg.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "pipelined/pipelined_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp {
namespace {

struct System {
  CsrMatrix a;
  Vector b;
  BlockRowPartition part;
  System(CsrMatrix m, rank_t nodes)
      : a(std::move(m)), b(xp::make_rhs(a)), part(a.rows(), nodes) {}
};

DistPipelinedResult run(System& s, DistPipelinedOptions opts,
                        CostParams cost = CostParams{}) {
  SimCluster cluster(s.part, cost);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedPcg solver(s.a, precond, cluster, opts);
  return solver.solve(s.b);
}

TEST(DistPipelined, ConvergesToCorrectSolution) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(true_relative_residual(s.a, s.b, res.x), 1e-7);
}

TEST(DistPipelined, MatchesSequentialPipelinedTrajectory) {
  System s(poisson2d(10, 10), 5);
  DistPipelinedOptions opts;
  const DistPipelinedResult dist = run(s, opts);

  BlockJacobiPreconditioner seq_p(s.a, s.part, 10);
  Vector x(s.b.size(), 0);
  const PipelinedPcgResult seq = pipelined_pcg_solve(s.a, s.b, x, &seq_p);
  ASSERT_TRUE(dist.converged && seq.converged);
  EXPECT_NEAR(static_cast<double>(dist.trajectory_iterations),
              static_cast<double>(seq.iterations), 2);
  EXPECT_LT(vec_rel_diff_inf(dist.x, x), 1e-8);
}

TEST(DistPipelined, HidesReductionLatency) {
  // At extreme latency the classic PCG pays 3 allreduce latencies per
  // iteration on the critical path; the pipelined solver overlaps its
  // single reduction with compute. Compare modeled times.
  System s(poisson2d(16, 16), 16);
  CostParams slow;
  slow.alpha_s = 1e-3; // 1 ms latency: reduction-bound regime
  const DistPipelinedResult piped = run(s, DistPipelinedOptions{}, slow);

  SimCluster cluster(s.part, slow);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  ResilienceOptions classic_opts;
  ResilientPcg classic(s.a, precond, cluster, classic_opts);
  const ResilientSolveResult classic_res = classic.solve(s.b);

  ASSERT_TRUE(piped.converged && classic_res.converged);
  const double per_iter_piped =
      piped.modeled_time / static_cast<double>(piped.executed_iterations);
  const double per_iter_classic =
      classic_res.modeled_time /
      static_cast<double>(classic_res.executed_iterations);
  EXPECT_LT(per_iter_piped, 0.7 * per_iter_classic);
}

TEST(DistPipelined, ImcrCheckpointRecoversExactly) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions plain;
  const DistPipelinedResult ref = run(s, plain);
  ASSERT_GT(ref.trajectory_iterations, 25);

  DistPipelinedOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 17;
  opts.failure.ranks = {2, 3};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 10);
  EXPECT_EQ(res.recoveries[0].wasted_iterations, 7);
  // Checkpoint restore is bitwise: same trajectory end as the plain run.
  EXPECT_EQ(res.trajectory_iterations, ref.trajectory_iterations);
  EXPECT_EQ(res.x, ref.x);
}

TEST(DistPipelined, ImcrSurvivesContiguousBlockEqualToPhi) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 3;
  opts.failure.iteration = 22;
  opts.failure.ranks = contiguous_ranks(5, 3, 8); // psi = phi block
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_FALSE(res.recoveries[0].restarted_from_scratch);
  EXPECT_EQ(res.recoveries[0].restored_to, 20);
}

TEST(DistPipelined, ImcrAllBuddiesDeadFallsBackToRestart) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::imcr;
  opts.interval = 10;
  opts.phi = 1; // single buddy: killing rank s and s+1 destroys both copies
  opts.failure.iteration = 22;
  opts.failure.ranks = {4, 5};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
}

TEST(DistPipelined, FailureWithoutCheckpointRestarts) {
  System s(poisson2d(12, 12), 8);
  DistPipelinedOptions opts;
  opts.failure.iteration = 15;
  opts.failure.ranks = {1};
  const DistPipelinedResult res = run(s, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.recoveries.size(), 1u);
  EXPECT_TRUE(res.recoveries[0].restarted_from_scratch);
}

TEST(DistPipelined, NoSpareRecoveryRejected) {
  // ESRP itself is supported (tests/pipelined/dist_pipelined_esrp_test.cpp);
  // the no-spare repartitioning path is not defined for the pipelined plans.
  System s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedOptions opts;
  opts.strategy = Strategy::esrp;
  opts.spare_nodes = false;
  EXPECT_THROW(DistPipelinedPcg(s.a, precond, cluster, opts), Error);
}

TEST(DistPipelined, ResidualReplacementRejected) {
  System s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedOptions opts;
  opts.residual_replacement = 10;
  EXPECT_THROW(DistPipelinedPcg(s.a, precond, cluster, opts), Error);
}

TEST(DistPipelined, DuplicateEventIterationsRejected) {
  System s(poisson2d(6, 6), 4);
  SimCluster cluster(s.part);
  BlockJacobiPreconditioner precond(s.a, s.part, 10);
  DistPipelinedOptions opts;
  opts.failure.iteration = 5;
  opts.failure.ranks = {0};
  opts.extra_failures.push_back(FailureEvent{5, {1}});
  EXPECT_THROW(DistPipelinedPcg(s.a, precond, cluster, opts), Error);
}

} // namespace
} // namespace esrp
