#include "pipelined/pipelined_pcg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/pcg.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

namespace esrp {
namespace {

TEST(PipelinedPcg, SolvesLaplaceToTolerance) {
  const CsrMatrix a = laplace1d(60);
  const Vector b(60, 1);
  Vector x(60, 0);
  const PipelinedPcgResult res = pipelined_pcg_solve(a, b, x, nullptr);
  ASSERT_TRUE(res.converged);
  Vector ax(60);
  a.spmv(x, ax);
  EXPECT_LT(vec_dist2(ax, b) / vec_norm2(b), 1e-7);
}

TEST(PipelinedPcg, MatchesClassicPcgIterationCount) {
  // Mathematically equivalent recurrences: iteration counts agree up to a
  // small floating-point margin.
  const CsrMatrix a = poisson2d(15, 15);
  const Vector b(225, 1);
  Vector x1(225, 0), x2(225, 0);
  const PcgResult classic = pcg_solve(a, b, x1, nullptr);
  const PipelinedPcgResult piped = pipelined_pcg_solve(a, b, x2, nullptr);
  ASSERT_TRUE(classic.converged && piped.converged);
  EXPECT_NEAR(static_cast<double>(piped.iterations),
              static_cast<double>(classic.iterations), 3);
  EXPECT_LT(vec_rel_diff_inf(x2, x1), 1e-6);
}

TEST(PipelinedPcg, MatchesDenseSolve) {
  const CsrMatrix a = banded_spd(30, 4, 0.6, 5);
  Rng rng(8);
  Vector b(30);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vector x(30, 0);
  PipelinedPcgOptions opts;
  opts.rtol = 1e-12;
  const PipelinedPcgResult res = pipelined_pcg_solve(a, b, x, nullptr, opts);
  ASSERT_TRUE(res.converged);
  const Vector x_ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);
}

TEST(PipelinedPcg, PreconditioningReducesIterations) {
  const CsrMatrix a = diffusion3d_27pt(5, 5, 5, 1e3, 3);
  Rng rng(4);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  BlockJacobiPreconditioner p(a, 10);
  Vector x1(b.size(), 0), x2(b.size(), 0);
  const PipelinedPcgResult plain = pipelined_pcg_solve(a, b, x1, nullptr);
  const PipelinedPcgResult prec = pipelined_pcg_solve(a, b, x2, &p);
  ASSERT_TRUE(plain.converged && prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(PipelinedPcg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplace1d(8);
  const Vector b(8, 0);
  Vector x(8, 3);
  const PipelinedPcgResult res = pipelined_pcg_solve(a, b, x, nullptr);
  EXPECT_TRUE(res.converged);
  for (real_t v : x) EXPECT_DOUBLE_EQ(v, 0);
}

TEST(PipelinedPcg, MaxIterationCapHonored) {
  const CsrMatrix a = poisson2d(20, 20);
  const Vector b(400, 1);
  Vector x(400, 0);
  PipelinedPcgOptions opts;
  opts.max_iterations = 4;
  const PipelinedPcgResult res = pipelined_pcg_solve(a, b, x, nullptr, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 4);
}

TEST(PipelinedPcg, IndefiniteMatrixRejected) {
  CooBuilder bb(2, 2);
  bb.add(0, 0, 1);
  bb.add(1, 1, -1);
  const CsrMatrix a = bb.to_csr();
  const Vector b{1, 1};
  Vector x(2, 0);
  EXPECT_THROW(pipelined_pcg_solve(a, b, x, nullptr), Error);
}

} // namespace
} // namespace esrp
