#include "xp/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace esrp::xp {
namespace {

TEST(ConvergenceTrace, RecordsStepsMonotonically) {
  ConvergenceTrace t;
  t.record(0, 1.0);
  t.record(1, 0.5);
  t.record(2, 0.25);
  ASSERT_EQ(t.points().size(), 3u);
  EXPECT_EQ(t.points()[2].step, 2);
  EXPECT_EQ(t.points()[2].iteration, 2);
  EXPECT_DOUBLE_EQ(t.points()[1].relres, 0.5);
}

TEST(ConvergenceTrace, NegativeResidualRejected) {
  ConvergenceTrace t;
  EXPECT_THROW(t.record(0, -1.0), Error);
}

TEST(ConvergenceTrace, RollbackStepsDetectIterationDecrease) {
  ConvergenceTrace t;
  for (index_t j : {0, 1, 2, 3, 1, 2, 3, 4}) t.record(j, 0.1);
  const auto rb = t.rollback_steps();
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb[0], 4); // the step where the iteration number went 3 -> 1
}

TEST(ConvergenceTrace, CsvHasHeaderAndOneLinePerPoint) {
  ConvergenceTrace t;
  t.record(0, 1.0);
  t.record(1, 1e-3);
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("step,iteration,relres"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("1,1,0.001"), std::string::npos);
}

TEST(ConvergenceTrace, AsciiChartHasRequestedShape) {
  ConvergenceTrace t;
  for (int k = 0; k < 50; ++k)
    t.record(k, std::pow(10.0, -k / 10.0));
  const std::string chart = t.ascii_chart(40, 8);
  // 1 label + 8 rows + 1 axis = 10 lines.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 10);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("log10(relres)"), std::string::npos);
}

TEST(ConvergenceTrace, EmptyTraceChartIsSafe) {
  ConvergenceTrace t;
  EXPECT_EQ(t.ascii_chart(), "(empty trace)\n");
  EXPECT_THROW(t.ascii_chart(2, 2), Error);
}

TEST(ConvergenceTrace, HookCapturesResilientSolveWithRollback) {
  const CsrMatrix a = poisson2d(12, 12);
  const Vector b = make_rhs(a);
  const BlockRowPartition part(a.rows(), 8);
  SimCluster cluster(part);
  BlockJacobiPreconditioner precond(a, part, 10);
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 2;
  opts.failure.iteration = 18;
  opts.failure.ranks = {1, 2};
  ResilientPcg solver(a, precond, cluster, opts);

  ConvergenceTrace trace;
  solver.set_iteration_hook(trace.hook(vec_norm2(b)));
  const ResilientSolveResult res = solver.solve(b);
  ASSERT_TRUE(res.converged);
  // One point per executed iteration body.
  EXPECT_EQ(static_cast<index_t>(trace.points().size()),
            res.executed_iterations);
  // Exactly one rollback, at the recovery point.
  const auto rb = trace.rollback_steps();
  ASSERT_EQ(rb.size(), 1u);
  // Residuals start at 1 and end below the tolerance.
  EXPECT_NEAR(trace.points().front().relres, 1.0, 1e-12);
  EXPECT_LT(trace.points().back().relres, 1e-6);
}

} // namespace
} // namespace esrp::xp
