#include "xp/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sparse/generators.hpp"

namespace esrp::xp {
namespace {

TEST(MakeRhs, DeterministicAndNonDegenerate) {
  const CsrMatrix a = poisson2d(8, 8);
  const Vector b1 = make_rhs(a);
  const Vector b2 = make_rhs(a);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(vec_norm2(b1), 0);
  // Not an all-constant vector (an eigenvector of the graph-Laplacian
  // generators, which would collapse CG to one iteration).
  EXPECT_GT(vec_dist2(b1, Vector(b1.size(), b1[0])), 0.1);
}

TEST(WorstCaseFailureIteration, IntervalContainingHalfC) {
  // C = 100, T = 20: C/2 = 50 lies in [40, 60); inject at 58.
  EXPECT_EQ(worst_case_failure_iteration(100, 20), 58);
  // C = 100, T = 50: C/2 = 50 lies in [50, 100); inject at 98.
  EXPECT_EQ(worst_case_failure_iteration(100, 50), 98);
}

TEST(WorstCaseFailureIteration, ClampedBelowC) {
  // C = 90, T = 100: the interval end would be beyond convergence.
  EXPECT_EQ(worst_case_failure_iteration(90, 100), 89);
}

TEST(WorstCaseFailureIteration, IntervalOneUsesHalfC) {
  EXPECT_EQ(worst_case_failure_iteration(100, 1), 50);
  EXPECT_EQ(worst_case_failure_iteration(1, 1), 1);
}

TEST(RelativeOverhead, BasicRatios) {
  EXPECT_NEAR(relative_overhead(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_overhead(1.0, 1.0), 0.0);
  EXPECT_THROW(relative_overhead(1.0, 0.0), Error);
}

TEST(RunConfig, CacheKeyDistinguishesConfigs) {
  RunConfig a, b;
  a.strategy = Strategy::esrp;
  a.interval = 20;
  b = a;
  EXPECT_EQ(a.cache_key("m"), b.cache_key("m"));
  b.interval = 50;
  EXPECT_NE(a.cache_key("m"), b.cache_key("m"));
  b = a;
  b.with_failure = true;
  b.psi = 3;
  b.failure_iteration = 58;
  EXPECT_NE(a.cache_key("m"), b.cache_key("m"));
  EXPECT_NE(a.cache_key("m1"), a.cache_key("m2"));
}

TEST(CalibratedCost, InflatesTowardsPaperWorkload) {
  // Small matrix -> large scale factor; costs grow proportionally.
  const CsrMatrix small = poisson2d(16, 16); // ~1.2k nnz on 128 nodes
  const CostParams p = calibrated_cost(small, 128);
  const CostParams base;
  EXPECT_GT(p.gamma_s, base.gamma_s * 100);
  EXPECT_GT(p.beta_s, base.beta_s * 100);
  EXPECT_DOUBLE_EQ(p.alpha_s, 2e-6); // latency stays physical
}

TEST(CalibratedCost, NeverDeflatesBelowPhysical) {
  // A matrix already at paper scale per node: scale clamps at 1.
  const CsrMatrix big = banded_spd(4000, 300, 1.0, 1); // ~2.3M nnz, 1 node
  const CostParams p = calibrated_cost(big, 1);
  EXPECT_DOUBLE_EQ(p.gamma_s, 4.5e-9);
  EXPECT_DOUBLE_EQ(p.beta_s, 2e-10);
}

class ExperimentFixture : public ::testing::Test {
protected:
  ExperimentFixture() : a_(poisson2d(12, 12)), b_(make_rhs(a_)) {}
  CsrMatrix a_;
  Vector b_;
};

TEST_F(ExperimentFixture, ReferenceRunConvergesAndDefinesT0) {
  const Reference ref = run_reference(a_, b_, /*num_nodes=*/8);
  EXPECT_GT(ref.t0_modeled, 0);
  EXPECT_GT(ref.iterations, 10);
}

TEST_F(ExperimentFixture, FailureFreeResilientRunCostsMoreThanReference) {
  const Reference ref = run_reference(a_, b_, 8);
  RunConfig cfg;
  cfg.strategy = Strategy::esrp;
  cfg.interval = 1;
  cfg.phi = 3;
  cfg.num_nodes = 8;
  const RunOutcome out = run_experiment(a_, b_, cfg);
  ASSERT_TRUE(out.converged);
  EXPECT_EQ(out.iterations, ref.iterations);
  EXPECT_GT(out.modeled_time, ref.t0_modeled);
  EXPECT_DOUBLE_EQ(out.recovery_time, 0);
  EXPECT_EQ(out.wasted, 0);
}

TEST_F(ExperimentFixture, FailureRunReportsRecoveryAndWaste) {
  const Reference ref = run_reference(a_, b_, 8);
  RunConfig cfg;
  cfg.strategy = Strategy::esrp;
  cfg.interval = 10;
  cfg.phi = 2;
  cfg.num_nodes = 8;
  cfg.with_failure = true;
  cfg.psi = 2;
  cfg.failure_start = 4;
  cfg.failure_iteration = worst_case_failure_iteration(ref.iterations, 10);
  const RunOutcome out = run_experiment(a_, b_, cfg);
  ASSERT_TRUE(out.converged);
  EXPECT_FALSE(out.restarted);
  EXPECT_GT(out.recovery_time, 0);
  EXPECT_GT(out.wasted, 0);
  EXPECT_GT(out.modeled_time, ref.t0_modeled);
}

TEST_F(ExperimentFixture, FailureRunWithoutIterationThrows) {
  RunConfig cfg;
  cfg.with_failure = true;
  cfg.psi = 1;
  cfg.num_nodes = 8;
  EXPECT_THROW(run_experiment(a_, b_, cfg), Error);
}

TEST_F(ExperimentFixture, DeterministicAcrossRepetitions) {
  RunConfig cfg;
  cfg.strategy = Strategy::imcr;
  cfg.interval = 10;
  cfg.phi = 1;
  cfg.num_nodes = 8;
  const RunOutcome a = run_experiment(a_, b_, cfg);
  const RunOutcome b = run_experiment(a_, b_, cfg);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.modeled_time, b.modeled_time);
  EXPECT_DOUBLE_EQ(a.drift, b.drift);
}

} // namespace
} // namespace esrp::xp
