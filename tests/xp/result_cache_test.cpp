#include "xp/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sparse/generators.hpp"

namespace esrp::xp {
namespace {

std::string temp_cache_path(const char* name) {
  return testing::TempDir() + "/" + name + ".tsv";
}

RunOutcome sample_outcome() {
  RunOutcome o;
  o.converged = true;
  o.iterations = 123;
  o.executed = 130;
  o.wasted = 6;
  o.modeled_time = 1.5;
  o.recovery_time = 0.25;
  o.wall_seconds = 0.75;
  o.final_relres = 9.9e-9;
  o.drift = -4.4e-2;
  o.restarted = false;
  return o;
}

TEST(ResultCache, MissingFileMeansEmptyCache) {
  const std::string path = temp_cache_path("missing");
  std::remove(path.c_str());
  const ResultCache cache(path);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("anything").has_value());
}

TEST(ResultCache, StoreThenLookupRoundTrip) {
  const std::string path = temp_cache_path("roundtrip");
  std::remove(path.c_str());
  ResultCache cache(path);
  cache.store("key1", sample_outcome());
  const auto hit = cache.lookup("key1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->iterations, 123);
  EXPECT_DOUBLE_EQ(hit->modeled_time, 1.5);
  EXPECT_DOUBLE_EQ(hit->drift, -4.4e-2);
  EXPECT_TRUE(hit->converged);
}

TEST(ResultCache, PersistsAcrossInstances) {
  const std::string path = temp_cache_path("persist");
  std::remove(path.c_str());
  {
    ResultCache cache(path);
    cache.store("k", sample_outcome());
  }
  const ResultCache reloaded(path);
  const auto hit = reloaded.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->executed, 130);
  EXPECT_DOUBLE_EQ(hit->recovery_time, 0.25);
}

TEST(ResultCache, GetOrRunCachesTheFirstResult) {
  const std::string path = temp_cache_path("getorrun");
  std::remove(path.c_str());
  ResultCache cache(path);
  const CsrMatrix a = poisson2d(8, 8);
  const Vector b = make_rhs(a);
  RunConfig cfg;
  cfg.num_nodes = 4;
  const RunOutcome first = cache.get_or_run(a, b, "p8", cfg);
  EXPECT_EQ(cache.size(), 1u);
  const RunOutcome second = cache.get_or_run(a, b, "p8", cfg);
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_DOUBLE_EQ(first.modeled_time, second.modeled_time);
}

TEST(ResultCache, CorruptLinesAreSkipped) {
  const std::string path = temp_cache_path("corrupt");
  {
    std::ofstream out(path);
    out << "badline-without-tab\n";
    out << "key-without-values\t\n";
  }
  const ResultCache cache(path);
  EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace esrp::xp
