#include "xp/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace esrp::xp {
namespace {

TEST(TablePrinter, HeaderAndRowsAreAligned) {
  std::ostringstream os;
  TablePrinter t({"Strategy", "T"}, {10, 4}, os);
  t.print_header();
  t.print_row({"ESRP", "20"});
  t.print_rule();
  const std::string out = os.str();
  EXPECT_NE(out.find("| Strategy   | T    |"), std::string::npos);
  EXPECT_NE(out.find("| ESRP       | 20   |"), std::string::npos);
  // All lines equally wide.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, CellCountMismatchThrows) {
  std::ostringstream os;
  TablePrinter t({"a", "b"}, {3, 3}, os);
  EXPECT_THROW(t.print_row({"only-one"}), Error);
}

TEST(TablePrinter, HeaderWidthMismatchThrows) {
  EXPECT_THROW(TablePrinter({"a"}, {1, 2}), Error);
}

TEST(FormatPercent, OneDecimal) {
  EXPECT_EQ(format_percent(0.005), "0.5%");
  EXPECT_EQ(format_percent(0.123), "12.3%");
  EXPECT_EQ(format_percent(0), "0.0%");
  EXPECT_EQ(format_percent(-0.012), "-1.2%");
}

TEST(FormatSci, ScientificNotation) {
  EXPECT_EQ(format_sci(-4.43e-2), "-4.43e-02");
  EXPECT_EQ(format_sci(1.0, 1), "1.0e+00");
}

TEST(FormatFixed, FixedNotation) {
  EXPECT_EQ(format_fixed(14.66, 2), "14.66");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
}

} // namespace
} // namespace esrp::xp
