// Must-trip fixture for esrp_lint's raw-thread rule: a detached std::thread
// outside src/parallel. Detached threads outlive every join point, so the
// deterministic fork-join structure (ThreadPool/TaskGroup) that the bitwise
// reproducibility contract leans on cannot see them.
#include <thread>

void fire_and_forget(void (*work)()) {
  std::thread t(work);
  t.detach();
}
