// Must-trip fixture for esrp_lint's raw-rng rule: seeding from time() and
// drawing from rand()/std::random_device. None of these reproduce across
// runs or platforms, which breaks the seeded failure-trace contract of the
// scenario engine (common/rng.hpp is the one blessed source of randomness).
#include <cstdlib>
#include <ctime>
#include <random>

int draw_failure_iteration(int horizon) {
  std::srand(static_cast<unsigned>(std::time(nullptr))); // wall-clock seed
  std::random_device rd;                                 // hardware entropy
  return (std::rand() + static_cast<int>(rd() % 7)) % horizon;
}
