// Must-trip fixture for esrp_lint's fp-accumulate rule: the canonical raw
// dot-product loop (ISSUE: solver code summing doubles outside the blessed
// fixed-grain reduction kernels) plus a std::accumulate over doubles. Under
// threading this shape is exactly what loses bitwise reproducibility the
// moment someone "parallelizes" it naively.
#include <numeric>
#include <vector>

double raw_dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i]; // [fp-accumulate] raw accumulation loop
  }
  return sum;
}

double raw_norm1(const std::vector<double>& a) {
  // [fp-accumulate] std::accumulate over doubles
  return std::accumulate(a.begin(), a.end(), 0.0);
}
