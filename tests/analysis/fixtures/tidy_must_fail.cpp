// Must-trip fixture for the clang-tidy layer: each function below violates a
// check enabled in the repo's .clang-tidy (WarningsAsErrors: '*'), so running
//   clang-tidy tests/analysis/fixtures/tidy_must_fail.cpp -- -std=c++20
// must exit non-zero. The CI static-analysis job asserts exactly that; a
// pass here would mean the tidy configuration has silently gone toothless.
#include <string>
#include <vector>

// bugprone-integer-division: fractional part silently truncated before the
// floating-point assignment.
double average(int total, int count) {
  return total / count;
}

// performance-unnecessary-value-param: large parameter copied on every call.
std::size_t total_length(std::vector<std::string> names) {
  std::size_t n = 0;
  for (const auto& s : names) {
    n += s.size();
  }
  return n;
}

// performance-for-range-copy: each element copied into the loop variable.
std::size_t count_nonempty(const std::vector<std::string>& names) {
  std::size_t n = 0;
  for (auto s : names) {
    if (!s.empty()) {
      ++n;
    }
  }
  return n;
}

// bugprone-copy-constructor-init: copy constructor forgets to copy the base.
class Base {
 public:
  int id = 0;
};

class Derived : public Base {
 public:
  Derived() = default;
  Derived(const Derived& other) : tag(other.tag) {}
  int tag = 0;
};
