// Must-trip fixture for esrp_lint's atomic-fp rule: a double-typed atomic
// accumulator. Concurrent fetch-adds commit in timing order, so the rounded
// sum differs run to run — the exact failure mode the fixed-grain
// parallel_reduce exists to prevent (and it is slow: every add is a CAS
// loop on a contended cache line).
#include <atomic>
#include <cstddef>

double racy_sum(const double* values, std::size_t n) {
  std::atomic<double> total{0.0};
  for (std::size_t i = 0; i < n; ++i) {
    double expected = total.load();
    while (!total.compare_exchange_weak(expected, expected + values[i])) {
    }
  }
  return total.load();
}
