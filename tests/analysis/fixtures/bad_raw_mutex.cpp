// Must-trip fixture for esrp_lint's raw-mutex rule: std::mutex and a
// predicate condition-variable wait. Functionally fine — but invisible to
// clang's thread safety analysis (libstdc++ carries no capability
// annotations), so nothing proves `queue_size` is only touched under the
// lock. The annotated esrp::Mutex/CondVar wrappers exist so the analyze
// preset can prove it.
#include <condition_variable>
#include <mutex>

namespace {
std::mutex mu;
std::condition_variable cv;
int queue_size = 0;
} // namespace

void push_one() {
  {
    std::lock_guard<std::mutex> lock(mu);
    ++queue_size;
  }
  cv.notify_one();
}

void wait_nonempty() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [] { return queue_size > 0; });
}
