// Must-fail fixture for clang thread safety analysis: `balance` is guarded
// by `mu` but deposit() touches it without the lock. The `analyze` preset's
// -Wthread-safety -Werror=thread-safety has to reject this TU — pinned by
// the WILL_FAIL ctest analysis.tsa_violation_must_fail. The properly locked
// twin (tsa_clean_control.cpp) compiles clean, proving the failure here is
// the guarded-by diagnostic and not fixture plumbing.
#include "common/thread_annotations.hpp"

namespace {

class Account {
public:
  void deposit(int amount) {
    balance_ += amount; // racy: mu_ not held — the analysis must flag this
  }

  int balance() const {
    esrp::MutexLock lock(mu_);
    return balance_;
  }

private:
  mutable esrp::Mutex mu_;
  int balance_ ESRP_GUARDED_BY(mu_) = 0;
};

} // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
