// Must-trip fixture for esrp_lint's unordered-container rule: iterating an
// unordered_map in solver-shaped code. The iteration order is
// implementation-defined, so anything accumulated in it (here: a residual
// contribution per rank) differs across standard libraries — the ordering
// nondeterminism the golden-trajectory tests cannot tolerate.
#include <unordered_map>

double sum_contributions(const std::unordered_map<int, double>& by_rank) {
  double total = 0;
  for (const auto& [rank, value] : by_rank) {
    total += value; // order of visitation is unspecified
  }
  return total;
}
