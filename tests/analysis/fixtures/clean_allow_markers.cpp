// Blessing-marker fixture: one instance of each esrp_lint violation, every
// one annotated with an inline `esrp-lint: allow(<rule>)` marker (same-line
// and line-above placements both appear). The lint.fixture_allow_markers
// test requires this file to scan CLEAN — pinning that a bless marker
// silences exactly the named rule, so real blessed exceptions (e.g. the
// SolveService session workers) stay expressible.
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map> // esrp-lint: allow(unordered-container)
#include <vector>

// Same-line marker:
double blessed_accumulate(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0); // esrp-lint: allow(fp-accumulate)
}

double blessed_loop(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) {
    sum += x; // esrp-lint: allow(fp-accumulate)
  }
  return sum;
}

// Line-above marker placement:
// esrp-lint: allow(unordered-container)
int blessed_unordered(const std::unordered_map<int, int>& m, int k) {
  return m.count(k) != 0 ? 1 : 0;
}

int blessed_rng() {
  return std::rand(); // esrp-lint: allow(raw-rng)
}

void blessed_thread(void (*work)()) {
  std::thread t(work); // esrp-lint: allow(raw-thread)
  t.join();
}

// esrp-lint: allow(atomic-fp)
std::atomic<double> blessed_atomic{0.0};

// Multiple rules in one marker:
// esrp-lint: allow(raw-mutex, unordered-container)
std::mutex blessed_mutex;
