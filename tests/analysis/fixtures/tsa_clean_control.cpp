// Control twin of tsa_guarded_by_violation.cpp: identical shape, but every
// guarded access holds the mutex. Compiling clean under -Wthread-safety
// -Werror=thread-safety proves the must-fail fixture fails because of the
// guarded-by diagnostic, not because of an include path or syntax problem.
#include "common/thread_annotations.hpp"

namespace {

class Account {
public:
  void deposit(int amount) {
    esrp::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() const {
    esrp::MutexLock lock(mu_);
    return balance_;
  }

private:
  mutable esrp::Mutex mu_;
  int balance_ ESRP_GUARDED_BY(mu_) = 0;
};

} // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
