// Convergence-trace demo: solve with ESRP, kill three nodes mid-solve, and
// render the residual history as an ASCII chart. The recovery shows up as
// the upward jump where the solver rolls back to the last storage stage and
// replays the lost iterations on the original trajectory.
//
// The trace rides on the facade's SolverObserver: on_iteration() receives
// (trajectory iteration, relres) at the top of every executed body, so the
// rollback appears as a decrease in the recorded iteration number.
//
//   $ ./convergence_trace [csv_path]   (optionally also writes a CSV)
#include <cstdio>
#include <fstream>

#include "api/solve.hpp"
#include "xp/trace.hpp"

namespace {

/// Adapter: feed every executed iteration into a ConvergenceTrace.
class TraceObserver final : public esrp::SolverObserver {
public:
  void on_iteration(esrp::index_t iteration, esrp::real_t relres) override {
    trace_.record(iteration, relres);
  }
  esrp::xp::ConvergenceTrace& trace() { return trace_; }

private:
  esrp::xp::ConvergenceTrace trace_;
};

} // namespace

int main(int argc, char** argv) {
  using namespace esrp;

  SolveSpec spec;
  spec.matrix = "poisson2d:24,24";
  spec.nodes = 16;
  spec.calibrated_cost = false;
  spec.strategy = Strategy::esrp;
  spec.interval = 15;
  spec.phi = 3;
  spec.failures.push_back(FailureEvent{40, contiguous_ranks(6, 3, 16)});

  TraceObserver observer;
  const SolveReport res = solve(spec, &observer);
  const xp::ConvergenceTrace& trace = observer.trace();

  std::printf("ESRP solve of a %lld-unknown Poisson system; 3 nodes killed "
              "at iteration 40:\n\n", static_cast<long long>(res.rows));
  std::printf("%s\n", trace.ascii_chart(72, 16).c_str());
  for (const index_t rb : trace.rollback_steps())
    std::printf("rollback at execution step %lld (recovery rolled the "
                "solver back to iteration %lld)\n",
                static_cast<long long>(rb),
                static_cast<long long>(res.recoveries[0].restored_to));
  std::printf("converged after %lld trajectory iterations, %lld executed.\n",
              static_cast<long long>(res.iterations),
              static_cast<long long>(res.executed_iterations));

  if (argc > 1) {
    std::ofstream csv(argv[1]);
    trace.write_csv(csv);
    std::printf("trace written to %s\n", argv[1]);
  }
  return res.converged ? 0 : 1;
}
