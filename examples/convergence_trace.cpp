// Convergence-trace demo: solve with ESRP, kill three nodes mid-solve, and
// render the residual history as an ASCII chart. The recovery shows up as
// the upward jump where the solver rolls back to the last storage stage and
// replays the lost iterations on the original trajectory.
//
//   $ ./convergence_trace [csv_path]   (optionally also writes a CSV)
#include <cstdio>
#include <fstream>

#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"
#include "xp/trace.hpp"

int main(int argc, char** argv) {
  using namespace esrp;

  const CsrMatrix a = poisson2d(24, 24);
  const Vector b = xp::make_rhs(a);
  const BlockRowPartition part(a.rows(), 16);
  SimCluster cluster(part);
  const BlockJacobiPreconditioner precond(a, part, 10);

  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 15;
  opts.phi = 3;
  opts.failure.iteration = 40;
  opts.failure.ranks = contiguous_ranks(6, 3, 16);

  ResilientPcg solver(a, precond, cluster, opts);
  xp::ConvergenceTrace trace;
  solver.set_iteration_hook(trace.hook(vec_norm2(b)));
  const ResilientSolveResult res = solver.solve(b);

  std::printf("ESRP solve of a %lld-unknown Poisson system; 3 nodes killed "
              "at iteration 40:\n\n", static_cast<long long>(a.rows()));
  std::printf("%s\n", trace.ascii_chart(72, 16).c_str());
  for (const index_t rb : trace.rollback_steps())
    std::printf("rollback at execution step %lld (recovery rolled the "
                "solver back to iteration %lld)\n",
                static_cast<long long>(rb),
                static_cast<long long>(res.recoveries[0].restored_to));
  std::printf("converged after %lld trajectory iterations, %lld executed.\n",
              static_cast<long long>(res.trajectory_iterations),
              static_cast<long long>(res.executed_iterations));

  if (argc > 1) {
    std::ofstream csv(argv[1]);
    trace.write_csv(csv);
    std::printf("trace written to %s\n", argv[1]);
  }
  return res.converged ? 0 : 1;
}
