// Redundancy-budget study: how many simultaneous node failures can the
// solver absorb, as a function of the configured redundancy phi?
//
// Part 1: for each (phi, psi) pair the example injects psi contiguous
// failures into an ESRP run and reports whether the state was reconstructed
// or the solver had to fall back to a scratch restart. The diagonal
// psi = phi is the paper's guarantee boundary: psi <= phi must always
// recover, psi > phi may lose all copies of some entries.
//
// Part 2: the same two-event failure schedule through both ESR-capable
// solvers — classic resilient PCG (paper Alg. 3) and the pipelined solver
// (exact state reconstruction per reference [16]) — side by side: wasted
// iterations, recovery time, and total modeled time vs each solver's own
// failure-free run. Every cell is one SolveSpec into the facade.
//
//   $ ./multi_failure_survival
#include <cstdio>
#include <vector>

#include "api/solve.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

int main() {
  using namespace esrp;

  const CsrMatrix a = diffusion3d_27pt(12, 12, 12, 100, /*seed=*/7);
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 24;

  SolveSpec base;
  base.matrix_data = &a;
  base.matrix_name = "diffusion3d";
  base.rhs = b;
  base.nodes = nodes;

  SolveSpec ref_spec = base;
  ref_spec.strategy = Strategy::none;
  const SolveReport ref = solve(ref_spec);
  const index_t interval = 10;
  const index_t fail_at =
      xp::worst_case_failure_iteration(ref.iterations, interval);

  std::printf("ESRP survival map — %lld unknowns on %d nodes, T = %lld, "
              "failure at iteration %lld (C = %lld)\n\n",
              static_cast<long long>(a.rows()), static_cast<int>(nodes),
              static_cast<long long>(interval),
              static_cast<long long>(fail_at),
              static_cast<long long>(ref.iterations));
  std::printf("  cell: R = exact state reconstructed, S = scratch restart\n");
  std::printf("  (psi <= phi is *guaranteed* to be R; psi > phi may still\n");
  std::printf("  recover when the regular SpMV halo happens to provide\n");
  std::printf("  enough incidental copies, but has no guarantee)\n\n");

  std::printf("%8s", "psi\\phi");
  for (int phi : {1, 2, 3, 4, 6, 8}) std::printf("%6d", phi);
  std::printf("\n");

  for (int psi : {1, 2, 3, 4, 6, 8, 10}) {
    std::printf("%8d", psi);
    for (int phi : {1, 2, 3, 4, 6, 8}) {
      SolveSpec spec = base;
      spec.strategy = Strategy::esrp;
      spec.interval = interval;
      spec.phi = phi;
      spec.failures.push_back(
          FailureEvent{fail_at,
                       contiguous_ranks(/*start=*/5, psi, nodes)});
      const SolveReport out = solve(spec);
      if (!out.converged) {
        std::printf("%6s", "!");
      } else {
        std::printf("%6s", out.restarted_from_scratch() ? "S" : "R");
        // The guarantee: psi <= phi must reconstruct.
        if (psi <= phi && out.restarted_from_scratch()) {
          std::printf("\nERROR: psi=%d <= phi=%d restarted!\n", psi, phi);
          return 1;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\nevery psi <= phi cell reconstructed the exact state, as "
              "guaranteed by the ASpMV redundancy invariant.\n");

  // --- Part 2: one schedule, two ESR-capable solvers ---------------------
  const std::vector<FailureEvent> schedule = {
      FailureEvent{fail_at / 2, contiguous_ranks(/*start=*/3, 2, nodes)},
      FailureEvent{fail_at, contiguous_ranks(/*start=*/11, 2, nodes)},
  };
  std::printf("\nSame two-event schedule (iterations %lld and %lld, two "
              "ranks each) through both\nESR-capable solvers, T = %lld, "
              "phi = 2:\n\n",
              static_cast<long long>(schedule[0].iteration),
              static_cast<long long>(schedule[1].iteration),
              static_cast<long long>(interval));
  std::printf("  %-15s %5s %6s %9s %7s %12s %11s %9s\n", "solver", "conv",
              "iters", "executed", "wasted", "recovery[s]", "modeled[s]",
              "overhead");

  for (const char* solver : {"resilient-pcg", "dist-pipelined"}) {
    SolveSpec failure_free = base;
    failure_free.solver = solver;
    failure_free.strategy = Strategy::esrp;
    failure_free.interval = interval;
    failure_free.phi = 2;
    const SolveReport clean = solve(failure_free);

    SolveSpec spec = failure_free;
    spec.failures = schedule;
    const SolveReport out = solve(spec);
    if (!out.converged || out.restarted_from_scratch()) {
      std::printf("ERROR: %s did not recover both events exactly\n", solver);
      return 1;
    }
    std::printf("  %-15s %5s %6lld %9lld %7lld %12.4f %11.3f %8.1f%%\n",
                solver, out.converged ? "yes" : "no",
                static_cast<long long>(out.iterations),
                static_cast<long long>(out.executed_iterations),
                static_cast<long long>(out.wasted_iterations()),
                out.recovery_modeled_time(), out.modeled_time,
                100 * (out.modeled_time - clean.modeled_time) /
                    clean.modeled_time);
  }

  std::printf("\nboth solvers replay the schedule through the shared "
              "resilience engine: the classic\nsolver reconstructs via "
              "Alg. 2, the pipelined solver via the recurrence scheme of\n"
              "reference [16]; the pipelined rows pay dedicated "
              "redundancy messages per storage\nstage but keep the "
              "overlapped single-reduction iteration.\n");
  return 0;
}
