// Redundancy-budget study: how many simultaneous node failures can the
// solver absorb, as a function of the configured redundancy phi?
//
// For each (phi, psi) pair the example injects psi contiguous failures into
// an ESRP run and reports whether the state was reconstructed or the solver
// had to fall back to a scratch restart. The diagonal psi = phi is the
// paper's guarantee boundary: psi <= phi must always recover, psi > phi may
// lose all copies of some entries.
//
//   $ ./multi_failure_survival
#include <cstdio>

#include "core/resilient_pcg.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

int main() {
  using namespace esrp;

  const CsrMatrix a = diffusion3d_27pt(12, 12, 12, 100, /*seed=*/7);
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 24;
  const xp::Reference ref = xp::run_reference(a, b, nodes);
  const index_t interval = 10;
  const index_t fail_at =
      xp::worst_case_failure_iteration(ref.iterations, interval);

  std::printf("ESRP survival map — %lld unknowns on %d nodes, T = %lld, "
              "failure at iteration %lld (C = %lld)\n\n",
              static_cast<long long>(a.rows()), static_cast<int>(nodes),
              static_cast<long long>(interval),
              static_cast<long long>(fail_at),
              static_cast<long long>(ref.iterations));
  std::printf("  cell: R = exact state reconstructed, S = scratch restart\n");
  std::printf("  (psi <= phi is *guaranteed* to be R; psi > phi may still\n");
  std::printf("  recover when the regular SpMV halo happens to provide\n");
  std::printf("  enough incidental copies, but has no guarantee)\n\n");

  std::printf("%8s", "psi\\phi");
  for (int phi : {1, 2, 3, 4, 6, 8}) std::printf("%6d", phi);
  std::printf("\n");

  for (int psi : {1, 2, 3, 4, 6, 8, 10}) {
    std::printf("%8d", psi);
    for (int phi : {1, 2, 3, 4, 6, 8}) {
      xp::RunConfig cfg;
      cfg.strategy = Strategy::esrp;
      cfg.interval = interval;
      cfg.phi = phi;
      cfg.num_nodes = nodes;
      cfg.with_failure = true;
      cfg.psi = psi;
      cfg.failure_start = 5;
      cfg.failure_iteration = fail_at;
      const xp::RunOutcome out = xp::run_experiment(a, b, cfg);
      if (!out.converged) {
        std::printf("%6s", "!");
      } else {
        std::printf("%6s", out.restarted ? "S" : "R");
        // The guarantee: psi <= phi must reconstruct.
        if (psi <= phi && out.restarted) {
          std::printf("\nERROR: psi=%d <= phi=%d restarted!\n", psi, phi);
          return 1;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\nevery psi <= phi cell reconstructed the exact state, as "
              "guaranteed by the ASpMV redundancy invariant.\n");
  return 0;
}
