// Redundancy-budget study: how many simultaneous node failures can the
// solver absorb, as a function of the configured redundancy phi?
//
// For each (phi, psi) pair the example injects psi contiguous failures into
// an ESRP run and reports whether the state was reconstructed or the solver
// had to fall back to a scratch restart. The diagonal psi = phi is the
// paper's guarantee boundary: psi <= phi must always recover, psi > phi may
// lose all copies of some entries. Every cell is one SolveSpec into the
// facade.
//
//   $ ./multi_failure_survival
#include <cstdio>

#include "api/solve.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

int main() {
  using namespace esrp;

  const CsrMatrix a = diffusion3d_27pt(12, 12, 12, 100, /*seed=*/7);
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 24;

  SolveSpec base;
  base.matrix_data = &a;
  base.matrix_name = "diffusion3d";
  base.rhs = b;
  base.nodes = nodes;

  SolveSpec ref_spec = base;
  ref_spec.strategy = Strategy::none;
  const SolveReport ref = solve(ref_spec);
  const index_t interval = 10;
  const index_t fail_at =
      xp::worst_case_failure_iteration(ref.iterations, interval);

  std::printf("ESRP survival map — %lld unknowns on %d nodes, T = %lld, "
              "failure at iteration %lld (C = %lld)\n\n",
              static_cast<long long>(a.rows()), static_cast<int>(nodes),
              static_cast<long long>(interval),
              static_cast<long long>(fail_at),
              static_cast<long long>(ref.iterations));
  std::printf("  cell: R = exact state reconstructed, S = scratch restart\n");
  std::printf("  (psi <= phi is *guaranteed* to be R; psi > phi may still\n");
  std::printf("  recover when the regular SpMV halo happens to provide\n");
  std::printf("  enough incidental copies, but has no guarantee)\n\n");

  std::printf("%8s", "psi\\phi");
  for (int phi : {1, 2, 3, 4, 6, 8}) std::printf("%6d", phi);
  std::printf("\n");

  for (int psi : {1, 2, 3, 4, 6, 8, 10}) {
    std::printf("%8d", psi);
    for (int phi : {1, 2, 3, 4, 6, 8}) {
      SolveSpec spec = base;
      spec.strategy = Strategy::esrp;
      spec.interval = interval;
      spec.phi = phi;
      spec.failures.push_back(
          FailureEvent{fail_at,
                       contiguous_ranks(/*start=*/5, psi, nodes)});
      const SolveReport out = solve(spec);
      if (!out.converged) {
        std::printf("%6s", "!");
      } else {
        std::printf("%6s", out.restarted_from_scratch() ? "S" : "R");
        // The guarantee: psi <= phi must reconstruct.
        if (psi <= phi && out.restarted_from_scratch()) {
          std::printf("\nERROR: psi=%d <= phi=%d restarted!\n", psi, phi);
          return 1;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\nevery psi <= phi cell reconstructed the exact state, as "
              "guaranteed by the ASpMV redundancy invariant.\n");
  return 0;
}
