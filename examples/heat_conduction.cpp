// Heat conduction scenario: steady-state temperature in a plate with a
// heated interior region (2D Poisson problem, the paper's §1 motivating
// class of elliptic PDEs), solved on a simulated 64-node cluster.
//
// The example compares the three resilience strategies on the same problem
// and failure scenario, and prints a small temperature profile to show the
// recovered solve produces the same physics as the undisturbed one.
//
//   $ ./heat_conduction [grid_n]     (default 96 -> 9216 unknowns)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

/// Heat source: a hot square region in the lower-left quadrant.
Vector heat_source(index_t n) {
  Vector b(static_cast<std::size_t>(n * n), 0);
  for (index_t iy = n / 8; iy < 3 * n / 8; ++iy)
    for (index_t ix = n / 8; ix < 3 * n / 8; ++ix)
      b[static_cast<std::size_t>(iy * n + ix)] = 1.0;
  return b;
}

struct Run {
  const char* label;
  ResilientSolveResult result;
};

} // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atol(argv[1]) : 96;
  const CsrMatrix a = poisson2d(n, n);
  const Vector b = heat_source(n);
  const rank_t nodes = 64;
  const BlockRowPartition part(a.rows(), nodes);
  const BlockJacobiPreconditioner precond(a, part, 10);

  std::printf("steady-state heat conduction on a %lldx%lld plate "
              "(%lld unknowns, %d nodes)\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(a.rows()), static_cast<int>(nodes));

  // Reference run to place the failure in the paper's worst-case spot.
  index_t c_ref;
  double t0;
  {
    SimCluster cluster(part, xp::calibrated_cost(a, nodes));
    ResilienceOptions opts;
    ResilientPcg solver(a, precond, cluster, opts);
    const ResilientSolveResult ref = solver.solve(b);
    c_ref = ref.trajectory_iterations;
    t0 = ref.modeled_time;
    std::printf("reference (no resilience): %lld iterations, %.3f s modeled\n",
                static_cast<long long>(c_ref), t0);
  }

  const index_t interval = 20;
  const int phi = 3;
  const index_t fail_at = xp::worst_case_failure_iteration(c_ref, interval);

  std::vector<Run> runs;
  for (const Strategy strat : {Strategy::esrp, Strategy::imcr}) {
    ResilienceOptions opts;
    opts.strategy = strat;
    opts.interval = interval;
    opts.phi = phi;
    opts.failure.iteration = fail_at;
    opts.failure.ranks = contiguous_ranks(nodes / 2, phi, nodes);
    SimCluster cluster(part, xp::calibrated_cost(a, nodes));
    ResilientPcg solver(a, precond, cluster, opts);
    runs.push_back({strat == Strategy::esrp ? "ESRP" : "IMCR",
                    solver.solve(b)});
  }

  std::printf("\n%-6s %10s %12s %12s %10s %12s\n", "strat", "iters",
              "modeled[s]", "overhead", "redone", "drift");
  for (const Run& run : runs) {
    const ResilientSolveResult& r = run.result;
    index_t redone = 0;
    for (const auto& rec : r.recoveries) redone += rec.wasted_iterations;
    std::printf("%-6s %10lld %12.3f %11.1f%% %10lld %12.2e\n", run.label,
                static_cast<long long>(r.trajectory_iterations),
                r.modeled_time, 100 * (r.modeled_time - t0) / t0,
                static_cast<long long>(redone),
                residual_drift(a, b, r.x, r.r));
  }

  // Temperature profile along the plate diagonal: both recovered solves
  // must reproduce the same physics.
  std::printf("\ntemperature along the diagonal (ESRP run):\n  ");
  const Vector& temp = runs[0].result.x;
  for (index_t k = 0; k < n; k += n / 8) {
    std::printf("%.4f ", temp[static_cast<std::size_t>(k * n + k)]);
  }
  std::printf("\n");

  const real_t agreement = vec_rel_diff_inf(runs[0].result.x,
                                            runs[1].result.x);
  std::printf("max relative difference between ESRP and IMCR solutions: "
              "%.2e\n", agreement);
  return (runs[0].result.converged && runs[1].result.converged) ? 0 : 1;
}
