// Heat conduction scenario: steady-state temperature in a plate with a
// heated interior region (2D Poisson problem, the paper's §1 motivating
// class of elliptic PDEs), solved on a simulated 64-node cluster.
//
// The example compares the three resilience strategies on the same problem
// and failure scenario, and prints a small temperature profile to show the
// recovered solve produces the same physics as the undisturbed one. All
// solves share one SolveSpec — only the strategy field changes per run.
//
//   $ ./heat_conduction [grid_n]     (default 96 -> 9216 unknowns)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "xp/experiment.hpp"

namespace {

using namespace esrp;

/// Heat source: a hot square region in the lower-left quadrant.
Vector heat_source(index_t n) {
  Vector b(static_cast<std::size_t>(n * n), 0);
  for (index_t iy = n / 8; iy < 3 * n / 8; ++iy)
    for (index_t ix = n / 8; ix < 3 * n / 8; ++ix)
      b[static_cast<std::size_t>(iy * n + ix)] = 1.0;
  return b;
}

struct Run {
  const char* label;
  SolveReport report;
};

} // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atol(argv[1]) : 96;
  const Vector b = heat_source(n);
  const rank_t nodes = 64;

  // Resolve the matrix once and share it across the three solves below.
  const TestProblem prob = resolve_matrix(
      "poisson2d:" + std::to_string(n) + "," + std::to_string(n));

  SolveSpec spec;
  spec.matrix_data = &prob.matrix;
  spec.matrix_name = prob.name;
  spec.rhs = b;
  spec.nodes = nodes;
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";

  std::printf("steady-state heat conduction on a %lldx%lld plate "
              "(%lld unknowns, %d nodes)\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(n * n), static_cast<int>(nodes));

  // Reference run to place the failure in the paper's worst-case spot.
  spec.strategy = Strategy::none;
  const SolveReport ref = solve(spec);
  std::printf("reference (no resilience): %lld iterations, %.3f s modeled\n",
              static_cast<long long>(ref.iterations), ref.modeled_time);
  const double t0 = ref.modeled_time;

  const index_t interval = 20;
  const int phi = 3;
  const index_t fail_at =
      xp::worst_case_failure_iteration(ref.iterations, interval);

  std::vector<Run> runs;
  for (const Strategy strat : {Strategy::esrp, Strategy::imcr}) {
    SolveSpec failing = spec;
    failing.strategy = strat;
    failing.interval = interval;
    failing.phi = phi;
    failing.failures.push_back(
        FailureEvent{fail_at, contiguous_ranks(nodes / 2, phi, nodes)});
    runs.push_back(
        {strat == Strategy::esrp ? "ESRP" : "IMCR", solve(failing)});
  }

  std::printf("\n%-6s %10s %12s %12s %10s %12s\n", "strat", "iters",
              "modeled[s]", "overhead", "redone", "drift");
  for (const Run& run : runs) {
    const SolveReport& r = run.report;
    std::printf("%-6s %10lld %12.3f %11.1f%% %10lld %12.2e\n", run.label,
                static_cast<long long>(r.iterations), r.modeled_time,
                100 * (r.modeled_time - t0) / t0,
                static_cast<long long>(r.wasted_iterations()), r.drift);
  }

  // Temperature profile along the plate diagonal: both recovered solves
  // must reproduce the same physics.
  std::printf("\ntemperature along the diagonal (ESRP run):\n  ");
  const Vector& temp = runs[0].report.x;
  for (index_t k = 0; k < n; k += n / 8) {
    std::printf("%.4f ", temp[static_cast<std::size_t>(k * n + k)]);
  }
  std::printf("\n");

  const real_t agreement =
      vec_rel_diff_inf(runs[0].report.x, runs[1].report.x);
  std::printf("max relative difference between ESRP and IMCR solutions: "
              "%.2e\n", agreement);
  return (runs[0].report.converged && runs[1].report.converged) ? 0 : 1;
}
