// Quickstart: solve an SPD system with the resilient distributed PCG solver,
// kill three nodes mid-solve, and watch ESRP reconstruct the exact state and
// finish on the original trajectory.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API:
//   1. build (or load) a sparse SPD matrix,
//   2. partition it over a simulated cluster,
//   3. construct the paper's block Jacobi preconditioner,
//   4. configure the ESRP strategy (interval T, redundancy phi, a failure),
//   5. solve and inspect the result.
#include <cstdio>

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

int main() {
  using namespace esrp;

  // 1. A 3D Poisson problem: 20^3 unknowns, 7-point stencil.
  const CsrMatrix a = poisson3d(20, 20, 20);
  const Vector b = xp::make_rhs(a);
  std::printf("matrix: %lld rows, %lld nonzeros\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()));

  // 2. Distribute block rows over 16 simulated nodes.
  const BlockRowPartition part(a.rows(), /*num_nodes=*/16);
  SimCluster cluster(part);

  // 3. Block Jacobi with node-aligned blocks of size <= 10 (paper setup).
  const BlockJacobiPreconditioner precond(a, part, /*max_block_size=*/10);

  // 4. ESRP: store redundant copies every T = 10 iterations, keep phi = 3
  //    copies of every entry, and make ranks {4,5,6} fail at iteration 37.
  ResilienceOptions opts;
  opts.strategy = Strategy::esrp;
  opts.interval = 10;
  opts.phi = 3;
  opts.rtol = 1e-8;
  opts.failure.iteration = 37;
  opts.failure.ranks = contiguous_ranks(/*start=*/4, /*count=*/3, 16);

  // 5. Solve.
  ResilientPcg solver(a, precond, cluster, opts);
  const ResilientSolveResult res = solver.solve(b);

  std::printf("converged:        %s\n", res.converged ? "yes" : "no");
  std::printf("iterations:       %lld (executed %lld bodies)\n",
              static_cast<long long>(res.trajectory_iterations),
              static_cast<long long>(res.executed_iterations));
  std::printf("final rel. res.:  %.2e\n", res.final_relres);
  std::printf("modeled time:     %.3f s on %d nodes\n", res.modeled_time,
              static_cast<int>(cluster.num_nodes()));
  for (const RecoveryRecord& rec : res.recoveries) {
    std::printf(
        "recovery:         failure at iteration %lld, state reconstructed "
        "for iteration %lld (%lld iterations redone, %.4f s modeled)\n",
        static_cast<long long>(rec.failed_at),
        static_cast<long long>(rec.restored_to),
        static_cast<long long>(rec.wasted_iterations), rec.modeled_time);
    std::printf("                  inner solves: %lld (precond) + %lld "
                "(matrix) PCG iterations to 1e-14\n",
                static_cast<long long>(rec.inner_iterations_precond),
                static_cast<long long>(rec.inner_iterations_matrix));
  }
  std::printf("true rel. res.:   %.2e\n",
              true_relative_residual(a, b, res.x));
  std::printf("residual drift:   %+.2e (Eq. 2 of the paper)\n",
              residual_drift(a, b, res.x, res.r));
  return res.converged ? 0 : 1;
}
