// Quickstart: solve an SPD system with the resilient distributed PCG solver,
// kill three nodes mid-solve, and watch ESRP reconstruct the exact state and
// finish on the original trajectory.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API — one declarative
// SolveSpec into esrp::solve (src/api/solve.hpp):
//   1. name a matrix from the registry ("poisson3d:20,20,20"),
//   2. pick solver + preconditioner by key,
//   3. configure the ESRP strategy (interval T, redundancy phi, a failure),
//   4. solve and inspect the report.
#include <cstdio>

#include "api/solve.hpp"

int main() {
  using namespace esrp;

  SolveSpec spec;
  // 1. A 3D Poisson problem: 20^3 unknowns, 7-point stencil, distributed
  //    over 16 simulated nodes (physical cost model, like the original
  //    hand-assembled version of this example).
  spec.matrix = "poisson3d:20,20,20";
  spec.nodes = 16;
  spec.calibrated_cost = false;

  // 2. The paper's setup: resilient PCG with node-aligned block Jacobi,
  //    blocks of size <= 10.
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.block_size = 10;

  // 3. ESRP: store redundant copies every T = 10 iterations, keep phi = 3
  //    copies of every entry, and make ranks {4,5,6} fail at iteration 37.
  spec.strategy = Strategy::esrp;
  spec.interval = 10;
  spec.phi = 3;
  spec.rtol = 1e-8;
  spec.failures.push_back(
      FailureEvent{37, contiguous_ranks(/*start=*/4, /*count=*/3, 16)});

  // 4. Solve.
  const SolveReport res = solve(spec);

  std::printf("matrix: %s, %lld rows, %lld nonzeros\n", res.matrix.c_str(),
              static_cast<long long>(res.rows),
              static_cast<long long>(res.nnz));
  std::printf("converged:        %s\n", res.converged ? "yes" : "no");
  std::printf("iterations:       %lld (executed %lld bodies)\n",
              static_cast<long long>(res.iterations),
              static_cast<long long>(res.executed_iterations));
  std::printf("final rel. res.:  %.2e\n", res.final_relres);
  std::printf("modeled time:     %.3f s on %d nodes\n", res.modeled_time,
              static_cast<int>(res.nodes));
  for (const RecoveryRecord& rec : res.recoveries) {
    std::printf(
        "recovery:         failure at iteration %lld, state reconstructed "
        "for iteration %lld (%lld iterations redone, %.4f s modeled)\n",
        static_cast<long long>(rec.failed_at),
        static_cast<long long>(rec.restored_to),
        static_cast<long long>(rec.wasted_iterations), rec.modeled_time);
    std::printf("                  inner solves: %lld (precond) + %lld "
                "(matrix) PCG iterations to 1e-14\n",
                static_cast<long long>(rec.inner_iterations_precond),
                static_cast<long long>(rec.inner_iterations_matrix));
  }
  std::printf("true rel. res.:   %.2e\n", res.true_relres);
  std::printf("residual drift:   %+.2e (Eq. 2 of the paper)\n", res.drift);
  return res.converged ? 0 : 1;
}
