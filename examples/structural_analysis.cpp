// Structural analysis scenario: an elasticity-like operator (the audikw_1
// stand-in, 3 displacement dof per grid point) on a 128-node simulated
// cluster, with an eight-node switch failure — the paper's most aggressive
// multiple-nodes-failure setting (phi = psi = 8). Both the reference and
// the failing run go through the facade; only strategy and the failure
// schedule differ between their specs.
//
//   $ ./structural_analysis [nx [ny [nz]]]    (default 14^3 -> 8232 dof)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "xp/experiment.hpp"

int main(int argc, char** argv) {
  using namespace esrp;

  const index_t nx = argc > 1 ? std::atol(argv[1]) : 14;
  const index_t ny = argc > 2 ? std::atol(argv[2]) : nx;
  const index_t nz = argc > 3 ? std::atol(argv[3]) : ny;
  const rank_t nodes = 128;

  // Resolve the matrix once; both the reference and the failing solve
  // below share it.
  const TestProblem prob =
      resolve_matrix("audikw:" + std::to_string(nx) + "," +
                     std::to_string(ny) + "," + std::to_string(nz));

  SolveSpec spec;
  spec.matrix_data = &prob.matrix;
  spec.matrix_name = prob.name;
  spec.nodes = nodes;

  spec.strategy = Strategy::none;
  const SolveReport ref = solve(spec);

  std::printf("%s: %lld dof, %lld nonzeros (%.1f per row), %d nodes\n\n",
              ref.matrix.c_str(), static_cast<long long>(ref.rows),
              static_cast<long long>(ref.nnz),
              static_cast<double>(ref.nnz) / static_cast<double>(ref.rows),
              static_cast<int>(nodes));
  std::printf("reference: C = %lld iterations, t0 = %.3f s modeled\n\n",
              static_cast<long long>(ref.iterations), ref.modeled_time);

  // A switch fault takes out a contiguous block of 8 ranks (paper §5).
  const int phi = 8;
  const index_t interval = 50;
  spec.strategy = Strategy::esrp;
  spec.interval = interval;
  spec.phi = phi;
  spec.failures.push_back(FailureEvent{
      xp::worst_case_failure_iteration(ref.iterations, interval),
      contiguous_ranks(/*start=*/64, phi, nodes)}); // "center" location

  std::printf("injecting %d simultaneous node failures at iteration %lld "
              "(ranks 64-71, worst case within the interval containing "
              "C/2)...\n",
              phi, static_cast<long long>(spec.failures[0].iteration));
  const SolveReport out = solve(spec);

  std::printf("\nESRP, T = %lld, phi = psi = %d:\n",
              static_cast<long long>(interval), phi);
  std::printf("  converged:              %s (%lld iterations)\n",
              out.converged ? "yes" : "no",
              static_cast<long long>(out.iterations));
  std::printf("  modeled time:           %.3f s (overhead %.1f%% over t0)\n",
              out.modeled_time,
              100 * xp::relative_overhead(out.modeled_time,
                                          ref.modeled_time));
  std::printf("  reconstruction:         %.3f s modeled (%.1f%% of t0)\n",
              out.recovery_modeled_time(),
              100 * out.recovery_modeled_time() / ref.modeled_time);
  std::printf("  iterations rolled back: %lld\n",
              static_cast<long long>(out.wasted_iterations()));
  std::printf("  residual drift (Eq. 2): %+.2e (failure-free: %+.2e)\n",
              out.drift, ref.drift);
  std::printf("  fell back to restart:   %s\n",
              out.restarted_from_scratch() ? "yes" : "no");
  return out.converged && !out.restarted_from_scratch() ? 0 : 1;
}
