// Structural analysis scenario: an elasticity-like operator (the audikw_1
// stand-in, 3 displacement dof per grid point) on a 128-node simulated
// cluster, with an eight-node switch failure — the paper's most aggressive
// multiple-nodes-failure setting (phi = psi = 8).
//
//   $ ./structural_analysis [nx [ny [nz]]]    (default 14^3 -> 8232 dof)
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"
#include "xp/experiment.hpp"

int main(int argc, char** argv) {
  using namespace esrp;

  const index_t nx = argc > 1 ? std::atol(argv[1]) : 14;
  const index_t ny = argc > 2 ? std::atol(argv[2]) : nx;
  const index_t nz = argc > 3 ? std::atol(argv[3]) : ny;
  const TestProblem prob = audikw_like(nx, ny, nz);
  const CsrMatrix& a = prob.matrix;
  const Vector b = xp::make_rhs(a);
  const rank_t nodes = 128;
  const BlockRowPartition part(a.rows(), nodes);
  const BlockJacobiPreconditioner precond(a, part, 10);

  std::printf("%s: %lld dof, %lld nonzeros (%.1f per row), %d nodes\n\n",
              prob.name.c_str(), static_cast<long long>(a.rows()),
              static_cast<long long>(a.nnz()),
              static_cast<double>(a.nnz()) / static_cast<double>(a.rows()),
              static_cast<int>(nodes));

  const xp::Reference ref = xp::run_reference(a, b, nodes);
  std::printf("reference: C = %lld iterations, t0 = %.3f s modeled\n\n",
              static_cast<long long>(ref.iterations), ref.t0_modeled);

  // A switch fault takes out a contiguous block of 8 ranks (paper §5).
  const int phi = 8;
  const index_t interval = 50;
  xp::RunConfig cfg;
  cfg.strategy = Strategy::esrp;
  cfg.interval = interval;
  cfg.phi = phi;
  cfg.num_nodes = nodes;
  cfg.with_failure = true;
  cfg.psi = phi;
  cfg.failure_start = 64; // "center" location of the paper
  cfg.failure_iteration =
      xp::worst_case_failure_iteration(ref.iterations, interval);

  std::printf("injecting %d simultaneous node failures at iteration %lld "
              "(ranks 64-71, worst case within the interval containing "
              "C/2)...\n",
              phi, static_cast<long long>(cfg.failure_iteration));
  const xp::RunOutcome out = xp::run_experiment(a, b, cfg);

  std::printf("\nESRP, T = %lld, phi = psi = %d:\n",
              static_cast<long long>(interval), phi);
  std::printf("  converged:              %s (%lld iterations)\n",
              out.converged ? "yes" : "no",
              static_cast<long long>(out.iterations));
  std::printf("  modeled time:           %.3f s (overhead %.1f%% over t0)\n",
              out.modeled_time,
              100 * xp::relative_overhead(out.modeled_time, ref.t0_modeled));
  std::printf("  reconstruction:         %.3f s modeled (%.1f%% of t0)\n",
              out.recovery_time, 100 * out.recovery_time / ref.t0_modeled);
  std::printf("  iterations rolled back: %lld\n",
              static_cast<long long>(out.wasted));
  std::printf("  residual drift (Eq. 2): %+.2e (failure-free: %+.2e)\n",
              out.drift, ref.drift);
  std::printf("  fell back to restart:   %s\n", out.restarted ? "yes" : "no");
  return out.converged && !out.restarted ? 0 : 1;
}
