// Coordinate-format (triplet) builder for sparse matrices. All assembly
// (generators, Matrix Market reader, test fixtures) goes through CooBuilder,
// which deduplicates by summing and converts to CSR.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace esrp {

class CsrMatrix;

class CooBuilder {
public:
  CooBuilder(index_t rows, index_t cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  /// Number of raw (possibly duplicate) triplets added so far.
  std::size_t triplet_count() const { return entries_.size(); }

  /// Queue the triplet (i, j, v); duplicates are summed at conversion time.
  void add(index_t i, index_t j, real_t v);

  /// Queue (i, j, v) and, if i != j, also (j, i, v). Convenient for
  /// assembling symmetric operators from their lower/upper triangle.
  void add_sym(index_t i, index_t j, real_t v);

  /// Sort, combine duplicates, drop explicit zeros, and emit CSR.
  /// The builder remains usable afterwards (its triplets are untouched).
  CsrMatrix to_csr() const;

private:
  struct Triplet {
    index_t row;
    index_t col;
    real_t value;
  };

  index_t rows_;
  index_t cols_;
  std::vector<Triplet> entries_;
};

} // namespace esrp
