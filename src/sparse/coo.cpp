#include "sparse/coo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace esrp {

CooBuilder::CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  ESRP_CHECK_MSG(rows >= 0 && cols >= 0,
                 "matrix dimensions must be non-negative, got " << rows << "x"
                                                                << cols);
}

void CooBuilder::add(index_t i, index_t j, real_t v) {
  ESRP_CHECK_MSG(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                 "triplet (" << i << "," << j << ") outside " << rows_ << "x"
                             << cols_);
  entries_.push_back({i, j, v});
}

void CooBuilder::add_sym(index_t i, index_t j, real_t v) {
  add(i, j, v);
  if (i != j) add(j, i, v);
}

CsrMatrix CooBuilder::to_csr() const {
  std::vector<Triplet> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  std::size_t k = 0;
  while (k < sorted.size()) {
    const index_t i = sorted[k].row;
    const index_t j = sorted[k].col;
    real_t acc = 0;
    while (k < sorted.size() && sorted[k].row == i && sorted[k].col == j) {
      acc += sorted[k].value;
      ++k;
    }
    if (acc != real_t{0}) {
      col_idx.push_back(j);
      values.push_back(acc);
      ++row_ptr[static_cast<std::size_t>(i) + 1];
    }
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r)
    row_ptr[r + 1] += row_ptr[r];

  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

} // namespace esrp
