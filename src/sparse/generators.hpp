// Synthetic SPD test-problem generators.
//
// The paper evaluates on two SuiteSparse matrices (Table 1):
//   Emilia_923  — structural/geomechanics, 923,136 rows, 40.4M nnz (~44/row)
//   audikw_1    — structural,              943,695 rows, 77.7M nnz (~82/row)
// Neither ships with this repository, so the benches use laptop-scale
// synthetic matrices of the same *class* (see DESIGN.md §3.5):
//
//   emilia_like  — scalar 3D 27-point variable-coefficient diffusion with
//                  high coefficient contrast: banded, ~27 nnz/row, thousands
//                  of PCG iterations under weak block Jacobi, mirroring the
//                  slow-converging geomechanics problem;
//   audikw_like  — vector-valued (3 dof/point) 3D 7-point elasticity-like
//                  operator with random SPD edge blocks: wider band and
//                  ~60 nnz/row, mirroring the denser structural problem.
//
// All generators are deterministic given the seed and produce symmetric
// positive-definite matrices by construction (sums of PSD edge terms plus a
// positive diagonal shift).
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace esrp {

/// A generated problem: matrix plus the metadata the Table-1 bench prints.
struct TestProblem {
  std::string name;
  std::string problem_type;
  CsrMatrix matrix;
};

/// 1D Laplacian tridiag(-1, 2, -1); the smallest sensible CG test problem.
CsrMatrix laplace1d(index_t n);

/// 2D Poisson 5-point stencil on an nx-by-ny grid (Dirichlet).
CsrMatrix poisson2d(index_t nx, index_t ny);

/// 3D Poisson 7-point stencil on an nx-by-ny-by-nz grid (Dirichlet).
CsrMatrix poisson3d(index_t nx, index_t ny, index_t nz);

/// Random symmetric diagonally dominant banded SPD matrix: entries within
/// |i-j| <= half_bandwidth, present with probability `fill`.
CsrMatrix banded_spd(index_t n, index_t half_bandwidth, double fill,
                     std::uint64_t seed);

/// Scalar 3D 27-point variable-coefficient diffusion operator. Edge weights
/// are log-uniform in [1/contrast, contrast]. The operator is a graph
/// Laplacian plus `shift` times the identity, so the condition number (and
/// hence the PCG iteration count) scales like lambda_max / shift — shrink
/// `shift` to make the problem harder.
/// `anisotropy_y`/`anisotropy_z` scale edge weights per unit of y/z offset,
/// modeling the high-aspect-ratio elements of geomechanical meshes (like
/// Emilia_923): strong coupling along x, weak along y and weaker along z
/// produces the broad band of slow modes that makes block-Jacobi PCG take
/// thousands of iterations.
CsrMatrix diffusion3d_27pt(index_t nx, index_t ny, index_t nz, real_t contrast,
                           std::uint64_t seed, real_t shift = 1e-2,
                           real_t anisotropy_y = 1, real_t anisotropy_z = 1);

/// Vector-valued 3D 7-point operator with 3 dof per grid point and random
/// SPD 3x3 coupling blocks whose eigenvalue spread is ~`contrast`.
CsrMatrix elasticity3d(index_t nx, index_t ny, index_t nz, real_t contrast,
                       std::uint64_t seed, real_t shift = 1e-2,
                       real_t anisotropy_y = 1, real_t anisotropy_z = 1);

/// Emilia_923 stand-in at a configurable grid size.
TestProblem emilia_like(index_t nx, index_t ny, index_t nz,
                        std::uint64_t seed = 923);

/// audikw_1 stand-in at a configurable grid size.
TestProblem audikw_like(index_t nx, index_t ny, index_t nz,
                        std::uint64_t seed = 1);

/// Default bench-scale instances (sizes chosen so the full Table-2/3 grids
/// run in minutes on a laptop while still needing >= ~1000 PCG iterations).
TestProblem emilia_like_default();
TestProblem audikw_like_default();

} // namespace esrp
