#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace esrp {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

} // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  ESRP_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                 "empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  ESRP_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  ESRP_CHECK_MSG(lower(object) == "matrix", "unsupported object: " << object);
  ESRP_CHECK_MSG(lower(format) == "coordinate",
                 "only coordinate format is supported, got " << format);
  const std::string f = lower(field);
  ESRP_CHECK_MSG(f == "real" || f == "integer",
                 "only real/integer fields are supported, got " << field);
  const std::string sym = lower(symmetry);
  ESRP_CHECK_MSG(sym == "general" || sym == "symmetric",
                 "only general/symmetric matrices are supported, got "
                     << symmetry);

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0;
  std::size_t entries = 0;
  sizes >> rows >> cols >> entries;
  ESRP_CHECK_MSG(rows > 0 && cols > 0, "invalid size line: " << line);

  CooBuilder builder(rows, cols);
  std::size_t seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    real_t v = 0;
    entry >> i >> j >> v;
    ESRP_CHECK_MSG(!entry.fail(), "malformed entry line: " << line);
    if (sym == "symmetric")
      builder.add_sym(i - 1, j - 1, v);
    else
      builder.add(i - 1, j - 1, v);
    ++seen;
  }
  ESRP_CHECK_MSG(seen == entries,
                 "expected " << entries << " entries, found " << seen);
  return builder.to_csr();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  ESRP_CHECK_MSG(in.is_open(), "cannot open Matrix Market file: " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  ESRP_CHECK_MSG(out.is_open(), "cannot open file for writing: " << path);
  write_matrix_market(out, a);
}

} // namespace esrp
