// Matrix Market (coordinate, real) reader/writer. The paper's test matrices
// come from the SuiteSparse collection in this format; users with access to
// Emilia_923 / audikw_1 can load the originals, while the benches fall back
// to the synthetic generators (see generators.hpp).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace esrp {

/// Parse a Matrix Market stream. Supports `matrix coordinate real/integer
/// general|symmetric`; symmetric files are expanded to full storage.
/// Throws esrp::Error on malformed input.
CsrMatrix read_matrix_market(std::istream& in);

/// Convenience wrapper; throws esrp::Error if the file cannot be opened.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in `coordinate real general` format (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& a);

void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

} // namespace esrp
