#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace esrp {

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0) {
  ESRP_CHECK(rows >= 0 && cols >= 0);
}

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix m(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) m(i, cols[k]) = vals[k];
  }
  return m;
}

real_t& DenseMatrix::operator()(index_t i, index_t j) {
  ESRP_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
               static_cast<std::size_t>(i)];
}

real_t DenseMatrix::operator()(index_t i, index_t j) const {
  ESRP_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
               static_cast<std::size_t>(i)];
}

void DenseMatrix::matvec(std::span<const real_t> x, std::span<real_t> y) const {
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == rows_);
  std::fill(y.begin(), y.end(), real_t{0});
  for (index_t j = 0; j < cols_; ++j) {
    const real_t xj = x[static_cast<std::size_t>(j)];
    if (xj == real_t{0}) continue;
    const real_t* col = data_.data() +
                        static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_);
    for (index_t i = 0; i < rows_; ++i) y[static_cast<std::size_t>(i)] += col[i] * xj;
  }
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j)
    for (index_t i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  return t;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& b) const {
  ESRP_CHECK(cols_ == b.rows());
  DenseMatrix c(rows_, b.cols());
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t k = 0; k < cols_; ++k) {
      const real_t bkj = b(k, j);
      if (bkj == real_t{0}) continue;
      for (index_t i = 0; i < rows_; ++i) c(i, j) += (*this)(i, k) * bkj;
    }
  return c;
}

real_t DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  ESRP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  real_t m = 0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  return m;
}

bool DenseMatrix::is_symmetric(real_t tol) const {
  if (rows_ != cols_) return false;
  real_t amax = 0;
  for (real_t v : data_) amax = std::max(amax, std::abs(v));
  const real_t bound = tol * std::max(amax, real_t{1});
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > bound) return false;
  return true;
}

Cholesky::Cholesky(const DenseMatrix& a) : l_(a.rows(), a.cols()) {
  ESRP_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    real_t diag = a(j, j);
    for (index_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    ESRP_CHECK_MSG(diag > 0, "matrix not SPD: pivot " << j << " = " << diag);
    const real_t ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t acc = a(i, j);
      for (index_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
}

Vector Cholesky::solve(std::span<const real_t> b) const {
  const index_t n = dim();
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  Vector y(b.begin(), b.end());
  // Forward substitution L y = b.
  for (index_t i = 0; i < n; ++i) {
    real_t acc = y[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < i; ++k) acc -= l_(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = acc / l_(i, i);
  }
  // Backward substitution L^T x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t acc = y[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < n; ++k) acc -= l_(k, i) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = acc / l_(i, i);
  }
  return y;
}

DenseMatrix Cholesky::inverse() const {
  const index_t n = dim();
  DenseMatrix inv(n, n);
  Vector e(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1;
    const Vector col = solve(e);
    for (index_t i = 0; i < n; ++i) inv(i, j) = col[static_cast<std::size_t>(i)];
    e[static_cast<std::size_t>(j)] = 0;
  }
  return inv;
}

real_t Cholesky::log_det() const {
  real_t acc = 0;
  for (index_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
  return 2 * acc;
}

Vector dense_solve(const DenseMatrix& a, std::span<const real_t> b) {
  ESRP_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  DenseMatrix m = a;                 // working copy, eliminated in place
  Vector x(b.begin(), b.end());
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;

  for (index_t col = 0; col < n; ++col) {
    index_t piv = col;
    for (index_t i = col + 1; i < n; ++i)
      if (std::abs(m(i, col)) > std::abs(m(piv, col))) piv = i;
    ESRP_CHECK_MSG(m(piv, col) != 0, "singular matrix in dense_solve");
    if (piv != col) {
      for (index_t j = 0; j < n; ++j) std::swap(m(col, j), m(piv, j));
      std::swap(x[static_cast<std::size_t>(col)], x[static_cast<std::size_t>(piv)]);
    }
    for (index_t i = col + 1; i < n; ++i) {
      const real_t f = m(i, col) / m(col, col);
      if (f == real_t{0}) continue;
      for (index_t j = col; j < n; ++j) m(i, j) -= f * m(col, j);
      x[static_cast<std::size_t>(i)] -= f * x[static_cast<std::size_t>(col)];
    }
  }
  for (index_t i = n - 1; i >= 0; --i) {
    real_t acc = x[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) acc -= m(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc / m(i, i);
  }
  return x;
}

} // namespace esrp
