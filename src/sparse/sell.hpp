// SELL-C-σ sparse format (Kreutzer et al.): rows are grouped into chunks of
// C consecutive row slots; within each chunk, values and column indices are
// stored column-major (entry t of every lane adjacent in memory) and short
// rows are padded with explicit zeros to the chunk's longest row. A SpMV
// then processes C rows at once — one vector load of values, one gather of
// x, one vector add per nnz column — with unit-stride streaming through the
// matrix arrays. σ is the sorting window: rows are sorted by descending
// length within windows of σ row slots, which packs similar-length rows
// into the same chunk and bounds the zero-padding.
//
// Here C is fixed to the virtual SIMD lane width (kSimdLanes = 4,
// common/simd.hpp) and the format is a read-only *mirror* of a CsrMatrix,
// attached via CsrMatrix::attach_sell and selected per matrix with the
// `format=sell` spec option (api/registry.cpp); ProblemHandle stores the
// attached matrix, so the PlanCache amortizes the conversion across solves.
//
// Column-run compression: the SpMV streams the whole matrix once per call,
// so at solver sizes it is memory-bandwidth-bound and time is proportional
// to bytes per nonzero. A chunk is stored *packed* when every column
// position t references four consecutive columns {c0..c0+3} and the chunk's
// four slots hold four consecutive original rows — the common case for
// banded/stencil matrices, where lane l's t-th column is (row l) + offset.
// A packed chunk stores one base column per position (4 bytes per 4 nnz
// instead of 16) and its x gather degenerates to a unit-stride Vec4 load;
// its y scatter is a single contiguous store. Generic chunks keep the full
// 4-wide column tuples. On a 7-point Poisson operator this cuts the matrix
// stream from ~12.1 to ~9.4 bytes/nnz, which is exactly the observed SpMV
// speedup on bandwidth-saturated cores.
//
// Determinism contract: per-row results are bitwise identical to the CSR
// kernels. Each lane accumulates its own row's products serially in column
// order — exactly the scalar CSR row loop — and padding contributes +0.0,
// which never changes an accumulator's bits (a sum started at +0.0 can
// never be -0.0; assumes finite x, as does every solver invariant).
// Sorting windows never cross kReduceGrain row boundaries, so spmv_dot can
// chunk rows exactly like CsrMatrix::spmv_dot and fold each chunk with the
// canonical lane-ordered simd_dot_chunk — bitwise equal to the CSR fused
// kernel at every thread count. Pinned by tests/sparse/sell_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// Default sorting window (rows) when a `format=sell` spec gives no
/// `sigma=`: large enough to sort real irregularity, small enough that the
/// permutation stays cache-local, and a multiple of every chunk size.
inline constexpr index_t kDefaultSellSigma = 4096;

class SellMatrix {
public:
  /// Chunk height C — fixed to the virtual SIMD lane width.
  static constexpr index_t kChunkRows = kSimdLanes;

  /// Convert `a` (which must outlive nothing — the mirror copies all it
  /// needs). `sigma` >= 1 is clamped to each kReduceGrain-aligned window.
  explicit SellMatrix(const CsrMatrix& a, index_t sigma = kDefaultSellSigma);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  /// Stored (unpadded) nonzeros — equals the source matrix's nnz.
  index_t nnz() const { return nnz_; }
  /// Stored entries including padding: sum over chunks of 4 * chunk length.
  index_t padded_entries() const {
    return static_cast<index_t>(values_.size());
  }
  index_t sigma() const { return sigma_; }
  index_t chunk_count() const { return n_chunks_; }
  /// Chunks stored in the packed (column-run-compressed) layout.
  index_t packed_chunks() const { return packed_chunks_; }
  /// Entries in the column stream: chunk length for packed chunks, 4x chunk
  /// length for generic ones. Drives the bytes/nnz accounting in benches.
  index_t col_stream_entries() const {
    return static_cast<index_t>(col_idx_.size());
  }

  /// Original row stored in SELL row slot s (slots >= rows() are virtual
  /// padding lanes and absent here). A permutation of [0, rows).
  std::span<const index_t> perm() const { return perm_; }

  /// y := A x. Bitwise identical per row to CsrMatrix::spmv at any thread
  /// count.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

  /// Fused y := A x and <x, y>, bitwise identical to CsrMatrix::spmv_dot
  /// (kReduceGrain row chunks, lane-ordered dot in original row order).
  /// Requires a square matrix.
  real_t spmv_dot(std::span<const real_t> x, std::span<real_t> y) const;

private:
  /// Compute y for the sell chunks covering row slots [slot_lo, slot_hi).
  void chunk_range_spmv(index_t slot_lo, index_t slot_hi,
                        std::span<const real_t> x, std::span<real_t> y) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t sigma_ = 1;
  index_t n_chunks_ = 0;
  index_t packed_chunks_ = 0;
  std::vector<index_t> perm_;      ///< sell row slot -> original row
  std::vector<index_t> chunk_ptr_; ///< chunk -> offset into values_
  std::vector<index_t> chunk_len_; ///< chunk -> longest row length in chunk
  std::vector<index_t> col_ptr_;   ///< chunk -> offset into col_idx_
  /// 1 = packed chunk (col_idx_ holds one base column per position, rows are
  /// the four consecutive originals starting at perm_[4c]), 0 = generic
  /// (col_idx_ holds 4 columns per position, scatter goes through perm_).
  std::vector<std::uint8_t> chunk_kind_;
  /// Column stream, 32-bit on purpose: the SpMV is bandwidth-bound, and
  /// shrinking the index stream (vs the CSR arrays' 64-bit index_t) is where
  /// SELL's single-core win comes from — 4 bytes per column tuple in packed
  /// chunks, 16 in generic ones. The constructor rejects matrices with
  /// >= 2^31 columns.
  std::vector<std::int32_t> col_idx_;
  std::vector<real_t> values_; ///< padded, column-major per chunk
};

} // namespace esrp
