#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "parallel/parallel.hpp"
#include "sparse/coo.hpp"
#include "sparse/sell.hpp"

namespace esrp {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<real_t> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  ESRP_CHECK(rows_ >= 0 && cols_ >= 0);
  ESRP_CHECK_MSG(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                 "row_ptr must have rows+1 entries");
  ESRP_CHECK(col_idx_.size() == values_.size());
  ESRP_CHECK(row_ptr_.front() == 0);
  ESRP_CHECK(row_ptr_.back() == static_cast<index_t>(col_idx_.size()));
  for (index_t i = 0; i < rows_; ++i) {
    const auto b = static_cast<std::size_t>(row_ptr_[i]);
    const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
    ESRP_CHECK_MSG(b <= e, "row_ptr must be non-decreasing (row " << i << ")");
    for (std::size_t k = b; k < e; ++k) {
      ESRP_CHECK_MSG(col_idx_[k] >= 0 && col_idx_[k] < cols_,
                     "column index out of range in row " << i);
      if (k + 1 < e)
        ESRP_CHECK_MSG(col_idx_[k] < col_idx_[k + 1],
                       "column indices must be strictly increasing in row " << i);
    }
  }
}

std::span<const index_t> CsrMatrix::row_cols(index_t i) const {
  ESRP_CHECK(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(row_ptr_[i]);
  const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
  return {col_idx_.data() + b, e - b};
}

std::span<const real_t> CsrMatrix::row_vals(index_t i) const {
  ESRP_CHECK(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(row_ptr_[i]);
  const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
  return {values_.data() + b, e - b};
}

real_t CsrMatrix::at(index_t i, index_t j) const {
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0;
  const auto k = static_cast<std::size_t>(it - cols.begin());
  return row_vals(i)[k];
}

void CsrMatrix::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == rows_);
  // An attached SELL-C-σ mirror computes each row's sum in the same column
  // order as the loop below (sparse/sell.hpp), so routing through it changes
  // speed, not bits.
  if (sell_ != nullptr) {
    sell_->spmv(x, y);
    return;
  }
  // Row-range partitioning: each chunk owns a disjoint slice of y and every
  // row is computed exactly as in the serial loop, so the product is bitwise
  // identical at any thread count. The grain floor keeps short rows from
  // producing chunks cheaper than a task dispatch.
  const index_t grain = std::max<index_t>(256, adaptive_grain(rows_, 8));
  parallel_for(index_t{0}, rows_, grain, [&](index_t lo, index_t hi) {
    spmv_rows(lo, hi, x,
              y.subspan(static_cast<std::size_t>(lo),
                        static_cast<std::size_t>(hi - lo)));
  });
}

real_t CsrMatrix::spmv_dot(std::span<const real_t> x,
                           std::span<real_t> y) const {
  ESRP_CHECK_MSG(rows_ == cols_, "spmv_dot requires a square matrix");
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == rows_);
  // Same bitwise contract as spmv's routing: the mirror's fused kernel uses
  // the identical row chunking and lane-ordered dot below.
  if (sell_ != nullptr) return sell_->spmv_dot(x, y);
  // The row chunking must equal vec_dot's kReduceGrain index chunking (not
  // spmv's adaptive grain), and the per-chunk dot must be the lane-ordered
  // simd_dot_chunk: the dot partials are then the same sums in the same
  // order as the separate vec_dot, and y itself is per-row exact under any
  // partitioning, giving bitwise parity with the unfused pair.
  return parallel_reduce(index_t{0}, rows_, kReduceGrain, real_t{0},
                         [&](index_t lo, index_t hi) {
                           spmv_rows(lo, hi, x,
                                     y.subspan(static_cast<std::size_t>(lo),
                                               static_cast<std::size_t>(hi - lo)));
                           return simd_dot_chunk(x.data(), y.data(), lo, hi);
                         });
}

namespace {

/// Shared-sweep row kernel of the multi-RHS SpMV: for each row, stream the
/// nnz once and accumulate all k products, vectorizing lane-per-RHS (the
/// batch dimension is contiguous in `acc`, so stripes of kSimdLanes RHS
/// share one broadcast of the matrix value). Per RHS the additions happen in
/// the same nnz order as spmv_rows — the lane split only decides which
/// accumulator an addition lands in — so each output is bitwise identical to
/// the single-RHS kernel.
void multi_rows(const CsrMatrix& a, index_t row_begin, index_t row_end,
                std::span<const std::span<const real_t>> xs,
                std::span<const std::span<real_t>> ys, std::span<real_t> acc) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const std::size_t k = xs.size();
  for (index_t i = row_begin; i < row_end; ++i) {
    const auto b = static_cast<std::size_t>(row_ptr[i]);
    const auto e = static_cast<std::size_t>(row_ptr[i + 1]);
    for (std::size_t j = 0; j < k; ++j) acc[j] = 0;
    for (std::size_t nz = b; nz < e; ++nz) {
      const real_t v = values[nz];
      const auto c = static_cast<std::size_t>(col_idx[nz]);
      const Vec4 vv = Vec4::broadcast(v);
      std::size_t j = 0;
      for (; j + static_cast<std::size_t>(kSimdLanes) <= k;
           j += static_cast<std::size_t>(kSimdLanes)) {
        const Vec4 xv =
            Vec4::set(xs[j][c], xs[j + 1][c], xs[j + 2][c], xs[j + 3][c]);
        (Vec4::load(acc.data() + j) + vv * xv).store(acc.data() + j);
      }
      for (; j < k; ++j) acc[j] += v * xs[j][c];
    }
    for (std::size_t j = 0; j < k; ++j)
      ys[j][static_cast<std::size_t>(i)] = acc[j];
  }
}

} // namespace

void CsrMatrix::spmv_multi(std::span<const std::span<const real_t>> xs,
                           std::span<const std::span<real_t>> ys) const {
  ESRP_CHECK(xs.size() == ys.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    ESRP_CHECK(static_cast<index_t>(xs[j].size()) == cols_);
    ESRP_CHECK(static_cast<index_t>(ys[j].size()) == rows_);
  }
  if (xs.empty()) return;
  const index_t grain = std::max<index_t>(256, adaptive_grain(rows_, 8));
  parallel_for(index_t{0}, rows_, grain, [&](index_t lo, index_t hi) {
    std::vector<real_t> acc(xs.size());
    multi_rows(*this, lo, hi, xs, ys, acc);
  });
}

void CsrMatrix::spmv_multi_dot(std::span<const std::span<const real_t>> xs,
                               std::span<const std::span<real_t>> ys,
                               std::span<real_t> dots) const {
  ESRP_CHECK_MSG(rows_ == cols_, "spmv_multi_dot requires a square matrix");
  ESRP_CHECK(xs.size() == ys.size() && dots.size() == xs.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    ESRP_CHECK(static_cast<index_t>(xs[j].size()) == cols_);
    ESRP_CHECK(static_cast<index_t>(ys[j].size()) == rows_);
  }
  if (xs.empty()) return;
  // Same structure as spmv_dot, vector-valued: rows chunked by the fixed
  // kReduceGrain, each chunk's per-RHS dot partial produced by the
  // lane-ordered simd_dot_chunk, partials combined componentwise in index
  // order — per RHS exactly the reduction spmv_dot performs, hence bitwise
  // parity.
  using Partial = std::vector<real_t>;
  Partial total = parallel_reduce(
      index_t{0}, rows_, kReduceGrain, Partial(xs.size(), real_t{0}),
      [&](index_t lo, index_t hi) {
        Partial part(xs.size(), real_t{0});
        std::vector<real_t> acc(xs.size());
        multi_rows(*this, lo, hi, xs, ys, acc);
        for (std::size_t j = 0; j < xs.size(); ++j)
          part[j] = simd_dot_chunk(xs[j].data(), ys[j].data(), lo, hi);
        return part;
      },
      [](Partial a, Partial b) {
        for (std::size_t j = 0; j < a.size(); ++j) a[j] += b[j];
        return a;
      });
  for (std::size_t j = 0; j < xs.size(); ++j) dots[j] = total[j];
}

void CsrMatrix::spmv_rows(index_t row_begin, index_t row_end,
                          std::span<const real_t> x,
                          std::span<real_t> y) const {
  ESRP_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows_);
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == row_end - row_begin);
  for (index_t i = row_begin; i < row_end; ++i) {
    const auto b = static_cast<std::size_t>(row_ptr_[i]);
    const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
    real_t acc = 0;
    for (std::size_t k = b; k < e; ++k) acc += values_[k] * x[col_idx_[k]];
    y[i - row_begin] = acc;
  }
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t c : col_idx_) ++t_row_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < static_cast<std::size_t>(cols_); ++c)
    t_row_ptr[c + 1] += t_row_ptr[c];

  std::vector<index_t> t_col_idx(col_idx_.size());
  std::vector<real_t> t_values(values_.size());
  std::vector<index_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    const auto b = static_cast<std::size_t>(row_ptr_[i]);
    const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
    for (std::size_t k = b; k < e; ++k) {
      const auto pos = static_cast<std::size_t>(cursor[col_idx_[k]]++);
      t_col_idx[pos] = i;
      t_values[pos] = values_[k];
    }
  }
  // Rows of the transpose are filled in increasing original-row order, so
  // column indices are already sorted.
  return CsrMatrix(cols_, rows_, std::move(t_row_ptr), std::move(t_col_idx),
                   std::move(t_values));
}

namespace {
/// Global-to-local map for an increasing index list: -1 where absent.
std::vector<index_t> build_map(index_t domain,
                               std::span<const index_t> selected) {
  std::vector<index_t> map(static_cast<std::size_t>(domain), -1);
  index_t prev = -1;
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const index_t g = selected[k];
    ESRP_CHECK_MSG(g > prev, "index set must be strictly increasing");
    ESRP_CHECK(g >= 0 && g < domain);
    map[static_cast<std::size_t>(g)] = static_cast<index_t>(k);
    prev = g;
  }
  return map;
}
} // namespace

namespace {
void check_increasing_rows(std::span<const index_t> rowset, index_t rows) {
  index_t prev = -1;
  for (index_t g : rowset) {
    ESRP_CHECK_MSG(g > prev, "row index set must be strictly increasing");
    ESRP_CHECK(g >= 0 && g < rows);
    prev = g;
  }
}
} // namespace

CsrMatrix CsrMatrix::extract(std::span<const index_t> rowset,
                             std::span<const index_t> colset) const {
  check_increasing_rows(rowset, rows_);
  const std::vector<index_t> col_map = build_map(cols_, colset);
  std::vector<index_t> row_ptr(rowset.size() + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  std::size_t nnz_bound = 0;
  for (index_t gi : rowset) nnz_bound += row_cols(gi).size();
  col_idx.reserve(nnz_bound);
  values.reserve(nnz_bound);
  for (std::size_t r = 0; r < rowset.size(); ++r) {
    const index_t gi = rowset[r];
    ESRP_CHECK(gi >= 0 && gi < rows_);
    const auto cols = row_cols(gi);
    const auto vals = row_vals(gi);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t lj = col_map[static_cast<std::size_t>(cols[k])];
      if (lj >= 0) {
        col_idx.push_back(lj);
        values.push_back(vals[k]);
      }
    }
    row_ptr[r + 1] = static_cast<index_t>(col_idx.size());
  }
  return CsrMatrix(static_cast<index_t>(rowset.size()),
                   static_cast<index_t>(colset.size()), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

CsrMatrix CsrMatrix::extract_excluding_cols(
    std::span<const index_t> rowset, std::span<const index_t> excluded) const {
  check_increasing_rows(rowset, rows_);
  // Local index of a kept column = global index minus the number of excluded
  // columns before it.
  const std::vector<index_t> excl_map = build_map(cols_, excluded);
  std::vector<index_t> shift(static_cast<std::size_t>(cols_), 0);
  index_t removed = 0;
  for (index_t j = 0; j < cols_; ++j) {
    if (excl_map[static_cast<std::size_t>(j)] >= 0) ++removed;
    shift[static_cast<std::size_t>(j)] = removed;
  }

  std::vector<index_t> row_ptr(rowset.size() + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  std::size_t nnz_bound = 0;
  for (index_t gi : rowset) nnz_bound += row_cols(gi).size();
  col_idx.reserve(nnz_bound);
  values.reserve(nnz_bound);
  for (std::size_t r = 0; r < rowset.size(); ++r) {
    const index_t gi = rowset[r];
    ESRP_CHECK(gi >= 0 && gi < rows_);
    const auto cols = row_cols(gi);
    const auto vals = row_vals(gi);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t gj = cols[k];
      if (excl_map[static_cast<std::size_t>(gj)] >= 0) continue;
      col_idx.push_back(gj - shift[static_cast<std::size_t>(gj)]);
      values.push_back(vals[k]);
    }
    row_ptr[r + 1] = static_cast<index_t>(col_idx.size());
  }
  return CsrMatrix(static_cast<index_t>(rowset.size()),
                   cols_ - static_cast<index_t>(excluded.size()),
                   std::move(row_ptr), std::move(col_idx), std::move(values));
}

Vector CsrMatrix::diagonal() const {
  ESRP_CHECK_MSG(rows_ == cols_, "diagonal() requires a square matrix");
  Vector d(static_cast<std::size_t>(rows_), 0);
  for (index_t i = 0; i < rows_; ++i) d[static_cast<std::size_t>(i)] = at(i, i);
  return d;
}

bool CsrMatrix::is_symmetric(real_t tol) const {
  if (rows_ != cols_) return false;
  real_t amax = 0;
  for (real_t v : values_) amax = std::max(amax, std::abs(v));
  const real_t bound = tol * std::max(amax, real_t{1});
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (std::abs(vals[k] - at(cols[k], i)) > bound) return false;
    }
  }
  return true;
}

index_t CsrMatrix::nnz_within_band(index_t half_bandwidth_limit) const {
  index_t count = 0;
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j : row_cols(i)) {
      if (std::abs(i - j) <= half_bandwidth_limit) ++count;
    }
  }
  return count;
}

index_t CsrMatrix::half_bandwidth() const {
  index_t w = 0;
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    if (!cols.empty()) {
      w = std::max(w, std::abs(i - cols.front()));
      w = std::max(w, std::abs(cols.back() - i));
    }
  }
  return w;
}

CsrMatrix csr_identity(index_t n, real_t scale) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<real_t> values(static_cast<std::size_t>(n), scale);
  for (index_t i = 0; i <= n; ++i) row_ptr[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) col_idx[static_cast<std::size_t>(i)] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

} // namespace esrp
