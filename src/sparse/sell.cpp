#include "sparse/sell.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

SellMatrix::SellMatrix(const CsrMatrix& a, index_t sigma) {
  ESRP_CHECK_MSG(sigma >= 1, "SELL-C-sigma sorting window must be >= 1");
  ESRP_CHECK_MSG(a.cols() <= std::numeric_limits<std::int32_t>::max(),
                 "SELL-C-sigma stores 32-bit column indices");
  rows_ = a.rows();
  cols_ = a.cols();
  nnz_ = a.nnz();
  sigma_ = sigma;
  n_chunks_ = (rows_ + kChunkRows - 1) / kChunkRows;

  const auto row_ptr = a.row_ptr();
  const auto row_len = [&](index_t i) {
    return row_ptr[static_cast<std::size_t>(i) + 1] -
           row_ptr[static_cast<std::size_t>(i)];
  };

  // Sort rows by descending length within σ windows, stably (ties keep
  // original order — the permutation is a pure function of the sparsity
  // pattern). Windows are clipped at kReduceGrain boundaries so a window
  // never mixes rows from two reduction chunks; spmv_dot relies on slots
  // [g*G, (g+1)*G) holding exactly the original rows [g*G, (g+1)*G).
  perm_.resize(static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i)
    perm_[static_cast<std::size_t>(i)] = i;
  for (index_t wb = 0; wb < rows_;) {
    const index_t grain_end = (wb / kReduceGrain + 1) * kReduceGrain;
    const index_t we = std::min({rows_, wb + sigma_, grain_end});
    std::stable_sort(perm_.begin() + wb, perm_.begin() + we,
                     [&](index_t ra, index_t rb) {
                       return row_len(ra) > row_len(rb);
                     });
    wb = we;
  }

  chunk_len_.resize(static_cast<std::size_t>(n_chunks_));
  chunk_ptr_.resize(static_cast<std::size_t>(n_chunks_) + 1);
  chunk_ptr_[0] = 0;
  for (index_t c = 0; c < n_chunks_; ++c) {
    index_t longest = 0;
    for (index_t l = 0; l < kChunkRows; ++l) {
      const index_t slot = c * kChunkRows + l;
      if (slot < rows_)
        longest =
            std::max(longest, row_len(perm_[static_cast<std::size_t>(slot)]));
    }
    chunk_len_[static_cast<std::size_t>(c)] = longest;
    chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        chunk_ptr_[static_cast<std::size_t>(c)] + longest * kChunkRows;
  }

  // Padding entries stay value 0.0 / column 0: the +0.0 product never
  // changes an accumulator's bits (sell.hpp), and column 0 is a valid read
  // whenever any entry exists at all.
  const auto total = static_cast<std::size_t>(
      chunk_ptr_[static_cast<std::size_t>(n_chunks_)]);
  values_.assign(total, real_t{0});
  std::vector<std::int32_t> full_cols(total, 0);
  const index_t fill_grain = std::max<index_t>(64, adaptive_grain(n_chunks_, 8));
  parallel_for(index_t{0}, n_chunks_, fill_grain, [&](index_t clo,
                                                      index_t chi) {
    for (index_t c = clo; c < chi; ++c) {
      const auto o = static_cast<std::size_t>(
          chunk_ptr_[static_cast<std::size_t>(c)]);
      for (index_t l = 0; l < kChunkRows; ++l) {
        const index_t slot = c * kChunkRows + l;
        if (slot >= rows_) continue;
        const index_t row = perm_[static_cast<std::size_t>(slot)];
        const auto cols = a.row_cols(row);
        const auto vals = a.row_vals(row);
        for (std::size_t t = 0; t < cols.size(); ++t) {
          const std::size_t at =
              o + t * static_cast<std::size_t>(kChunkRows) +
              static_cast<std::size_t>(l);
          values_[at] = vals[t];
          full_cols[at] = static_cast<std::int32_t>(cols[t]);
        }
      }
    }
  });

  // Classify chunks: packed when the chunk is full, its four slots hold four
  // consecutive original rows, and every column position references four
  // consecutive columns — then one base column per position reconstructs the
  // tuple and the x gather is a unit-stride load. A padded entry inside a
  // consecutive tuple is harmless: its value is 0.0 and its implied column
  // is in range, so both paths add the same +0.0.
  chunk_kind_.assign(static_cast<std::size_t>(n_chunks_), std::uint8_t{0});
  col_ptr_.resize(static_cast<std::size_t>(n_chunks_) + 1);
  col_ptr_[0] = 0;
  for (index_t c = 0; c < n_chunks_; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    const auto o = static_cast<std::size_t>(chunk_ptr_[sc]);
    const index_t len = chunk_len_[sc];
    bool packed = c * kChunkRows + (kChunkRows - 1) < rows_;
    for (index_t l = 1; packed && l < kChunkRows; ++l)
      packed = perm_[static_cast<std::size_t>(c * kChunkRows + l)] ==
               perm_[static_cast<std::size_t>(c * kChunkRows)] + l;
    for (index_t t = 0; packed && t < len; ++t) {
      const std::size_t at =
          o + static_cast<std::size_t>(t) * static_cast<std::size_t>(kChunkRows);
      const std::int32_t c0 = full_cols[at];
      packed = full_cols[at + 1] == c0 + 1 && full_cols[at + 2] == c0 + 2 &&
               full_cols[at + 3] == c0 + 3;
    }
    chunk_kind_[sc] = packed ? 1 : 0;
    packed_chunks_ += packed ? 1 : 0;
    col_ptr_[sc + 1] = col_ptr_[sc] + (packed ? len : len * kChunkRows);
  }

  col_idx_.resize(
      static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(n_chunks_)]));
  parallel_for(index_t{0}, n_chunks_, fill_grain, [&](index_t clo,
                                                      index_t chi) {
    for (index_t c = clo; c < chi; ++c) {
      const auto sc = static_cast<std::size_t>(c);
      const auto o = static_cast<std::size_t>(chunk_ptr_[sc]);
      const auto co = static_cast<std::size_t>(col_ptr_[sc]);
      const index_t len = chunk_len_[sc];
      if (chunk_kind_[sc]) {
        for (index_t t = 0; t < len; ++t)
          col_idx_[co + static_cast<std::size_t>(t)] =
              full_cols[o + static_cast<std::size_t>(t) *
                                static_cast<std::size_t>(kChunkRows)];
      } else {
        for (index_t e = 0; e < len * kChunkRows; ++e)
          col_idx_[co + static_cast<std::size_t>(e)] =
              full_cols[o + static_cast<std::size_t>(e)];
      }
    }
  });
}

void SellMatrix::chunk_range_spmv(index_t slot_lo, index_t slot_hi,
                                  std::span<const real_t> x,
                                  std::span<real_t> y) const {
  const index_t c_begin = slot_lo / kChunkRows;
  const index_t c_end = (slot_hi + kChunkRows - 1) / kChunkRows;
  for (index_t c = c_begin; c < c_end; ++c) {
    const auto o =
        static_cast<std::size_t>(chunk_ptr_[static_cast<std::size_t>(c)]);
    const index_t len = chunk_len_[static_cast<std::size_t>(c)];
    const std::int32_t* cp =
        col_idx_.data() + static_cast<std::size_t>(
                              col_ptr_[static_cast<std::size_t>(c)]);
    // Lane l accumulates row perm_[4c + l] serially in column order — the
    // exact CSR row loop, four rows abreast. The packed path performs the
    // identical per-lane multiplies and adds; only the address computation
    // differs (base + lane vs an explicit per-lane index), so results stay
    // bitwise equal to the generic path and to CSR.
    Vec4 acc = Vec4::zero();
    if (chunk_kind_[static_cast<std::size_t>(c)]) {
      for (index_t t = 0; t < len; ++t) {
        const std::size_t at =
            o +
            static_cast<std::size_t>(t) * static_cast<std::size_t>(kChunkRows);
        const std::size_t c0 =
            static_cast<std::size_t>(cp[static_cast<std::size_t>(t)]);
        acc = acc + Vec4::load(values_.data() + at) * Vec4::load(x.data() + c0);
      }
      acc.store(y.data() +
                static_cast<std::size_t>(
                    perm_[static_cast<std::size_t>(c * kChunkRows)]));
    } else {
      for (index_t t = 0; t < len; ++t) {
        const std::size_t at =
            o +
            static_cast<std::size_t>(t) * static_cast<std::size_t>(kChunkRows);
        const std::int32_t* ct = cp + static_cast<std::size_t>(t) *
                                          static_cast<std::size_t>(kChunkRows);
        const Vec4 xv = Vec4::set(x[static_cast<std::size_t>(ct[0])],
                                  x[static_cast<std::size_t>(ct[1])],
                                  x[static_cast<std::size_t>(ct[2])],
                                  x[static_cast<std::size_t>(ct[3])]);
        acc = acc + Vec4::load(values_.data() + at) * xv;
      }
      for (index_t l = 0; l < kChunkRows; ++l) {
        const index_t slot = c * kChunkRows + l;
        if (slot < rows_)
          y[static_cast<std::size_t>(perm_[static_cast<std::size_t>(slot)])] =
              acc.lane(static_cast<int>(l));
      }
    }
  }
}

void SellMatrix::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == rows_);
  // Chunk-range partitioning: every chunk writes its own <= 4 y slots, so
  // any partition gives bitwise identical results at any thread count.
  const index_t grain = std::max<index_t>(64, adaptive_grain(n_chunks_, 8));
  parallel_for(index_t{0}, n_chunks_, grain, [&](index_t clo, index_t chi) {
    chunk_range_spmv(clo * kChunkRows, std::min(rows_, chi * kChunkRows), x,
                     y);
  });
}

real_t SellMatrix::spmv_dot(std::span<const real_t> x,
                            std::span<real_t> y) const {
  ESRP_CHECK_MSG(rows_ == cols_, "spmv_dot requires a square matrix");
  ESRP_CHECK(static_cast<index_t>(x.size()) == cols_);
  ESRP_CHECK(static_cast<index_t>(y.size()) == rows_);
  // Identical reduction shape to CsrMatrix::spmv_dot: kReduceGrain row
  // chunks, lane-ordered dot over the chunk in *original* row order. The
  // constructor guarantees a grain-aligned slot range [lo, hi) scatters
  // into exactly y[lo..hi), so each chunk's partial is self-contained.
  return parallel_reduce(index_t{0}, rows_, kReduceGrain, real_t{0},
                         [&](index_t lo, index_t hi) {
                           chunk_range_spmv(lo, hi, x, y);
                           return simd_dot_chunk(x.data(), y.data(), lo, hi);
                         });
}

} // namespace esrp
