#include "sparse/generators.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"

namespace esrp {

CsrMatrix laplace1d(index_t n) {
  ESRP_CHECK(n > 0);
  CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2);
    if (i + 1 < n) {
      b.add(i, i + 1, -1);
      b.add(i + 1, i, -1);
    }
  }
  return b.to_csr();
}

CsrMatrix poisson2d(index_t nx, index_t ny) {
  ESRP_CHECK(nx > 0 && ny > 0);
  const index_t n = nx * ny;
  CooBuilder b(n, n);
  auto id = [nx](index_t ix, index_t iy) { return iy * nx + ix; };
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx; ++ix) {
      const index_t i = id(ix, iy);
      b.add(i, i, 4);
      if (ix > 0) b.add(i, id(ix - 1, iy), -1);
      if (ix + 1 < nx) b.add(i, id(ix + 1, iy), -1);
      if (iy > 0) b.add(i, id(ix, iy - 1), -1);
      if (iy + 1 < ny) b.add(i, id(ix, iy + 1), -1);
    }
  }
  return b.to_csr();
}

CsrMatrix poisson3d(index_t nx, index_t ny, index_t nz) {
  ESRP_CHECK(nx > 0 && ny > 0 && nz > 0);
  const index_t n = nx * ny * nz;
  CooBuilder b(n, n);
  auto id = [nx, ny](index_t ix, index_t iy, index_t iz) {
    return (iz * ny + iy) * nx + ix;
  };
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t i = id(ix, iy, iz);
        b.add(i, i, 6);
        if (ix > 0) b.add(i, id(ix - 1, iy, iz), -1);
        if (ix + 1 < nx) b.add(i, id(ix + 1, iy, iz), -1);
        if (iy > 0) b.add(i, id(ix, iy - 1, iz), -1);
        if (iy + 1 < ny) b.add(i, id(ix, iy + 1, iz), -1);
        if (iz > 0) b.add(i, id(ix, iy, iz - 1), -1);
        if (iz + 1 < nz) b.add(i, id(ix, iy, iz + 1), -1);
      }
    }
  }
  return b.to_csr();
}

CsrMatrix banded_spd(index_t n, index_t half_bandwidth, double fill,
                     std::uint64_t seed) {
  ESRP_CHECK(n > 0 && half_bandwidth >= 0);
  ESRP_CHECK(fill >= 0 && fill <= 1);
  Rng rng(seed);
  CooBuilder b(n, n);
  Vector row_abs_sum(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) {
    const index_t j_end = std::min(n, i + half_bandwidth + 1);
    for (index_t j = i + 1; j < j_end; ++j) {
      if (rng.next_double() >= fill) continue;
      const real_t v = rng.uniform(-1.0, 1.0);
      if (v == real_t{0}) continue;
      b.add_sym(i, j, v);
      row_abs_sum[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs_sum[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  // Strict diagonal dominance => SPD for a symmetric matrix.
  for (index_t i = 0; i < n; ++i)
    b.add(i, i, row_abs_sum[static_cast<std::size_t>(i)] + rng.uniform(0.5, 1.5));
  return b.to_csr();
}

namespace {

/// Shared edge-based assembly: for each (i, j, w) adds the PSD term
/// w * (e_i - e_j)(e_i - e_j)^T, guaranteeing symmetric positive
/// semi-definiteness; a final positive diagonal shift makes it definite.
class GraphLaplacianAssembler {
public:
  explicit GraphLaplacianAssembler(index_t n) : builder_(n, n), n_(n) {}

  void add_edge(index_t i, index_t j, real_t w) {
    builder_.add(i, i, w);
    builder_.add(j, j, w);
    builder_.add(i, j, -w);
    builder_.add(j, i, -w);
  }

  CsrMatrix finish(real_t diag_shift) {
    for (index_t i = 0; i < n_; ++i) builder_.add(i, i, diag_shift);
    return builder_.to_csr();
  }

private:
  CooBuilder builder_;
  index_t n_;
};

} // namespace

CsrMatrix diffusion3d_27pt(index_t nx, index_t ny, index_t nz, real_t contrast,
                           std::uint64_t seed, real_t shift,
                           real_t anisotropy_y, real_t anisotropy_z) {
  ESRP_CHECK(nx > 0 && ny > 0 && nz > 0);
  ESRP_CHECK(contrast >= 1);
  ESRP_CHECK(shift > 0);
  ESRP_CHECK(anisotropy_y > 0 && anisotropy_z > 0);
  Rng rng(seed);
  const index_t n = nx * ny * nz;
  GraphLaplacianAssembler asm_(n);
  auto id = [nx, ny](index_t ix, index_t iy, index_t iz) {
    return (iz * ny + iy) * nx + ix;
  };
  const real_t log_c = std::log(contrast);
  // Enumerate each undirected edge once: offsets lexicographically positive.
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t i = id(ix, iy, iz);
        for (index_t dz = 0; dz <= 1; ++dz) {
          for (index_t dy = (dz == 0 ? 0 : -1); dy <= 1; ++dy) {
            for (index_t dx = (dz == 0 && dy == 0 ? 1 : -1); dx <= 1; ++dx) {
              const index_t jx = ix + dx, jy = iy + dy, jz = iz + dz;
              if (jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz >= nz)
                continue;
              // Log-uniform weight in [1/contrast, contrast], scaled by the
              // directional anisotropy of the edge.
              real_t w = std::exp(rng.uniform(-log_c, log_c));
              if (dy != 0) w *= anisotropy_y;
              if (dz != 0) w *= anisotropy_z;
              asm_.add_edge(i, id(jx, jy, jz), w);
            }
          }
        }
      }
    }
  }
  // The shift keeps the matrix definite without flattening the spectrum.
  return asm_.finish(shift);
}

CsrMatrix elasticity3d(index_t nx, index_t ny, index_t nz, real_t contrast,
                       std::uint64_t seed, real_t shift, real_t anisotropy_y,
                       real_t anisotropy_z) {
  ESRP_CHECK(nx > 0 && ny > 0 && nz > 0);
  ESRP_CHECK(contrast >= 1);
  ESRP_CHECK(shift > 0);
  ESRP_CHECK(anisotropy_y > 0 && anisotropy_z > 0);
  Rng rng(seed);
  constexpr index_t kDof = 3;
  const index_t points = nx * ny * nz;
  const index_t n = points * kDof;
  CooBuilder b(n, n);
  Vector diag_shift(static_cast<std::size_t>(n), 0);

  auto id = [nx, ny](index_t ix, index_t iy, index_t iz) {
    return (iz * ny + iy) * nx + ix;
  };

  // Random symmetric positive definite 3x3 coupling block with eigenvalues
  // roughly spanning [1, contrast]: B = R^T D R with R a random rotation-ish
  // matrix and D log-spread diagonal.
  auto random_block = [&rng, contrast]() {
    DenseMatrix r(kDof, kDof);
    for (index_t i = 0; i < kDof; ++i)
      for (index_t j = 0; j < kDof; ++j) r(i, j) = rng.uniform(-1.0, 1.0);
    DenseMatrix d(kDof, kDof);
    const real_t log_c = std::log(contrast);
    for (index_t i = 0; i < kDof; ++i) d(i, i) = std::exp(rng.uniform(0.0, log_c));
    // B = R^T D R + eps I (symmetric PD).
    DenseMatrix rt = r.transpose();
    DenseMatrix b3 = rt.multiply(d).multiply(r);
    for (index_t i = 0; i < kDof; ++i) b3(i, i) += 1e-3;
    // Symmetrize against floating-point asymmetry from the triple product.
    for (index_t i = 0; i < kDof; ++i)
      for (index_t j = i + 1; j < kDof; ++j) {
        const real_t avg = (b3(i, j) + b3(j, i)) / 2;
        b3(i, j) = avg;
        b3(j, i) = avg;
      }
    return b3;
  };

  auto add_edge = [&](index_t pi, index_t pj, real_t scale) {
    DenseMatrix blk = random_block();
    for (index_t bi = 0; bi < kDof; ++bi)
      for (index_t bj = 0; bj < kDof; ++bj) blk(bi, bj) *= scale;
    // For u = (.., u_i, .., u_j, ..): the term (u_i - u_j)^T B (u_i - u_j)
    // contributes +B to (i,i) and (j,j) and -B to (i,j), (j,i).
    for (index_t a = 0; a < kDof; ++a) {
      for (index_t c = 0; c < kDof; ++c) {
        const real_t v = blk(a, c);
        if (v == real_t{0}) continue;
        b.add(pi * kDof + a, pi * kDof + c, v);
        b.add(pj * kDof + a, pj * kDof + c, v);
        b.add(pi * kDof + a, pj * kDof + c, -v);
        b.add(pj * kDof + a, pi * kDof + c, -v);
      }
    }
  };

  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t p = id(ix, iy, iz);
        if (ix + 1 < nx) add_edge(p, id(ix + 1, iy, iz), 1);
        if (iy + 1 < ny) add_edge(p, id(ix, iy + 1, iz), anisotropy_y);
        if (iz + 1 < nz) add_edge(p, id(ix, iy, iz + 1), anisotropy_z);
      }
    }
  }
  for (index_t i = 0; i < n; ++i) b.add(i, i, shift);
  return b.to_csr();
}

TestProblem emilia_like(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  TestProblem p;
  p.name = "emilia_like_" + std::to_string(nx) + "x" + std::to_string(ny) +
           "x" + std::to_string(nz);
  p.problem_type = "Structural (3D 27-pt variable-coefficient diffusion)";
  // Contrast, shift and anisotropy tuned so the default 32^3 instance needs
  // ~1200 block-Jacobi PCG iterations — the laptop-scale counterpart of
  // Emilia_923's C = 10279 (a geomechanical mesh with depth-thin elements,
  // hence the weak coupling along z). The anisotropy is z-only so that the
  // slabs owned by contiguous rank blocks stay well-conditioned and the
  // Alg. 2 inner solves remain much cheaper than the global solve, as in
  // the paper.
  p.matrix = diffusion3d_27pt(nx, ny, nz, /*contrast=*/1e3, seed,
                              /*shift=*/1e-4, /*anisotropy_y=*/1.0,
                              /*anisotropy_z=*/1e-3);
  return p;
}

TestProblem audikw_like(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  TestProblem p;
  p.name = "audikw_like_" + std::to_string(nx) + "x" + std::to_string(ny) +
           "x" + std::to_string(nz);
  p.problem_type = "Structural (3D elasticity-like, 3 dof/point)";
  // Tuned so the default 20^3 instance needs ~1100 block-Jacobi PCG
  // iterations (paper: audikw_1 converges in C = 5543). z-only anisotropy
  // for the same subdomain-conditioning reason as emilia_like.
  p.matrix = elasticity3d(nx, ny, nz, /*contrast=*/1e3, seed, /*shift=*/3e-3,
                          /*anisotropy_y=*/1.0, /*anisotropy_z=*/0.1);
  return p;
}

TestProblem emilia_like_default() { return emilia_like(32, 32, 32); }

TestProblem audikw_like_default() { return audikw_like(20, 20, 20); }

} // namespace esrp
