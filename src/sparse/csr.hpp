// Compressed-sparse-row matrix: the storage format used by every solver and
// communication-plan component. Column indices within a row are kept sorted;
// this is relied upon by the plan builders and submatrix extraction.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"

namespace esrp {

class SellMatrix;

class CsrMatrix {
public:
  CsrMatrix() : rows_(0), cols_(0), row_ptr_{0} {}

  /// Takes ownership of raw CSR arrays. `row_ptr` must have rows+1 entries,
  /// be non-decreasing, and column indices must be sorted within each row.
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<real_t> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(col_idx_.size()); }

  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const real_t> values() const { return values_; }
  /// Mutable values. Detaches any attached SELL-C-σ mirror: the mirror
  /// copies the values at conversion time, so it would silently serve stale
  /// numbers after an in-place edit.
  std::span<real_t> values_mut() {
    sell_.reset();
    return values_;
  }

  /// Attach a SELL-C-σ mirror of this matrix (sparse/sell.hpp). While
  /// attached, spmv and spmv_dot route through the mirror's chunked kernels
  /// — bitwise identical to the CSR kernels, so every solver accelerates
  /// transparently. The mirror must have been built from this matrix's
  /// current values; values_mut() detaches it. Copies of the matrix share
  /// the (immutable) mirror.
  void attach_sell(std::shared_ptr<const SellMatrix> sell) {
    sell_ = std::move(sell);
  }
  /// The attached SELL-C-σ mirror, or null.
  const SellMatrix* sell() const { return sell_.get(); }

  /// Column indices of row i (sorted ascending).
  std::span<const index_t> row_cols(index_t i) const;
  /// Values of row i, parallel to row_cols(i).
  std::span<const real_t> row_vals(index_t i) const;

  /// Entry lookup by binary search within the row; 0 if not stored.
  real_t at(index_t i, index_t j) const;

  /// y := A x.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

  /// Fused y := A x and <x, y> in a single row-partitioned pass — the
  /// SpMV + p·Ap pair of a CG iteration without re-streaming x and y.
  /// Requires a square matrix. The dot is accumulated over fixed chunks of
  /// kReduceGrain rows combined in index order, so the returned value is
  /// bitwise identical to spmv(x, y) followed by vec_dot(x, y) at every
  /// thread count (see common/fused.hpp for the determinism contract).
  real_t spmv_dot(std::span<const real_t> x, std::span<real_t> y) const;

  /// Multi-RHS SpMV: ys[j] := A xs[j] for all j, streaming each matrix row
  /// once for the whole batch (the batched-solve sweep sharing). Each
  /// per-RHS product is computed row-exactly — the same accumulation order
  /// as spmv(xs[j], ys[j]) — so every ys[j] is bitwise identical to the
  /// single-RHS kernel at any thread count.
  void spmv_multi(std::span<const std::span<const real_t>> xs,
                  std::span<const std::span<real_t>> ys) const;

  /// Multi-RHS fused SpMV + dot: ys[j] := A xs[j] and dots[j] = <xs[j],
  /// ys[j]>, one pass over the matrix rows for the whole batch. Rows are
  /// chunked by kReduceGrain with one independent accumulator per RHS
  /// combined in index order, so each dots[j] is bitwise identical to
  /// spmv_dot(xs[j], ys[j]) at every thread count — the contract the
  /// batched PCG's per-RHS parity rests on. Requires a square matrix.
  void spmv_multi_dot(std::span<const std::span<const real_t>> xs,
                      std::span<const std::span<real_t>> ys,
                      std::span<real_t> dots) const;

  /// y := A[row_begin:row_end, :] x — the node-local part of a distributed
  /// SpMV; `y` has row_end - row_begin entries.
  void spmv_rows(index_t row_begin, index_t row_end, std::span<const real_t> x,
                 std::span<real_t> y) const;

  /// Flop count of one full SpMV (2 * nnz), for the cost model.
  index_t spmv_flops() const { return 2 * nnz(); }

  CsrMatrix transpose() const;

  /// Extract the submatrix A[rowset, colset] as a compact
  /// |rowset| x |colset| CSR. Both index lists must be strictly increasing.
  CsrMatrix extract(std::span<const index_t> rowset,
                    std::span<const index_t> colset) const;

  /// Extract A[rowset, all columns NOT in colset_complement]: convenience
  /// for A_{I_f, I \ I_f}. `excluded` must be strictly increasing.
  CsrMatrix extract_excluding_cols(std::span<const index_t> rowset,
                                   std::span<const index_t> excluded) const;

  /// Diagonal entries (0 where not stored); requires a square matrix.
  Vector diagonal() const;

  /// Structural + numerical symmetry check: |a_ij - a_ji| <= tol * max|a|.
  bool is_symmetric(real_t tol = 1e-12) const;

  /// Number of stored entries in the strict band |i - j| <= half_bandwidth.
  index_t nnz_within_band(index_t half_bandwidth) const;

  /// Maximum |i - j| over stored entries (matrix bandwidth).
  index_t half_bandwidth() const;

  bool empty() const { return rows_ == 0 || cols_ == 0; }

private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<real_t> values_;
  /// Optional SELL-C-σ mirror of the same matrix (see attach_sell).
  std::shared_ptr<const SellMatrix> sell_;
};

/// Scaled identity as CSR (used in tests and as a trivial preconditioner
/// action matrix).
CsrMatrix csr_identity(index_t n, real_t scale = 1);

} // namespace esrp
