// Small dense-matrix support: column-major storage, Cholesky factorization
// and triangular solves. Used for (a) inverting the block Jacobi blocks
// (paper: block size <= 10) and (b) dense reference computations in tests.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"

namespace esrp {

class CsrMatrix;

class DenseMatrix {
public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(index_t rows, index_t cols);

  static DenseMatrix identity(index_t n);
  static DenseMatrix from_csr(const CsrMatrix& a);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  real_t& operator()(index_t i, index_t j);
  real_t operator()(index_t i, index_t j) const;

  /// y := A x.
  void matvec(std::span<const real_t> x, std::span<real_t> y) const;

  DenseMatrix transpose() const;
  DenseMatrix multiply(const DenseMatrix& b) const;

  /// Maximum absolute entry difference against `other`.
  real_t max_abs_diff(const DenseMatrix& other) const;

  bool is_symmetric(real_t tol = 1e-12) const;

private:
  index_t rows_;
  index_t cols_;
  std::vector<real_t> data_; // column-major
};

/// Cholesky factorization A = L L^T of an SPD matrix; throws esrp::Error if a
/// non-positive pivot is encountered (matrix not SPD to working precision).
class Cholesky {
public:
  explicit Cholesky(const DenseMatrix& a);

  index_t dim() const { return l_.rows(); }

  /// Solve A x = b.
  Vector solve(std::span<const real_t> b) const;

  /// Dense inverse A^{-1} (used to materialize block Jacobi actions).
  DenseMatrix inverse() const;

  /// log(det(A)) from the factor (sanity metric in tests).
  real_t log_det() const;

private:
  DenseMatrix l_;
};

/// Dense Gaussian-elimination solve with partial pivoting, for general
/// (non-SPD) reference solves in tests.
Vector dense_solve(const DenseMatrix& a, std::span<const real_t> b);

} // namespace esrp
