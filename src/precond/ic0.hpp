// Incomplete Cholesky factorization with zero fill-in, IC(0): A ~ L L^T with
// L restricted to the sparsity pattern of tril(A). Applied via two sparse
// triangular solves. One of the "more appropriate preconditioners" the
// paper's conclusions point to; like SSOR it has no explicit sparse action
// matrix, so it is available to the plain solver and ablations only.
#pragma once

#include "precond/preconditioner.hpp"

namespace esrp {

class Ic0Preconditioner final : public Preconditioner {
public:
  /// Throws esrp::Error if a pivot becomes non-positive (possible for
  /// general SPD matrices; the usual remedy is a diagonal shift, exposed as
  /// `shift` multiplying the diagonal).
  explicit Ic0Preconditioner(const CsrMatrix& a, real_t shift = 0.0);

  std::string name() const override { return "ic0"; }
  index_t dim() const override { return l_.rows(); }
  void apply(std::span<const real_t> r, std::span<real_t> z) const override;
  double apply_flops() const override {
    return 4.0 * static_cast<double>(l_.nnz());
  }

  const CsrMatrix& factor() const { return l_; }

private:
  CsrMatrix l_; // lower-triangular factor, diagonal included
};

} // namespace esrp
