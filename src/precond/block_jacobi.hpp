// Block Jacobi preconditioner (the paper's choice, §5): non-overlapping
// diagonal blocks, every block contained within a single node's index range,
// uniformly sized with as few blocks as possible under a maximum block size
// (paper: 10). Each block of A is inverted densely (Cholesky), so the
// preconditioner action P = blockdiag(B_1^{-1}, ..., B_m^{-1}) is available
// as an explicit sparse matrix — which is what the ESR/ESRP reconstruction
// (Alg. 2) requires, and which makes P_{I_f, I\I_f} = 0 whenever whole nodes
// fail.
#pragma once

#include <optional>
#include <vector>

#include "partition/partition.hpp"
#include "precond/preconditioner.hpp"

namespace esrp {

class BlockJacobiPreconditioner final : public Preconditioner {
public:
  /// Node-aligned blocks: within each node's range, uses as few uniformly
  /// sized blocks as possible with size <= max_block_size.
  BlockJacobiPreconditioner(const CsrMatrix& a, const BlockRowPartition& part,
                            index_t max_block_size = 10);

  /// Single-domain variant (no partition): blocks tile [0, n).
  BlockJacobiPreconditioner(const CsrMatrix& a, index_t max_block_size = 10);

  std::string name() const override { return "block_jacobi"; }
  index_t dim() const override { return p_.rows(); }
  void apply(std::span<const real_t> r, std::span<real_t> z) const override;
  const CsrMatrix* action_matrix() const override { return &p_; }
  /// The block Jacobi matrix M = blockdiag(B_1, ..., B_m) (the diagonal
  /// blocks of A themselves): the "preconditioner itself" formulation.
  const CsrMatrix* matrix_form() const override { return &m_; }
  double apply_flops() const override { return 2.0 * static_cast<double>(p_.nnz()); }

  /// Block boundaries: blocks are [starts[k], starts[k+1]).
  const std::vector<index_t>& block_starts() const { return starts_; }
  index_t num_blocks() const { return static_cast<index_t>(starts_.size()) - 1; }

private:
  void build(const CsrMatrix& a);

  std::vector<index_t> starts_;
  CsrMatrix p_; ///< inverse blocks (the action, z = P r)
  CsrMatrix m_; ///< original blocks (the matrix form, M z = r)
};

/// Split [lo, hi) into the fewest uniformly sized pieces of size <=
/// max_block_size; returns the piece boundaries including both endpoints.
/// Exposed for testing.
std::vector<index_t> uniform_blocks(index_t lo, index_t hi,
                                    index_t max_block_size);

} // namespace esrp
