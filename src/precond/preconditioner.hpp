// Preconditioner interface.
//
// PCG applies the preconditioner as a linear operator: z = P r (paper Alg. 1,
// line 6, with P the *action*, i.e. P ~ A^{-1}). The ESR/ESRP reconstruction
// (Alg. 2) additionally needs P as an explicit matrix, because it solves
//   P_{I_f,I_f} r_{I_f} = z_{I_f} - P_{I_f,I\I_f} r_{I\I_f}.
// Preconditioners that can materialize their action as a sparse matrix
// return it from action_matrix(); the others (SSOR, IC(0)) can be used with
// the plain solver but not with ESR/ESRP reconstruction — exactly the
// formulation question the paper's reference [20] addresses.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace esrp {

class Preconditioner {
public:
  virtual ~Preconditioner() = default;

  virtual std::string name() const = 0;

  /// Dimension of the (square) operator.
  virtual index_t dim() const = 0;

  /// z := P r (the preconditioner action).
  virtual void apply(std::span<const real_t> r, std::span<real_t> z) const = 0;

  /// Explicit CSR of the action (z = action_matrix() * r), or nullptr when
  /// the action is only available as an algorithm. This is the "inverse
  /// formulation" of the paper's reference [20]: P ~ A^{-1} as a matrix.
  virtual const CsrMatrix* action_matrix() const { return nullptr; }

  /// Explicit CSR of the preconditioner *matrix* M with z defined by
  /// M z = r (the "preconditioner itself" formulation of [20]), or nullptr.
  /// When available, the Alg. 2 reconstruction can recover r without an
  /// inner solve: r_{I_f} = M_{I_f,I} z (see reconstruction.hpp).
  virtual const CsrMatrix* matrix_form() const { return nullptr; }

  /// Floating-point cost of one apply() (for the cost model).
  virtual double apply_flops() const = 0;
};

/// Identity preconditioner: PCG degenerates to plain CG.
class IdentityPreconditioner final : public Preconditioner {
public:
  explicit IdentityPreconditioner(index_t n) : n_(n), p_(csr_identity(n)) {}

  std::string name() const override { return "identity"; }
  index_t dim() const override { return n_; }

  void apply(std::span<const real_t> r, std::span<real_t> z) const override {
    ESRP_CHECK(static_cast<index_t>(r.size()) == n_ && r.size() == z.size());
    std::copy(r.begin(), r.end(), z.begin());
  }

  const CsrMatrix* action_matrix() const override { return &p_; }
  const CsrMatrix* matrix_form() const override { return &p_; }
  double apply_flops() const override { return static_cast<double>(n_); }

private:
  index_t n_;
  CsrMatrix p_;
};

} // namespace esrp
