#include "precond/ssor.hpp"

#include "common/error.hpp"

namespace esrp {

SsorPreconditioner::SsorPreconditioner(const CsrMatrix& a, real_t omega)
    : a_(a), diag_(a.diagonal()), omega_(omega) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK_MSG(omega > 0 && omega < 2, "SSOR requires omega in (0,2)");
  for (index_t i = 0; i < a.rows(); ++i)
    ESRP_CHECK_MSG(diag_[static_cast<std::size_t>(i)] > 0,
                   "non-positive diagonal entry at row " << i);
}

void SsorPreconditioner::apply(std::span<const real_t> r,
                               std::span<real_t> z) const {
  const index_t n = a_.rows();
  ESRP_CHECK(static_cast<index_t>(r.size()) == n && r.size() == z.size());
  const real_t w = omega_;

  // Forward sweep: (D/w + L) u = r, stored into z.
  for (index_t i = 0; i < n; ++i) {
    real_t acc = r[static_cast<std::size_t>(i)];
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_vals(i);
    for (std::size_t k = 0; k < cols.size() && cols[k] < i; ++k)
      acc -= vals[k] * z[static_cast<std::size_t>(cols[k])];
    z[static_cast<std::size_t>(i)] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
  // Scale: v = ((2 - w)/w) D u.
  for (index_t i = 0; i < n; ++i)
    z[static_cast<std::size_t>(i)] *=
        (2 - w) / w * diag_[static_cast<std::size_t>(i)];
  // Backward sweep: (D/w + U) z = v. U entries are cols[k] > i (symmetry).
  for (index_t i = n - 1; i >= 0; --i) {
    real_t acc = z[static_cast<std::size_t>(i)];
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_vals(i);
    for (std::size_t k = cols.size(); k-- > 0 && cols[k] > i;)
      acc -= vals[k] * z[static_cast<std::size_t>(cols[k])];
    z[static_cast<std::size_t>(i)] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
}

} // namespace esrp
