// Point Jacobi (diagonal) preconditioner: P = diag(A)^{-1}.
#pragma once

#include "precond/preconditioner.hpp"

namespace esrp {

class JacobiPreconditioner final : public Preconditioner {
public:
  /// Requires a square matrix with strictly positive diagonal (SPD matrices
  /// qualify).
  explicit JacobiPreconditioner(const CsrMatrix& a);

  std::string name() const override { return "jacobi"; }
  index_t dim() const override { return p_.rows(); }
  void apply(std::span<const real_t> r, std::span<real_t> z) const override;
  const CsrMatrix* action_matrix() const override { return &p_; }
  double apply_flops() const override { return static_cast<double>(p_.rows()); }

private:
  CsrMatrix p_; // diagonal matrix of 1/a_ii
};

} // namespace esrp
