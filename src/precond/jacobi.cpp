#include "precond/jacobi.hpp"

#include "common/error.hpp"

namespace esrp {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  ESRP_CHECK_MSG(a.rows() == a.cols(), "Jacobi requires a square matrix");
  const index_t n = a.rows();
  const Vector d = a.diagonal();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<real_t> values(static_cast<std::size_t>(n));
  for (index_t i = 0; i <= n; ++i) row_ptr[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) {
    const real_t dii = d[static_cast<std::size_t>(i)];
    ESRP_CHECK_MSG(dii > 0, "non-positive diagonal entry at row " << i);
    col_idx[static_cast<std::size_t>(i)] = i;
    values[static_cast<std::size_t>(i)] = 1 / dii;
  }
  p_ = CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                 std::move(values));
}

void JacobiPreconditioner::apply(std::span<const real_t> r,
                                 std::span<real_t> z) const {
  const index_t n = p_.rows();
  ESRP_CHECK(static_cast<index_t>(r.size()) == n && r.size() == z.size());
  const auto vals = p_.values();
  for (index_t i = 0; i < n; ++i)
    z[static_cast<std::size_t>(i)] = vals[static_cast<std::size_t>(i)] *
                                     r[static_cast<std::size_t>(i)];
}

} // namespace esrp
