#include "precond/block_jacobi.hpp"

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"

namespace esrp {

std::vector<index_t> uniform_blocks(index_t lo, index_t hi,
                                    index_t max_block_size) {
  ESRP_CHECK(lo <= hi);
  ESRP_CHECK(max_block_size >= 1);
  std::vector<index_t> starts{lo};
  const index_t len = hi - lo;
  if (len == 0) return starts;
  const index_t nblocks = (len + max_block_size - 1) / max_block_size;
  const index_t base = len / nblocks;
  const index_t extra = len % nblocks;
  starts.reserve(static_cast<std::size_t>(nblocks) + 1);
  index_t pos = lo;
  for (index_t b = 0; b < nblocks; ++b) {
    pos += base + (b < extra ? 1 : 0);
    starts.push_back(pos);
  }
  ESRP_CHECK(starts.back() == hi);
  return starts;
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(
    const CsrMatrix& a, const BlockRowPartition& part, index_t max_block_size) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(a.rows() == part.global_size());
  starts_ = {0};
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const auto node_blocks = uniform_blocks(part.begin(s), part.end(s),
                                            max_block_size);
    starts_.insert(starts_.end(), node_blocks.begin() + 1, node_blocks.end());
  }
  build(a);
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(const CsrMatrix& a,
                                                     index_t max_block_size) {
  ESRP_CHECK(a.rows() == a.cols());
  starts_ = uniform_blocks(0, a.rows(), max_block_size);
  build(a);
}

void BlockJacobiPreconditioner::build(const CsrMatrix& a) {
  CooBuilder inv_builder(a.rows(), a.rows());
  CooBuilder mat_builder(a.rows(), a.rows());
  for (std::size_t b = 0; b + 1 < starts_.size(); ++b) {
    const index_t lo = starts_[b], hi = starts_[b + 1];
    const index_t len = hi - lo;
    if (len == 0) continue;
    DenseMatrix block(len, len);
    for (index_t i = lo; i < hi; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        if (j >= lo && j < hi) {
          block(i - lo, j - lo) = vals[k];
          mat_builder.add(i, j, vals[k]);
        }
      }
    }
    const DenseMatrix inv = Cholesky(block).inverse();
    for (index_t bi = 0; bi < len; ++bi)
      for (index_t bj = 0; bj < len; ++bj) {
        const real_t v = inv(bi, bj);
        if (v != real_t{0}) inv_builder.add(lo + bi, lo + bj, v);
      }
  }
  p_ = inv_builder.to_csr();
  m_ = mat_builder.to_csr();
}

void BlockJacobiPreconditioner::apply(std::span<const real_t> r,
                                      std::span<real_t> z) const {
  p_.spmv(r, z);
}

} // namespace esrp
