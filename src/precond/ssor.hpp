// SSOR preconditioner:
//   M = 1/(omega (2 - omega)) (D + omega L) D^{-1} (D + omega L)^T,
// applied as z = M^{-1} r via one forward and one backward triangular sweep.
// Its action cannot be materialized sparsely, so action_matrix() is nullptr:
// SSOR works with the plain PCG solver and the precond ablation, but not
// with ESR/ESRP reconstruction (see preconditioner.hpp).
#pragma once

#include "precond/preconditioner.hpp"

namespace esrp {

class SsorPreconditioner final : public Preconditioner {
public:
  /// Requires a symmetric matrix with positive diagonal; omega in (0, 2).
  explicit SsorPreconditioner(const CsrMatrix& a, real_t omega = 1.0);

  std::string name() const override { return "ssor"; }
  index_t dim() const override { return a_.rows(); }
  void apply(std::span<const real_t> r, std::span<real_t> z) const override;
  double apply_flops() const override {
    return 4.0 * static_cast<double>(a_.nnz());
  }

private:
  CsrMatrix a_;
  Vector diag_;
  real_t omega_;
};

} // namespace esrp
