#include "precond/ic0.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace esrp {

Ic0Preconditioner::Ic0Preconditioner(const CsrMatrix& a, real_t shift) {
  ESRP_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();

  // Working copy of tril(A) in row-major arrays we can update in place.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  // A is symmetric (checked numerically below via the factorization), so
  // the lower triangle incl. diagonal holds (nnz + n) / 2 entries.
  col_idx.reserve(static_cast<std::size_t>(a.nnz() + n) / 2);
  values.reserve(static_cast<std::size_t>(a.nnz() + n) / 2);
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size() && cols[k] <= i; ++k) {
      col_idx.push_back(cols[k]);
      real_t v = vals[k];
      if (cols[k] == i) v *= (1 + shift);
      values.push_back(v);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(col_idx.size());
  }

  // Standard up-looking IC(0): for each row i, eliminate with previous rows
  // restricted to the existing pattern.
  auto row_begin = [&](index_t i) { return static_cast<std::size_t>(row_ptr[i]); };
  auto row_end = [&](index_t i) { return static_cast<std::size_t>(row_ptr[i + 1]); };

  for (index_t i = 0; i < n; ++i) {
    for (std::size_t ki = row_begin(i); ki < row_end(i); ++ki) {
      const index_t j = col_idx[ki];
      real_t sum = values[ki];
      // Dot of rows i and j over columns < j (merged walk on sorted cols).
      std::size_t pi = row_begin(i), pj = row_begin(j);
      while (pi < row_end(i) && pj < row_end(j) && col_idx[pi] < j &&
             col_idx[pj] < j) {
        if (col_idx[pi] == col_idx[pj]) {
          sum -= values[pi] * values[pj];
          ++pi;
          ++pj;
        } else if (col_idx[pi] < col_idx[pj]) {
          ++pi;
        } else {
          ++pj;
        }
      }
      if (j == i) {
        ESRP_CHECK_MSG(sum > 0, "IC(0) breakdown: non-positive pivot at row "
                                    << i << " (try a diagonal shift)");
        values[ki] = std::sqrt(sum);
      } else {
        // L(j,j) is the last entry of row j (pattern includes the diagonal).
        const real_t ljj = values[row_end(j) - 1];
        values[ki] = sum / ljj;
      }
    }
  }

  l_ = CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                 std::move(values));
}

void Ic0Preconditioner::apply(std::span<const real_t> r,
                              std::span<real_t> z) const {
  const index_t n = l_.rows();
  ESRP_CHECK(static_cast<index_t>(r.size()) == n && r.size() == z.size());

  // Forward solve L y = r (y stored in z).
  for (index_t i = 0; i < n; ++i) {
    const auto cols = l_.row_cols(i);
    const auto vals = l_.row_vals(i);
    real_t acc = r[static_cast<std::size_t>(i)];
    std::size_t k = 0;
    for (; k + 1 < cols.size(); ++k)
      acc -= vals[k] * z[static_cast<std::size_t>(cols[k])];
    z[static_cast<std::size_t>(i)] = acc / vals[k]; // diagonal is last
  }
  // Backward solve L^T z = y, column-oriented over L's rows.
  for (index_t i = n - 1; i >= 0; --i) {
    const auto cols = l_.row_cols(i);
    const auto vals = l_.row_vals(i);
    const real_t zi = z[static_cast<std::size_t>(i)] / vals[cols.size() - 1];
    z[static_cast<std::size_t>(i)] = zi;
    for (std::size_t k = 0; k + 1 < cols.size(); ++k)
      z[static_cast<std::size_t>(cols[k])] -= vals[k] * zi;
  }
}

} // namespace esrp
