#include "scenario/kv_params.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/error.hpp"

namespace esrp {

KvParams::KvParams(const std::string& arg, std::string what,
                   std::vector<std::string> allowed)
    : what_(std::move(what)) {
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t end = arg.find(',', pos);
    if (end == std::string::npos) end = arg.size();
    const std::string item = arg.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) fail("empty parameter in \"" + arg + "\"");
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size())
      fail("parameter \"" + item + "\" is not of the form key=value");
    const std::string key = item.substr(0, eq);
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string valid;
      for (const std::string& a : allowed)
        valid += (valid.empty() ? "" : ", ") + a;
      fail("unknown parameter \"" + key + "\" (valid: " + valid + ")");
    }
    if (!values_.emplace(key, item.substr(eq + 1)).second)
      fail("duplicate parameter \"" + key + "\"");
  }
}

bool KvParams::has(const std::string& key) const {
  return values_.count(key) > 0;
}

const std::string& KvParams::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) fail("missing required parameter \"" + key + "\"");
  return it->second;
}

double KvParams::get_double(const std::string& key, double fallback) const {
  return has(key) ? require_double(key) : fallback;
}

std::int64_t KvParams::get_int(const std::string& key,
                               std::int64_t fallback) const {
  return has(key) ? require_int(key) : fallback;
}

std::string KvParams::get_string(const std::string& key,
                                 const std::string& fallback) const {
  return has(key) ? raw(key) : fallback;
}

double KvParams::require_double(const std::string& key) const {
  const std::string& text = raw(key);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    fail("parameter \"" + key + "\" = \"" + text + "\" is not a number");
  }
}

std::int64_t KvParams::require_int(const std::string& key) const {
  const std::string& text = raw(key);
  try {
    std::size_t used = 0;
    const long long v = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    fail("parameter \"" + key + "\" = \"" + text + "\" is not an integer");
  }
}

void KvParams::fail(const std::string& message) const {
  throw Error(what_ + ": " + message);
}

} // namespace esrp
