// Scenario sweep runner: the paper's Table 3/4 protocol generalized into a
// parameter-grid driver in the spirit of serenity's Compute harness. A
// sweep takes a map<string, variant> grid over four axes —
//
//   "strategy"  (strings:  "none" | "esrp" | "imcr")
//   "interval"  (integers: storage interval T)
//   "process"   (strings:  failure-process specs, scenario registry)
//   "cluster"   (strings:  cluster-shape specs, scenario registry)
//
// — runs `repetitions` seeded solves per grid cell through the esrp::solve
// facade, and aggregates survival probability (converged with no scratch
// restart) and expected relative overhead (t - t0) / t0 against the
// per-shape failure-free reference. Per-cell seeds are derived from the
// base seed and the cell's key by FNV-1a, so every cell is reproducible in
// isolation and the whole table is reproducible from one seed — at any
// thread count (the distributed solvers are bitwise deterministic across
// threads, docs/parallelism.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace esrp {

using ParamValue = std::variant<std::int64_t, double, std::string>;
using ParamGrid = std::map<std::string, std::vector<ParamValue>>;

std::string to_string(const ParamValue& value);

struct SweepOptions {
  std::string matrix = "poisson2d:12,12";
  std::string solver = "resilient-pcg";
  std::string precond = "block-jacobi";
  rank_t nodes = 8;
  int phi = 2;
  int repetitions = 5;
  std::uint64_t seed = 0x5CE9A210u;
  real_t rtol = 1e-8;
  index_t block_size = 10;
  bool calibrated_cost = true;
  /// Kernel threads per solve (-1 = keep the global setting).
  int threads = -1;
};

/// Aggregated outcome of one grid cell.
struct SweepCell {
  std::string strategy;
  index_t interval = 0;
  std::string process;
  std::string cluster;

  int repetitions = 0;
  int converged = 0;
  int survived = 0; ///< converged with no scratch restart
  double survival_probability = 0;
  double mean_failures = 0;  ///< sampled events per run
  double mean_overhead = 0;  ///< mean (t - t0)/t0 over converged reps
  double mean_wasted = 0;    ///< mean rollback distance [iterations]

  std::string key() const; ///< canonical cell identifier (seeds, CSV)
};

struct SweepResult {
  SweepOptions options;
  index_t horizon = 0; ///< reference trajectory length C
  /// Failure-free reference modeled time per cluster shape (t0).
  std::map<std::string, double> reference_time;
  std::vector<SweepCell> cells;
};

/// Deterministic per-(cell, repetition) seed: FNV-1a over the cell key and
/// the repetition index, offset by the base seed. Order-independent — a
/// cell's runs don't depend on which cells ran before it.
std::uint64_t cell_seed(std::uint64_t base, const std::string& cell_key,
                        int rep);

/// Run the full grid. The grid must name all four axes with at least one
/// value each; unknown axes, empty axes, and mistyped values throw
/// esrp::Error before any solve runs.
SweepResult run_sweep(const ParamGrid& grid, const SweepOptions& opts);

/// Paper-style fixed-width console table (xp::TablePrinter).
void print_sweep_table(const SweepResult& result, std::ostream& out);

/// Machine-readable table, one line per cell, stable formatting — the CI
/// artifact and the determinism tests diff this string byte-for-byte.
std::string sweep_csv(const SweepResult& result);

} // namespace esrp
