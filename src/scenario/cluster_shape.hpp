// Named heterogeneous cluster shapes for the scenario lab.
//
//   cluster_shape_registry() — "homogeneous", "straggler", "slow-rack",
//                              "slow-links"
//
// A shape turns the base alpha-beta-gamma parameters into a
// HeterogeneousCostModel: per-rank gamma multipliers (stragglers) and
// per-rank/per-link alpha-beta scaling (slow links). Shapes only change
// *accounting* — modeled time and the ledger — never the floating-point
// trajectory, so every solver golden holds on every shape (the scenario
// tests pin this).
//
// Parameterized keys take an argument after a colon:
//   "straggler:count=2,factor=4"     — 2 evenly spread ranks, 4x slower flops
//   "slow-rack:start=0,count=4,factor=8" — one rack's links 8x slower
//   "slow-links:factor=2"            — every link 2x slower
#pragma once

#include <functional>
#include <string>

#include "api/registry.hpp"
#include "common/types.hpp"
#include "netsim/cost_model.hpp"

namespace esrp {

/// A factory receives the text after the key's colon (empty when absent),
/// the base cost parameters, and the cluster size.
using ClusterShapeFactory = std::function<HeterogeneousCostModel(
    const std::string& arg, const CostParams& base, rank_t num_nodes)>;

Registry<ClusterShapeFactory>& cluster_shape_registry();

/// Split a "key" or "key:arg" spec and build the model. The empty spec is
/// the homogeneous cluster (the facade's default).
HeterogeneousCostModel resolve_cluster_shape(const std::string& spec,
                                             const CostParams& base,
                                             rank_t num_nodes);

/// Lookup-only variant: validates the base key without building a model.
void check_cluster_shape_key(const std::string& spec);

} // namespace esrp
