#include "scenario/cluster_shape.hpp"

#include "common/error.hpp"
#include "netsim/failure.hpp"
#include "scenario/kv_params.hpp"

namespace esrp {

namespace {

std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

void register_shapes(Registry<ClusterShapeFactory>& reg) {
  reg.add("homogeneous", "uniform alpha-beta-gamma cluster (the default)",
          [](const std::string& arg, const CostParams& base, rank_t) {
            if (!arg.empty())
              throw Error(
                  "cluster shape \"homogeneous\" takes no parameters, got \"" +
                  arg + "\"");
            return HeterogeneousCostModel(base);
          });
  reg.add("straggler",
          "evenly spread slow ranks: [count=1,]factor=<gamma multiplier>",
          [](const std::string& arg, const CostParams& base,
             rank_t num_nodes) {
            const KvParams kv(arg, "cluster shape \"straggler\"",
                              {"count", "factor"});
            const auto count = static_cast<rank_t>(kv.get_int("count", 1));
            const double factor = kv.require_double("factor");
            if (count < 1 || count > num_nodes)
              throw Error("cluster shape \"straggler\": count must lie in "
                          "[1, nodes]");
            if (!(factor > 0))
              throw Error("cluster shape \"straggler\": factor must be > 0");
            HeterogeneousCostModel model(base);
            for (rank_t k = 0; k < count; ++k) {
              // Evenly spread: rank k * N / count (integer division).
              const auto rank = static_cast<rank_t>(
                  (static_cast<long long>(k) * num_nodes) / count);
              model.set_gamma_multiplier(rank, factor);
            }
            return model;
          });
  reg.add("slow-rack",
          "one contiguous rank block with slow links: "
          "[start=0,][count=4,]factor=<link multiplier>",
          [](const std::string& arg, const CostParams& base,
             rank_t num_nodes) {
            const KvParams kv(arg, "cluster shape \"slow-rack\"",
                              {"start", "count", "factor"});
            const auto start = static_cast<rank_t>(kv.get_int("start", 0));
            const auto count = static_cast<rank_t>(kv.get_int("count", 4));
            const double factor = kv.require_double("factor");
            if (start < 0 || start >= num_nodes)
              throw Error("cluster shape \"slow-rack\": start out of range");
            if (count < 1 || count > num_nodes)
              throw Error("cluster shape \"slow-rack\": count must lie in "
                          "[1, nodes]");
            if (!(factor > 0))
              throw Error("cluster shape \"slow-rack\": factor must be > 0");
            HeterogeneousCostModel model(base);
            for (const rank_t rank :
                 contiguous_ranks(start, count, num_nodes))
              model.set_link_multiplier(rank, factor);
            return model;
          });
  reg.add("slow-links", "every link scaled: factor=<link multiplier>",
          [](const std::string& arg, const CostParams& base,
             rank_t num_nodes) {
            const KvParams kv(arg, "cluster shape \"slow-links\"",
                              {"factor"});
            const double factor = kv.require_double("factor");
            if (!(factor > 0))
              throw Error("cluster shape \"slow-links\": factor must be > 0");
            HeterogeneousCostModel model(base);
            for (rank_t rank = 0; rank < num_nodes; ++rank)
              model.set_link_multiplier(rank, factor);
            return model;
          });
}

} // namespace

Registry<ClusterShapeFactory>& cluster_shape_registry() {
  static Registry<ClusterShapeFactory>* reg = [] {
    auto* r = new Registry<ClusterShapeFactory>("cluster shape");
    register_shapes(*r);
    return r;
  }();
  return *reg;
}

HeterogeneousCostModel resolve_cluster_shape(const std::string& spec,
                                             const CostParams& base,
                                             rank_t num_nodes) {
  if (spec.empty()) return HeterogeneousCostModel(base);
  const auto [key, arg] = split_spec(spec);
  return cluster_shape_registry().get(key)(arg, base, num_nodes);
}

void check_cluster_shape_key(const std::string& spec) {
  if (spec.empty()) return;
  const auto [key, arg] = split_spec(spec);
  const Registry<ClusterShapeFactory>& reg = cluster_shape_registry();
  if (!reg.contains(key))
    throw Error(unknown_key_message(reg.kind(), key, reg.keys()));
}

} // namespace esrp
