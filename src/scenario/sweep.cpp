#include "scenario/sweep.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "api/registry.hpp"
#include "api/solve.hpp"
#include "common/error.hpp"
#include "scenario/cluster_shape.hpp"
#include "scenario/failure_process.hpp"
#include "xp/experiment.hpp"
#include "xp/table.hpp"

namespace esrp {

namespace {

/// Stable double formatting for CSV output (never locale-dependent).
std::string format_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

const std::vector<ParamValue>& axis(const ParamGrid& grid,
                                    const std::string& name) {
  const auto it = grid.find(name);
  if (it == grid.end())
    throw Error("sweep grid is missing the \"" + name + "\" axis");
  if (it->second.empty())
    throw Error("sweep grid axis \"" + name + "\" has no values");
  return it->second;
}

std::string as_string(const ParamValue& v, const std::string& axis_name) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw Error("sweep axis \"" + axis_name + "\" expects string values, got " +
              to_string(v));
}

index_t as_interval(const ParamValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    if (*i < 1) throw Error("sweep interval must be >= 1, got " +
                            std::to_string(*i));
    return static_cast<index_t>(*i);
  }
  throw Error("sweep axis \"interval\" expects integer values, got " +
              to_string(v));
}

} // namespace

std::string to_string(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value))
    return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) return format_g(*d);
  return std::get<std::string>(value);
}

std::string SweepCell::key() const {
  return strategy + "|T=" + std::to_string(interval) + "|" + process + "|" +
         cluster;
}

std::uint64_t cell_seed(std::uint64_t base, const std::string& cell_key,
                        int rep) {
  std::uint64_t h = 1469598103934665603ull ^ base;
  const auto mix = [&h](std::uint64_t byte) {
    h ^= byte & 0xff;
    h *= 1099511628211ull;
  };
  for (const unsigned char c : cell_key) mix(c);
  for (int shift = 0; shift < 64; shift += 8)
    mix(static_cast<std::uint64_t>(rep) >> shift);
  return h;
}

SweepResult run_sweep(const ParamGrid& grid, const SweepOptions& opts) {
  if (opts.repetitions < 1) throw Error("sweep needs repetitions >= 1");
  for (const auto& [name, values] : grid) {
    if (name != "strategy" && name != "interval" && name != "process" &&
        name != "cluster")
      throw Error("unknown sweep axis \"" + name +
                  "\" (valid: strategy, interval, process, cluster)");
    (void)values;
  }
  const std::vector<ParamValue>& strategies = axis(grid, "strategy");
  const std::vector<ParamValue>& intervals = axis(grid, "interval");
  const std::vector<ParamValue>& processes = axis(grid, "process");
  const std::vector<ParamValue>& clusters = axis(grid, "cluster");

  // Fail fast on every axis value before the first (expensive) solve.
  for (const ParamValue& v : strategies)
    strategy_from_string(as_string(v, "strategy"));
  for (const ParamValue& v : intervals) as_interval(v);
  for (const ParamValue& v : processes)
    check_failure_process_key(as_string(v, "process"));
  for (const ParamValue& v : clusters)
    check_cluster_shape_key(as_string(v, "cluster"));

  const TestProblem problem = resolve_matrix(opts.matrix);
  const Vector rhs = xp::make_rhs(problem.matrix);

  SweepResult result;
  result.options = opts;

  SolveSpec base;
  base.matrix_data = &problem.matrix;
  base.matrix_name = problem.name;
  base.rhs = rhs;
  base.solver = opts.solver;
  base.precond = opts.precond;
  base.rtol = opts.rtol;
  base.block_size = opts.block_size;
  base.nodes = opts.nodes;
  base.phi = opts.phi;
  base.calibrated_cost = opts.calibrated_cost;
  base.threads = opts.threads;

  // Per-shape failure-free reference: t0 differs across shapes (accounting),
  // the trajectory must not (cost models never touch the arithmetic).
  for (const ParamValue& cv : clusters) {
    const std::string shape = as_string(cv, "cluster");
    if (result.reference_time.count(shape)) continue;
    SolveSpec ref = base;
    ref.strategy = Strategy::none;
    ref.cluster_shape = shape;
    const SolveReport report = solve(ref);
    if (!report.converged)
      throw Error("sweep reference run did not converge on \"" + opts.matrix +
                  "\"");
    if (result.horizon == 0) {
      result.horizon = report.iterations;
    } else {
      ESRP_CHECK_MSG(report.iterations == result.horizon,
                     "cluster shape \"" << shape
                                        << "\" changed the trajectory");
    }
    result.reference_time[shape] = report.modeled_time;
  }

  for (const ParamValue& sv : strategies) {
    for (const ParamValue& iv : intervals) {
      for (const ParamValue& pv : processes) {
        for (const ParamValue& cv : clusters) {
          SweepCell cell;
          cell.strategy = as_string(sv, "strategy");
          cell.interval = as_interval(iv);
          cell.process = as_string(pv, "process");
          cell.cluster = as_string(cv, "cluster");
          cell.repetitions = opts.repetitions;
          const double t0 = result.reference_time.at(cell.cluster);

          // Serial fixed-order aggregation across repetitions of one sweep
          // cell; reps run in seed order on one thread, so the sum is
          // reproducible without routing through parallel_reduce.
          // esrp-lint: allow(fp-accumulate)
          double sum_overhead = 0, sum_wasted = 0, sum_failures = 0;
          for (int rep = 0; rep < opts.repetitions; ++rep) {
            const std::uint64_t seed =
                cell_seed(opts.seed, cell.key(), rep);
            SolveSpec spec = base;
            spec.strategy = strategy_from_string(cell.strategy);
            spec.interval = cell.interval;
            spec.cluster_shape = cell.cluster;
            spec.failures = sample_failure_schedule(
                cell.process, opts.nodes, result.horizon, seed);
            const SolveReport report = solve(spec);
            sum_failures += static_cast<double>(spec.failures.size());
            if (report.converged) {
              ++cell.converged;
              sum_overhead += xp::relative_overhead(report.modeled_time, t0);
              sum_wasted += static_cast<double>(report.wasted_iterations());
              if (!report.restarted_from_scratch()) ++cell.survived;
            }
          }
          cell.survival_probability =
              static_cast<double>(cell.survived) /
              static_cast<double>(cell.repetitions);
          cell.mean_failures =
              sum_failures / static_cast<double>(cell.repetitions);
          if (cell.converged > 0) {
            cell.mean_overhead =
                sum_overhead / static_cast<double>(cell.converged);
            cell.mean_wasted =
                sum_wasted / static_cast<double>(cell.converged);
          }
          result.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return result;
}

void print_sweep_table(const SweepResult& result, std::ostream& out) {
  out << "scenario sweep: " << result.options.matrix << ", "
      << result.options.solver << "/" << result.options.precond << ", "
      << result.options.nodes << " nodes, phi = " << result.options.phi
      << ", C = " << result.horizon << ", " << result.options.repetitions
      << " reps/cell, seed = 0x" << std::hex << result.options.seed
      << std::dec << "\n";
  xp::TablePrinter table({"strategy", "T", "process", "cluster", "fail/run",
                          "survival", "overhead", "wasted"},
                         {8, 4, 26, 26, 8, 8, 9, 7}, out);
  table.print_header();
  table.print_rule();
  for (const SweepCell& c : result.cells) {
    table.print_row({c.strategy, std::to_string(c.interval), c.process,
                     c.cluster, xp::format_fixed(c.mean_failures, 1),
                     xp::format_percent(c.survival_probability),
                     xp::format_percent(c.mean_overhead),
                     xp::format_fixed(c.mean_wasted, 1)});
  }
}

std::string sweep_csv(const SweepResult& result) {
  std::ostringstream out;
  out << "strategy,interval,process,cluster,repetitions,converged,survived,"
         "survival_probability,mean_failures,mean_overhead,mean_wasted\n";
  for (const SweepCell& c : result.cells) {
    out << c.strategy << ',' << c.interval << ',' << c.process << ','
        << c.cluster << ',' << c.repetitions << ',' << c.converged << ','
        << c.survived << ',' << format_g(c.survival_probability) << ','
        << format_g(c.mean_failures) << ',' << format_g(c.mean_overhead)
        << ',' << format_g(c.mean_wasted) << '\n';
  }
  return out.str();
}

} // namespace esrp
