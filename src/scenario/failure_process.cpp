#include "scenario/failure_process.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "scenario/kv_params.hpp"

namespace esrp {

namespace {

/// Split "key" / "key:arg" at the first colon (the matrix-registry idiom).
std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

/// Turn a continuous arrival time into the next usable integer iteration:
/// at least 1 (iteration 0 has no state to lose that wasn't the input) and
/// strictly after the previous event (the engine requires pairwise
/// distinct event iterations).
index_t arrival_iteration(double t, index_t prev) {
  const auto it = static_cast<index_t>(std::max(1.0, std::ceil(t)));
  return std::max(it, static_cast<index_t>(prev + 1));
}

/// Renewal process with inter-arrivals drawn by `draw`: accumulate
/// continuous arrival times until the horizon, then attach one uniformly
/// chosen start rank per arrival. The inter-arrival is drawn before the
/// rank so decorating a process (rack) never shifts the arrival sequence.
template <typename Draw>
std::vector<FailureEvent> sample_renewal(const FailureDrawContext& ctx,
                                         Rng& rng, Draw&& draw) {
  std::vector<FailureEvent> events;
  index_t prev = 0;
  for (double t = draw(rng);; t += draw(rng)) {
    const index_t it = arrival_iteration(t, prev);
    if (it >= ctx.horizon) break;
    FailureEvent e;
    e.iteration = it;
    e.ranks = {static_cast<rank_t>(
        rng.next_below(static_cast<std::uint64_t>(ctx.num_nodes)))};
    prev = it;
    events.push_back(std::move(e));
  }
  return events;
}

class FixedProcess final : public FailureProcess {
public:
  FixedProcess(index_t iteration, rank_t start, rank_t count)
      : iteration_(iteration), start_(start), count_(count) {}

  std::vector<FailureEvent> sample(const FailureDrawContext& ctx,
                                   Rng&) const override {
    ESRP_CHECK_MSG(start_ < ctx.num_nodes,
                   "fixed process start rank " << start_ << " out of range [0, "
                                               << ctx.num_nodes << ")");
    FailureEvent e;
    e.iteration = iteration_;
    e.ranks = contiguous_ranks(start_, count_, ctx.num_nodes);
    return {std::move(e)};
  }

private:
  index_t iteration_;
  rank_t start_, count_;
};

class ExponentialProcess final : public FailureProcess {
public:
  explicit ExponentialProcess(double mean) : mean_(mean) {}

  std::vector<FailureEvent> sample(const FailureDrawContext& ctx,
                                   Rng& rng) const override {
    return sample_renewal(
        ctx, rng, [this](Rng& r) { return exponential_interarrival(mean_, r); });
  }

private:
  double mean_;
};

class WeibullProcess final : public FailureProcess {
public:
  WeibullProcess(double shape, double scale) : shape_(shape), scale_(scale) {}

  std::vector<FailureEvent> sample(const FailureDrawContext& ctx,
                                   Rng& rng) const override {
    return sample_renewal(ctx, rng, [this](Rng& r) {
      return weibull_interarrival(shape_, scale_, r);
    });
  }

private:
  double shape_, scale_;
};

/// Correlation decorator: every arrival of the inner process takes out a
/// contiguous block of `width` ranks anchored at the arrival's first rank
/// (a switch fault on one fat-tree branch, paper §5). The inner schedule —
/// arrival times and anchor ranks — is untouched.
class RackProcess final : public FailureProcess {
public:
  RackProcess(rank_t width, std::unique_ptr<FailureProcess> inner)
      : width_(width), inner_(std::move(inner)) {}

  std::vector<FailureEvent> sample(const FailureDrawContext& ctx,
                                   Rng& rng) const override {
    ESRP_CHECK_MSG(width_ < ctx.num_nodes,
                   "rack width " << width_ << " must leave a survivor among "
                                 << ctx.num_nodes << " nodes");
    std::vector<FailureEvent> events = inner_->sample(ctx, rng);
    for (FailureEvent& e : events) {
      ESRP_CHECK(!e.ranks.empty());
      e.ranks = contiguous_ranks(e.ranks.front(), width_, ctx.num_nodes);
    }
    return events;
  }

private:
  rank_t width_;
  std::unique_ptr<FailureProcess> inner_;
};

void register_processes(Registry<FailureProcessFactory>& reg) {
  reg.add("fixed",
          "single event at a fixed iteration: it=<iter>[,start=0][,count=1] "
          "(the paper's §5 protocol)",
          [](const std::string& arg) -> std::unique_ptr<FailureProcess> {
            const KvParams kv(arg, "failure process \"fixed\"",
                              {"it", "start", "count"});
            const auto it = static_cast<index_t>(kv.require_int("it"));
            const auto start = static_cast<rank_t>(kv.get_int("start", 0));
            const auto count = static_cast<rank_t>(kv.get_int("count", 1));
            if (it < 1)
              throw Error("failure process \"fixed\": it must be >= 1");
            if (start < 0 || count < 1)
              throw Error(
                  "failure process \"fixed\": start >= 0 and count >= 1");
            return std::make_unique<FixedProcess>(it, start, count);
          });
  reg.add("exponential",
          "Poisson arrivals, Exp(mean) inter-arrival iterations: "
          "mean=<iterations>",
          [](const std::string& arg) -> std::unique_ptr<FailureProcess> {
            const KvParams kv(arg, "failure process \"exponential\"",
                              {"mean"});
            const double mean = kv.require_double("mean");
            if (!(mean > 0))
              throw Error("failure process \"exponential\": mean must be > 0");
            return std::make_unique<ExponentialProcess>(mean);
          });
  reg.add("weibull",
          "Weibull renewal arrivals: k=<shape>,scale=<iterations> "
          "(k = 1 is exponential; k > 1 models wear-out)",
          [](const std::string& arg) -> std::unique_ptr<FailureProcess> {
            const KvParams kv(arg, "failure process \"weibull\"",
                              {"k", "scale"});
            const double k = kv.require_double("k");
            const double scale = kv.require_double("scale");
            if (!(k > 0) || !(scale > 0))
              throw Error(
                  "failure process \"weibull\": k and scale must be > 0");
            return std::make_unique<WeibullProcess>(k, scale);
          });
  reg.add("rack",
          "correlation decorator: <width>/<inner-spec> expands every "
          "arrival into a contiguous block of <width> ranks, e.g. "
          "rack:4/exponential:mean=30",
          [](const std::string& arg) -> std::unique_ptr<FailureProcess> {
            const std::size_t slash = arg.find('/');
            if (slash == std::string::npos || slash == 0 ||
                slash + 1 == arg.size())
              throw Error("failure process \"rack\" needs "
                          "\"rack:<width>/<inner-spec>\", got \"rack:" +
                          arg + "\"");
            const std::string width_text = arg.substr(0, slash);
            rank_t width = 0;
            try {
              std::size_t used = 0;
              width = static_cast<rank_t>(std::stoll(width_text, &used));
              if (used != width_text.size()) throw Error("trailing text");
            } catch (const std::exception&) {
              throw Error("failure process \"rack\": width \"" + width_text +
                          "\" is not an integer");
            }
            if (width < 1)
              throw Error("failure process \"rack\": width must be >= 1");
            return std::make_unique<RackProcess>(
                width, resolve_failure_process(arg.substr(slash + 1)));
          });
}

} // namespace

Registry<FailureProcessFactory>& failure_process_registry() {
  static Registry<FailureProcessFactory>* reg = [] {
    auto* r = new Registry<FailureProcessFactory>("failure process");
    register_processes(*r);
    return r;
  }();
  return *reg;
}

std::unique_ptr<FailureProcess> resolve_failure_process(
    const std::string& spec) {
  const auto [key, arg] = split_spec(spec);
  return failure_process_registry().get(key)(arg);
}

void check_failure_process_key(const std::string& spec) {
  const auto [key, arg] = split_spec(spec);
  const Registry<FailureProcessFactory>& reg = failure_process_registry();
  if (!reg.contains(key))
    throw Error(unknown_key_message(reg.kind(), key, reg.keys()));
  if (key == "rack") {
    const std::size_t slash = arg.find('/');
    if (slash != std::string::npos && slash + 1 < arg.size())
      check_failure_process_key(arg.substr(slash + 1));
  }
}

double exponential_interarrival(double mean, Rng& rng) {
  // Inverse CDF: -mean * ln(1 - u), u in [0, 1) so the log argument stays
  // in (0, 1] and the draw is finite and non-negative.
  return -mean * std::log(1.0 - rng.next_double());
}

double weibull_interarrival(double shape, double scale, Rng& rng) {
  return scale * std::pow(-std::log(1.0 - rng.next_double()), 1.0 / shape);
}

std::vector<FailureEvent> sample_failure_schedule(const std::string& spec,
                                                  rank_t num_nodes,
                                                  index_t horizon,
                                                  std::uint64_t seed) {
  const std::unique_ptr<FailureProcess> process =
      resolve_failure_process(spec);
  FailureDrawContext ctx;
  ctx.num_nodes = num_nodes;
  ctx.horizon = horizon;
  Rng rng(seed);
  return process->sample(ctx, rng);
}

} // namespace esrp
