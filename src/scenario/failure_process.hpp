// Stochastic failure processes for the scenario lab (ROADMAP item 3).
//
// The paper's protocol injects exactly one failure at a fixed iteration
// (§5); the scenario registry generalizes that into named, seeded arrival
// processes so survival-probability and expected-overhead curves can be
// swept instead of hand-picked:
//
//   failure_process_registry() — "fixed", "exponential", "weibull", "rack"
//
// Parameterized keys take an argument after a colon, mirroring the matrix
// registry: "fixed:it=17,start=2,count=2", "exponential:mean=30",
// "weibull:k=1.5,scale=40", and the correlation decorator
// "rack:4/exponential:mean=30" (every arrival takes out a contiguous block
// of 4 ranks — a switch fault on one fat-tree branch).
//
// Sampling is deterministic: the same spec + seed + context produce the
// same schedule on every platform and thread count (splitmix64, inverse
// CDF, no libm distribution objects).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "netsim/failure.hpp"

namespace esrp {

/// Everything a process needs to turn arrival times into FailureEvents.
struct FailureDrawContext {
  rank_t num_nodes = 0;
  /// Reference trajectory length C: events are scheduled in [1, horizon).
  index_t horizon = 0;
};

/// A named failure process: samples one run's full event schedule. Events
/// come back with strictly increasing iterations (the engine requires
/// pairwise distinct ones) and FailureCause::crash.
class FailureProcess {
public:
  virtual ~FailureProcess() = default;
  virtual std::vector<FailureEvent> sample(const FailureDrawContext& ctx,
                                           Rng& rng) const = 0;
};

/// A factory receives the text after the key's colon (empty when absent).
using FailureProcessFactory =
    std::function<std::unique_ptr<FailureProcess>(const std::string& arg)>;

Registry<FailureProcessFactory>& failure_process_registry();

/// Split a "key" or "key:arg" spec and build the process. Unknown base keys
/// throw with the "did you mean" message; malformed arguments throw
/// esrp::Error naming the offending parameter.
std::unique_ptr<FailureProcess> resolve_failure_process(
    const std::string& spec);

/// Lookup-only variant: validates the base key (and, for "rack", the inner
/// spec's key) without building anything. Lets the CLI reject typos before
/// any expensive work.
void check_failure_process_key(const std::string& spec);

/// One Exp(1/mean) inter-arrival draw by inverse CDF. Exposed so the
/// statistical sanity tests can pin the distribution, not just the
/// schedule shape.
double exponential_interarrival(double mean, Rng& rng);

/// One Weibull(shape k, scale lambda) inter-arrival draw by inverse CDF
/// (k = 1 degenerates to Exp(1/lambda)).
double weibull_interarrival(double shape, double scale, Rng& rng);

/// Convenience: resolve `spec`, seed an Rng, sample one schedule.
std::vector<FailureEvent> sample_failure_schedule(const std::string& spec,
                                                  rank_t num_nodes,
                                                  index_t horizon,
                                                  std::uint64_t seed);

} // namespace esrp
