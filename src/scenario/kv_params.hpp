// Tiny "k=v,k=v" argument parser shared by the scenario registries
// (failure processes and cluster shapes). Strict by design: unknown keys,
// duplicate keys, and malformed numbers all throw esrp::Error naming the
// spec kind, so a typo in a sweep axis fails the whole sweep up front
// instead of silently running a default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esrp {

class KvParams {
public:
  /// Parse `arg` ("", "k=v", or "k=v,k=v,..."); `what` names the spec in
  /// error messages (e.g. "failure process \"exponential\""); `allowed`
  /// lists every accepted key.
  KvParams(const std::string& arg, std::string what,
           std::vector<std::string> allowed);

  bool has(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Required variants: throw when the key is absent.
  double require_double(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;

private:
  [[noreturn]] void fail(const std::string& message) const;
  const std::string& raw(const std::string& key) const;

  std::string what_;
  std::map<std::string, std::string> values_;
};

} // namespace esrp
