#include "api/solve.hpp"

#include <cstdint>
#include <optional>
#include <utility>

#include "api/registry.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/metrics.hpp"
#include "core/resilient_pcg.hpp"
#include "netsim/cluster.hpp"
#include "parallel/parallel.hpp"
#include "pipelined/dist_pipelined_pcg.hpp"
#include "pipelined/pipelined_pcg.hpp"
#include "scenario/cluster_shape.hpp"
#include "solver/pcg.hpp"
#include "xp/experiment.hpp"

namespace esrp {

namespace {

/// Apply spec.threads for the duration of one solve and restore the global
/// setting afterwards (threads = -1 keeps the caller's setting untouched).
class ThreadOverride {
public:
  explicit ThreadOverride(int threads) {
    if (threads >= 0) {
      saved_ = num_threads();
      set_num_threads(threads);
    }
  }
  ~ThreadOverride() {
    if (saved_ >= 0) set_num_threads(saved_);
  }
  ThreadOverride(const ThreadOverride&) = delete;
  ThreadOverride& operator=(const ThreadOverride&) = delete;

private:
  int saved_ = -1;
};

/// The preconditioner for this solve: the prepared handle's factorization
/// when one was injected, else a fresh factorization (stored in `owned`).
/// Both paths factorize from the same inputs, so they are interchangeable
/// bitwise — the service's warm path just skips the work.
const Preconditioner& resolve_precond(const SolveContext& ctx,
                                      const BlockRowPartition* part,
                                      std::unique_ptr<Preconditioner>& owned) {
  if (ctx.prepared != nullptr && ctx.prepared->precond != nullptr)
    return *ctx.prepared->precond;
  owned = precond_registry().get(ctx.spec.precond).make(
      PrecondContext{ctx.a, part, ctx.spec});
  return *owned;
}

IterationCallback iteration_adapter(SolverObserver* observer) {
  if (!observer) return {};
  return [observer](index_t j, real_t relres) {
    observer->on_iteration(j, relres);
  };
}

// ------------------------------------------------- sequential solvers ----

SolveReport run_pcg(const SolveContext& ctx) {
  const SolveSpec& spec = ctx.spec;
  std::unique_ptr<Preconditioner> owned;
  const Preconditioner& precond = resolve_precond(ctx, nullptr, owned);
  Vector x(static_cast<std::size_t>(ctx.a.rows()), 0);
  if (!spec.x0.empty()) vec_copy(spec.x0, x);

  PcgOptions opts;
  opts.rtol = spec.rtol;
  opts.max_iterations = spec.max_iterations;
  WallTimer timer;
  const PcgResult res = pcg_solve(ctx.a, ctx.b, x, &precond, opts,
                                  iteration_adapter(ctx.observer));

  SolveReport report;
  report.converged = res.converged;
  report.iterations = res.iterations;
  report.executed_iterations = res.iterations;
  report.final_relres = res.final_relres;
  report.flops = res.flops;
  report.wall_seconds = timer.seconds();
  report.x = std::move(x);
  return report;
}

SolveReport run_pipelined(const SolveContext& ctx) {
  const SolveSpec& spec = ctx.spec;
  std::unique_ptr<Preconditioner> owned;
  const Preconditioner& precond = resolve_precond(ctx, nullptr, owned);
  Vector x(static_cast<std::size_t>(ctx.a.rows()), 0);
  if (!spec.x0.empty()) vec_copy(spec.x0, x);

  PipelinedPcgOptions opts;
  opts.rtol = spec.rtol;
  opts.max_iterations = spec.max_iterations;
  WallTimer timer;
  const PipelinedPcgResult res = pipelined_pcg_solve(
      ctx.a, ctx.b, x, &precond, opts, iteration_adapter(ctx.observer));

  SolveReport report;
  report.converged = res.converged;
  report.iterations = res.iterations;
  report.executed_iterations = res.iterations;
  report.final_relres = res.final_relres;
  report.flops = res.flops;
  report.wall_seconds = timer.seconds();
  report.x = std::move(x);
  return report;
}

// ------------------------------------------------ distributed solvers ----

/// Residual-accuracy metrics shared by the distributed drivers.
void finish_distributed(const SolveContext& ctx, SolveReport& report) {
  report.nodes = ctx.spec.nodes;
  report.drift = residual_drift(ctx.a, ctx.b, report.x, report.r);
  report.true_relres = true_relative_residual(ctx.a, ctx.b, report.x);
}

CostParams cluster_cost(const SolveContext& ctx) {
  return ctx.spec.calibrated_cost ? xp::calibrated_cost(ctx.a, ctx.spec.nodes)
                                  : CostParams{};
}

/// Base cost parameters shaped by the spec's cluster-shape key (empty =
/// homogeneous, charging bitwise identically to the plain CostParams path).
HeterogeneousCostModel cluster_model(const SolveContext& ctx) {
  return resolve_cluster_shape(ctx.spec.cluster_shape, cluster_cost(ctx),
                               ctx.spec.nodes);
}

/// Partition for a distributed solve: the prepared handle's (so the shared
/// plans' partition identity checks hold) or a locally built one. Both are
/// the same deterministic block-row split of (rows, nodes).
const BlockRowPartition& resolve_partition(
    const SolveContext& ctx, std::optional<BlockRowPartition>& local) {
  if (ctx.prepared != nullptr && ctx.prepared->part != nullptr) {
    ESRP_CHECK_MSG(ctx.prepared->part->num_nodes() == ctx.spec.nodes &&
                       ctx.prepared->part->global_size() == ctx.a.rows(),
                   "prepared partition does not match this spec's "
                   "(rows, nodes)");
    return *ctx.prepared->part;
  }
  local.emplace(ctx.a.rows(), ctx.spec.nodes);
  return *local;
}

SolveReport run_resilient(const SolveContext& ctx) {
  const SolveSpec& spec = ctx.spec;
  std::optional<BlockRowPartition> local_part;
  const BlockRowPartition& part = resolve_partition(ctx, local_part);
  SimCluster cluster(part, cluster_model(ctx));
  std::unique_ptr<Preconditioner> owned;
  const Preconditioner& precond = resolve_precond(ctx, &part, owned);

  ResilienceOptions opts;
  opts.strategy = spec.strategy;
  opts.interval = spec.interval;
  opts.phi = spec.phi;
  opts.queue_capacity = spec.queue_capacity;
  opts.rtol = spec.rtol;
  if (spec.max_iterations > 0) opts.max_iterations = spec.max_iterations;
  opts.precond_formulation = spec.formulation;
  opts.spare_nodes = spec.spare_nodes;
  opts.residual_replacement = spec.residual_replacement;
  opts.policy = recovery_policy_from_string(spec.recovery_policy);
  opts.extra_failures = spec.failures;
  opts.sdc_events = spec.sdc_events;
  opts.sdc_threshold = spec.sdc_threshold;

  // Shared plans ride along only when they match this solve (same phi);
  // otherwise the solver builds its own, exactly as before.
  const SpmvPlan* plan =
      ctx.prepared != nullptr ? ctx.prepared->spmv : nullptr;
  const AspmvPlan* aug = nullptr;
  if (plan != nullptr && ctx.prepared->aspmv != nullptr &&
      ctx.prepared->aspmv->phi() == opts.phi)
    aug = ctx.prepared->aspmv;
  ResilientPcg solver(ctx.a, precond, cluster, opts, plan, aug);
  if (SolverObserver* obs = ctx.observer) {
    solver.set_progress_callback(
        [obs](index_t j, real_t relres) { obs->on_iteration(j, relres); });
    solver.set_failure_callback(
        [obs](const FailureEvent& e) { obs->on_failure(e); });
    solver.set_recovery_callback(
        [obs](const RecoveryRecord& rec) { obs->on_recovery(rec); });
    // SDC injections surface as on_failure events with cause = sdc, so one
    // observer hook sees the full fault timeline.
    solver.set_sdc_callback([obs](const SdcRecord& rec) {
      FailureEvent e;
      e.iteration = rec.event.iteration;
      e.ranks = {rec.rank};
      e.cause = FailureCause::sdc;
      obs->on_failure(e);
    });
  }
  ResilientSolveResult res = solver.solve(ctx.b, spec.x0);

  SolveReport report;
  report.converged = res.converged;
  report.iterations = res.trajectory_iterations;
  report.executed_iterations = res.executed_iterations;
  report.final_relres = res.final_relres;
  report.modeled_time = res.modeled_time;
  report.wall_seconds = res.wall_seconds;
  report.recoveries = std::move(res.recoveries);
  report.sdc = std::move(res.sdc);
  report.x = std::move(res.x);
  report.r = std::move(res.r);
  finish_distributed(ctx, report);
  return report;
}

SolveReport run_dist_pipelined(const SolveContext& ctx) {
  const SolveSpec& spec = ctx.spec;
  std::optional<BlockRowPartition> local_part;
  const BlockRowPartition& part = resolve_partition(ctx, local_part);
  SimCluster cluster(part, cluster_model(ctx));
  std::unique_ptr<Preconditioner> owned;
  const Preconditioner& precond = resolve_precond(ctx, &part, owned);

  DistPipelinedOptions opts;
  opts.rtol = spec.rtol;
  if (spec.max_iterations > 0) opts.max_iterations = spec.max_iterations;
  opts.strategy = spec.strategy;
  opts.interval = spec.interval;
  opts.phi = spec.phi;
  opts.queue_capacity = spec.queue_capacity;
  opts.precond_formulation = spec.formulation;
  opts.spare_nodes = spec.spare_nodes;
  opts.residual_replacement = spec.residual_replacement;
  opts.policy = recovery_policy_from_string(spec.recovery_policy);
  opts.extra_failures = spec.failures;

  const SpmvPlan* plan =
      ctx.prepared != nullptr ? ctx.prepared->spmv : nullptr;
  const AspmvPlan* aug = nullptr;
  if (plan != nullptr && ctx.prepared->aspmv != nullptr &&
      ctx.prepared->aspmv->phi() == opts.phi)
    aug = ctx.prepared->aspmv;
  DistPipelinedPcg solver(ctx.a, precond, cluster, opts, plan, aug);
  if (SolverObserver* obs = ctx.observer) {
    solver.set_progress_callback(
        [obs](index_t j, real_t relres) { obs->on_iteration(j, relres); });
    solver.set_failure_callback(
        [obs](const FailureEvent& e) { obs->on_failure(e); });
    solver.set_recovery_callback(
        [obs](const RecoveryRecord& rec) { obs->on_recovery(rec); });
  }
  WallTimer timer;
  DistPipelinedResult res = solver.solve(ctx.b);

  SolveReport report;
  report.converged = res.converged;
  report.iterations = res.trajectory_iterations;
  report.executed_iterations = res.executed_iterations;
  report.final_relres = res.final_relres;
  report.modeled_time = res.modeled_time;
  report.wall_seconds = timer.seconds();
  report.recoveries = std::move(res.recoveries);
  report.x = std::move(res.x);
  report.r = std::move(res.r);
  finish_distributed(ctx, report);
  return report;
}

} // namespace

Registry<SolverEntry>& solver_registry() {
  static Registry<SolverEntry>* reg = [] {
    auto* r = new Registry<SolverEntry>("solver");
    r->add("pcg", "sequential preconditioned CG (paper Alg. 1)",
           SolverEntry{.run = run_pcg, .supports_batched_rhs = true});
    r->add("pipelined",
           "sequential pipelined PCG (Ghysels & Vanroose, one fused "
           "reduction)",
           SolverEntry{.run = run_pipelined});
    r->add("resilient-pcg",
           "distributed PCG on the simulated cluster with ESRP/IMCR "
           "recovery (paper Alg. 3)",
           SolverEntry{.run = run_resilient,
                       .distributed = true,
                       .max_failure_events = SIZE_MAX,
                       .supports_esrp = true,
                       .supports_no_spare = true,
                       .supports_sdc = true,
                       .supports_shrink = true});
    r->add("dist-pipelined",
           "distributed pipelined PCG (communication hiding) with "
           "ESRP/IMCR recovery (ref. [16])",
           SolverEntry{.run = run_dist_pipelined,
                       .distributed = true,
                       .max_failure_events = SIZE_MAX,
                       .supports_esrp = true,
                       .supports_no_spare = false,
                       .supports_residual_replacement = false,
                       .supports_x0 = false});
    return r;
  }();
  return *reg;
}

namespace detail {

SolveReport run_resolved(const SolveSpec& spec, const CsrMatrix& a,
                         const std::string& name, std::span<const real_t> b,
                         SolverObserver* observer,
                         const PreparedParts* prepared) {
  const SolverEntry& entry = solver_registry().get(spec.solver);
  ESRP_CHECK_MSG(a.rows() == a.cols(), "solve() needs a square matrix");
  ESRP_CHECK_MSG(static_cast<index_t>(b.size()) == a.rows(),
                 "rhs size " << b.size() << " does not match matrix dimension "
                             << a.rows());
  ESRP_CHECK_MSG(spec.x0.empty() ||
                     static_cast<index_t>(spec.x0.size()) == a.rows(),
                 "x0 size " << spec.x0.size()
                            << " does not match matrix dimension "
                            << a.rows());

  SolveReport report = entry.run(SolveContext{a, b, spec, observer, prepared});
  report.solver = spec.solver;
  report.precond = spec.precond;
  report.matrix = name;
  report.rows = a.rows();
  report.nnz = a.nnz();
  return report;
}

} // namespace detail

SolveReport solve(const SolveSpec& spec, SolverObserver* observer) {
  validate_spec(spec);
  if (!spec.rhs_batch.empty())
    throw Error("batched right-hand sides (rhs_batch) are solved through "
                "SolveService::solve_batched, not esrp::solve");

  // Resolve the problem: borrowed matrix or registry-built one.
  TestProblem built;
  const CsrMatrix* a = spec.matrix_data;
  std::string name = spec.matrix_name.empty() ? "custom" : spec.matrix_name;
  if (a == nullptr) {
    built = resolve_matrix(spec.matrix);
    a = &built.matrix;
    name = built.name;
  }

  Vector rhs_storage;
  std::span<const real_t> b = spec.rhs;
  if (b.empty()) {
    rhs_storage = xp::make_rhs(*a);
    b = rhs_storage;
  }

  const ThreadOverride threads(spec.threads);
  return detail::run_resolved(spec, *a, name, b, observer, nullptr);
}

} // namespace esrp
