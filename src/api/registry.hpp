// String-keyed factories behind esrp::solve — the PETSc/Trilinos-style
// "solver factory" pattern: every solver variant, preconditioner, and test
// matrix is a named entry, so new grid points of the paper's experiment
// space (solver x preconditioner x matrix x strategy x failure) need one
// registration and zero new plumbing in the CLI / examples / harness.
//
//   solver_registry()  — "pcg", "pipelined", "resilient-pcg", "dist-pipelined"
//   precond_registry() — "identity", "jacobi", "block-jacobi", "ssor", "ic0"
//   matrix_registry()  — "emilia", "audikw", "poisson2d", "poisson3d",
//                        "laplace1d", "mm"; parameterized keys take an
//                        argument after a colon, e.g. "poisson2d:24,24",
//                        "emilia:8,8,8", "mm:/path/to/matrix.mtx"; a
//                        ";format=sell[;sigma=N]" suffix converts the built
//                        matrix to SELL-C-σ (sparse/sell.hpp) for the
//                        vectorized SpMV kernels
//
// Lookups of unknown keys throw esrp::Error with a "did you mean" hint and
// the list of valid keys; duplicate registrations are rejected.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/solve_spec.hpp"
#include "common/error.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/generators.hpp"

namespace esrp {

class BlockRowPartition;
class SpmvPlan;
class AspmvPlan;

/// Error text for a failed lookup: names the kind, suggests the closest
/// valid key (edit distance) when one is plausibly a typo, and lists every
/// valid key.
std::string unknown_key_message(const std::string& kind, std::string_view key,
                                const std::vector<std::string>& valid);

/// A string-keyed table of factories. Key order is lexicographic (stable
/// --list output); duplicate registration throws; unknown lookup throws
/// with a "did you mean" message.
template <typename Value>
class Registry {
public:
  /// `kind` names the entries in error messages and --list headers, e.g.
  /// "solver" or "preconditioner".
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register `key`; `help` is the one-line description --list prints.
  void add(std::string key, std::string help, Value value) {
    if (key.empty()) throw Error(kind_ + " registry key must be non-empty");
    const auto [it, inserted] = entries_.emplace(
        std::move(key), Entry{std::move(help), std::move(value)});
    if (!inserted)
      throw Error("duplicate " + kind_ + " registration: \"" + it->first +
                  "\"");
  }

  bool contains(std::string_view key) const {
    return entries_.find(key) != entries_.end();
  }

  const Value& get(std::string_view key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end())
      throw Error(unknown_key_message(kind_, key, keys()));
    return it->second.value;
  }

  const std::string& help(std::string_view key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end())
      throw Error(unknown_key_message(kind_, key, keys()));
    return it->second.help;
  }

  /// All keys, lexicographically sorted.
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(key);
    return out;
  }

  const std::string& kind() const { return kind_; }

private:
  struct Entry {
    std::string help;
    Value value;
  };

  std::string kind_;
  std::map<std::string, Entry, std::less<>> entries_;
};

// ---------------------------------------------------------------- solvers --

/// Amortized artifacts a prepared ProblemHandle (service/problem_handle.hpp)
/// injects into a solver driver. Every pointer is optional: when set, the
/// driver uses the prepared object instead of rebuilding it; when null it
/// builds exactly what it always built, so the facade path is untouched.
/// All prepared objects are deterministic functions of the same spec
/// fields the drivers would use, which is what makes a service-routed solve
/// bitwise identical to a facade solve (pinned by tests/service/).
struct PreparedParts {
  /// Node partition for distributed solvers (the handle owns it).
  const BlockRowPartition* part = nullptr;
  /// Static SpMV communication plan on `part`.
  const SpmvPlan* spmv = nullptr;
  /// Augmented SpMV plan (ESRP redundancy), built for one specific phi;
  /// drivers must ignore it when their phi differs.
  const AspmvPlan* aspmv = nullptr;
  /// Factorized preconditioner. Partition-aligned for distributed solvers,
  /// single-domain for sequential ones — the plan cache keys on that.
  const Preconditioner* precond = nullptr;
};

/// Everything a solver driver needs, resolved from a validated SolveSpec.
struct SolveContext {
  const CsrMatrix& a;
  std::span<const real_t> b;
  const SolveSpec& spec;
  SolverObserver* observer = nullptr; ///< may be null
  /// Set by the service layer when a prepared handle backs this solve.
  const PreparedParts* prepared = nullptr;
};

/// A registered solver: the driver plus the capability flags validate_spec
/// enforces — declaring limits here (instead of hardcoding solver keys in
/// the validation) keeps "new solver = one registration" true.
struct SolverEntry {
  std::function<SolveReport(const SolveContext&)> run;
  /// Distributed solvers run on the simulated cluster (nodes, strategy and
  /// the failure schedule apply); sequential ones ignore nodes/strategy and
  /// take no failure events.
  bool distributed = false;
  /// How many failure events the solver's schedule supports.
  std::size_t max_failure_events = 0;
  /// Whether Strategy::esrp is implemented (distributed solvers only).
  bool supports_esrp = false;
  /// Whether no-spare recovery (SolveSpec::spare_nodes = false: survivors
  /// absorb the failed ranks' ranges) is implemented.
  bool supports_no_spare = false;
  /// Whether periodic residual replacement (SolveSpec::residual_replacement
  /// > 0) is implemented (distributed solvers only; sequential solvers
  /// ignore the field).
  bool supports_residual_replacement = true;
  /// Whether a non-empty SolveSpec::x0 initial guess is honored.
  bool supports_x0 = true;
  /// Whether SDC injection (SolveSpec::sdc_events) is implemented. Requires
  /// the residual-replacement machinery for detection, so only
  /// "resilient-pcg" qualifies today.
  bool supports_sdc = false;
  /// Whether multi-RHS batched solves (RunSpec::rhs_batch through
  /// SolveService::solve_batched) are implemented — the fused per-RHS
  /// recurrences sharing each SpMV sweep exist for "pcg" only.
  bool supports_batched_rhs = false;
  /// Whether the shrink and rejoin recovery rungs (the "shrink" policy
  /// preset: RecoveryPolicy::shrink_on_unrecoverable / rejoin) are
  /// implemented — the solver must provide the resilience engine's
  /// repartition and rejoin hooks. True for "resilient-pcg" only.
  bool supports_shrink = false;
};

Registry<SolverEntry>& solver_registry();

// --------------------------------------------------------- preconditioners --

struct PrecondContext {
  const CsrMatrix& a;
  /// Node partition for distributed solvers (block Jacobi aligns its blocks
  /// to it); null for the sequential solvers.
  const BlockRowPartition* part = nullptr;
  const SolveSpec& spec;
};

using PrecondFactory =
    std::function<std::unique_ptr<Preconditioner>(const PrecondContext&)>;

/// A registered preconditioner: the factory plus the capability flag
/// validate_spec needs to reject impossible combinations up front.
struct PrecondEntry {
  PrecondFactory make;
  /// Whether the built preconditioner exposes an explicit action matrix
  /// with node-local rows — required by every distributed solver (and by
  /// ESR/ESRP reconstruction). False for SSOR and IC(0), whose action is
  /// only available as an algorithm.
  bool explicit_action = true;
};

Registry<PrecondEntry>& precond_registry();

// ---------------------------------------------------------------- matrices --

/// A matrix factory receives the text after the key's colon ("24,24" for
/// "poisson2d:24,24"; empty when the key has no colon).
using MatrixFactory = std::function<TestProblem(const std::string& arg)>;

Registry<MatrixFactory>& matrix_registry();

/// Build the problem for a "key[:arg][;option]..." matrix spec. Unknown
/// base keys throw with the "did you mean" message; malformed arguments
/// (wrong dimension count, non-positive sizes) and unknown options throw
/// esrp::Error. Supported options: "format=sell" attaches a SELL-C-σ mirror
/// to the built matrix (CsrMatrix::attach_sell) so spmv/spmv_dot run the
/// vectorized chunked kernels, "sigma=<rows>" sets its sorting window
/// (default kDefaultSellSigma), and "format=csr" is the explicit default.
TestProblem resolve_matrix(const std::string& spec);

/// Lookup-only variant of resolve_matrix: validates the base key and the
/// format/sigma options (throwing the same errors) without building the
/// matrix. Lets the CLI reject typos before any expensive work.
void check_matrix_key(const std::string& spec);

} // namespace esrp
