#include "api/registry.hpp"

#include <algorithm>
#include <sstream>

#include "partition/partition.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/ic0.hpp"
#include "precond/jacobi.hpp"
#include "precond/ssor.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sell.hpp"

namespace esrp {

namespace {

/// Classic Levenshtein distance; key sets are tiny so the O(n*m) table is
/// irrelevant.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      const std::size_t subst = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      prev = cur;
    }
  }
  return row[b.size()];
}

/// Dimension list "NX,NY,..." -> exactly `count` positive integers.
std::vector<index_t> parse_dims(const std::string& kind,
                                const std::string& arg, std::size_t count) {
  std::vector<index_t> dims;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t used = 0;
    index_t value = 0;
    try {
      value = static_cast<index_t>(std::stoll(tok, &used));
    } catch (const std::exception&) {
      used = 0;
    }
    if (tok.empty() || used != tok.size() || value <= 0)
      throw Error("matrix \"" + kind + "\" needs " + std::to_string(count) +
                  " positive comma-separated dimensions, got \"" + arg + "\"");
    dims.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (dims.size() != count)
    throw Error("matrix \"" + kind + "\" needs " + std::to_string(count) +
                " dimensions, got " + std::to_string(dims.size()) + " in \"" +
                arg + "\"");
  return dims;
}

} // namespace

std::string unknown_key_message(const std::string& kind, std::string_view key,
                                const std::vector<std::string>& valid) {
  std::ostringstream os;
  os << "unknown " << kind << " \"" << key << "\"";
  // Suggest the closest key when the typo is plausible (distance at most 2,
  // or a third of the key length for long keys).
  std::size_t best = static_cast<std::size_t>(-1);
  const std::string* match = nullptr;
  for (const std::string& candidate : valid) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best) {
      best = d;
      match = &candidate;
    }
  }
  if (match && best <= std::max<std::size_t>(2, key.size() / 3))
    os << " — did you mean \"" << *match << "\"?";
  os << " valid " << kind << " keys: ";
  for (std::size_t i = 0; i < valid.size(); ++i)
    os << (i ? ", " : "") << valid[i];
  return os.str();
}

Registry<PrecondEntry>& precond_registry() {
  static Registry<PrecondEntry>* reg = [] {
    auto* r = new Registry<PrecondEntry>("preconditioner");
    r->add("identity", "no preconditioning (plain CG)",
           PrecondEntry{
               [](const PrecondContext& ctx)
                   -> std::unique_ptr<Preconditioner> {
                 return std::make_unique<IdentityPreconditioner>(ctx.a.rows());
               }});
    r->add("jacobi", "point Jacobi: P = diag(A)^-1",
           PrecondEntry{
               [](const PrecondContext& ctx)
                   -> std::unique_ptr<Preconditioner> {
                 return std::make_unique<JacobiPreconditioner>(ctx.a);
               }});
    r->add("block-jacobi",
           "node-aligned block Jacobi, size <= block_size (paper setup)",
           PrecondEntry{
               [](const PrecondContext& ctx)
                   -> std::unique_ptr<Preconditioner> {
                 if (ctx.part)
                   return std::make_unique<BlockJacobiPreconditioner>(
                       ctx.a, *ctx.part, ctx.spec.block_size);
                 return std::make_unique<BlockJacobiPreconditioner>(
                     ctx.a, ctx.spec.block_size);
               }});
    r->add("ssor", "symmetric SOR sweeps (sequential solvers only)",
           PrecondEntry{[](const PrecondContext& ctx)
                            -> std::unique_ptr<Preconditioner> {
                          return std::make_unique<SsorPreconditioner>(
                              ctx.a, ctx.spec.ssor_omega);
                        },
                        /*explicit_action=*/false});
    r->add("ic0", "incomplete Cholesky IC(0) (sequential solvers only)",
           PrecondEntry{[](const PrecondContext& ctx)
                            -> std::unique_ptr<Preconditioner> {
                          return std::make_unique<Ic0Preconditioner>(
                              ctx.a, ctx.spec.ic0_shift);
                        },
                        /*explicit_action=*/false});
    return r;
  }();
  return *reg;
}

Registry<MatrixFactory>& matrix_registry() {
  static Registry<MatrixFactory>* reg = [] {
    auto* r = new Registry<MatrixFactory>("matrix");
    r->add("emilia",
           "Emilia_923 stand-in; optional :NX,NY,NZ grid (default bench "
           "scale)",
           [](const std::string& arg) {
             if (arg.empty()) return emilia_like_default();
             const auto d = parse_dims("emilia", arg, 3);
             return emilia_like(d[0], d[1], d[2]);
           });
    r->add("audikw",
           "audikw_1 stand-in; optional :NX,NY,NZ grid (default bench scale)",
           [](const std::string& arg) {
             if (arg.empty()) return audikw_like_default();
             const auto d = parse_dims("audikw", arg, 3);
             return audikw_like(d[0], d[1], d[2]);
           });
    r->add("poisson2d", ":NX,NY — 2D Poisson 5-point stencil (Dirichlet)",
           [](const std::string& arg) {
             const auto d = parse_dims("poisson2d", arg, 2);
             return TestProblem{"poisson2d", "2D Poisson 5-pt",
                                poisson2d(d[0], d[1])};
           });
    r->add("poisson3d", ":NX,NY,NZ — 3D Poisson 7-point stencil (Dirichlet)",
           [](const std::string& arg) {
             const auto d = parse_dims("poisson3d", arg, 3);
             return TestProblem{"poisson3d", "3D Poisson 7-pt",
                                poisson3d(d[0], d[1], d[2])};
           });
    r->add("laplace1d", ":N — 1D Laplacian tridiag(-1, 2, -1)",
           [](const std::string& arg) {
             const auto d = parse_dims("laplace1d", arg, 1);
             return TestProblem{"laplace1d", "1D Laplacian", laplace1d(d[0])};
           });
    r->add("mm", ":<file.mtx> — Matrix Market file",
           [](const std::string& arg) {
             if (arg.empty())
               throw Error("matrix \"mm\" needs a file path: mm:<file.mtx>");
             return TestProblem{arg, "Matrix Market",
                                read_matrix_market_file(arg)};
           });
    return r;
  }();
  return *reg;
}

namespace {

/// Parsed form of a full matrix spec:
///   key[:arg][;format=sell|csr][;sigma=<rows>]
/// The base "key" or "key:arg" selects the registry factory as before;
/// ';'-separated options tune the storage format. `format=sell` converts to
/// SELL-C-σ (sparse/sell.hpp) and attaches the mirror to the built matrix;
/// `sigma=` sets the sorting window and requires format=sell.
struct MatrixSpec {
  std::string key;
  std::string arg;
  bool sell = false;
  index_t sigma = kDefaultSellSigma;
};

MatrixSpec parse_matrix_spec(const std::string& spec) {
  MatrixSpec out;
  const std::size_t semi = spec.find(';');
  const std::string base = spec.substr(0, semi);
  bool sigma_given = false;
  std::size_t pos = semi;
  while (pos != std::string::npos) {
    const std::size_t next = spec.find(';', pos + 1);
    const std::string opt =
        spec.substr(pos + 1, next == std::string::npos ? std::string::npos
                                                       : next - pos - 1);
    if (opt == "format=sell") {
      out.sell = true;
    } else if (opt == "format=csr") {
      out.sell = false;
    } else if (opt.rfind("sigma=", 0) == 0) {
      const std::string tok = opt.substr(6);
      std::size_t used = 0;
      index_t value = 0;
      try {
        value = static_cast<index_t>(std::stoll(tok, &used));
      } catch (const std::exception&) {
        used = 0;
      }
      if (tok.empty() || used != tok.size() || value <= 0)
        throw Error("matrix spec option \"sigma=\" needs a positive row "
                    "count, got \"" +
                    opt + "\" in \"" + spec + "\"");
      out.sigma = value;
      sigma_given = true;
    } else {
      throw Error("unknown matrix spec option \"" + opt + "\" in \"" + spec +
                  "\" (supported: format=sell, format=csr, sigma=<rows>)");
    }
    pos = next;
  }
  if (sigma_given && !out.sell)
    throw Error("matrix spec option \"sigma=\" requires format=sell in \"" +
                spec + "\"");
  const std::size_t colon = base.find(':');
  out.key = base.substr(0, colon);
  if (colon != std::string::npos) out.arg = base.substr(colon + 1);
  return out;
}

} // namespace

TestProblem resolve_matrix(const std::string& spec) {
  const MatrixSpec parsed = parse_matrix_spec(spec);
  TestProblem problem = matrix_registry().get(parsed.key)(parsed.arg);
  if (parsed.sell)
    problem.matrix.attach_sell(
        std::make_shared<const SellMatrix>(problem.matrix, parsed.sigma));
  return problem;
}

void check_matrix_key(const std::string& spec) {
  // Parses the options too, so a malformed format=/sigma= fails up front
  // with the same message resolve_matrix would give.
  (void)matrix_registry().get(parse_matrix_spec(spec).key);
}

} // namespace esrp
