// esrp::solve — the one entry point every consumer (esrp_cli, the examples,
// the xp experiment harness) uses to run a solve. Dispatch goes through the
// string-keyed registries (api/registry.hpp); the drivers call the exact
// same solver code paths as the historical direct APIs (`pcg_solve`,
// `pipelined_pcg_solve`, `ResilientPcg::solve`, `DistPipelinedPcg::solve`),
// so facade-dispatched solves are bitwise identical to direct calls — the
// parity tests in tests/api/ pin this down.
#pragma once

#include <span>
#include <string>

#include "api/solve_spec.hpp"

namespace esrp {

struct PreparedParts;

/// Validate `spec`, resolve the matrix / preconditioner / solver through the
/// registries, run the solve, and report. `observer` (optional) receives
/// per-iteration, on-failure, and on-recovery hooks. Throws esrp::Error on
/// an invalid spec or unknown registry key.
SolveReport solve(const SolveSpec& spec, SolverObserver* observer = nullptr);

namespace detail {

/// The dispatch tail of esrp::solve with the problem already resolved:
/// run `spec` through its registered driver against matrix `a` and rhs `b`,
/// optionally injecting a prepared handle's parts (api/registry.hpp), and
/// fill the report's identity fields. Shared by the facade (prepared =
/// nullptr) and SolveService, which is what makes service-routed solves
/// bitwise identical to facade solves — both run this exact function.
/// Callers are responsible for validate_spec and thread setup.
SolveReport run_resolved(const SolveSpec& spec, const CsrMatrix& a,
                         const std::string& name, std::span<const real_t> b,
                         SolverObserver* observer,
                         const PreparedParts* prepared);

} // namespace detail

} // namespace esrp
