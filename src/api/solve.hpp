// esrp::solve — the one entry point every consumer (esrp_cli, the examples,
// the xp experiment harness) uses to run a solve. Dispatch goes through the
// string-keyed registries (api/registry.hpp); the drivers call the exact
// same solver code paths as the historical direct APIs (`pcg_solve`,
// `pipelined_pcg_solve`, `ResilientPcg::solve`, `DistPipelinedPcg::solve`),
// so facade-dispatched solves are bitwise identical to direct calls — the
// parity tests in tests/api/ pin this down.
#pragma once

#include "api/solve_spec.hpp"

namespace esrp {

/// Validate `spec`, resolve the matrix / preconditioner / solver through the
/// registries, run the solve, and report. `observer` (optional) receives
/// per-iteration, on-failure, and on-recovery hooks. Throws esrp::Error on
/// an invalid spec or unknown registry key.
SolveReport solve(const SolveSpec& spec, SolverObserver* observer = nullptr);

} // namespace esrp
