// The unified solver front door: one declarative `SolveSpec` describing the
// whole experiment grid point — problem x solver x preconditioner x
// resilience strategy x failure schedule x threads, all as plain data — and
// one `SolveReport` subsuming the per-solver result structs
// (`PcgResult`, `PipelinedPcgResult`, `ResilientSolveResult`,
// `DistPipelinedResult`). `esrp::solve(spec)` (api/solve.hpp) dispatches
// through the string-keyed registries in api/registry.hpp, so a new solver,
// preconditioner, or matrix generator becomes reachable from the CLI, the
// examples, and the experiment harness by registering one factory.
//
// The spec is decomposed into three sub-structs along the service layer's
// prepare/solve split (service/solve_service.hpp):
//
//   ProblemSpec  — what gets *prepared* once and amortized: the operator,
//                  its partition shape, and the preconditioner factorization.
//   SolverConfig — how to iterate: solver choice, tolerances, resilience
//                  strategy, and cost-accounting knobs.
//   RunSpec      — what varies per solve: right-hand side(s), initial
//                  guess, fault schedule, and the thread budget.
//
// `SolveSpec` remains the flat all-in-one type (it inherits all three), so
// every existing call site keeps compiling and `spec.rtol`-style member
// access is unchanged. New code targeting the service layer should build the
// sub-structs directly; the monolithic `SolveSpec` is retained for the
// facade and will not grow new fields outside its three bases.
//
// Lifetime: the spans (`rhs`, `x0`) and the `matrix_data` pointer are
// borrowed by default — they must stay alive for the duration of the
// solve() call. To hand ownership to the spec instead (safe across scopes,
// queues, and sessions), use `RunSpec::take_rhs` / `RunSpec::take_x0`;
// copies and moves of an owning spec re-point the spans into their own
// storage, and debug builds poison freed storage with NaN so a dangling
// span trips validate_spec's liveness check instead of corrupting a solve.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "netsim/failure.hpp"
#include "resilience/options.hpp"

namespace esrp {

/// The amortizable part of a solve: everything `SolveService::prepare` turns
/// into a cached `ProblemHandle` (assembled matrix, node partition,
/// communication plans, factorized preconditioner). Two specs with equal
/// fields prepare to the same handle (see service/plan_cache.hpp).
struct ProblemSpec {
  // --- operator --------------------------------------------------------
  /// Matrix registry key (api/registry.hpp): "emilia", "audikw",
  /// "poisson2d:NX,NY", "poisson3d:NX,NY,NZ", "laplace1d:N",
  /// "mm:<file.mtx>". Ignored when `matrix_data` is set.
  std::string matrix;
  /// In-memory matrix (for callers that assembled their own operator);
  /// takes precedence over `matrix`. Borrowed by the facade (must outlive
  /// solve()); the service layer copies it into the prepared handle.
  const CsrMatrix* matrix_data = nullptr;
  /// Report label when `matrix_data` is used (defaults to "custom").
  std::string matrix_name;

  // --- partition shape --------------------------------------------------
  /// Simulated cluster size (paper: 128). Determines the block-row
  /// partition, so it is part of the prepared problem, not the run.
  rank_t nodes = 128;

  // --- preconditioner ---------------------------------------------------
  /// Preconditioner registry key: "identity", "jacobi", "block-jacobi",
  /// "ssor", "ic0". The factorization is the expensive prepared artifact.
  std::string precond = "block-jacobi";
  index_t block_size = 10;  ///< block Jacobi block size (paper: 10)
  real_t ssor_omega = 1.0;  ///< SSOR relaxation factor, in (0, 2)
  real_t ic0_shift = 0.0;   ///< IC(0) diagonal shift
};

/// How to iterate on a prepared problem: solver choice, convergence
/// criteria, the resilience strategy, and cost-model accounting knobs.
/// Changing these never forces a re-factorization (except `phi` and a
/// distributed/sequential solver switch, which shape the prepared plans —
/// the plan cache keys on those two derived facts).
struct SolverConfig {
  /// Solver registry key: "pcg", "pipelined", "resilient-pcg",
  /// "dist-pipelined".
  std::string solver = "resilient-pcg";
  real_t rtol = 1e-8;        ///< convergence: ||r||_2 / ||b||_2 < rtol
  index_t max_iterations = 0; ///< 0 = the solver's own default cap

  // --- simulated cluster accounting (distributed solvers only) ----------
  /// Use xp::calibrated_cost (the paper-regime cost model) instead of the
  /// physical-default CostParams.
  bool calibrated_cost = true;
  /// Cluster-shape registry key (scenario/cluster_shape.hpp):
  /// "homogeneous", "straggler:count=2,factor=4",
  /// "slow-rack:start=0,count=4,factor=8", "slow-links:factor=2".
  /// Empty = homogeneous. Shapes change accounting only — the
  /// floating-point trajectory is identical on every shape.
  std::string cluster_shape;

  // --- resilience (distributed solvers only) ---------------------------
  Strategy strategy = Strategy::none;
  index_t interval = 20;          ///< checkpoint interval T (1 = classic ESR)
  int phi = 1;                    ///< redundant copies / survivable failures
  std::size_t queue_capacity = 3; ///< ESRP redundancy-queue slots
  PrecondFormulation formulation = PrecondFormulation::inverse;
  bool spare_nodes = true;        ///< false: survivors absorb failed ranks
  index_t residual_replacement = 0; ///< recompute r = b - A x every k iters
  /// Recovery-ladder policy preset (resilience/options.hpp,
  /// recovery_policy_from_string): "ladder" (default; every exact rung,
  /// bitwise-compatible with the historical path), "exact" (reconstruct or
  /// scratch), "checkpoint" (IMCR restore or scratch), "scratch", or
  /// "shrink" (ladder plus repartition-shrink and rank rejoin — needs a
  /// solver with `supports_shrink`).
  std::string recovery_policy = "ladder";
};

/// The per-solve inputs: right-hand side(s), initial guess, fault schedule,
/// and the thread budget. Cheap to build per run; never cached.
///
/// `rhs` and `x0` are borrowed spans by default. `take_rhs` / `take_x0`
/// switch them to owned storage: the RunSpec then carries the data across
/// copies, moves, and asynchronous sessions, re-pointing the spans into the
/// copy's own buffer. Debug builds poison owned storage with NaN on
/// destruction, so a span that outlived its owner is caught by
/// validate_spec's NaN scan instead of silently dereferencing freed memory.
struct RunSpec {
  /// Right-hand side; empty = the deterministic pseudo-random
  /// xp::make_rhs(a) every experiment uses. Borrowed unless take_rhs
  /// transferred ownership.
  std::span<const real_t> rhs;
  /// Initial guess; empty = zero vector. Borrowed unless take_x0
  /// transferred ownership.
  std::span<const real_t> x0;

  /// Batched right-hand sides for `SolveService::solve_batched`: k systems
  /// A x_i = b_i sharing every SpMV sweep (CsrMatrix::spmv_multi). Owned.
  /// Mutually exclusive with `rhs`; only solvers whose registry entry sets
  /// `supports_batched_rhs` accept a non-empty batch, and the facade
  /// esrp::solve rejects it (batching is a service-layer feature).
  std::vector<Vector> rhs_batch;

  /// Failure schedule: each event fires once at its iteration. Events must
  /// be fully specified (iteration >= 0, non-empty ranks) with pairwise
  /// distinct iterations. Both distributed solvers support multi-event
  /// schedules (redundancy is replenished by later storage stages).
  std::vector<FailureEvent> failures;

  /// Silent-data-corruption schedule ("resilient-pcg" only): each event
  /// flips one bit of one vector entry at its iteration. Detection rides
  /// on residual replacement — pair with residual_replacement > 0 or the
  /// flips stay (honestly reported as) undetected.
  std::vector<SdcEvent> sdc_events;
  /// Relative recursive-vs-recomputed residual-norm gap above which a
  /// residual-replacement step flags a corruption.
  real_t sdc_threshold = 1e-3;

  /// Kernel threads for this solve: -1 = keep the current global setting,
  /// 0 = all hardware threads, n = exactly n. Through the facade the
  /// previous *global* setting is restored when solve() returns; through
  /// the service layer this is a per-session thread budget that never
  /// touches the global setting (parallel.hpp ThreadBudget).
  int threads = -1;

  /// Move `v` into owned storage and point `rhs` at it. The data now lives
  /// exactly as long as this RunSpec (and its copies), closing the
  /// borrowed-span lifetime footgun.
  void take_rhs(Vector v);
  /// Move `v` into owned storage and point `x0` at it.
  void take_x0(Vector v);

  /// True when `rhs` points into this spec's own storage (take_rhs path).
  bool owns_rhs() const;
  /// True when `x0` points into this spec's own storage (take_x0 path).
  bool owns_x0() const;

  RunSpec() = default;
  RunSpec(const RunSpec& other);
  RunSpec(RunSpec&& other) noexcept;
  RunSpec& operator=(const RunSpec& other);
  RunSpec& operator=(RunSpec&& other) noexcept;
  ~RunSpec();

private:
  // Owned backing stores for the take_rhs/take_x0 path; empty while the
  // spans borrow. Copies re-point the public spans into their own buffers
  // iff the source spans pointed into the source's buffers (a span the
  // caller re-seated to external data is copied verbatim).
  Vector rhs_storage_;
  Vector x0_storage_;
};

/// The historical flat spec — all three sub-structs in one type, so every
/// pre-split call site (`spec.matrix`, `spec.rtol`, `spec.rhs`, ...)
/// compiles unchanged.
///
/// Deprecation note: new code should prefer the sub-structs — build a
/// ProblemSpec + SolverConfig once, `SolveService::prepare` them, and issue
/// RunSpecs against the handle (service/solve_service.hpp). SolveSpec stays
/// as the facade's and the CLI's declarative surface, and any SolveSpec
/// slices implicitly to each of its three bases.
struct SolveSpec : ProblemSpec, SolverConfig, RunSpec {};

/// One result type for every solver. Fields a solver does not produce stay
/// at their defaults: sequential solvers leave `nodes` = 0, `modeled_time`
/// = 0 and `r` empty; distributed solvers leave `flops` = 0 (their work is
/// accounted in modeled time instead).
struct SolveReport {
  std::string solver;  ///< resolved solver key
  std::string precond; ///< resolved preconditioner key
  std::string matrix;  ///< problem name
  index_t rows = 0;
  index_t nnz = 0;
  rank_t nodes = 0; ///< simulated cluster size (0 for sequential solvers)

  bool converged = false;
  index_t iterations = 0;          ///< trajectory iterations at convergence
  index_t executed_iterations = 0; ///< bodies executed incl. redone ones
  real_t final_relres = 0;
  double flops = 0;        ///< total flops (sequential solvers)
  double modeled_time = 0; ///< cluster modeled time [s]
  double wall_seconds = 0; ///< host wall time (reference only)

  std::vector<RecoveryRecord> recoveries;
  std::vector<SdcRecord> sdc; ///< one record per injected bit-flip
  Vector x; ///< solution
  Vector r; ///< recursive residual (distributed solvers; for Eq. 2)
  real_t drift = 0;       ///< residual drift (paper Eq. 2), when r is known
  real_t true_relres = 0; ///< ||b - A x||_2 / ||b||_2 (distributed solvers)

  /// Total rollback distance across all recoveries.
  index_t wasted_iterations() const;
  /// Modeled time spent inside recoveries.
  double recovery_modeled_time() const;
  /// True iff any recovery fell back to a scratch restart.
  bool restarted_from_scratch() const;
};

/// Observer hooks shared by every solver behind the facade (replacing the
/// solver-specific `IterationCallback` / `IterationHook` one-offs). All
/// defaults are no-ops; override what you need.
class SolverObserver {
public:
  virtual ~SolverObserver() = default;

  /// Every convergence check: (trajectory iteration j, ||r||_2 / ||b||_2)
  /// — once per executed iteration body plus the final (converging) check,
  /// identically across all registered solvers. After a recovery, j jumps
  /// back — the rollback.
  virtual void on_iteration(index_t /*iteration*/, real_t /*relres*/) {}

  /// A failure event fired (before any recovery work).
  virtual void on_failure(const FailureEvent& /*event*/) {}

  /// A recovery completed (reconstruction, checkpoint restore, or scratch
  /// restart — see the record).
  virtual void on_recovery(const RecoveryRecord& /*record*/) {}
};

/// Check every invariant of a spec that can be checked without building the
/// problem: key existence in all three registries (with "did you mean"
/// suggestions), positive tolerances/intervals/sizes, phi vs nodes, a
/// well-formed failure schedule, and — in debug builds — a NaN scan of
/// rhs/x0 that catches spans whose owning RunSpec has been destroyed.
/// Throws esrp::Error; solve() calls this first.
void validate_spec(const SolveSpec& spec);

} // namespace esrp
