// The unified solver front door: one declarative `SolveSpec` describing the
// whole experiment grid point — problem x solver x preconditioner x
// resilience strategy x failure schedule x threads, all as plain data — and
// one `SolveReport` subsuming the per-solver result structs
// (`PcgResult`, `PipelinedPcgResult`, `ResilientSolveResult`,
// `DistPipelinedResult`). `esrp::solve(spec)` (api/solve.hpp) dispatches
// through the string-keyed registries in api/registry.hpp, so a new solver,
// preconditioner, or matrix generator becomes reachable from the CLI, the
// examples, and the experiment harness by registering one factory.
//
// Lifetime: the spans (`rhs`, `x0`) and the `matrix_data` pointer are
// borrowed — they must stay alive for the duration of the solve() call.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "netsim/failure.hpp"
#include "resilience/options.hpp"

namespace esrp {

struct SolveSpec {
  // --- problem ---------------------------------------------------------
  /// Matrix registry key (api/registry.hpp): "emilia", "audikw",
  /// "poisson2d:NX,NY", "poisson3d:NX,NY,NZ", "laplace1d:N",
  /// "mm:<file.mtx>". Ignored when `matrix_data` is set.
  std::string matrix;
  /// In-memory matrix (for callers that assembled their own operator);
  /// takes precedence over `matrix`.
  const CsrMatrix* matrix_data = nullptr;
  /// Report label when `matrix_data` is used (defaults to "custom").
  std::string matrix_name;
  /// Right-hand side; empty = the deterministic pseudo-random
  /// xp::make_rhs(a) every experiment uses.
  std::span<const real_t> rhs;
  /// Initial guess; empty = zero vector.
  std::span<const real_t> x0;

  // --- solver ----------------------------------------------------------
  /// Solver registry key: "pcg", "pipelined", "resilient-pcg",
  /// "dist-pipelined".
  std::string solver = "resilient-pcg";
  /// Preconditioner registry key: "identity", "jacobi", "block-jacobi",
  /// "ssor", "ic0".
  std::string precond = "block-jacobi";
  real_t rtol = 1e-8;        ///< convergence: ||r||_2 / ||b||_2 < rtol
  index_t max_iterations = 0; ///< 0 = the solver's own default cap

  // --- preconditioner parameters --------------------------------------
  index_t block_size = 10;  ///< block Jacobi block size (paper: 10)
  real_t ssor_omega = 1.0;  ///< SSOR relaxation factor, in (0, 2)
  real_t ic0_shift = 0.0;   ///< IC(0) diagonal shift

  // --- simulated cluster (distributed solvers only) --------------------
  rank_t nodes = 128;          ///< simulated cluster size (paper: 128)
  /// Use xp::calibrated_cost (the paper-regime cost model) instead of the
  /// physical-default CostParams.
  bool calibrated_cost = true;
  /// Cluster-shape registry key (scenario/cluster_shape.hpp):
  /// "homogeneous", "straggler:count=2,factor=4",
  /// "slow-rack:start=0,count=4,factor=8", "slow-links:factor=2".
  /// Empty = homogeneous. Shapes change accounting only — the
  /// floating-point trajectory is identical on every shape.
  std::string cluster_shape;

  // --- resilience (distributed solvers only) ---------------------------
  Strategy strategy = Strategy::none;
  index_t interval = 20;          ///< checkpoint interval T (1 = classic ESR)
  int phi = 1;                    ///< redundant copies / survivable failures
  std::size_t queue_capacity = 3; ///< ESRP redundancy-queue slots
  PrecondFormulation formulation = PrecondFormulation::inverse;
  bool spare_nodes = true;        ///< false: survivors absorb failed ranks
  index_t residual_replacement = 0; ///< recompute r = b - A x every k iters

  /// Failure schedule: each event fires once at its iteration. Events must
  /// be fully specified (iteration >= 0, non-empty ranks) with pairwise
  /// distinct iterations. Both distributed solvers support multi-event
  /// schedules (redundancy is replenished by later storage stages).
  std::vector<FailureEvent> failures;

  /// Silent-data-corruption schedule ("resilient-pcg" only): each event
  /// flips one bit of one vector entry at its iteration. Detection rides
  /// on residual replacement — pair with residual_replacement > 0 or the
  /// flips stay (honestly reported as) undetected.
  std::vector<SdcEvent> sdc_events;
  /// Relative recursive-vs-recomputed residual-norm gap above which a
  /// residual-replacement step flags a corruption.
  real_t sdc_threshold = 1e-3;

  // --- execution -------------------------------------------------------
  /// Kernel threads for this solve: -1 = keep the current global setting,
  /// 0 = all hardware threads, n = exactly n. The previous setting is
  /// restored when solve() returns.
  int threads = -1;
};

/// One result type for every solver. Fields a solver does not produce stay
/// at their defaults: sequential solvers leave `nodes` = 0, `modeled_time`
/// = 0 and `r` empty; distributed solvers leave `flops` = 0 (their work is
/// accounted in modeled time instead).
struct SolveReport {
  std::string solver;  ///< resolved solver key
  std::string precond; ///< resolved preconditioner key
  std::string matrix;  ///< problem name
  index_t rows = 0;
  index_t nnz = 0;
  rank_t nodes = 0; ///< simulated cluster size (0 for sequential solvers)

  bool converged = false;
  index_t iterations = 0;          ///< trajectory iterations at convergence
  index_t executed_iterations = 0; ///< bodies executed incl. redone ones
  real_t final_relres = 0;
  double flops = 0;        ///< total flops (sequential solvers)
  double modeled_time = 0; ///< cluster modeled time [s]
  double wall_seconds = 0; ///< host wall time (reference only)

  std::vector<RecoveryRecord> recoveries;
  std::vector<SdcRecord> sdc; ///< one record per injected bit-flip
  Vector x; ///< solution
  Vector r; ///< recursive residual (distributed solvers; for Eq. 2)
  real_t drift = 0;       ///< residual drift (paper Eq. 2), when r is known
  real_t true_relres = 0; ///< ||b - A x||_2 / ||b||_2 (distributed solvers)

  /// Total rollback distance across all recoveries.
  index_t wasted_iterations() const;
  /// Modeled time spent inside recoveries.
  double recovery_modeled_time() const;
  /// True iff any recovery fell back to a scratch restart.
  bool restarted_from_scratch() const;
};

/// Observer hooks shared by every solver behind the facade (replacing the
/// solver-specific `IterationCallback` / `IterationHook` one-offs). All
/// defaults are no-ops; override what you need.
class SolverObserver {
public:
  virtual ~SolverObserver() = default;

  /// Every convergence check: (trajectory iteration j, ||r||_2 / ||b||_2)
  /// — once per executed iteration body plus the final (converging) check,
  /// identically across all registered solvers. After a recovery, j jumps
  /// back — the rollback.
  virtual void on_iteration(index_t /*iteration*/, real_t /*relres*/) {}

  /// A failure event fired (before any recovery work).
  virtual void on_failure(const FailureEvent& /*event*/) {}

  /// A recovery completed (reconstruction, checkpoint restore, or scratch
  /// restart — see the record).
  virtual void on_recovery(const RecoveryRecord& /*record*/) {}
};

/// Check every invariant of a spec that can be checked without building the
/// problem: key existence in all three registries (with "did you mean"
/// suggestions), positive tolerances/intervals/sizes, phi vs nodes, and a
/// well-formed failure schedule. Throws esrp::Error; solve() calls this
/// first.
void validate_spec(const SolveSpec& spec);

} // namespace esrp
