#include "api/solve_spec.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "api/registry.hpp"
#include "common/error.hpp"
#include "scenario/cluster_shape.hpp"

namespace esrp {

namespace {

/// True when `s` points into `storage`'s buffer (the owning take_rhs path);
/// used by the copy/move members to decide whether a span must be re-seated
/// into the destination's own storage.
bool points_into(std::span<const real_t> s, const Vector& storage) {
  if (s.empty() || storage.empty()) return false;
  return s.data() >= storage.data() &&
         s.data() + s.size() <= storage.data() + storage.size();
}

/// Debug-build tripwire: overwrite freed owned storage with NaN so a span
/// that outlived its RunSpec produces a loud validate_spec failure instead
/// of silently reading reused memory. Release builds skip the sweep.
void poison(Vector& storage) {
#ifndef NDEBUG
  for (real_t& v : storage)
    v = std::numeric_limits<real_t>::quiet_NaN();
#else
  (void)storage;
#endif
}

} // namespace

void RunSpec::take_rhs(Vector v) {
  rhs_storage_ = std::move(v);
  rhs = rhs_storage_;
}

void RunSpec::take_x0(Vector v) {
  x0_storage_ = std::move(v);
  x0 = x0_storage_;
}

bool RunSpec::owns_rhs() const { return points_into(rhs, rhs_storage_); }

bool RunSpec::owns_x0() const { return points_into(x0, x0_storage_); }

RunSpec::RunSpec(const RunSpec& other)
    : rhs(other.rhs),
      x0(other.x0),
      rhs_batch(other.rhs_batch),
      failures(other.failures),
      sdc_events(other.sdc_events),
      sdc_threshold(other.sdc_threshold),
      threads(other.threads),
      rhs_storage_(other.rhs_storage_),
      x0_storage_(other.x0_storage_) {
  // Owning spans must follow the data into this copy's buffers; borrowed
  // spans keep borrowing from wherever the source pointed.
  if (other.owns_rhs()) rhs = rhs_storage_;
  if (other.owns_x0()) x0 = x0_storage_;
}

RunSpec::RunSpec(RunSpec&& other) noexcept
    : rhs(other.rhs),
      x0(other.x0),
      rhs_batch(std::move(other.rhs_batch)),
      failures(std::move(other.failures)),
      sdc_events(std::move(other.sdc_events)),
      sdc_threshold(other.sdc_threshold),
      threads(other.threads),
      rhs_storage_(std::move(other.rhs_storage_)),
      x0_storage_(std::move(other.x0_storage_)) {
  // Vector's move transfers the buffer, so spans into the source storage
  // already point at *our* storage; just clear the moved-from spans so the
  // source cannot be used to reach the transferred data.
  other.rhs = {};
  other.x0 = {};
}

RunSpec& RunSpec::operator=(const RunSpec& other) {
  if (this == &other) return *this;
  RunSpec copy(other);
  *this = std::move(copy);
  return *this;
}

RunSpec& RunSpec::operator=(RunSpec&& other) noexcept {
  if (this == &other) return *this;
  poison(rhs_storage_);
  poison(x0_storage_);
  rhs = other.rhs;
  x0 = other.x0;
  rhs_batch = std::move(other.rhs_batch);
  failures = std::move(other.failures);
  sdc_events = std::move(other.sdc_events);
  sdc_threshold = other.sdc_threshold;
  threads = other.threads;
  rhs_storage_ = std::move(other.rhs_storage_);
  x0_storage_ = std::move(other.x0_storage_);
  other.rhs = {};
  other.x0 = {};
  return *this;
}

RunSpec::~RunSpec() {
  poison(rhs_storage_);
  poison(x0_storage_);
}

index_t SolveReport::wasted_iterations() const {
  index_t total = 0;
  for (const RecoveryRecord& rec : recoveries) total += rec.wasted_iterations;
  return total;
}

double SolveReport::recovery_modeled_time() const {
  // Serial fixed-order sum over this report's recovery records (a handful of
  // entries, single thread); reproducible as-is. esrp-lint: allow(fp-accumulate)
  double total = 0;
  for (const RecoveryRecord& rec : recoveries) total += rec.modeled_time;
  return total;
}

bool SolveReport::restarted_from_scratch() const {
  for (const RecoveryRecord& rec : recoveries)
    if (rec.restarted_from_scratch) return true;
  return false;
}

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw Error("invalid SolveSpec: " + what);
}

} // namespace

void validate_spec(const SolveSpec& spec) {
  if (spec.matrix_data == nullptr && spec.matrix.empty())
    invalid("set either `matrix` (a registry key) or `matrix_data`");
  if (spec.matrix_data == nullptr) check_matrix_key(spec.matrix);

  // Unknown solver / preconditioner keys throw the registry's
  // "did you mean" message.
  const SolverEntry& solver = solver_registry().get(spec.solver);
  const PrecondEntry& precond = precond_registry().get(spec.precond);

  if (solver.distributed && !precond.explicit_action) {
    std::string valid;
    for (const std::string& key : precond_registry().keys()) {
      if (precond_registry().get(key).explicit_action)
        valid += (valid.empty() ? "" : ", ") + key;
    }
    invalid("preconditioner \"" + spec.precond +
            "\" has no explicit node-local action matrix, which the "
            "distributed solvers require (use one of: " +
            valid + ")");
  }

#ifndef NDEBUG
  // Liveness tripwire for the borrowed-span footgun: owned RunSpec storage
  // is NaN-poisoned on destruction, so a spec whose rhs/x0 span outlived
  // its owner fails here instead of corrupting the solve.
  for (const real_t v : spec.rhs) {
    if (std::isnan(v))
      invalid("rhs contains NaN — if the data was owned via take_rhs, its "
              "RunSpec has likely been destroyed (see the lifetime note in "
              "api/solve_spec.hpp)");
  }
  for (const real_t v : spec.x0) {
    if (std::isnan(v))
      invalid("x0 contains NaN — if the data was owned via take_x0, its "
              "RunSpec has likely been destroyed (see the lifetime note in "
              "api/solve_spec.hpp)");
  }
#endif

  if (!spec.rhs_batch.empty()) {
    if (!solver.supports_batched_rhs)
      invalid("\"" + spec.solver +
              "\" does not support batched right-hand sides (rhs_batch); "
              "use \"pcg\" through SolveService::solve_batched");
    if (!spec.rhs.empty())
      invalid("set either `rhs` (single system) or `rhs_batch` (batched "
              "systems), not both");
    for (std::size_t i = 0; i < spec.rhs_batch.size(); ++i) {
      if (spec.rhs_batch[i].empty())
        invalid("rhs_batch[" + std::to_string(i) + "] is empty");
      if (spec.rhs_batch[i].size() != spec.rhs_batch.front().size())
        invalid("rhs_batch vectors must all have the same length");
    }
  }

  if (!(spec.rtol > 0)) invalid("rtol must be positive");
  if (spec.max_iterations < 0) invalid("max_iterations must be >= 0");
  if (spec.interval < 1)
    invalid("checkpoint interval must be >= 1, got " +
            std::to_string(spec.interval));
  if (spec.phi < 1) invalid("phi (redundant copies) must be >= 1");
  if (spec.block_size < 1) invalid("block_size must be >= 1");
  if (spec.queue_capacity < 1) invalid("queue_capacity must be >= 1");
  if (spec.residual_replacement < 0)
    invalid("residual_replacement must be >= 0");
  if (!(spec.sdc_threshold > 0)) invalid("sdc_threshold must be positive");
  check_cluster_shape_key(spec.cluster_shape); // "" = homogeneous
  if (spec.threads < -1)
    invalid("threads must be -1 (keep), 0 (hardware), or a positive count");
  if (!(spec.ssor_omega > 0 && spec.ssor_omega < 2))
    invalid("ssor_omega must lie in (0, 2)");

  if (solver.distributed) {
    if (spec.nodes < 1) invalid("nodes must be >= 1");
    if (spec.phi >= spec.nodes)
      invalid("phi = " + std::to_string(spec.phi) +
              " redundant copies need phi < nodes = " +
              std::to_string(spec.nodes));
    // One source of truth for schedule well-formedness (fully-specified
    // events, distinct iterations, in-range ranks, no duplicate ranks):
    // the same netsim validation the resilience engines run. Note that an
    // all-ranks event is *valid* — it resolves to the scratch rung of the
    // recovery ladder instead of being rejected up front.
    try {
      merge_failure_schedule({}, spec.failures, spec.nodes);
    } catch (const Error& e) {
      invalid(e.what());
    }
    RecoveryPolicy policy;
    try {
      policy = recovery_policy_from_string(spec.recovery_policy);
    } catch (const Error& e) {
      invalid(e.what());
    }
    if ((policy.shrink_on_unrecoverable || policy.rejoin) &&
        !solver.supports_shrink)
      invalid("\"" + spec.solver +
              "\" does not implement the shrink/rejoin recovery rungs "
              "(recovery_policy \"" + spec.recovery_policy +
              "\"); use \"resilient-pcg\" or a non-shrink policy");
    if (policy.shrink_on_unrecoverable && spec.strategy != Strategy::esrp)
      invalid("recovery_policy \"" + spec.recovery_policy +
              "\" (shrink rung) is only defined for the esrp strategy, "
              "like no-spare recovery (ref. [22]); strategy \"" +
              to_string(spec.strategy) + "\" cannot shrink");
    if (spec.failures.size() > solver.max_failure_events)
      invalid("\"" + spec.solver + "\" supports at most " +
              std::to_string(solver.max_failure_events) + " failure event" +
              (solver.max_failure_events == 1 ? "" : "s"));
    if (spec.strategy == Strategy::esrp && !solver.supports_esrp)
      invalid("\"" + spec.solver +
              "\" supports strategies none and imcr only (no exact state "
              "reconstruction for its recurrences)");
    if (!spec.spare_nodes && !solver.supports_no_spare)
      invalid("\"" + spec.solver +
              "\" does not support no-spare recovery (spare_nodes = false); "
              "use \"resilient-pcg\" or keep spare nodes");
    if (!spec.spare_nodes && spec.strategy != Strategy::esrp)
      invalid("no-spare recovery is only defined for the esrp strategy "
              "(ref. [22]); strategy \"" + to_string(spec.strategy) +
              "\" needs spare nodes");
    if (spec.residual_replacement > 0 && !solver.supports_residual_replacement)
      invalid("\"" + spec.solver +
              "\" does not implement residual replacement "
              "(residual_replacement > 0); use \"resilient-pcg\"");
    if (!spec.sdc_events.empty() && !solver.supports_sdc)
      invalid("\"" + spec.solver +
              "\" does not implement SDC injection (sdc_events); use "
              "\"resilient-pcg\"");
    for (std::size_t i = 0; i < spec.sdc_events.size(); ++i) {
      const SdcEvent& e = spec.sdc_events[i];
      if (!e.enabled())
        invalid("SDC event " + std::to_string(i) +
                " is not fully specified (needs iteration >= 0)");
      if (e.target != "p" && e.target != "x" && e.target != "r" &&
          e.target != "checkpoint" && e.target != "pcopy")
        invalid("SDC event target must be p, x, r, checkpoint, or pcopy, "
                "got \"" + e.target + "\"");
      if (e.target == "checkpoint" && spec.strategy != Strategy::imcr)
        invalid("SDC target \"checkpoint\" corrupts the IMCR buddy "
                "checkpoint — it needs strategy imcr, got \"" +
                to_string(spec.strategy) + "\"");
      if (e.target == "pcopy" && spec.strategy != Strategy::esrp)
        invalid("SDC target \"pcopy\" corrupts a redundancy-queue copy — "
                "it needs strategy esrp, got \"" +
                to_string(spec.strategy) + "\"");
      if (e.bit < 0 || e.bit >= 64)
        invalid("SDC event bit " + std::to_string(e.bit) +
                " outside [0, 64)");
      if (e.index < 0)
        invalid("SDC event entry index must be >= 0");
    }
  } else if (!spec.failures.empty()) {
    invalid("solver \"" + spec.solver +
            "\" is sequential and cannot inject node failures");
  } else if (!spec.sdc_events.empty()) {
    invalid("solver \"" + spec.solver +
            "\" is sequential and cannot inject silent data corruptions");
  }
  if (!spec.x0.empty() && !solver.supports_x0)
    invalid("\"" + spec.solver + "\" does not honor an initial guess (x0)");
}

} // namespace esrp
