#include "xp/result_cache.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace esrp::xp {

std::string ResultCache::default_path() {
  if (const char* dir = std::getenv("ESRP_CACHE_DIR"))
    return std::string(dir) + "/xp_cache.tsv";
  return "xp_cache.tsv";
}

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in.is_open()) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string key;
    if (!std::getline(is, key, '\t')) continue;
    RunOutcome o;
    int converged = 0, restarted = 0;
    is >> converged >> o.iterations >> o.executed >> o.wasted >>
        o.modeled_time >> o.recovery_time >> o.wall_seconds >>
        o.final_relres >> o.drift >> restarted;
    if (is.fail()) continue;
    o.converged = converged != 0;
    o.restarted = restarted != 0;
    entries_[key] = o;
  }
}

std::optional<RunOutcome> ResultCache::lookup(const std::string& key) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

std::size_t ResultCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mu_);
  return Stats{hits_, misses_, entries_.size()};
}

void ResultCache::store(const std::string& key, const RunOutcome& o) {
  // The file append stays under the lock: interleaved appends from two
  // threads would corrupt the TSV lines the next constructor parses.
  MutexLock lock(mu_);
  entries_[key] = o;
  std::ofstream out(path_, std::ios::app);
  if (!out.is_open()) {
    log_warn("result cache: cannot append to ", path_);
    return;
  }
  out.precision(17);
  out << key << '\t' << (o.converged ? 1 : 0) << ' ' << o.iterations << ' '
      << o.executed << ' ' << o.wasted << ' ' << o.modeled_time << ' '
      << o.recovery_time << ' ' << o.wall_seconds << ' ' << o.final_relres
      << ' ' << o.drift << ' ' << (o.restarted ? 1 : 0) << '\n';
}

RunOutcome ResultCache::get_or_run(const CsrMatrix& a,
                                   std::span<const real_t> b,
                                   const std::string& problem,
                                   const RunConfig& cfg) {
  const std::string key = cfg.cache_key(problem);
  if (auto hit = lookup(key)) return *hit;
  const RunOutcome out = run_experiment(a, b, cfg);
  store(key, out);
  return out;
}

} // namespace esrp::xp
