#include "xp/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace esrp::xp {

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths, std::ostream& out)
    : headers_(std::move(headers)), widths_(std::move(widths)), out_(&out) {
  ESRP_CHECK(headers_.size() == widths_.size());
}

void TablePrinter::print_header() {
  print_rule();
  std::vector<std::string> cells(headers_.begin(), headers_.end());
  print_row(cells);
  print_rule();
}

void TablePrinter::print_rule() {
  for (int w : widths_) *out_ << '+' << std::string(static_cast<std::size_t>(w) + 2, '-');
  *out_ << "+\n";
}

void TablePrinter::print_row(const std::vector<std::string>& cells) {
  ESRP_CHECK(cells.size() == widths_.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    *out_ << "| " << std::setw(widths_[k]) << std::left << cells[k] << ' ';
  }
  *out_ << "|\n";
}

std::string format_percent(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100 << '%';
  return os.str();
}

std::string format_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

} // namespace esrp::xp
