// Convergence-trace diagnostics: record the relative residual per iteration
// and render it as CSV or as a log-scale ASCII chart. Failure/rollback
// events show up as the characteristic jump-back in the residual curve —
// the visual counterpart of the paper's "trajectory" argument (§1.1: a
// state fully determines the trajectory; rollback replays part of it).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/resilient_pcg.hpp"

namespace esrp::xp {

struct TracePoint {
  index_t iteration = 0;  ///< trajectory iteration number
  index_t step = 0;       ///< execution step (monotone, counts re-runs)
  real_t relres = 0;      ///< ||r||_2 / ||b||_2 at the top of the iteration
};

class ConvergenceTrace {
public:
  void record(index_t iteration, real_t relres);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Execution steps where the recorded iteration number decreased (the
  /// rollback points caused by recoveries).
  std::vector<index_t> rollback_steps() const;

  /// "step,iteration,relres" lines with a header row.
  void write_csv(std::ostream& out) const;

  /// Log-scale ASCII chart, `width` columns by `height` rows; the x axis is
  /// the execution step, so rollbacks appear as upward jumps of the curve.
  std::string ascii_chart(int width = 72, int height = 14) const;

  /// Adapter for ResilientPcg::set_iteration_hook: records
  /// ||r||_2 / bnorm at the top of every executed iteration.
  IterationHook hook(real_t bnorm);

private:
  std::vector<TracePoint> points_;
};

} // namespace esrp::xp
