// Tiny on-disk cache of experiment outcomes. The table and figure benches
// of one matrix share the exact same run grid; the figure benches reuse
// cached results instead of re-solving. The cache file is plain
// tab-separated text keyed by RunConfig::cache_key(); delete it to force
// recomputation. The simulation is deterministic, so cached and fresh
// results are identical.
//
// Thread-safe: one internal mutex guards the entry map, the traffic
// counters, and the file append, so concurrent lookups/stores (parameter
// sweeps fanning out runs) keep exact counts and an uncorrupted cache file.
// get_or_run() deliberately drops the lock around the solve itself: two
// threads that miss the same key both run the (deterministic, identical)
// experiment and the second store wins — the lock is never held across
// numeric work.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/thread_annotations.hpp"
#include "xp/experiment.hpp"

namespace esrp::xp {

class ResultCache {
public:
  /// Traffic counters, mirroring service/plan_cache.hpp so both caches
  /// report through the same vocabulary. lookup() counts one hit or miss;
  /// the disk cache never evicts.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t size = 0;
  };

  /// Opens (or creates on first store) the cache at `path`. The default
  /// path is "$ESRP_CACHE_DIR/xp_cache.tsv" or "./xp_cache.tsv".
  explicit ResultCache(std::string path = default_path());

  static std::string default_path();

  std::optional<RunOutcome> lookup(const std::string& key) const;

  /// Insert and append to the backing file.
  void store(const std::string& key, const RunOutcome& outcome);

  /// Run-or-reuse helper.
  RunOutcome get_or_run(const CsrMatrix& a, std::span<const real_t> b,
                        const std::string& problem, const RunConfig& cfg);

  std::size_t size() const;

  Stats stats() const;

private:
  const std::string path_;
  mutable Mutex mu_;
  std::map<std::string, RunOutcome> entries_ ESRP_GUARDED_BY(mu_);
  mutable std::uint64_t hits_ ESRP_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t misses_ ESRP_GUARDED_BY(mu_) = 0;
};

} // namespace esrp::xp
