// Fixed-width console table formatting for the bench harnesses, which print
// rows in the layout of the paper's Tables 2-4.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace esrp::xp {

class TablePrinter {
public:
  /// Column headers and widths; widths must cover the header text.
  TablePrinter(std::vector<std::string> headers, std::vector<int> widths,
               std::ostream& out = std::cout);

  void print_header();
  void print_rule();
  void print_row(const std::vector<std::string>& cells);

private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
  std::ostream* out_;
};

/// "x.y%" with one decimal, e.g. 0.0123 -> "1.2%".
std::string format_percent(double fraction);

/// Scientific notation with the given precision, e.g. -4.43e-02.
std::string format_sci(double v, int precision = 2);

/// Fixed notation with the given precision.
std::string format_fixed(double v, int precision = 2);

} // namespace esrp::xp
