// Experiment harness reproducing the paper's §5 protocol:
//
//  * 128 (simulated) nodes, one process per node, block Jacobi
//    preconditioner with node-aligned blocks of size <= 10;
//  * convergence at ||r||_2 / ||b||_2 < 1e-8, inner reconstruction solves at
//    1e-14;
//  * recovery strategies ESRP (T in {1, 20, 50, 100}, where T = 1 is
//    classic ESR) and IMCR (T in {20, 50, 100});
//  * phi in {1, 3, 8} redundant copies; failure runs inject psi = phi
//    simultaneous failures in contiguous rank blocks starting at rank 0
//    ("start") or N/2 ("center");
//  * the failure lands in the interval containing iteration C/2, two
//    iterations before the interval's end (worst case), where C is the
//    failure-free iteration count;
//  * reported metric: relative overhead (t - t0)/t0 against the reference
//    (non-resilient) solver, in modeled time (see DESIGN.md §3.1).
#pragma once

#include <optional>
#include <string>

#include "core/resilient_pcg.hpp"
#include "sparse/csr.hpp"

namespace esrp::xp {

struct RunConfig {
  Strategy strategy = Strategy::none;
  index_t interval = 1;  ///< T
  int phi = 1;
  rank_t num_nodes = 128;
  real_t rtol = 1e-8;
  index_t max_block_size = 10; ///< block Jacobi block size
  std::size_t queue_capacity = 3;

  bool with_failure = false;
  rank_t failure_start = 0;       ///< first rank of the contiguous block
  int psi = 0;                    ///< number of simultaneous failures
  index_t failure_iteration = -1; ///< iteration of the event

  std::string cache_key(const std::string& problem) const;
};

struct RunOutcome {
  bool converged = false;
  index_t iterations = 0;        ///< trajectory iteration count
  index_t executed = 0;          ///< executed bodies (incl. redone)
  index_t wasted = 0;            ///< rollback distance of the failure
  double modeled_time = 0;       ///< [s]
  double recovery_time = 0;      ///< modeled time of the recovery phase [s]
  double wall_seconds = 0;
  real_t final_relres = 0;
  real_t drift = 0;              ///< residual drift, paper Eq. 2
  bool restarted = false;        ///< recovery fell back to scratch restart
};

/// Cost model calibrated to the paper's testbed regime (DESIGN.md §3.1):
/// per-flop and per-byte costs are inflated by the ratio between the paper's
/// per-node workload (~460k matrix nonzeros per node on 128 VSC3 nodes) and
/// the simulated instance's per-node workload. This keeps the
/// compute-to-communication ratio — which is what the paper's relative
/// overheads measure — in the paper's regime even though the simulated
/// matrices are ~30-100x smaller. Per-message latency stays physical.
CostParams calibrated_cost(const CsrMatrix& a, rank_t num_nodes);

/// Right-hand side used by all experiments: a deterministic pseudo-random
/// vector (fixed seed). A random b has O(1) components on the operator's
/// small-eigenvalue eigenvectors, so PCG has to resolve the full spectrum —
/// constructions like b = A * x_random (or the all-ones vector, an exact
/// eigenvector of the graph-Laplacian generators) make the solve
/// artificially easy because the residual barely sees those components.
Vector make_rhs(const CsrMatrix& a);

/// Run one configured solve on a fresh simulated cluster.
RunOutcome run_experiment(const CsrMatrix& a, std::span<const real_t> b,
                          const RunConfig& cfg);

/// Reference (non-resilient, failure-free) run: defines t0 and C.
struct Reference {
  double t0_modeled = 0;
  index_t iterations = 0; ///< C
  real_t drift = 0;
};
Reference run_reference(const CsrMatrix& a, std::span<const real_t> b,
                        rank_t num_nodes, real_t rtol = 1e-8,
                        index_t max_block_size = 10);

/// Paper §5 failure placement: the interval [mT, (m+1)T) containing C/2,
/// two iterations before its end; clamped to [1, C-1]. For T = 1 the
/// interval degenerates and the failure lands at C/2.
index_t worst_case_failure_iteration(index_t c, index_t interval);

/// Relative overhead (t - t0) / t0.
double relative_overhead(double t, double t0);

} // namespace esrp::xp
