#include "xp/experiment.hpp"

#include <sstream>

#include "api/solve.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace esrp::xp {

std::string RunConfig::cache_key(const std::string& problem) const {
  std::ostringstream os;
  os << problem << '|' << to_string(strategy) << "|T=" << interval
     << "|phi=" << phi << "|N=" << num_nodes << "|rtol=" << rtol
     << "|bs=" << max_block_size << "|q=" << queue_capacity;
  if (with_failure)
    os << "|fail@" << failure_iteration << "+" << failure_start << "x" << psi;
  else
    os << "|nofail";
  return os.str();
}

CostParams calibrated_cost(const CsrMatrix& a, rank_t num_nodes) {
  // Paper scale: Emilia_923 has 40.4M nnz and audikw_1 77.7M nnz on 128
  // nodes — on the order of 460k nnz per node.
  constexpr double kPaperLocalNnz = 460e3;
  const double local_nnz =
      static_cast<double>(a.nnz()) / static_cast<double>(num_nodes);
  const double scale = std::max(1.0, kPaperLocalNnz / local_nnz);
  CostParams p;
  // 4.5e-9 s/flop reproduces the paper's ~1.4 ms per Emilia_923 iteration
  // (memory-bound sparse kernels on 2014-era nodes, not peak flops).
  p.gamma_s = 4.5e-9 * scale;
  p.beta_s = 2.0e-10 * scale;
  p.alpha_s = 2.0e-6;
  return p;
}

Vector make_rhs(const CsrMatrix& a) {
  Rng rng(0x5EED);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

RunOutcome run_experiment(const CsrMatrix& a, std::span<const real_t> b,
                          const RunConfig& cfg) {
  // The harness is a thin adapter over the solver facade: one RunConfig
  // becomes one SolveSpec, and esrp::solve does the construction the
  // harness used to open-code (partition, calibrated cluster, node-aligned
  // block Jacobi).
  SolveSpec spec;
  spec.matrix_data = &a;
  spec.rhs = b;
  spec.solver = "resilient-pcg";
  spec.precond = "block-jacobi";
  spec.block_size = cfg.max_block_size;
  spec.nodes = cfg.num_nodes;
  spec.strategy = cfg.strategy;
  spec.interval = cfg.interval;
  spec.phi = cfg.phi;
  spec.queue_capacity = cfg.queue_capacity;
  spec.rtol = cfg.rtol;
  if (cfg.with_failure) {
    ESRP_CHECK_MSG(cfg.psi >= 1, "failure run needs psi >= 1");
    ESRP_CHECK_MSG(cfg.failure_iteration >= 0,
                   "failure run needs a failure iteration");
    spec.failures.push_back(FailureEvent{
        cfg.failure_iteration,
        contiguous_ranks(cfg.failure_start, cfg.psi, cfg.num_nodes)});
  }

  const SolveReport report = esrp::solve(spec);

  RunOutcome out;
  out.converged = report.converged;
  out.iterations = report.iterations;
  out.executed = report.executed_iterations;
  out.modeled_time = report.modeled_time;
  out.wall_seconds = report.wall_seconds;
  out.final_relres = report.final_relres;
  out.recovery_time = report.recovery_modeled_time();
  out.wasted = report.wasted_iterations();
  out.restarted = report.restarted_from_scratch();
  out.drift = report.drift;
  return out;
}

Reference run_reference(const CsrMatrix& a, std::span<const real_t> b,
                        rank_t num_nodes, real_t rtol,
                        index_t max_block_size) {
  RunConfig cfg;
  cfg.strategy = Strategy::none;
  cfg.num_nodes = num_nodes;
  cfg.rtol = rtol;
  cfg.max_block_size = max_block_size;
  const RunOutcome out = run_experiment(a, b, cfg);
  ESRP_CHECK_MSG(out.converged, "reference run did not converge");
  Reference ref;
  ref.t0_modeled = out.modeled_time;
  ref.iterations = out.iterations;
  ref.drift = out.drift;
  return ref;
}

index_t worst_case_failure_iteration(index_t c, index_t interval) {
  ESRP_CHECK(c > 0 && interval >= 1);
  if (interval == 1) return std::max<index_t>(1, c / 2);
  const index_t m = (c / 2) / interval; // interval [mT, (m+1)T) contains C/2
  index_t it = (m + 1) * interval - 2;
  it = std::max<index_t>(it, 1);
  it = std::min<index_t>(it, c - 1);
  return it;
}

double relative_overhead(double t, double t0) {
  ESRP_CHECK(t0 > 0);
  return (t - t0) / t0;
}

} // namespace esrp::xp
