#include "xp/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace esrp::xp {

void ConvergenceTrace::record(index_t iteration, real_t relres) {
  ESRP_CHECK(relres >= 0);
  TracePoint p;
  p.iteration = iteration;
  p.step = static_cast<index_t>(points_.size());
  p.relres = relres;
  points_.push_back(p);
}

std::vector<index_t> ConvergenceTrace::rollback_steps() const {
  std::vector<index_t> out;
  out.reserve(points_.size());
  for (std::size_t k = 1; k < points_.size(); ++k) {
    if (points_[k].iteration < points_[k - 1].iteration)
      out.push_back(points_[k].step);
  }
  return out;
}

void ConvergenceTrace::write_csv(std::ostream& out) const {
  out << "step,iteration,relres\n";
  out.precision(17);
  for (const TracePoint& p : points_)
    out << p.step << ',' << p.iteration << ',' << p.relres << '\n';
}

std::string ConvergenceTrace::ascii_chart(int width, int height) const {
  ESRP_CHECK(width >= 8 && height >= 4);
  if (points_.empty()) return "(empty trace)\n";

  // Log range of the positive residuals.
  double lo = 0, hi = 0;
  bool first = true;
  for (const TracePoint& p : points_) {
    if (p.relres <= 0) continue;
    const double v = std::log10(p.relres);
    if (first) {
      lo = hi = v;
      first = false;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (first) return "(all residuals zero)\n";
  if (hi - lo < 1e-12) hi = lo + 1;

  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const auto n = static_cast<double>(points_.size());
  for (const TracePoint& p : points_) {
    if (p.relres <= 0) continue;
    const int col = std::min(width - 1,
                             static_cast<int>(static_cast<double>(p.step) /
                                              n * width));
    const double frac = (std::log10(p.relres) - lo) / (hi - lo);
    const int row = std::min(height - 1,
                             static_cast<int>((1.0 - frac) * (height - 1)));
    rows[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }

  std::string out;
  char label[64];
  std::snprintf(label, sizeof label, "log10(relres): %.1f (top) .. %.1f\n",
                hi, lo);
  out += label;
  for (const std::string& row : rows) {
    out += '|';
    out += row;
    out += '\n';
  }
  out += '+';
  out.append(static_cast<std::size_t>(width), '-');
  out += "> step\n";
  return out;
}

IterationHook ConvergenceTrace::hook(real_t bnorm) {
  ESRP_CHECK(bnorm > 0);
  return [this, bnorm](index_t j, const DistVector&, const DistVector& r,
                       const DistVector&, const DistVector&) {
    const Vector rg = r.gather_global();
    record(j, vec_norm2(rg) / bnorm);
  };
}

} // namespace esrp::xp
