// Block-row data distribution: node s owns a contiguous range of row/vector
// indices I_s, the distribution used by the paper (and by PETSc). Rows are
// split as evenly as possible, with the first (M mod N) nodes receiving one
// extra row.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "partition/index_set.hpp"

namespace esrp {

class BlockRowPartition {
public:
  /// Distribute `global_size` indices over `num_nodes` nodes. Every node
  /// receives a (possibly empty) contiguous range.
  BlockRowPartition(index_t global_size, rank_t num_nodes);

  /// Explicit boundaries: node s owns [offsets[s], offsets[s+1]). Must be
  /// non-decreasing, start at 0, and its back defines the global size.
  /// Used by the no-spare-node recovery, where surviving ranks absorb the
  /// failed ranks' ranges and some ranks end up empty.
  explicit BlockRowPartition(std::vector<index_t> offsets);

  index_t global_size() const { return global_size_; }
  rank_t num_nodes() const { return num_nodes_; }

  /// First index owned by `rank`.
  index_t begin(rank_t rank) const;
  /// One-past-last index owned by `rank`.
  index_t end(rank_t rank) const;
  /// Number of indices owned by `rank`.
  index_t local_size(rank_t rank) const { return end(rank) - begin(rank); }

  /// Owner of global index i (O(log N)).
  rank_t owner(index_t i) const;

  /// Global index of local offset `k` on `rank`.
  index_t to_global(rank_t rank, index_t k) const;
  /// Local offset of global index i on its owner.
  index_t to_local(index_t i) const;

  /// I_f: all indices owned by the given set of ranks (ranks need not be
  /// sorted; the result is a valid IndexSet).
  IndexSet owned_by(std::span<const rank_t> ranks) const;

  /// I \ I_f for the given ranks.
  IndexSet complement_of(std::span<const rank_t> ranks) const;

  /// Number of ranks with a non-empty range.
  rank_t active_nodes() const;

private:
  index_t global_size_;
  rank_t num_nodes_;
  std::vector<index_t> offsets_; // size num_nodes_ + 1
};

/// No-spare-node recovery (paper §4, reference [22]): redistribute the
/// failed ranks' ranges to surviving neighbors. Each maximal failed block is
/// absorbed by the nearest surviving rank to its left (to keep ranges
/// contiguous), or to its right when the block starts at rank 0. The failed
/// ranks end up with empty ranges; the node count is unchanged. Throws if
/// every rank failed.
BlockRowPartition absorb_ranks(const BlockRowPartition& part,
                               std::span<const rank_t> failed);

} // namespace esrp
