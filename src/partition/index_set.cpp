#include "partition/index_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

bool is_index_set(std::span<const index_t> xs) {
  for (std::size_t k = 1; k < xs.size(); ++k)
    if (xs[k] <= xs[k - 1]) return false;
  return true;
}

IndexSet index_range(index_t lo, index_t hi) {
  ESRP_CHECK(lo <= hi);
  IndexSet out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (index_t i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

IndexSet set_union(std::span<const index_t> a, std::span<const index_t> b) {
  ESRP_CHECK(is_index_set(a) && is_index_set(b));
  IndexSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

IndexSet set_difference(std::span<const index_t> a, std::span<const index_t> b) {
  ESRP_CHECK(is_index_set(a) && is_index_set(b));
  IndexSet out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

IndexSet set_intersection(std::span<const index_t> a,
                          std::span<const index_t> b) {
  ESRP_CHECK(is_index_set(a) && is_index_set(b));
  IndexSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

IndexSet set_complement(std::span<const index_t> a, index_t domain) {
  ESRP_CHECK(is_index_set(a));
  ESRP_CHECK(a.empty() || (a.front() >= 0 && a.back() < domain));
  IndexSet out;
  out.reserve(static_cast<std::size_t>(domain) - a.size());
  std::size_t k = 0;
  for (index_t i = 0; i < domain; ++i) {
    if (k < a.size() && a[k] == i) {
      ++k;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

bool set_contains(std::span<const index_t> a, index_t x) {
  return std::binary_search(a.begin(), a.end(), x);
}

} // namespace esrp
