#include "partition/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

BlockRowPartition::BlockRowPartition(index_t global_size, rank_t num_nodes)
    : global_size_(global_size), num_nodes_(num_nodes) {
  ESRP_CHECK_MSG(global_size >= 0, "global size must be non-negative");
  ESRP_CHECK_MSG(num_nodes > 0, "partition needs at least one node");
  offsets_.resize(static_cast<std::size_t>(num_nodes) + 1);
  const index_t base = global_size / num_nodes;
  const index_t extra = global_size % num_nodes;
  offsets_[0] = 0;
  for (rank_t s = 0; s < num_nodes; ++s) {
    const index_t sz = base + (s < extra ? 1 : 0);
    offsets_[static_cast<std::size_t>(s) + 1] =
        offsets_[static_cast<std::size_t>(s)] + sz;
  }
  ESRP_CHECK(offsets_.back() == global_size);
}

BlockRowPartition::BlockRowPartition(std::vector<index_t> offsets)
    : global_size_(0), num_nodes_(0), offsets_(std::move(offsets)) {
  ESRP_CHECK_MSG(offsets_.size() >= 2, "offsets need at least two entries");
  ESRP_CHECK_MSG(offsets_.front() == 0, "offsets must start at 0");
  for (std::size_t k = 1; k < offsets_.size(); ++k)
    ESRP_CHECK_MSG(offsets_[k] >= offsets_[k - 1],
                   "offsets must be non-decreasing");
  num_nodes_ = static_cast<rank_t>(offsets_.size() - 1);
  global_size_ = offsets_.back();
}

index_t BlockRowPartition::begin(rank_t rank) const {
  ESRP_CHECK(rank >= 0 && rank < num_nodes_);
  return offsets_[static_cast<std::size_t>(rank)];
}

index_t BlockRowPartition::end(rank_t rank) const {
  ESRP_CHECK(rank >= 0 && rank < num_nodes_);
  return offsets_[static_cast<std::size_t>(rank) + 1];
}

rank_t BlockRowPartition::owner(index_t i) const {
  ESRP_CHECK_MSG(i >= 0 && i < global_size_, "index " << i << " out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  // With empty ranges several offsets can equal i+?; upper_bound lands past
  // the owner whose [begin, end) actually contains i.
  return static_cast<rank_t>(it - offsets_.begin() - 1);
}

rank_t BlockRowPartition::active_nodes() const {
  rank_t active = 0;
  for (rank_t s = 0; s < num_nodes_; ++s)
    if (local_size(s) > 0) ++active;
  return active;
}

index_t BlockRowPartition::to_global(rank_t rank, index_t k) const {
  ESRP_CHECK(k >= 0 && k < local_size(rank));
  return begin(rank) + k;
}

index_t BlockRowPartition::to_local(index_t i) const {
  return i - begin(owner(i));
}

IndexSet BlockRowPartition::owned_by(std::span<const rank_t> ranks) const {
  std::vector<rank_t> sorted(ranks.begin(), ranks.end());
  std::sort(sorted.begin(), sorted.end());
  ESRP_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "duplicate ranks in failure set");
  IndexSet out;
  std::size_t total = 0;
  for (rank_t s : sorted) total += static_cast<std::size_t>(end(s) - begin(s));
  out.reserve(total);
  for (rank_t s : sorted) {
    for (index_t i = begin(s); i < end(s); ++i) out.push_back(i);
  }
  return out;
}

IndexSet BlockRowPartition::complement_of(std::span<const rank_t> ranks) const {
  return set_complement(owned_by(ranks), global_size_);
}

BlockRowPartition absorb_ranks(const BlockRowPartition& part,
                               std::span<const rank_t> failed) {
  const rank_t n = part.num_nodes();
  std::vector<bool> dead(static_cast<std::size_t>(n), false);
  for (rank_t s : failed) {
    ESRP_CHECK(s >= 0 && s < n);
    dead[static_cast<std::size_t>(s)] = true;
  }
  ESRP_CHECK_MSG(failed.size() < static_cast<std::size_t>(n),
                 "cannot absorb: every rank failed");

  // New sizes: each rank keeps its range; a dead rank's range moves to the
  // nearest surviving rank to its left, or to its right for a leading block.
  std::vector<index_t> size(static_cast<std::size_t>(n));
  for (rank_t s = 0; s < n; ++s)
    size[static_cast<std::size_t>(s)] = part.local_size(s);
  for (rank_t s = 0; s < n; ++s) {
    if (!dead[static_cast<std::size_t>(s)]) continue;
    rank_t adopter = -1;
    for (rank_t l = s; l-- > 0;) {
      if (!dead[static_cast<std::size_t>(l)]) {
        adopter = l;
        break;
      }
    }
    if (adopter < 0) {
      for (rank_t r = s + 1; r < n; ++r) {
        if (!dead[static_cast<std::size_t>(r)]) {
          adopter = r;
          break;
        }
      }
    }
    ESRP_CHECK(adopter >= 0);
    size[static_cast<std::size_t>(adopter)] += size[static_cast<std::size_t>(s)];
    size[static_cast<std::size_t>(s)] = 0;
  }

  std::vector<index_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (rank_t s = 0; s < n; ++s)
    offsets[static_cast<std::size_t>(s) + 1] =
        offsets[static_cast<std::size_t>(s)] + size[static_cast<std::size_t>(s)];
  ESRP_CHECK(offsets.back() == part.global_size());
  return BlockRowPartition(std::move(offsets));
}

} // namespace esrp
