// Sorted-index-set algebra. Index sets are represented as strictly
// increasing std::vector<index_t>; the notation follows the paper: I is the
// set of all indices, I_f the indices owned by the failed nodes, I \ I_f the
// surviving indices.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace esrp {

using IndexSet = std::vector<index_t>;

/// True iff `xs` is strictly increasing (a valid IndexSet).
bool is_index_set(std::span<const index_t> xs);

/// [lo, hi) as an IndexSet.
IndexSet index_range(index_t lo, index_t hi);

/// Set union of two IndexSets.
IndexSet set_union(std::span<const index_t> a, std::span<const index_t> b);

/// Set difference a \ b.
IndexSet set_difference(std::span<const index_t> a, std::span<const index_t> b);

/// Set intersection.
IndexSet set_intersection(std::span<const index_t> a,
                          std::span<const index_t> b);

/// Complement of `a` within [0, domain).
IndexSet set_complement(std::span<const index_t> a, index_t domain);

/// Membership test (binary search).
bool set_contains(std::span<const index_t> a, index_t x);

} // namespace esrp
