#include "resilience/redundancy_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

RedundancyQueue::RedundancyQueue(std::size_t capacity) : capacity_(capacity) {
  ESRP_CHECK_MSG(capacity >= 2, "queue needs at least two slots");
}

void RedundancyQueue::push(RedundantCopy copy) {
  ESRP_CHECK(copy.valid());
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const RedundantCopy& e) { return e.tag() == copy.tag(); });
  if (it != entries_.end()) {
    *it = std::move(copy); // rollback re-execution: replace in place
    return;
  }
  ESRP_CHECK_MSG(entries_.empty() || copy.tag() > entries_.back().tag(),
                 "queue tags must be pushed in increasing order (got "
                     << copy.tag() << " after " << entries_.back().tag() << ")");
  entries_.push_back(std::move(copy));
  if (entries_.size() > capacity_) entries_.erase(entries_.begin());
}

const RedundantCopy* RedundancyQueue::find(index_t tag) const {
  for (const RedundantCopy& e : entries_)
    if (e.tag() == tag) return &e;
  return nullptr;
}

std::optional<index_t> RedundancyQueue::newest_adjacent_pair() const {
  for (std::size_t k = entries_.size(); k-- > 1;) {
    if (entries_[k].tag() == entries_[k - 1].tag() + 1)
      return entries_[k].tag();
  }
  return std::nullopt;
}

void RedundancyQueue::drop_holders(std::span<const rank_t> ranks) {
  for (RedundantCopy& e : entries_) e.drop_holders(ranks);
}

rank_t RedundancyQueue::corrupt_newest(index_t entry, int bit) {
  if (entries_.empty()) return -1;
  return entries_.back().corrupt(entry, bit);
}

std::vector<index_t> RedundancyQueue::tags() const {
  std::vector<index_t> out;
  out.reserve(entries_.size());
  for (const RedundantCopy& e : entries_) out.push_back(e.tag());
  return out;
}

} // namespace esrp
