// The SolverState concept: the set of distributed vectors and replicated
// scalars a solver exposes so the resilience engine can save, damage, and
// restore its dynamic data without knowing the recurrences they belong to.
//
//   vectors — the live recurrence vectors, in a solver-chosen fixed order.
//             Checkpoints and star snapshots capture exactly these (in this
//             order), a failure zeroes the failed ranks' slices of them.
//             Classic PCG exposes {x, r, z, p}; pipelined PCG exposes the
//             eight recurrence vectors {x, r, u, w, z, q, s, p}.
//   scratch — per-iteration work vectors (e.g. A p) that a failure also
//             destroys but that are never worth saving: the next iteration
//             recomputes them.
//   scalars — replicated iteration-carried scalars saved and restored with
//             the vectors (classic: beta; pipelined: gamma_prev,
//             alpha_prev). Every node holds them, so a recovery retrieves
//             them from any survivor at the cost of one scalar message.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "netsim/dist_vector.hpp"

namespace esrp {

struct SolverState {
  std::vector<DistVector*> vectors;
  std::vector<DistVector*> scratch;
  std::vector<real_t*> scalars;
};

/// An owned copy of a SolverState at one iteration — the engine's "star"
/// state (the paper's x*, r*, z*, p*). Snapshots can carry extra scalar
/// slots beyond the live scalars for values only the recovery math needs
/// (e.g. the pipelined solver's beta^(t), amended after the snapshot is
/// taken — see ResilienceEngine::set_snapshot_scalar).
class StateSnapshot {
public:
  /// Deep-copies `state` (vectors and scalars) on `part`; the extra scalar
  /// slots start at zero.
  StateSnapshot(index_t tag, const SolverState& state,
                const BlockRowPartition& part, std::size_t extra_scalars);

  index_t tag() const { return tag_; }
  std::size_t num_vectors() const { return vecs_.size(); }
  std::size_t num_scalars() const { return scalars_.size(); }

  const DistVector& vec(std::size_t k) const { return vecs_[k]; }
  DistVector& vec(std::size_t k) { return vecs_[k]; }
  real_t scalar(std::size_t k) const { return scalars_[k]; }
  void set_scalar(std::size_t k, real_t v) { scalars_[k] = v; }

  /// Re-capture `state` under a new tag, reusing the allocated vectors
  /// (shapes must match — the snapshot was built from the same state).
  void recapture(index_t tag, const SolverState& state);

  /// Copy the snapshot's vectors back into the live state (the survivors'
  /// rollback). Scalars are left to the caller: which live scalars a
  /// snapshot slot maps to is the solver's business.
  void restore_vectors(const SolverState& state) const;

  /// A node failure also destroys the failed ranks' snapshot slices.
  void zero_ranks(std::span<const rank_t> ranks);

  /// Gather every vector (no-spare recovery: state must be extracted
  /// before the partition objects it references are replaced).
  std::vector<Vector> gather_all() const;

  /// Rebuild the snapshot's vectors on a new partition from a gather_all()
  /// result (the adopters' copies after a no-spare repartition).
  void rebuild(const BlockRowPartition& part, const std::vector<Vector>& data);

private:
  index_t tag_ = -1;
  std::vector<DistVector> vecs_;
  std::vector<real_t> scalars_;
  std::size_t live_scalars_ = 0; ///< scalars_ = live values + extra slots
};

/// Write reconstructed entries back into a distributed vector: `values` is
/// compact over the sorted global indices `lost` (the I_f of Alg. 2).
void write_lost_entries(DistVector& v, std::span<const index_t> lost,
                        std::span<const real_t> values);

} // namespace esrp
