// The redundancy queue of paper §3 and Fig. 1: a bounded FIFO of redundant
// search-direction copies. ESR uses two slots (the two latest directions);
// ESRP needs *three*, so that a failure striking after the first ASpMV of a
// storage stage — when the queue's newest entry has no adjacent partner yet —
// still finds the two consecutive directions of the previous stage.
//
// Pushes are idempotent by iteration tag: when the solver re-executes
// iterations after a rollback it re-pushes identical copies, which replace
// the stale entries in place.
#pragma once

#include <optional>
#include <vector>

#include "comm/exchange.hpp"
#include "common/types.hpp"

namespace esrp {

class RedundancyQueue {
public:
  /// `capacity` is 3 for ESRP (default); 2 reproduces the failure mode the
  /// paper's three-slot design avoids (see bench_ablation_queue).
  explicit RedundancyQueue(std::size_t capacity = 3);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Insert a finalized copy. If an entry with the same tag exists it is
  /// replaced; otherwise the copy is appended and the oldest entry beyond
  /// capacity is evicted. Tags of new entries must exceed all existing tags.
  void push(RedundantCopy copy);

  /// The copy tagged `tag`, or nullptr.
  const RedundantCopy* find(index_t tag) const;

  /// Newest tag t such that both t-1 and t are present (the reconstruction
  /// candidate pair); nullopt if no adjacent pair exists.
  std::optional<index_t> newest_adjacent_pair() const;

  /// Drop the entries held by the given (failed) ranks in all stored copies.
  void drop_holders(std::span<const rank_t> ranks);

  /// Fault injection: flip `bit` of the stored value of global entry
  /// `entry` in the newest copy, without refreshing its checksum seal (see
  /// RedundantCopy::corrupt). Returns the holder rank, or -1 if the queue
  /// is empty or no holder stores that entry.
  rank_t corrupt_newest(index_t entry, int bit);

  /// Tags currently in the queue, oldest first (diagnostics; matches the
  /// queue drawings of Fig. 1).
  std::vector<index_t> tags() const;

  void clear() { entries_.clear(); }

private:
  std::size_t capacity_;
  std::vector<RedundantCopy> entries_; // oldest first
};

} // namespace esrp
