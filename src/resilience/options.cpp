#include "resilience/options.hpp"

#include "common/error.hpp"

namespace esrp {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::none: return "none";
    case Strategy::esrp: return "esrp";
    case Strategy::imcr: return "imcr";
  }
  return "?";
}

Strategy strategy_from_string(std::string_view name) {
  if (name == "none") return Strategy::none;
  if (name == "esrp") return Strategy::esrp;
  if (name == "imcr") return Strategy::imcr;
  throw Error("unknown strategy \"" + std::string(name) +
              "\" (valid: none, esrp, imcr)");
}

std::string to_string(RecoveryRung r) {
  switch (r) {
    case RecoveryRung::none: return "none";
    case RecoveryRung::reconstruct: return "reconstruct";
    case RecoveryRung::older_snapshot: return "older-snapshot";
    case RecoveryRung::checkpoint: return "checkpoint";
    case RecoveryRung::shrink: return "shrink";
    case RecoveryRung::rejoin: return "rejoin";
    case RecoveryRung::scratch: return "scratch";
  }
  return "?";
}

RecoveryPolicy recovery_policy_from_string(std::string_view name) {
  RecoveryPolicy p;
  p.name = std::string(name);
  if (name == "ladder") return p;
  if (name == "exact") {
    p.try_older_snapshot = false;
    p.try_checkpoint = false;
    return p;
  }
  if (name == "checkpoint") {
    p.try_reconstruct = false;
    p.try_older_snapshot = false;
    return p;
  }
  if (name == "scratch") {
    p.try_reconstruct = false;
    p.try_older_snapshot = false;
    p.try_checkpoint = false;
    return p;
  }
  if (name == "shrink") {
    p.shrink_on_unrecoverable = true;
    p.rejoin = true;
    return p;
  }
  throw Error("unknown recovery policy \"" + std::string(name) +
              "\" (valid: ladder, exact, checkpoint, scratch, shrink)");
}

} // namespace esrp
