#include "resilience/options.hpp"

#include "common/error.hpp"

namespace esrp {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::none: return "none";
    case Strategy::esrp: return "esrp";
    case Strategy::imcr: return "imcr";
  }
  return "?";
}

Strategy strategy_from_string(std::string_view name) {
  if (name == "none") return Strategy::none;
  if (name == "esrp") return Strategy::esrp;
  if (name == "imcr") return Strategy::imcr;
  throw Error("unknown strategy \"" + std::string(name) +
              "\" (valid: none, esrp, imcr)");
}

} // namespace esrp
