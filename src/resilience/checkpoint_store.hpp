// In-memory buddy checkpoint store for IMCR (paper §3.1), generic over the
// solver's SolverState.
//
// Every T iterations each node sends a complete copy of its local dynamic
// data — its slice of every state vector plus the replicated scalars — to
// its phi buddy nodes (the same ring neighbors Eq. 1 designates for ASpMV
// redundancy) and keeps a local copy for its own rollback. Classic PCG
// checkpoints {x, r, z, p} + beta; pipelined PCG checkpoints its eight
// recurrence vectors + {gamma_prev, alpha_prev}; the store only sees vector
// and scalar counts.
//
// The simulation stores the checkpoint content once (owner layout) and
// separately tracks *which nodes hold it*: a failed node destroys its own
// local copy and every buddy copy it was hosting, and recovery must find a
// surviving buddy for each failed rank.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "netsim/failure.hpp"
#include "resilience/solver_state.hpp"

namespace esrp {

class CheckpointStore {
public:
  /// `phi` buddies per node, chosen by designated_destination (Eq. 1);
  /// `num_vectors` / `num_scalars` fix the shape of the SolverState every
  /// store()/restore() must present.
  CheckpointStore(const BlockRowPartition& part, int phi,
                  std::size_t num_vectors, std::size_t num_scalars);

  int phi() const { return phi_; }
  bool has_checkpoint() const { return tag_ >= 0; }
  index_t tag() const { return tag_; }

  /// Capture `state` as checkpoint `iteration`, seal it with an FNV-1a
  /// content checksum, and charge the buddy messages on `cluster`
  /// (category checkpoint): per node, phi messages of
  /// (num_vectors * local + num_scalars) scalars.
  void store(index_t iteration, const SolverState& state, SimCluster& cluster);

  /// Recompute the content checksum and compare against the seal taken at
  /// store(). True iff they match — a mismatch means the checkpoint bytes
  /// changed while at rest (silent corruption), so restore() must not
  /// consume it.
  bool verify() const;

  /// Fault injection: flip `bit` of entry `i` (global index into vector
  /// `vec`) of the stored checkpoint WITHOUT refreshing the seal — the
  /// corruption verify() must later detect. Returns the rank owning the
  /// corrupted slice. Requires a stored checkpoint.
  rank_t corrupt(std::size_t vec, index_t i, int bit);

  /// Buddy of `rank` that survives `failed`, preferring the k=1 buddy
  /// (deterministic); nullopt if all phi buddies failed (unrecoverable).
  std::optional<rank_t> surviving_buddy(rank_t rank,
                                        std::span<const rank_t> failed) const;

  /// Restore the checkpoint into `state`:
  ///  - survivors copy their local checkpoint slices (no communication);
  ///  - each failed rank fetches its slices + scalars from a surviving
  ///    buddy (category recovery). Returns false if some failed rank has no
  ///    surviving buddy (store left untouched, state unspecified).
  bool restore(std::span<const rank_t> failed, const SolverState& state,
               SimCluster& cluster) const;

private:
  std::uint64_t content_sum() const;

  const BlockRowPartition* part_;
  int phi_;
  std::size_t num_scalars_;
  index_t tag_ = -1;
  std::vector<DistVector> vecs_;
  std::vector<real_t> scalars_;
  std::uint64_t sum_ = 0; ///< FNV-1a seal taken at store()
};

} // namespace esrp
