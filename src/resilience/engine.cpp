#include "resilience/engine.hpp"

#include "common/error.hpp"

namespace esrp {

ResilienceEngine::ResilienceEngine(ResilienceOptions opts,
                                   const BlockRowPartition& part, Config cfg)
    : opts_(std::move(opts)), cfg_(cfg), queue_(opts_.queue_capacity) {
  ESRP_CHECK_MSG(opts_.interval >= 1, "checkpoint interval must be >= 1");
  ESRP_CHECK_MSG(opts_.spare_nodes || opts_.strategy == Strategy::esrp,
                 "no-spare recovery is only defined for ESR/ESRP (ref. [22])");
  ESRP_CHECK(cfg_.snapshot_slots >= 1);

  if (opts_.failure.enabled()) events_.push_back(opts_.failure);
  for (const FailureEvent& e : opts_.extra_failures) {
    ESRP_CHECK_MSG(e.enabled(), "extra failure event is not fully specified");
    events_.push_back(e);
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FailureEvent& e = events_[i];
    for (rank_t s : e.ranks) {
      ESRP_CHECK_MSG(s >= 0 && s < part.num_nodes(),
                     "failure rank " << s << " out of range");
    }
    ESRP_CHECK(e.ranks.size() < static_cast<std::size_t>(part.num_nodes()));
    for (std::size_t k = i + 1; k < events_.size(); ++k) {
      ESRP_CHECK_MSG(events_[k].iteration != e.iteration,
                     "failure events must have distinct iterations");
    }
  }
  event_done_.assign(events_.size(), false);

  if (opts_.strategy == Strategy::imcr) {
    ESRP_CHECK(cfg_.checkpoint_vectors >= 1);
    checkpoint_ = std::make_unique<CheckpointStore>(
        part, opts_.phi, cfg_.checkpoint_vectors, cfg_.checkpoint_scalars);
  }
}

void ResilienceEngine::begin_solve(SimCluster& cluster) {
  cluster_ = &cluster;
  queue_.clear();
  snapshots_.clear();
  last_recoverable_ = -1;
  event_done_.assign(events_.size(), false);
}

const FailureEvent* ResilienceEngine::pending_event(index_t j) {
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (!event_done_[e] && events_[e].iteration == j) {
      event_done_[e] = true;
      return &events_[e];
    }
  }
  return nullptr;
}

ResilienceEngine::StoragePlan ResilienceEngine::storage_plan(index_t j) const {
  StoragePlan plan;
  if (opts_.strategy != Strategy::esrp) return plan;
  const index_t T = opts_.interval;
  if (T == 1) {
    plan.second_store = true; // classic ESR: full storage every iteration
  } else if (j >= T && j % T == 0) {
    plan.first_store = true;
  } else if (j >= T + 1 && j % T == 1) {
    plan.second_store = true;
  }
  return plan;
}

void ResilienceEngine::save_snapshot(index_t tag, const SolverState& state) {
  ESRP_CHECK(cluster_ != nullptr);
  for (StateSnapshot& s : snapshots_) {
    if (s.tag() == tag) {
      s.recapture(tag, state); // rollback re-execution: replace in place
      return;
    }
  }
  if (snapshots_.size() >= cfg_.snapshot_slots) {
    StateSnapshot oldest = std::move(snapshots_.front());
    snapshots_.erase(snapshots_.begin());
    // Reuse the evicted slot's allocation when it still matches the live
    // layout (it does except right after a no-spare repartition).
    if (oldest.num_vectors() == state.vectors.size() &&
        oldest.num_vectors() > 0 &&
        &oldest.vec(0).partition() == &cluster_->partition()) {
      oldest.recapture(tag, state);
      snapshots_.push_back(std::move(oldest));
      return;
    }
  }
  snapshots_.emplace_back(tag, state, cluster_->partition(),
                          cfg_.snapshot_extra_scalars);
}

void ResilienceEngine::set_snapshot_scalar(index_t tag, std::size_t k,
                                           real_t v) {
  if (StateSnapshot* s = find_snapshot(tag)) s->set_scalar(k, v);
}

const StateSnapshot* ResilienceEngine::find_snapshot(index_t tag) const {
  for (const StateSnapshot& s : snapshots_)
    if (s.tag() == tag) return &s;
  return nullptr;
}

StateSnapshot* ResilienceEngine::find_snapshot(index_t tag) {
  for (StateSnapshot& s : snapshots_)
    if (s.tag() == tag) return &s;
  return nullptr;
}

bool ResilienceEngine::checkpoint_due(index_t j) const {
  return opts_.strategy == Strategy::imcr && checkpoint_ != nullptr && j > 0 &&
         j % opts_.interval == 0 && checkpoint_->tag() != j;
}

void ResilienceEngine::store_checkpoint(index_t j, const SolverState& state) {
  ESRP_CHECK(cluster_ != nullptr && checkpoint_ != nullptr);
  checkpoint_->store(j, state, *cluster_);
}

void ResilienceEngine::repartition_with_snapshots(
    std::span<const rank_t> failed, const Client& client) {
  ESRP_CHECK_MSG(client.repartition,
                 "no-spare recovery needs a repartition hook");
  // Extract the snapshots before the client replaces the partition objects
  // their DistVectors reference.
  std::vector<std::vector<Vector>> saved;
  saved.reserve(snapshots_.size());
  for (const StateSnapshot& s : snapshots_) saved.push_back(s.gather_all());
  client.repartition(failed);
  const BlockRowPartition& np = cluster_->partition();
  for (std::size_t i = 0; i < snapshots_.size(); ++i)
    snapshots_[i].rebuild(np, saved[i]);
}

index_t ResilienceEngine::recover(const FailureEvent& event, index_t j_fail,
                                  const Client& client,
                                  RecoveryRecord& record) {
  ESRP_CHECK(cluster_ != nullptr && client.state && client.restart);
  if (on_failure_) on_failure_(event);
  const std::span<const rank_t> failed = event.ranks;
  record.failed_at = j_fail;

  // Data loss: all dynamic data of the failed ranks disappears — the live
  // vectors and scratch, the star snapshots, and every redundant copy the
  // failed ranks were holding for other nodes. (The IMCR store models the
  // holder loss through the surviving-buddy check.)
  const SolverState st = client.state();
  for (DistVector* v : st.vectors) v->zero_ranks(failed);
  for (DistVector* v : st.scratch) v->zero_ranks(failed);
  for (StateSnapshot& s : snapshots_) s.zero_ranks(failed);
  queue_.drop_holders(failed);

  const double t0 = cluster_->modeled_time();
  bool recovered = false;
  index_t resume = 0;

  // With the default three-slot queue the copy pair for the target is
  // always present; a two-slot queue (ablation) can have evicted it, in
  // which case recovery falls through to the scratch restart below.
  const RedundantCopy* prev = nullptr;
  const RedundantCopy* cur = nullptr;
  const index_t off = cfg_.pairing == CopyPairing::leading ? 1 : 0;
  if (opts_.strategy == Strategy::esrp && last_recoverable_ >= 0) {
    prev = queue_.find(last_recoverable_ - 1 + off);
    cur = queue_.find(last_recoverable_ + off);
  }
  if (opts_.strategy == Strategy::esrp && prev && cur) {
    const index_t target = last_recoverable_;
    StateSnapshot* stars = find_snapshot(target);
    ESRP_CHECK_MSG(stars != nullptr,
                   "ESRP star snapshot missing for iteration " << target);
    ESRP_CHECK(client.reconstruct);
    if (client.reconstruct(*stars, *prev, *cur, failed, record)) {
      resume = target;
      recovered = true;
    }
  } else if (opts_.strategy == Strategy::imcr && checkpoint_ &&
             checkpoint_->has_checkpoint()) {
    if (checkpoint_->restore(failed, st, *cluster_)) {
      resume = checkpoint_->tag();
      recovered = true;
    }
  }

  if (recovered && !opts_.spare_nodes) {
    // No spare nodes (ref. [22]): surviving neighbors absorb the failed
    // ranks' ranges; the solve continues on the repartitioned cluster.
    repartition_with_snapshots(failed, client);
  }

  if (!recovered) {
    // No recoverable redundant state: restart the solve from the beginning
    // (the fate of an unprotected solver, paper §1). Without spares the
    // restart also runs on the shrunken ownership map.
    if (!opts_.spare_nodes) repartition_with_snapshots(failed, client);
    client.restart();
    queue_.clear();
    snapshots_.clear();
    last_recoverable_ = -1;
    resume = 0;
    record.restarted_from_scratch = true;
  }

  record.restored_to = resume;
  record.wasted_iterations = j_fail - resume;
  record.modeled_time = cluster_->modeled_time() - t0;
  if (on_recovery_) on_recovery_(record);
  return resume;
}

} // namespace esrp
