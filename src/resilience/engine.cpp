#include "resilience/engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

ResilienceEngine::ResilienceEngine(ResilienceOptions opts,
                                   const BlockRowPartition& part, Config cfg)
    : opts_(std::move(opts)), cfg_(cfg), queue_(opts_.queue_capacity) {
  ESRP_CHECK_MSG(opts_.interval >= 1, "checkpoint interval must be >= 1");
  ESRP_CHECK_MSG(opts_.spare_nodes || opts_.strategy == Strategy::esrp,
                 "no-spare recovery is only defined for ESR/ESRP (ref. [22])");
  ESRP_CHECK(cfg_.snapshot_slots >= 1);
  ESRP_CHECK_MSG(opts_.policy.max_attempts >= 1,
                 "recovery policy max_attempts must be >= 1");

  // One validation surface for every schedule shape (netsim/failure.cpp):
  // half-specified events, non-increasing iterations, duplicate or
  // out-of-range ranks all throw here. An event may fail all ranks — the
  // ladder resolves that to a deterministic scratch restart.
  events_ = merge_failure_schedule(opts_.failure, opts_.extra_failures,
                                   part.num_nodes());
  event_done_.assign(events_.size(), false);

  if (opts_.strategy == Strategy::imcr) {
    ESRP_CHECK(cfg_.checkpoint_vectors >= 1);
    checkpoint_ = std::make_unique<CheckpointStore>(
        part, opts_.phi, cfg_.checkpoint_vectors, cfg_.checkpoint_scalars);
  }
}

void ResilienceEngine::begin_solve(SimCluster& cluster) {
  cluster_ = &cluster;
  queue_.clear();
  snapshots_.clear();
  last_recoverable_ = -1;
  retry_count_ = 0;
  event_done_.assign(events_.size(), false);
}

const FailureEvent* ResilienceEngine::pending_event(index_t j) {
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (!event_done_[e] && events_[e].iteration == j) {
      event_done_[e] = true;
      return &events_[e];
    }
  }
  return nullptr;
}

ResilienceEngine::StoragePlan ResilienceEngine::storage_plan(index_t j) const {
  StoragePlan plan;
  if (opts_.strategy != Strategy::esrp) return plan;
  const index_t T = opts_.interval;
  if (T == 1) {
    plan.second_store = true; // classic ESR: full storage every iteration
  } else if (j >= T && j % T == 0) {
    plan.first_store = true;
  } else if (j >= T + 1 && j % T == 1) {
    plan.second_store = true;
  }
  return plan;
}

void ResilienceEngine::save_snapshot(index_t tag, const SolverState& state) {
  ESRP_CHECK(cluster_ != nullptr);
  for (StateSnapshot& s : snapshots_) {
    if (s.tag() == tag) {
      s.recapture(tag, state); // rollback re-execution: replace in place
      return;
    }
  }
  if (snapshots_.size() >= cfg_.snapshot_slots) {
    StateSnapshot oldest = std::move(snapshots_.front());
    snapshots_.erase(snapshots_.begin());
    // Reuse the evicted slot's allocation when it still matches the live
    // layout (it does except right after a no-spare repartition).
    if (oldest.num_vectors() == state.vectors.size() &&
        oldest.num_vectors() > 0 &&
        &oldest.vec(0).partition() == &cluster_->partition()) {
      oldest.recapture(tag, state);
      snapshots_.push_back(std::move(oldest));
      return;
    }
  }
  snapshots_.emplace_back(tag, state, cluster_->partition(),
                          cfg_.snapshot_extra_scalars);
}

void ResilienceEngine::set_snapshot_scalar(index_t tag, std::size_t k,
                                           real_t v) {
  if (StateSnapshot* s = find_snapshot(tag)) s->set_scalar(k, v);
}

const StateSnapshot* ResilienceEngine::find_snapshot(index_t tag) const {
  for (const StateSnapshot& s : snapshots_)
    if (s.tag() == tag) return &s;
  return nullptr;
}

StateSnapshot* ResilienceEngine::find_snapshot(index_t tag) {
  for (StateSnapshot& s : snapshots_)
    if (s.tag() == tag) return &s;
  return nullptr;
}

bool ResilienceEngine::checkpoint_due(index_t j) const {
  return opts_.strategy == Strategy::imcr && checkpoint_ != nullptr && j > 0 &&
         j % opts_.interval == 0 && checkpoint_->tag() != j;
}

void ResilienceEngine::store_checkpoint(index_t j, const SolverState& state) {
  ESRP_CHECK(cluster_ != nullptr && checkpoint_ != nullptr);
  // Storing a strictly newer checkpoint is recovery progress: it resets the
  // cascading-failure retry budget just like set_recoverable advancing the
  // ESRP tag does.
  if (j > checkpoint_->tag()) retry_count_ = 0;
  checkpoint_->store(j, state, *cluster_);
}

void ResilienceEngine::repartition_with_snapshots(
    std::span<const rank_t> failed, const Client& client,
    RecoveryRecord& record) {
  ESRP_CHECK_MSG(client.repartition,
                 "no-spare recovery needs a repartition hook");
  // Extract the snapshots before the client replaces the partition objects
  // their DistVectors reference.
  std::vector<std::vector<Vector>> saved;
  saved.reserve(snapshots_.size());
  for (const StateSnapshot& s : snapshots_) saved.push_back(s.gather_all());
  client.repartition(failed);
  const BlockRowPartition& np = cluster_->partition();
  for (std::size_t i = 0; i < snapshots_.size(); ++i)
    snapshots_[i].rebuild(np, saved[i]);
  // The IMCR store's slices (and its partition pointer) describe the old
  // ownership map; rebuild it empty on the new one.
  if (checkpoint_) {
    checkpoint_ = std::make_unique<CheckpointStore>(
        np, opts_.phi, cfg_.checkpoint_vectors, cfg_.checkpoint_scalars);
  }
  record.ranks_absorbed += static_cast<index_t>(failed.size());
  for (rank_t s : failed)
    if (!rank_in(retired_, s)) retired_.push_back(s);
  std::sort(retired_.begin(), retired_.end());
}

bool ResilienceEngine::try_reconstruct_at(index_t target, RecoveryRung rung,
                                          std::span<const rank_t> failed,
                                          const Client& client,
                                          RecoveryRecord& record,
                                          index_t& resume) {
  // With the default three-slot queue the copy pair for the target is
  // always present; a two-slot queue (ablation) can have evicted it, and
  // an older snapshot may have outlived its pair entirely.
  const index_t off = cfg_.pairing == CopyPairing::leading ? 1 : 0;
  const RedundantCopy* prev = queue_.find(target - 1 + off);
  const RedundantCopy* cur = queue_.find(target + off);
  if (!prev || !cur) return false;
  record.attempted.push_back(rung);
  StateSnapshot* stars = find_snapshot(target);
  // A missing star snapshot demotes to the next rung (historically a hard
  // abort; under the ladder it is just one more unusable input).
  if (stars == nullptr) return false;
  // Integrity gate: a copy whose surviving holders no longer match their
  // finalize()-time checksums has been silently corrupted at rest and must
  // not feed the reconstruction.
  const bool prev_ok = prev->verify(failed);
  const bool cur_ok = cur->verify(failed);
  record.copies_verified += static_cast<index_t>(prev_ok) +
                            static_cast<index_t>(cur_ok);
  record.copies_corrupt += static_cast<index_t>(!prev_ok) +
                           static_cast<index_t>(!cur_ok);
  if (!prev_ok || !cur_ok) return false;
  ESRP_CHECK(client.reconstruct);
  if (!client.reconstruct(*stars, *prev, *cur, failed, record)) return false;
  resume = target;
  record.rung = rung;
  return true;
}

index_t ResilienceEngine::recover(const FailureEvent& event, index_t j_fail,
                                  const Client& client,
                                  RecoveryRecord& record) {
  ESRP_CHECK(cluster_ != nullptr && client.state && client.restart);
  if (on_failure_) on_failure_(event);
  const std::span<const rank_t> failed = event.ranks;
  record.failed_at = j_fail;
  record.ranks_lost = static_cast<index_t>(failed.size());

  // Data loss: all dynamic data of the failed ranks disappears — the live
  // vectors and scratch, the star snapshots, and every redundant copy the
  // failed ranks were holding for other nodes. (The IMCR store models the
  // holder loss through the surviving-buddy check.)
  const SolverState st = client.state();
  for (DistVector* v : st.vectors) v->zero_ranks(failed);
  for (DistVector* v : st.scratch) v->zero_ranks(failed);
  for (StateSnapshot& s : snapshots_) s.zero_ranks(failed);
  queue_.drop_holders(failed);

  const double t0 = cluster_->modeled_time();
  const RecoveryPolicy& policy = opts_.policy;
  // Bounded retry for cascades: every recovery with no storage progress
  // since the last one (no recoverable tag advanced, no checkpoint stored)
  // burns one attempt; past the cap the ladder collapses to the scratch
  // rung instead of thrashing inside one recovery window.
  ++retry_count_;
  const bool exhausted = retry_count_ > policy.max_attempts;
  // With zero survivors no redundant state survives either (every copy
  // holder and checkpoint buddy died with the cluster): the exact rungs are
  // unreachable by construction, and the ladder drops straight to scratch.
  const bool any_survivor =
      !surviving_ranks(failed, cluster_->partition().num_nodes()).empty();
  bool recovered = false;
  index_t resume = 0;

  // Rung 1 — exact reconstruction at the newest recoverable iteration.
  if (!exhausted && !recovered && any_survivor && policy.try_reconstruct &&
      opts_.strategy == Strategy::esrp && last_recoverable_ >= 0) {
    recovered = try_reconstruct_at(last_recoverable_,
                                   RecoveryRung::reconstruct, failed, client,
                                   record, resume);
  }

  // Rung 2 — older stored snapshots, newest first: still bitwise-exact,
  // just further back. Each candidate needs its own intact copy pair.
  if (!exhausted && !recovered && any_survivor && policy.try_older_snapshot &&
      opts_.strategy == Strategy::esrp) {
    for (auto it = snapshots_.rbegin();
         it != snapshots_.rend() && !recovered; ++it) {
      if (it->tag() == last_recoverable_) continue; // rung 1 tried it
      recovered = try_reconstruct_at(it->tag(), RecoveryRung::older_snapshot,
                                     failed, client, record, resume);
    }
  }

  // Rung 3 — IMCR buddy-checkpoint restore, gated on the content checksum
  // taken at store time.
  if (!exhausted && !recovered && any_survivor && policy.try_checkpoint &&
      checkpoint_ && checkpoint_->has_checkpoint()) {
    record.attempted.push_back(RecoveryRung::checkpoint);
    if (!checkpoint_->verify()) {
      ++record.checkpoints_corrupt;
    } else if (checkpoint_->restore(failed, st, *cluster_)) {
      resume = checkpoint_->tag();
      recovered = true;
      record.rung = RecoveryRung::checkpoint;
    }
  }

  if (recovered && !opts_.spare_nodes) {
    // No spare nodes (ref. [22]): surviving neighbors absorb the failed
    // ranks' ranges; the solve continues on the repartitioned cluster.
    repartition_with_snapshots(failed, client, record);
  }

  if (!recovered) {
    // Rung 4 — repartition-shrink: no recoverable redundant state, but the
    // survivors can absorb the failed ranges and restart the solve on the
    // shrunken ownership map (repeatable across events). Needs survivors
    // and a client that can repartition.
    const bool shrink = !exhausted && policy.shrink_on_unrecoverable &&
                        client.repartition != nullptr && any_survivor;
    if (shrink) {
      repartition_with_snapshots(failed, client, record);
    } else if (!opts_.spare_nodes && any_survivor) {
      // Historical no-spare scratch path: the restart also runs on the
      // shrunken map. With no survivors at all the repartition is
      // impossible — the restart runs on the full cluster instead.
      repartition_with_snapshots(failed, client, record);
    }
    // Rung 5 — scratch restart, the deterministic floor of the ladder (the
    // fate of an unprotected solver, paper §1). Always reachable: an
    // all-ranks failure or an exhausted retry budget lands here.
    client.restart();
    queue_.clear();
    snapshots_.clear();
    last_recoverable_ = -1;
    resume = 0;
    record.restarted_from_scratch = true;
    record.rung = shrink ? RecoveryRung::shrink : RecoveryRung::scratch;
    record.attempted.push_back(record.rung);
    retry_count_ = 0; // a restart is progress: the cascade window is over
  }

  record.restored_to = resume;
  record.wasted_iterations = j_fail - resume;
  record.modeled_time = cluster_->modeled_time() - t0;
  if (on_recovery_) on_recovery_(record);
  return resume;
}

bool ResilienceEngine::try_rejoin(index_t j, const Client& client,
                                  RecoveryRecord& record) {
  if (!opts_.policy.rejoin || retired_.empty() || !client.rejoin ||
      j <= 0 || j % opts_.interval != 0) {
    return false;
  }
  ESRP_CHECK(cluster_ != nullptr);
  const double t0 = cluster_->modeled_time();
  client.rejoin();
  // The strategy state captured on the shrunken partition is stale; drop
  // it and let the following storage stages / checkpoints replenish it on
  // the re-expanded map.
  queue_.clear();
  snapshots_.clear();
  last_recoverable_ = -1;
  retry_count_ = 0;
  if (checkpoint_) {
    checkpoint_ = std::make_unique<CheckpointStore>(
        cluster_->partition(), opts_.phi, cfg_.checkpoint_vectors,
        cfg_.checkpoint_scalars);
  }
  record.failed_at = j;
  record.restored_to = j;
  record.wasted_iterations = 0;
  record.rung = RecoveryRung::rejoin;
  record.attempted.push_back(RecoveryRung::rejoin);
  record.ranks_rejoined = static_cast<index_t>(retired_.size());
  retired_.clear();
  record.modeled_time = cluster_->modeled_time() - t0;
  if (on_recovery_) on_recovery_(record);
  return true;
}

rank_t ResilienceEngine::corrupt_redundant_state(const SdcEvent& e) {
  if (e.target == "pcopy") return queue_.corrupt_newest(e.index, e.bit);
  if (e.target == "checkpoint") {
    if (!checkpoint_ || !checkpoint_->has_checkpoint()) return -1;
    return checkpoint_->corrupt(0, e.index, e.bit);
  }
  ESRP_CHECK_MSG(false, "SdcEvent target \"" << e.target
                        << "\" does not name redundant state "
                           "(expected \"pcopy\" or \"checkpoint\")");
  return -1;
}

} // namespace esrp
