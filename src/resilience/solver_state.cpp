#include "resilience/solver_state.hpp"

#include "common/error.hpp"

namespace esrp {

StateSnapshot::StateSnapshot(index_t tag, const SolverState& state,
                             const BlockRowPartition& part,
                             std::size_t extra_scalars)
    : tag_(tag), live_scalars_(state.scalars.size()) {
  vecs_.reserve(state.vectors.size());
  for (const DistVector* v : state.vectors) {
    ESRP_CHECK(v != nullptr && &v->partition() == &part);
    vecs_.emplace_back(part);
    vecs_.back().copy_from(*v);
  }
  scalars_.assign(live_scalars_ + extra_scalars, 0);
  for (std::size_t k = 0; k < live_scalars_; ++k)
    scalars_[k] = *state.scalars[k];
}

void StateSnapshot::recapture(index_t tag, const SolverState& state) {
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  ESRP_CHECK(state.scalars.size() == live_scalars_);
  tag_ = tag;
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    vecs_[k].copy_from(*state.vectors[k]);
  for (std::size_t k = 0; k < live_scalars_; ++k)
    scalars_[k] = *state.scalars[k];
  for (std::size_t k = live_scalars_; k < scalars_.size(); ++k) scalars_[k] = 0;
}

void StateSnapshot::restore_vectors(const SolverState& state) const {
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    state.vectors[k]->copy_from(vecs_[k]);
}

void StateSnapshot::zero_ranks(std::span<const rank_t> ranks) {
  for (DistVector& v : vecs_) v.zero_ranks(ranks);
}

std::vector<Vector> StateSnapshot::gather_all() const {
  std::vector<Vector> out;
  out.reserve(vecs_.size());
  for (const DistVector& v : vecs_) out.push_back(v.gather_global());
  return out;
}

void StateSnapshot::rebuild(const BlockRowPartition& part,
                            const std::vector<Vector>& data) {
  ESRP_CHECK(data.size() == vecs_.size());
  for (std::size_t k = 0; k < vecs_.size(); ++k) {
    vecs_[k] = DistVector(part, data[k]);
  }
}

void write_lost_entries(DistVector& v, std::span<const index_t> lost,
                        std::span<const real_t> values) {
  ESRP_CHECK(lost.size() == values.size());
  for (std::size_t k = 0; k < lost.size(); ++k) v.set(lost[k], values[k]);
}

} // namespace esrp
