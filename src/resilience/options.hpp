// Solver-agnostic resilience vocabulary: the strategy enum, the shared
// options block every resilient solver consumes, and the per-recovery
// record the engine hands back. Extracted from core/resilient_pcg.hpp so
// that the classic and the pipelined distributed solvers (and any future
// one) share one resilience surface instead of re-declaring subsets.
//
// Strategies (and where they live):
//   none — no protection. A failure without recoverable redundant state
//          restarts the solver from scratch (the fate of an unprotected
//          solver, paper §1).
//   esrp — exact state reconstruction with periodic storage (paper Alg. 2/3;
//          extended to the pipelined recurrences per reference [16],
//          Levonyak et al.). The ResilienceEngine (resilience/engine.hpp)
//          owns the redundancy queue, the storage-stage cadence and the
//          star-state snapshots; the recurrence-specific reconstruction math
//          lives with each solver (core/reconstruction.hpp for classic PCG,
//          pipelined/pipelined_esr.hpp for pipelined PCG).
//   imcr — in-memory buddy checkpoint-restart every T iterations
//          (resilience/checkpoint_store.hpp), generic over the solver's
//          SolverState.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/reconstruction.hpp" // PrecondFormulation
#include "netsim/failure.hpp"

namespace esrp {

enum class Strategy { none, esrp, imcr };

std::string to_string(Strategy s);

/// Inverse of to_string(Strategy): "none" | "esrp" | "imcr". Throws
/// esrp::Error on anything else, naming the valid spellings.
Strategy strategy_from_string(std::string_view name);

/// One rung of the recovery ladder. Ordered from most to least exact:
///   reconstruct    — ESRP exact reconstruction at the last recoverable
///                    storage stage (bitwise-exact resume).
///   older_snapshot — ESRP reconstruction at an older stored snapshot whose
///                    adjacent copy pair is still intact (bitwise-exact at
///                    that earlier iteration).
///   checkpoint     — IMCR buddy-checkpoint restore (bitwise-exact at the
///                    checkpoint tag).
///   shrink         — repartition onto the survivors and restart the
///                    iteration there (degraded-mode continuation, ref.
///                    [22] generalized; repeatable across events).
///   rejoin         — previously retired ranks rejoin at a storage stage
///                    and the solve re-expands onto the full cluster.
///   scratch        — restart from zero on the full cluster.
/// `none` is the record default before any recovery happened.
enum class RecoveryRung {
  none,
  reconstruct,
  older_snapshot,
  checkpoint,
  shrink,
  rejoin,
  scratch,
};

std::string to_string(RecoveryRung r);

/// Which rungs recover() may try, in ladder order. Presets (by name, for
/// the CLI/spec surface — see recovery_policy_from_string):
///   "ladder"     — reconstruct → older snapshot → checkpoint → scratch
///                  (the default; identical to historical behavior whenever
///                  the first applicable rung succeeds).
///   "exact"      — reconstruct-else-scratch, the paper's §5 protocol.
///   "checkpoint" — checkpoint-else-scratch (pure IMCR).
///   "scratch"    — always restart from zero (the unprotected baseline).
///   "shrink"     — full ladder plus repartition-shrink on unrecoverable
///                  events and rank rejoin at later storage stages.
struct RecoveryPolicy {
  std::string name = "ladder"; ///< preset spelling, echoed in reports
  bool try_reconstruct = true;
  bool try_older_snapshot = true;
  bool try_checkpoint = true;
  /// On an unrecoverable event, repartition onto the survivors and restart
  /// there instead of restarting on the full cluster. Requires a client
  /// with a repartition hook; repeatable across events.
  bool shrink_on_unrecoverable = false;
  /// Let retired ranks rejoin at a later storage stage (re-expanding the
  /// partition back onto the full cluster). Only meaningful with shrink.
  bool rejoin = false;
  /// Cap on recovery attempts resuming to the same target iteration before
  /// the engine forces a scratch restart. Bounds cascades where survivors
  /// keep failing inside the recovery window.
  int max_attempts = 3;
};

/// Resolve a policy preset by name ("ladder", "exact", "checkpoint",
/// "scratch", "shrink"). Throws esrp::Error on anything else, naming the
/// valid spellings.
RecoveryPolicy recovery_policy_from_string(std::string_view name);

struct ResilienceOptions {
  Strategy strategy = Strategy::none;
  index_t interval = 1;        ///< T, the checkpointing interval
  int phi = 1;                 ///< redundant copies / supported failures
  std::size_t queue_capacity = 3; ///< ESRP redundancy-queue slots
  real_t rtol = 1e-8;          ///< convergence: ||r||_2 / ||b||_2 < rtol
  index_t max_iterations = 200000; ///< cap on executed iteration bodies
  real_t inner_rtol = 1e-14;   ///< reconstruction inner-solve tolerance
  index_t inner_max_iterations = 0;
  index_t inner_block_size = 10;
  /// How the preconditioner enters Alg. 2 (paper reference [20]). The
  /// matrix formulation needs Preconditioner::matrix_form() and skips the
  /// P_{I_f,I_f} inner solve.
  PrecondFormulation precond_formulation = PrecondFormulation::inverse;
  /// With spare nodes (default, the paper's setting) the failed ranks act
  /// as their own replacements. Without spares (paper §4 / reference [22],
  /// ESRP only) the nearest surviving neighbors absorb the failed ranks'
  /// index ranges after the reconstruction and the solve continues on the
  /// repartitioned cluster; the retired ranks stay idle.
  bool spare_nodes = true;
  /// Periodically recompute r = b - A x explicitly every this many
  /// iterations (0 = never). Residual replacement (the paper's reference
  /// [27]) counters the drift between the recursive and the true residual
  /// that the Eq. 2 metric measures.
  index_t residual_replacement = 0;
  FailureEvent failure; ///< convenience single event (paper §5 protocol)
  /// Additional failure events. Each event fires once, at the first
  /// execution of its iteration; events must have pairwise distinct
  /// iterations. The paper injects exactly one event per run; multiple
  /// events exercise repeated recoveries (redundancy is replenished by the
  /// following storage stages / checkpoints).
  std::vector<FailureEvent> extra_failures;
  /// Silent-data-corruption events (scenario lab, generalizing the paper's
  /// Table 4 drift study): each flips one bit of one vector entry at the
  /// first execution of its iteration, after the SpMV phase — so a flip in
  /// p desynchronizes the x update from the r update and the corruption is
  /// observable as recursive-vs-true residual drift. Detection rides on
  /// residual replacement; with residual_replacement == 0 every injected
  /// event stays undetected (and is reported as such).
  std::vector<SdcEvent> sdc_events;
  /// Relative recursive-vs-recomputed residual-norm gap above which a
  /// residual-replacement step flags a corruption. Benign drift near
  /// convergence sits orders of magnitude below this default.
  real_t sdc_threshold = 1e-3;
  /// Which recovery rungs the engine may try, and how cascading events are
  /// bounded. Defaults to the "ladder" preset, which reproduces the
  /// historical reconstruct/checkpoint/scratch behavior bit for bit.
  RecoveryPolicy policy;
};

struct RecoveryRecord {
  index_t failed_at = -1;      ///< iteration of the failure event
  index_t restored_to = -1;    ///< iteration the solver resumed from
  index_t wasted_iterations = 0; ///< failed_at - restored_to
  double modeled_time = 0;     ///< modeled time of the recovery itself
  index_t inner_iterations_precond = 0;
  index_t inner_iterations_matrix = 0;
  bool restarted_from_scratch = false; ///< no recoverable state existed
  /// The ladder rung that actually recovered this event.
  RecoveryRung rung = RecoveryRung::none;
  /// Every rung the engine attempted for this event, in order; the last
  /// entry equals `rung`. Demoted rungs (corrupt or missing state) precede
  /// the one that succeeded.
  std::vector<RecoveryRung> attempted;
  /// Integrity verdicts over the redundant state consulted during this
  /// recovery: checksum-verified redundancy-queue copies, copies rejected
  /// as corrupt, and buddy checkpoints rejected as corrupt.
  index_t copies_verified = 0;
  index_t copies_corrupt = 0;
  index_t checkpoints_corrupt = 0;
  /// Cluster-shape bookkeeping: ranks lost to this event, ranks whose
  /// index ranges were absorbed by survivors (no-spare / shrink), and
  /// ranks re-admitted by a rejoin record.
  index_t ranks_lost = 0;
  index_t ranks_absorbed = 0;
  index_t ranks_rejoined = 0;
};

/// Outcome of one injected SdcEvent. Appended to the result at injection
/// time, so an event the residual checks never catch is still reported —
/// with `detected == false` — rather than silently dropped.
struct SdcRecord {
  SdcEvent event;
  rank_t rank = -1;        ///< owner of the corrupted entry at injection
  bool detected = false;
  index_t detected_at = -1; ///< iteration of the flagging residual check
  real_t discrepancy = 0;  ///< largest relative residual-norm gap observed
};

} // namespace esrp
