#include "resilience/checkpoint_store.hpp"

#include "comm/aspmv_plan.hpp"
#include "common/error.hpp"

namespace esrp {

CheckpointStore::CheckpointStore(const BlockRowPartition& part, int phi,
                                 std::size_t num_vectors,
                                 std::size_t num_scalars)
    : part_(&part), phi_(phi), num_scalars_(num_scalars) {
  ESRP_CHECK(phi >= 1 && phi < part.num_nodes());
  ESRP_CHECK(num_vectors >= 1);
  vecs_.reserve(num_vectors);
  for (std::size_t k = 0; k < num_vectors; ++k) vecs_.emplace_back(part);
  scalars_.assign(num_scalars, 0);
}

void CheckpointStore::store(index_t iteration, const SolverState& state,
                            SimCluster& cluster) {
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  ESRP_CHECK(state.scalars.size() == num_scalars_);
  tag_ = iteration;
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    vecs_[k].copy_from(*state.vectors[k]);
  for (std::size_t k = 0; k < num_scalars_; ++k)
    scalars_[k] = *state.scalars[k];

  const rank_t n_nodes = part_->num_nodes();
  for (rank_t s = 0; s < n_nodes; ++s) {
    const std::size_t bytes =
        (vecs_.size() * static_cast<std::size_t>(part_->local_size(s)) +
         num_scalars_) *
        CostParams::bytes_per_scalar;
    for (int k = 1; k <= phi_; ++k) {
      cluster.send(s, designated_destination(s, k, n_nodes), bytes,
                   CommCategory::checkpoint);
    }
  }
  cluster.complete_step();
}

std::optional<rank_t> CheckpointStore::surviving_buddy(
    rank_t rank, std::span<const rank_t> failed) const {
  for (int k = 1; k <= phi_; ++k) {
    const rank_t d = designated_destination(rank, k, part_->num_nodes());
    if (!rank_in(failed, d)) return d;
  }
  return std::nullopt;
}

bool CheckpointStore::restore(std::span<const rank_t> failed,
                              const SolverState& state,
                              SimCluster& cluster) const {
  ESRP_CHECK(has_checkpoint());
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  ESRP_CHECK(state.scalars.size() == num_scalars_);
  for (rank_t s : failed) {
    if (!surviving_buddy(s, failed)) return false;
  }

  // Survivors roll back from their local copies (no messages); replacements
  // fetch their slices from a surviving buddy.
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    state.vectors[k]->copy_from(vecs_[k]);
  for (std::size_t k = 0; k < num_scalars_; ++k)
    *state.scalars[k] = scalars_[k];
  for (rank_t s : failed) {
    const rank_t buddy = *surviving_buddy(s, failed);
    const std::size_t bytes =
        (vecs_.size() * static_cast<std::size_t>(part_->local_size(s)) +
         num_scalars_) *
        CostParams::bytes_per_scalar;
    cluster.send(buddy, s, bytes, CommCategory::recovery);
  }
  cluster.complete_step();
  return true;
}

} // namespace esrp
