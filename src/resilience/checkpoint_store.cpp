#include "resilience/checkpoint_store.hpp"

#include <cstring>

#include "comm/aspmv_plan.hpp"
#include "common/error.hpp"
#include "common/fnv.hpp"

namespace esrp {

CheckpointStore::CheckpointStore(const BlockRowPartition& part, int phi,
                                 std::size_t num_vectors,
                                 std::size_t num_scalars)
    : part_(&part), phi_(phi), num_scalars_(num_scalars) {
  ESRP_CHECK(phi >= 1 && phi < part.num_nodes());
  ESRP_CHECK(num_vectors >= 1);
  vecs_.reserve(num_vectors);
  for (std::size_t k = 0; k < num_vectors; ++k) vecs_.emplace_back(part);
  scalars_.assign(num_scalars, 0);
}

void CheckpointStore::store(index_t iteration, const SolverState& state,
                            SimCluster& cluster) {
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  ESRP_CHECK(state.scalars.size() == num_scalars_);
  tag_ = iteration;
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    vecs_[k].copy_from(*state.vectors[k]);
  for (std::size_t k = 0; k < num_scalars_; ++k)
    scalars_[k] = *state.scalars[k];
  sum_ = content_sum();

  const rank_t n_nodes = part_->num_nodes();
  for (rank_t s = 0; s < n_nodes; ++s) {
    const std::size_t bytes =
        (vecs_.size() * static_cast<std::size_t>(part_->local_size(s)) +
         num_scalars_) *
        CostParams::bytes_per_scalar;
    for (int k = 1; k <= phi_; ++k) {
      cluster.send(s, designated_destination(s, k, n_nodes), bytes,
                   CommCategory::checkpoint);
    }
  }
  cluster.complete_step();
}

std::uint64_t CheckpointStore::content_sum() const {
  std::uint64_t h = fnv1a(&tag_, sizeof(tag_));
  for (const DistVector& vec : vecs_) {
    for (rank_t s = 0; s < part_->num_nodes(); ++s) {
      const auto slice = vec.local(s);
      h = fnv1a(slice.data(), slice.size_bytes(), h);
    }
  }
  h = fnv1a(scalars_.data(), scalars_.size() * sizeof(real_t), h);
  return h;
}

bool CheckpointStore::verify() const {
  ESRP_CHECK(has_checkpoint());
  return content_sum() == sum_;
}

rank_t CheckpointStore::corrupt(std::size_t vec, index_t i, int bit) {
  ESRP_CHECK(has_checkpoint());
  ESRP_CHECK(vec < vecs_.size());
  ESRP_CHECK(i >= 0 && i < part_->global_size());
  ESRP_CHECK(bit >= 0 && bit < 64);
  const real_t v = vecs_[vec].at(i);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(real_t));
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= (std::uint64_t{1} << bit);
  real_t flipped;
  std::memcpy(&flipped, &bits, sizeof(bits));
  vecs_[vec].set(i, flipped);
  return part_->owner(i);
}

std::optional<rank_t> CheckpointStore::surviving_buddy(
    rank_t rank, std::span<const rank_t> failed) const {
  for (int k = 1; k <= phi_; ++k) {
    const rank_t d = designated_destination(rank, k, part_->num_nodes());
    if (!rank_in(failed, d)) return d;
  }
  return std::nullopt;
}

bool CheckpointStore::restore(std::span<const rank_t> failed,
                              const SolverState& state,
                              SimCluster& cluster) const {
  ESRP_CHECK(has_checkpoint());
  ESRP_CHECK(state.vectors.size() == vecs_.size());
  ESRP_CHECK(state.scalars.size() == num_scalars_);
  for (rank_t s : failed) {
    if (!surviving_buddy(s, failed)) return false;
  }

  // Survivors roll back from their local copies (no messages); replacements
  // fetch their slices from a surviving buddy.
  for (std::size_t k = 0; k < vecs_.size(); ++k)
    state.vectors[k]->copy_from(vecs_[k]);
  for (std::size_t k = 0; k < num_scalars_; ++k)
    *state.scalars[k] = scalars_[k];
  for (rank_t s : failed) {
    const rank_t buddy = *surviving_buddy(s, failed);
    const std::size_t bytes =
        (vecs_.size() * static_cast<std::size_t>(part_->local_size(s)) +
         num_scalars_) *
        CostParams::bytes_per_scalar;
    cluster.send(buddy, s, bytes, CommCategory::recovery);
  }
  cluster.complete_step();
  return true;
}

} // namespace esrp
