// The solver-agnostic resilience engine: everything a resilient distributed
// solver needs besides its own recurrences. The engine owns
//
//   - the failure schedule (ResilienceOptions::failure + extra_failures),
//     firing each event once at its iteration;
//   - the ESRP strategy state: the redundancy queue of search-direction
//     copies, the periodic storage-stage cadence (paper Alg. 3 lines 4-12)
//     and the star-state snapshots the survivors roll back to;
//   - the IMCR buddy checkpoint store;
//   - recovery orchestration: data loss, the policy-driven recovery ladder
//     (reconstruct → older snapshot → checkpoint → shrink → scratch, plus
//     the rejoin rung at storage stages) over checksum-verified redundant
//     state, the no-spare repartitioning path, bounded retry for cascading
//     events, and the RecoveryRecord + failure/recovery callback plumbing.
//
// A solver participates through the SolverState concept
// (resilience/solver_state.hpp) plus a small Client of hooks for the steps
// only it can perform: exposing its live state, reinitializing from
// scratch, rebuilding its plans on a repartitioned cluster, and — for ESRP
// — reconstructing the failed entries of a snapshot from two consecutive
// redundant copies (the recurrence-specific math of Alg. 2 for classic PCG,
// of reference [16] for pipelined PCG).
//
// The engine performs no floating-point work of its own and charges the
// SimCluster only through the checkpoint store and whatever the client
// hooks charge, so a solver rewired onto the engine keeps bitwise-identical
// trajectories and modeled-time accounting (pinned by
// tests/integration/fused_solver_parity_test).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "comm/exchange.hpp" // RedundantCopy
#include "netsim/cluster.hpp"
#include "netsim/failure.hpp"
#include "resilience/checkpoint_store.hpp"
#include "resilience/options.hpp"
#include "resilience/redundancy_queue.hpp"
#include "resilience/solver_state.hpp"

namespace esrp {

class ResilienceEngine {
public:
  /// Which redundant-copy tags the reconstruction of snapshot t consumes:
  ///   trailing — copies (t-1, t). Classic CG: the p-update p^(j) =
  ///              z^(j) + beta^(j-1) p^(j-1) yields z at the *newer* tag,
  ///              so the stars are saved at the second storage iteration.
  ///   leading  — copies (t, t+1). Pipelined CG (ref. [16]): the p-update
  ///              p^(j+1) = u^(j) + beta^(j) p^(j) yields u at the *older*
  ///              tag, so the stars are saved at the first storage
  ///              iteration and become recoverable one iteration later.
  enum class CopyPairing { trailing, leading };

  struct Config {
    /// Star-snapshot slots kept live. Classic needs 1; a leading pairing
    /// with T = 1 needs 2 (iteration j makes snapshot j-1 recoverable
    /// while snapshot j is already being captured).
    std::size_t snapshot_slots = 1;
    /// Extra per-snapshot scalar slots beyond the live SolverState scalars
    /// (values only the recovery math needs, amended after capture via
    /// set_snapshot_scalar — e.g. the pipelined beta^(t)).
    std::size_t snapshot_extra_scalars = 0;
    CopyPairing pairing = CopyPairing::trailing;
    /// Shape of the SolverState presented to store_checkpoint / restore.
    std::size_t checkpoint_vectors = 0;
    std::size_t checkpoint_scalars = 0;
  };

  /// The solver-provided hooks recover() orchestrates.
  struct Client {
    /// Live dynamic state (also the zeroing target of a failure).
    std::function<SolverState()> state;
    /// Reinitialize the live state to iteration 0 (scratch restart).
    std::function<void()> restart;
    /// No-spare / shrink recovery: absorb the failed ranks' index ranges
    /// into their surviving neighbors and rebuild every partition-dependent
    /// structure (plans, live vectors). May be null when the solver rejects
    /// no-spare; the shrink rung is skipped then.
    std::function<void(std::span<const rank_t>)> repartition;
    /// Rejoin rung: re-expand the ownership map back onto the original
    /// full cluster (the retired ranks came back), redistributing the live
    /// state. May be null when the solver cannot re-expand.
    std::function<void()> rejoin;
    /// ESRP: reconstruct the failed entries at snapshot `stars` from the
    /// two consecutive redundant copies, roll the live state back to the
    /// (repaired) snapshot, and fill the record's inner-iteration counts.
    /// Returns false if a redundant copy did not survive.
    std::function<bool(StateSnapshot& stars, const RedundantCopy& prev,
                       const RedundantCopy& cur,
                       std::span<const rank_t> failed, RecoveryRecord& record)>
        reconstruct;
  };

  struct StoragePlan {
    bool first_store = false;
    bool second_store = false;
    bool store() const { return first_store || second_store; }
  };

  /// Merges failure + extra_failures through validate_failure_schedule
  /// (ranks in range and distinct per event, strictly increasing
  /// iterations; an event may fail *all* ranks — the ladder resolves it to
  /// a scratch restart) and validates the interval/queue parameters;
  /// creates the IMCR store when the strategy asks for one. Throws
  /// esrp::Error on invalid options.
  ResilienceEngine(ResilienceOptions opts, const BlockRowPartition& part,
                   Config cfg);

  const ResilienceOptions& options() const { return opts_; }
  Strategy strategy() const { return opts_.strategy; }
  const std::vector<FailureEvent>& events() const { return events_; }

  /// Reset the per-solve state (queue, snapshots, event bookkeeping) and
  /// bind the cluster recoveries charge against. The IMCR checkpoint
  /// deliberately persists across solves, like the pre-engine solver.
  void begin_solve(SimCluster& cluster);

  // --- failure schedule --------------------------------------------------
  /// The first unfired event scheduled for iteration j, marked fired; null
  /// if none. At most one event fires per loop pass — a second event at
  /// the same re-executed iteration waits for the next pass.
  const FailureEvent* pending_event(index_t j);

  // --- ESRP storage stages -----------------------------------------------
  /// The storage-stage cadence of Alg. 3: for T = 1 every iteration is a
  /// (second) store; for T >= 2 iterations mT are first stores and mT+1
  /// second stores. Empty plan for non-ESRP strategies.
  StoragePlan storage_plan(index_t j) const;

  void push_copy(RedundantCopy copy) { queue_.push(std::move(copy)); }
  bool has_copy(index_t tag) const { return queue_.find(tag) != nullptr; }
  std::vector<index_t> queue_tags() const { return queue_.tags(); }

  /// Capture the star snapshot for iteration `tag` (evicting the oldest
  /// beyond Config::snapshot_slots; re-capturing an existing tag replaces
  /// it in place).
  void save_snapshot(index_t tag, const SolverState& state);
  bool has_snapshot(index_t tag) const { return find_snapshot(tag) != nullptr; }
  /// Amend an extra scalar slot of snapshot `tag` (no-op if the snapshot
  /// was already evicted).
  void set_snapshot_scalar(index_t tag, std::size_t k, real_t v);

  /// Declare iteration `tag` reconstructable: its snapshot and copy pair
  /// are in place. recover() rolls back to the newest declared tag.
  /// Advancing the tag is the engine's "progress" signal: it resets the
  /// bounded-retry counter of cascading recoveries.
  void set_recoverable(index_t tag) {
    if (tag > last_recoverable_) retry_count_ = 0;
    last_recoverable_ = tag;
  }
  index_t last_recoverable() const { return last_recoverable_; }

  // --- IMCR checkpoints --------------------------------------------------
  /// True when iteration j is a checkpoint iteration (j > 0, j % T == 0)
  /// that has not been captured yet — the tag check skips re-checkpointing
  /// identical state when the first iteration after a rollback is itself a
  /// checkpoint iteration.
  bool checkpoint_due(index_t j) const;
  void store_checkpoint(index_t j, const SolverState& state);

  // --- recovery ----------------------------------------------------------
  /// Run the full §4 protocol for one event at iteration j_fail as a
  /// policy-driven ladder: fire the failure callback, lose the failed
  /// ranks' dynamic data (live state, snapshots, redundant copies), then
  /// walk the rungs the RecoveryPolicy enables —
  ///   reconstruct → older snapshot → checkpoint → shrink → scratch —
  /// each gated on checksum-verified inputs (a corrupt copy or checkpoint
  /// demotes to the next rung and is counted in the record), with the
  /// no-spare repartitioning when configured. Re-entrant: a failure landing
  /// inside an earlier recovery's replay window simply recovers again; the
  /// bounded-retry counter (RecoveryPolicy::max_attempts recoveries with
  /// no storage progress) forces the scratch rung instead of thrashing.
  /// Returns the iteration to resume from; `record` is filled with the
  /// outcome (also appended via the recovery callback).
  index_t recover(const FailureEvent& event, index_t j_fail,
                  const Client& client, RecoveryRecord& record);

  /// Rejoin rung: when the policy allows it, retired ranks exist, the
  /// client can re-expand, and j is a storage-cadence iteration, rebuild
  /// onto the original full cluster and emit a rung=rejoin record (also
  /// via the recovery callback). The strategy state (queue, snapshots,
  /// checkpoint) is dropped — the following storage stages replenish it on
  /// the re-expanded partition. Call at the top of the storage phase.
  bool try_rejoin(index_t j, const Client& client, RecoveryRecord& record);

  /// Ranks currently retired by shrink / no-spare recoveries (empty ranges
  /// on the live partition), ascending.
  const std::vector<rank_t>& retired_ranks() const { return retired_; }

  /// Fault injection for the redundant-state SdcEvent targets: "pcopy"
  /// flips a bit of entry `e.index` in the newest redundancy-queue copy,
  /// "checkpoint" flips a bit of entry `e.index` of vector 0 of the stored
  /// buddy checkpoint — both without refreshing the checksum seal, so the
  /// corruption is detectable (and demoted) at recovery time. Returns the
  /// rank holding the corrupted bytes, or -1 when there is nothing to
  /// corrupt yet (no copy / no checkpoint / entry not redundantly held).
  rank_t corrupt_redundant_state(const SdcEvent& e);

  void set_failure_callback(std::function<void(const FailureEvent&)> cb) {
    on_failure_ = std::move(cb);
  }
  void set_recovery_callback(std::function<void(const RecoveryRecord&)> cb) {
    on_recovery_ = std::move(cb);
  }

private:
  const StateSnapshot* find_snapshot(index_t tag) const;
  StateSnapshot* find_snapshot(index_t tag);
  /// Gather the snapshots, run the client's repartition, rebuild the
  /// snapshots on the cluster's new partition, and retire the failed
  /// ranks. The IMCR store (if any) is rebuilt empty on the new partition:
  /// its stored slices describe the old ownership map.
  void repartition_with_snapshots(std::span<const rank_t> failed,
                                  const Client& client,
                                  RecoveryRecord& record);
  /// One reconstruct-shaped rung: require the adjacent copy pair and the
  /// star snapshot for `target`, checksum-verify both copies (corrupt ones
  /// demote), then run the client's reconstruction. On success sets
  /// `resume`/record.rung and returns true.
  bool try_reconstruct_at(index_t target, RecoveryRung rung,
                          std::span<const rank_t> failed,
                          const Client& client, RecoveryRecord& record,
                          index_t& resume);

  ResilienceOptions opts_;
  Config cfg_;
  SimCluster* cluster_ = nullptr; ///< bound by begin_solve
  RedundancyQueue queue_;
  std::vector<StateSnapshot> snapshots_; ///< oldest first
  index_t last_recoverable_ = -1;
  std::unique_ptr<CheckpointStore> checkpoint_;
  std::vector<FailureEvent> events_; ///< merged failure + extra_failures
  std::vector<bool> event_done_;
  std::vector<rank_t> retired_; ///< ranks idled by shrink/no-spare, ascending
  /// Recoveries since the last storage progress (set_recoverable advance,
  /// store_checkpoint, or scratch restart); > policy.max_attempts forces
  /// the scratch rung.
  int retry_count_ = 0;
  std::function<void(const FailureEvent&)> on_failure_;
  std::function<void(const RecoveryRecord&)> on_recovery_;
};

} // namespace esrp
