#include "netsim/cost_model.hpp"

#include <cmath>

namespace esrp {

double message_time(const CostParams& p, std::size_t bytes) {
  return p.alpha_s + static_cast<double>(bytes) * p.beta_s;
}

double allreduce_time(const CostParams& p, rank_t num_nodes, std::size_t bytes) {
  if (num_nodes <= 1) return 0;
  const double rounds = std::ceil(std::log2(static_cast<double>(num_nodes)));
  return 2.0 * rounds * (p.alpha_s + static_cast<double>(bytes) * p.beta_s);
}

double compute_time(const CostParams& p, double flops) {
  return flops * p.gamma_s;
}

} // namespace esrp
