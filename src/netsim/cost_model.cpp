#include "netsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esrp {

double message_time(const CostParams& p, std::size_t bytes) {
  return p.alpha_s + static_cast<double>(bytes) * p.beta_s;
}

double allreduce_time(const CostParams& p, rank_t num_nodes, std::size_t bytes) {
  if (num_nodes <= 1) return 0;
  const double rounds = std::ceil(std::log2(static_cast<double>(num_nodes)));
  return 2.0 * rounds * (p.alpha_s + static_cast<double>(bytes) * p.beta_s);
}

double compute_time(const CostParams& p, double flops) {
  return flops * p.gamma_s;
}

double HeterogeneousCostModel::at_or_one(const std::vector<double>& v,
                                         rank_t rank) {
  const auto i = static_cast<std::size_t>(rank);
  return i < v.size() ? v[i] : 1.0;
}

void HeterogeneousCostModel::set_gamma_multiplier(rank_t rank, double factor) {
  ESRP_CHECK(rank >= 0);
  ESRP_CHECK_MSG(factor > 0, "gamma multiplier must be positive");
  const auto i = static_cast<std::size_t>(rank);
  if (i >= gamma_mult_.size()) gamma_mult_.resize(i + 1, 1.0);
  gamma_mult_[i] = factor;
  hetero_ = true;
}

double HeterogeneousCostModel::gamma_multiplier(rank_t rank) const {
  return at_or_one(gamma_mult_, rank);
}

void HeterogeneousCostModel::set_link_multiplier(rank_t rank, double factor) {
  ESRP_CHECK(rank >= 0);
  ESRP_CHECK_MSG(factor > 0, "link multiplier must be positive");
  const auto i = static_cast<std::size_t>(rank);
  if (i >= link_mult_.size()) link_mult_.resize(i + 1, 1.0);
  link_mult_[i] = factor;
  max_link_mult_ = std::max(max_link_mult_, factor);
  hetero_ = true;
}

double HeterogeneousCostModel::link_multiplier(rank_t rank) const {
  return at_or_one(link_mult_, rank);
}

void HeterogeneousCostModel::set_link(rank_t from, rank_t to, double alpha_s,
                                      double beta_s) {
  ESRP_CHECK(from >= 0 && to >= 0 && from != to);
  ESRP_CHECK_MSG(alpha_s >= 0 && beta_s >= 0,
                 "link parameters must be non-negative");
  LinkOverride l;
  l.lo = std::min(from, to);
  l.hi = std::max(from, to);
  l.alpha_s = alpha_s;
  l.beta_s = beta_s;
  for (auto& e : links_) {
    if (e.lo == l.lo && e.hi == l.hi) {
      e = l;
      hetero_ = true;
      return;
    }
  }
  links_.push_back(l);
  hetero_ = true;
}

const HeterogeneousCostModel::LinkOverride*
HeterogeneousCostModel::find_link(rank_t from, rank_t to) const {
  const rank_t lo = std::min(from, to);
  const rank_t hi = std::max(from, to);
  for (const auto& e : links_)
    if (e.lo == lo && e.hi == hi) return &e;
  return nullptr;
}

double HeterogeneousCostModel::compute_time(rank_t rank, double flops) const {
  if (!hetero_) return esrp::compute_time(base_, flops);
  return flops * base_.gamma_s * at_or_one(gamma_mult_, rank);
}

double HeterogeneousCostModel::message_time(rank_t from, rank_t to,
                                            std::size_t bytes) const {
  if (!hetero_) return esrp::message_time(base_, bytes);
  if (const LinkOverride* l = find_link(from, to))
    return l->alpha_s + static_cast<double>(bytes) * l->beta_s;
  const double mult =
      std::max(at_or_one(link_mult_, from), at_or_one(link_mult_, to));
  return mult * esrp::message_time(base_, bytes);
}

double HeterogeneousCostModel::allreduce_time(rank_t num_nodes,
                                              std::size_t bytes) const {
  if (!hetero_) return esrp::allreduce_time(base_, num_nodes, bytes);
  if (num_nodes <= 1) return 0;
  // Worst effective link: the base link scaled by the largest per-rank
  // multiplier, or any absolute override, whichever is slower at this size.
  double worst = std::max(1.0, max_link_mult_) * esrp::message_time(base_, bytes);
  for (const auto& l : links_)
    worst = std::max(worst,
                     l.alpha_s + static_cast<double>(bytes) * l.beta_s);
  const double rounds = std::ceil(std::log2(static_cast<double>(num_nodes)));
  return 2.0 * rounds * worst;
}

} // namespace esrp
