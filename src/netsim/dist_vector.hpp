// A distributed vector: each simulated node owns the slice of entries given
// by the block-row partition. Algorithms may only touch a node's slice via
// `local()`; the global accessors exist for initialization, tests, and
// diagnostics (a real cluster could not call them).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "partition/partition.hpp"

namespace esrp {

class DistVector {
public:
  explicit DistVector(const BlockRowPartition& part);
  DistVector(const BlockRowPartition& part, std::span<const real_t> global);

  const BlockRowPartition& partition() const { return *part_; }
  index_t global_size() const { return part_->global_size(); }

  /// Node-local slice (mutable / const).
  std::span<real_t> local(rank_t rank);
  std::span<const real_t> local(rank_t rank) const;

  /// Zero the slices of the given ranks — the data loss of a node failure.
  void zero_ranks(std::span<const rank_t> ranks);

  /// Zero all entries.
  void zero_all();

  /// Assemble the full vector (diagnostic/test use only).
  Vector gather_global() const;

  /// Scatter a full vector into the local slices.
  void set_from_global(std::span<const real_t> global);

  /// Copy all slices from another DistVector on the same partition.
  void copy_from(const DistVector& other);

  /// Entry access by global index (diagnostic/test use only).
  real_t at(index_t i) const;
  void set(index_t i, real_t v);

private:
  const BlockRowPartition* part_;
  std::vector<Vector> local_;
};

} // namespace esrp
