#include "netsim/dist_vector.hpp"

#include "common/error.hpp"

namespace esrp {

DistVector::DistVector(const BlockRowPartition& part) : part_(&part) {
  local_.resize(static_cast<std::size_t>(part.num_nodes()));
  for (rank_t s = 0; s < part.num_nodes(); ++s)
    local_[static_cast<std::size_t>(s)].assign(
        static_cast<std::size_t>(part.local_size(s)), 0);
}

DistVector::DistVector(const BlockRowPartition& part,
                       std::span<const real_t> global)
    : DistVector(part) {
  set_from_global(global);
}

std::span<real_t> DistVector::local(rank_t rank) {
  ESRP_CHECK(rank >= 0 && rank < part_->num_nodes());
  return local_[static_cast<std::size_t>(rank)];
}

std::span<const real_t> DistVector::local(rank_t rank) const {
  ESRP_CHECK(rank >= 0 && rank < part_->num_nodes());
  return local_[static_cast<std::size_t>(rank)];
}

void DistVector::zero_ranks(std::span<const rank_t> ranks) {
  for (rank_t s : ranks) vec_zero(local(s));
}

void DistVector::zero_all() {
  for (auto& slice : local_) vec_zero(slice);
}

Vector DistVector::gather_global() const {
  Vector out(static_cast<std::size_t>(part_->global_size()));
  for (rank_t s = 0; s < part_->num_nodes(); ++s) {
    const auto slice = local(s);
    std::copy(slice.begin(), slice.end(),
              out.begin() + static_cast<std::ptrdiff_t>(part_->begin(s)));
  }
  return out;
}

void DistVector::set_from_global(std::span<const real_t> global) {
  ESRP_CHECK(static_cast<index_t>(global.size()) == part_->global_size());
  for (rank_t s = 0; s < part_->num_nodes(); ++s) {
    const auto begin = static_cast<std::size_t>(part_->begin(s));
    auto slice = local(s);
    std::copy(global.begin() + static_cast<std::ptrdiff_t>(begin),
              global.begin() + static_cast<std::ptrdiff_t>(begin + slice.size()),
              slice.begin());
  }
}

void DistVector::copy_from(const DistVector& other) {
  ESRP_CHECK(part_->global_size() == other.part_->global_size());
  ESRP_CHECK(part_->num_nodes() == other.part_->num_nodes());
  for (rank_t s = 0; s < part_->num_nodes(); ++s)
    vec_copy(other.local(s), local(s));
}

real_t DistVector::at(index_t i) const {
  const rank_t s = part_->owner(i);
  return local(s)[static_cast<std::size_t>(i - part_->begin(s))];
}

void DistVector::set(index_t i, real_t v) {
  const rank_t s = part_->owner(i);
  local(s)[static_cast<std::size_t>(i - part_->begin(s))] = v;
}

} // namespace esrp
