#include "netsim/failure.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

std::string to_string(FailureCause cause) {
  switch (cause) {
  case FailureCause::crash: return "crash";
  case FailureCause::sdc: return "sdc";
  }
  return "unknown";
}

std::vector<rank_t> contiguous_ranks(rank_t start, rank_t count,
                                     rank_t num_nodes) {
  ESRP_CHECK(num_nodes > 0);
  ESRP_CHECK_MSG(count >= 0 && count <= num_nodes,
                 "cannot fail " << count << " of " << num_nodes << " nodes");
  ESRP_CHECK(start >= 0 && start < num_nodes);
  std::vector<rank_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (rank_t k = 0; k < count; ++k)
    out.push_back(static_cast<rank_t>((start + k) % num_nodes));
  return out;
}

bool rank_in(std::span<const rank_t> ranks, rank_t rank) {
  return std::find(ranks.begin(), ranks.end(), rank) != ranks.end();
}

std::vector<rank_t> surviving_ranks(std::span<const rank_t> failed,
                                    rank_t num_nodes) {
  std::vector<rank_t> out;
  out.reserve(static_cast<std::size_t>(num_nodes) - failed.size());
  for (rank_t s = 0; s < num_nodes; ++s)
    if (!rank_in(failed, s)) out.push_back(s);
  return out;
}

} // namespace esrp
