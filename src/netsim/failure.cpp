#include "netsim/failure.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

std::string to_string(FailureCause cause) {
  switch (cause) {
  case FailureCause::crash: return "crash";
  case FailureCause::sdc: return "sdc";
  }
  return "unknown";
}

std::vector<rank_t> contiguous_ranks(rank_t start, rank_t count,
                                     rank_t num_nodes) {
  ESRP_CHECK(num_nodes > 0);
  ESRP_CHECK_MSG(count >= 0 && count <= num_nodes,
                 "cannot fail " << count << " of " << num_nodes << " nodes");
  ESRP_CHECK(start >= 0 && start < num_nodes);
  std::vector<rank_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (rank_t k = 0; k < count; ++k)
    out.push_back(static_cast<rank_t>((start + k) % num_nodes));
  return out;
}

bool rank_in(std::span<const rank_t> ranks, rank_t rank) {
  return std::find(ranks.begin(), ranks.end(), rank) != ranks.end();
}

std::vector<rank_t> surviving_ranks(std::span<const rank_t> failed,
                                    rank_t num_nodes) {
  std::vector<rank_t> out;
  out.reserve(static_cast<std::size_t>(num_nodes) - failed.size());
  for (rank_t s = 0; s < num_nodes; ++s)
    if (!rank_in(failed, s)) out.push_back(s);
  return out;
}

void validate_failure_schedule(std::span<const FailureEvent> schedule,
                               rank_t num_nodes) {
  ESRP_CHECK(num_nodes > 0);
  index_t prev = -1;
  for (std::size_t e = 0; e < schedule.size(); ++e) {
    const FailureEvent& ev = schedule[e];
    ESRP_CHECK_MSG(ev.enabled(),
                   "failure event " << e << " is not fully specified "
                   "(needs iteration >= 0 and at least one rank; got "
                   "iteration " << ev.iteration << ", " << ev.ranks.size()
                   << " ranks)");
    ESRP_CHECK_MSG(ev.iteration > prev,
                   "failure schedule must be strictly increasing by "
                   "iteration: event " << e << " at iteration "
                   << ev.iteration << " follows iteration " << prev);
    prev = ev.iteration;
    for (std::size_t k = 0; k < ev.ranks.size(); ++k) {
      const rank_t r = ev.ranks[k];
      ESRP_CHECK_MSG(r >= 0 && r < num_nodes,
                     "failure event " << e << " (iteration " << ev.iteration
                     << "): rank " << r << " outside [0, " << num_nodes
                     << ")");
      for (std::size_t j = k + 1; j < ev.ranks.size(); ++j)
        ESRP_CHECK_MSG(ev.ranks[j] != r,
                       "failure event " << e << " (iteration "
                       << ev.iteration << "): rank " << r
                       << " listed more than once");
    }
  }
}

std::vector<FailureEvent> merge_failure_schedule(
    const FailureEvent& primary, std::span<const FailureEvent> extra,
    rank_t num_nodes) {
  // A default-constructed event (iteration -1, no ranks) means "no event";
  // a half-specified one (iteration set XOR ranks set) is kept so the
  // validation below rejects it with a message instead of silently
  // dropping what the caller probably intended to fire.
  const auto disabled = [](const FailureEvent& e) {
    return e.iteration < 0 && e.ranks.empty();
  };
  std::vector<FailureEvent> merged;
  merged.reserve(extra.size() + 1);
  if (!disabled(primary)) merged.push_back(primary);
  for (const FailureEvent& e : extra)
    if (!disabled(e)) merged.push_back(e);
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.iteration < b.iteration;
                   });
  validate_failure_schedule(merged, num_nodes);
  return merged;
}

} // namespace esrp

