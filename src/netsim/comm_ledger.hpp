// Communication accounting. Every message in the simulated cluster is
// recorded here, categorized so benches can attribute overhead to its source
// (regular SpMV halo vs ASpMV augmentation vs checkpointing vs recovery).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace esrp {

enum class CommCategory : std::uint8_t {
  spmv_halo = 0,    ///< entries required by the regular SpMV
  aspmv_extra = 1,  ///< additional redundancy entries of the ASpMV
  checkpoint = 2,   ///< IMCR buddy checkpoint traffic
  recovery = 3,     ///< gathering data for replacement nodes after a failure
  allreduce = 4,    ///< dot products / norms
  other = 5,
};

constexpr std::size_t kNumCommCategories = 6;

std::string to_string(CommCategory c);

struct CategoryTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Cumulative per-category communication totals for a whole run.
class CommLedger {
public:
  void record(CommCategory cat, std::size_t bytes) {
    auto& t = totals_[static_cast<std::size_t>(cat)];
    ++t.messages;
    t.bytes += bytes;
  }

  const CategoryTotals& totals(CommCategory cat) const {
    return totals_[static_cast<std::size_t>(cat)];
  }

  std::uint64_t total_bytes() const {
    std::uint64_t b = 0;
    for (const auto& t : totals_) b += t.bytes;
    return b;
  }

  std::uint64_t total_messages() const {
    std::uint64_t m = 0;
    for (const auto& t : totals_) m += t.messages;
    return m;
  }

  void reset() { totals_.fill(CategoryTotals{}); }

private:
  std::array<CategoryTotals, kNumCommCategories> totals_{};
};

} // namespace esrp
