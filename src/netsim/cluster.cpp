#include "netsim/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

SimCluster::SimCluster(const BlockRowPartition& part, CostParams cost)
    : SimCluster(part, HeterogeneousCostModel(cost)) {}

SimCluster::SimCluster(const BlockRowPartition& part,
                       HeterogeneousCostModel cost)
    : part_(&part), cost_(std::move(cost)),
      step_(static_cast<std::size_t>(part.num_nodes())) {}

SimCluster::SimCluster(const SimCluster& other)
    : part_(other.part_),
      cost_(other.cost_),
      ledger_(other.ledger_),
      step_(other.step_),
      modeled_time_(other.modeled_time_),
      step_dirty_(other.step_dirty_.load(std::memory_order_relaxed)) {}

SimCluster& SimCluster::operator=(const SimCluster& other) {
  part_ = other.part_;
  cost_ = other.cost_;
  ledger_ = other.ledger_;
  step_ = other.step_;
  modeled_time_ = other.modeled_time_;
  step_dirty_.store(other.step_dirty_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return *this;
}

void SimCluster::set_partition(const BlockRowPartition& part) {
  ESRP_CHECK_MSG(!step_dirty_.load(std::memory_order_relaxed),
                 "cannot repartition mid-superstep");
  ESRP_CHECK_MSG(part.num_nodes() == part_->num_nodes(),
                 "repartitioning must keep the node count");
  ESRP_CHECK(part.global_size() == part_->global_size());
  part_ = &part;
}

void SimCluster::add_compute(rank_t rank, double flops) {
  ESRP_CHECK(rank >= 0 && rank < num_nodes());
  ESRP_CHECK(flops >= 0);
  step_[static_cast<std::size_t>(rank)].flops += flops;
  step_dirty_.store(true, std::memory_order_relaxed);
}

void SimCluster::send(rank_t from, rank_t to, std::size_t bytes,
                      CommCategory cat) {
  ESRP_CHECK(from >= 0 && from < num_nodes());
  ESRP_CHECK(to >= 0 && to < num_nodes());
  ESRP_CHECK_MSG(from != to, "node " << from << " attempted a self-send");
  const double t = cost_.message_time(from, to, bytes);
  step_[static_cast<std::size_t>(from)].send_time += t;
  step_[static_cast<std::size_t>(to)].recv_time += t;
  ledger_.record(cat, bytes);
  step_dirty_.store(true, std::memory_order_relaxed);
}

void SimCluster::complete_step() {
  if (!step_dirty_.load(std::memory_order_relaxed)) return;
  double max_t = 0;
  for (std::size_t rank = 0; rank < step_.size(); ++rank) {
    StepCounters& c = step_[rank];
    // A node's step time: its compute plus the larger of its send/recv
    // activity (sends and receives of distinct partners overlap on separate
    // links; a node's own NIC serializes whichever direction dominates).
    const double t = cost_.compute_time(static_cast<rank_t>(rank), c.flops) +
                     std::max(c.send_time, c.recv_time);
    max_t = std::max(max_t, t);
    c = StepCounters{};
  }
  modeled_time_ += max_t;
  step_dirty_.store(false, std::memory_order_relaxed);
}

void SimCluster::allreduce(std::size_t num_scalars, CommCategory cat) {
  complete_step();
  const std::size_t bytes = num_scalars * CostParams::bytes_per_scalar;
  modeled_time_ += cost_.allreduce_time(num_nodes(), bytes);
  // Ledger: count one logical collective as N-1 pairwise contributions worth
  // of payload so byte totals remain comparable across runs.
  ledger_.record(cat, bytes * static_cast<std::size_t>(
                          std::max<rank_t>(0, num_nodes() - 1)));
}

void SimCluster::allreduce_overlapped(std::size_t num_scalars,
                                      CommCategory cat) {
  const std::size_t bytes = num_scalars * CostParams::bytes_per_scalar;
  const double reduce_t = cost_.allreduce_time(num_nodes(), bytes);
  // Compute the step's slowest node without double-charging, then take the
  // max against the in-flight reduction.
  double max_t = 0;
  for (std::size_t rank = 0; rank < step_.size(); ++rank) {
    StepCounters& c = step_[rank];
    const double t = cost_.compute_time(static_cast<rank_t>(rank), c.flops) +
                     std::max(c.send_time, c.recv_time);
    max_t = std::max(max_t, t);
    c = StepCounters{};
  }
  modeled_time_ += std::max(max_t, reduce_t);
  step_dirty_.store(false, std::memory_order_relaxed);
  ledger_.record(cat, bytes * static_cast<std::size_t>(
                          std::max<rank_t>(0, num_nodes() - 1)));
}

void SimCluster::charge_time(double seconds) {
  ESRP_CHECK(seconds >= 0);
  complete_step();
  modeled_time_ += seconds;
}

void SimCluster::reset_accounting() {
  ESRP_CHECK_MSG(!step_dirty_.load(std::memory_order_relaxed),
                 "cannot reset mid-superstep");
  modeled_time_ = 0;
  ledger_.reset();
}

} // namespace esrp
