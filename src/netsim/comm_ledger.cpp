#include "netsim/comm_ledger.hpp"

namespace esrp {

std::string to_string(CommCategory c) {
  switch (c) {
    case CommCategory::spmv_halo: return "spmv_halo";
    case CommCategory::aspmv_extra: return "aspmv_extra";
    case CommCategory::checkpoint: return "checkpoint";
    case CommCategory::recovery: return "recovery";
    case CommCategory::allreduce: return "allreduce";
    case CommCategory::other: return "other";
  }
  return "?";
}

} // namespace esrp
