// The simulated cluster: N nodes executing in BSP-style supersteps.
//
// Algorithms report their activity through three calls:
//   add_compute(rank, flops)            — local floating-point work
//   send(from, to, bytes, category)     — one point-to-point message
//   complete_step()                     — barrier; advances modeled time by
//                                         the slowest node of this superstep
//   allreduce(num_scalars, category)    — synchronizing reduction (implies a
//                                         barrier, charges 2 log2 N rounds)
//
// Modeled time is the metric the benches report (DESIGN.md §3.1); wall time
// of the host process is measured separately by the experiment harness.
#pragma once

#include <atomic>
#include <vector>

#include "common/types.hpp"
#include "netsim/comm_ledger.hpp"
#include "netsim/cost_model.hpp"
#include "partition/partition.hpp"

namespace esrp {

class SimCluster {
public:
  SimCluster(const BlockRowPartition& part, CostParams cost = CostParams{});

  /// Heterogeneous cluster: per-rank/per-link charges come from the model
  /// (scenario lab cluster shapes). A homogeneous model charges bitwise
  /// identically to the CostParams constructor.
  SimCluster(const BlockRowPartition& part, HeterogeneousCostModel cost);

  // Copyable (tests snapshot the accounting state); hand-written because
  // the atomic dirty flag deletes the defaults. Never copy a cluster while
  // a parallel kernel is reporting into it.
  SimCluster(const SimCluster& other);
  SimCluster& operator=(const SimCluster& other);

  /// Rebind to a new partition with the same node count (no-spare-node
  /// recovery: ownership moves to surviving ranks, the cluster keeps its
  /// size). Requires an idle superstep.
  void set_partition(const BlockRowPartition& part);

  const BlockRowPartition& partition() const { return *part_; }
  rank_t num_nodes() const { return part_->num_nodes(); }
  /// Base (homogeneous) parameters — what the recovery code charges for
  /// replacement-subgroup collectives regardless of cluster shape.
  const CostParams& cost_params() const { return cost_.base(); }
  const HeterogeneousCostModel& cost_model() const { return cost_; }

  /// Record `flops` floating-point operations on `rank` in this superstep.
  /// Concurrency: safe to call from parallel kernels as long as no two
  /// concurrent calls share a rank (the per-node loops satisfy this — each
  /// task owns a disjoint rank range). All other members, send() included,
  /// must be called from one thread at a time.
  void add_compute(rank_t rank, double flops);

  /// Record a point-to-point message in this superstep. Self-sends are
  /// rejected: a node never messages itself in any of the algorithms.
  void send(rank_t from, rank_t to, std::size_t bytes, CommCategory cat);

  /// Barrier: charge max-over-nodes (compute + send + recv) time for the
  /// current superstep and reset the per-step counters.
  void complete_step();

  /// Synchronizing allreduce of `num_scalars` real_t values (dot products
  /// in PCG reduce one or two scalars). Completes the current step first.
  void allreduce(std::size_t num_scalars, CommCategory cat);

  /// Non-blocking allreduce overlapped with the work recorded in the
  /// current superstep (communication-hiding solvers, e.g. pipelined PCG):
  /// the step is charged max(slowest node, allreduce time) instead of their
  /// sum. Completes the superstep.
  void allreduce_overlapped(std::size_t num_scalars, CommCategory cat);

  /// Directly charge modeled time (used by the recovery code to account for
  /// inner-solve collectives that run on the replacement-node subgroup,
  /// which the per-node superstep counters do not capture). Completes the
  /// current superstep first.
  void charge_time(double seconds);

  /// Total modeled time so far [s].
  double modeled_time() const { return modeled_time_; }

  /// Cumulative per-category communication totals.
  const CommLedger& ledger() const { return ledger_; }

  /// Reset modeled time and ledger (per-step counters must be empty).
  void reset_accounting();

private:
  struct StepCounters {
    double flops = 0;
    double send_time = 0;
    double recv_time = 0;
  };

  const BlockRowPartition* part_;
  HeterogeneousCostModel cost_;
  CommLedger ledger_;
  // Rank-concurrency contract (not expressible as a mutex capability, so it
  // lives here instead of a GUARDED_BY annotation — docs/static_analysis.md):
  // step_[r] is written only by the task that owns rank r in the current
  // parallel region (the per-node loops partition ranks disjointly), and
  // read only after the region's join. Everything else on this class is
  // single-threaded by contract.
  std::vector<StepCounters> step_;
  double modeled_time_ = 0;
  // Atomic (relaxed) so concurrent add_compute calls on distinct ranks can
  // all mark the step dirty without a data race; the flops counters
  // themselves are distinct objects per rank. Never a double: accumulating
  // into a shared atomic float would trade determinism for contention
  // (esrp_lint's atomic-fp rule).
  std::atomic<bool> step_dirty_{false};
};

} // namespace esrp
