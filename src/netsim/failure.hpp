// Node-failure description and helpers. Failures follow the paper's
// experimental protocol: one failure event per run, hitting a contiguous
// block of ranks (a switch fault takes out a branch of the fat tree), with
// the failed ranks doubling as their own replacements after losing all
// dynamic data.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace esrp {

/// A single failure event: at the *start* of iteration `iteration` (before
/// any work of that iteration), the given ranks lose all dynamic data.
struct FailureEvent {
  index_t iteration = -1;       ///< -1 disables the event
  std::vector<rank_t> ranks;

  bool enabled() const { return iteration >= 0 && !ranks.empty(); }
};

/// Contiguous block of `count` ranks starting at `start`, wrapping modulo
/// `num_nodes` (paper §5: blocks starting at ranks 0 and 64).
std::vector<rank_t> contiguous_ranks(rank_t start, rank_t count,
                                     rank_t num_nodes);

/// True iff `rank` is in `ranks`.
bool rank_in(std::span<const rank_t> ranks, rank_t rank);

/// Sorted copy of the surviving ranks (complement of `failed`).
std::vector<rank_t> surviving_ranks(std::span<const rank_t> failed,
                                    rank_t num_nodes);

} // namespace esrp
