// Failure-event descriptions and helpers. A run carries a *schedule* of
// events (primary + extras, or a sampled stochastic schedule from the
// scenario registry); each event hits a contiguous block of ranks (a switch
// fault takes out a branch of the fat tree), with the failed ranks doubling
// as their own replacements after losing all dynamic data. Events are
// tagged with a cause so crash recoveries and detected silent data
// corruptions share one reporting surface.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esrp {

/// What produced a failure event: a node crash (the paper's fail-stop
/// model, triggering state reconstruction) or a silent data corruption
/// (a bit-flip caught — or missed — by residual replacement).
enum class FailureCause { crash, sdc };

std::string to_string(FailureCause cause);

/// A single failure event: at the *start* of iteration `iteration` (before
/// any work of that iteration), the given ranks lose all dynamic data.
struct FailureEvent {
  index_t iteration = -1;       ///< -1 disables the event
  std::vector<rank_t> ranks;
  FailureCause cause = FailureCause::crash;

  bool enabled() const { return iteration >= 0 && !ranks.empty(); }
};

/// A silent-data-corruption event: at the start of iteration `iteration`,
/// bit `bit` of global entry `index` of the named solver vector is flipped.
/// No rank loses data — the corruption travels with the arithmetic until
/// residual replacement (or convergence checking) notices it.
struct SdcEvent {
  index_t iteration = -1; ///< -1 disables the event
  std::string target = "p"; ///< corrupted vector: "p", "x", or "r"
  index_t index = 0;        ///< global entry index
  int bit = 51;             ///< bit to flip (0 = LSB of the mantissa)

  bool enabled() const { return iteration >= 0; }
};

/// Contiguous block of `count` ranks starting at `start`, wrapping modulo
/// `num_nodes` (paper §5: blocks starting at ranks 0 and 64).
std::vector<rank_t> contiguous_ranks(rank_t start, rank_t count,
                                     rank_t num_nodes);

/// True iff `rank` is in `ranks`.
bool rank_in(std::span<const rank_t> ranks, rank_t rank);

/// Sorted copy of the surviving ranks (complement of `failed`).
std::vector<rank_t> surviving_ranks(std::span<const rank_t> failed,
                                    rank_t num_nodes);

} // namespace esrp
