// Failure-event descriptions and helpers. A run carries a *schedule* of
// events (primary + extras, or a sampled stochastic schedule from the
// scenario registry); each event hits a contiguous block of ranks (a switch
// fault takes out a branch of the fat tree), with the failed ranks doubling
// as their own replacements after losing all dynamic data. Events are
// tagged with a cause so crash recoveries and detected silent data
// corruptions share one reporting surface.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esrp {

/// What produced a failure event: a node crash (the paper's fail-stop
/// model, triggering state reconstruction) or a silent data corruption
/// (a bit-flip caught — or missed — by residual replacement).
enum class FailureCause { crash, sdc };

std::string to_string(FailureCause cause);

/// A single failure event: at the *start* of iteration `iteration` (before
/// any work of that iteration), the given ranks lose all dynamic data.
struct FailureEvent {
  index_t iteration = -1;       ///< -1 disables the event
  std::vector<rank_t> ranks;
  FailureCause cause = FailureCause::crash;

  bool enabled() const { return iteration >= 0 && !ranks.empty(); }
};

/// A silent-data-corruption event: at the start of iteration `iteration`,
/// bit `bit` of global entry `index` of the named target is flipped.
/// No rank loses data — the corruption travels with the arithmetic (live
/// vectors) or lies dormant in redundant state (checkpoint / p-copy) until
/// residual replacement or a recovery-time checksum verification notices.
struct SdcEvent {
  index_t iteration = -1; ///< -1 disables the event
  /// Corruption target: a live solver vector ("p", "x", "r") or redundant
  /// recovery state — "checkpoint" flips a bit of the stored IMCR buddy
  /// checkpoint, "pcopy" flips a bit of the newest redundancy-queue copy.
  /// Redundant-state corruption is detected (if ever consumed) by the
  /// recovery ladder's checksum verification, not by residual replacement.
  std::string target = "p";
  index_t index = 0;        ///< global entry index
  int bit = 51;             ///< bit to flip (0 = LSB of the mantissa)

  bool enabled() const { return iteration >= 0; }
};

/// Contiguous block of `count` ranks starting at `start`, wrapping modulo
/// `num_nodes` (paper §5: blocks starting at ranks 0 and 64).
std::vector<rank_t> contiguous_ranks(rank_t start, rank_t count,
                                     rank_t num_nodes);

/// True iff `rank` is in `ranks`.
bool rank_in(std::span<const rank_t> ranks, rank_t rank);

/// Sorted copy of the surviving ranks (complement of `failed`).
std::vector<rank_t> surviving_ranks(std::span<const rank_t> failed,
                                    rank_t num_nodes);

/// Validate one failure schedule in one place (every consumer — the
/// resilience engine, validate_spec, the scenario samplers — routes
/// through here instead of re-checking its own subset). Throws esrp::Error
/// naming the offending event when:
///  - an event is half-specified (iteration >= 0 XOR non-empty ranks),
///  - iterations are not strictly increasing (duplicates included),
///  - a rank repeats within one event,
///  - a rank lies outside [0, num_nodes).
/// An event may fail *all* ranks — the recovery ladder resolves that to a
/// deterministic scratch restart, it is not a schedule error. Disabled
/// events (iteration < 0 with empty ranks) are rejected too: merge first,
/// then validate.
void validate_failure_schedule(std::span<const FailureEvent> schedule,
                               rank_t num_nodes);

/// Merge the convenience single event, the extra events, and any sampled
/// schedule into one list sorted by iteration, skipping disabled events,
/// then validate_failure_schedule the result.
std::vector<FailureEvent> merge_failure_schedule(
    const FailureEvent& primary, std::span<const FailureEvent> extra,
    rank_t num_nodes);

} // namespace esrp
