// Alpha-beta-gamma cost model for the simulated cluster.
//
// The paper measured wall-clock overheads on a 128-node fat-tree cluster; on
// a single host the communication/computation ratio that produces those
// overheads does not exist physically, so the simulator charges *modeled*
// time instead (DESIGN.md §3.1):
//
//   point-to-point message of b bytes:   alpha + b * beta
//   allreduce of b bytes over N nodes:   2 * ceil(log2 N) * (alpha + b*beta)
//   f floating-point operations:         f * gamma
//
// Defaults approximate a commodity InfiniBand cluster (2 us latency, 5 GB/s
// per-link bandwidth, 10 Gflop/s effective per-node rate for sparse kernels).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace esrp {

struct CostParams {
  double alpha_s = 2.0e-6;   ///< per-message latency [s]
  double beta_s = 2.0e-10;   ///< per-byte transfer time [s] (1 / bandwidth)
  double gamma_s = 1.0e-10;  ///< per-flop time [s] (1 / flop rate)

  static constexpr std::size_t bytes_per_scalar = sizeof(real_t);
};

/// Time for one point-to-point message carrying `bytes` payload bytes.
double message_time(const CostParams& p, std::size_t bytes);

/// Time for an allreduce of `bytes` over `num_nodes` (recursive doubling:
/// 2*ceil(log2 N) rounds; 0 for a single node).
double allreduce_time(const CostParams& p, rank_t num_nodes, std::size_t bytes);

/// Time for `flops` floating-point operations on one node.
double compute_time(const CostParams& p, double flops);

} // namespace esrp
