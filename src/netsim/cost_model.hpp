// Alpha-beta-gamma cost model for the simulated cluster.
//
// The paper measured wall-clock overheads on a 128-node fat-tree cluster; on
// a single host the communication/computation ratio that produces those
// overheads does not exist physically, so the simulator charges *modeled*
// time instead (DESIGN.md §3.1):
//
//   point-to-point message of b bytes:   alpha + b * beta
//   allreduce of b bytes over N nodes:   2 * ceil(log2 N) * (alpha + b*beta)
//   f floating-point operations:         f * gamma
//
// Defaults approximate a commodity InfiniBand cluster (2 us latency, 5 GB/s
// per-link bandwidth, 10 Gflop/s effective per-node rate for sparse kernels).
//
// `HeterogeneousCostModel` generalizes the uniform parameters to per-rank
// gamma multipliers (stragglers) and per-link alpha/beta overrides (slow
// links), so the scenario lab can express non-uniform clusters. A model
// with no overrides charges exactly the homogeneous formulas above.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace esrp {

struct CostParams {
  double alpha_s = 2.0e-6;   ///< per-message latency [s]
  double beta_s = 2.0e-10;   ///< per-byte transfer time [s] (1 / bandwidth)
  double gamma_s = 1.0e-10;  ///< per-flop time [s] (1 / flop rate)

  static constexpr std::size_t bytes_per_scalar = sizeof(real_t);
};

/// Time for one point-to-point message carrying `bytes` payload bytes.
double message_time(const CostParams& p, std::size_t bytes);

/// Time for an allreduce of `bytes` over `num_nodes` (recursive doubling:
/// 2*ceil(log2 N) rounds; 0 for a single node).
double allreduce_time(const CostParams& p, rank_t num_nodes, std::size_t bytes);

/// Time for `flops` floating-point operations on one node.
double compute_time(const CostParams& p, double flops);

/// Per-rank / per-link cost model for heterogeneous clusters.
///
/// Semantics:
///   - compute on rank i:      flops * gamma * gamma_multiplier(i)
///   - message i -> j:         absolute (alpha', beta') if the undirected
///                             link {i, j} carries an override, otherwise
///                             max(link_multiplier(i), link_multiplier(j))
///                             * (alpha + bytes * beta) — the slower
///                             endpoint's NIC is the bottleneck
///   - allreduce over N nodes: 2 * ceil(log2 N) rounds, each charged the
///                             worst effective link in the cluster (the
///                             recursive-doubling butterfly eventually
///                             crosses every slow link)
///
/// A default-constructed model (or one whose multipliers are all 1 with no
/// link overrides) delegates to the free functions above and is therefore
/// bitwise identical to the homogeneous accounting.
class HeterogeneousCostModel {
public:
  HeterogeneousCostModel() = default;
  explicit HeterogeneousCostModel(CostParams base) : base_(base) {}

  const CostParams& base() const { return base_; }
  bool homogeneous() const { return !hetero_; }

  /// Scale rank `rank`'s per-flop time by `factor` (> 1 = straggler).
  void set_gamma_multiplier(rank_t rank, double factor);
  double gamma_multiplier(rank_t rank) const;

  /// Scale alpha and beta of every message touching `rank` by `factor`.
  void set_link_multiplier(rank_t rank, double factor);
  double link_multiplier(rank_t rank) const;

  /// Absolute alpha/beta override for the undirected link {from, to}.
  /// Takes precedence over link multipliers; last call wins.
  void set_link(rank_t from, rank_t to, double alpha_s, double beta_s);

  double compute_time(rank_t rank, double flops) const;
  double message_time(rank_t from, rank_t to, std::size_t bytes) const;
  double allreduce_time(rank_t num_nodes, std::size_t bytes) const;

private:
  struct LinkOverride {
    rank_t lo = 0; ///< min(from, to)
    rank_t hi = 0; ///< max(from, to)
    double alpha_s = 0;
    double beta_s = 0;
  };

  const LinkOverride* find_link(rank_t from, rank_t to) const;
  static double at_or_one(const std::vector<double>& v, rank_t rank);

  CostParams base_;
  std::vector<double> gamma_mult_; ///< indexed by rank, missing = 1
  std::vector<double> link_mult_;  ///< indexed by rank, missing = 1
  std::vector<LinkOverride> links_;
  double max_link_mult_ = 1.0; ///< cached worst per-rank link multiplier
  bool hetero_ = false;
};

} // namespace esrp
