// Fused iteration kernels: single-sweep combinations of the BLAS-1
// primitives in common/vec.hpp. The solvers are memory-bandwidth-bound —
// every vec_* call streams its operands from DRAM and pays one thread-pool
// dispatch — so merging the per-iteration update/reduction sequences into
// one pass is the main on-node lever (the inter-node analogue is the
// pipelined formulation's merged allreduce).
//
// Determinism contract (docs/parallelism.md, "Kernel fusion"): every fused
// kernel is bitwise identical to the sequential composition of the unfused
// kernels it replaces, at every thread count.
//   * Multi-dot reductions reuse the fixed kReduceGrain chunking of
//     vec_dot with one independent accumulator per component, so each
//     component reproduces its separate vec_dot exactly.
//   * Fused elementwise updates perform, per index, the same reads and
//     writes in the same order as the unfused call sequence; indices are
//     independent, so any parallel_for chunking gives identical results.
// tests/common/fused_kernels_test.cpp pins both properties at 1/2/4
// threads.
#pragma once

#include <array>
#include <span>
#include <utility>

#include "common/types.hpp"
#include "common/vec.hpp"

namespace esrp {

/// Two dot products from one sweep: {<x1,y1>, <x2,y2>}. Each component is
/// bitwise identical to the corresponding vec_dot. Spans may alias freely
/// (reads only); all sizes must match.
std::pair<real_t, real_t> vec_dot2(std::span<const real_t> x1,
                                   std::span<const real_t> y1,
                                   std::span<const real_t> x2,
                                   std::span<const real_t> y2);

/// Three dot products from one sweep: {<x1,y1>, <x2,y2>, <x3,y3>} — the
/// pipelined iteration's gamma/delta/||r||^2 triple.
std::array<real_t, 3> vec_dot3(std::span<const real_t> x1,
                               std::span<const real_t> y1,
                               std::span<const real_t> x2,
                               std::span<const real_t> y2,
                               std::span<const real_t> x3,
                               std::span<const real_t> y3);

/// z := x - y. `z` may alias `x` or `y` (each index is read before it is
/// written); the residual kernel r = b - Ax uses z == y.
void vec_sub(std::span<const real_t> x, std::span<const real_t> y,
             std::span<real_t> z);

/// One-sweep pair of axpys: y1 += a1 * x1, then y2 += a2 * x2, per index —
/// the x/r update pair of CG. Identical to vec_axpy(y1, a1, x1) followed by
/// vec_axpy(y2, a2, x2) even when x2 aliases y1 (index k of y1 is updated
/// before x2[k] is read, matching the sequential order).
void fused_axpy2(std::span<real_t> y1, real_t a1, std::span<const real_t> x1,
                 std::span<real_t> y2, real_t a2, std::span<const real_t> x2);

/// The pipelined-PCG recurrence tail in one sweep (vs. eight):
///   z <- nv + beta z;  q <- m + beta q;  s <- w + beta s;  p <- u + beta p
///   x += alpha p;  r -= alpha s;  u -= alpha q;  w -= alpha z
/// Per index the statements run in exactly this order, which reproduces the
/// unfused call sequence bit-for-bit: s reads the pre-update w, p the
/// pre-update u, and x/r/u/w read the post-update p/s/q/z.
void fused_pipelined_update(std::span<real_t> z, std::span<const real_t> nv,
                            std::span<real_t> q, std::span<const real_t> m,
                            std::span<real_t> s, std::span<real_t> w,
                            std::span<real_t> p, std::span<real_t> u,
                            std::span<real_t> x, std::span<real_t> r,
                            real_t alpha, real_t beta);

} // namespace esrp
