#include "common/fused.hpp"

#include "common/error.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

// Multi-dot reductions mirror vec_dot exactly: fixed kReduceGrain chunks,
// one serial left-to-right accumulator per component within a chunk, and
// partials combined componentwise in index order. Each component therefore
// sees the same additions in the same order as its separate vec_dot — only
// the number of sweeps over memory changes.

std::pair<real_t, real_t> vec_dot2(std::span<const real_t> x1,
                                   std::span<const real_t> y1,
                                   std::span<const real_t> x2,
                                   std::span<const real_t> y2) {
  ESRP_CHECK(x1.size() == y1.size() && x2.size() == y2.size() &&
             x1.size() == x2.size());
  using Pair = std::pair<real_t, real_t>;
  return parallel_reduce(
      index_t{0}, static_cast<index_t>(x1.size()), kReduceGrain, Pair{0, 0},
      [&](index_t lo, index_t hi) {
        Pair acc{0, 0};
        for (index_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(i);
          acc.first += x1[k] * y1[k];
          acc.second += x2[k] * y2[k];
        }
        return acc;
      },
      [](Pair a, Pair b) {
        return Pair{a.first + b.first, a.second + b.second};
      });
}

std::array<real_t, 3> vec_dot3(std::span<const real_t> x1,
                               std::span<const real_t> y1,
                               std::span<const real_t> x2,
                               std::span<const real_t> y2,
                               std::span<const real_t> x3,
                               std::span<const real_t> y3) {
  ESRP_CHECK(x1.size() == y1.size() && x2.size() == y2.size() &&
             x3.size() == y3.size());
  ESRP_CHECK(x1.size() == x2.size() && x2.size() == x3.size());
  using Triple = std::array<real_t, 3>;
  return parallel_reduce(
      index_t{0}, static_cast<index_t>(x1.size()), kReduceGrain,
      Triple{0, 0, 0},
      [&](index_t lo, index_t hi) {
        Triple acc{0, 0, 0};
        for (index_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(i);
          acc[0] += x1[k] * y1[k];
          acc[1] += x2[k] * y2[k];
          acc[2] += x3[k] * y3[k];
        }
        return acc;
      },
      [](Triple a, Triple b) {
        return Triple{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
      });
}

void vec_sub(std::span<const real_t> x, std::span<const real_t> y,
             std::span<real_t> z) {
  ESRP_CHECK(x.size() == y.size() && y.size() == z.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto k = static_cast<std::size_t>(i);
                   z[k] = x[k] - y[k];
                 }
               });
}

void fused_axpy2(std::span<real_t> y1, real_t a1, std::span<const real_t> x1,
                 std::span<real_t> y2, real_t a2, std::span<const real_t> x2) {
  ESRP_CHECK(y1.size() == x1.size() && y2.size() == x2.size() &&
             y1.size() == y2.size());
  parallel_for(index_t{0}, static_cast<index_t>(y1.size()),
               elementwise_grain(static_cast<index_t>(y1.size())),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto k = static_cast<std::size_t>(i);
                   y1[k] += a1 * x1[k];
                   y2[k] += a2 * x2[k];
                 }
               });
}

void fused_pipelined_update(std::span<real_t> z, std::span<const real_t> nv,
                            std::span<real_t> q, std::span<const real_t> m,
                            std::span<real_t> s, std::span<real_t> w,
                            std::span<real_t> p, std::span<real_t> u,
                            std::span<real_t> x, std::span<real_t> r,
                            real_t alpha, real_t beta) {
  const std::size_t n = z.size();
  ESRP_CHECK(nv.size() == n && q.size() == n && m.size() == n &&
             s.size() == n && w.size() == n && p.size() == n &&
             u.size() == n && x.size() == n && r.size() == n);
  parallel_for(index_t{0}, static_cast<index_t>(n),
               elementwise_grain(static_cast<index_t>(n)),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto k = static_cast<std::size_t>(i);
                   z[k] = nv[k] + beta * z[k];
                   q[k] = m[k] + beta * q[k];
                   s[k] = w[k] + beta * s[k];
                   p[k] = u[k] + beta * p[k];
                   x[k] += alpha * p[k];
                   r[k] -= alpha * s[k];
                   u[k] -= alpha * q[k];
                   w[k] -= alpha * z[k];
                 }
               });
}

} // namespace esrp
