#include "common/fused.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

// Multi-dot reductions mirror vec_dot exactly: fixed kReduceGrain chunks and,
// within each chunk, one independent set of lane accumulators per component
// with the canonical lane order of common/simd.hpp (stride-4 main loop,
// lane_ordered_sum combine, serial tail). Each component therefore sees the
// same additions in the same order as its separate vec_dot — only the number
// of sweeps over memory changes.

std::pair<real_t, real_t> vec_dot2(std::span<const real_t> x1,
                                   std::span<const real_t> y1,
                                   std::span<const real_t> x2,
                                   std::span<const real_t> y2) {
  ESRP_CHECK(x1.size() == y1.size() && x2.size() == y2.size() &&
             x1.size() == x2.size());
  using Pair = std::pair<real_t, real_t>;
  return parallel_reduce(
      index_t{0}, static_cast<index_t>(x1.size()), kReduceGrain, Pair{0, 0},
      [&](index_t lo, index_t hi) {
        const real_t* x1p = x1.data();
        const real_t* y1p = y1.data();
        const real_t* x2p = x2.data();
        const real_t* y2p = y2.data();
        Vec4 a1 = Vec4::zero();
        Vec4 a2 = Vec4::zero();
        index_t i = lo;
        for (; i + kSimdLanes <= hi; i += kSimdLanes) {
          a1 = a1 + Vec4::load(x1p + i) * Vec4::load(y1p + i);
          a2 = a2 + Vec4::load(x2p + i) * Vec4::load(y2p + i);
        }
        Pair acc{lane_ordered_sum(a1), lane_ordered_sum(a2)};
        for (; i < hi; ++i) {
          acc.first += x1p[i] * y1p[i];
          acc.second += x2p[i] * y2p[i];
        }
        return acc;
      },
      [](Pair a, Pair b) {
        return Pair{a.first + b.first, a.second + b.second};
      });
}

std::array<real_t, 3> vec_dot3(std::span<const real_t> x1,
                               std::span<const real_t> y1,
                               std::span<const real_t> x2,
                               std::span<const real_t> y2,
                               std::span<const real_t> x3,
                               std::span<const real_t> y3) {
  ESRP_CHECK(x1.size() == y1.size() && x2.size() == y2.size() &&
             x3.size() == y3.size());
  ESRP_CHECK(x1.size() == x2.size() && x2.size() == x3.size());
  using Triple = std::array<real_t, 3>;
  return parallel_reduce(
      index_t{0}, static_cast<index_t>(x1.size()), kReduceGrain,
      Triple{0, 0, 0},
      [&](index_t lo, index_t hi) {
        const real_t* x1p = x1.data();
        const real_t* y1p = y1.data();
        const real_t* x2p = x2.data();
        const real_t* y2p = y2.data();
        const real_t* x3p = x3.data();
        const real_t* y3p = y3.data();
        Vec4 a1 = Vec4::zero();
        Vec4 a2 = Vec4::zero();
        Vec4 a3 = Vec4::zero();
        index_t i = lo;
        for (; i + kSimdLanes <= hi; i += kSimdLanes) {
          a1 = a1 + Vec4::load(x1p + i) * Vec4::load(y1p + i);
          a2 = a2 + Vec4::load(x2p + i) * Vec4::load(y2p + i);
          a3 = a3 + Vec4::load(x3p + i) * Vec4::load(y3p + i);
        }
        Triple acc{lane_ordered_sum(a1), lane_ordered_sum(a2),
                   lane_ordered_sum(a3)};
        for (; i < hi; ++i) {
          acc[0] += x1p[i] * y1p[i];
          acc[1] += x2p[i] * y2p[i];
          acc[2] += x3p[i] * y3p[i];
        }
        return acc;
      },
      [](Triple a, Triple b) {
        return Triple{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
      });
}

// Elementwise fused kernels vectorize statement-wise in stripes of
// kSimdLanes indices: each statement is applied (and its result stored) for
// the whole stripe before the next statement runs. Per index this performs
// the same reads and writes in the same order as the scalar loop, for the
// aliasing patterns the contracts allow (operands identical or disjoint —
// never partially overlapping), so results stay bitwise identical.

void vec_sub(std::span<const real_t> x, std::span<const real_t> y,
             std::span<real_t> z) {
  ESRP_CHECK(x.size() == y.size() && y.size() == z.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 const real_t* xp = x.data();
                 const real_t* yp = y.data();
                 real_t* zp = z.data();
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes)
                   (Vec4::load(xp + i) - Vec4::load(yp + i)).store(zp + i);
                 for (; i < hi; ++i) zp[i] = xp[i] - yp[i];
               });
}

void fused_axpy2(std::span<real_t> y1, real_t a1, std::span<const real_t> x1,
                 std::span<real_t> y2, real_t a2, std::span<const real_t> x2) {
  ESRP_CHECK(y1.size() == x1.size() && y2.size() == x2.size() &&
             y1.size() == y2.size());
  parallel_for(index_t{0}, static_cast<index_t>(y1.size()),
               elementwise_grain(static_cast<index_t>(y1.size())),
               [&](index_t lo, index_t hi) {
                 real_t* y1p = y1.data();
                 const real_t* x1p = x1.data();
                 real_t* y2p = y2.data();
                 const real_t* x2p = x2.data();
                 const Vec4 va1 = Vec4::broadcast(a1);
                 const Vec4 va2 = Vec4::broadcast(a2);
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes) {
                   // The y1 stripe is stored before the x2 stripe loads, so
                   // x2 == y1 reads the updated values as in the scalar loop.
                   (Vec4::load(y1p + i) + va1 * Vec4::load(x1p + i))
                       .store(y1p + i);
                   (Vec4::load(y2p + i) + va2 * Vec4::load(x2p + i))
                       .store(y2p + i);
                 }
                 for (; i < hi; ++i) {
                   y1p[i] += a1 * x1p[i];
                   y2p[i] += a2 * x2p[i];
                 }
               });
}

void fused_pipelined_update(std::span<real_t> z, std::span<const real_t> nv,
                            std::span<real_t> q, std::span<const real_t> m,
                            std::span<real_t> s, std::span<real_t> w,
                            std::span<real_t> p, std::span<real_t> u,
                            std::span<real_t> x, std::span<real_t> r,
                            real_t alpha, real_t beta) {
  const std::size_t n = z.size();
  ESRP_CHECK(nv.size() == n && q.size() == n && m.size() == n &&
             s.size() == n && w.size() == n && p.size() == n &&
             u.size() == n && x.size() == n && r.size() == n);
  parallel_for(
      index_t{0}, static_cast<index_t>(n),
      elementwise_grain(static_cast<index_t>(n)), [&](index_t lo, index_t hi) {
        real_t* zp = z.data();
        const real_t* nvp = nv.data();
        real_t* qp = q.data();
        const real_t* mp = m.data();
        real_t* sp = s.data();
        real_t* wp = w.data();
        real_t* pp = p.data();
        real_t* up = u.data();
        real_t* xp = x.data();
        real_t* rp = r.data();
        const Vec4 va = Vec4::broadcast(alpha);
        const Vec4 vb = Vec4::broadcast(beta);
        index_t i = lo;
        for (; i + kSimdLanes <= hi; i += kSimdLanes) {
          // Statement order matches the scalar loop: s reads the pre-update
          // w and p the pre-update u (loaded before w/u are stored), x/r/u/w
          // read the just-stored post-update p/s/q/z.
          const Vec4 zv = Vec4::load(nvp + i) + vb * Vec4::load(zp + i);
          zv.store(zp + i);
          const Vec4 qv = Vec4::load(mp + i) + vb * Vec4::load(qp + i);
          qv.store(qp + i);
          const Vec4 sv = Vec4::load(wp + i) + vb * Vec4::load(sp + i);
          sv.store(sp + i);
          const Vec4 pv = Vec4::load(up + i) + vb * Vec4::load(pp + i);
          pv.store(pp + i);
          (Vec4::load(xp + i) + va * pv).store(xp + i);
          (Vec4::load(rp + i) - va * sv).store(rp + i);
          (Vec4::load(up + i) - va * qv).store(up + i);
          (Vec4::load(wp + i) - va * zv).store(wp + i);
        }
        for (; i < hi; ++i) {
          zp[i] = nvp[i] + beta * zp[i];
          qp[i] = mp[i] + beta * qp[i];
          sp[i] = wp[i] + beta * sp[i];
          pp[i] = up[i] + beta * pp[i];
          xp[i] += alpha * pp[i];
          rp[i] -= alpha * sp[i];
          up[i] -= alpha * qp[i];
          wp[i] -= alpha * zp[i];
        }
      });
}

} // namespace esrp
