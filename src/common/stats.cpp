#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esrp {

namespace {
std::vector<real_t> sorted_copy(std::span<const real_t> xs) {
  std::vector<real_t> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}
} // namespace

real_t median(std::span<const real_t> xs) {
  ESRP_CHECK(!xs.empty());
  const std::vector<real_t> v = sorted_copy(xs);
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return (v[n / 2 - 1] + v[n / 2]) / 2;
}

real_t mean(std::span<const real_t> xs) {
  ESRP_CHECK(!xs.empty());
  real_t acc = 0;
  for (real_t x : xs) acc += x;
  return acc / static_cast<real_t>(xs.size());
}

real_t stddev(std::span<const real_t> xs) {
  if (xs.size() < 2) return 0;
  const real_t m = mean(xs);
  real_t acc = 0;
  for (real_t x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<real_t>(xs.size() - 1));
}

real_t min_of(std::span<const real_t> xs) {
  ESRP_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

real_t max_of(std::span<const real_t> xs) {
  ESRP_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

real_t percentile(std::span<const real_t> xs, real_t q) {
  ESRP_CHECK(!xs.empty());
  ESRP_CHECK(q >= 0 && q <= 100);
  const std::vector<real_t> v = sorted_copy(xs);
  if (v.size() == 1) return v[0];
  const real_t pos = q / 100 * static_cast<real_t>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const real_t frac = pos - static_cast<real_t>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

Summary summarize(std::span<const real_t> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.med = median(xs);
  s.avg = mean(xs);
  s.sd = stddev(xs);
  s.lo = min_of(xs);
  s.hi = max_of(xs);
  return s;
}

} // namespace esrp
