// Small descriptive-statistics helpers used by the experiment harness: the
// paper reports medians of at least five repetitions per setting.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace esrp {

/// Median of the sample (averages the two central elements for even sizes).
/// The input is copied; the caller's order is preserved.
real_t median(std::span<const real_t> xs);

real_t mean(std::span<const real_t> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
real_t stddev(std::span<const real_t> xs);

real_t min_of(std::span<const real_t> xs);
real_t max_of(std::span<const real_t> xs);

/// Linear-interpolation percentile, q in [0, 100].
real_t percentile(std::span<const real_t> xs, real_t q);

/// Summary of a sample, convenient for table printers.
struct Summary {
  real_t med = 0;
  real_t avg = 0;
  real_t sd = 0;
  real_t lo = 0;
  real_t hi = 0;
  std::size_t n = 0;
};

Summary summarize(std::span<const real_t> xs);

} // namespace esrp
