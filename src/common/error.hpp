// Error handling: a library-specific exception plus checked assertions that
// stay active in release builds (the invariants they guard are cheap relative
// to the numeric kernels).
#pragma once

#include <stdexcept>
#include <string>
#include <sstream>

namespace esrp {

/// Exception thrown on any violated precondition or invariant inside the
/// library. Carries the failing expression and source location in `what()`.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "ESRP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

} // namespace detail
} // namespace esrp

/// Precondition/invariant check that remains active in release builds.
#define ESRP_CHECK(expr)                                                        \
  do {                                                                          \
    if (!(expr)) ::esrp::detail::raise_check_failure(#expr, __FILE__, __LINE__, \
                                                     std::string{});            \
  } while (false)

/// Like ESRP_CHECK but with a streamed message:
///   ESRP_CHECK_MSG(n > 0, "matrix dimension must be positive, got " << n);
#define ESRP_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream esrp_check_os_;                                   \
      esrp_check_os_ << stream_expr;                                       \
      ::esrp::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                          esrp_check_os_.str());           \
    }                                                                      \
  } while (false)
