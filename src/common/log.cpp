#include "common/log.hpp"

#include <atomic>

namespace esrp {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::info};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
} // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel lvl) {
  g_threshold.store(lvl, std::memory_order_relaxed);
}

void log_message(LogLevel lvl, const std::string& msg) {
  if (lvl < log_threshold()) return;
  std::ostream& os = (lvl >= LogLevel::warn) ? std::cerr : std::clog;
  os << "[esrp " << level_name(lvl) << "] " << msg << '\n';
}

} // namespace esrp
