// Wall-clock timer for the benches. Modeled (simulated) time is handled
// separately by netsim/cost_model.hpp; this class only measures real elapsed
// time of the host process.
#pragma once

#include <chrono>

namespace esrp {

class WallTimer {
public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace esrp
