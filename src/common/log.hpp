// Minimal leveled logger. Examples and benches use it for progress output;
// the library itself only logs at `debug` so that solver hot loops stay
// silent by default.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace esrp {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel lvl);

void log_message(LogLevel lvl, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel lvl, Args&&... args) {
  if (lvl < log_threshold()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_message(lvl, os.str());
}
} // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::error, std::forward<Args>(args)...);
}

} // namespace esrp
