// Dense BLAS-1 style vector kernels over std::span. These are the only
// floating-point primitives the solvers use, so the flop counts reported to
// the cost model (see netsim/cost_model.hpp) can be derived directly from
// calls into this header.
#pragma once

#include <span>
#include <vector>
#include <cmath>

#include "common/types.hpp"
#include "common/error.hpp"

namespace esrp {

/// Owning dense vector alias; all kernels take spans so callers may pass
/// sub-blocks (node-local slices) without copying.
using Vector = std::vector<real_t>;

/// y := x (sizes must match).
void vec_copy(std::span<const real_t> x, std::span<real_t> y);

/// x := 0.
void vec_zero(std::span<real_t> x);

/// x := alpha * x.
void vec_scale(std::span<real_t> x, real_t alpha);

/// y := y + alpha * x.
void vec_axpy(std::span<real_t> y, real_t alpha, std::span<const real_t> x);

/// y := x + beta * y  (the p-update of CG: p <- z + beta p).
void vec_xpby(std::span<real_t> y, std::span<const real_t> x, real_t beta);

/// Pointwise product: z := x .* y.
void vec_pointwise_mul(std::span<const real_t> x, std::span<const real_t> y,
                       std::span<real_t> z);

/// Dot product <x, y>.
real_t vec_dot(std::span<const real_t> x, std::span<const real_t> y);

/// Euclidean norm ||x||_2.
real_t vec_norm2(std::span<const real_t> x);

/// Max norm ||x||_inf.
real_t vec_norm_inf(std::span<const real_t> x);

/// ||x - y||_2; sizes must match.
real_t vec_dist2(std::span<const real_t> x, std::span<const real_t> y);

/// ||x - y||_inf / max(1, ||y||_inf): relative max-norm difference used by
/// the exact-state reconstruction tests.
real_t vec_rel_diff_inf(std::span<const real_t> x, std::span<const real_t> y);

} // namespace esrp
