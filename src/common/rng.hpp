// Deterministic, seedable random number generation. Every randomized
// component of the library (matrix generators, experiment repetitions,
// property tests) takes an explicit Rng so that runs are reproducible
// bit-for-bit across machines — a prerequisite for the exact-state
// reconstruction tests.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.hpp"

namespace esrp {

/// splitmix64: tiny, fast, passes BigCrush for our purposes; chosen over
/// std::mt19937_64 because its state is a single word and its output is
/// identical across standard library implementations.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform index in [lo, hi] inclusive.
  index_t uniform_index(index_t lo, index_t hi) {
    return lo + static_cast<index_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

private:
  std::uint64_t state_;
};

} // namespace esrp
