// Fundamental scalar and index types shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace esrp {

/// Floating-point scalar used throughout the library.
using real_t = double;

/// Signed index type for matrix/vector dimensions. Signed so that index
/// arithmetic in partitioning code (differences, modular wrap-around of
/// ranks) cannot underflow.
using index_t = std::int64_t;

/// Rank of a node in the (simulated) cluster.
using rank_t = std::int32_t;

} // namespace esrp
