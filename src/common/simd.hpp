// Portable SIMD layer: a fixed virtual lane width of W = 4 doubles in the
// thin-wrapper idiom, built on GCC/Clang vector extensions
// (__attribute__((vector_size))) with a bit-exact scalar fallback.
//
// Why a *virtual* width: every kernel is written against W = 4 regardless of
// what the target ISA offers. On SSE2 each 4-lane op runs as two explicit
// 2-lane ops, on AVX it is one 4-lane op — per lane these are the same
// IEEE-754 double operations in the same order, so results are bitwise
// identical across scalar/SSE/AVX2 builds. The build pins
// -ffp-contract=off (CMakeLists.txt) so no target may fuse the mul+add pairs
// below into FMAs, which would change rounding.
//
// Determinism contract (docs/parallelism.md, "SIMD and the determinism
// contract"): reductions accumulate into 4 independent lane accumulators —
// lane l takes elements i with (i - lo) mod 4 == l — and combine them in the
// fixed order (l0 + l1) + (l2 + l3), then fold any tail elements serially
// left-to-right onto that sum. This composes with the kReduceGrain chunking
// in parallel/parallel.hpp: the lane split happens *inside* each fixed
// chunk, so chunk partials (and therefore full reductions) stay bitwise
// reproducible per thread count. The ESRP_FORCE_SCALAR fallback simulates
// the identical lane order with plain scalar code, so a forced-scalar build
// reproduces the vectorized build bit-for-bit (pinned by
// tests/common/simd_kernels_test.cpp and the force-scalar CI job).
//
// Every lane-ordered reduction in the library routes through
// simd_dot_chunk / simd_dot_chunk_at / simd_dist2_chunk or hand-rolled
// loops using Vec4 + lane_ordered_sum with the same shape — keeping the
// order defined in exactly one place.
#pragma once

#include <cstring>

#include "common/types.hpp"

namespace esrp {

/// The virtual lane count. Fixed at 4 independent of the target ISA — part
/// of the reduction-order contract, not a tuning knob.
inline constexpr index_t kSimdLanes = 4;

#if defined(__GNUC__) && !defined(ESRP_FORCE_SCALAR)
#if defined(__AVX__)

/// 4 doubles as one 32-byte native vector (AVX and wider): every operator
/// is a single 4-lane instruction. All arithmetic is per-lane IEEE-754
/// double math — identical to the two-half and scalar variants lane by
/// lane.
struct Vec4 {
  typedef real_t native_t __attribute__((vector_size(4 * sizeof(real_t))));
  native_t v;

  static Vec4 zero() { return Vec4{native_t{0, 0, 0, 0}}; }
  static Vec4 broadcast(real_t a) { return Vec4{native_t{a, a, a, a}}; }
  static Vec4 set(real_t l0, real_t l1, real_t l2, real_t l3) {
    return Vec4{native_t{l0, l1, l2, l3}};
  }
  /// Unaligned load of p[0..3].
  static Vec4 load(const real_t* p) {
    Vec4 r;
    std::memcpy(&r.v, p, sizeof(native_t));
    return r;
  }
  /// Unaligned store to p[0..3].
  void store(real_t* p) const { std::memcpy(p, &v, sizeof(native_t)); }

  real_t lane(int l) const { return v[l]; }

  friend Vec4 operator+(Vec4 a, Vec4 b) { return Vec4{a.v + b.v}; }
  friend Vec4 operator-(Vec4 a, Vec4 b) { return Vec4{a.v - b.v}; }
  friend Vec4 operator*(Vec4 a, Vec4 b) { return Vec4{a.v * b.v}; }
};

#else

/// 4 doubles as two 16-byte native vectors (SSE2 baseline). A single
/// 32-byte generic vector would be split in half by the compiler anyway,
/// but GCC's lowering of oversized vectors keeps the value in stack slots —
/// the hot-loop accumulators bounce through memory every iteration.
/// Spelling the two halves out produces the same per-lane instructions with
/// register-resident accumulators. Each operator performs the identical 4
/// IEEE-754 lane operations as the AVX and scalar variants, so results are
/// bitwise identical.
struct Vec4 {
  typedef real_t half_t __attribute__((vector_size(2 * sizeof(real_t))));
  half_t lo, hi;

  static Vec4 zero() { return Vec4{half_t{0, 0}, half_t{0, 0}}; }
  static Vec4 broadcast(real_t a) { return Vec4{half_t{a, a}, half_t{a, a}}; }
  static Vec4 set(real_t l0, real_t l1, real_t l2, real_t l3) {
    return Vec4{half_t{l0, l1}, half_t{l2, l3}};
  }
  /// Unaligned load of p[0..3].
  static Vec4 load(const real_t* p) {
    Vec4 r;
    std::memcpy(&r.lo, p, sizeof(half_t));
    std::memcpy(&r.hi, p + 2, sizeof(half_t));
    return r;
  }
  /// Unaligned store to p[0..3].
  void store(real_t* p) const {
    std::memcpy(p, &lo, sizeof(half_t));
    std::memcpy(p + 2, &hi, sizeof(half_t));
  }

  real_t lane(int l) const { return l < 2 ? lo[l] : hi[l - 2]; }

  friend Vec4 operator+(Vec4 a, Vec4 b) {
    return Vec4{a.lo + b.lo, a.hi + b.hi};
  }
  friend Vec4 operator-(Vec4 a, Vec4 b) {
    return Vec4{a.lo - b.lo, a.hi - b.hi};
  }
  friend Vec4 operator*(Vec4 a, Vec4 b) {
    return Vec4{a.lo * b.lo, a.hi * b.hi};
  }
};

#endif
#else

/// Scalar fallback (ESRP_FORCE_SCALAR or a non-GNU compiler): simulates the
/// vector type lane by lane. Each operator performs the same 4 IEEE-754
/// operations as the vector build, so results are bitwise identical.
struct Vec4 {
  real_t l[4];

  static Vec4 zero() { return Vec4{{0, 0, 0, 0}}; }
  static Vec4 broadcast(real_t a) { return Vec4{{a, a, a, a}}; }
  static Vec4 set(real_t l0, real_t l1, real_t l2, real_t l3) {
    return Vec4{{l0, l1, l2, l3}};
  }
  static Vec4 load(const real_t* p) { return Vec4{{p[0], p[1], p[2], p[3]}}; }
  void store(real_t* p) const { std::memcpy(p, l, sizeof(l)); }

  real_t lane(int i) const { return l[i]; }

  friend Vec4 operator+(Vec4 a, Vec4 b) {
    return Vec4{{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
                 a.l[3] + b.l[3]}};
  }
  friend Vec4 operator-(Vec4 a, Vec4 b) {
    return Vec4{{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
                 a.l[3] - b.l[3]}};
  }
  friend Vec4 operator*(Vec4 a, Vec4 b) {
    return Vec4{{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
                 a.l[3] * b.l[3]}};
  }
};

#endif

/// The fixed lane-combine order of every reduction: (l0 + l1) + (l2 + l3).
/// Changing this order re-versions every golden trajectory — don't.
inline real_t lane_ordered_sum(Vec4 a) {
  return (a.lane(0) + a.lane(1)) + (a.lane(2) + a.lane(3));
}

/// Lane-ordered dot product of x[lo..hi) · y[lo..hi): 4 lane accumulators
/// over the stride-4 main loop, combined by lane_ordered_sum, then the tail
/// (hi - lo) mod 4 elements folded serially onto the sum. This is THE
/// canonical reduction kernel — vec_dot, vec_dot2/3, CsrMatrix::spmv_dot /
/// spmv_multi_dot and SellMatrix::spmv_dot all produce their per-chunk
/// partials with exactly this function (or this shape), which is what makes
/// them mutually bitwise consistent.
inline real_t simd_dot_chunk(const real_t* x, const real_t* y, index_t lo,
                             index_t hi) {
  Vec4 acc = Vec4::zero();
  index_t i = lo;
  for (; i + kSimdLanes <= hi; i += kSimdLanes)
    acc = acc + Vec4::load(x + i) * Vec4::load(y + i);
  real_t s = lane_ordered_sum(acc);
  for (; i < hi; ++i) s += x[i] * y[i];
  return s;
}

/// Lane-ordered squared distance: sum over (x[i] - y[i])^2 with the same
/// lane split, combine order, and serial tail as simd_dot_chunk.
inline real_t simd_dist2_chunk(const real_t* x, const real_t* y, index_t lo,
                               index_t hi) {
  Vec4 acc = Vec4::zero();
  index_t i = lo;
  for (; i + kSimdLanes <= hi; i += kSimdLanes) {
    const Vec4 d = Vec4::load(x + i) - Vec4::load(y + i);
    acc = acc + d * d;
  }
  real_t s = lane_ordered_sum(acc);
  for (; i < hi; ++i) {
    const real_t d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

} // namespace esrp
