// Clang Thread Safety Analysis vocabulary plus the annotated synchronization
// primitives every mutex-protected component of this library uses.
//
// The macros expand to clang's capability attributes under clang and to
// nothing elsewhere, so GCC/MSVC builds are unaffected; the `analyze` CMake
// preset (clang, -Wthread-safety -Werror=thread-safety) turns the contracts
// into compile errors. See docs/static_analysis.md for the full toolchain.
//
// Standard-library mutexes carry no capability attributes (libstdc++ is not
// annotated), so locking through them is invisible to the analysis. The
// library therefore standardizes on the wrappers below:
//
//   esrp::Mutex     — annotated std::mutex (a "mutex" capability)
//   esrp::MutexLock — scoped lock_guard over a Mutex
//   esrp::CondVar   — condition variable waiting on a held Mutex
//
// esrp_lint's raw-mutex rule keeps it that way: std::mutex and
// std::condition_variable outside this header fail the lint gate.
//
// Guarded members are declared as
//
//   std::deque<Job> queue_ ESRP_GUARDED_BY(mu_);
//
// and condition waits are written as explicit loops inside the locked scope
// (never with a predicate lambda — the analysis cannot see that the lambda
// runs under the lock):
//
//   MutexLock lock(mu_);
//   while (!stop_ && queue_.empty()) cv_.wait(mu_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define ESRP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ESRP_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/// Declares a type to be a capability (e.g. a mutex).
#define ESRP_CAPABILITY(x) ESRP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define ESRP_SCOPED_CAPABILITY ESRP_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding the given mutex.
#define ESRP_GUARDED_BY(x) ESRP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* is protected by the given mutex.
#define ESRP_PT_GUARDED_BY(x) ESRP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller.
#define ESRP_REQUIRES(...) \
  ESRP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define ESRP_ACQUIRE(...) \
  ESRP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define ESRP_RELEASE(...) \
  ESRP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define ESRP_TRY_ACQUIRE(...) \
  ESRP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define ESRP_EXCLUDES(...) ESRP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: the function is deliberately outside the analysis. Every
/// use needs a comment justifying why.
#define ESRP_NO_THREAD_SAFETY_ANALYSIS \
  ESRP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace esrp {

class CondVar;

/// std::mutex with capability annotations, so clang can prove which locks
/// protect which data. Same cost as the raw mutex — the wrapper is inline
/// forwarding only.
class ESRP_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ESRP_ACQUIRE() { mu_.lock(); }
  void unlock() ESRP_RELEASE() { mu_.unlock(); }
  bool try_lock() ESRP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (the lock_guard idiom). Constructing one tells
/// the analysis the mutex is held for the rest of the scope.
class ESRP_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) ESRP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ESRP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex& mu_;
};

/// Condition variable tied to esrp::Mutex. wait()/wait_for() take the held
/// mutex explicitly so the REQUIRES contract is checkable; there are no
/// predicate overloads on purpose — a predicate lambda's guarded accesses
/// are invisible to the analysis, so waits are written as explicit loops
/// (see the header comment).
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// Spurious wakeups happen; callers always re-check their condition.
  void wait(Mutex& mu) ESRP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release(); // ownership stays with the caller's scope
  }

  /// wait() with a timeout; returns false on timeout.
  template <class Rep, class Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      ESRP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lk, timeout);
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

private:
  std::condition_variable cv_;
};

} // namespace esrp
