#include "common/vec.hpp"

#include <algorithm>

namespace esrp {

void vec_copy(std::span<const real_t> x, std::span<real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void vec_zero(std::span<real_t> x) { std::fill(x.begin(), x.end(), real_t{0}); }

void vec_scale(std::span<real_t> x, real_t alpha) {
  for (real_t& v : x) v *= alpha;
}

void vec_axpy(std::span<real_t> y, real_t alpha, std::span<const real_t> x) {
  ESRP_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void vec_xpby(std::span<real_t> y, std::span<const real_t> x, real_t beta) {
  ESRP_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
}

void vec_pointwise_mul(std::span<const real_t> x, std::span<const real_t> y,
                       std::span<real_t> z) {
  ESRP_CHECK(x.size() == y.size() && y.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

real_t vec_dot(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  real_t acc = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

real_t vec_norm2(std::span<const real_t> x) { return std::sqrt(vec_dot(x, x)); }

real_t vec_norm_inf(std::span<const real_t> x) {
  real_t m = 0;
  for (real_t v : x) m = std::max(m, std::abs(v));
  return m;
}

real_t vec_dist2(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  real_t acc = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const real_t d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

real_t vec_rel_diff_inf(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  real_t diff = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i)
    diff = std::max(diff, std::abs(x[i] - y[i]));
  return diff / std::max(real_t{1}, vec_norm_inf(y));
}

} // namespace esrp
