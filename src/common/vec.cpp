#include "common/vec.hpp"

#include <algorithm>

#include "common/simd.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

// Elementwise kernels parallelize with elementwise_grain (adaptive with a
// serial floor) and vectorize in stripes of kSimdLanes indices: every index
// writes its own output slot and per lane the stripe performs the exact
// per-index operation, so results are bitwise identical at any thread count
// and identical to the scalar fallback (common/simd.hpp).

void vec_copy(std::span<const real_t> x, std::span<real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 std::copy(x.begin() + lo, x.begin() + hi, y.begin() + lo);
               });
}

void vec_zero(std::span<real_t> x) {
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 std::fill(x.begin() + lo, x.begin() + hi, real_t{0});
               });
}

void vec_scale(std::span<real_t> x, real_t alpha) {
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 real_t* xp = x.data();
                 const Vec4 a = Vec4::broadcast(alpha);
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes)
                   (Vec4::load(xp + i) * a).store(xp + i);
                 for (; i < hi; ++i) xp[i] *= alpha;
               });
}

void vec_axpy(std::span<real_t> y, real_t alpha, std::span<const real_t> x) {
  ESRP_CHECK(x.size() == y.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 const real_t* xp = x.data();
                 real_t* yp = y.data();
                 const Vec4 a = Vec4::broadcast(alpha);
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes)
                   (Vec4::load(yp + i) + a * Vec4::load(xp + i)).store(yp + i);
                 for (; i < hi; ++i) yp[i] += alpha * xp[i];
               });
}

void vec_xpby(std::span<real_t> y, std::span<const real_t> x, real_t beta) {
  ESRP_CHECK(x.size() == y.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 const real_t* xp = x.data();
                 real_t* yp = y.data();
                 const Vec4 b = Vec4::broadcast(beta);
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes)
                   (Vec4::load(xp + i) + b * Vec4::load(yp + i)).store(yp + i);
                 for (; i < hi; ++i) yp[i] = xp[i] + beta * yp[i];
               });
}

void vec_pointwise_mul(std::span<const real_t> x, std::span<const real_t> y,
                       std::span<real_t> z) {
  ESRP_CHECK(x.size() == y.size() && y.size() == z.size());
  parallel_for(index_t{0}, static_cast<index_t>(x.size()),
               elementwise_grain(static_cast<index_t>(x.size())),
               [&](index_t lo, index_t hi) {
                 const real_t* xp = x.data();
                 const real_t* yp = y.data();
                 real_t* zp = z.data();
                 index_t i = lo;
                 for (; i + kSimdLanes <= hi; i += kSimdLanes)
                   (Vec4::load(xp + i) * Vec4::load(yp + i)).store(zp + i);
                 for (; i < hi; ++i) zp[i] = xp[i] * yp[i];
               });
}

// Reductions use the fixed kReduceGrain so chunk boundaries never move, and
// the lane-ordered chunk kernels of common/simd.hpp inside each chunk:
// bitwise reproducible run-to-run at any thread count, per thread count, and
// across scalar/SSE/AVX2 builds (docs/parallelism.md).

real_t vec_dot(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  return parallel_reduce(index_t{0}, static_cast<index_t>(x.size()),
                         kReduceGrain, real_t{0},
                         [&](index_t lo, index_t hi) {
                           return simd_dot_chunk(x.data(), y.data(), lo, hi);
                         });
}

real_t vec_norm2(std::span<const real_t> x) { return std::sqrt(vec_dot(x, x)); }

real_t vec_norm_inf(std::span<const real_t> x) {
  // max is associative and commutative: any chunking or lane split is exact,
  // so the plain serial chunk loop needs no lane-order bookkeeping.
  return parallel_reduce(
      index_t{0}, static_cast<index_t>(x.size()), kReduceGrain, real_t{0},
      [&](index_t lo, index_t hi) {
        real_t m = 0;
        for (index_t i = lo; i < hi; ++i)
          m = std::max(m, std::abs(x[static_cast<std::size_t>(i)]));
        return m;
      },
      [](real_t a, real_t b) { return std::max(a, b); });
}

real_t vec_dist2(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  const real_t acc = parallel_reduce(
      index_t{0}, static_cast<index_t>(x.size()), kReduceGrain, real_t{0},
      [&](index_t lo, index_t hi) {
        return simd_dist2_chunk(x.data(), y.data(), lo, hi);
      });
  return std::sqrt(acc);
}

real_t vec_rel_diff_inf(std::span<const real_t> x, std::span<const real_t> y) {
  ESRP_CHECK(x.size() == y.size());
  const real_t diff = parallel_reduce(
      index_t{0}, static_cast<index_t>(x.size()), kReduceGrain, real_t{0},
      [&](index_t lo, index_t hi) {
        real_t d = 0;
        for (index_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(i);
          d = std::max(d, std::abs(x[k] - y[k]));
        }
        return d;
      },
      [](real_t a, real_t b) { return std::max(a, b); });
  return diff / std::max(real_t{1}, vec_norm_inf(y));
}

} // namespace esrp
