// FNV-1a content hashing, shared by every place that fingerprints bytes:
// plan-cache keys (service/problem_handle), scenario cell seeds, and the
// integrity checksums guarding redundant recovery state (resilience).
// 64-bit FNV-1a is not cryptographic — it detects accidental corruption
// (bit flips, torn writes), which is exactly the SDC threat model here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace esrp {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fold `bytes` bytes at `data` into the running hash `h`. Chain calls by
/// passing the previous return value as `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

} // namespace esrp
