// Multi-RHS batched PCG: k systems A x_j = b_j advanced in lockstep, with
// every per-RHS recurrence (alpha/beta updates, preconditioner applies,
// reductions) performed by exactly the kernels pcg_solve uses, while the
// expensive matrix sweep is shared across the batch through
// CsrMatrix::spmv_multi_dot — one streaming pass over A per iteration
// instead of k. This is the paper's communication-hiding idea (ref. [16])
// turned into bandwidth hiding: the matrix bytes are the bottleneck, the
// per-RHS vector work rides along in the same pass.
//
// Determinism / parity contract (pinned by tests/service/batched_solve_test):
//   * each per-RHS trajectory is bitwise identical to an independent
//     pcg_solve of that system — in particular batched k = 1 is bitwise
//     identical to the single-RHS solver at every thread count;
//   * per-RHS convergence is tracked independently: a converged system
//     leaves the active set without perturbing the others' arithmetic.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "precond/preconditioner.hpp"
#include "solver/pcg.hpp"
#include "sparse/csr.hpp"

namespace esrp {

struct BatchedPcgResult {
  /// Per-system results, index-parallel to the input batch. `flops` counts
  /// each system's own arithmetic (identical to an independent pcg_solve);
  /// the sweep sharing saves memory traffic, not flops.
  std::vector<PcgResult> per_rhs;
  /// Shared multi-RHS matrix passes performed (init sweep + one per
  /// iteration in which any system was still active). An independent-solves
  /// run would have cost the sum of per-RHS (iterations + 1) passes.
  index_t shared_sweeps = 0;
};

/// Solve the k systems A x_j = b_j in one batched run. `xs[j]` carries the
/// initial guess in and the solution out; `precond` may be nullptr
/// (identity) and is applied per RHS. All systems share `opts` (tolerance
/// and iteration cap).
BatchedPcgResult batched_pcg_solve(const CsrMatrix& a,
                                   std::span<const std::span<const real_t>> bs,
                                   std::span<const std::span<real_t>> xs,
                                   const Preconditioner* precond,
                                   const PcgOptions& opts = {});

} // namespace esrp
