#include "solver/pcg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fused.hpp"

namespace esrp {

PcgResult pcg_solve(const CsrMatrix& a, std::span<const real_t> b,
                    std::span<real_t> x, const Preconditioner* precond,
                    const PcgOptions& opts,
                    const IterationCallback& on_iteration) {
  const index_t n = a.rows();
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  ESRP_CHECK(static_cast<index_t>(x.size()) == n);
  if (precond) ESRP_CHECK(precond->dim() == n);

  PcgResult result;
  const index_t max_iter =
      opts.max_iterations > 0 ? opts.max_iterations : 10 * std::max<index_t>(n, 1);

  const real_t bnorm = vec_norm2(b);
  if (bnorm == real_t{0}) {
    // b = 0: the solution is x = 0 (A is SPD, hence nonsingular).
    vec_zero(x);
    result.converged = true;
    return result;
  }

  Vector r(static_cast<std::size_t>(n));
  Vector z(static_cast<std::size_t>(n));
  Vector p(static_cast<std::size_t>(n));
  Vector ap(static_cast<std::size_t>(n));

  auto apply_precond = [&](std::span<const real_t> in, std::span<real_t> out) {
    if (precond) {
      precond->apply(in, out);
      result.flops += precond->apply_flops();
    } else {
      vec_copy(in, out);
    }
  };

  // r(0) = b - A x(0); z(0) = P r(0); p(0) = z(0).
  a.spmv(x, r);
  result.flops += static_cast<double>(a.spmv_flops());
  vec_sub(b, r, r);
  apply_precond(r, z);
  vec_copy(z, p);

  // <r,z> and ||r||^2 from one sweep; flops as in the unfused pair of dots.
  auto [rz, rr] = vec_dot2(r, z, r, r);
  real_t rnorm = std::sqrt(rr);
  result.flops += 4.0 * static_cast<double>(n);

  for (index_t j = 0; j < max_iter; ++j) {
    result.final_relres = rnorm / bnorm;
    if (on_iteration) on_iteration(j, result.final_relres);
    if (result.final_relres < opts.rtol) {
      result.converged = true;
      result.iterations = j;
      return result;
    }

    // ap = A p and p.Ap in one row-partitioned pass.
    const real_t pap = a.spmv_dot(p, ap);
    ESRP_CHECK_MSG(pap > 0, "p^T A p = " << pap
                                         << " <= 0: matrix not SPD "
                                            "(or severe breakdown)");
    const real_t alpha = rz / pap;
    fused_axpy2(x, alpha, p, r, -alpha, ap);
    apply_precond(r, z);
    const auto [rz_next, rr_next] = vec_dot2(r, z, r, r);
    const real_t beta = rz_next / rz;
    rz = rz_next;
    vec_xpby(p, z, beta);
    rnorm = std::sqrt(rr_next);
    // Same accounting as the unfused sequence: spmv + dot (2n) + two axpys
    // (4n) + two dots (4n) + xpby (2n) = spmv + 12n.
    result.flops += static_cast<double>(a.spmv_flops()) +
                    12.0 * static_cast<double>(n);
  }

  result.iterations = max_iter;
  result.final_relres = rnorm / bnorm;
  return result;
}

} // namespace esrp
