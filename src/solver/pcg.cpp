#include "solver/pcg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esrp {

PcgResult pcg_solve(const CsrMatrix& a, std::span<const real_t> b,
                    std::span<real_t> x, const Preconditioner* precond,
                    const PcgOptions& opts,
                    const IterationCallback& on_iteration) {
  const index_t n = a.rows();
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(static_cast<index_t>(b.size()) == n);
  ESRP_CHECK(static_cast<index_t>(x.size()) == n);
  if (precond) ESRP_CHECK(precond->dim() == n);

  PcgResult result;
  const index_t max_iter =
      opts.max_iterations > 0 ? opts.max_iterations : 10 * std::max<index_t>(n, 1);

  const real_t bnorm = vec_norm2(b);
  if (bnorm == real_t{0}) {
    // b = 0: the solution is x = 0 (A is SPD, hence nonsingular).
    vec_zero(x);
    result.converged = true;
    return result;
  }

  Vector r(static_cast<std::size_t>(n));
  Vector z(static_cast<std::size_t>(n));
  Vector p(static_cast<std::size_t>(n));
  Vector ap(static_cast<std::size_t>(n));

  auto apply_precond = [&](std::span<const real_t> in, std::span<real_t> out) {
    if (precond) {
      precond->apply(in, out);
      result.flops += precond->apply_flops();
    } else {
      vec_copy(in, out);
    }
  };

  // r(0) = b - A x(0); z(0) = P r(0); p(0) = z(0).
  a.spmv(x, r);
  result.flops += static_cast<double>(a.spmv_flops());
  for (index_t i = 0; i < n; ++i)
    r[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)] -
                                     r[static_cast<std::size_t>(i)];
  apply_precond(r, z);
  vec_copy(z, p);

  real_t rz = vec_dot(r, z);
  real_t rnorm = vec_norm2(r);
  result.flops += 4.0 * static_cast<double>(n);

  for (index_t j = 0; j < max_iter; ++j) {
    result.final_relres = rnorm / bnorm;
    if (on_iteration) on_iteration(j, result.final_relres);
    if (result.final_relres < opts.rtol) {
      result.converged = true;
      result.iterations = j;
      return result;
    }

    a.spmv(p, ap);
    const real_t pap = vec_dot(p, ap);
    ESRP_CHECK_MSG(pap > 0, "p^T A p = " << pap
                                         << " <= 0: matrix not SPD "
                                            "(or severe breakdown)");
    const real_t alpha = rz / pap;
    vec_axpy(x, alpha, p);
    vec_axpy(r, -alpha, ap);
    apply_precond(r, z);
    const real_t rz_next = vec_dot(r, z);
    const real_t beta = rz_next / rz;
    rz = rz_next;
    vec_xpby(p, z, beta);
    rnorm = vec_norm2(r);
    result.flops += static_cast<double>(a.spmv_flops()) +
                    12.0 * static_cast<double>(n);
  }

  result.iterations = max_iter;
  result.final_relres = rnorm / bnorm;
  return result;
}

} // namespace esrp
