#include "solver/batched_pcg.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/fused.hpp"

namespace esrp {

namespace {

/// Per-system iteration state. The vectors and the scalar recurrences are
/// exactly pcg_solve's; only the SpMV is pooled across systems.
struct RhsState {
  Vector r, z, p, ap;
  real_t bnorm = 0;
  real_t rz = 0;
  real_t rnorm = 0;
};

} // namespace

BatchedPcgResult batched_pcg_solve(const CsrMatrix& a,
                                   std::span<const std::span<const real_t>> bs,
                                   std::span<const std::span<real_t>> xs,
                                   const Preconditioner* precond,
                                   const PcgOptions& opts) {
  const index_t n = a.rows();
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(bs.size() == xs.size());
  for (std::size_t j = 0; j < bs.size(); ++j) {
    ESRP_CHECK(static_cast<index_t>(bs[j].size()) == n);
    ESRP_CHECK(static_cast<index_t>(xs[j].size()) == n);
  }
  if (precond) ESRP_CHECK(precond->dim() == n);

  const std::size_t k = bs.size();
  BatchedPcgResult out;
  out.per_rhs.resize(k);
  if (k == 0) return out;

  const index_t max_iter = opts.max_iterations > 0
                               ? opts.max_iterations
                               : 10 * std::max<index_t>(n, 1);

  auto apply_precond = [&](PcgResult& result, std::span<const real_t> in,
                           std::span<real_t> out_v) {
    if (precond) {
      precond->apply(in, out_v);
      result.flops += precond->apply_flops();
    } else {
      vec_copy(in, out_v);
    }
  };

  std::vector<RhsState> st(k);
  std::vector<std::size_t> active;
  active.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    st[j].bnorm = vec_norm2(bs[j]);
    if (st[j].bnorm == real_t{0}) {
      // b = 0: the solution is x = 0 (A is SPD, hence nonsingular) — same
      // early-out as pcg_solve, independently per system.
      vec_zero(xs[j]);
      out.per_rhs[j].converged = true;
      continue;
    }
    st[j].r.resize(static_cast<std::size_t>(n));
    st[j].z.resize(static_cast<std::size_t>(n));
    st[j].p.resize(static_cast<std::size_t>(n));
    st[j].ap.resize(static_cast<std::size_t>(n));
    active.push_back(j);
  }
  if (active.empty()) return out;

  // Span scratch for the shared sweeps, rebuilt per sweep over the active
  // subset (which only shrinks).
  std::vector<std::span<const real_t>> in_spans(active.size());
  std::vector<std::span<real_t>> out_spans(active.size());
  std::vector<real_t> dots(active.size());

  // r(0) = b - A x(0); z(0) = P r(0); p(0) = z(0) — one shared sweep for
  // every initial residual, then pcg_solve's exact init kernels per system.
  for (std::size_t i = 0; i < active.size(); ++i) {
    in_spans[i] = xs[active[i]];
    out_spans[i] = st[active[i]].r;
  }
  a.spmv_multi(in_spans, out_spans);
  ++out.shared_sweeps;
  for (const std::size_t j : active) {
    PcgResult& result = out.per_rhs[j];
    result.flops += static_cast<double>(a.spmv_flops());
    vec_sub(bs[j], st[j].r, st[j].r);
    apply_precond(result, st[j].r, st[j].z);
    vec_copy(st[j].z, st[j].p);
    const auto [rz, rr] = vec_dot2(st[j].r, st[j].z, st[j].r, st[j].r);
    st[j].rz = rz;
    st[j].rnorm = std::sqrt(rr);
    result.flops += 4.0 * static_cast<double>(n);
  }

  for (index_t it = 0; it < max_iter && !active.empty(); ++it) {
    // Independent convergence checks; converged systems drop out of the
    // batch without touching the survivors' state.
    std::size_t keep = 0;
    for (const std::size_t j : active) {
      PcgResult& result = out.per_rhs[j];
      result.final_relres = st[j].rnorm / st[j].bnorm;
      if (result.final_relres < opts.rtol) {
        result.converged = true;
        result.iterations = it;
        continue;
      }
      active[keep++] = j;
    }
    active.resize(keep);
    if (active.empty()) break;

    // ap_j = A p_j and p_j . A p_j for the whole batch in one matrix pass.
    for (std::size_t i = 0; i < active.size(); ++i) {
      in_spans[i] = st[active[i]].p;
      out_spans[i] = st[active[i]].ap;
    }
    a.spmv_multi_dot({in_spans.data(), keep}, {out_spans.data(), keep},
                     {dots.data(), keep});
    ++out.shared_sweeps;

    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t j = active[i];
      PcgResult& result = out.per_rhs[j];
      const real_t pap = dots[i];
      ESRP_CHECK_MSG(pap > 0, "p^T A p = " << pap
                                           << " <= 0 in batched system " << j
                                           << ": matrix not SPD (or severe "
                                              "breakdown)");
      const real_t alpha = st[j].rz / pap;
      fused_axpy2(xs[j], alpha, st[j].p, st[j].r, -alpha, st[j].ap);
      apply_precond(result, st[j].r, st[j].z);
      const auto [rz_next, rr_next] =
          vec_dot2(st[j].r, st[j].z, st[j].r, st[j].r);
      const real_t beta = rz_next / st[j].rz;
      st[j].rz = rz_next;
      vec_xpby(st[j].p, st[j].z, beta);
      st[j].rnorm = std::sqrt(rr_next);
      result.flops += static_cast<double>(a.spmv_flops()) +
                      12.0 * static_cast<double>(n);
    }
  }

  // Systems that exhausted the cap report exactly like pcg_solve's
  // fallthrough: iterations = max_iter, final relres from the last state.
  for (const std::size_t j : active) {
    out.per_rhs[j].iterations = max_iter;
    out.per_rhs[j].final_relres = st[j].rnorm / st[j].bnorm;
  }
  return out;
}

} // namespace esrp
