// Sequential preconditioned conjugate gradient (paper Alg. 1). Serves three
// roles: (a) reference solver for tests, (b) inner solver of the ESR/ESRP
// reconstruction (Alg. 2, lines 6 and 8, run to rtol 1e-14), and (c) the
// solver behind the examples that do not involve the simulated cluster.
#pragma once

#include <functional>
#include <span>

#include "common/types.hpp"
#include "common/vec.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace esrp {

struct PcgOptions {
  real_t rtol = 1e-8;          ///< convergence: ||r||_2 / ||b||_2 < rtol
  index_t max_iterations = 0;  ///< 0 = 10 * dim (CG converges in <= dim steps
                               ///< in exact arithmetic; the slack absorbs
                               ///< floating-point drift)
};

struct PcgResult {
  bool converged = false;
  index_t iterations = 0;
  real_t final_relres = 0;
  double flops = 0; ///< total floating-point work, for the cost model
};

/// Observer invoked once per iteration with (j, ||r||/||b||); may be empty.
using IterationCallback = std::function<void(index_t, real_t)>;

/// Solve A x = b with PCG. `x` carries the initial guess in and the solution
/// out. `precond` may be nullptr (identity).
PcgResult pcg_solve(const CsrMatrix& a, std::span<const real_t> b,
                    std::span<real_t> x, const Preconditioner* precond,
                    const PcgOptions& opts = {},
                    const IterationCallback& on_iteration = {});

} // namespace esrp
