// Persistent worker pool and structured fork-join groups: the execution
// substrate for the threaded kernels (see parallel/parallel.hpp for the
// loop-level API and docs/parallelism.md for the threading model).
//
// Design constraints, in order:
//   1. No deadlock on nested parallelism — a task may open its own TaskGroup
//      and wait on it. A thread that waits "helps": it executes queued jobs
//      instead of blocking, so every fork-join DAG makes progress even when
//      all workers are busy.
//   2. Exceptions propagate — the first exception thrown by any task of a
//      group is captured and rethrown from TaskGroup::wait() on the waiting
//      thread; remaining tasks of the group still run to completion.
//   3. Clean shutdown — the destructor drains already-queued jobs, then
//      joins every worker. Submitting to a stopped pool throws.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace esrp {

class ThreadPool {
public:
  /// Spawns `workers` threads (>= 0; a zero-worker pool is legal and makes
  /// every TaskGroup::wait() execute all jobs on the waiting thread).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// True iff the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Enqueue one fire-and-forget job. Throws Error after shutdown began.
  /// Prefer TaskGroup for anything that needs completion or exceptions.
  void submit(std::function<void()> job);

  /// Pop and execute one queued job on the calling thread; false when the
  /// queue is empty. This is the "helping" primitive TaskGroup::wait() uses.
  bool run_one();

private:
  void worker_loop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ ESRP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_; ///< written in the ctor only; joined in ~
  bool stop_ ESRP_GUARDED_BY(mu_) = false;
};

/// A set of jobs on one pool that is waited on as a unit. Reusable: after
/// wait() returns, run() may be called again. Not thread-safe to drive from
/// several threads at once (the tasks themselves of course run concurrently).
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
  /// Waits for stragglers but swallows their exceptions (destructors must
  /// not throw); call wait() explicitly to observe errors.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue one job of this group.
  void run(std::function<void()> fn);

  /// Block until every job of the group finished, executing queued jobs on
  /// the calling thread while it waits. Rethrows the first exception any
  /// job of the group threw.
  void wait();

private:
  void finish_one(std::exception_ptr err);

  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_cv_;
  std::size_t pending_ ESRP_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ ESRP_GUARDED_BY(mu_);
};

} // namespace esrp
