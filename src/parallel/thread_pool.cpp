#include "parallel/thread_pool.hpp"

#include <chrono>

#include "common/error.hpp"

namespace esrp {

namespace {
/// Which pool (if any) the current thread belongs to. Set once per worker
/// before its loop starts and never from the outside, so a plain
/// thread_local is race-free.
thread_local const ThreadPool* tl_worker_pool = nullptr;
} // namespace

ThreadPool::ThreadPool(int workers) {
  ESRP_CHECK(workers >= 0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::submit(std::function<void()> job) {
  ESRP_CHECK(job != nullptr);
  {
    MutexLock lk(mu_);
    ESRP_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> job;
  {
    MutexLock lk(mu_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      // Drain the queue before honoring stop_, so jobs enqueued before the
      // destructor ran are never dropped.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) { // NOLINT(bugprone-empty-catch)
  }
}

void TaskGroup::run(std::function<void()> fn) {
  ESRP_CHECK(fn != nullptr);
  {
    MutexLock lk(mu_);
    ++pending_;
  }
  try {
    pool_->submit([this, fn = std::move(fn)] {
      std::exception_ptr err;
      try {
        fn();
      } catch (...) {
        err = std::current_exception();
      }
      finish_one(err);
    });
  } catch (...) {
    MutexLock lk(mu_);
    --pending_;
    throw;
  }
}

void TaskGroup::finish_one(std::exception_ptr err) {
  // Notify *inside* the lock: the waiter owns this group's storage and may
  // destroy it the moment it can observe pending_ == 0, which the lock
  // delays until this function no longer touches any member.
  MutexLock lk(mu_);
  if (err && !first_error_) first_error_ = err;
  if (--pending_ == 0) done_cv_.notify_all();
}

void TaskGroup::wait() {
  for (;;) {
    {
      MutexLock lk(mu_);
      if (pending_ == 0) break;
    }
    if (!pool_->run_one()) {
      // Nothing left to help with: the group's stragglers are running on
      // other threads. Block until finish_one reports the last completion.
      // The timeout re-checks the pool queue so a job enqueued by a
      // straggler (nested fork) cannot strand us here. Spurious wakeups are
      // fine: the outer loop re-checks pending_ and the queue.
      MutexLock lk(mu_);
      if (pending_ != 0) done_cv_.wait_for(mu_, std::chrono::milliseconds(1));
    }
  }
  std::exception_ptr err;
  {
    MutexLock lk(mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

} // namespace esrp
