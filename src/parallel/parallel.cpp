#include "parallel/parallel.hpp"

#include <cstdlib>
#include <atomic>
#include <memory>
#include <string>

#include "common/thread_annotations.hpp"

namespace esrp {

namespace {

int clamp_thread_count(long n) {
  if (n <= 0) return hardware_threads();
  return static_cast<int>(n);
}

int initial_thread_count() {
  // ESRP_NUM_THREADS seeds the default so scripts (tools/run_benches.sh
  // --threads N) can configure child processes without per-binary flags.
  const char* env = std::getenv("ESRP_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const std::string v(env);
  if (v == "auto") return hardware_threads();
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0') return 1; // malformed: fail safe-serial
  return clamp_thread_count(n);
}

std::atomic<int> g_num_threads{initial_thread_count()};
Mutex g_pool_mu;
// workers = num_threads() - 1
std::unique_ptr<ThreadPool> g_pool ESRP_GUARDED_BY(g_pool_mu);

// Per-thread budget override (ThreadBudget); 0 = inactive, fall through to
// the global count. Pool workers never install a budget, so nested kernels
// they execute see the global setting.
thread_local int t_thread_budget = 0;

} // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int num_threads() {
  if (t_thread_budget > 0) return t_thread_budget;
  return g_num_threads.load(std::memory_order_relaxed);
}

ThreadBudget::ThreadBudget(int n) {
  if (n <= 0) return; // inactive: the global setting applies
  saved_ = t_thread_budget;
  t_thread_budget = n;
  active_ = true;
}

ThreadBudget::~ThreadBudget() {
  if (active_) t_thread_budget = saved_;
}

void set_num_threads(int n) {
  ESRP_CHECK_MSG(n >= 0, "thread count must be >= 0 (0 = hardware)");
  const int resolved = clamp_thread_count(n);
  MutexLock lk(g_pool_mu);
  if (resolved == g_num_threads.load(std::memory_order_relaxed) &&
      (resolved == 1 || g_pool != nullptr))
    return;
  g_pool.reset(); // join the old workers before the count changes
  if (resolved > 1) g_pool = std::make_unique<ThreadPool>(resolved - 1);
  g_num_threads.store(resolved, std::memory_order_relaxed);
}

ThreadPool& global_pool() {
  // The pool is created by set_num_threads; reaching here with
  // num_threads() > 1 and no pool means the count came from the
  // environment default or a ThreadBudget, so build it on first use. Sized
  // by the *global* count (never a per-thread budget): a budget caps one
  // session's fan-out, it must not bake itself into the shared worker
  // supply. A zero-worker pool is legal — budgeted kernels then run on the
  // session thread via TaskGroup helping, bitwise identically (fixed-grain
  // chunking does not depend on where chunks execute). Taken once per
  // parallel region, the lock is noise next to even one task's work.
  MutexLock lk(g_pool_mu);
  if (g_pool == nullptr)
    g_pool = std::make_unique<ThreadPool>(
        g_num_threads.load(std::memory_order_relaxed) - 1);
  return *g_pool;
}

index_t adaptive_grain(index_t n, index_t tasks_per_thread) {
  ESRP_CHECK(tasks_per_thread >= 1);
  if (n <= 0) return 1;
  const index_t tasks = static_cast<index_t>(num_threads()) * tasks_per_thread;
  return std::max<index_t>(1, (n + tasks - 1) / tasks);
}

index_t elementwise_grain(index_t n) {
  constexpr index_t floor = index_t{1} << 15;
  return std::max(floor, adaptive_grain(n));
}

} // namespace esrp
