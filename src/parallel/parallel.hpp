// Loop-level parallel API used by the hot kernels: a global thread-count
// setting, parallel_for over index ranges, and a deterministic chunked
// parallel_reduce.
//
// Determinism contract (docs/parallelism.md):
//   * parallel_for — chunks only partition the range; as long as the body
//     writes disjoint outputs per index (all kernels here do), results are
//     bitwise identical at every thread count.
//   * parallel_reduce — the range is cut into fixed chunks of `grain`
//     indices; each chunk's partial is computed by the chunk body (for the
//     numeric kernels: the fixed lane-ordered SIMD loop of common/simd.hpp)
//     and the partials are combined in index order. Chunk boundaries depend
//     only on (range, grain), never on the thread count or on task timing,
//     so a reduction is bitwise reproducible run-to-run at any thread
//     count >= 2 — and identical *across* those thread counts.
//   * num_threads() == 1 executes the same chunk body inline over the whole
//     range as a single chunk — same per-chunk arithmetic, no pool.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/thread_pool.hpp"

namespace esrp {

/// Current global thread count (>= 1). Initialized from the environment
/// variable ESRP_NUM_THREADS when set (0 or "auto" = hardware), else 1.
int num_threads();

/// Set the global thread count: n >= 1, or 0 for the hardware concurrency.
/// Resizes the shared pool to n-1 workers (the calling thread is the n-th
/// executor of every parallel region). Must not be called while a parallel
/// kernel is running.
void set_num_threads(int n);

/// std::thread::hardware_concurrency(), never less than 1.
int hardware_threads();

/// RAII per-thread kernel-thread budget: while alive (with n >= 1),
/// num_threads() returns n *on this thread only* — parallel kernels issued
/// from it fan out to at most n executors — without touching the global
/// setting or resizing the shared pool. This is how SolveService runs N
/// concurrent sessions: each session thread caps its own fan-out while the
/// pool keeps serving everyone. Budgets nest (the innermost wins) and
/// n <= 0 constructs an inactive budget (global setting applies).
///
/// Determinism: all reductions use fixed grains (kReduceGrain), so chunk
/// boundaries depend only on the range — a solve under a fixed budget B is
/// bitwise identical run-to-run, and identical to a solve at global thread
/// count B, regardless of what other sessions do concurrently. (The usual
/// caveat applies: budgets of 1 take the single-chunk serial path, so B = 1
/// and B >= 2 differ on ranges longer than the grain, exactly like the
/// global setting.)
class ThreadBudget {
public:
  explicit ThreadBudget(int n);
  ~ThreadBudget();
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

private:
  int saved_ = 0;
  bool active_ = false;
};

/// The process-wide pool behind parallel_for/parallel_reduce; it holds
/// num_threads()-1 workers. Only meaningful when num_threads() > 1.
ThreadPool& global_pool();

/// Chunk size that yields about `tasks_per_thread` tasks per thread at the
/// current thread count (>= 1). Good for parallel_for bodies whose outputs
/// are per-index (bitwise thread-count-independent); reductions should pass
/// a fixed grain instead so chunk boundaries never move.
index_t adaptive_grain(index_t n, index_t tasks_per_thread = 4);

/// Grain for elementwise loops whose per-index work is a few flops (BLAS-1
/// bodies): adaptive_grain with a floor, so ranges smaller than the floor
/// run serially — a task dispatch costs more than streaming 32k doubles.
index_t elementwise_grain(index_t n);

/// Fixed reduction grain used by the BLAS-1 kernels (see vec.cpp).
inline constexpr index_t kReduceGrain = index_t{1} << 14;

/// body(lo, hi) over [begin, end) in chunks of at most `grain` indices.
/// Chunks run concurrently on the global pool; the call returns after every
/// chunk completed and rethrows the first exception a chunk threw. Ranges
/// that fit in one chunk run serially on the calling thread, so the grain
/// doubles as the parallelism cutoff — pick it so one chunk's work dwarfs
/// the ~1 us cost of queueing a task.
template <class Body>
void parallel_for(index_t begin, index_t end, index_t grain, Body&& body) {
  const index_t n = end - begin;
  if (n <= 0) return;
  ESRP_CHECK(grain >= 1);
  if (num_threads() == 1 || n <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group(global_pool());
  for (index_t lo = begin; lo < end; lo += grain) {
    const index_t hi = std::min(end, lo + grain);
    group.run([&body, lo, hi] { body(lo, hi); });
  }
  group.wait();
}

/// Deterministic chunked reduction: partial(c) = chunk(lo_c, hi_c) for the
/// fixed chunking of [begin, end) by `grain`, and the result is
/// combine(...combine(combine(init, partial(0)), partial(1))..., in index
/// order regardless of which thread finished first.
template <class T, class ChunkFn, class Combine>
T parallel_reduce(index_t begin, index_t end, index_t grain, T init,
                  ChunkFn&& chunk, Combine&& combine) {
  const index_t n = end - begin;
  if (n <= 0) return init;
  ESRP_CHECK(grain >= 1);
  if (num_threads() == 1 || n <= grain)
    return combine(std::move(init), chunk(begin, end));

  const index_t chunks = (n + grain - 1) / grain;
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  {
    TaskGroup group(global_pool());
    for (index_t c = 0; c < chunks; ++c) {
      const index_t lo = begin + c * grain;
      const index_t hi = std::min(end, lo + grain);
      T* slot = &partials[static_cast<std::size_t>(c)];
      group.run([&chunk, slot, lo, hi] { *slot = chunk(lo, hi); });
    }
    group.wait(); // synchronizes every *slot write with the combine below
  }
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

/// Sum-reduction shorthand (the common case: dot products, norms).
template <class T, class ChunkFn>
T parallel_reduce(index_t begin, index_t end, index_t grain, T init,
                  ChunkFn&& chunk) {
  return parallel_reduce(begin, end, grain, std::move(init),
                         std::forward<ChunkFn>(chunk),
                         [](T a, T b) { return a + b; });
}

} // namespace esrp
