// Execution of the distributed (A)SpMV over the simulated cluster, including
// the capture of redundant copies (paper §2.2.2).
//
// A RedundantCopy is the abstract p' of the paper: the entries of one search
// direction that live on nodes *other than their owner* after an (A)SpMV.
// For a regular SpMV these are exactly the halo entries; the ASpMV adds the
// augmentation traffic so that every entry has at least phi off-owner copies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "comm/aspmv_plan.hpp"
#include "comm/spmv_plan.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// Off-owner copies of one search-direction vector.
class RedundantCopy {
public:
  RedundantCopy() = default;
  RedundantCopy(index_t tag, rank_t num_nodes)
      : tag_(tag), held_(static_cast<std::size_t>(num_nodes)) {}

  index_t tag() const { return tag_; }
  bool valid() const { return tag_ >= 0; }

  /// Record that `holder` received (i, v). Called during the exchange;
  /// `finalize()` must be called before lookups.
  void record(rank_t holder, index_t i, real_t v);

  /// Sort per-holder entry lists and seal each with an FNV-1a content
  /// checksum (idempotent).
  void finalize();

  /// Recompute every surviving holder's checksum and compare against the
  /// seal taken at finalize(). True iff all match — a mismatch means the
  /// stored bytes changed since the exchange (silent corruption of the
  /// redundant state), so this copy must not feed a reconstruction.
  bool verify(std::span<const rank_t> failed) const;

  /// Fault injection: flip `bit` of the stored value of global entry `i` on
  /// its lowest-ranked holder WITHOUT refreshing the checksum seal — the
  /// corruption verify() must later detect. Returns the holder rank, or -1
  /// if no holder stores entry `i`.
  rank_t corrupt(index_t i, int bit);

  /// Entries held by `holder` whose global index lies in the sorted set
  /// `wanted`; used by the recovery gather.
  std::vector<std::pair<index_t, real_t>> held_in(
      rank_t holder, std::span<const index_t> wanted) const;

  /// Value of entry i on the lowest-ranked holder not in `failed`
  /// (deterministic choice of the sending survivor). nullopt if no copy
  /// survived — with a correct plan this means more than phi nodes failed.
  std::optional<std::pair<rank_t, real_t>> find_surviving(
      index_t i, std::span<const rank_t> failed) const;

  /// Number of (holder, entry) pairs stored (diagnostics).
  std::size_t total_entries() const;

  /// Discard everything held by the given ranks — the copies a node failure
  /// destroys along with the node.
  void drop_holders(std::span<const rank_t> ranks);

private:
  std::uint64_t holder_sum(rank_t holder) const;

  index_t tag_ = -1;
  bool finalized_ = false;
  std::vector<std::vector<std::pair<index_t, real_t>>> held_;
  /// Per-holder FNV-1a seals over (index, value) bytes, taken at
  /// finalize(). Per holder (not whole-copy) because drop_holders()
  /// legitimately erases individual holders' lists after a failure — the
  /// surviving holders' seals must stay comparable.
  std::vector<std::uint64_t> sums_;
};

/// Drives halo exchanges and local products for one matrix on one cluster.
/// Owns a per-node global-length scratch vector, so one engine should be
/// reused across iterations.
class ExchangeEngine {
public:
  ExchangeEngine(const CsrMatrix& a, const SpmvPlan& plan, SimCluster& cluster);

  /// y := A p using the regular SpMV. Charges halo messages and local
  /// compute, then completes the superstep. Pass `complete_step = false` to
  /// leave the superstep open so the caller can overlap further work with
  /// it (e.g. the pipelined solver's non-blocking allreduce).
  void spmv(const DistVector& p, DistVector& y, bool complete_step = true);

  /// y := A p using the augmented SpMV: regular halo traffic plus the
  /// augmentation sends of `aug`; every off-owner receipt is captured into
  /// the returned RedundantCopy (tagged with `tag`).
  RedundantCopy aspmv(const AspmvPlan& aug, const DistVector& p, index_t tag,
                      DistVector& y);

  /// Disseminate redundant off-owner copies of `p` per the plan WITHOUT
  /// computing a product — the pipelined solver's ESR storage stage, where
  /// the iteration's SpMV input is m = P w rather than the search direction
  /// the reconstruction needs (ref. [16]). Sends the regular halo lists
  /// plus the augmentation lists (none of it feeds a product), so the
  /// returned copy has the same >= phi off-owner coverage as an aspmv()
  /// capture. All messages are charged as aspmv_extra: on a real cluster
  /// this is pure redundancy traffic that cannot piggyback on an existing
  /// exchange of p. Completes the superstep.
  RedundantCopy disseminate(const AspmvPlan& aug, const DistVector& p,
                            index_t tag);

  const SpmvPlan& plan() const { return *plan_; }

private:
  void scatter_owned(const DistVector& p);
  void halo_exchange(const DistVector& p, RedundantCopy* capture);
  void local_products(DistVector& y);

  const CsrMatrix* a_;
  const SpmvPlan* plan_;
  SimCluster* cluster_;
  std::vector<Vector> scratch_; // [node] -> global-length work vector
};

} // namespace esrp
