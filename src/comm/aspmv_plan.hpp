// Augmentation plan for the ASpMV (paper §2.2.1).
//
// Goal: after one augmented SpMV, every input-vector entry must reside on at
// least phi nodes *other than its owner*, so that any simultaneous failure of
// up to phi nodes leaves at least one copy alive.
//
// Designated destinations are the phi nearest ring neighbors (paper Eq. 1):
//     d_{s,k} = (s + ceil(k/2)) mod N   if k odd
//             = (s - k/2) mod N         if k even.
//
// For each entry i of node s we traverse k = 1..phi and send i to d_{s,k}
// unless (a) the regular SpMV already sends it there, or (b) the number of
// distinct receivers reached so far (regular multiplicity m(i) plus
// augmented sends) already meets phi.
//
// NOTE on the paper's set formula: the printed condition
// `m(i) - g(i) < phi - k` leaves an entry with m(i)=g(i)=0 one copy short of
// the stated "at least phi nodes" guarantee (k = phi yields 0 < 0, false).
// We implement the greedy traversal the surrounding text describes, which
// restores the invariant and never oversends; see DESIGN.md §3.2 and the
// property tests in tests/comm/.
#pragma once

#include <vector>

#include "comm/spmv_plan.hpp"

namespace esrp {

/// Paper Eq. 1: k-th designated destination of node s (k in 1..phi).
rank_t designated_destination(rank_t s, int k, rank_t num_nodes);

/// Strategy for choosing the designated destinations d_{s,k}. The paper
/// uses the ring neighbors of Eq. 1 and notes that placement optimization
/// "taking [sparsity pattern and topology] into consideration" is ongoing
/// work (§2.2.1); halo_affine is one such optimization: it prefers nodes
/// that already receive the most regular SpMV traffic from s, so augmented
/// entries piggyback on existing messages instead of opening new routes.
enum class AspmvPlacement { ring, halo_affine };

class AspmvPlan {
public:
  /// Build the augmentation on top of a regular SpMV plan. `phi >= 1` is the
  /// number of simultaneous node failures to survive; phi must be < N.
  AspmvPlan(const SpmvPlan& base, int phi,
            AspmvPlacement placement = AspmvPlacement::ring);
  /// The plan keeps a reference to `base`; passing a temporary would leave
  /// it dangling.
  AspmvPlan(SpmvPlan&&, int, AspmvPlacement = AspmvPlacement::ring) = delete;

  const SpmvPlan& base() const { return *base_; }
  int phi() const { return phi_; }
  AspmvPlacement placement() const { return placement_; }

  /// The designated destinations d_{s,1..phi} chosen for node s.
  const std::vector<rank_t>& destinations_of(rank_t s) const;

  /// Number of (sender, destination) routes that carry augmentation traffic
  /// but no regular SpMV traffic (new messages a real network would pay a
  /// latency for; halo_affine minimizes these).
  std::size_t new_routes() const;

  /// R^c_{s,k}-style transfer lists of node s: entries sent *in addition* to
  /// the regular SpMV traffic, grouped per designated destination.
  const std::vector<SendList>& extra_sends(rank_t s) const;

  /// All nodes holding a copy of entry i after an ASpMV (regular SpMV
  /// receivers plus augmented destinations; never includes the owner).
  /// Sorted ascending.
  std::vector<rank_t> receivers_of(index_t i) const;

  /// Total extra entries transferred per ASpMV relative to the regular SpMV.
  std::uint64_t total_extra_entries() const;

private:
  const SpmvPlan* base_;
  int phi_;
  AspmvPlacement placement_;
  std::vector<std::vector<SendList>> extra_; // [s] -> per-destination lists
  std::vector<std::vector<rank_t>> dests_;   // [s] -> d_{s,1..phi}
};

} // namespace esrp
