#include "comm/spmv_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

SpmvPlan::SpmvPlan(const CsrMatrix& a, const BlockRowPartition& part)
    : part_(&part) {
  ESRP_CHECK_MSG(a.rows() == a.cols(), "SpMV plan requires a square matrix");
  ESRP_CHECK_MSG(a.rows() == part.global_size(),
                 "matrix size does not match partition");
  const rank_t n_nodes = part.num_nodes();
  const index_t m = a.rows();

  // needed[l] accumulates the off-node column indices of node l's rows.
  std::vector<IndexSet> needed(static_cast<std::size_t>(n_nodes));
  local_nnz_.assign(static_cast<std::size_t>(n_nodes), 0);
  for (rank_t l = 0; l < n_nodes; ++l) {
    const index_t lo = part.begin(l), hi = part.end(l);
    IndexSet& need = needed[static_cast<std::size_t>(l)];
    for (index_t i = lo; i < hi; ++i) {
      local_nnz_[static_cast<std::size_t>(l)] +=
          static_cast<index_t>(a.row_cols(i).size());
      for (index_t j : a.row_cols(i)) {
        if (j < lo || j >= hi) need.push_back(j);
      }
    }
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());
  }
  ghosts_ = needed;

  // Group each receiver's needs by owning node to form I_{s,l}.
  sends_.assign(static_cast<std::size_t>(n_nodes), {});
  multiplicity_.assign(static_cast<std::size_t>(m), 0);
  std::vector<std::vector<IndexSet>> by_owner(
      static_cast<std::size_t>(n_nodes),
      std::vector<IndexSet>(static_cast<std::size_t>(n_nodes)));
  for (rank_t l = 0; l < n_nodes; ++l) {
    for (index_t j : ghosts_[static_cast<std::size_t>(l)]) {
      const rank_t s = part.owner(j);
      by_owner[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)]
          .push_back(j);
      ++multiplicity_[static_cast<std::size_t>(j)];
    }
  }
  for (rank_t s = 0; s < n_nodes; ++s) {
    for (rank_t l = 0; l < n_nodes; ++l) {
      IndexSet& idx = by_owner[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)];
      if (idx.empty()) continue;
      ESRP_CHECK(s != l); // ghosts exclude the receiver's own range
      sends_[static_cast<std::size_t>(s)].push_back(
          SendList{l, std::move(idx)});
    }
  }
}

const std::vector<SendList>& SpmvPlan::sends(rank_t s) const {
  ESRP_CHECK(s >= 0 && s < part_->num_nodes());
  return sends_[static_cast<std::size_t>(s)];
}

const IndexSet& SpmvPlan::send_set(rank_t s, rank_t l) const {
  for (const SendList& sl : sends(s))
    if (sl.to == l) return sl.indices;
  return empty_;
}

const IndexSet& SpmvPlan::ghosts(rank_t l) const {
  ESRP_CHECK(l >= 0 && l < part_->num_nodes());
  return ghosts_[static_cast<std::size_t>(l)];
}

int SpmvPlan::multiplicity(index_t i) const {
  ESRP_CHECK(i >= 0 && i < part_->global_size());
  return multiplicity_[static_cast<std::size_t>(i)];
}

index_t SpmvPlan::local_nnz(rank_t s) const {
  ESRP_CHECK(s >= 0 && s < part_->num_nodes());
  return local_nnz_[static_cast<std::size_t>(s)];
}

std::uint64_t SpmvPlan::total_entries_sent() const {
  std::uint64_t total = 0;
  for (const auto& lists : sends_)
    for (const SendList& sl : lists) total += sl.indices.size();
  return total;
}

bool SpmvPlan::provides_full_redundancy() const {
  return std::all_of(multiplicity_.begin(), multiplicity_.end(),
                     [](int v) { return v >= 1; });
}

} // namespace esrp
