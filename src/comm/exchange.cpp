#include "comm/exchange.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "netsim/failure.hpp"
#include "parallel/parallel.hpp"

namespace esrp {

void RedundantCopy::record(rank_t holder, index_t i, real_t v) {
  ESRP_CHECK(holder >= 0 &&
             holder < static_cast<rank_t>(held_.size()));
  held_[static_cast<std::size_t>(holder)].emplace_back(i, v);
  finalized_ = false;
}

std::uint64_t RedundantCopy::holder_sum(rank_t holder) const {
  const auto& entries = held_[static_cast<std::size_t>(holder)];
  std::uint64_t h = kFnvOffset;
  for (const auto& [i, v] : entries) {
    h = fnv1a(&i, sizeof(i), h);
    h = fnv1a(&v, sizeof(v), h);
  }
  return h;
}

void RedundantCopy::finalize() {
  for (auto& entries : held_) {
    std::sort(entries.begin(), entries.end());
    // The same holder may receive an entry only once per exchange: regular
    // and augmented sends to one destination are disjoint by construction.
    ESRP_CHECK(std::adjacent_find(entries.begin(), entries.end(),
                                  [](const auto& a, const auto& b) {
                                    return a.first == b.first;
                                  }) == entries.end());
  }
  sums_.resize(held_.size());
  for (rank_t h = 0; h < static_cast<rank_t>(held_.size()); ++h)
    sums_[static_cast<std::size_t>(h)] = holder_sum(h);
  finalized_ = true;
}

bool RedundantCopy::verify(std::span<const rank_t> failed) const {
  ESRP_CHECK(finalized_);
  for (rank_t h = 0; h < static_cast<rank_t>(held_.size()); ++h) {
    if (rank_in(failed, h)) continue;
    if (holder_sum(h) != sums_[static_cast<std::size_t>(h)]) return false;
  }
  return true;
}

rank_t RedundantCopy::corrupt(index_t i, int bit) {
  ESRP_CHECK(bit >= 0 && bit < 64);
  for (rank_t h = 0; h < static_cast<rank_t>(held_.size()); ++h) {
    auto& entries = held_[static_cast<std::size_t>(h)];
    for (auto& [idx, v] : entries) {
      if (idx != i) continue;
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(real_t));
      std::memcpy(&bits, &v, sizeof(bits));
      bits ^= (std::uint64_t{1} << bit);
      std::memcpy(&v, &bits, sizeof(bits));
      return h;
    }
  }
  return -1;
}

std::vector<std::pair<index_t, real_t>> RedundantCopy::held_in(
    rank_t holder, std::span<const index_t> wanted) const {
  ESRP_CHECK(finalized_);
  ESRP_CHECK(holder >= 0 && holder < static_cast<rank_t>(held_.size()));
  const auto& entries = held_[static_cast<std::size_t>(holder)];
  std::vector<std::pair<index_t, real_t>> out;
  for (index_t i : wanted) {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), std::make_pair(i, real_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it != entries.end() && it->first == i) out.push_back(*it);
  }
  return out;
}

std::optional<std::pair<rank_t, real_t>> RedundantCopy::find_surviving(
    index_t i, std::span<const rank_t> failed) const {
  ESRP_CHECK(finalized_);
  for (rank_t h = 0; h < static_cast<rank_t>(held_.size()); ++h) {
    if (rank_in(failed, h)) continue;
    const auto& entries = held_[static_cast<std::size_t>(h)];
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), std::make_pair(i, real_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it != entries.end() && it->first == i) return std::make_pair(h, it->second);
  }
  return std::nullopt;
}

std::size_t RedundantCopy::total_entries() const {
  std::size_t n = 0;
  for (const auto& e : held_) n += e.size();
  return n;
}

void RedundantCopy::drop_holders(std::span<const rank_t> ranks) {
  for (rank_t s : ranks) {
    ESRP_CHECK(s >= 0 && s < static_cast<rank_t>(held_.size()));
    held_[static_cast<std::size_t>(s)].clear();
    // Re-seal the emptied list: dropping a holder is a legitimate mutation
    // (the node died, its copies with it), so a later verify() against a
    // different failed set must not misread it as corruption.
    if (finalized_ && s < static_cast<rank_t>(sums_.size()))
      sums_[static_cast<std::size_t>(s)] = kFnvOffset;
  }
}

ExchangeEngine::ExchangeEngine(const CsrMatrix& a, const SpmvPlan& plan,
                               SimCluster& cluster)
    : a_(&a), plan_(&plan), cluster_(&cluster) {
  const BlockRowPartition& part = plan.partition();
  ESRP_CHECK(&part == &cluster.partition());
  scratch_.assign(static_cast<std::size_t>(part.num_nodes()),
                  Vector(static_cast<std::size_t>(part.global_size()), 0));
}

void ExchangeEngine::scatter_owned(const DistVector& p) {
  const BlockRowPartition& part = plan_->partition();
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const auto slice = p.local(s);
    std::copy(slice.begin(), slice.end(),
              scratch_[static_cast<std::size_t>(s)].begin() +
                  static_cast<std::ptrdiff_t>(part.begin(s)));
  }
}

void ExchangeEngine::halo_exchange(const DistVector& p, RedundantCopy* capture) {
  const BlockRowPartition& part = plan_->partition();
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const auto owned = p.local(s);
    const index_t lo = part.begin(s);
    for (const SendList& sl : plan_->sends(s)) {
      cluster_->send(s, sl.to,
                     sl.indices.size() * CostParams::bytes_per_scalar,
                     CommCategory::spmv_halo);
      Vector& dst = scratch_[static_cast<std::size_t>(sl.to)];
      for (index_t i : sl.indices) {
        const real_t v = owned[static_cast<std::size_t>(i - lo)];
        dst[static_cast<std::size_t>(i)] = v;
        if (capture) capture->record(sl.to, i, v);
      }
    }
  }
}

void ExchangeEngine::local_products(DistVector& y) {
  // Each node's product writes only its own slice of y and reads its own
  // scratch vector, so nodes parallelize freely (the halo exchange that
  // filled scratch_ already completed). spmv_rows is called directly: the
  // node slice is the unit of work, no nested row chunking.
  const BlockRowPartition& part = plan_->partition();
  const auto nodes = static_cast<index_t>(part.num_nodes());
  parallel_for(index_t{0}, nodes, adaptive_grain(nodes),
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto s = static_cast<rank_t>(i);
                   a_->spmv_rows(part.begin(s), part.end(s),
                                 scratch_[static_cast<std::size_t>(i)],
                                 y.local(s));
                   cluster_->add_compute(
                       s, 2.0 * static_cast<double>(plan_->local_nnz(s)));
                 }
               });
}

void ExchangeEngine::spmv(const DistVector& p, DistVector& y,
                          bool complete_step) {
  scatter_owned(p);
  halo_exchange(p, nullptr);
  local_products(y);
  if (complete_step) cluster_->complete_step();
}

RedundantCopy ExchangeEngine::aspmv(const AspmvPlan& aug, const DistVector& p,
                                    index_t tag, DistVector& y) {
  const BlockRowPartition& part = plan_->partition();
  ESRP_CHECK(&aug.base() == plan_);
  RedundantCopy copy(tag, part.num_nodes());

  scatter_owned(p);
  halo_exchange(p, &copy);

  // Augmentation traffic: pure redundancy, never read by the local products.
  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const auto owned = p.local(s);
    const index_t lo = part.begin(s);
    for (const SendList& sl : aug.extra_sends(s)) {
      cluster_->send(s, sl.to,
                     sl.indices.size() * CostParams::bytes_per_scalar,
                     CommCategory::aspmv_extra);
      for (index_t i : sl.indices)
        copy.record(sl.to, i, owned[static_cast<std::size_t>(i - lo)]);
    }
  }

  local_products(y);
  cluster_->complete_step();
  copy.finalize();
  return copy;
}

RedundantCopy ExchangeEngine::disseminate(const AspmvPlan& aug,
                                          const DistVector& p, index_t tag) {
  const BlockRowPartition& part = plan_->partition();
  ESRP_CHECK(&aug.base() == plan_);
  RedundantCopy copy(tag, part.num_nodes());

  for (rank_t s = 0; s < part.num_nodes(); ++s) {
    const auto owned = p.local(s);
    const index_t lo = part.begin(s);
    // Halo-list receivers first, then the augmentation top-up — the same
    // coverage an aspmv() capture records, but every send is a dedicated
    // redundancy message here.
    for (const SendList& sl : plan_->sends(s)) {
      cluster_->send(s, sl.to,
                     sl.indices.size() * CostParams::bytes_per_scalar,
                     CommCategory::aspmv_extra);
      for (index_t i : sl.indices)
        copy.record(sl.to, i, owned[static_cast<std::size_t>(i - lo)]);
    }
    for (const SendList& sl : aug.extra_sends(s)) {
      cluster_->send(s, sl.to,
                     sl.indices.size() * CostParams::bytes_per_scalar,
                     CommCategory::aspmv_extra);
      for (index_t i : sl.indices)
        copy.record(sl.to, i, owned[static_cast<std::size_t>(i - lo)]);
    }
  }

  cluster_->complete_step();
  copy.finalize();
  return copy;
}

} // namespace esrp
