#include "comm/aspmv_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esrp {

rank_t designated_destination(rank_t s, int k, rank_t num_nodes) {
  ESRP_CHECK(num_nodes > 0);
  ESRP_CHECK(k >= 1);
  const auto n = static_cast<index_t>(num_nodes);
  index_t d;
  if (k % 2 == 1) {
    d = (static_cast<index_t>(s) + (k + 1) / 2) % n;
  } else {
    d = (static_cast<index_t>(s) - k / 2 % n + n) % n;
  }
  return static_cast<rank_t>(d);
}

namespace {

/// halo_affine destination choice: nodes already receiving the most regular
/// traffic from s first (piggyback), ring order as the tie-break/filler.
std::vector<rank_t> halo_affine_destinations(const SpmvPlan& base, rank_t s,
                                             int phi, rank_t n_nodes) {
  std::vector<rank_t> dests;
  dests.reserve(static_cast<std::size_t>(phi));
  // Regular receivers sorted by descending traffic volume.
  std::vector<std::pair<std::size_t, rank_t>> by_volume;
  by_volume.reserve(base.sends(s).size());
  for (const SendList& sl : base.sends(s))
    by_volume.emplace_back(sl.indices.size(), sl.to);
  std::sort(by_volume.begin(), by_volume.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [volume, to] : by_volume) {
    if (static_cast<int>(dests.size()) == phi) break;
    dests.push_back(to);
  }
  // Fill up with ring neighbors not already chosen.
  for (int k = 1; static_cast<int>(dests.size()) < phi; ++k) {
    const rank_t d = designated_destination(s, k, n_nodes);
    if (std::find(dests.begin(), dests.end(), d) == dests.end())
      dests.push_back(d);
  }
  return dests;
}

} // namespace

AspmvPlan::AspmvPlan(const SpmvPlan& base, int phi, AspmvPlacement placement)
    : base_(&base), phi_(phi), placement_(placement) {
  const BlockRowPartition& part = base.partition();
  const rank_t n_nodes = part.num_nodes();
  ESRP_CHECK_MSG(phi >= 1, "phi must be at least 1");
  ESRP_CHECK_MSG(phi < n_nodes,
                 "phi (" << phi << ") must be smaller than the node count ("
                         << n_nodes << ")");

  extra_.assign(static_cast<std::size_t>(n_nodes), {});
  dests_.assign(static_cast<std::size_t>(n_nodes), {});
  for (rank_t s = 0; s < n_nodes; ++s) {
    // Per-destination accumulation for this sender.
    std::vector<IndexSet> to_dest(static_cast<std::size_t>(phi));
    std::vector<rank_t>& dests = dests_[static_cast<std::size_t>(s)];
    if (placement == AspmvPlacement::ring) {
      dests.resize(static_cast<std::size_t>(phi));
      for (int k = 1; k <= phi; ++k) {
        dests[static_cast<std::size_t>(k - 1)] =
            designated_destination(s, k, n_nodes);
      }
    } else {
      dests = halo_affine_destinations(base, s, phi, n_nodes);
    }
    // The designated destinations d_{s,1..phi} are pairwise distinct and
    // never the owner itself.
    for (int k = 0; k < phi; ++k) ESRP_CHECK(dests[static_cast<std::size_t>(k)] != s);

    for (index_t i = part.begin(s); i < part.end(s); ++i) {
      int reached = base.multiplicity(i); // distinct regular receivers
      if (reached >= phi) continue;
      for (int k = 1; k <= phi && reached < phi; ++k) {
        const rank_t d = dests[static_cast<std::size_t>(k - 1)];
        if (set_contains(base.send_set(s, d), i)) continue; // already regular
        to_dest[static_cast<std::size_t>(k - 1)].push_back(i);
        ++reached;
      }
      ESRP_CHECK_MSG(reached >= phi,
                     "entry " << i << " cannot reach " << phi
                              << " receivers — designated destinations "
                                 "exhausted (phi too close to N?)");
    }

    for (int k = 0; k < phi; ++k) {
      if (to_dest[static_cast<std::size_t>(k)].empty()) continue;
      extra_[static_cast<std::size_t>(s)].push_back(
          SendList{dests[static_cast<std::size_t>(k)],
                   std::move(to_dest[static_cast<std::size_t>(k)])});
    }
  }
}

const std::vector<SendList>& AspmvPlan::extra_sends(rank_t s) const {
  ESRP_CHECK(s >= 0 && s < base_->partition().num_nodes());
  return extra_[static_cast<std::size_t>(s)];
}

const std::vector<rank_t>& AspmvPlan::destinations_of(rank_t s) const {
  ESRP_CHECK(s >= 0 && s < base_->partition().num_nodes());
  return dests_[static_cast<std::size_t>(s)];
}

std::size_t AspmvPlan::new_routes() const {
  std::size_t routes = 0;
  const rank_t n_nodes = base_->partition().num_nodes();
  for (rank_t s = 0; s < n_nodes; ++s) {
    for (const SendList& sl : extra_sends(s)) {
      if (base_->send_set(s, sl.to).empty()) ++routes;
    }
  }
  return routes;
}

std::vector<rank_t> AspmvPlan::receivers_of(index_t i) const {
  const BlockRowPartition& part = base_->partition();
  const rank_t s = part.owner(i);
  std::vector<rank_t> out;
  for (const SendList& sl : base_->sends(s))
    if (set_contains(sl.indices, i)) out.push_back(sl.to);
  for (const SendList& sl : extra_sends(s))
    if (set_contains(sl.indices, i)) out.push_back(sl.to);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t AspmvPlan::total_extra_entries() const {
  std::uint64_t total = 0;
  for (const auto& lists : extra_)
    for (const SendList& sl : lists) total += sl.indices.size();
  return total;
}

} // namespace esrp
