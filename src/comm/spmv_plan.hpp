// Communication plan for the distributed sparse matrix-vector product.
//
// With block-row distribution, computing y = A p on node l requires the
// entries of p at every column index that appears in l's rows. The plan
// precomputes, for every ordered node pair (s, l), the set I_{s,l} of indices
// owned by s that l needs (paper §2.2). The plan is static: it depends only
// on the sparsity pattern and the partition, and is built once per solve.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "partition/index_set.hpp"
#include "partition/partition.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// One sender->receiver transfer list.
struct SendList {
  rank_t to = -1;
  IndexSet indices; ///< global indices owned by the sender
};

class SpmvPlan {
public:
  SpmvPlan(const CsrMatrix& a, const BlockRowPartition& part);

  const BlockRowPartition& partition() const { return *part_; }

  /// Transfer lists of node s (I_{s,l} for every l with a non-empty set),
  /// ordered by receiver rank.
  const std::vector<SendList>& sends(rank_t s) const;

  /// I_{s,l}: indices node s must send to node l (empty if none).
  const IndexSet& send_set(rank_t s, rank_t l) const;

  /// All ghost indices node l receives (union over senders), sorted.
  const IndexSet& ghosts(rank_t l) const;

  /// m(i): number of *other* nodes the regular SpMV sends entry i to.
  int multiplicity(index_t i) const;

  /// Number of nonzeros in the rows owned by `s` (flops = 2x this).
  index_t local_nnz(rank_t s) const;

  /// Total entries transferred per SpMV over all node pairs.
  std::uint64_t total_entries_sent() const;

  /// Paper §2.2: the regular SpMV provides full single-failure redundancy
  /// iff every entry is sent to at least one other node (m(i) >= 1 for all
  /// i). Most matrices fail this — hence the ASpMV.
  bool provides_full_redundancy() const;

private:
  const BlockRowPartition* part_;
  std::vector<std::vector<SendList>> sends_;   // [s] -> lists
  std::vector<IndexSet> ghosts_;               // [l] -> ghost indices
  std::vector<int> multiplicity_;              // [i]
  std::vector<index_t> local_nnz_;             // [s]
  IndexSet empty_;
};

} // namespace esrp
