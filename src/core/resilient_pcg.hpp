// Distributed PCG with algorithm-based checkpoint-recovery — the paper's
// Alg. 3 plus the failure-injection and recovery protocol of §4.
//
// The resilience machinery itself — strategy state (redundancy queue +
// storage stages for ESRP, buddy checkpoints for IMCR), failure-event
// scheduling, and recovery orchestration including the no-spare path — is
// the solver-agnostic ResilienceEngine (resilience/engine.hpp); this solver
// is its first client and contributes only what is specific to the classic
// CG recurrences: the solve loop, and the Alg. 2 reconstruction hook
// (z from the p-recurrence inversion, then r and x by inner solves —
// core/reconstruction.hpp). The Strategy enum and the shared
// ResilienceOptions / RecoveryRecord types live in resilience/options.hpp;
// the pipelined solver (pipelined/dist_pipelined_pcg.hpp) consumes the very
// same surface.
//
// Failure model (paper §4/§5): at the marked iteration the affected ranks
// zero all their dynamic data (vector slices and scalars) and then act as
// their own replacement nodes. The event is injected after the
// SpMV/storage phase of the marked iteration, before the alpha update.
// Static data (A, P, b) is assumed reloadable from safe storage and its
// reload is not charged, as in the paper. The paper injects one event per
// run; ResilienceOptions::extra_failures schedules repeated recoveries.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "comm/aspmv_plan.hpp"
#include "comm/exchange.hpp"
#include "comm/spmv_plan.hpp"
#include "core/reconstruction.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "netsim/failure.hpp"
#include "precond/preconditioner.hpp"
#include "resilience/engine.hpp"
#include "resilience/options.hpp"
#include "sparse/csr.hpp"

namespace esrp {

struct ResilientSolveResult {
  bool converged = false;
  index_t trajectory_iterations = 0; ///< iteration index at convergence
  index_t executed_iterations = 0;   ///< bodies executed incl. redone ones
  real_t final_relres = 0;
  double modeled_time = 0;           ///< cluster modeled time of this solve
  double wall_seconds = 0;           ///< host wall time (reference only)
  std::vector<RecoveryRecord> recoveries;
  std::vector<SdcRecord> sdc;        ///< one record per injected bit-flip
  Vector x; ///< gathered solution
  Vector r; ///< gathered recursive residual (for the drift metric, Eq. 2)
};

/// Hook invoked at the top of every iteration body (before the SpMV phase):
/// (j, x, r, z, p). Used by tests to snapshot the exact solver state.
using IterationHook = std::function<void(index_t, const DistVector&,
                                         const DistVector&, const DistVector&,
                                         const DistVector&)>;

class ResilientPcg {
public:
  /// `precond` must outlive the solver and must expose an explicit action
  /// matrix whose rows are node-local (block Jacobi qualifies); this is
  /// required by both the distributed application and the reconstruction.
  ///
  /// `shared_plan` / `shared_aug` (optional, service layer) inject plans a
  /// prepared ProblemHandle already built for this (matrix, partition, phi):
  /// the solver borrows instead of rebuilding — they must outlive it, be
  /// built on `cluster.partition()`, and (for the aug plan) carry
  /// `opts.phi`. Plans are deterministic functions of those inputs, so
  /// borrowed and freshly built plans are interchangeable bitwise. After a
  /// no-spare repartition the solver switches to its own rebuilt plans.
  ResilientPcg(const CsrMatrix& a, const Preconditioner& precond,
               SimCluster& cluster, ResilienceOptions opts,
               const SpmvPlan* shared_plan = nullptr,
               const AspmvPlan* shared_aug = nullptr);

  /// Solve A x = b from the zero initial guess (or `x0` when given).
  ResilientSolveResult solve(std::span<const real_t> b,
                             std::span<const real_t> x0 = {});

  void set_iteration_hook(IterationHook hook) { hook_ = std::move(hook); }

  /// Lightweight progress callback (j, ||r||_2 / ||b||_2), invoked once
  /// per executed iteration body plus the final converging check — and not
  /// on a bare iteration-cap exit — matching the sequential solvers'
  /// IterationCallback contract. The facade's SolverObserver::on_iteration
  /// rides on this.
  void set_progress_callback(std::function<void(index_t, real_t)> cb) {
    progress_ = std::move(cb);
  }
  /// Invoked when a failure event fires, before any recovery work.
  void set_failure_callback(std::function<void(const FailureEvent&)> cb) {
    resilience_.set_failure_callback(std::move(cb));
  }
  /// Invoked after each completed recovery (reconstruction, restore, or
  /// scratch restart) with the finished record.
  void set_recovery_callback(std::function<void(const RecoveryRecord&)> cb) {
    resilience_.set_recovery_callback(std::move(cb));
  }
  /// Invoked when an SdcEvent fires (the bit has just been flipped; the
  /// record's detection fields are filled in later as checks run).
  void set_sdc_callback(std::function<void(const SdcRecord&)> cb) {
    sdc_callback_ = std::move(cb);
  }

  const ResilienceOptions& options() const { return opts_; }
  const SpmvPlan& spmv_plan() const { return *plan_; }
  const AspmvPlan& aspmv_plan() const { return *aug_; }

  /// Partition currently in effect (differs from the construction-time
  /// partition after a no-spare recovery).
  const BlockRowPartition& current_partition() const {
    return cluster_->partition();
  }

  /// Introspection for tests: the redundancy-queue tags (oldest first) as of
  /// the end of the last solve.
  std::vector<index_t> queue_tags() const { return resilience_.queue_tags(); }
  /// Latest reconstructable iteration (-1 if none) after the last solve.
  index_t last_recoverable() const { return resilience_.last_recoverable(); }

private:
  // Distributed primitives (all charge the cost model).
  real_t dot(const DistVector& a, const DistVector& b);
  std::pair<real_t, real_t> dot2(const DistVector& a, const DistVector& b,
                                 const DistVector& c, const DistVector& d);
  /// Fused pair y1 += a1 x1; y2 += a2 x2 — one sweep over every node's
  /// slices instead of two (the x/r update of the CG body).
  void axpy2(DistVector& y1, real_t a1, const DistVector& x1, DistVector& y2,
             real_t a2, const DistVector& x2);
  void xpby(DistVector& y, const DistVector& x, real_t beta);
  void apply_precond(const DistVector& r, DistVector& z);

  void initialize_state(std::span<const real_t> b, std::span<const real_t> x0);

  /// Fire any not-yet-injected SdcEvent scheduled for iteration `j`:
  /// flip the bit in the owner's slice and append a record to `result`.
  void inject_sdc(index_t j, ResilientSolveResult& result);

  /// The SolverState contract with the resilience engine: live vectors
  /// {x, r, z, p}, scratch {ap}, scalars {beta}.
  SolverState solver_state();

  /// Rebuild plans, engine, preconditioner blocks and state vectors on the
  /// repartitioned cluster (no-spare / shrink recovery; the resilience
  /// engine migrates its own snapshots around this hook).
  void repartition(std::span<const rank_t> failed);

  /// Rejoin hook: re-expand onto the construction-time partition — retired
  /// ranks come back and the live state is redistributed exactly.
  void rejoin_full_cluster();

  /// Shared tail of repartition()/rejoin_full_cluster(): point the cluster
  /// at `np`, rebuild every partition-dependent structure, and re-seat the
  /// gathered live state.
  void rebuild_on_partition(const BlockRowPartition& np, const Vector& xg,
                            const Vector& rg, const Vector& zg,
                            const Vector& pg);

  /// ESRP reconstruction hook (Alg. 2): rebuild the failed entries at the
  /// star snapshot from the two consecutive redundant copies and roll the
  /// live state back to the repaired snapshot.
  bool reconstruct_lost(StateSnapshot& stars, const RedundantCopy& prev,
                        const RedundantCopy& cur,
                        std::span<const rank_t> failed,
                        std::span<const real_t> b, RecoveryRecord& record);

  void build_precond_blocks();

  const CsrMatrix* a_;
  const Preconditioner* precond_;
  SimCluster* cluster_;
  ResilienceOptions opts_;
  /// Construction-time partition (caller-owned, outlives the solver): the
  /// rejoin rung re-expands back onto it.
  const BlockRowPartition* orig_part_ = nullptr;
  std::unique_ptr<BlockRowPartition> owned_part_; ///< set after repartition
  // Plans: borrowed from a prepared handle, or owned. `plan_`/`aug_` are
  // the single source of truth; the unique_ptrs are only set when this
  // solver built (or rebuilt, after repartition) the plans itself.
  std::unique_ptr<SpmvPlan> owned_plan_;
  std::unique_ptr<AspmvPlan> owned_aug_;
  const SpmvPlan* plan_ = nullptr;
  const AspmvPlan* aug_ = nullptr;
  std::unique_ptr<ExchangeEngine> engine_;
  ResilienceEngine resilience_;
  std::vector<CsrMatrix> precond_local_; ///< node-diagonal blocks of P

  // Solver state (valid during solve()).
  std::unique_ptr<DistVector> x_, r_, z_, p_, ap_;
  real_t beta_ = 0;
  real_t beta_dstar_ = 0; ///< the paper's beta**, captured at mT

  IterationHook hook_;
  std::function<void(index_t, real_t)> progress_;
  std::function<void(const SdcRecord&)> sdc_callback_;
  std::vector<char> sdc_fired_; ///< one-shot flags, parallel to sdc_events
};

} // namespace esrp
