// Distributed PCG with algorithm-based checkpoint-recovery — the paper's
// Alg. 3 plus the failure-injection and recovery protocol of §4.
//
// Strategies:
//   none — plain distributed PCG (the reference run; a failure without a
//          recovery mechanism restarts the solver from scratch);
//   esrp — exact state reconstruction with periodic storage. interval T = 1
//          is classic per-iteration ESR; T >= 3 stores redundant copies in
//          two consecutive ASpMV iterations every T iterations (the storage
//          stage) and keeps a three-slot redundancy queue;
//   imcr — in-memory buddy checkpoint-restart every T iterations.
//
// Failure model (paper §4/§5): one failure event per run; at the marked
// iteration the affected ranks zero all their dynamic data (vector slices
// and scalars) and then act as their own replacement nodes. The event is
// injected after the SpMV/storage phase of the marked iteration, before the
// alpha update. Static data (A, P, b) is assumed reloadable from safe
// storage and its reload is not charged, as in the paper.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "comm/aspmv_plan.hpp"
#include "comm/exchange.hpp"
#include "comm/spmv_plan.hpp"
#include "core/checkpoint_store.hpp"
#include "core/reconstruction.hpp"
#include "core/redundancy_queue.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "netsim/failure.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace esrp {

enum class Strategy { none, esrp, imcr };

std::string to_string(Strategy s);

/// Inverse of to_string(Strategy): "none" | "esrp" | "imcr". Throws
/// esrp::Error on anything else, naming the valid spellings.
Strategy strategy_from_string(std::string_view name);

struct ResilienceOptions {
  Strategy strategy = Strategy::none;
  index_t interval = 1;        ///< T, the checkpointing interval
  int phi = 1;                 ///< redundant copies / supported failures
  std::size_t queue_capacity = 3; ///< ESRP redundancy-queue slots
  real_t rtol = 1e-8;          ///< convergence: ||r||_2 / ||b||_2 < rtol
  index_t max_iterations = 200000; ///< cap on executed iteration bodies
  real_t inner_rtol = 1e-14;   ///< reconstruction inner-solve tolerance
  index_t inner_max_iterations = 0;
  index_t inner_block_size = 10;
  /// How the preconditioner enters Alg. 2 (paper reference [20]). The
  /// matrix formulation needs Preconditioner::matrix_form() and skips the
  /// P_{I_f,I_f} inner solve.
  PrecondFormulation precond_formulation = PrecondFormulation::inverse;
  /// With spare nodes (default, the paper's setting) the failed ranks act
  /// as their own replacements. Without spares (paper §4 / reference [22],
  /// ESRP only) the nearest surviving neighbors absorb the failed ranks'
  /// index ranges after the reconstruction and the solve continues on the
  /// repartitioned cluster; the retired ranks stay idle.
  bool spare_nodes = true;
  /// Periodically recompute r = b - A x explicitly every this many
  /// iterations (0 = never). Residual replacement (the paper's reference
  /// [27]) counters the drift between the recursive and the true residual
  /// that the Eq. 2 metric measures.
  index_t residual_replacement = 0;
  FailureEvent failure; ///< convenience single event (paper §5 protocol)
  /// Additional failure events. Each event fires once, at the first
  /// execution of its iteration; events must have pairwise distinct
  /// iterations. The paper injects exactly one event per run; multiple
  /// events exercise repeated recoveries (redundancy is replenished by the
  /// following storage stages / checkpoints).
  std::vector<FailureEvent> extra_failures;
};

struct RecoveryRecord {
  index_t failed_at = -1;      ///< iteration of the failure event
  index_t restored_to = -1;    ///< iteration the solver resumed from
  index_t wasted_iterations = 0; ///< failed_at - restored_to
  double modeled_time = 0;     ///< modeled time of the recovery itself
  index_t inner_iterations_precond = 0;
  index_t inner_iterations_matrix = 0;
  bool restarted_from_scratch = false; ///< no recoverable state existed
};

struct ResilientSolveResult {
  bool converged = false;
  index_t trajectory_iterations = 0; ///< iteration index at convergence
  index_t executed_iterations = 0;   ///< bodies executed incl. redone ones
  real_t final_relres = 0;
  double modeled_time = 0;           ///< cluster modeled time of this solve
  double wall_seconds = 0;           ///< host wall time (reference only)
  std::vector<RecoveryRecord> recoveries;
  Vector x; ///< gathered solution
  Vector r; ///< gathered recursive residual (for the drift metric, Eq. 2)
};

/// Hook invoked at the top of every iteration body (before the SpMV phase):
/// (j, x, r, z, p). Used by tests to snapshot the exact solver state.
using IterationHook = std::function<void(index_t, const DistVector&,
                                         const DistVector&, const DistVector&,
                                         const DistVector&)>;

class ResilientPcg {
public:
  /// `precond` must outlive the solver and must expose an explicit action
  /// matrix whose rows are node-local (block Jacobi qualifies); this is
  /// required by both the distributed application and the reconstruction.
  ResilientPcg(const CsrMatrix& a, const Preconditioner& precond,
               SimCluster& cluster, ResilienceOptions opts);

  /// Solve A x = b from the zero initial guess (or `x0` when given).
  ResilientSolveResult solve(std::span<const real_t> b,
                             std::span<const real_t> x0 = {});

  void set_iteration_hook(IterationHook hook) { hook_ = std::move(hook); }

  /// Lightweight progress callback (j, ||r||_2 / ||b||_2), invoked once
  /// per executed iteration body plus the final converging check — and not
  /// on a bare iteration-cap exit — matching the sequential solvers'
  /// IterationCallback contract. The facade's SolverObserver::on_iteration
  /// rides on this.
  void set_progress_callback(std::function<void(index_t, real_t)> cb) {
    progress_ = std::move(cb);
  }
  /// Invoked when a failure event fires, before any recovery work.
  void set_failure_callback(std::function<void(const FailureEvent&)> cb) {
    on_failure_ = std::move(cb);
  }
  /// Invoked after each completed recovery (reconstruction, restore, or
  /// scratch restart) with the finished record.
  void set_recovery_callback(std::function<void(const RecoveryRecord&)> cb) {
    on_recovery_ = std::move(cb);
  }

  const ResilienceOptions& options() const { return opts_; }
  const SpmvPlan& spmv_plan() const { return *plan_; }
  const AspmvPlan& aspmv_plan() const { return *aug_; }

  /// Partition currently in effect (differs from the construction-time
  /// partition after a no-spare recovery).
  const BlockRowPartition& current_partition() const {
    return cluster_->partition();
  }

  /// Introspection for tests: the redundancy-queue tags (oldest first) as of
  /// the end of the last solve.
  std::vector<index_t> queue_tags() const { return queue_.tags(); }
  /// Latest reconstructable iteration (-1 if none) after the last solve.
  index_t last_recoverable() const { return last_recoverable_; }

private:
  struct StarCopies {
    explicit StarCopies(const BlockRowPartition& part)
        : x(part), r(part), z(part), p(part) {}
    index_t tag = -1;
    DistVector x, r, z, p;
  };

  // Distributed primitives (all charge the cost model).
  real_t dot(const DistVector& a, const DistVector& b);
  std::pair<real_t, real_t> dot2(const DistVector& a, const DistVector& b,
                                 const DistVector& c, const DistVector& d);
  /// Fused pair y1 += a1 x1; y2 += a2 x2 — one sweep over every node's
  /// slices instead of two (the x/r update of the CG body).
  void axpy2(DistVector& y1, real_t a1, const DistVector& x1, DistVector& y2,
             real_t a2, const DistVector& x2);
  void xpby(DistVector& y, const DistVector& x, real_t beta);
  void apply_precond(const DistVector& r, DistVector& z);

  void initialize_state(std::span<const real_t> b, std::span<const real_t> x0);
  void write_lost_entries(DistVector& v, std::span<const index_t> lost,
                          std::span<const real_t> values);

  /// Rebuild plans, engine, preconditioner blocks and state vectors on the
  /// repartitioned cluster (no-spare recovery).
  void repartition(std::span<const rank_t> failed);

  /// Inject one failure event at iteration j_fail and recover.
  /// Returns the iteration to resume from.
  index_t inject_and_recover(const FailureEvent& event, index_t j_fail,
                             std::span<const real_t> b,
                             std::span<const real_t> x0,
                             RecoveryRecord& record);

  void build_precond_blocks();

  const CsrMatrix* a_;
  const Preconditioner* precond_;
  SimCluster* cluster_;
  ResilienceOptions opts_;
  std::unique_ptr<BlockRowPartition> owned_part_; ///< set after repartition
  std::unique_ptr<SpmvPlan> plan_;
  std::unique_ptr<AspmvPlan> aug_;
  std::unique_ptr<ExchangeEngine> engine_;
  std::vector<CsrMatrix> precond_local_; ///< node-diagonal blocks of P

  // Solver state (valid during solve()).
  std::unique_ptr<DistVector> x_, r_, z_, p_, ap_;
  real_t beta_ = 0;

  // Resilience state.
  RedundancyQueue queue_;
  std::unique_ptr<StarCopies> stars_;
  real_t beta_star_ = 0;
  real_t beta_dstar_ = 0; ///< the paper's beta**, captured at mT
  index_t last_recoverable_ = -1;
  std::unique_ptr<CheckpointStore> checkpoint_;
  std::vector<FailureEvent> events_; ///< merged failure + extra_failures

  IterationHook hook_;
  std::function<void(index_t, real_t)> progress_;
  std::function<void(const FailureEvent&)> on_failure_;
  std::function<void(const RecoveryRecord&)> on_recovery_;
};

} // namespace esrp
