#include "core/reconstruction.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/vec.hpp"
#include "netsim/failure.hpp"
#include "precond/block_jacobi.hpp"
#include "solver/pcg.hpp"

namespace esrp {

std::string to_string(PrecondFormulation f) {
  switch (f) {
    case PrecondFormulation::inverse: return "inverse";
    case PrecondFormulation::matrix: return "matrix";
  }
  return "?";
}

PrecondFormulation formulation_from_string(std::string_view name) {
  if (name == "inverse") return PrecondFormulation::inverse;
  if (name == "matrix") return PrecondFormulation::matrix;
  throw Error("unknown preconditioner formulation \"" + std::string(name) +
              "\" (valid: inverse, matrix)");
}

namespace {

/// Gather the I_f entries of a redundant copy into a compact vector ordered
/// like `lost`. Charges one recovery message per (holder, replacement) pair.
/// Returns false if any entry has no surviving copy.
bool gather_copy(const RedundantCopy& copy, std::span<const index_t> lost,
                 const BlockRowPartition& part, std::span<const rank_t> failed,
                 SimCluster& cluster, Vector& out) {
  out.assign(lost.size(), 0);
  std::map<std::pair<rank_t, rank_t>, std::size_t> batch; // (holder, repl) -> n
  for (std::size_t k = 0; k < lost.size(); ++k) {
    const index_t i = lost[k];
    const auto hit = copy.find_surviving(i, failed);
    if (!hit) return false;
    out[k] = hit->second;
    ++batch[{hit->first, part.owner(i)}];
  }
  for (const auto& [pair, count] : batch) {
    cluster.send(pair.first, pair.second,
                 count * CostParams::bytes_per_scalar, CommCategory::recovery);
  }
  return true;
}

/// Charge the gather of surviving-vector entries the replacement nodes need
/// to multiply rows I_f of `m` with the surviving part of a vector: one
/// message per (owner, replacement) pair covering the distinct off-I_f
/// columns referenced.
void charge_offblock_gather(const CsrMatrix& m, std::span<const index_t> lost,
                            const BlockRowPartition& part,
                            SimCluster& cluster) {
  std::map<std::pair<rank_t, rank_t>, std::vector<index_t>> needed;
  for (index_t i : lost) {
    const rank_t repl = part.owner(i);
    for (index_t j : m.row_cols(i)) {
      if (set_contains(lost, j)) continue;
      needed[{part.owner(j), repl}].push_back(j);
    }
  }
  for (auto& [pair, cols] : needed) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    cluster.send(pair.first, pair.second,
                 cols.size() * CostParams::bytes_per_scalar,
                 CommCategory::recovery);
  }
}

/// Compact vector of surviving entries (complement of `lost`), taken from a
/// rolled-back distributed vector.
Vector surviving_compact(const DistVector& v, std::span<const index_t> lost) {
  const Vector global = v.gather_global();
  Vector out;
  out.reserve(global.size() - lost.size());
  std::size_t k = 0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    if (k < lost.size() && lost[k] == static_cast<index_t>(i)) {
      ++k;
    } else {
      out.push_back(global[i]);
    }
  }
  return out;
}

struct InnerSolve {
  Vector solution;
  index_t iterations = 0;
  double flops = 0;
};

/// Inner solve M y = rhs with block-Jacobi-preconditioned PCG at the
/// reconstruction tolerance.
InnerSolve inner_solve(const CsrMatrix& m, std::span<const real_t> rhs,
                       real_t rtol, index_t max_iterations,
                       index_t block_size) {
  InnerSolve out;
  out.solution.assign(rhs.size(), 0);
  BlockJacobiPreconditioner precond(m, block_size);
  PcgOptions opts;
  opts.rtol = rtol;
  opts.max_iterations = max_iterations;
  const PcgResult res = pcg_solve(m, rhs, out.solution, &precond, opts);
  ESRP_CHECK_MSG(res.converged, "inner reconstruction solve did not reach "
                                    << rtol << " within "
                                    << res.iterations << " iterations");
  out.iterations = res.iterations;
  out.flops = res.flops;
  return out;
}

} // namespace

ReconstructionOutput reconstruct_state(const ReconstructionInputs& in,
                                       SimCluster& cluster) {
  ESRP_CHECK(in.a && in.p_action && in.part && in.x_star && in.r_star);
  ESRP_CHECK(in.p_prev && in.p_cur);
  ESRP_CHECK(in.p_cur->tag() == in.p_prev->tag() + 1);
  const BlockRowPartition& part = *in.part;
  ESRP_CHECK(static_cast<index_t>(in.b_global.size()) == part.global_size());

  ReconstructionOutput out;
  out.lost = part.owned_by(in.failed);
  const IndexSet& lost = out.lost;
  const std::size_t nf = lost.size();
  ESRP_CHECK_MSG(!in.failed.empty() && nf > 0, "no failed data to reconstruct");
  const auto num_failed = static_cast<double>(in.failed.size());

  // Step 3: retrieve beta* and the two redundant search-direction copies.
  const std::vector<rank_t> survivors =
      surviving_ranks(in.failed, part.num_nodes());
  ESRP_CHECK_MSG(!survivors.empty(), "all nodes failed — unrecoverable");
  for (rank_t repl : in.failed)
    cluster.send(survivors.front(), repl, CostParams::bytes_per_scalar,
                 CommCategory::recovery);

  Vector p_prev_f, p_cur_f;
  if (!gather_copy(*in.p_prev, lost, part, in.failed, cluster, p_prev_f) ||
      !gather_copy(*in.p_cur, lost, part, in.failed, cluster, p_cur_f)) {
    return out; // ok = false: redundancy destroyed (more than phi failures)
  }
  out.p_f = p_cur_f;
  out.p_prev_f = p_prev_f;

  // Step 4: z_f = p_f - beta* p_prev_f.
  out.z_f.assign(nf, 0);
  for (std::size_t k = 0; k < nf; ++k)
    out.z_f[k] = p_cur_f[k] - in.beta_prev * p_prev_f[k];
  out.flops += 2.0 * static_cast<double>(nf);

  if (in.formulation == PrecondFormulation::inverse) {
    // Step 5: v = z_f - P_{I_f, I\I_f} r_{I\I_f}.
    const CsrMatrix p_fc = in.p_action->extract_excluding_cols(lost, lost);
    charge_offblock_gather(*in.p_action, lost, part, cluster);
    Vector v = out.z_f;
    if (p_fc.nnz() > 0) {
      const Vector r_c = surviving_compact(*in.r_star, lost);
      Vector tmp(nf);
      p_fc.spmv(r_c, tmp);
      for (std::size_t k = 0; k < nf; ++k) v[k] -= tmp[k];
      out.flops += static_cast<double>(p_fc.spmv_flops()) +
                   static_cast<double>(nf);
    }

    // Step 6: solve P_{I_f,I_f} r_f = v.
    const CsrMatrix p_ff = in.p_action->extract(lost, lost);
    const InnerSolve r_solve = inner_solve(p_ff, v, in.inner_rtol,
                                           in.inner_max_iterations,
                                           in.inner_block_size);
    out.r_f = r_solve.solution;
    out.inner_iterations_precond = r_solve.iterations;
    out.flops += r_solve.flops;
  } else {
    // Matrix formulation ([20]): r = M z is available directly, so
    // r_f = M_{I_f,I_f} z_f + M_{I_f,I\I_f} z_{I\I_f} — no inner solve.
    ESRP_CHECK_MSG(in.p_matrix && in.z_star,
                   "matrix formulation requires p_matrix and z_star");
    const CsrMatrix m_ff = in.p_matrix->extract(lost, lost);
    const CsrMatrix m_fc = in.p_matrix->extract_excluding_cols(lost, lost);
    charge_offblock_gather(*in.p_matrix, lost, part, cluster);
    out.r_f.assign(nf, 0);
    m_ff.spmv(out.z_f, out.r_f);
    if (m_fc.nnz() > 0) {
      const Vector z_c = surviving_compact(*in.z_star, lost);
      Vector tmp(nf);
      m_fc.spmv(z_c, tmp);
      for (std::size_t k = 0; k < nf; ++k) out.r_f[k] += tmp[k];
      out.flops += static_cast<double>(m_fc.spmv_flops());
    }
    out.flops += static_cast<double>(m_ff.spmv_flops());
  }

  // Step 7: w = b_f - r_f - A_{I_f, I\I_f} x_{I\I_f}.
  const CsrMatrix a_fc = in.a->extract_excluding_cols(lost, lost);
  charge_offblock_gather(*in.a, lost, part, cluster);
  const Vector x_c = surviving_compact(*in.x_star, lost);
  Vector w(nf);
  a_fc.spmv(x_c, w);
  for (std::size_t k = 0; k < nf; ++k)
    w[k] = in.b_global[static_cast<std::size_t>(lost[k])] - out.r_f[k] - w[k];
  out.flops += static_cast<double>(a_fc.spmv_flops()) +
               2.0 * static_cast<double>(nf);

  // Step 8: solve A_{I_f,I_f} x_f = w.
  const CsrMatrix a_ff = in.a->extract(lost, lost);
  const InnerSolve x_solve = inner_solve(a_ff, w, in.inner_rtol,
                                         in.inner_max_iterations,
                                         in.inner_block_size);
  out.x_f = x_solve.solution;
  out.inner_iterations_matrix = x_solve.iterations;
  out.flops += x_solve.flops;

  // Charge the reconstruction compute, spread over the replacement nodes,
  // plus the inner-solve collectives on the replacement subgroup.
  for (rank_t repl : in.failed)
    cluster.add_compute(repl, out.flops / num_failed);
  const double inner_iters = static_cast<double>(out.inner_iterations_precond +
                                                 out.inner_iterations_matrix);
  cluster.charge_time(inner_iters *
                      allreduce_time(cluster.cost_params(),
                                     static_cast<rank_t>(in.failed.size()),
                                     2 * CostParams::bytes_per_scalar));
  out.ok = true;
  return out;
}

Vector reconstruct_row_product(const CsrMatrix& m, const IndexSet& lost,
                               const BlockRowPartition& part,
                               std::span<const real_t> v_f,
                               const DistVector& v_star, SimCluster& cluster,
                               double& flops) {
  ESRP_CHECK(v_f.size() == lost.size());
  const std::size_t nf = lost.size();
  const CsrMatrix m_ff = m.extract(lost, lost);
  const CsrMatrix m_fc = m.extract_excluding_cols(lost, lost);
  charge_offblock_gather(m, lost, part, cluster);

  Vector out(nf, 0);
  m_ff.spmv(v_f, out);
  flops += static_cast<double>(m_ff.spmv_flops());
  if (m_fc.nnz() > 0) {
    const Vector v_c = surviving_compact(v_star, lost);
    Vector tmp(nf);
    m_fc.spmv(v_c, tmp);
    for (std::size_t k = 0; k < nf; ++k) out[k] += tmp[k];
    flops += static_cast<double>(m_fc.spmv_flops()) + static_cast<double>(nf);
  }
  return out;
}

} // namespace esrp
