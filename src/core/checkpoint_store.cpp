#include "core/checkpoint_store.hpp"

#include "comm/aspmv_plan.hpp"
#include "common/error.hpp"

namespace esrp {

CheckpointStore::CheckpointStore(const BlockRowPartition& part, int phi)
    : part_(&part), phi_(phi), x_(part), r_(part), z_(part), p_(part) {
  ESRP_CHECK(phi >= 1 && phi < part.num_nodes());
}

void CheckpointStore::store(index_t iteration, const DistVector& x,
                            const DistVector& r, const DistVector& z,
                            const DistVector& p, real_t beta,
                            SimCluster& cluster) {
  tag_ = iteration;
  x_.copy_from(x);
  r_.copy_from(r);
  z_.copy_from(z);
  p_.copy_from(p);
  beta_ = beta;

  const rank_t n_nodes = part_->num_nodes();
  for (rank_t s = 0; s < n_nodes; ++s) {
    const std::size_t bytes =
        (4 * static_cast<std::size_t>(part_->local_size(s)) + 1) *
        CostParams::bytes_per_scalar;
    for (int k = 1; k <= phi_; ++k) {
      cluster.send(s, designated_destination(s, k, n_nodes), bytes,
                   CommCategory::checkpoint);
    }
  }
  cluster.complete_step();
}

std::optional<rank_t> CheckpointStore::surviving_buddy(
    rank_t rank, std::span<const rank_t> failed) const {
  for (int k = 1; k <= phi_; ++k) {
    const rank_t d = designated_destination(rank, k, part_->num_nodes());
    if (!rank_in(failed, d)) return d;
  }
  return std::nullopt;
}

bool CheckpointStore::restore(std::span<const rank_t> failed, DistVector& x,
                              DistVector& r, DistVector& z, DistVector& p,
                              real_t& beta, SimCluster& cluster) const {
  ESRP_CHECK(has_checkpoint());
  for (rank_t s : failed) {
    if (!surviving_buddy(s, failed)) return false;
  }

  // Survivors roll back from their local copies (no messages); replacements
  // fetch their slices from a surviving buddy.
  x.copy_from(x_);
  r.copy_from(r_);
  z.copy_from(z_);
  p.copy_from(p_);
  beta = beta_;
  for (rank_t s : failed) {
    const rank_t buddy = *surviving_buddy(s, failed);
    const std::size_t bytes =
        (4 * static_cast<std::size_t>(part_->local_size(s)) + 1) *
        CostParams::bytes_per_scalar;
    cluster.send(buddy, s, bytes, CommCategory::recovery);
  }
  cluster.complete_step();
  return true;
}

} // namespace esrp
