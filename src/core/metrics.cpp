#include "core/metrics.hpp"

#include "common/error.hpp"
#include "common/vec.hpp"

namespace esrp {

namespace {
Vector true_residual(const CsrMatrix& a, std::span<const real_t> b,
                     std::span<const real_t> x) {
  ESRP_CHECK(a.rows() == a.cols());
  ESRP_CHECK(static_cast<index_t>(b.size()) == a.rows());
  ESRP_CHECK(static_cast<index_t>(x.size()) == a.cols());
  Vector ax(b.size());
  a.spmv(x, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) ax[i] = b[i] - ax[i];
  return ax;
}
} // namespace

real_t true_relative_residual(const CsrMatrix& a, std::span<const real_t> b,
                              std::span<const real_t> x) {
  const Vector res = true_residual(a, b, x);
  const real_t bnorm = vec_norm2(b);
  ESRP_CHECK_MSG(bnorm > 0, "right-hand side must be non-zero");
  return vec_norm2(res) / bnorm;
}

real_t residual_drift(const CsrMatrix& a, std::span<const real_t> b,
                      std::span<const real_t> x, std::span<const real_t> r) {
  const Vector res = true_residual(a, b, x);
  const real_t true_norm = vec_norm2(res);
  ESRP_CHECK_MSG(true_norm > 0, "true residual is exactly zero");
  return (vec_norm2(r) - true_norm) / true_norm;
}

} // namespace esrp
