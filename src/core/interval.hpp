// Optimal checkpointing-interval estimation.
//
// The paper (§1) defers the choice of the interval T to the classic
// literature: Young's first-order approximation [28] and Daly's
// higher-order estimate [8]. Both balance the per-checkpoint cost delta
// against the expected rework after a failure with mean time between
// failures M:
//
//   Young:  tau_opt = sqrt(2 delta M)
//   Daly:   tau_opt = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / (2M))
//                      + (1/9) (delta / (2M))] - delta      (delta < 2M)
//           tau_opt = M                                      (otherwise)
//
// tau is the *compute time between checkpoints*; helpers convert it to the
// solver's iteration count given the per-iteration time.
#pragma once

#include "common/types.hpp"

namespace esrp {

/// Young's first-order optimum [28]: sqrt(2 delta M).
double young_interval_seconds(double checkpoint_cost_s, double mtbf_s);

/// Daly's higher-order optimum [8]; falls back to M when delta >= 2M.
double daly_interval_seconds(double checkpoint_cost_s, double mtbf_s);

struct IntervalModel {
  double checkpoint_cost_s = 0; ///< delta: cost of one storage stage
  double mtbf_s = 0;            ///< M: mean time between failures
  double iteration_s = 0;       ///< time of one solver iteration
};

/// Optimal T in iterations (Daly), at least 1.
index_t optimal_interval_iterations(const IntervalModel& model);

/// Expected total runtime of a solve of `work_s` failure-free seconds when
/// checkpointing every `tau_s` (first-order model used by Young/Daly):
/// rework of tau/2 + recovery per failure, failures at rate work/M.
double expected_runtime_seconds(double work_s, double tau_s,
                                double checkpoint_cost_s, double mtbf_s,
                                double recovery_cost_s);

} // namespace esrp
