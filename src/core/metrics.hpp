// Accuracy metrics of the paper's §5 "Accuracy of the experiments":
// the residual drift (Eq. 2) compares the recursively updated residual kept
// by PCG with the true residual b - A x after convergence.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace esrp {

/// Relative residual ||b - A x||_2 / ||b||_2 (the "true" residual).
real_t true_relative_residual(const CsrMatrix& a, std::span<const real_t> b,
                              std::span<const real_t> x);

/// Paper Eq. 2:
///   (||r_end||_2 - ||b - A x_end||_2) / ||b - A x_end||_2.
/// More positive = smaller true residual = more accurate result.
real_t residual_drift(const CsrMatrix& a, std::span<const real_t> b,
                      std::span<const real_t> x, std::span<const real_t> r);

} // namespace esrp
