#include "core/interval.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace esrp {

double young_interval_seconds(double checkpoint_cost_s, double mtbf_s) {
  ESRP_CHECK(checkpoint_cost_s >= 0 && mtbf_s > 0);
  return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double daly_interval_seconds(double checkpoint_cost_s, double mtbf_s) {
  ESRP_CHECK(checkpoint_cost_s >= 0 && mtbf_s > 0);
  const double delta = checkpoint_cost_s;
  if (delta >= 2.0 * mtbf_s) return mtbf_s;
  const double ratio = delta / (2.0 * mtbf_s);
  return std::sqrt(2.0 * delta * mtbf_s) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         delta;
}

index_t optimal_interval_iterations(const IntervalModel& model) {
  ESRP_CHECK(model.iteration_s > 0);
  const double tau = daly_interval_seconds(model.checkpoint_cost_s,
                                           model.mtbf_s);
  return std::max<index_t>(
      1, static_cast<index_t>(std::llround(tau / model.iteration_s)));
}

double expected_runtime_seconds(double work_s, double tau_s,
                                double checkpoint_cost_s, double mtbf_s,
                                double recovery_cost_s) {
  ESRP_CHECK(work_s >= 0 && tau_s > 0 && mtbf_s > 0);
  // Checkpointing overhead: one delta per tau of work.
  const double with_checkpoints =
      work_s * (1.0 + checkpoint_cost_s / tau_s);
  // Failures arrive at rate 1/M over the stretched runtime; each costs the
  // recovery plus on average half an interval of rework.
  const double failures = with_checkpoints / mtbf_s;
  return with_checkpoints +
         failures * (recovery_cost_s + (tau_s + checkpoint_cost_s) / 2.0);
}

} // namespace esrp
