// In-memory buddy checkpoint store for IMCR (paper §3.1).
//
// Every T iterations each node sends a complete copy of its local dynamic
// data (x, r, z, p slices plus the replicated scalar beta) to its phi buddy
// nodes — the same ring neighbors Eq. 1 designates for ASpMV redundancy —
// and keeps a local copy for its own rollback.
//
// The simulation stores the checkpoint content once (owner layout) and
// separately tracks *which nodes hold it*: a failed node destroys its own
// local copy and every buddy copy it was hosting, and recovery must find a
// surviving buddy for each failed rank.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "netsim/cluster.hpp"
#include "netsim/dist_vector.hpp"
#include "netsim/failure.hpp"

namespace esrp {

class CheckpointStore {
public:
  /// `phi` buddies per node, chosen by designated_destination (Eq. 1).
  CheckpointStore(const BlockRowPartition& part, int phi);

  int phi() const { return phi_; }
  bool has_checkpoint() const { return tag_ >= 0; }
  index_t tag() const { return tag_; }

  /// Capture state `iteration` and charge the buddy messages on `cluster`
  /// (category checkpoint): per node, phi messages of (4*local + 1) scalars.
  void store(index_t iteration, const DistVector& x, const DistVector& r,
             const DistVector& z, const DistVector& p, real_t beta,
             SimCluster& cluster);

  /// Buddy of `rank` that survives `failed`, preferring the k=1 buddy
  /// (deterministic); nullopt if all phi buddies failed (unrecoverable).
  std::optional<rank_t> surviving_buddy(rank_t rank,
                                        std::span<const rank_t> failed) const;

  /// Restore the full state into the given vectors:
  ///  - survivors copy their local checkpoint slices (no communication);
  ///  - each failed rank fetches its slices + beta from a surviving buddy
  ///    (category recovery). Returns false if some failed rank has no
  ///    surviving buddy (store left untouched, vectors unspecified).
  bool restore(std::span<const rank_t> failed, DistVector& x, DistVector& r,
               DistVector& z, DistVector& p, real_t& beta,
               SimCluster& cluster) const;

private:
  const BlockRowPartition* part_;
  int phi_;
  index_t tag_ = -1;
  DistVector x_, r_, z_, p_;
  real_t beta_ = 0;
};

} // namespace esrp
